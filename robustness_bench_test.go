package repro

// Robustness benchmark: what the checkpoint/journal substrate costs. Each arm
// runs the Table I suite under the nop tool on the compiled engine — the same
// configuration BenchmarkPerfEngines measures — with checkpointing off
// (baseline) and at two cadences with full decision journaling. `make
// bench-perf` writes the comparison to the "robustness" section of
// BENCH_perf.json; TestCkptOverheadRegression guards the recorded overhead.

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/dbi"
	"repro/internal/drb"
	"repro/internal/guest"
	"repro/internal/harness"
	"repro/internal/snapshot"
)

// robustArm is one checkpoint configuration under measurement.
type robustArm struct {
	Name      string `json:"name"`
	CkptEvery int    `json:"ckpt_every"`
	Journal   bool   `json:"journal"`

	Blocks           uint64  `json:"blocks"`
	WallSeconds      float64 `json:"wall_seconds"`
	Checkpoints      uint64  `json:"checkpoints"`
	PageBytes        uint64  `json:"page_bytes"`
	JournalDecisions int     `json:"journal_decisions"`
	OverheadVsBase   float64 `json:"overhead_vs_baseline"`
}

// runRobustnessArm executes the suite once for one arm, accumulating into it.
func runRobustnessArm(b *testing.B, arm *robustArm, images []*guest.Image) {
	b.Helper()
	for _, im := range images {
		runtime.GC()
		var j *snapshot.Journal
		if arm.Journal {
			j = snapshot.NewJournal()
		}
		inst, err := harness.New(harness.Setup{
			Image: im, Tool: dbi.NopTool{}, Seed: 1, Threads: 4,
			Stdout: io.Discard, Engine: dbi.EngineCompiled,
			Journal: j, CkptEvery: arm.CkptEvery,
		})
		if err != nil {
			b.Fatal(err)
		}
		res := inst.Run()
		if res.Err != nil {
			b.Fatal(res.Err)
		}
		arm.Blocks += inst.M.BlocksExecuted
		arm.WallSeconds += res.Wall.Seconds()
		if inst.Ckpts != nil {
			arm.Checkpoints += inst.Ckpts.Taken
			arm.PageBytes += inst.Ckpts.PageBytes
		}
		if j != nil {
			arm.JournalDecisions += j.Len()
		}
	}
}

// BenchmarkRobustness measures checkpoint + journal overhead on the Table I
// suite. Like the engine benchmark, results accumulate over all iterations.
func BenchmarkRobustness(b *testing.B) {
	benches := drb.All()
	images := make([]*guest.Image, len(benches))
	for i, bench := range benches {
		im, err := bench.Build().Link()
		if err != nil {
			b.Fatal(err)
		}
		images[i] = im
	}
	const repeats = 3
	arms := []*robustArm{
		{Name: "baseline"},
		{Name: "ckpt-16", CkptEvery: 16, Journal: true},
		{Name: "ckpt-4", CkptEvery: 4, Journal: true},
	}
	done := 0
	for _, arm := range arms {
		arm := arm
		b.Run(arm.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for r := 0; r < repeats; r++ {
					runRobustnessArm(b, arm, images)
				}
			}
			b.ReportMetric(float64(arm.Blocks)/arm.WallSeconds, "blocks/sec")
			done++
		})
	}
	if done < len(arms) {
		return // partial -bench filter: nothing comparable to record
	}
	base := arms[0]
	for _, arm := range arms {
		arm.OverheadVsBase = arm.WallSeconds / base.WallSeconds
	}
	writePerfSection(b, "robustness", struct {
		Suite     string       `json:"suite"`
		Tool      string       `json:"tool"`
		Threads   int          `json:"threads"`
		Seed      uint64       `json:"seed"`
		Criterion string       `json:"criterion"`
		Timestamp string       `json:"timestamp"`
		Arms      []*robustArm `json:"arms"`
	}{
		Suite: "table1-drb", Tool: "none(nop)", Threads: 4, Seed: 1,
		Criterion: "overhead_vs_baseline is the wall-clock ratio of running " +
			"with dirty-page tracking, periodic checkpoints and full " +
			"decision journaling against the same suite with both off.",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Arms:      arms,
	})
}

// TestCkptOverheadRegression is the robustness half of the PERF_GUARD gate:
// it re-measures the ckpt-16 arm's wall-clock overhead over the baseline
// (best of three fresh measurements, so machine noise cannot fail it) and
// fails if the ratio exceeds 1.5x the overhead recorded in BENCH_perf.json
// by `make bench-perf` — the kind of blowup an accidental per-block scan in
// the checkpoint or journal path would cause.
func TestCkptOverheadRegression(t *testing.T) {
	if os.Getenv("PERF_GUARD") != "1" {
		t.Skip("set PERF_GUARD=1 to run the checkpoint-overhead regression gate")
	}
	path := os.Getenv("PERF_BENCH_OUT")
	if path == "" {
		path = "BENCH_perf.json"
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no baseline (run `make bench-perf` first): %v", err)
	}
	var doc struct {
		Robustness struct {
			Arms []struct {
				Name           string  `json:"name"`
				OverheadVsBase float64 `json:"overhead_vs_baseline"`
			} `json:"arms"`
		} `json:"robustness"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	var recorded float64
	for _, arm := range doc.Robustness.Arms {
		if arm.Name == "ckpt-16" {
			recorded = arm.OverheadVsBase
		}
	}
	if recorded == 0 {
		t.Fatalf("no ckpt-16 baseline in %s (run `make bench-perf`)", path)
	}
	benches := drb.All()
	images := make([]*guest.Image, len(benches))
	for i, bench := range benches {
		im, lerr := bench.Build().Link()
		if lerr != nil {
			t.Fatal(lerr)
		}
		images[i] = im
	}
	run := func(ckptEvery int, journal bool) float64 {
		var wall float64
		for _, im := range images {
			runtime.GC()
			var j *snapshot.Journal
			if journal {
				j = snapshot.NewJournal()
			}
			inst, nerr := harness.New(harness.Setup{
				Image: im, Tool: dbi.NopTool{}, Seed: 1, Threads: 4,
				Stdout: io.Discard, Engine: dbi.EngineCompiled,
				Journal: j, CkptEvery: ckptEvery,
			})
			if nerr != nil {
				t.Fatal(nerr)
			}
			res := inst.Run()
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			wall += res.Wall.Seconds()
		}
		return wall
	}
	best := 0.0
	for i := 0; i < 3; i++ {
		ratio := run(16, true) / run(0, false)
		if best == 0 || ratio < best {
			best = ratio
		}
	}
	limit := recorded * 1.5
	t.Logf("checkpoint overhead: best %.3fx, recorded %.3fx, limit %.3fx", best, recorded, limit)
	if best > limit {
		t.Fatalf("checkpoint overhead regressed: %.3fx wall vs baseline (recorded %.3fx, limit %.3fx)",
			best, recorded, limit)
	}
}
