package repro

// Tool-delivery benchmark: the measurement behind batched access delivery.
// Valgrind tools pay one helper call per instrumented access; Taskgrind's
// batched mode queues a superblock segment's accesses and enters the tool
// once per segment. Each arm runs the Table I suite under memcheck (a real
// consumer of the access stream) and reports how many times the tool was
// entered per retired guest instruction. `make bench-perf` records the
// comparison — including the callback-reduction factor, the >= 1.5x
// acceptance criterion — into the "tool_delivery" section of
// $PERF_BENCH_OUT. The delivery differential suite proves both arms hand
// the tool bit-identical access streams, so the comparison is
// apples-to-apples.

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/dbi"
	"repro/internal/drb"
	"repro/internal/guest"
	"repro/internal/harness"
	"repro/internal/tools/memcheck"
)

// deliveryArm is one delivery configuration under measurement.
type deliveryArm struct {
	Name     string       `json:"name"`
	Delivery dbi.Delivery `json:"-"`
	Mode     string       `json:"mode"`

	Blocks      uint64  `json:"blocks"`
	Instrs      uint64  `json:"instrs"`
	DirtyCalls  uint64  `json:"tool_callbacks"`
	Accesses    uint64  `json:"accesses_delivered"`
	WallSeconds float64 `json:"wall_seconds"`

	CallbacksPerKInstr float64 `json:"callbacks_per_1000_instrs"`
	AccessesPerBatch   float64 `json:"accesses_per_callback"`
	InstrsPerSec       float64 `json:"instrs_per_sec"`
}

// BenchmarkToolDelivery measures per-event vs batched access delivery under
// memcheck on the Table I suite. The headline figure is tool callbacks per
// retired instruction: batching must enter the tool at least 1.5x less often
// for the same access stream.
func BenchmarkToolDelivery(b *testing.B) {
	benches := drb.All()
	images := make([]*guest.Image, len(benches))
	for i, bench := range benches {
		im, err := bench.Build().Link()
		if err != nil {
			b.Fatal(err)
		}
		images[i] = im
	}
	const repeats = 3

	arms := []*deliveryArm{
		{Name: "per-event", Delivery: dbi.DeliverPerEvent},
		{Name: "batched", Delivery: dbi.DeliverBatched},
	}
	done := 0
	for _, arm := range arms {
		arm := arm
		arm.Mode = arm.Delivery.String()
		b.Run(arm.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for r := 0; r < repeats; r++ {
					for _, im := range images {
						runtime.GC()
						inst, err := harness.New(harness.Setup{
							Image: im, Tool: memcheck.New(), Seed: 1, Threads: 4,
							Stdout: io.Discard, Engine: dbi.EngineCompiled,
							Delivery: arm.Delivery,
						})
						if err != nil {
							b.Fatal(err)
						}
						res := inst.Run()
						if res.Err != nil {
							b.Fatal(res.Err)
						}
						arm.Blocks += inst.M.BlocksExecuted
						arm.Instrs += inst.M.InstrsExecuted
						arm.DirtyCalls += inst.Core.DirtyCalls
						arm.Accesses += inst.Core.AccessesDelivered
						arm.WallSeconds += res.Wall.Seconds()
					}
				}
			}
			arm.CallbacksPerKInstr = 1000 * float64(arm.DirtyCalls) / float64(arm.Instrs)
			if arm.DirtyCalls > 0 {
				arm.AccessesPerBatch = float64(arm.Accesses) / float64(arm.DirtyCalls)
			}
			arm.InstrsPerSec = float64(arm.Instrs) / arm.WallSeconds
			b.ReportMetric(arm.CallbacksPerKInstr, "callbacks/kinstr")
			b.ReportMetric(arm.AccessesPerBatch, "accesses/callback")
			done++
		})
	}
	if done < len(arms) {
		return // partial -bench filter: nothing comparable to record
	}
	pe, ba := arms[0], arms[1]
	if pe.Accesses != ba.Accesses {
		b.Fatalf("delivery arms diverged: per-event delivered %d accesses, batched %d",
			pe.Accesses, ba.Accesses)
	}
	reduction := pe.CallbacksPerKInstr / ba.CallbacksPerKInstr
	b.Logf("callback reduction: %.2fx (per-event %.1f/kinstr, batched %.1f/kinstr)",
		reduction, pe.CallbacksPerKInstr, ba.CallbacksPerKInstr)
	writePerfSection(b, "tool_delivery", struct {
		Suite             string         `json:"suite"`
		Tool              string         `json:"tool"`
		Threads           int            `json:"threads"`
		Seed              uint64         `json:"seed"`
		Criterion         string         `json:"criterion"`
		Timestamp         string         `json:"timestamp"`
		CallbackReduction float64        `json:"callback_reduction"`
		Arms              []*deliveryArm `json:"arms"`
	}{
		Suite: "table1-drb", Tool: "memcheck", Threads: 4, Seed: 1,
		Criterion: "callback_reduction compares tool callbacks per retired " +
			"instruction (per-event / batched); acceptance requires >= 1.5x. " +
			"Both arms deliver the identical access stream (accesses_delivered " +
			"is asserted equal); batching only amortizes tool entries.",
		Timestamp:         time.Now().UTC().Format(time.RFC3339),
		CallbackReduction: reduction,
		Arms:              arms,
	})
}

// TestHotPerfRegression is the bench smoke for `make check`: gated behind
// PERF_GUARD=1, it re-measures the compiled engine's hot ns/block on the
// Table I suite and fails if it regressed more than 20% against the baseline
// recorded in BENCH_perf.json by `make bench-perf`. Three fresh measurements
// are taken and the best kept, so transient machine noise cannot fail the
// gate — only a real slowdown of the hot dispatch path can.
func TestHotPerfRegression(t *testing.T) {
	if os.Getenv("PERF_GUARD") != "1" {
		t.Skip("set PERF_GUARD=1 to run the hot-path regression gate")
	}
	path := os.Getenv("PERF_BENCH_OUT")
	if path == "" {
		path = "BENCH_perf.json"
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no baseline (run `make bench-perf` first): %v", err)
	}
	var doc struct {
		Engines struct {
			Arms []struct {
				Name            string  `json:"name"`
				HotBlocksPerSec float64 `json:"hot_blocks_per_sec"`
			} `json:"arms"`
		} `json:"engines"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	var baselineNsPerBlock float64
	for _, arm := range doc.Engines.Arms {
		if arm.Name == "compiled" && arm.HotBlocksPerSec > 0 {
			baselineNsPerBlock = 1e9 / arm.HotBlocksPerSec
		}
	}
	if baselineNsPerBlock == 0 {
		t.Fatalf("no compiled-arm baseline in %s (run `make bench-perf`)", path)
	}

	benches := drb.All()
	images := make([]*guest.Image, len(benches))
	for i, bench := range benches {
		im, err := bench.Build().Link()
		if err != nil {
			t.Fatal(err)
		}
		images[i] = im
	}
	const hotReps = 200
	measure := func() float64 {
		var blocks uint64
		var wall time.Duration
		for _, im := range images {
			runtime.GC()
			inst, err := harness.New(harness.Setup{
				Image: im, Tool: dbi.NopTool{}, Seed: 1, Threads: 4,
				Stdout: io.Discard, Engine: dbi.EngineCompiled,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res := inst.Run(); res.Err != nil {
				t.Fatal(res.Err)
			}
			hb, _, hw := hotReplay(inst, hotReps)
			blocks += hb
			wall += hw
		}
		if blocks == 0 {
			t.Fatal("hot replay executed no blocks")
		}
		return float64(wall.Nanoseconds()) / float64(blocks)
	}
	best := measure()
	for i := 0; i < 2; i++ {
		if m := measure(); m < best {
			best = m
		}
	}
	const tolerance = 1.20
	t.Logf("hot compiled: %.1f ns/block fresh vs %.1f ns/block baseline (limit %.1f)",
		best, baselineNsPerBlock, baselineNsPerBlock*tolerance)
	if best > baselineNsPerBlock*tolerance {
		t.Errorf("hot compiled dispatch regressed: %.1f ns/block, baseline %.1f ns/block (+%.0f%% > 20%% budget)",
			best, baselineNsPerBlock, 100*(best/baselineNsPerBlock-1))
	}
}
