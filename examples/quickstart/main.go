// Quickstart: build the paper's erroneous OpenMP program (Listing 4), run
// it under Taskgrind, and print the determinacy-race report (Listing 6).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/harness"
	"repro/internal/omp"
)

func main() {
	// --- 1. Write the program (the DSL plays the role of the compiler).
	//
	//	3:  int *x = malloc(2 * sizeof(int));
	//	8:  #pragma omp task  { x[0] = 42; }
	//	11: #pragma omp task  { x[0] = 43; }
	b := omp.NewProgram()
	b.Global("xptr", 8)
	const r0, r1, r2 = guest.R0, guest.R1, guest.R2

	taskBody := func(name string, line int, val int32) {
		f := b.Func(name, "task.c")
		f.Line(line)
		f.LoadSym(r1, "xptr")
		f.Ld(8, r1, r1, 0)
		f.Ldi(r2, val)
		f.St(4, r1, 0, r2)
		f.Ret()
	}
	taskBody("task_a", 8, 42)
	taskBody("task_b", 11, 43)

	f := b.Func("micro", "task.c")
	f.Enter(0)
	fn := f
	omp.SingleNowait(f, func() {
		fn.Line(8)
		omp.EmitTask(fn, omp.TaskOpts{Fn: "task_a"})
		fn.Line(11)
		omp.EmitTask(fn, omp.TaskOpts{Fn: "task_b"})
	})
	f.Leave()

	f = b.Func("main", "task.c")
	f.Enter(0)
	f.Line(3)
	f.Ldi(r0, 8)
	f.Hcall("malloc")
	f.LoadSym(r1, "xptr")
	f.St(8, r1, 0, r0)
	f.Line(4)
	f.Ldi(r1, 0)
	omp.Parallel(f, "micro", r1, 4)
	f.Ldi(r0, 0)
	f.Hlt(r0)

	// --- 2. Run it under Taskgrind (valgrind --tool=taskgrind ./task).
	tg := core.New(core.DefaultOptions())
	res, _, err := harness.BuildAndRun(b, harness.Setup{Tool: tg, Seed: 1, Threads: 4})
	if err != nil || res.Err != nil {
		fmt.Fprintln(os.Stderr, err, res.Err)
		os.Exit(2)
	}

	// --- 3. Read the report (paper Listing 6).
	fmt.Print(tg.Reports.String())
	fmt.Printf("(%d segments, %d accesses recorded, %d segment pairs compared)\n",
		tg.Stats.SegmentsCreated, tg.Stats.AccessesRecorded, tg.Stats.PairsChecked)
}
