// Countgrind: write your own Valgrind-style tool against the DBI framework.
//
// The plugin contract is the same one Taskgrind uses (dbi.Tool): receive
// every translated superblock once, inject Dirty helper calls next to the
// memory operations you care about, and collect results at Fini. This tool
// counts loads and stores per function symbol — a "cachegrind-lite".
//
//	go run ./examples/countgrind
package main

import (
	"fmt"
	"os"
	"sort"

	"repro/internal/dbi"
	"repro/internal/guest"
	"repro/internal/harness"
	"repro/internal/lulesh"
	"repro/internal/vex"
	"repro/internal/vm"
)

// countTool tallies memory accesses per function.
type countTool struct {
	dbi.NopTool
	loads  map[string]uint64
	stores map[string]uint64
}

func (ct *countTool) Name() string { return "countgrind" }

// Instrument injects one Dirty call per load/store. The symbol name is
// resolved at translation time (it is per-block), so the runtime helper is a
// single map increment.
func (ct *countTool) Instrument(c *dbi.Core, sb *vex.SuperBlock) *vex.SuperBlock {
	sym := "???"
	if s := c.M.Image.SymbolFor(sb.GuestAddr); s != nil {
		sym = s.Name
	}
	out := &vex.SuperBlock{
		GuestAddr: sb.GuestAddr, NTemps: sb.NTemps,
		Next: sb.Next, NextJK: sb.NextJK, Aux: sb.Aux,
	}
	for _, s := range sb.Stmts {
		switch s.Kind {
		case vex.SWrTmpLoad:
			out.Stmts = append(out.Stmts, vex.Stmt{
				Kind: vex.SDirty, Tmp: vex.NoTemp, Name: "count_ld",
				Fn: func(any, []uint64) uint64 { ct.loads[sym]++; return 0 },
			})
		case vex.SStore:
			out.Stmts = append(out.Stmts, vex.Stmt{
				Kind: vex.SDirty, Tmp: vex.NoTemp, Name: "count_st",
				Fn: func(any, []uint64) uint64 { ct.stores[sym]++; return 0 },
			})
		}
		out.Stmts = append(out.Stmts, s)
	}
	return out
}

func (ct *countTool) ClientRequest(t *vm.Thread, code int32, args [6]uint64) uint64 { return 0 }

func (ct *countTool) Fini(c *dbi.Core) {
	type row struct {
		sym    string
		ld, st uint64
	}
	var rows []row
	for sym, n := range ct.loads {
		rows = append(rows, row{sym, n, ct.stores[sym]})
	}
	for sym, n := range ct.stores {
		if _, seen := ct.loads[sym]; !seen {
			rows = append(rows, row{sym, 0, n})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ld+rows[i].st > rows[j].ld+rows[j].st })
	fmt.Printf("%-24s %12s %12s\n", "function", "loads", "stores")
	for i, r := range rows {
		if i >= 12 {
			break
		}
		fmt.Printf("%-24s %12d %12d\n", r.sym, r.ld, r.st)
	}
	fmt.Printf("(%d blocks translated)\n", c.Translations)
}

func main() {
	// Profile the LULESH proxy under the custom tool.
	b, err := lulesh.Build(lulesh.Params{S: 6, TEL: 2, TNL: 2, Iters: 2})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	_ = guest.TextBase
	ct := &countTool{loads: map[string]uint64{}, stores: map[string]uint64{}}
	res, _, err := harness.BuildAndRun(b, harness.Setup{Tool: ct, Seed: 1, Threads: 4})
	if err != nil || res.Err != nil {
		fmt.Fprintln(os.Stderr, err, res.Err)
		os.Exit(2)
	}
}
