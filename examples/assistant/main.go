// Assistant: the trial-and-error parallelization workflow the paper's
// conclusion envisions ("having Taskgrind move toward a more general
// 'trial and error' parallel programming assistant").
//
// A serial 1-D heat solver is ported to dependent tasks. The first attempt
// forgets the stencil halo dependences — every test run still computes the
// right answer (the bug is a determinacy hazard, not a deterministic
// wrong value), but Taskgrind flags the unordered halo accesses. Adding
// the neighbour dependences makes the analysis clean.
//
//	go run ./examples/assistant
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/heat"
)

func main() {
	p := heat.Params{N: 64, Chunks: 4, Iters: 6}
	fmt.Printf("1-D heat diffusion: %d cells, %d chunks, %d sweeps\n\n", p.N, p.Chunks, p.Iters)

	var serialChecksum uint64
	for _, v := range []heat.Version{heat.Serial, heat.RacyTasks, heat.FixedTasks} {
		b, err := heat.Build(v, p)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		tg := core.New(core.DefaultOptions())
		res, _, err := harness.BuildAndRun(b, harness.Setup{Tool: tg, Seed: 2, Threads: 4})
		if err != nil || res.Err != nil {
			fmt.Fprintln(os.Stderr, err, res.Err)
			os.Exit(2)
		}
		if v == heat.Serial {
			serialChecksum = res.ExitCode
		}
		status := "clean"
		if tg.RaceCount > 0 {
			status = fmt.Sprintf("%d determinacy race(s)", tg.RaceCount)
		}
		same := "=="
		if res.ExitCode != serialChecksum {
			same = "!="
		}
		fmt.Printf("== %-12s checksum %d (%s serial)  ->  %s\n", v.String(), res.ExitCode, same, status)
		if tg.RaceCount > 0 {
			// Show what the assistant would point the programmer at.
			r := tg.Reports.Races[0]
			fmt.Printf("   e.g. %s and %s were declared independent (%s, %d byte(s))\n",
				r.SegA, r.SegB, r.Kind, r.Bytes())
			fmt.Println("   -> the sweep reads its neighbours' edge cells: add depend(in:...) on the adjacent chunks")
		}
	}
	fmt.Println("\nSame numbers everywhere — only the analysis separates the racy port from the fixed one.")
}
