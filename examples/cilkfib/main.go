// Cilk example: recursive fib with cilk_spawn / cilk_sync, analyzed by
// Taskgrind — first correct, then with the sync after the read (the
// textbook Cilk determinacy race).
//
//	go run ./examples/cilkfib
package main

import (
	"fmt"
	"os"

	"repro/internal/cilk"
	"repro/internal/core"
	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/harness"
)

const (
	r0 = guest.R0
	r1 = guest.R1
	r2 = guest.R2
	r3 = guest.R3
	r9 = guest.R9
)

// fib builds:
//
//	int fib(int n) {
//	    if (n < 2) return n;
//	    int x = cilk_spawn fib(n-1);
//	    int y = cilk_spawn fib(n-2);
//	    cilk_sync;               // moved after the read when racy
//	    return x + y;
//	}
func fib(n int32, racy bool) *gbuild.Builder {
	b := cilk.NewProgram(4)

	f := b.Func("cilk_fib", "fib.c")
	f.Line(5)
	f.Enter(48)
	f.Ld(8, r1, r0, 0) // n
	f.Ld(8, r2, r0, 8) // result*
	f.StLocal(8, 8, r1)
	f.StLocal(8, 16, r2)
	rec := f.NewLabel()
	f.Ldi(r3, 2)
	f.Bge(r1, r3, rec)
	f.St(8, r2, 0, r1)
	f.Leave()
	f.Bind(rec)
	spawn := func(delta, off int32) {
		cilk.Spawn(f, "cilk_fib", 16, func(f *gbuild.Func, p uint8) {
			f.LdLocal(8, r9, 8)
			f.Addi(r9, r9, -delta)
			f.St(8, p, 0, r9)
			f.LocalAddr(r9, off)
			f.St(8, p, 8, r9)
		})
	}
	spawn(1, 24) // x
	spawn(2, 32) // y
	if !racy {
		cilk.Sync(f)
	}
	f.Line(12)
	f.LdLocal(8, r1, 24)
	f.LdLocal(8, r2, 32)
	f.Add(r1, r1, r2)
	f.LdLocal(8, r2, 16)
	f.St(8, r2, 0, r1)
	if racy {
		cilk.Sync(f)
	}
	f.Leave()

	f = b.Func("cilk_main", "fib.c")
	f.Line(20)
	f.Enter(16)
	cilk.Spawn(f, "cilk_fib", 16, func(f *gbuild.Func, p uint8) {
		f.Ldi(r9, n)
		f.St(8, p, 0, r9)
		f.LocalAddr(r9, 8)
		f.St(8, p, 8, r9)
	})
	cilk.Sync(f)
	f.LdLocal(8, r1, 8)
	cilk.Exit(f, r1)
	f.Leave()
	return b
}

func analyze(label string, racy bool) {
	opt := core.DefaultOptions()
	opt.NoFreePool = true // the §IV-B future-work extension
	tg := core.New(opt)
	res, _, err := harness.BuildAndRun(fib(10, racy), harness.Setup{Tool: tg, Seed: 3, Threads: 4})
	if err != nil || res.Err != nil {
		fmt.Fprintln(os.Stderr, err, res.Err)
		os.Exit(2)
	}
	fmt.Printf("== %s: fib(10) = %d, %d determinacy race(s)\n", label, res.ExitCode, tg.RaceCount)
	for i, r := range tg.Reports.Races {
		if i >= 3 {
			fmt.Printf("   ... and %d more\n", tg.RaceCount-3)
			break
		}
		fmt.Print("   ", r.String())
	}
}

func main() {
	analyze("correct (sync before read)", false)
	analyze("racy (sync after read)", true)
}
