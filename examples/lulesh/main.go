// LULESH example: run the dependent task-based proxy application correct
// and with a deliberately dropped task dependence (the paper's §V-B
// experiment), under the no-tools reference, Archer and Taskgrind.
//
//	go run ./examples/lulesh
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/lulesh"
)

func main() {
	p := lulesh.Params{S: 8, TEL: 4, TNL: 4, Iters: 3}

	fmt.Printf("LULESH proxy: s=%d (%d cells), tel=%d, tnl=%d, %d iterations\n\n",
		p.S, p.Cells(), p.TEL, p.TNL, p.Iters)

	for _, racy := range []bool{false, true} {
		pp := p
		pp.Racy = racy
		label := "correct (all dependences)"
		if racy {
			label = "racy (advance kernel's in:f dependence dropped)"
		}
		fmt.Println("==", label)
		for _, tool := range []string{"none", "archer", "taskgrind"} {
			res, err := lulesh.Run(pp, tool, 4, 1)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			fmt.Printf("  %-10s wall=%-10v mem=%6.2fMB checksum=%-10d reports=%d\n",
				tool, res.Wall.Round(time.Microsecond),
				float64(res.Footprint)/1e6, res.ExitCode, res.Reports)
		}
		fmt.Println()
	}
	fmt.Println("The dropped dependence changes no numbers under this schedule —")
	fmt.Println("only the determinacy analysis sees that it could have.")
}
