package repro

// Multi-process chaos soak for the persistent translation store: N
// taskgrind processes and an in-process daemon share one -tcache-dir while
// some processes are SIGKILLed mid-run and others run under storage fault
// injection (EIO, ENOSPC, short writes, bit flips, lock starvation). The
// acceptance criterion is the degradation invariant at system scale: every
// surviving run's stdout is byte-identical to a cold run with no store at
// all, the eviction cap holds, and the cache directory stays adoptable —
// a fresh clean process warm-starts from whatever the chaos left behind.
//
// Default scale is a smoke (fits in `make check`); STORE_CHAOS=1 runs the
// full soak.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/tstore"
)

// storeChaosSpecs rotate across processes: clean appenders interleave with
// every injected storage fault kind, all on the same cache directory.
var storeChaosSpecs = []string{
	"",
	"tsflip=3",
	"tsread=2",
	"tsshort=3,tsnospc=5",
	"tslock=1",
	"tswrite=2",
}

func TestStoreChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process soak")
	}
	procs, rounds := 6, 2
	if os.Getenv("STORE_CHAOS") == "1" {
		procs, rounds = 10, 6
	}
	bin := filepath.Join(t.TempDir(), "taskgrind")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/taskgrind").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	const prog = "072-taskdep1-orig"
	const maxUnits = 12
	base := []string{"-prog", prog, "-seed", "1", "-threads", "4"}

	// The oracle: one run with no store at all.
	cold, err := exec.Command(bin, base...).Output()
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}

	cacheDir := filepath.Join(t.TempDir(), "cache")

	// The daemon arm: an in-process serve.Server whose translation cache
	// holds the same directory, saving between rounds like taskgrindd's
	// periodic flush — so CLI processes contend with a live warm daemon.
	dcache := tstore.NewCacheOpts(tstore.Options{Dir: cacheDir, MaxUnits: maxUnits})
	srv := serve.New(serve.Options{Workers: 2, QueueDepth: 16, TCache: dcache})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(round, p int) {
				defer wg.Done()
				args := append(append([]string{}, base...),
					"-tcache-dir", cacheDir,
					"-tcache-max-units", fmt.Sprint(maxUnits))
				spec := storeChaosSpecs[(round*procs+p)%len(storeChaosSpecs)]
				if spec != "" {
					args = append(args, "-inject", spec,
						"-inject-seed", fmt.Sprint(round*31+p+1))
				}
				cmd := exec.Command(bin, args...)
				var stdout, stderr bytes.Buffer
				cmd.Stdout, cmd.Stderr = &stdout, &stderr
				victim := p == procs-1 // one SIGKILL per round, mid-run when it lands
				if victim {
					if err := cmd.Start(); err != nil {
						t.Errorf("start: %v", err)
						return
					}
					time.Sleep(time.Duration(round%3) * time.Millisecond)
					_ = cmd.Process.Signal(syscall.SIGKILL)
					_ = cmd.Wait()
					return
				}
				if err := cmd.Run(); err != nil {
					t.Errorf("round %d proc %d (inject %q): %v\nstderr: %s",
						round, p, spec, err, stderr.String())
					return
				}
				if !bytes.Equal(stdout.Bytes(), cold) {
					t.Errorf("round %d proc %d (inject %q): stdout diverged from cold\ncold: %q\ngot:  %q",
						round, p, spec, cold, stdout.String())
				}
			}(round, p)
		}
		// Daemon jobs ride the same store while the CLI fleet churns it.
		jobs, err := srv.Submit(serve.JobSpec{Prog: prog, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		for _, j := range jobs {
			for {
				v, err := srv.Job(j.ID)
				if err != nil {
					t.Fatal(err)
				}
				if v.Status.Terminal() {
					if v.Status != serve.StatusDone {
						t.Fatalf("daemon job ended %s: %+v", v.Status, v.Result)
					}
					break
				}
				time.Sleep(time.Millisecond)
			}
		}
		if err := dcache.Save(); err != nil {
			t.Logf("daemon save (degraded, non-fatal): %v", err)
		}
	}

	// Whatever the kills and faults left on disk must still warm-start a
	// clean process: identical output, cross-process adoption visible, and
	// the unit cap respected.
	mpath := filepath.Join(t.TempDir(), "metrics.json")
	finalArgs := append(append([]string{}, base...),
		"-tcache-dir", cacheDir, "-tcache-max-units", fmt.Sprint(maxUnits),
		"-metrics", mpath)
	final := exec.Command(bin, finalArgs...)
	var stdout, stderr bytes.Buffer
	final.Stdout, final.Stderr = &stdout, &stderr
	if err := final.Run(); err != nil {
		t.Fatalf("final warm run: %v\nstderr: %s", err, stderr.String())
	}
	if !bytes.Equal(stdout.Bytes(), cold) {
		t.Fatalf("final warm run diverged from cold\ncold: %q\ngot:  %q", cold, stdout.String())
	}
	data, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if u := snap.Counters["tstore_units"]; u > maxUnits {
		t.Errorf("unit cap violated: tstore_units = %d > %d", u, maxUnits)
	}
	if snap.Counters["tstore_merged_total"] == 0 && snap.Counters["tstore_hits_total"] == 0 {
		t.Errorf("final run adopted nothing from the chaos-survivor store: %v", snap.Counters)
	}
	ents, err := os.ReadDir(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	var tc int
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tcache") {
			tc++
		}
	}
	if tc == 0 {
		t.Error("no .tcache files survived the soak")
	}
}
