package repro

// Cache-equivalence differential suite for the translation store: a run
// that resolves its translations from the shared store — warm in memory,
// warm from the persistent tier, or filled by the ahead-of-execution
// pipeline — must be bit-identical to a cold run that translates
// everything itself. "Bit-identical" is the checkpoint-fuzz oracle: the
// rendered tool report, guest stdout, the full guest memory hash, the
// machine state digest, exit code and the deterministic work counters.
// Translation-side counters (Translations, SharedHits, translate/compile
// nanos, instrument-time tallies) legitimately differ — they measure where
// the translation happened, which is exactly what the store changes.

import (
	"bytes"
	"encoding/binary"
	"hash/fnv"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dbi"
	"repro/internal/drb"
	"repro/internal/explore"
	"repro/internal/faultinject"
	"repro/internal/harness"
	"repro/internal/progs"
	"repro/internal/tstore"
)

// gmemFold folds every resident guest page (index and content) into one
// digest — the strongest practical "same memory" check.
func gmemFold(inst *harness.Instance) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, p := range inst.M.Mem.AllPages() {
		binary.LittleEndian.PutUint64(buf[:], p.Idx)
		h.Write(buf[:])
		h.Write(p.Data)
	}
	return h.Sum64()
}

// runPrint is one run's complete observable outcome.
type runPrint struct {
	report string
	stdout string
	gmem   uint64
	state  uint64
	blocks uint64
	instrs uint64
	exit   uint64
	dirty  uint64
	acc    uint64
	seams  uint64
}

// tcRun executes one drb benchmark under taskgrind with the given store
// configuration and fingerprints the outcome.
func tcRun(t *testing.T, bm drb.Benchmark, engine string, extend int, s harness.Setup) (runPrint, *harness.Instance) {
	t.Helper()
	tl := core.New(core.Options{})
	out := &bytes.Buffer{}
	s.Tool, s.Stdout, s.Seed, s.Threads = tl, out, 1, 4
	s.Engine, s.Extend = engine, extend
	res, inst, err := harness.BuildAndRun(bm.Build(), s)
	if err != nil {
		t.Fatalf("%s %s: %v", bm.Name, engine, err)
	}
	if res.Err != nil {
		t.Fatalf("%s %s: run failed: %v", bm.Name, engine, res.Err)
	}
	if inst.Pretrans != nil {
		inst.Pretrans.Wait()
	}
	return runPrint{
		report: tl.Reports.String(),
		stdout: out.String(),
		gmem:   gmemFold(inst),
		state:  inst.M.StateDigest(),
		blocks: inst.M.BlocksExecuted,
		instrs: inst.M.InstrsExecuted,
		exit:   inst.M.ExitCode(),
		dirty:  inst.Core.DirtyCalls,
		acc:    inst.Core.AccessesDelivered,
		seams:  inst.Core.ExtendSeams,
	}, inst
}

func diffPrints(t *testing.T, label string, cold, got runPrint) {
	t.Helper()
	if cold.report != got.report {
		t.Fatalf("%s: reports differ:\n--- cold\n%s\n--- %s\n%s", label, cold.report, label, got.report)
	}
	if cold.stdout != got.stdout {
		t.Fatalf("%s: stdout differs: %q vs %q", label, cold.stdout, got.stdout)
	}
	if cold != got {
		t.Fatalf("%s: run fingerprints differ:\ncold %+v\n%s %+v", label, cold, label, got)
	}
}

// TestStoreEquivalence: for every Table I (DataRaceBench) program, on both
// engines, a cold run and the three store-served run shapes produce
// bit-identical results.
func TestStoreEquivalence(t *testing.T) {
	benches := drb.All()
	if testing.Short() {
		benches = benches[:6]
	}
	for _, eng := range []string{dbi.EngineIR, dbi.EngineCompiled} {
		for _, bm := range benches {
			cold, _ := tcRun(t, bm, eng, 0, harness.Setup{})

			// Shared-cold: a fresh store changes nothing but gets filled.
			cache := tstore.NewCache(t.TempDir())
			fill, fillInst := tcRun(t, bm, eng, 0, harness.Setup{TStore: cache})
			diffPrints(t, bm.Name+"/"+eng+"/shared-cold", cold, fill)
			if fillInst.Core.SharedHits != 0 {
				t.Fatalf("%s %s: cold run adopted %d shared blocks from an empty store",
					bm.Name, eng, fillInst.Core.SharedHits)
			}

			// Warm: same in-memory store, new core — all translations adopted.
			warm, warmInst := tcRun(t, bm, eng, 0, harness.Setup{TStore: cache})
			diffPrints(t, bm.Name+"/"+eng+"/warm", cold, warm)
			if warmInst.Core.Translations != 0 {
				t.Fatalf("%s %s: warm run still translated %d blocks",
					bm.Name, eng, warmInst.Core.Translations)
			}
			if warmInst.Core.SharedHits == 0 {
				t.Fatalf("%s %s: warm run adopted nothing", bm.Name, eng)
			}

			// Disk warm: persist, reopen from the directory, run again.
			if err := cache.Save(); err != nil {
				t.Fatalf("%s %s: save: %v", bm.Name, eng, err)
			}
			disk, diskInst := tcRun(t, bm, eng, 0,
				harness.Setup{TStore: tstore.NewCache(cache.Dir())})
			diffPrints(t, bm.Name+"/"+eng+"/disk-warm", cold, disk)
			if diskInst.Core.Translations != 0 {
				t.Fatalf("%s %s: disk-warm run still translated %d blocks",
					bm.Name, eng, diskInst.Core.Translations)
			}

			// Pretranslated: the pipeline races the guest; whoever wins a
			// block, the outcome is the cold outcome.
			pre, _ := tcRun(t, bm, eng, 0, harness.Setup{
				TStore:       tstore.NewCache(""),
				Pretranslate: true,
				NewTool:      func() dbi.Tool { return core.New(core.Options{}) },
			})
			diffPrints(t, bm.Name+"/"+eng+"/pretranslated", cold, pre)
		}
	}
}

// TestStoreEquivalenceExtended: superblock extension changes block
// granularity and the store key; warm extended runs replay the seam
// bookkeeping and stay bit-identical.
func TestStoreEquivalenceExtended(t *testing.T) {
	bm, ok := drb.ByName("072-taskdep1-orig")
	if !ok {
		t.Fatal("missing benchmark")
	}
	for _, eng := range []string{dbi.EngineIR, dbi.EngineCompiled} {
		cold, coldInst := tcRun(t, bm, eng, 128, harness.Setup{})
		cache := tstore.NewCache("")
		fill, _ := tcRun(t, bm, eng, 128, harness.Setup{TStore: cache})
		diffPrints(t, bm.Name+"/"+eng+"/ext-fill", cold, fill)
		warm, warmInst := tcRun(t, bm, eng, 128, harness.Setup{TStore: cache})
		diffPrints(t, bm.Name+"/"+eng+"/ext-warm", cold, warm)
		if warmInst.Core.Translations != 0 {
			t.Fatalf("%s: warm extended run translated %d blocks", eng, warmInst.Core.Translations)
		}
		if coldInst.Core.ExtendSeams == 0 || warmInst.Core.ExtendSeams != coldInst.Core.ExtendSeams {
			t.Fatalf("%s: seam accounting not replayed: cold %d warm %d",
				eng, coldInst.Core.ExtendSeams, warmInst.Core.ExtendSeams)
		}
	}
}

// TestStoreEquivalenceCrash: a contained crash (the wild-store fault demo)
// renders the same symbolized report — including the tg1: replay token —
// whether the faulting block was translated locally or adopted warm.
func TestStoreEquivalenceCrash(t *testing.T) {
	im, err := progs.Wildstore().Link()
	if err != nil {
		t.Fatal(err)
	}
	const token = "tg1:ChB0YXNrLmMStesttoken"
	run := func(cache *tstore.Cache) (string, *harness.Instance) {
		inst, err := harness.New(harness.Setup{
			Image: im, Tool: core.New(core.Options{}), Seed: 1, Threads: 4,
			Stdout: &bytes.Buffer{}, Engine: dbi.EngineCompiled,
			TStore: cache, ReplayToken: token,
		})
		if err != nil {
			t.Fatal(err)
		}
		res := inst.Run()
		if res.Crash == nil {
			t.Fatalf("wildstore did not crash (err=%v)", res.Err)
		}
		return res.Crash.Render(inst.M.Image), inst
	}
	cache := tstore.NewCache("")
	cold, _ := run(cache)
	warm, warmInst := run(cache)
	if warmInst.Core.Translations != 0 {
		t.Fatalf("warm crash run translated %d blocks", warmInst.Core.Translations)
	}
	if cold != warm {
		t.Fatalf("crash reports differ:\n--- cold\n%s\n--- warm\n%s", cold, warm)
	}
}

// TestStoreInvalidationHarness: two different programs sharing one cache
// directory never serve each other's translations — the image content hash
// keys them apart end to end.
func TestStoreInvalidationHarness(t *testing.T) {
	a, ok := drb.ByName("072-taskdep1-orig")
	if !ok {
		t.Fatal("missing benchmark")
	}
	b, ok := drb.ByName("027-taskdependmissing-orig")
	if !ok {
		t.Fatal("missing benchmark")
	}
	dir := t.TempDir()
	cache := tstore.NewCache(dir)
	_, _ = tcRun(t, a, dbi.EngineCompiled, 0, harness.Setup{TStore: cache})
	if err := cache.Save(); err != nil {
		t.Fatal(err)
	}
	// Program B against A's directory: nothing adopted, everything fresh.
	_, bInst := tcRun(t, b, dbi.EngineCompiled, 0,
		harness.Setup{TStore: tstore.NewCache(dir)})
	if bInst.Core.SharedHits != 0 {
		t.Fatalf("program B adopted %d of program A's translations", bInst.Core.SharedHits)
	}
	if bInst.Core.Translations == 0 {
		t.Fatalf("program B translated nothing")
	}
	// And A's tier still serves A.
	_, aInst := tcRun(t, a, dbi.EngineCompiled, 0,
		harness.Setup{TStore: tstore.NewCache(dir)})
	if aInst.Core.Translations != 0 {
		t.Fatalf("program A's tier went cold: %d translations", aInst.Core.Translations)
	}
}

// TestStoreConcurrentWorkers: 16 workers run the same program against one
// shared store concurrently (exercised under -race by make check); every
// outcome matches the cold fingerprint and the store performs roughly one
// run's worth of translation work.
func TestStoreConcurrentWorkers(t *testing.T) {
	bm, ok := drb.ByName("072-taskdep1-orig")
	if !ok {
		t.Fatal("missing benchmark")
	}
	cold, coldInst := tcRun(t, bm, dbi.EngineCompiled, 0, harness.Setup{})
	solo := coldInst.Core.Translations

	cache := tstore.NewCache("")
	const workers = 16
	prints := make([]runPrint, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			prints[w], _ = tcRun(t, bm, dbi.EngineCompiled, 0, harness.Setup{TStore: cache})
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		diffPrints(t, "worker", cold, prints[w])
	}
	stats := cache.Stats()
	// First-writer-wins means a block can be translated by several racing
	// workers, but the store only ever keeps (and counts) one; the total
	// store growth is exactly one image's worth.
	if stats.Puts > solo {
		t.Fatalf("store grew by %d units, one run translates %d", stats.Puts, solo)
	}
	if stats.Hits == 0 {
		t.Fatalf("no worker adopted anything")
	}
}

// TestStoreEquivalenceStorageFaults: every injected storage fault kind,
// firing on every opportunity, across {cold, disk-warm, pretranslated}
// store shapes and both engines, yields results bit-identical to the clean
// cold run. This is the degradation invariant end to end: a broken disk,
// a full disk, bit rot or a starved lock can slow a run down (it
// translates cold), but can never change what it computes or reports.
func TestStoreEquivalenceStorageFaults(t *testing.T) {
	bm, ok := drb.ByName("072-taskdep1-orig")
	if !ok {
		t.Fatal("missing benchmark")
	}
	kinds := []struct {
		kind faultinject.Kind
		name string
	}{
		{faultinject.StoreReadErr, "tsread"},
		{faultinject.StoreWriteErr, "tswrite"},
		{faultinject.StoreNoSpace, "tsnospc"},
		{faultinject.StoreShortWrite, "tsshort"},
		{faultinject.StoreBitFlip, "tsflip"},
		{faultinject.StoreLockTimeout, "tslock"},
	}
	engines := []string{dbi.EngineIR, dbi.EngineCompiled}
	if testing.Short() {
		engines = engines[1:]
	}
	for _, eng := range engines {
		cold, _ := tcRun(t, bm, eng, 0, harness.Setup{})
		for _, k := range kinds {
			faultCache := func(dir string) *tstore.Cache {
				in := faultinject.New(11)
				in.Enable(k.kind, 1)
				return tstore.NewCacheOpts(tstore.Options{
					Dir: dir, FS: &tstore.FaultFS{In: in},
					LockTimeout: 10 * time.Millisecond,
				})
			}

			// Cold against a faulty directory-backed cache: every disk op
			// fails, the run translates everything itself.
			coldFault, _ := tcRun(t, bm, eng, 0,
				harness.Setup{TStore: faultCache(t.TempDir())})
			diffPrints(t, bm.Name+"/"+eng+"/"+k.name+"/cold", cold, coldFault)

			// Disk-warm: a clean run persists the tier first; the faulty
			// cache then fails (partially or totally) to read it back. The
			// run must land cold-or-warm but always identical.
			dir := t.TempDir()
			seedCache := tstore.NewCache(dir)
			_, _ = tcRun(t, bm, eng, 0, harness.Setup{TStore: seedCache})
			if err := seedCache.Save(); err != nil {
				t.Fatalf("seed save: %v", err)
			}
			warmFault, warmInst := tcRun(t, bm, eng, 0,
				harness.Setup{TStore: faultCache(dir)})
			diffPrints(t, bm.Name+"/"+eng+"/"+k.name+"/disk-warm", cold, warmFault)
			if warmInst.Core.Translations == 0 && warmInst.Core.SharedHits == 0 {
				t.Fatalf("%s/%s: run neither translated nor adopted", eng, k.name)
			}

			// Pretranslated: the pipeline races the guest while the disk
			// tier misbehaves underneath both.
			preFault, _ := tcRun(t, bm, eng, 0, harness.Setup{
				TStore:       faultCache(t.TempDir()),
				Pretranslate: true,
				NewTool:      func() dbi.Tool { return core.New(core.Options{}) },
			})
			diffPrints(t, bm.Name+"/"+eng+"/"+k.name+"/pretranslated", cold, preFault)
		}
	}
}

// TestSweepAmortization: a 100-seed explore sweep over one program performs
// about one image's worth of translation work in total — the marginal
// translation cost of an extra seed is near zero.
func TestSweepAmortization(t *testing.T) {
	bm, ok := drb.ByName("072-taskdep1-orig")
	if !ok {
		t.Fatal("missing benchmark")
	}
	_, coldInst := tcRun(t, bm, dbi.EngineCompiled, 0, harness.Setup{})
	solo := coldInst.Core.Translations

	cache := tstore.NewCache("")
	out, err := explore.RunOpts(bm.Build, "taskgrind", 4, 100, explore.Opts{
		Workers: 8, Engine: dbi.EngineCompiled, TStore: cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Seeds != 100 {
		t.Fatalf("sweep ran %d seeds", out.Seeds)
	}
	stats := cache.Stats()
	// Different seeds schedule differently and can reach slightly different
	// code; allow modest slack over the single-run block count.
	if limit := solo + solo/3; stats.Puts > limit {
		t.Fatalf("100-seed sweep translated %d blocks; one run translates %d (limit %d)",
			stats.Puts, solo, limit)
	}
	if stats.Hits < 50*uint64(solo) {
		t.Fatalf("sweep adopted only %d blocks across 100 seeds (solo=%d)", stats.Hits, solo)
	}
}
