package repro

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§V), plus the ablations DESIGN.md calls out. Custom metrics
// (races, report counts, memory ratios) are attached with b.ReportMetric so
// `go test -bench=. -benchmem` regenerates the evaluation in one run.

import (
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/drb"
	"repro/internal/harness"
	"repro/internal/itree"
	"repro/internal/lulesh"
	"repro/internal/obs"
	"repro/internal/tools/toolreg"
)

// --- Table I ------------------------------------------------------------

// BenchmarkTableI runs the full microbenchmark suite (29 DRB + 7 TMB) under
// one tool per sub-benchmark and reports verdict agreement with the paper.
func BenchmarkTableI(b *testing.B) {
	seeds := []uint64{1, 2, 3, 4}
	for tool := drb.Tool(0); tool < drb.NumTools; tool++ {
		b.Run(tool.String(), func(b *testing.B) {
			var match, total int
			for i := 0; i < b.N; i++ {
				match, total = 0, 0
				for _, bench := range drb.All() {
					threadsList := []int{4}
					if bench.TMB {
						threadsList = []int{1, 4}
					}
					for _, threads := range threadsList {
						v, err := drb.VerdictOf(bench, tool, threads, seeds)
						if err != nil {
							b.Fatal(err)
						}
						total++
						_ = v
					}
				}
			}
			rows, err := drb.GenerateTableI(seeds)
			if err != nil {
				b.Fatal(err)
			}
			per := drb.MatchStats(rows)
			match, total = per[tool][0], per[tool][1]
			b.ReportMetric(float64(match), "cells-matching-paper")
			b.ReportMetric(float64(total), "cells-total")
			b.ReportMetric(float64(drb.FalseNegatives(rows, tool)), "false-negatives")
		})
	}
}

// --- Table II -----------------------------------------------------------

// BenchmarkTableII measures LULESH (-s 12 scaled from the paper's -s 16 to
// keep bench iterations short) under no-tools / Archer / Taskgrind at 1 and
// 4 threads, correct and racy, reporting the overhead ratios the paper
// tabulates.
func BenchmarkTableII(b *testing.B) {
	p := lulesh.Params{S: 12, TEL: 4, TNL: 4, Iters: 2}
	for _, cfg := range []struct {
		name    string
		tool    string
		threads int
		racy    bool
	}{
		{"none-1t", "none", 1, false},
		{"none-4t", "none", 4, false},
		{"archer-1t", "archer", 1, false},
		{"archer-4t", "archer", 4, false},
		{"taskgrind-1t", "taskgrind", 1, false},
		{"taskgrind-4t", "taskgrind", 4, false},
		{"taskgrind-racy-1t", "taskgrind", 1, true},
		{"archer-racy-4t", "archer", 4, true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			pp := p
			pp.Racy = cfg.racy
			var last lulesh.RunResult
			for i := 0; i < b.N; i++ {
				res, err := lulesh.Run(pp, cfg.tool, cfg.threads, uint64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.Reports), "reports")
			b.ReportMetric(float64(last.Footprint)/1e6, "guest-MB")
		})
	}
}

// --- Fig 4 --------------------------------------------------------------

// BenchmarkFig4 sweeps the problem size: the per-size sub-benchmarks expose
// the O(s^3) growth and the per-tool overhead ratios of the figure.
func BenchmarkFig4(b *testing.B) {
	for _, s := range []int{4, 8, 12, 16} {
		for _, tool := range []string{"none", "archer", "taskgrind"} {
			b.Run(tool+"-s"+itoa(s), func(b *testing.B) {
				p := lulesh.Params{S: s, TEL: 4, TNL: 4, Iters: 2}
				threads := 4
				if tool == "taskgrind" {
					threads = 1 // the paper runs Taskgrind single-threaded
				}
				var last lulesh.RunResult
				for i := 0; i < b.N; i++ {
					res, err := lulesh.Run(p, tool, threads, 1)
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(float64(last.Instrs), "guest-instrs")
				b.ReportMetric(float64(last.Footprint)/1e6, "guest-MB")
			})
		}
	}
}

// --- §IV motivation (naive suppression) ----------------------------------

// BenchmarkNaiveSuppression compares default Taskgrind against the
// all-suppressions-off configuration on correct LULESH — the experiment
// motivating §IV (the paper measured ~400k reports at -s 4 -tel 2).
func BenchmarkNaiveSuppression(b *testing.B) {
	p := lulesh.Params{S: 4, TEL: 2, TNL: 2, Iters: 4}
	for _, tool := range []string{"taskgrind", "taskgrind-naive"} {
		b.Run(tool, func(b *testing.B) {
			var last lulesh.RunResult
			for i := 0; i < b.N; i++ {
				res, err := lulesh.Run(p, tool, 4, 3)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.Reports), "reports")
		})
	}
}

// --- §V-B ROMP blow-up ---------------------------------------------------

// BenchmarkROMPBlowup contrasts ROMP's per-access shadow accounting with
// Taskgrind's merged interval trees on growing meshes: the footprint ratio
// grows with the access count, the shape behind ROMP's 75 GB crash at
// -s 64 in the paper.
func BenchmarkROMPBlowup(b *testing.B) {
	for _, s := range []int{4, 8, 12} {
		b.Run("s"+itoa(s), func(b *testing.B) {
			p := lulesh.Params{S: s, TEL: 4, TNL: 4, Iters: 2}
			var rompFoot, tgFoot float64
			for i := 0; i < b.N; i++ {
				r, err := lulesh.Run(p, "romp", 4, 1)
				if err != nil {
					b.Fatal(err)
				}
				t, err := lulesh.Run(p, "taskgrind", 4, 1)
				if err != nil {
					b.Fatal(err)
				}
				rompFoot, tgFoot = float64(r.Footprint), float64(t.Footprint)
			}
			b.ReportMetric(rompFoot/1e6, "romp-MB")
			b.ReportMetric(tgFoot/1e6, "taskgrind-MB")
			b.ReportMetric(rompFoot/tgFoot, "blowup-ratio")
		})
	}
}

// --- Ablation A1: interval tree vs flat recording ------------------------

// BenchmarkItreeVsFlat measures the §III-B design choice: recording a dense
// kernel sweep into a merging interval tree versus a flat per-access log.
func BenchmarkItreeVsFlat(b *testing.B) {
	const accesses = 1 << 16
	b.Run("itree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := itree.New()
			for a := uint64(0); a < accesses; a++ {
				tr.InsertPoint(0x1000+a*8, 8)
			}
			b.ReportMetric(float64(tr.Footprint()), "shadow-bytes")
		}
	})
	b.Run("flat", func(b *testing.B) {
		type rec struct {
			addr uint64
			w    uint8
		}
		for i := 0; i < b.N; i++ {
			log := make([]rec, 0, 1024)
			for a := uint64(0); a < accesses; a++ {
				log = append(log, rec{0x1000 + a*8, 8})
			}
			b.ReportMetric(float64(len(log)*16), "shadow-bytes")
		}
	})
}

// --- Ablation A2: sequential vs parallel analysis pass --------------------

// BenchmarkAnalysisParallel isolates the Fini pass (the paper's
// embarrassingly-parallel future-work item) on racy LULESH recordings:
// the recording phase runs outside the timer; only the analysis is timed.
func BenchmarkAnalysisParallel(b *testing.B) {
	p := lulesh.Params{S: 8, TEL: 16, TNL: 16, Iters: 6, Racy: true}
	for _, cfg := range []struct {
		name    string
		workers int
	}{{"sequential", 1}, {"workers-4", 4}} {
		b.Run(cfg.name, func(b *testing.B) {
			var races int
			b.StopTimer()
			for i := 0; i < b.N; i++ {
				bb, err := lulesh.Build(p)
				if err != nil {
					b.Fatal(err)
				}
				opt := core.DefaultOptions()
				opt.AnalysisWorkers = cfg.workers
				tg := core.New(opt)
				im, err := bb.Link()
				if err != nil {
					b.Fatal(err)
				}
				inst, err := harness.New(harness.Setup{Image: im, Tool: tg, Seed: 2, Threads: 4})
				if err != nil {
					b.Fatal(err)
				}
				if err := inst.M.Run(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				tg.Fini(inst.Core) // the measured region
				b.StopTimer()
				races = tg.RaceCount
			}
			b.ReportMetric(float64(races), "races")
		})
	}
}

// --- Ablation A3: suppression passes -------------------------------------

// BenchmarkSuppressionAblation toggles each §IV suppression independently on
// correct LULESH and reports the surviving (spurious) race count.
func BenchmarkSuppressionAblation(b *testing.B) {
	p := lulesh.Params{S: 4, TEL: 2, TNL: 2, Iters: 2}
	variants := []struct {
		name string
		mod  func(*core.Options)
	}{
		{"all-on", func(o *core.Options) {}},
		{"no-ignore-list", func(o *core.Options) { o.IgnoreList = nil }},
		{"no-free-off", func(o *core.Options) { o.NoFree = false }},
		{"no-tls", func(o *core.Options) { o.TLSSuppression = false }},
		{"no-stack", func(o *core.Options) {
			o.StackSuppression = false
			o.StackLifetimeSuppression = false
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var races int
			for i := 0; i < b.N; i++ {
				opt := core.DefaultOptions()
				v.mod(&opt)
				tg := core.New(opt)
				bb, err := lulesh.Build(p)
				if err != nil {
					b.Fatal(err)
				}
				res, _, err := harness.BuildAndRun(bb, harness.Setup{Tool: tg, Seed: 3, Threads: 4})
				if err != nil || res.Err != nil {
					b.Fatal(err, res.Err)
				}
				races = tg.RaceCount
			}
			b.ReportMetric(float64(races), "spurious-races")
		})
	}
}

// --- Observability overhead ----------------------------------------------

// BenchmarkObservability measures the cost of the obs layer on a Taskgrind
// LULESH run: hooks absent (the nil fast path the acceptance criteria bound
// to noise), metrics only, and the full stack (metrics + ring tracer +
// sampling profiler). The full variant's snapshot is written to
// $OBS_BENCH_OUT when set (the `make bench-obs` smoke target).
func BenchmarkObservability(b *testing.B) {
	p := lulesh.Params{S: 8, TEL: 4, TNL: 4, Iters: 2}
	run := func(b *testing.B, hooks *obs.Hooks) *harness.Instance {
		bb, err := lulesh.Build(p)
		if err != nil {
			b.Fatal(err)
		}
		tg := core.New(core.DefaultOptions())
		// Slice 1000 approximates Valgrind's scheduling quantum (on the
		// order of 100k basic blocks between forced thread switches) rather
		// than the harness's interleaving-hunting default of 3. Combined
		// with the scheduler's solo fast path, slice ends — and the budget /
		// obs sampling gates that run at them — become rare events instead
		// of per-handful-of-blocks overhead; preemptions per slice is one of
		// the figures recorded in BENCH_obs.json.
		res, inst, err := harness.BuildAndRun(bb, harness.Setup{
			Tool: tg, Seed: 1, Threads: 4, Obs: hooks, Slice: 1000,
		})
		if err != nil || res.Err != nil {
			b.Fatal(err, res.Err)
		}
		return inst
	}
	b.Run("hooks-off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, nil)
		}
	})
	b.Run("metrics", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reg := obs.NewRegistry()
			inst := run(b, &obs.Hooks{Metrics: reg})
			inst.CaptureMetrics(reg)
		}
	})
	b.Run("full", func(b *testing.B) {
		var snap obs.Snapshot
		var events uint64
		for i := 0; i < b.N; i++ {
			reg := obs.NewRegistry()
			tr := obs.NewTracer(obs.NewRingSink(1 << 16))
			prof := obs.NewProfiler(64)
			inst := run(b, &obs.Hooks{Metrics: reg, Tracer: tr, Prof: prof})
			inst.CaptureMetrics(reg)
			snap = reg.Snapshot()
			events = tr.Events()
		}
		b.ReportMetric(float64(events), "trace-events")
		b.ReportMetric(float64(snap.Counter("dbi_translations_total")), "translations")
		if out := os.Getenv("OBS_BENCH_OUT"); out != "" {
			f, err := os.Create(out)
			if err != nil {
				b.Fatal(err)
			}
			if err := snap.WriteJSON(f); err != nil {
				b.Fatal(err)
			}
			f.Close()
		}
	})
}

// --- Engine overhead ------------------------------------------------------

// BenchmarkEngines compares the direct interpreter against the heavyweight
// IR engine on the same workload — the intrinsic DBI cost before any
// analysis work.
func BenchmarkEngines(b *testing.B) {
	p := lulesh.Params{S: 8, TEL: 4, TNL: 4, Iters: 2}
	for _, tool := range toolreg.Names() {
		if tool == "taskgrind-par" || tool == "taskgrind-naive" {
			continue
		}
		b.Run(tool, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := lulesh.Run(p, tool, 4, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
