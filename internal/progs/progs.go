// Package progs names the built-in guest programs: every DRB/TMB
// microbenchmark, the LULESH proxy, the paper's Listing 4 example and the
// fault-model demo. It is the one program registry shared by the CLI
// (`taskgrind -prog`), the analysis daemon (`taskgrindd` job specs) and the
// replay-token decoder — a program name appearing in a `tg1:` token resolves
// here no matter which binary replays it.
package progs

import (
	"fmt"

	"repro/internal/drb"
	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/lulesh"
	"repro/internal/omp"
)

// Build resolves a program name to a fresh builder (builders are
// single-link, so every call constructs anew). lp is consulted for
// "lulesh" only.
func Build(name string, lp lulesh.Params) (*gbuild.Builder, error) {
	switch name {
	case "lulesh":
		return lulesh.Build(lp)
	case "task.c":
		return Listing4(), nil
	case "task.c-critical":
		return Listing4Critical(), nil
	case "wildstore":
		return Wildstore(), nil
	}
	if b, ok := drb.ByName(name); ok {
		return b.Build(), nil
	}
	return nil, fmt.Errorf("unknown program %q (use -list)", name)
}

// Names enumerates the built-in program names, specials first, in the
// order `taskgrind -list` prints them.
func Names() []string {
	names := []string{"task.c", "task.c-critical", "lulesh", "wildstore"}
	for _, b := range drb.All() {
		names = append(names, b.Name)
	}
	for _, b := range drb.LockSuite() {
		names = append(names, b.Name)
	}
	return names
}

// Listing4 is the paper's erroneous example program (Listing 4).
func Listing4() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("xptr", 8)
	const r0, r1, r2 = guest.R0, guest.R1, guest.R2

	f := b.Func("task_a", "task.c")
	f.Line(8)
	f.LoadSym(r1, "xptr")
	f.Ld(8, r1, r1, 0)
	f.Ldi(r2, 42)
	f.St(4, r1, 0, r2)
	f.Ret()

	f = b.Func("task_b", "task.c")
	f.Line(11)
	f.LoadSym(r1, "xptr")
	f.Ld(8, r1, r1, 0)
	f.Ldi(r2, 43)
	f.St(4, r1, 0, r2)
	f.Ret()

	f = b.Func("micro", "task.c")
	f.Enter(0)
	fn := f
	omp.SingleNowait(f, func() {
		fn.Line(8)
		omp.EmitTask(fn, omp.TaskOpts{Fn: "task_a"})
		fn.Line(11)
		omp.EmitTask(fn, omp.TaskOpts{Fn: "task_b"})
	})
	f.Leave()

	f = b.Func("main", "task.c")
	f.Enter(0)
	f.Line(3)
	f.Ldi(r0, 8)
	f.Hcall("malloc")
	f.LoadSym(r1, "xptr")
	f.St(8, r1, 0, r0)
	f.Line(4)
	f.Ldi(r1, 0)
	omp.Parallel(f, "micro", r1, 0)
	f.Ldi(r0, 0)
	f.Hlt(r0)
	return b
}

// Listing4Critical is Listing 4 with both task bodies wrapped in the same
// named critical section: the writes to *xptr are mutually exclusive, so no
// lockset tool reports — but which value x ends with still depends on the
// schedule, so Taskgrind (deliberately, §VI) keeps reporting the pair.
func Listing4Critical() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("xptr", 8)
	const r0, r1, r2 = guest.R0, guest.R1, guest.R2

	task := func(name string, line int, val int32) {
		f := b.Func(name, "taskcrit.c")
		f.Line(line)
		f.Enter(0)
		omp.Critical(f, 1, func() {
			f.LoadSym(r1, "xptr")
			f.Ld(8, r1, r1, 0)
			f.Ldi(r2, val)
			f.St(4, r1, 0, r2)
		})
		f.Leave()
	}
	task("task_a", 8, 42)
	task("task_b", 12, 43)

	f := b.Func("micro", "taskcrit.c")
	f.Enter(0)
	fn := f
	omp.SingleNowait(f, func() {
		fn.Line(8)
		omp.EmitTask(fn, omp.TaskOpts{Fn: "task_a"})
		fn.Line(12)
		omp.EmitTask(fn, omp.TaskOpts{Fn: "task_b"})
	})
	f.Leave()

	f = b.Func("main", "taskcrit.c")
	f.Enter(0)
	f.Line(3)
	f.Ldi(r0, 8)
	f.Hcall("malloc")
	f.LoadSym(r1, "xptr")
	f.St(8, r1, 0, r0)
	f.Line(4)
	f.Ldi(r1, 0)
	omp.Parallel(f, "micro", r1, 0)
	f.Ldi(r0, 0)
	f.Hlt(r0)
	return b
}

// Wildstore is the fault-model demo: a task dereferences an uninitialized
// "pointer" and stores into unmapped memory, which the strict memory model
// turns into a symbolized CrashReport instead of silent page allocation.
func Wildstore() *gbuild.Builder {
	b := omp.NewProgram()
	const r0, r1, r2 = guest.R0, guest.R1, guest.R2

	f := b.Func("bad_task", "wild.c")
	f.Line(7)
	f.LdConst64(r1, 0xdead0000)
	f.Ldi(r2, 99)
	f.St(8, r1, 0, r2) // wild store: 0xdead0000 is in no mapped region
	f.Ret()

	f = b.Func("micro", "wild.c")
	f.Enter(0)
	fn := f
	omp.SingleNowait(f, func() {
		fn.Line(7)
		omp.EmitTask(fn, omp.TaskOpts{Fn: "bad_task"})
	})
	f.Leave()

	f = b.Func("main", "wild.c")
	f.Enter(0)
	f.Line(4)
	f.Ldi(r1, 0)
	omp.Parallel(f, "micro", r1, 2)
	f.Ldi(r0, 0)
	f.Hlt(r0)
	return b
}
