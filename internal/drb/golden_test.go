package drb

import "testing"

// TestTaskgrindColumnGolden pins the complete measured Taskgrind column so
// behavioural regressions anywhere in the stack (runtime, scheduler,
// suppressions, graph construction) surface as a table diff. This is the
// measured table (see EXPERIMENTS.md for the five documented deltas from
// the paper's published cells).
func TestTaskgrindColumnGolden(t *testing.T) {
	golden := map[string]Verdict{
		"027-taskdependmissing-orig@4":        TP,
		"072-taskdep1-orig@4":                 TN,
		"078-taskdep2-orig@4":                 FP,
		"079-taskdep3-orig@4":                 FP,
		"095-doall2-taskloop-orig@4":          TP,
		"096-doall2-taskloop-collapse-orig@4": FP,
		"100-task-reference-orig@4":           FP,
		"101-task-value-orig@4":               FP,
		"106-taskwaitmissing-orig@4":          TP,
		"107-taskgroup-orig@4":                TN,
		"122-taskundeferred-orig@4":           TN,
		"123-taskundeferred-orig@4":           TP,
		"127-tasking-threadprivate1-orig@4":   FP,
		"128-tasking-threadprivate2-orig@4":   FP,
		"129-mergeable-taskwait-orig@4":       FN,
		"130-mergeable-taskwait-orig@4":       TN,
		"131-taskdep4-orig-omp45@4":           TP,
		"132-taskdep4-orig-omp45@4":           TN,
		"133-taskdep5-orig-omp45@4":           TN,
		"134-taskdep5-orig-omp45@4":           TP,
		"135-taskdep-mutexinoutset-orig@4":    TN,
		"136-taskdep-mutexinoutset-orig@4":    TP,
		"165-taskdep4-orig-omp50@4":           TP,
		"166-taskdep4-orig-omp50@4":           TN,
		"167-taskdep4-orig-omp50@4":           TN,
		"168-taskdep5-orig-omp50@4":           TP,
		"173-non-sibling-taskdep@4":           TP,
		"174-non-sibling-taskdep@4":           TN,
		"175-non-sibling-taskdep2@4":          TP,
		"1000-memory-recycling_1@1":           TN,
		"1001-stack_1@1":                      TP,
		"1002-stack_2@1":                      TN,
		"1003-stack_3@1":                      TN,
		"1004-stack_4@1":                      TP,
		"1005-stack_5@1":                      TN,
		"1006-tls_1@1":                        TN,
		"1000-memory-recycling_1@4":           TN,
		"1001-stack_1@4":                      TP,
		"1002-stack_2@4":                      TN,
		"1003-stack_3@4":                      TN,
		"1004-stack_4@4":                      TP,
		"1005-stack_5@4":                      TN,
		"1006-tls_1@4":                        TN,
	}
	rows := table(t)
	if len(rows) != len(golden) {
		t.Fatalf("rows = %d, golden = %d", len(rows), len(golden))
	}
	for _, r := range rows {
		key := r.Name + "@" + itoa(r.Threads)
		want, ok := golden[key]
		if !ok {
			t.Errorf("no golden cell for %s", key)
			continue
		}
		if got := r.Verdicts[ToolTaskgrind]; got != want {
			t.Errorf("%s: Taskgrind = %s, golden %s", key, got, want)
		}
	}
}

func itoa(n int) string {
	if n == 1 {
		return "1"
	}
	return "4"
}
