// Package drb implements the microbenchmark suites of the paper's Table I:
// the task-related subset of DataRaceBench (DRB) plus the seven
// Taskgrind-specific microbenchmarks (TMB) that exercise the heavyweight-DBI
// pitfalls of §IV, together with the verdict harness that runs every
// benchmark under every tool and classifies the result (TP/FP/TN/FN,
// plus the "ncs" and "segv" tool-limitation outcomes).
package drb

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dbi"
	"repro/internal/gbuild"
	"repro/internal/harness"
	"repro/internal/tools/archer"
	"repro/internal/tools/romp"
	"repro/internal/tools/tasksan"
)

// Verdict classifies a tool's answer against the ground truth.
type Verdict uint8

// Verdicts.
const (
	TN Verdict = iota
	TP
	FP
	FN
	// NCS: "no compiler support" — the TaskSanitizer front end (Clang 8)
	// cannot build the benchmark.
	NCS
	// SEGV: the instrumented run crashes (ROMP on threadprivate).
	SEGV
)

// String renders a verdict like the paper's table.
func (v Verdict) String() string {
	switch v {
	case TN:
		return "TN"
	case TP:
		return "TP"
	case FP:
		return "FP"
	case FN:
		return "FN"
	case NCS:
		return "ncs"
	case SEGV:
		return "segv"
	}
	return "?"
}

// Classify combines detection with ground truth.
func Classify(race, detected bool) Verdict {
	switch {
	case race && detected:
		return TP
	case race && !detected:
		return FN
	case !race && detected:
		return FP
	default:
		return TN
	}
}

// Tool identifies one of the four compared tools.
type Tool uint8

// Tools, in the paper's column order.
const (
	ToolTaskSanitizer Tool = iota
	ToolArcher
	ToolROMP
	ToolTaskgrind
	NumTools
)

// String renders the tool name.
func (t Tool) String() string {
	switch t {
	case ToolTaskSanitizer:
		return "TaskSanitizer"
	case ToolArcher:
		return "Archer"
	case ToolROMP:
		return "ROMP"
	case ToolTaskgrind:
		return "Taskgrind"
	}
	return "?"
}

// Benchmark is one Table I row source.
type Benchmark struct {
	// Name matches the paper ("027-taskdependmissing-orig", "1001-stack_1").
	Name string
	// Race is the ground truth ("Determinacy Race" column).
	Race bool
	// TMB marks the Taskgrind-specific suite (run at 1 and 4 threads).
	TMB bool
	// TsanNCS: TaskSanitizer's Clang 8 front end cannot compile it.
	TsanNCS bool
	// RompSegv: the ROMP-instrumented run crashes.
	RompSegv bool
	// Build constructs the guest program.
	Build func() *gbuild.Builder
}

// All returns the full suite in table order.
func All() []Benchmark {
	out := append([]Benchmark{}, drbSuite()...)
	return append(out, tmbSuite()...)
}

// ByName finds a benchmark, searching the Table I suites and the lock
// scenarios (which live outside All so the table reproduction stays exact).
func ByName(name string) (Benchmark, bool) {
	for _, b := range All() {
		if b.Name == name {
			return b, true
		}
	}
	for _, b := range LockSuite() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// DefaultSeeds are the scheduler seeds each (benchmark, tool) pair is run
// under; a race is "detected" if any seed reports.
var DefaultSeeds = []uint64{1, 2, 3, 4, 5, 6, 7, 8}

// newTool instantiates a fresh tool plugin and its report counter.
func newTool(id Tool) (dbi.Tool, func() int) {
	switch id {
	case ToolTaskgrind:
		tg := core.New(core.DefaultOptions())
		return tg, func() int { return tg.RaceCount }
	case ToolTaskSanitizer:
		ts := tasksan.New()
		return ts, func() int { return ts.RaceCount }
	case ToolROMP:
		r := romp.New()
		return r, func() int { return r.RaceCount }
	case ToolArcher:
		a := archer.New()
		return a, a.RaceCount
	}
	panic("drb: unknown tool")
}

// Detect runs a benchmark under a tool across seeds and reports whether any
// run found a race.
func Detect(b Benchmark, tool Tool, threads int, seeds []uint64) (bool, error) {
	for _, seed := range seeds {
		t, count := newTool(tool)
		res, _, err := harness.BuildAndRun(b.Build(), harness.Setup{
			Tool: t, Seed: seed, Threads: threads,
		})
		if err != nil {
			return false, fmt.Errorf("%s under %s seed %d: %w", b.Name, tool, seed, err)
		}
		if res.Err != nil {
			return false, fmt.Errorf("%s under %s seed %d: %w", b.Name, tool, seed, res.Err)
		}
		if count() > 0 {
			return true, nil
		}
	}
	return false, nil
}

// VerdictOf produces one table cell.
func VerdictOf(b Benchmark, tool Tool, threads int, seeds []uint64) (Verdict, error) {
	if tool == ToolTaskSanitizer && b.TsanNCS {
		return NCS, nil
	}
	if tool == ToolROMP && b.RompSegv {
		return SEGV, nil
	}
	det, err := Detect(b, tool, threads, seeds)
	if err != nil {
		return 0, err
	}
	return Classify(b.Race, det), nil
}
