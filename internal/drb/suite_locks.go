package drb

import (
	"repro/internal/gbuild"
	"repro/internal/omp"
)

// LockSuite returns the guest-level lock scenarios: the rows of the
// six-tool × lock-scenario verdict matrix. They live outside All() on
// purpose — Table I reproduces the paper's benchmark set exactly, and these
// rows exist to separate *data-race* verdicts (lockset/vector-clock tools)
// from *determinacy* verdicts (Taskgrind reports lock-serialized updates as
// nondeterminism, per §VI). Benchmark.Race carries the data-race ground
// truth for these rows.
func LockSuite() []Benchmark {
	return []Benchmark{
		{Name: "lock-100-mutex-counter", Race: false, Build: buildMutexCounter},
		{Name: "lock-101-diff-mutex", Race: true, Build: buildDiffMutex},
		{Name: "lock-102-no-lock", Race: true, Build: buildNoLock},
		{Name: "lock-103-lock-order", Race: false, Build: buildLockOrder},
		{Name: "lock-104-condvar", Race: false, Build: buildCondvar},
		{Name: "lock-105-trylock", Race: false, Build: buildTrylock},
		{Name: "lock-106-trylock-crash", Race: false, Build: buildTrylockCrash},
	}
}

// emitLockMain is emitMain with a serial setup callback (mutex/condvar
// creation) before the parallel region.
func emitLockMain(b *gbuild.Builder, file string, setup func(f *gbuild.Func)) {
	f := b.Func("main", file)
	f.Enter(0)
	setup(f)
	f.Ldi(r1, 0)
	omp.Parallel(f, "micro", r1, 0)
	f.Ldi(r0, 0)
	f.Hlt(r0)
}

// lockedAdder defines a task function that adds val to global sym while
// holding the mutex stored in global mutexSym.
func lockedAdder(b *gbuild.Builder, name, file string, line int, mutexSym, sym string, val int32) {
	f := b.Func(name, file)
	f.Line(line)
	f.Enter(0)
	omp.WithMutex(f, mutexSym, func() {
		f.LoadSym(r1, sym)
		f.Ld(8, r2, r1, 0)
		f.Addi(r2, r2, val)
		f.St(8, r1, 0, r2)
	})
	f.Leave()
}

// buildMutexCounter: two sibling tasks increment one counter under the SAME
// mutex. Lock-aware tools see a common lockset (or an acquire/release
// vector-clock chain) and stay silent; Taskgrind reports the pair — the
// final counter value is deterministic but the write order is not, and
// mutual exclusion is not ordering (§VI).
func buildMutexCounter() *gbuild.Builder {
	const file = "lock100.c"
	b := omp.NewProgram()
	b.Global("m", 8)
	b.Global("counter", 8)
	lockedAdder(b, "inc_a", file, 10, "m", "counter", 1)
	lockedAdder(b, "inc_b", file, 15, "m", "counter", 2)
	singleMicro(b, file, 0, func(f *gbuild.Func) {
		f.Line(20)
		omp.EmitTask(f, omp.TaskOpts{Fn: "inc_a"})
		f.Line(21)
		omp.EmitTask(f, omp.TaskOpts{Fn: "inc_b"})
	})
	emitLockMain(b, file, func(f *gbuild.Func) {
		f.Line(5)
		omp.MutexInit(f, "m")
	})
	return b
}

// buildDiffMutex: the classic lockset bug — both tasks lock, but each locks
// a *different* mutex, so the locksets are disjoint and the counter update
// is a real data race every tool should report.
func buildDiffMutex() *gbuild.Builder {
	const file = "lock101.c"
	b := omp.NewProgram()
	b.Global("m1", 8)
	b.Global("m2", 8)
	b.Global("counter", 8)
	lockedAdder(b, "inc_a", file, 10, "m1", "counter", 1)
	lockedAdder(b, "inc_b", file, 15, "m2", "counter", 2)
	singleMicro(b, file, 0, func(f *gbuild.Func) {
		f.Line(20)
		omp.EmitTask(f, omp.TaskOpts{Fn: "inc_a"})
		f.Line(21)
		omp.EmitTask(f, omp.TaskOpts{Fn: "inc_b"})
	})
	emitLockMain(b, file, func(f *gbuild.Func) {
		f.Line(5)
		omp.MutexInit(f, "m1")
		f.Line(6)
		omp.MutexInit(f, "m2")
	})
	return b
}

// buildNoLock: one task updates the counter under the mutex, the other
// writes it bare — disjoint locksets ({M1} vs {}), a race.
func buildNoLock() *gbuild.Builder {
	const file = "lock102.c"
	b := omp.NewProgram()
	b.Global("m", 8)
	b.Global("counter", 8)
	lockedAdder(b, "inc_a", file, 10, "m", "counter", 1)
	globalWriter(b, "set_b", file, 15, "counter", 7)
	singleMicro(b, file, 0, func(f *gbuild.Func) {
		f.Line(20)
		omp.EmitTask(f, omp.TaskOpts{Fn: "inc_a"})
		f.Line(21)
		omp.EmitTask(f, omp.TaskOpts{Fn: "set_b"})
	})
	emitLockMain(b, file, func(f *gbuild.Func) {
		f.Line(5)
		omp.MutexInit(f, "m")
	})
	return b
}

// lockOrderTask defines a task that takes outerSym then innerSym and
// increments the counter holding both.
func lockOrderTask(b *gbuild.Builder, name, file string, line int, outerSym, innerSym string) {
	f := b.Func(name, file)
	f.Line(line)
	f.Enter(0)
	omp.WithMutex(f, outerSym, func() {
		omp.WithMutex(f, innerSym, func() {
			f.LoadSym(r1, "counter")
			f.Ld(8, r2, r1, 0)
			f.Addi(r2, r2, 1)
			f.St(8, r1, 0, r2)
		})
	})
	f.Leave()
}

// buildLockOrder: task A nests m1→m2, task B nests m2→m1, but a taskwait
// serializes them so this schedule never deadlocks. No data race (every
// access holds both locks), yet the acquisition-order graph has the
// m1→m2→m1 cycle — the potential deadlock only a lock-order tool reports.
func buildLockOrder() *gbuild.Builder {
	const file = "lock103.c"
	b := omp.NewProgram()
	b.Global("m1", 8)
	b.Global("m2", 8)
	b.Global("counter", 8)
	lockOrderTask(b, "ab_task", file, 10, "m1", "m2")
	lockOrderTask(b, "ba_task", file, 18, "m2", "m1")
	singleMicro(b, file, 0, func(f *gbuild.Func) {
		f.Line(26)
		omp.EmitTask(f, omp.TaskOpts{Fn: "ab_task"})
		omp.Taskwait(f)
		f.Line(28)
		omp.EmitTask(f, omp.TaskOpts{Fn: "ba_task"})
		omp.Taskwait(f)
	})
	emitLockMain(b, file, func(f *gbuild.Func) {
		f.Line(5)
		omp.MutexInit(f, "m1")
		f.Line(6)
		omp.MutexInit(f, "m2")
	})
	return b
}

// buildCondvar: a producer/consumer pair over a condvar. The producer
// publishes data and sets ready under the mutex, then signals; the consumer
// re-checks the predicate in a wait loop (spurious wakeups allowed) and
// reads data under the same mutex. Race-free for every lock-aware tool;
// Taskgrind still reports the pair (the schedule decides which task runs
// first — mutual exclusion without ordering, §VI).
func buildCondvar() *gbuild.Builder {
	const file = "lock104.c"
	b := omp.NewProgram()
	b.Global("m", 8)
	b.Global("c", 8)
	b.Global("ready", 8)
	b.Global("data", 8)
	b.Global("out", 8)

	f := b.Func("producer", file)
	f.Line(10)
	f.Enter(0)
	omp.WithMutex(f, "m", func() {
		f.LoadSym(r1, "data")
		f.Ldi(r2, 42)
		f.St(8, r1, 0, r2)
		f.LoadSym(r1, "ready")
		f.Ldi(r2, 1)
		f.St(8, r1, 0, r2)
	})
	omp.CondSignal(f, "c")
	f.Leave()

	f = b.Func("consumer", file)
	f.Line(20)
	f.Enter(0)
	f.LoadSym(r0, "m")
	f.Ld(8, r0, r0, 0)
	f.Call("__kmpc_mutex_lock")
	chk := f.NewLabel()
	got := f.NewLabel()
	f.Bind(chk)
	f.LoadSym(r1, "ready")
	f.Ld(8, r2, r1, 0)
	f.Ldi(r3, 1)
	f.Beq(r2, r3, got)
	omp.CondWait(f, "c", "m")
	f.Jmp(chk)
	f.Bind(got)
	f.LoadSym(r1, "data")
	f.Ld(8, r2, r1, 0)
	f.LoadSym(r3, "out")
	f.St(8, r3, 0, r2)
	f.LoadSym(r0, "m")
	f.Ld(8, r0, r0, 0)
	f.Call("__kmpc_mutex_unlock")
	f.Leave()

	singleMicro(b, file, 0, func(f *gbuild.Func) {
		f.Line(35)
		omp.EmitTask(f, omp.TaskOpts{Fn: "consumer"})
		f.Line(36)
		omp.EmitTask(f, omp.TaskOpts{Fn: "producer"})
	})
	emitLockMain(b, file, func(f *gbuild.Func) {
		f.Line(5)
		omp.MutexInit(f, "m")
		f.Line(6)
		omp.CondInit(f, "c")
	})
	return b
}

// buildTrylock: the second task opportunistically trylocks; on success it
// updates the shared counter under the mutex, otherwise it writes its own
// fallback cell. Race-free on both paths. Under `-inject trylock=N` the
// fallback path is taken deterministically.
func buildTrylock() *gbuild.Builder {
	const file = "lock105.c"
	b := omp.NewProgram()
	b.Global("m", 8)
	b.Global("counter", 8)
	b.Global("fallback", 8)
	lockedAdder(b, "inc_a", file, 10, "m", "counter", 1)

	f := b.Func("try_b", file)
	f.Line(15)
	f.Enter(0)
	omp.TryMutex(f, "m", func() {
		f.LoadSym(r1, "counter")
		f.Ld(8, r2, r1, 0)
		f.Addi(r2, r2, 2)
		f.St(8, r1, 0, r2)
	}, func() {
		f.LoadSym(r1, "fallback")
		f.Ldi(r2, 1)
		f.St(8, r1, 0, r2)
	})
	f.Leave()

	singleMicro(b, file, 0, func(f *gbuild.Func) {
		f.Line(25)
		omp.EmitTask(f, omp.TaskOpts{Fn: "inc_a"})
		f.Line(26)
		omp.EmitTask(f, omp.TaskOpts{Fn: "try_b"})
	})
	emitLockMain(b, file, func(f *gbuild.Func) {
		f.Line(5)
		omp.MutexInit(f, "m")
	})
	return b
}

// buildTrylockCrash: like lock-105 but serialized by a taskwait so the
// trylock can never fail naturally — and the fallback path contains a wild
// store. Only an injected trylock failure (`-inject trylock=N`) reaches it,
// which makes this the quarantine scenario for lock-fault explore sweeps.
func buildTrylockCrash() *gbuild.Builder {
	const file = "lock106.c"
	b := omp.NewProgram()
	b.Global("m", 8)
	b.Global("counter", 8)
	lockedAdder(b, "inc_a", file, 10, "m", "counter", 1)

	f := b.Func("try_b", file)
	f.Line(15)
	f.Enter(0)
	omp.TryMutex(f, "m", func() {
		f.LoadSym(r1, "counter")
		f.Ld(8, r2, r1, 0)
		f.Addi(r2, r2, 2)
		f.St(8, r1, 0, r2)
	}, func() {
		f.Line(19)
		f.LdConst64(r1, 0xdead0000)
		f.Ldi(r2, 99)
		f.St(8, r1, 0, r2) // wild store: unreachable without fault injection
	})
	f.Leave()

	singleMicro(b, file, 0, func(f *gbuild.Func) {
		f.Line(25)
		omp.EmitTask(f, omp.TaskOpts{Fn: "inc_a"})
		omp.Taskwait(f)
		f.Line(27)
		omp.EmitTask(f, omp.TaskOpts{Fn: "try_b"})
		omp.Taskwait(f)
	})
	emitLockMain(b, file, func(f *gbuild.Func) {
		f.Line(5)
		omp.MutexInit(f, "m")
	})
	return b
}
