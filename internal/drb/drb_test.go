package drb

import (
	"strings"
	"testing"
)

// tableOnce caches the generated table across tests (it runs the full suite
// under all four tools).
var tableCache []Row

func table(t *testing.T) []Row {
	t.Helper()
	if tableCache == nil {
		rows, err := GenerateTableI(DefaultSeeds)
		if err != nil {
			t.Fatal(err)
		}
		tableCache = rows
	}
	return tableCache
}

// TestHeadlineTaskgrindFewestFalseNegatives asserts the paper's central
// claim: "Amongst all the tools, [Taskgrind] reports the least
// false-negatives with only a single one on DRB129-mergeable-taskwait-orig".
func TestHeadlineTaskgrindFewestFalseNegatives(t *testing.T) {
	rows := table(t)
	if fn := FalseNegatives(rows, ToolTaskgrind); fn != 1 {
		t.Fatalf("Taskgrind false negatives = %d, want exactly 1\n%s", fn, FormatTableI(rows))
	}
	for _, r := range rows {
		if r.Verdicts[ToolTaskgrind] == FN && !strings.Contains(r.Name, "129-mergeable") {
			t.Fatalf("Taskgrind FN on %s (must only be DRB129)", r.Name)
		}
	}
	for _, tool := range []Tool{ToolArcher, ToolROMP} {
		if fn := FalseNegatives(rows, tool); fn <= 1 {
			t.Errorf("%s false negatives = %d, expected more than Taskgrind's 1", tool, fn)
		}
	}
	// TaskSanitizer misses the non-sibling race it mis-orders, and its
	// front end cannot even build several racy benchmarks (ncs): counting
	// both, it misses more races than Taskgrind.
	missed := FalseNegatives(rows, ToolTaskSanitizer)
	for _, r := range rows {
		if r.Race && r.Verdicts[ToolTaskSanitizer] == NCS {
			missed++
		}
	}
	if missed < 2 {
		t.Errorf("TaskSanitizer missed races = %d, expected >= 2", missed)
	}
}

// TestHeadlineTMBSingleThreadAccuracy asserts "Single-thread execution of
// TMB reports 100%% accuracy [for Taskgrind], while other tools do not."
func TestHeadlineTMBSingleThreadAccuracy(t *testing.T) {
	rows := table(t)
	othersPerfect := [NumTools]bool{true, true, true, true}
	for _, r := range rows {
		if r.Threads != 1 {
			continue
		}
		if v := r.Verdicts[ToolTaskgrind]; v != TP && v != TN {
			t.Errorf("Taskgrind on %s@1 = %s (accuracy must be 100%%)", r.Name, v)
		}
		for tool := Tool(0); tool < NumTools; tool++ {
			if v := r.Verdicts[tool]; v != TP && v != TN {
				othersPerfect[tool] = false
			}
		}
	}
	if othersPerfect[ToolTaskSanitizer] && othersPerfect[ToolArcher] && othersPerfect[ToolROMP] {
		t.Error("every baseline was 100% accurate on single-thread TMB; the paper's contrast is lost")
	}
}

// TestPaperTableAgreement quantifies per-cell fidelity against the published
// Table I. The threshold leaves room for the documented deltas (the paper's
// own unresolved 4-thread FPs, single-run scheduling luck in its Archer
// column, and TSan shadow-granularity artifacts we do not model).
func TestPaperTableAgreement(t *testing.T) {
	rows := table(t)
	per := MatchStats(rows)
	var match, total int
	for tool := Tool(0); tool < NumTools; tool++ {
		match += per[tool][0]
		total += per[tool][1]
		t.Logf("%s: %d/%d cells match the paper", tool, per[tool][0], per[tool][1])
	}
	if total == 0 || match*100/total < 85 {
		t.Fatalf("agreement %d/%d < 85%%\n%s", match, total, FormatTableI(rows))
	}
	// The Taskgrind column is the headline; require tighter agreement.
	if per[ToolTaskgrind][0]*100/per[ToolTaskgrind][1] < 85 {
		t.Fatalf("Taskgrind column agreement %d/%d < 85%%", per[ToolTaskgrind][0], per[ToolTaskgrind][1])
	}
}

// TestStructuralCells asserts individual cells that follow from tool
// architecture (not scheduling), pinning the mechanisms the paper discusses.
func TestStructuralCells(t *testing.T) {
	rows := table(t)
	get := func(name string, threads int) *Row {
		for i := range rows {
			if rows[i].Name == name && rows[i].Threads == threads {
				return &rows[i]
			}
		}
		t.Fatalf("row %s@%d missing", name, threads)
		return nil
	}
	checks := []struct {
		name    string
		threads int
		tool    Tool
		want    Verdict
		why     string
	}{
		{"129-mergeable-taskwait-orig", 4, ToolTaskgrind, FN, "mergeable semantics unsupported by every tool"},
		{"122-taskundeferred-orig", 4, ToolTaskgrind, TN, "Taskgrind orders undeferred tasks"},
		{"122-taskundeferred-orig", 4, ToolTaskSanitizer, FP, "TaskSanitizer does not"},
		{"122-taskundeferred-orig", 4, ToolROMP, FP, "ROMP does not order if(0) tasks"},
		{"135-taskdep-mutexinoutset-orig", 4, ToolROMP, FP, "ROMP ignores mutexinoutset"},
		{"135-taskdep-mutexinoutset-orig", 4, ToolTaskgrind, TN, "Taskgrind supports inoutset deps"},
		{"173-non-sibling-taskdep", 4, ToolTaskgrind, TP, "sibling-scoped dependence matching"},
		{"173-non-sibling-taskdep", 4, ToolTaskSanitizer, FN, "global dependence matching"},
		{"165-taskdep4-orig-omp50", 4, ToolTaskgrind, TP, "dependent taskwait waits only selected preds"},
		{"165-taskdep4-orig-omp50", 4, ToolArcher, FN, "Archer over-synchronizes dependent taskwait"},
		{"127-tasking-threadprivate1-orig", 4, ToolROMP, SEGV, "ROMP crashes on threadprivate"},
		{"127-tasking-threadprivate1-orig", 4, ToolTaskgrind, FP, "user-based TLS is not suppressed (§IV-C)"},
		{"1001-stack_1", 1, ToolArcher, FN, "thread-centric blindness on one thread"},
		{"1001-stack_1", 1, ToolTaskgrind, TP, "segment-based analysis with the §V-B annotation"},
		{"1003-stack_3", 1, ToolTaskSanitizer, FP, "bounded task-frame tracking"},
		{"1003-stack_3", 1, ToolTaskgrind, TN, "registered stack-frame suppression (§IV-D)"},
		{"1006-tls_1", 1, ToolTaskSanitizer, FP, "no TLS suppression"},
		{"1006-tls_1", 1, ToolTaskgrind, TN, "TCB/DTV suppression (§IV-C)"},
		{"1000-memory-recycling_1", 1, ToolTaskgrind, TN, "free-as-no-op kills recycling (§IV-B)"},
	}
	for _, c := range checks {
		if got := get(c.name, c.threads).Verdicts[c.tool]; got != c.want {
			t.Errorf("%s@%d under %s = %s, want %s (%s)", c.name, c.threads, c.tool, got, c.want, c.why)
		}
	}
}

// TestNCSAndSegvMetadata checks the tool-limitation cells.
func TestNCSAndSegvMetadata(t *testing.T) {
	rows := table(t)
	ncs := 0
	for _, r := range rows {
		if r.Verdicts[ToolTaskSanitizer] == NCS {
			ncs++
		}
	}
	// The paper's TaskSanitizer column has 17 ncs DRB rows.
	if ncs != 17 {
		t.Errorf("TaskSanitizer ncs rows = %d, want 17", ncs)
	}
}

// TestEverySuiteProgramTerminates runs every benchmark uninstrumented.
func TestEverySuiteProgramTerminates(t *testing.T) {
	for _, b := range All() {
		for _, threads := range []int{1, 4} {
			if det, err := Detect(b, ToolTaskgrind, threads, []uint64{5}); err != nil {
				t.Errorf("%s@%d: %v (det=%v)", b.Name, threads, err, det)
			}
		}
	}
}

// TestByName exercises the registry lookup.
func TestByName(t *testing.T) {
	if _, ok := ByName("027-taskdependmissing-orig"); !ok {
		t.Error("027 missing")
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Error("phantom benchmark")
	}
	if n := len(All()); n != 36 {
		t.Errorf("suite size = %d, want 36 (29 DRB + 7 TMB)", n)
	}
}

// TestVerdictStrings covers the verdict rendering.
func TestVerdictStrings(t *testing.T) {
	want := map[Verdict]string{TN: "TN", TP: "TP", FP: "FP", FN: "FN", NCS: "ncs", SEGV: "segv"}
	for v, s := range want {
		if v.String() != s {
			t.Errorf("%d -> %q", v, v.String())
		}
	}
	if Classify(true, true) != TP || Classify(true, false) != FN ||
		Classify(false, true) != FP || Classify(false, false) != TN {
		t.Error("Classify wrong")
	}
}
