package drb

import (
	"fmt"
	"strings"
)

// Row is one line of Table I: a benchmark at a thread count with the four
// tool verdicts in the paper's column order.
type Row struct {
	Name     string
	Race     bool
	Threads  int
	Verdicts [NumTools]Verdict
}

// PaperRow is the corresponding row of the paper's Table I.
type PaperRow struct {
	Name     string
	Threads  int // 0 for DRB rows (paper runs them at OMP_NUM_THREADS=4)
	Verdicts [NumTools]Verdict
}

// PaperTableI encodes the published Table I (TaskSanitizer, Archer, ROMP,
// Taskgrind). Archer's "FN/TP" on 1001@4 is encoded as TP (schedule-
// dependent; our any-seed harness corresponds to the TP reading).
var PaperTableI = []PaperRow{
	{"027-taskdependmissing-orig", 4, [NumTools]Verdict{TP, FN, TP, TP}},
	{"072-taskdep1-orig", 4, [NumTools]Verdict{TN, TN, TN, TN}},
	{"078-taskdep2-orig", 4, [NumTools]Verdict{TN, TN, TN, FP}},
	{"079-taskdep3-orig", 4, [NumTools]Verdict{NCS, TN, TN, FP}},
	{"095-doall2-taskloop-orig", 4, [NumTools]Verdict{NCS, TP, TP, TP}},
	{"096-doall2-taskloop-collapse-orig", 4, [NumTools]Verdict{NCS, TN, TN, FP}},
	{"100-task-reference-orig", 4, [NumTools]Verdict{NCS, FP, TN, FP}},
	{"101-task-value-orig", 4, [NumTools]Verdict{FP, FP, TN, FP}},
	{"106-taskwaitmissing-orig", 4, [NumTools]Verdict{TP, TP, TP, TP}},
	{"107-taskgroup-orig", 4, [NumTools]Verdict{FP, TN, TN, FP}},
	{"122-taskundeferred-orig", 4, [NumTools]Verdict{FP, TN, FP, TN}},
	{"123-taskundeferred-orig", 4, [NumTools]Verdict{TP, TP, TP, TP}},
	{"127-tasking-threadprivate1-orig", 4, [NumTools]Verdict{NCS, TN, SEGV, FP}},
	{"128-tasking-threadprivate2-orig", 4, [NumTools]Verdict{NCS, TN, TN, FP}},
	{"129-mergeable-taskwait-orig", 4, [NumTools]Verdict{NCS, FN, FN, FN}},
	{"130-mergeable-taskwait-orig", 4, [NumTools]Verdict{NCS, TN, TN, TN}},
	{"131-taskdep4-orig-omp45", 4, [NumTools]Verdict{NCS, TP, TP, TP}},
	{"132-taskdep4-orig-omp45", 4, [NumTools]Verdict{NCS, TN, TN, TN}},
	{"133-taskdep5-orig-omp45", 4, [NumTools]Verdict{NCS, TN, TN, TN}},
	{"134-taskdep5-orig-omp45", 4, [NumTools]Verdict{NCS, TP, TP, TP}},
	{"135-taskdep-mutexinoutset-orig", 4, [NumTools]Verdict{NCS, TN, FP, TN}},
	{"136-taskdep-mutexinoutset-orig", 4, [NumTools]Verdict{TP, TP, TP, TP}},
	{"165-taskdep4-orig-omp50", 4, [NumTools]Verdict{NCS, FN, TP, TP}},
	{"166-taskdep4-orig-omp50", 4, [NumTools]Verdict{NCS, TN, TN, TN}},
	{"167-taskdep4-orig-omp50", 4, [NumTools]Verdict{NCS, TN, TN, TN}},
	{"168-taskdep5-orig-omp50", 4, [NumTools]Verdict{NCS, TP, TP, TP}},
	{"173-non-sibling-taskdep", 4, [NumTools]Verdict{FN, FN, FN, TP}},
	{"174-non-sibling-taskdep", 4, [NumTools]Verdict{FP, TN, TN, FP}},
	{"175-non-sibling-taskdep2", 4, [NumTools]Verdict{FN, TP, TP, TP}},
	{"1000-memory-recycling_1", 1, [NumTools]Verdict{TN, TN, TN, TN}},
	{"1001-stack_1", 1, [NumTools]Verdict{TP, FN, FN, TP}},
	{"1002-stack_2", 1, [NumTools]Verdict{TN, TN, TN, TN}},
	{"1003-stack_3", 1, [NumTools]Verdict{FP, TN, TN, TN}},
	{"1004-stack_4", 1, [NumTools]Verdict{TP, FN, TP, TP}},
	{"1005-stack_5", 1, [NumTools]Verdict{FP, TN, TN, TN}},
	{"1006-tls_1", 1, [NumTools]Verdict{FP, TN, TN, TN}},
	{"1000-memory-recycling_1", 4, [NumTools]Verdict{TN, TN, TN, FP}},
	{"1001-stack_1", 4, [NumTools]Verdict{TP, TP, TP, TP}},
	{"1002-stack_2", 4, [NumTools]Verdict{TN, TN, TN, FP}},
	{"1003-stack_3", 4, [NumTools]Verdict{TN, TN, TN, TN}},
	{"1004-stack_4", 4, [NumTools]Verdict{TP, TP, TP, TP}},
	{"1005-stack_5", 4, [NumTools]Verdict{TN, TN, TN, TN}},
	{"1006-tls_1", 4, [NumTools]Verdict{FP, TN, TN, FP}},
}

// GenerateTableI runs the full suite under all four tools and returns the
// measured rows in paper order: DRB at 4 threads, then TMB at 1 and at 4.
func GenerateTableI(seeds []uint64) ([]Row, error) {
	var rows []Row
	addRows := func(benchmarks []Benchmark, threads int) error {
		for _, b := range benchmarks {
			row := Row{Name: b.Name, Race: b.Race, Threads: threads}
			for tool := Tool(0); tool < NumTools; tool++ {
				v, err := VerdictOf(b, tool, threads, seeds)
				if err != nil {
					return err
				}
				row.Verdicts[tool] = v
			}
			rows = append(rows, row)
		}
		return nil
	}
	if err := addRows(drbSuite(), 4); err != nil {
		return nil, err
	}
	if err := addRows(tmbSuite(), 1); err != nil {
		return nil, err
	}
	if err := addRows(tmbSuite(), 4); err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatTableI renders measured rows next to the paper's cells, flagging
// mismatches.
func FormatTableI(rows []Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-36s %-5s %-3s | %-13s %-9s %-9s %-9s\n",
		"Benchmark", "race", "thr", "TaskSanitizer", "Archer", "ROMP", "Taskgrind")
	match, total := 0, 0
	for _, r := range rows {
		race := "no"
		if r.Race {
			race = "yes"
		}
		fmt.Fprintf(&sb, "%-36s %-5s %-3d |", r.Name, race, r.Threads)
		paper := paperRowFor(r.Name, r.Threads)
		for tool := Tool(0); tool < NumTools; tool++ {
			cell := r.Verdicts[tool].String()
			if paper != nil {
				total++
				if paper.Verdicts[tool] == r.Verdicts[tool] {
					match++
				} else {
					cell += "(" + paper.Verdicts[tool].String() + ")"
				}
			}
			width := []int{13, 9, 9, 9}[tool]
			fmt.Fprintf(&sb, " %-*s", width, cell)
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "cells matching the paper: %d/%d (mismatches show the paper's value in parentheses)\n", match, total)
	return sb.String()
}

func paperRowFor(name string, threads int) *PaperRow {
	for i := range PaperTableI {
		p := &PaperTableI[i]
		if p.Name == name && (p.Threads == threads || (!strings.HasPrefix(name, "1") && threads == 4)) {
			return p
		}
	}
	return nil
}

// MatchStats counts agreement with the paper per tool.
func MatchStats(rows []Row) (perTool [NumTools][2]int) {
	for _, r := range rows {
		paper := paperRowFor(r.Name, r.Threads)
		if paper == nil {
			continue
		}
		for tool := Tool(0); tool < NumTools; tool++ {
			perTool[tool][1]++
			if paper.Verdicts[tool] == r.Verdicts[tool] {
				perTool[tool][0]++
			}
		}
	}
	return perTool
}

// FalseNegatives counts FN cells for a tool in measured rows (the paper's
// headline metric).
func FalseNegatives(rows []Row, tool Tool) int {
	n := 0
	for _, r := range rows {
		if r.Verdicts[tool] == FN {
			n++
		}
	}
	return n
}
