package drb

import (
	"testing"

	"repro/internal/harness"
)

// These tests pin the *ground-truth mechanics* of the benchmark programs
// themselves (independent of any tool): racy programs must have genuinely
// unordered conflicting accesses, no-race programs must be dependence- or
// sync-complete, and every program must terminate cleanly at both thread
// counts under many seeds.

func runPlain(t *testing.T, b Benchmark, threads int, seed uint64) uint64 {
	t.Helper()
	res, _, err := harness.BuildAndRun(b.Build(), harness.Setup{Seed: seed, Threads: threads})
	if err != nil {
		t.Fatalf("%s: %v", b.Name, err)
	}
	if res.Err != nil {
		t.Fatalf("%s: %v", b.Name, res.Err)
	}
	return res.ExitCode
}

// TestAllProgramsTerminateEverySeed: no deadlocks or crashes across a wider
// seed sweep than the verdict harness uses.
func TestAllProgramsTerminateEverySeed(t *testing.T) {
	for _, b := range All() {
		for _, threads := range []int{1, 2, 4} {
			for seed := uint64(1); seed <= 5; seed++ {
				runPlain(t, b, threads, seed)
			}
		}
	}
}

// TestGroundTruthStableUnderSerialization: the benchmarks' exit codes are
// scheduler-independent at one thread (fully deterministic execution).
func TestGroundTruthStableUnderSerialization(t *testing.T) {
	for _, b := range All() {
		want := runPlain(t, b, 1, 1)
		for seed := uint64(2); seed <= 4; seed++ {
			if got := runPlain(t, b, 1, seed); got != want {
				t.Errorf("%s@1: exit %d vs %d across seeds", b.Name, got, want)
			}
		}
	}
}

// TestSuiteComposition pins the suite's shape against the paper's table.
func TestSuiteComposition(t *testing.T) {
	var drbN, tmbN, racy, tsanNCS, segv int
	for _, b := range All() {
		if b.TMB {
			tmbN++
		} else {
			drbN++
		}
		if b.Race {
			racy++
		}
		if b.TsanNCS {
			tsanNCS++
		}
		if b.RompSegv {
			segv++
		}
	}
	if drbN != 29 || tmbN != 7 {
		t.Errorf("suite = %d DRB + %d TMB, want 29 + 7", drbN, tmbN)
	}
	// Ground truth: 12 racy DRB rows + 2 racy TMB rows.
	if racy != 14 {
		t.Errorf("racy benchmarks = %d, want 14", racy)
	}
	if tsanNCS != 17 {
		t.Errorf("tsan ncs = %d, want 17", tsanNCS)
	}
	if segv != 1 {
		t.Errorf("romp segv = %d, want 1", segv)
	}
}

// TestPaperTableCoversEveryRow: the encoded paper table has a cell set for
// every (benchmark, threads) combination the harness produces.
func TestPaperTableCoversEveryRow(t *testing.T) {
	for _, b := range All() {
		threads := []int{4}
		if b.TMB {
			threads = []int{1, 4}
		}
		for _, th := range threads {
			if paperRowFor(b.Name, th) == nil {
				t.Errorf("no paper row for %s@%d", b.Name, th)
			}
		}
	}
	if len(PaperTableI) != 29+7+7 {
		t.Errorf("paper table rows = %d, want 43", len(PaperTableI))
	}
}
