package drb

import (
	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/omp"
	"repro/internal/ompt"
)

// tmbSuite builds the seven Taskgrind-specific microbenchmarks (TMB) that
// target the heavyweight-DBI pitfalls of §IV. Every TMB program carries the
// §V-B "assume deferrable" annotation so that single-thread (serialized)
// executions still expose the code's task semantics to Taskgrind —
// "ensures the tool captures the code semantic and not implementation
// specific behavior".
func tmbSuite() []Benchmark {
	return []Benchmark{
		{Name: "1000-memory-recycling_1", Race: false, TMB: true, Build: t1000},
		{Name: "1001-stack_1", Race: true, TMB: true, Build: t1001},
		{Name: "1002-stack_2", Race: false, TMB: true, Build: t1002},
		{Name: "1003-stack_3", Race: false, TMB: true, Build: t1003},
		{Name: "1004-stack_4", Race: true, TMB: true, Build: t1004},
		{Name: "1005-stack_5", Race: false, TMB: true, Build: t1005},
		{Name: "1006-tls_1", Race: false, TMB: true, Build: t1006},
	}
}

// annotatedSingleMicro is singleMicro with the §V-B annotation up front.
func annotatedSingleMicro(b *gbuild.Builder, file string, localBytes int32, body func(f *gbuild.Func)) {
	f := b.Func("micro", file)
	f.Enter(localBytes)
	omp.AssumeDeferrable(f, true)
	omp.SingleNowait(f, func() { body(f) })
	f.Leave()
}

// 1000: each task mallocs, writes, reads back and frees a block (paper
// Listing 1). The system allocator recycles freed blocks, so independent
// tasks alias the same address — unless the tool neutralizes free (§IV-B).
func t1000() *gbuild.Builder {
	b := omp.NewProgram()
	f := b.Func("body", "t1000.c")
	f.Line(7)
	f.Enter(16)
	f.Ldi(r0, 8)
	f.Hcall("malloc")
	f.StLocal(8, 8, r0)
	f.Line(8)
	f.Ldi(r1, 7)
	f.St(8, r0, 0, r1)
	f.Ld(8, r2, r0, 0)
	f.Line(9)
	f.LdLocal(8, r0, 8)
	f.Hcall("free")
	f.Leave()
	annotatedSingleMicro(b, "t1000.c", 16, func(f *gbuild.Func) {
		emitLoop(f, 8, 4, func() {
			omp.EmitTask(f, omp.TaskOpts{Fn: "body"})
		})
		omp.Taskwait(f)
	})
	emitMain(b, "t1000.c")
	return b
}

// 1001: two tasks write a variable on the parent's stack frame — a real
// race. Thread-centric tools are blind to it when both tasks run on one
// thread (Listing 3's racy sibling).
func t1001() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("xa", 8)
	derefWriter(b, "w1", "t1001.c", 9, "xa", 1)
	derefWriter(b, "w2", "t1001.c", 12, "xa", 2)
	annotatedSingleMicro(b, "t1001.c", 16, func(f *gbuild.Func) {
		publishLocal(f, 8, "xa")
		omp.EmitTask(f, omp.TaskOpts{Fn: "w1"})
		omp.EmitTask(f, omp.TaskOpts{Fn: "w2"})
		omp.Taskwait(f)
	})
	emitMain(b, "t1001.c")
	return b
}

// 1002: paper Listing 3 — each task writes its *own* stack local; on one
// thread the locals land at the same address (frame reuse). Segment-local:
// must be suppressed by the §IV-D registered-frame check.
func t1002() *gbuild.Builder {
	b := omp.NewProgram()
	f := b.Func("body", "t1002.c")
	f.Line(8)
	f.Enter(16)
	f.Ldi(r1, 1)
	f.StLocal(8, 8, r1) // int x = 1 (segment-local)
	f.LdLocal(8, r2, 8)
	f.Addi(r2, r2, 1)
	f.StLocal(8, 8, r2)
	f.Leave()
	annotatedSingleMicro(b, "t1002.c", 16, func(f *gbuild.Func) {
		emitLoop(f, 8, 2, func() {
			omp.EmitTask(f, omp.TaskOpts{Fn: "body"})
		})
		omp.Taskwait(f)
	})
	emitMain(b, "t1002.c")
	return b
}

// deepHelper writes a buffer deep inside its own (large) frame; the
// conflicting addresses sit far below the task's registered frame, past the
// reach of tools that only track the immediate task frame.
func deepHelper(b *gbuild.Builder, name, file string, frame int32) {
	f := b.Func(name, file)
	f.Line(20)
	f.Enter(frame)
	for off := frame - 64; off <= frame-8; off += 8 {
		f.Ldi(r1, 3)
		f.StLocal(8, off, r1)
	}
	f.Leave()
}

// 1003: tasks call a helper with a 512-byte frame — still segment-local,
// still no race; a bounded stack tracker (TaskSanitizer) reports it.
func t1003() *gbuild.Builder {
	b := omp.NewProgram()
	deepHelper(b, "helper", "t1003.c", 512)
	f := b.Func("body", "t1003.c")
	f.Line(8)
	f.Enter(0)
	f.Call("helper")
	f.Leave()
	annotatedSingleMicro(b, "t1003.c", 16, func(f *gbuild.Func) {
		emitLoop(f, 8, 2, func() {
			omp.EmitTask(f, omp.TaskOpts{Fn: "body"})
		})
		omp.Taskwait(f)
	})
	emitMain(b, "t1003.c")
	return b
}

// 1004: two deferred tasks and an if(0) task between them, all writing the
// same parent-stack variable — racy even under serialization: the if(0)
// task is ordered against neither deferred sibling, and the deferred pair
// is unordered under real concurrency.
func t1004() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("ya", 8)
	derefWriter(b, "w0", "t1004.c", 8, "ya", 1)
	derefWriter(b, "w1", "t1004.c", 11, "ya", 2)
	derefWriter(b, "w2", "t1004.c", 14, "ya", 3)
	annotatedSingleMicro(b, "t1004.c", 16, func(f *gbuild.Func) {
		publishLocal(f, 8, "ya")
		omp.EmitTask(f, omp.TaskOpts{Fn: "w0"})
		omp.EmitTask(f, omp.TaskOpts{Fn: "w1", Flags: ompt.FlagIfZero})
		omp.EmitTask(f, omp.TaskOpts{Fn: "w2"})
		omp.Taskwait(f)
	})
	emitMain(b, "t1004.c")
	return b
}

// 1005: like 1003 through two call levels (the reuse happens in a
// grand-callee frame).
func t1005() *gbuild.Builder {
	b := omp.NewProgram()
	deepHelper(b, "leaf", "t1005.c", 768)
	f := b.Func("mid", "t1005.c")
	f.Enter(64)
	f.Call("leaf")
	f.Leave()
	f = b.Func("body", "t1005.c")
	f.Line(8)
	f.Enter(0)
	f.Call("mid")
	f.Leave()
	annotatedSingleMicro(b, "t1005.c", 16, func(f *gbuild.Func) {
		emitLoop(f, 8, 2, func() {
			omp.EmitTask(f, omp.TaskOpts{Fn: "body"})
		})
		omp.Taskwait(f)
	})
	emitMain(b, "t1005.c")
	return b
}

// 1006: tasks update a _Thread_local variable — tasks on the same thread
// alias the same TLS slot. Suppressed only by tools recording TCB/DTV
// state (§IV-C).
func t1006() *gbuild.Builder {
	b := omp.NewProgram()
	off := int32(b.TLSGlobal("tls_x", 8))
	f := b.Func("body", "t1006.c")
	f.Line(8)
	f.Ld(8, r1, guest.TP, off)
	f.Addi(r1, r1, 1)
	f.St(8, guest.TP, off, r1)
	f.Ret()
	annotatedSingleMicro(b, "t1006.c", 16, func(f *gbuild.Func) {
		emitLoop(f, 8, 8, func() {
			omp.EmitTask(f, omp.TaskOpts{Fn: "body"})
		})
		omp.Taskwait(f)
	})
	emitMain(b, "t1006.c")
	return b
}
