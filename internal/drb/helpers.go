package drb

import (
	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/omp"
)

// Register aliases for benchmark code.
const (
	r0 = guest.R0
	r1 = guest.R1
	r2 = guest.R2
	r3 = guest.R3
	r9 = guest.R9
)

// emitMain appends the standard main: run micro in a parallel region sized
// by the harness (OMP_NUM_THREADS), exit 0.
func emitMain(b *gbuild.Builder, file string) {
	f := b.Func("main", file)
	f.Enter(0)
	f.Ldi(r1, 0)
	omp.Parallel(f, "micro", r1, 0)
	f.Ldi(r0, 0)
	f.Hlt(r0)
}

// globalWriter defines a task function that stores val into sym.
func globalWriter(b *gbuild.Builder, name, file string, line int, sym string, val int32) {
	f := b.Func(name, file)
	f.Line(line)
	f.LoadSym(r1, sym)
	f.Ldi(r2, val)
	f.St(8, r1, 0, r2)
	f.Ret()
}

// globalCopier defines a task function that loads src and stores it to dst
// (dst = src + add).
func globalCopier(b *gbuild.Builder, name, file string, line int, src, dst string, add int32) {
	f := b.Func(name, file)
	f.Line(line)
	f.LoadSym(r1, src)
	f.Ld(8, r2, r1, 0)
	if add != 0 {
		f.Addi(r2, r2, add)
	}
	f.LoadSym(r1, dst)
	f.St(8, r1, 0, r2)
	f.Ret()
}

// payloadWriter defines a task function that reads an 8-byte payload value v
// and stores 1 into arr[v].
func payloadWriter(b *gbuild.Builder, name, file string, line int, arr string) {
	f := b.Func(name, file)
	f.Line(line)
	f.Ld(8, r1, r0, 0) // payload: index
	f.Muli(r1, r1, 8)
	f.LoadSym(r2, arr)
	f.Add(r2, r2, r1)
	f.Ldi(r3, 1)
	f.St(8, r2, 0, r3)
	f.Ret()
}

// fillCounter returns a Fill callback capturing the loop counter held in the
// local slot fp-off (the firstprivate copy-in).
func fillCounter(off int32) func(*gbuild.Func, uint8) {
	return func(f *gbuild.Func, p uint8) {
		f.LdLocal(8, r9, off)
		f.St(8, p, 0, r9)
	}
}

// emitLoop emits `for i = 0; i < n; i++ { body }` with the counter kept in
// the local slot fp-off (body may clobber every scratch register).
func emitLoop(f *gbuild.Func, off int32, n int32, body func()) {
	f.Ldi(r3, 0)
	f.StLocal(8, off, r3)
	loop := f.NewLabel()
	f.Bind(loop)
	body()
	f.LdLocal(8, r3, off)
	f.Addi(r3, r3, 1)
	f.StLocal(8, off, r3)
	f.Ldi(r2, n)
	f.Blt(r3, r2, loop)
}

// singleMicro wraps body in `micro() { single nowait { body } }` with
// localBytes of frame for loop counters.
func singleMicro(b *gbuild.Builder, file string, localBytes int32, body func(f *gbuild.Func)) {
	f := b.Func("micro", file)
	f.Enter(localBytes)
	omp.SingleNowait(f, func() { body(f) })
	f.Leave()
}

// publishLocal stores the address of the local slot fp-off into global sym
// (how benchmarks share a parent-stack variable with tasks).
func publishLocal(f *gbuild.Func, off int32, sym string) {
	f.LocalAddr(r9, off)
	f.LoadSym(r2, sym)
	f.St(8, r2, 0, r9)
}

// slowWriter is globalWriter preceded by a spin loop (a long-running task).
func slowWriter(b *gbuild.Builder, name, file string, line int, sym string, val int32) {
	f := b.Func(name, file)
	f.Line(line)
	f.Enter(16)
	emitLoop(f, 8, 64, func() {})
	f.LoadSym(r1, sym)
	f.Ldi(r2, val)
	f.St(8, r1, 0, r2)
	f.Leave()
}

// derefWriter defines a task function that writes val through the pointer
// stored in global ptrSym.
func derefWriter(b *gbuild.Builder, name, file string, line int, ptrSym string, val int32) {
	f := b.Func(name, file)
	f.Line(line)
	f.LoadSym(r1, ptrSym)
	f.Ld(8, r1, r1, 0)
	f.Ldi(r2, val)
	f.St(8, r1, 0, r2)
	f.Ret()
}
