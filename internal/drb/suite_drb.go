package drb

import (
	"repro/internal/gbuild"
	"repro/internal/omp"
	"repro/internal/ompt"
)

// drbSuite builds the 29 task-related DataRaceBench programs of Table I.
// Each Build mirrors the structure of the original C benchmark; comments
// note the construct under test and where the (non-)race comes from.
func drbSuite() []Benchmark {
	return []Benchmark{
		{Name: "027-taskdependmissing-orig", Race: true, Build: b027},
		{Name: "072-taskdep1-orig", Race: false, Build: b072},
		{Name: "078-taskdep2-orig", Race: false, Build: b078},
		{Name: "079-taskdep3-orig", Race: false, TsanNCS: true, Build: b079},
		{Name: "095-doall2-taskloop-orig", Race: true, TsanNCS: true, Build: b095},
		{Name: "096-doall2-taskloop-collapse-orig", Race: false, TsanNCS: true, Build: b096},
		{Name: "100-task-reference-orig", Race: false, TsanNCS: true, Build: b100},
		{Name: "101-task-value-orig", Race: false, Build: b101},
		{Name: "106-taskwaitmissing-orig", Race: true, Build: b106},
		{Name: "107-taskgroup-orig", Race: false, Build: b107},
		{Name: "122-taskundeferred-orig", Race: false, Build: b122},
		{Name: "123-taskundeferred-orig", Race: true, Build: b123},
		{Name: "127-tasking-threadprivate1-orig", Race: false, TsanNCS: true, RompSegv: true, Build: b127},
		{Name: "128-tasking-threadprivate2-orig", Race: false, TsanNCS: true, Build: b128},
		{Name: "129-mergeable-taskwait-orig", Race: true, TsanNCS: true, Build: b129},
		{Name: "130-mergeable-taskwait-orig", Race: false, TsanNCS: true, Build: b130},
		{Name: "131-taskdep4-orig-omp45", Race: true, TsanNCS: true, Build: b131},
		{Name: "132-taskdep4-orig-omp45", Race: false, TsanNCS: true, Build: b132},
		{Name: "133-taskdep5-orig-omp45", Race: false, TsanNCS: true, Build: b133},
		{Name: "134-taskdep5-orig-omp45", Race: true, TsanNCS: true, Build: b134},
		{Name: "135-taskdep-mutexinoutset-orig", Race: false, TsanNCS: true, Build: b135},
		{Name: "136-taskdep-mutexinoutset-orig", Race: true, Build: b136},
		{Name: "165-taskdep4-orig-omp50", Race: true, TsanNCS: true, Build: b165},
		{Name: "166-taskdep4-orig-omp50", Race: false, TsanNCS: true, Build: b166},
		{Name: "167-taskdep4-orig-omp50", Race: false, TsanNCS: true, Build: b167},
		{Name: "168-taskdep5-orig-omp50", Race: true, TsanNCS: true, Build: b168},
		{Name: "173-non-sibling-taskdep", Race: true, Build: b173},
		{Name: "174-non-sibling-taskdep", Race: false, Build: b174},
		{Name: "175-non-sibling-taskdep2", Race: true, Build: b175},
	}
}

// 027: two tasks write i with no dependence — the canonical missing-depend
// race.
func b027() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("i_v", 8)
	globalWriter(b, "t1", "d027.c", 10, "i_v", 1)
	globalWriter(b, "t2", "d027.c", 13, "i_v", 2)
	singleMicro(b, "d027.c", 0, func(f *gbuild.Func) {
		omp.EmitTask(f, omp.TaskOpts{Fn: "t1"})
		omp.EmitTask(f, omp.TaskOpts{Fn: "t2"})
		omp.Taskwait(f)
	})
	emitMain(b, "d027.c")
	return b
}

// 072: out(i) -> in(i) chain, properly ordered.
func b072() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("i_v", 8)
	b.Global("j_v", 8)
	globalWriter(b, "t1", "d072.c", 10, "i_v", 1)
	globalCopier(b, "t2", "d072.c", 13, "i_v", "j_v", 0)
	singleMicro(b, "d072.c", 0, func(f *gbuild.Func) {
		omp.EmitTask(f, omp.TaskOpts{Fn: "t1", Deps: []omp.Dep{omp.DepSym(ompt.DepOut, "i_v")}})
		omp.EmitTask(f, omp.TaskOpts{Fn: "t2", Deps: []omp.Dep{omp.DepSym(ompt.DepIn, "i_v")}})
		omp.Taskwait(f)
	})
	emitMain(b, "d072.c")
	return b
}

// payloadTouch prefixes a task function body with a read of its firstprivate
// payload — the capture pattern whose descriptor-pool recycling gives
// Taskgrind its §IV-B false positives.
func payloadTouch(f *gbuild.Func) { f.Ld(8, r9, r0, 0) }

// fillConst is a trivial firstprivate capture.
func fillConst(f *gbuild.Func, p uint8) {
	f.Ldi(r9, 7)
	f.St(8, p, 0, r9)
}

// 078: out(i) feeding two in(i) readers. No race; the firstprivate captures
// make it a Taskgrind pool-recycling FP candidate.
func b078() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("i_v", 8)
	b.Global("j_v", 8)
	b.Global("k_v", 8)
	f := b.Func("t1", "d078.c")
	f.Line(10)
	payloadTouch(f)
	f.LoadSym(r1, "i_v")
	f.Ldi(r2, 1)
	f.St(8, r1, 0, r2)
	f.Ret()
	for i, dst := range []string{"j_v", "k_v"} {
		f = b.Func([]string{"t2", "t3"}[i], "d078.c")
		f.Line(13 + 3*i)
		payloadTouch(f)
		f.LoadSym(r1, "i_v")
		f.Ld(8, r2, r1, 0)
		f.LoadSym(r1, dst)
		f.St(8, r1, 0, r2)
		f.Ret()
	}
	singleMicro(b, "d078.c", 0, func(f *gbuild.Func) {
		out := []omp.Dep{omp.DepSym(ompt.DepOut, "i_v")}
		in := []omp.Dep{omp.DepSym(ompt.DepIn, "i_v")}
		omp.EmitTask(f, omp.TaskOpts{Fn: "t1", PayloadBytes: 8, Fill: fillConst, Deps: out})
		omp.EmitTask(f, omp.TaskOpts{Fn: "t2", PayloadBytes: 8, Fill: fillConst, Deps: in})
		omp.EmitTask(f, omp.TaskOpts{Fn: "t3", PayloadBytes: 8, Fill: fillConst, Deps: in})
		omp.Taskwait(f)
	})
	emitMain(b, "d078.c")
	return b
}

// 079: out(i) -> in(i),out(j) -> in(j) chain with captures.
func b079() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("i_v", 8)
	b.Global("j_v", 8)
	b.Global("k_v", 8)
	f := b.Func("t1", "d079.c")
	f.Line(10)
	payloadTouch(f)
	f.LoadSym(r1, "i_v")
	f.Ldi(r2, 1)
	f.St(8, r1, 0, r2)
	f.Ret()
	f = b.Func("t2", "d079.c")
	f.Line(13)
	payloadTouch(f)
	f.LoadSym(r1, "i_v")
	f.Ld(8, r2, r1, 0)
	f.LoadSym(r1, "j_v")
	f.St(8, r1, 0, r2)
	f.Ret()
	f = b.Func("t3", "d079.c")
	f.Line(16)
	payloadTouch(f)
	f.LoadSym(r1, "j_v")
	f.Ld(8, r2, r1, 0)
	f.LoadSym(r1, "k_v")
	f.St(8, r1, 0, r2)
	f.Ret()
	singleMicro(b, "d079.c", 0, func(f *gbuild.Func) {
		omp.EmitTask(f, omp.TaskOpts{Fn: "t1", PayloadBytes: 8, Fill: fillConst,
			Deps: []omp.Dep{omp.DepSym(ompt.DepOut, "i_v")}})
		omp.EmitTask(f, omp.TaskOpts{Fn: "t2", PayloadBytes: 8, Fill: fillConst,
			Deps: []omp.Dep{omp.DepSym(ompt.DepIn, "i_v"), omp.DepSym(ompt.DepOut, "j_v")}})
		omp.EmitTask(f, omp.TaskOpts{Fn: "t3", PayloadBytes: 8, Fill: fillConst,
			Deps: []omp.Dep{omp.DepSym(ompt.DepIn, "j_v")}})
		omp.Taskwait(f)
	})
	emitMain(b, "d079.c")
	return b
}

// 095: taskloop without collapse — the inner counter jj stays shared, so
// every generated task races on it (read-modify-write).
func b095() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("jj", 8)
	b.Global("arr", 8*16)
	f := b.Func("body", "d095.c")
	f.Line(12)
	f.Enter(16)
	emitLoop(f, 8, 4, func() {
		f.LoadSym(r1, "jj") // racy rmw on the shared inner counter
		f.Ld(8, r2, r1, 0)
		f.Andi(r9, r2, 15)
		f.Muli(r9, r9, 8)
		f.LoadSym(r0, "arr")
		f.Add(r0, r0, r9)
		f.Ldi(r9, 1)
		f.St(8, r0, 0, r9)
		f.Addi(r2, r2, 1)
		f.St(8, r1, 0, r2)
	})
	f.Leave()
	singleMicro(b, "d095.c", 16, func(f *gbuild.Func) {
		emitLoop(f, 8, 4, func() {
			omp.EmitTask(f, omp.TaskOpts{Fn: "body"})
		})
		omp.Taskwait(f)
	})
	emitMain(b, "d095.c")
	return b
}

// 096: taskloop with collapse(2) — both counters are privatized into the
// task payload; tasks write disjoint slices. No race.
func b096() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("arr", 8*16)
	f := b.Func("body", "d096.c")
	f.Line(12)
	f.Ld(8, r1, r0, 0) // payload: privatized outer index
	f.Muli(r1, r1, 32)
	f.LoadSym(r2, "arr")
	f.Add(r2, r2, r1)
	for j := int32(0); j < 4; j++ {
		f.Ldi(r3, 1)
		f.St(8, r2, j*8, r3)
	}
	f.Ret()
	singleMicro(b, "d096.c", 16, func(f *gbuild.Func) {
		emitLoop(f, 8, 4, func() {
			omp.EmitTask(f, omp.TaskOpts{Fn: "body", PayloadBytes: 8, Fill: fillCounter(8)})
		})
		omp.Taskwait(f)
	})
	emitMain(b, "d096.c")
	return b
}

// 100: tasks accumulate into a parent-stack variable through a captured
// reference, protected by a critical section. No data race — but the
// accumulation order is nondeterministic, and Taskgrind does not model
// mutexes (paper §VI), so it reports the unordered writes: FP.
func b100() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("sump", 8)
	f := b.Func("acc", "d100.c")
	f.Line(11)
	f.Enter(0)
	payloadTouch(f)
	fn := f
	omp.Critical(f, 7, func() {
		fn.LoadSym(r1, "sump")
		fn.Ld(8, r1, r1, 0)
		fn.Ld(8, r2, r1, 0)
		fn.Addi(r2, r2, 5)
		fn.St(8, r1, 0, r2)
	})
	f.Leave()
	singleMicro(b, "d100.c", 16, func(f *gbuild.Func) {
		publishLocal(f, 8, "sump")
		omp.EmitTask(f, omp.TaskOpts{Fn: "acc", PayloadBytes: 8, Fill: fillConst})
		omp.EmitTask(f, omp.TaskOpts{Fn: "acc", PayloadBytes: 8, Fill: fillConst})
		omp.Taskwait(f)
	})
	emitMain(b, "d100.c")
	return b
}

// 101: a loop of tasks capturing the counter by value. Each task writes its
// own array slot: no race. The captures make it the classic Taskgrind
// pool-recycling FP (§IV-B).
func b101() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("arr", 8*16)
	payloadWriter(b, "body", "d101.c", 12, "arr")
	singleMicro(b, "d101.c", 16, func(f *gbuild.Func) {
		emitLoop(f, 8, 8, func() {
			omp.EmitTask(f, omp.TaskOpts{Fn: "body", PayloadBytes: 8, Fill: fillCounter(8)})
		})
		omp.Taskwait(f)
	})
	emitMain(b, "d101.c")
	return b
}

// 106: tasks update a shared sum and the parent reads it without a
// taskwait: races among the tasks and with the parent.
func b106() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("sum", 8)
	b.Global("out", 8)
	globalCopier(b, "addt", "d106.c", 11, "sum", "sum", 1)
	singleMicro(b, "d106.c", 16, func(f *gbuild.Func) {
		emitLoop(f, 8, 4, func() {
			omp.EmitTask(f, omp.TaskOpts{Fn: "addt"})
		})
		// Missing taskwait: the read races with the tasks.
		f.Line(16)
		f.LoadSym(r1, "sum")
		f.Ld(8, r2, r1, 0)
		f.LoadSym(r1, "out")
		f.St(8, r1, 0, r2)
	})
	emitMain(b, "d106.c")
	return b
}

// 107: a task inside a taskgroup; the parent reads after the group ends —
// ordered. Tools without taskgroup support (TaskSanitizer) report it.
func b107() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("x_v", 8)
	b.Global("out", 8)
	globalWriter(b, "t1", "d107.c", 11, "x_v", 1)
	singleMicro(b, "d107.c", 0, func(f *gbuild.Func) {
		omp.Taskgroup(f, func() {
			omp.EmitTask(f, omp.TaskOpts{Fn: "t1"})
		})
		f.Line(15)
		f.LoadSym(r1, "x_v")
		f.Ld(8, r2, r1, 0)
		f.LoadSym(r1, "out")
		f.St(8, r1, 0, r2)
	})
	emitMain(b, "d107.c")
	return b
}

// 122: a loop of if(0) tasks incrementing x. Undeferred tasks execute
// inline, fully ordered: no race. Tools that treat them as deferred
// (TaskSanitizer, ROMP) report one.
func b122() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("x_v", 8)
	globalCopier(b, "inc", "d122.c", 11, "x_v", "x_v", 1)
	singleMicro(b, "d122.c", 16, func(f *gbuild.Func) {
		emitLoop(f, 8, 4, func() {
			omp.EmitTask(f, omp.TaskOpts{Fn: "inc", Flags: ompt.FlagIfZero})
		})
		omp.Taskwait(f)
	})
	emitMain(b, "d122.c")
	return b
}

// 123: a deferred task and an if(0) task write x: the pair is unordered —
// a real race everyone should catch.
func b123() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("x_v", 8)
	globalWriter(b, "t1", "d123.c", 10, "x_v", 1)
	globalWriter(b, "t2", "d123.c", 13, "x_v", 2)
	singleMicro(b, "d123.c", 0, func(f *gbuild.Func) {
		omp.EmitTask(f, omp.TaskOpts{Fn: "t1"})
		omp.EmitTask(f, omp.TaskOpts{Fn: "t2", Flags: ompt.FlagIfZero})
		omp.Taskwait(f)
	})
	emitMain(b, "d123.c")
	return b
}

// threadprivateBody defines a task updating tp_arr[omp_get_thread_num()] —
// the "user-based thread-local" pattern §IV-C says Taskgrind cannot
// suppress: two tasks on the same thread alias the same slot.
func threadprivateBody(b *gbuild.Builder, name, file string, line int) {
	f := b.Func(name, file)
	f.Line(line)
	f.Enter(0)
	f.Call("omp_get_thread_num")
	f.Muli(r1, r0, 8)
	f.LoadSym(r2, "tp_arr")
	f.Add(r2, r2, r1)
	f.Ld(8, r3, r2, 0)
	f.Addi(r3, r3, 1)
	f.St(8, r2, 0, r3)
	f.Leave()
}

// 127/128: every team member creates tasks touching threadprivate state.
func threadprivateProgram(file string) *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("tp_arr", 8*8)
	threadprivateBody(b, "tptask", file, 12)
	// No single: each implicit task creates two tasks.
	f := b.Func("micro", file)
	f.Enter(16)
	emitLoop(f, 8, 2, func() {
		omp.EmitTask(f, omp.TaskOpts{Fn: "tptask"})
	})
	omp.Taskwait(f)
	f.Leave()
	emitMain(b, file)
	return b
}

func b127() *gbuild.Builder { return threadprivateProgram("d127.c") }
func b128() *gbuild.Builder { return threadprivateProgram("d128.c") }

// 129: a mergeable task updates what it believes is its private copy; per
// the spec the task may be merged and use the parent's storage, so the
// program is racy by specification — but no implementation (ours included)
// merges, so no tool can observe the conflict: universal FN.
func b129() *gbuild.Builder { return mergeableProgram("d129.c") }

// 130: the no-race variant of the same shape.
func b130() *gbuild.Builder { return mergeableProgram("d130.c") }

func mergeableProgram(file string) *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("x_v", 8)
	f := b.Func("mt", file)
	f.Line(11)
	f.Ld(8, r1, r0, 0) // private copy in the payload
	f.Addi(r1, r1, 1)
	f.St(8, r0, 0, r1)
	f.Ret()
	singleMicro(b, file, 16, func(f *gbuild.Func) {
		f.LoadSym(r9, "x_v")
		f.Ld(8, r9, r9, 0)
		f.StLocal(8, 8, r9)
		omp.EmitTask(f, omp.TaskOpts{
			Fn: "mt", PayloadBytes: 8, Fill: fillCounter(8),
			Flags: ompt.FlagMergeable,
		})
		omp.Taskwait(f)
		f.Line(16)
		f.LoadSym(r1, "x_v")
		f.Ld(8, r2, r1, 0)
		f.St(8, r1, 0, r2)
	})
	emitMain(b, file)
	return b
}

// 131/132: out(x) task vs parent read, without/with taskwait.
func taskdep4(file string, wait bool) *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("x_v", 8)
	b.Global("out", 8)
	globalWriter(b, "t1", file, 10, "x_v", 1)
	singleMicro(b, file, 0, func(f *gbuild.Func) {
		omp.EmitTask(f, omp.TaskOpts{Fn: "t1", Deps: []omp.Dep{omp.DepSym(ompt.DepOut, "x_v")}})
		if wait {
			omp.Taskwait(f)
		}
		f.Line(14)
		f.LoadSym(r1, "x_v")
		f.Ld(8, r2, r1, 0)
		f.LoadSym(r1, "out")
		f.St(8, r1, 0, r2)
		if !wait {
			omp.Taskwait(f)
		}
	})
	emitMain(b, file)
	return b
}

func b131() *gbuild.Builder { return taskdep4("d131.c", false) }
func b132() *gbuild.Builder { return taskdep4("d132.c", true) }

// 133/134: two dependent tasks vs parent reads, with/without the wait
// covering the second task.
func taskdep5(file string, racy bool) *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("x_v", 8)
	b.Global("y_v", 8)
	b.Global("out", 8)
	globalWriter(b, "t1", file, 10, "x_v", 1)
	globalWriter(b, "t2", file, 13, "y_v", 2)
	singleMicro(b, file, 0, func(f *gbuild.Func) {
		omp.EmitTask(f, omp.TaskOpts{Fn: "t1", Deps: []omp.Dep{omp.DepSym(ompt.DepOut, "x_v")}})
		omp.EmitTask(f, omp.TaskOpts{Fn: "t2", Deps: []omp.Dep{omp.DepSym(ompt.DepOut, "y_v")}})
		if !racy {
			omp.Taskwait(f)
		}
		f.Line(17)
		f.LoadSym(r1, "y_v") // reads y: races with t2 when not waited
		f.Ld(8, r2, r1, 0)
		f.LoadSym(r1, "out")
		f.St(8, r1, 0, r2)
		if racy {
			omp.Taskwait(f)
		}
	})
	emitMain(b, file)
	return b
}

func b133() *gbuild.Builder { return taskdep5("d133.c", false) }
func b134() *gbuild.Builder { return taskdep5("d134.c", true) }

// 135: two mutexinoutset increments — mutually exclusive, commutative:
// no race. Tools ignoring the dependence type (ROMP) report one.
func b135() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("x_v", 8)
	globalCopier(b, "t1", "d135.c", 10, "x_v", "x_v", 1)
	globalCopier(b, "t2", "d135.c", 13, "x_v", "x_v", 2)
	singleMicro(b, "d135.c", 0, func(f *gbuild.Func) {
		mx := []omp.Dep{omp.DepSym(ompt.DepMutexinoutset, "x_v")}
		omp.EmitTask(f, omp.TaskOpts{Fn: "t1", Deps: mx})
		omp.EmitTask(f, omp.TaskOpts{Fn: "t2", Deps: mx})
		omp.Taskwait(f)
	})
	emitMain(b, "d135.c")
	return b
}

// 136: one increment forgot the mutexinoutset — a real race.
func b136() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("x_v", 8)
	globalCopier(b, "t1", "d136.c", 10, "x_v", "x_v", 1)
	globalCopier(b, "t2", "d136.c", 13, "x_v", "x_v", 2)
	singleMicro(b, "d136.c", 0, func(f *gbuild.Func) {
		omp.EmitTask(f, omp.TaskOpts{Fn: "t1",
			Deps: []omp.Dep{omp.DepSym(ompt.DepMutexinoutset, "x_v")}})
		omp.EmitTask(f, omp.TaskOpts{Fn: "t2"})
		omp.Taskwait(f)
	})
	emitMain(b, "d136.c")
	return b
}

// 165: OpenMP 5.0 `taskwait depend(in: ii)` waits only for the ii writer;
// the parent then reads jj, racing with the jj task. Tools over-modelling
// the dependent taskwait as a full taskwait (Archer) miss it.
func b165() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("ii", 8)
	b.Global("jj", 8)
	b.Global("kk", 8)
	// ti computes for a while before writing ii, so the dependent
	// taskwait (which waits only for ti) outlives tj's execution — the
	// schedule under which Archer's over-synchronized modelling of
	// `taskwait depend` acquires tj's completion and goes blind.
	slowWriter(b, "ti", "d165.c", 10, "ii", 1)
	globalWriter(b, "tj", "d165.c", 13, "jj", 2)
	singleMicro(b, "d165.c", 0, func(f *gbuild.Func) {
		omp.EmitTask(f, omp.TaskOpts{Fn: "ti", Deps: []omp.Dep{omp.DepSym(ompt.DepOut, "ii")}})
		omp.EmitTask(f, omp.TaskOpts{Fn: "tj", Deps: []omp.Dep{omp.DepSym(ompt.DepOut, "jj")}})
		omp.TaskwaitDeps(f, []omp.Dep{omp.DepSym(ompt.DepIn, "ii")})
		f.Line(17)
		f.LoadSym(r1, "ii")
		f.Ld(8, r2, r1, 0)
		f.LoadSym(r1, "jj") // racy read: only ii was waited for
		f.Ld(8, r3, r1, 0)
		f.Add(r2, r2, r3)
		f.LoadSym(r1, "kk")
		f.St(8, r1, 0, r2)
		omp.Taskwait(f)
	})
	emitMain(b, "d165.c")
	return b
}

// 166: same shape but the parent only reads ii — covered by the dependent
// taskwait.
func b166() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("ii", 8)
	b.Global("jj", 8)
	b.Global("kk", 8)
	globalWriter(b, "ti", "d166.c", 10, "ii", 1)
	globalWriter(b, "tj", "d166.c", 13, "jj", 2)
	singleMicro(b, "d166.c", 0, func(f *gbuild.Func) {
		omp.EmitTask(f, omp.TaskOpts{Fn: "ti", Deps: []omp.Dep{omp.DepSym(ompt.DepOut, "ii")}})
		omp.EmitTask(f, omp.TaskOpts{Fn: "tj", Deps: []omp.Dep{omp.DepSym(ompt.DepOut, "jj")}})
		omp.TaskwaitDeps(f, []omp.Dep{omp.DepSym(ompt.DepIn, "ii")})
		f.Line(17)
		f.LoadSym(r1, "ii")
		f.Ld(8, r2, r1, 0)
		f.LoadSym(r1, "kk")
		f.St(8, r1, 0, r2)
		omp.Taskwait(f)
	})
	emitMain(b, "d166.c")
	return b
}

// 167: the dependent taskwait is followed by a full taskwait before the
// reads — fully ordered.
func b167() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("ii", 8)
	b.Global("jj", 8)
	b.Global("kk", 8)
	globalWriter(b, "ti", "d167.c", 10, "ii", 1)
	globalWriter(b, "tj", "d167.c", 13, "jj", 2)
	singleMicro(b, "d167.c", 0, func(f *gbuild.Func) {
		omp.EmitTask(f, omp.TaskOpts{Fn: "ti", Deps: []omp.Dep{omp.DepSym(ompt.DepOut, "ii")}})
		omp.EmitTask(f, omp.TaskOpts{Fn: "tj", Deps: []omp.Dep{omp.DepSym(ompt.DepOut, "jj")}})
		omp.TaskwaitDeps(f, []omp.Dep{omp.DepSym(ompt.DepIn, "ii")})
		omp.Taskwait(f)
		f.Line(18)
		f.LoadSym(r1, "ii")
		f.Ld(8, r2, r1, 0)
		f.LoadSym(r1, "jj")
		f.Ld(8, r3, r1, 0)
		f.Add(r2, r2, r3)
		f.LoadSym(r1, "kk")
		f.St(8, r1, 0, r2)
	})
	emitMain(b, "d167.c")
	return b
}

// 168: the parent writes jj while a task created *after* the dependent
// taskwait also writes jj — a race nothing covers.
func b168() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("ii", 8)
	b.Global("jj", 8)
	globalWriter(b, "ti", "d168.c", 10, "ii", 1)
	globalWriter(b, "tj", "d168.c", 13, "jj", 2)
	singleMicro(b, "d168.c", 0, func(f *gbuild.Func) {
		omp.EmitTask(f, omp.TaskOpts{Fn: "ti", Deps: []omp.Dep{omp.DepSym(ompt.DepOut, "ii")}})
		omp.TaskwaitDeps(f, []omp.Dep{omp.DepSym(ompt.DepIn, "ii")})
		omp.EmitTask(f, omp.TaskOpts{Fn: "tj", Deps: []omp.Dep{omp.DepSym(ompt.DepOut, "jj")}})
		f.Line(17)
		f.LoadSym(r1, "jj") // races with tj
		f.Ldi(r2, 3)
		f.St(8, r1, 0, r2)
		omp.Taskwait(f)
	})
	emitMain(b, "d168.c")
	return b
}

// outerWithChild defines an outer task that creates a child with a
// dependence and taskwaits it.
func outerWithChild(b *gbuild.Builder, outer, child, file string, line int, deps func() []omp.Dep) {
	f := b.Func(outer, file)
	f.Line(line)
	f.Enter(0)
	omp.EmitTask(f, omp.TaskOpts{Fn: child, Deps: deps()})
	omp.Taskwait(f)
	f.Leave()
}

// 173: dependences between non-sibling tasks do not synchronize (OpenMP
// scopes them to siblings): the two grandchildren race. Tools that match
// dependence addresses globally (TaskSanitizer, Archer's TSan annotations,
// ROMP) think they are ordered: FN.
func b173() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("v_v", 8)
	globalWriter(b, "c1", "d173.c", 12, "v_v", 1)
	globalWriter(b, "c2", "d173.c", 18, "v_v", 2)
	outerWithChild(b, "o1", "c1", "d173.c", 10, func() []omp.Dep {
		return []omp.Dep{omp.DepSym(ompt.DepOut, "v_v")}
	})
	outerWithChild(b, "o2", "c2", "d173.c", 16, func() []omp.Dep {
		return []omp.Dep{omp.DepSym(ompt.DepIn, "v_v")}
	})
	singleMicro(b, "d173.c", 0, func(f *gbuild.Func) {
		omp.EmitTask(f, omp.TaskOpts{Fn: "o1"})
		omp.EmitTask(f, omp.TaskOpts{Fn: "o2"})
		omp.Taskwait(f)
	})
	emitMain(b, "d173.c")
	return b
}

// 174: the no-race variant — the outer tasks themselves carry the
// dependence, so the grandchildren are transitively ordered.
func b174() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("v_v", 8)
	b.Global("w_v", 8)
	globalWriter(b, "c1", "d174.c", 12, "v_v", 1)
	globalWriter(b, "c2", "d174.c", 18, "v_v", 2)
	outerWithChild(b, "o1", "c1", "d174.c", 10, func() []omp.Dep { return nil })
	outerWithChild(b, "o2", "c2", "d174.c", 16, func() []omp.Dep { return nil })
	singleMicro(b, "d174.c", 0, func(f *gbuild.Func) {
		omp.EmitTask(f, omp.TaskOpts{Fn: "o1", Deps: []omp.Dep{omp.DepSym(ompt.DepOut, "w_v")}})
		omp.EmitTask(f, omp.TaskOpts{Fn: "o2", Deps: []omp.Dep{omp.DepSym(ompt.DepIn, "w_v")}})
		omp.Taskwait(f)
	})
	emitMain(b, "d174.c")
	return b
}

// 175: the grandchildren's dependences name different array slots, so even
// global matching adds no edge — the race on v stays visible.
func b175() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("v_v", 8)
	b.Global("a_arr", 16)
	globalWriter(b, "c1", "d175.c", 12, "v_v", 1)
	globalWriter(b, "c2", "d175.c", 18, "v_v", 2)
	outerWithChild(b, "o1", "c1", "d175.c", 10, func() []omp.Dep {
		return []omp.Dep{omp.DepSymOff(ompt.DepOut, "a_arr", 0)}
	})
	outerWithChild(b, "o2", "c2", "d175.c", 16, func() []omp.Dep {
		return []omp.Dep{omp.DepSymOff(ompt.DepIn, "a_arr", 8)}
	})
	singleMicro(b, "d175.c", 0, func(f *gbuild.Func) {
		omp.EmitTask(f, omp.TaskOpts{Fn: "o1"})
		omp.EmitTask(f, omp.TaskOpts{Fn: "o2"})
		omp.Taskwait(f)
	})
	emitMain(b, "d175.c")
	return b
}
