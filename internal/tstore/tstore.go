// Package tstore is the content-addressed shared translation store: the
// analog of Valgrind's tt/tc translation tiers lifted out of the per-core
// caches so translation happens once per program image, not once per run.
//
// Translation in this system is deterministic: the same (image, tool,
// engine, extend budget, delivery mode) always produces the same
// instrumented superblock and the same compiled micro-op array. That makes
// translations content-addressable — a Key is the full set of inputs the
// translator consumes, with the image reduced to a content hash — and
// therefore shareable across cores, across sweep workers, across daemon
// jobs, and (via the on-disk tier) across process restarts.
//
// A Unit carries the portable form of one translated superblock. Portable
// means every embedded helper closure is represented by its (Name, Meta,
// Args) triple rather than the closure itself: closures are bound to the
// core and tool instance that produced them, so an adopting core re-binds
// equivalent helpers of its own (copy-on-attach, implemented in
// internal/dbi). Everything per-thread and mutable — chain predictions,
// dispatch tables, generation counters — stays in the adopting core.
package tstore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/guest"
	"repro/internal/vex"
)

// FormatVersion is baked into every Key (and therefore every on-disk file
// header). Bump it whenever the unit encoding, the IR, the micro-op set or
// the translator's output changes shape: old files then simply never match
// and the store starts cold instead of serving stale translations.
const FormatVersion = 1

// Key identifies one translation universe: every input that can change the
// bytes a translation produces. Two runs with equal Keys may share
// translations; any difference — a rebuilt image, another tool, a bumped
// format — yields a disjoint store.
type Key struct {
	// Image is the content hash of the guest image (ImageHash).
	Image string
	// Tool is the registry name of the tool ("none", "taskgrind",
	// "memcheck", ...). Registry names, not Tool.Name(): variants like
	// taskgrind-naive share a report name but may instrument differently.
	Tool string
	// Engine is the execution engine ("ir" or "compiled").
	Engine string
	// Extend is the superblock extension budget.
	Extend int
	// Delivery is the access-delivery mode ("batched" or "per-event").
	Delivery string
	// Version pins the store format; NewKey sets it to FormatVersion.
	Version int
}

// String renders the canonical form hashed into the on-disk file name and
// written into the file header.
func (k Key) String() string {
	return fmt.Sprintf("v%d/img=%s/tool=%s/engine=%s/extend=%d/delivery=%s",
		k.Version, k.Image, k.Tool, k.Engine, k.Extend, k.Delivery)
}

// ImageHash computes the content hash of a guest image: text, data, entry,
// host imports, TLS size, symbols and line tables. Symbols and lines are
// included because tools instrument by symbol (taskgrind's runtime-symbol
// filter) and report by source line — a relinked image with moved symbols
// must not be served another image's translations.
func ImageHash(im *guest.Image) string {
	h := sha256.New()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wstr := func(s string) {
		w64(uint64(len(s)))
		h.Write([]byte(s))
	}
	w64(uint64(len(im.Text)))
	for _, t := range im.Text {
		w64(t)
	}
	w64(uint64(len(im.Data)))
	h.Write(im.Data)
	w64(im.Entry)
	w64(im.TLSSize)
	w64(uint64(len(im.HostImports)))
	for _, s := range im.HostImports {
		wstr(s)
	}
	w64(uint64(len(im.Symbols)))
	for _, s := range im.Symbols {
		wstr(s.Name)
		w64(s.Addr)
		w64(s.Size)
		w64(uint64(s.Kind))
	}
	w64(uint64(len(im.Lines)))
	for _, l := range im.Lines {
		w64(l.Addr)
		w64(l.Len)
		wstr(l.File)
		w64(uint64(l.Line))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Unit is one translated superblock in portable form. Units are immutable
// once published: attaching a compiled form replaces the map entry with a
// copy, so readers holding a Unit never observe mutation.
type Unit struct {
	// Addr is the guest entry address of the superblock.
	Addr uint64
	// SB is the instrumented (and optimized) IR. In a disk-loaded unit the
	// dirty statements carry nil Fn until a core re-binds them.
	SB *vex.SuperBlock
	// Code is the compiled micro-op form; nil until some core (or the
	// pretranslation pipeline) compiles the block.
	Code *vex.Compiled
	// Seams is the number of superblock-extension seams crossed translating
	// this block, replayed into the adopting core's counter.
	Seams int
	// Pretranslated marks units published by the ahead-of-execution
	// pipeline rather than by a running guest.
	Pretranslated bool
}

// Store is the shared translation tier for a single Key: a concurrent
// address-indexed map of Units. All methods are safe for concurrent use.
type Store struct {
	key Key

	mu    sync.RWMutex
	units map[uint64]*Unit
	// saved counts units already persisted; Cache.Save rewrites the file
	// only when len(units) has grown past it.
	saved int

	hits   atomic.Uint64
	misses atomic.Uint64
	puts   atomic.Uint64
}

// NewStore creates an empty store for key.
func NewStore(key Key) *Store {
	return &Store{key: key, units: make(map[uint64]*Unit)}
}

// Key returns the store's identity.
func (s *Store) Key() Key { return s.key }

// Get returns the unit at addr, or nil. Hit/miss counters feed the
// amortization assertions and the daemon's metrics.
func (s *Store) Get(addr uint64) *Unit {
	s.mu.RLock()
	u := s.units[addr]
	s.mu.RUnlock()
	if u == nil {
		s.misses.Add(1)
		return nil
	}
	s.hits.Add(1)
	return u
}

// Put publishes a unit, merging with any existing entry. The first writer
// wins field-by-field: an existing unit is never replaced, but a unit
// published without a compiled form gains one from a later Put. Determinism
// makes every published value for one address equivalent, so "first wins"
// is a performance policy, not a correctness one.
func (s *Store) Put(u *Unit) {
	if u == nil || u.SB == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.units[u.Addr]
	if cur == nil {
		s.units[u.Addr] = u
		s.puts.Add(1)
		return
	}
	if cur.Code == nil && u.Code != nil {
		merged := *cur
		merged.Code = u.Code
		s.units[u.Addr] = &merged
	}
}

// PutCode attaches a compiled form to an already-published unit. No-op when
// the address has no unit or already carries code.
func (s *Store) PutCode(addr uint64, code *vex.Compiled) {
	if code == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.units[addr]
	if cur == nil || cur.Code != nil {
		return
	}
	merged := *cur
	merged.Code = code
	s.units[addr] = &merged
}

// Len returns the number of published units.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.units)
}

// Each calls fn for every unit. Used by the persistence tier and the
// pretranslation pipeline's frontier seeding.
func (s *Store) Each(fn func(*Unit)) {
	s.mu.RLock()
	units := make([]*Unit, 0, len(s.units))
	for _, u := range s.units {
		units = append(units, u)
	}
	s.mu.RUnlock()
	for _, u := range units {
		fn(u)
	}
}

// Stats is a point-in-time snapshot of one store's counters.
type Stats struct {
	Units  int
	Hits   uint64
	Misses uint64
	// Puts counts distinct units published — the number of actual
	// translations performed against this store across all attached cores
	// and pipelines.
	Puts uint64
}

// Stats returns the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Units:  s.Len(),
		Hits:   s.hits.Load(),
		Misses: s.misses.Load(),
		Puts:   s.puts.Load(),
	}
}

// Cache is a registry of stores, one per Key, optionally backed by an
// on-disk directory. A process typically holds one Cache (per sweep, per
// daemon, per CLI invocation) and every harness instance resolves its
// Store through it.
type Cache struct {
	dir string

	mu     sync.Mutex
	stores map[Key]*Store
}

// NewCache creates a cache. dir == "" keeps the cache purely in-memory;
// otherwise stores load from and save to dir (created on first Save).
func NewCache(dir string) *Cache {
	return &Cache{dir: dir, stores: make(map[Key]*Store)}
}

// Dir returns the backing directory ("" for memory-only).
func (c *Cache) Dir() string { return c.dir }

// Open returns the store for key, creating it (and warm-loading it from
// disk, when the cache is directory-backed) on first use. Disk problems —
// missing file, stale format, torn tail, corruption — degrade to a cold
// store, never to an error: the store is an accelerator, not a dependency.
func (c *Cache) Open(key Key) *Store {
	if key.Version == 0 {
		key.Version = FormatVersion
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if st, ok := c.stores[key]; ok {
		return st
	}
	st := NewStore(key)
	if c.dir != "" {
		loadStore(c.dir, st) // best-effort warm start
	}
	c.stores[key] = st
	return st
}

// Save persists every store that grew since its last save. Memory-only
// caches no-op. Files are written whole to a temp file and renamed, so a
// crashed save never corrupts an existing tier.
func (c *Cache) Save() error {
	if c.dir == "" {
		return nil
	}
	c.mu.Lock()
	stores := make([]*Store, 0, len(c.stores))
	for _, st := range c.stores {
		stores = append(stores, st)
	}
	c.mu.Unlock()
	var first error
	for _, st := range stores {
		if err := saveStore(c.dir, st); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// CacheStats aggregates all stores in a cache.
type CacheStats struct {
	Stores int
	Units  int
	Hits   uint64
	Misses uint64
	Puts   uint64
}

// Stats sums the counters of every open store.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	stores := make([]*Store, 0, len(c.stores))
	for _, st := range c.stores {
		stores = append(stores, st)
	}
	c.mu.Unlock()
	var cs CacheStats
	cs.Stores = len(stores)
	for _, st := range stores {
		s := st.Stats()
		cs.Units += s.Units
		cs.Hits += s.Hits
		cs.Misses += s.Misses
		cs.Puts += s.Puts
	}
	return cs
}
