// Package tstore is the content-addressed shared translation store: the
// analog of Valgrind's tt/tc translation tiers lifted out of the per-core
// caches so translation happens once per program image, not once per run.
//
// Translation in this system is deterministic: the same (image, tool,
// engine, extend budget, delivery mode) always produces the same
// instrumented superblock and the same compiled micro-op array. That makes
// translations content-addressable — a Key is the full set of inputs the
// translator consumes, with the image reduced to a content hash — and
// therefore shareable across cores, across sweep workers, across daemon
// jobs, and (via the on-disk tier) across concurrent processes and process
// restarts.
//
// A Unit carries the portable form of one translated superblock. Portable
// means every embedded helper closure is represented by its (Name, Meta,
// Args) triple rather than the closure itself: closures are bound to the
// core and tool instance that produced them, so an adopting core re-binds
// equivalent helpers of its own (copy-on-attach, implemented in
// internal/dbi). Everything per-thread and mutable — chain predictions,
// dispatch tables, generation counters — stays in the adopting core.
//
// The store is bounded: a Cache may carry byte and unit caps, enforced by
// clock-style (second-chance) eviction over generation-stamped adoption
// times. Evicting a unit is always safe — cores keep their own copies of
// adopted blocks, so a re-miss merely retranslates — which is why a cheap
// approximate policy suffices.
package tstore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/guest"
	"repro/internal/vex"
)

// FormatVersion is baked into every Key (and therefore every on-disk file
// header). Bump it whenever the unit encoding, the IR, the micro-op set or
// the translator's output changes shape: old files then simply never match
// and the store starts cold instead of serving stale translations.
const FormatVersion = 1

// Key identifies one translation universe: every input that can change the
// bytes a translation produces. Two runs with equal Keys may share
// translations; any difference — a rebuilt image, another tool, a bumped
// format — yields a disjoint store.
type Key struct {
	// Image is the content hash of the guest image (ImageHash).
	Image string
	// Tool is the registry name of the tool ("none", "taskgrind",
	// "memcheck", ...). Registry names, not Tool.Name(): variants like
	// taskgrind-naive share a report name but may instrument differently.
	Tool string
	// Engine is the execution engine ("ir" or "compiled").
	Engine string
	// Extend is the superblock extension budget.
	Extend int
	// Delivery is the access-delivery mode ("batched" or "per-event").
	Delivery string
	// Version pins the store format; NewKey sets it to FormatVersion.
	Version int
}

// String renders the canonical form hashed into the on-disk file name and
// written into the file header.
func (k Key) String() string {
	return fmt.Sprintf("v%d/img=%s/tool=%s/engine=%s/extend=%d/delivery=%s",
		k.Version, k.Image, k.Tool, k.Engine, k.Extend, k.Delivery)
}

// ImageHash computes the content hash of a guest image: text, data, entry,
// host imports, TLS size, symbols and line tables. Symbols and lines are
// included because tools instrument by symbol (taskgrind's runtime-symbol
// filter) and report by source line — a relinked image with moved symbols
// must not be served another image's translations.
func ImageHash(im *guest.Image) string {
	h := sha256.New()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wstr := func(s string) {
		w64(uint64(len(s)))
		h.Write([]byte(s))
	}
	w64(uint64(len(im.Text)))
	for _, t := range im.Text {
		w64(t)
	}
	w64(uint64(len(im.Data)))
	h.Write(im.Data)
	w64(im.Entry)
	w64(im.TLSSize)
	w64(uint64(len(im.HostImports)))
	for _, s := range im.HostImports {
		wstr(s)
	}
	w64(uint64(len(im.Symbols)))
	for _, s := range im.Symbols {
		wstr(s.Name)
		w64(s.Addr)
		w64(s.Size)
		w64(uint64(s.Kind))
	}
	w64(uint64(len(im.Lines)))
	for _, l := range im.Lines {
		w64(l.Addr)
		w64(l.Len)
		wstr(l.File)
		w64(uint64(l.Line))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Unit is one translated superblock in portable form. Units are immutable
// once published: attaching a compiled form replaces the published pointer
// with a copy, so readers holding a Unit never observe mutation.
type Unit struct {
	// Addr is the guest entry address of the superblock.
	Addr uint64
	// SB is the instrumented (and optimized) IR. In a disk-loaded unit the
	// dirty statements carry nil Fn until a core re-binds them.
	SB *vex.SuperBlock
	// Code is the compiled micro-op form; nil until some core (or the
	// pretranslation pipeline) compiles the block.
	Code *vex.Compiled
	// Seams is the number of superblock-extension seams crossed translating
	// this block, replayed into the adopting core's counter.
	Seams int
	// Pretranslated marks units published by the ahead-of-execution
	// pipeline rather than by a running guest.
	Pretranslated bool
}

// slot wraps a published unit with the bookkeeping the eviction clock
// needs. The unit pointer is guarded by the store mutex; gen is atomic so
// adoptions can stamp it without writing the map.
type slot struct {
	u *Unit
	// gen is the store clock value at the unit's last adoption (Get hit);
	// 0 = published but never adopted.
	gen atomic.Uint64
	// seen is gen as observed at the eviction hand's last visit (guarded by
	// the store mutex). gen == seen at a visit means no adoption since —
	// the unit's second chance is spent and it is evicted.
	seen uint64
	// size is the unit's encoded size in bytes (0 when the cache carries no
	// byte cap — exact sizing costs an encode, so it is pay-for-play).
	size int64
}

// Store is the shared translation tier for a single Key: a concurrent
// address-indexed map of Units. All methods are safe for concurrent use.
type Store struct {
	key   Key
	cache *Cache    // nil for a standalone store: no caps, no disk
	disk  *diskTier // nil when memory-only

	mu    sync.RWMutex
	units map[uint64]*slot
	// evicted records addresses the eviction clock dropped, so a disk merge
	// does not resurrect them (the shared file keeps their frames until the
	// next compaction). Cleared when the address is translated again.
	evicted map[uint64]bool
	// hand is the eviction clock position (an index into the sorted address
	// list, persisted across sweeps so the clock actually rotates).
	hand int

	// clock stamps adoptions; slot.gen snapshots it.
	clock atomic.Uint64

	hits      atomic.Uint64
	misses    atomic.Uint64
	puts      atomic.Uint64
	evictions atomic.Uint64
	corrupt   atomic.Uint64
	ioFaults  atomic.Uint64
	lockWaits atomic.Uint64
	merged    atomic.Uint64
}

// NewStore creates an empty standalone store for key (no caps, no disk).
func NewStore(key Key) *Store {
	return &Store{key: key, units: make(map[uint64]*slot), evicted: make(map[uint64]bool)}
}

// Key returns the store's identity.
func (s *Store) Key() Key { return s.key }

// Get returns the unit at addr, or nil. A miss on a disk-backed store may
// trigger a throttled re-scan of the shared file — the path by which a warm
// process's frames seed a cold one mid-run. Hit/miss counters feed the
// amortization assertions and the daemon's metrics.
func (s *Store) Get(addr uint64) *Unit {
	s.mu.RLock()
	sl := s.units[addr]
	var u *Unit
	if sl != nil {
		u = sl.u
	}
	s.mu.RUnlock()
	if u == nil && s.disk != nil && s.disk.maybeMerge(s) {
		s.mu.RLock()
		if sl = s.units[addr]; sl != nil {
			u = sl.u
		}
		s.mu.RUnlock()
	}
	if u == nil {
		s.misses.Add(1)
		return nil
	}
	sl.gen.Store(s.clock.Add(1))
	s.hits.Add(1)
	return u
}

// sizeOf measures a unit's encoded footprint (frame overhead included).
func sizeOf(u *Unit) int64 {
	var e enc
	encodeUnit(&e, u)
	return int64(len(e.buf)) + 16
}

// track accounts an inserted/updated slot against the cache totals. Called
// with s.mu held; cache totals are atomics, so no lock ordering applies.
func (s *Store) track(sl *slot, isNew bool) {
	if s.cache == nil {
		return
	}
	if s.cache.opts.MaxBytes > 0 {
		old := sl.size
		sl.size = sizeOf(sl.u)
		s.cache.bytes.Add(sl.size - old)
	}
	if isNew {
		s.cache.totalUnits.Add(1)
	}
}

// Put publishes a unit, merging with any existing entry. The first writer
// wins field-by-field: an existing unit is never replaced, but a unit
// published without a compiled form gains one from a later Put. Determinism
// makes every published value for one address equivalent, so "first wins"
// is a performance policy, not a correctness one.
func (s *Store) Put(u *Unit) {
	if u == nil || u.SB == nil {
		return
	}
	s.mu.Lock()
	cur := s.units[u.Addr]
	if cur == nil {
		sl := &slot{u: u}
		s.units[u.Addr] = sl
		delete(s.evicted, u.Addr)
		s.puts.Add(1)
		s.track(sl, true)
	} else if cur.u.Code == nil && u.Code != nil {
		merged := *cur.u
		merged.Code = u.Code
		cur.u = &merged
		s.track(cur, false)
	}
	s.mu.Unlock()
	if s.cache != nil {
		s.cache.maybeEvict(s, u.Addr)
	}
}

// PutCode attaches a compiled form to an already-published unit. No-op when
// the address has no unit or already carries code.
func (s *Store) PutCode(addr uint64, code *vex.Compiled) {
	if code == nil {
		return
	}
	s.mu.Lock()
	cur := s.units[addr]
	if cur == nil || cur.u.Code != nil {
		s.mu.Unlock()
		return
	}
	merged := *cur.u
	merged.Code = code
	cur.u = &merged
	s.track(cur, false)
	s.mu.Unlock()
	if s.cache != nil {
		s.cache.maybeEvict(s, addr)
	}
}

// mergeDisk publishes a unit read from the shared file: Put semantics, but
// counted as a merge rather than a translation, and blocked for addresses
// this process evicted (their frames persist on disk until compaction).
// Returns true when the store gained something.
func (s *Store) mergeDisk(u *Unit) bool {
	if u == nil || u.SB == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.evicted[u.Addr] {
		return false
	}
	cur := s.units[u.Addr]
	if cur == nil {
		sl := &slot{u: u}
		s.units[u.Addr] = sl
		s.merged.Add(1)
		s.track(sl, true)
		return true
	}
	if cur.u.Code == nil && u.Code != nil {
		merged := *cur.u
		merged.Code = u.Code
		cur.u = &merged
		s.track(cur, false)
		return true
	}
	return false
}

// Len returns the number of published units.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.units)
}

// Each calls fn for every unit. Used by the persistence tier and the
// pretranslation pipeline's frontier seeding.
func (s *Store) Each(fn func(*Unit)) {
	s.mu.RLock()
	units := make([]*Unit, 0, len(s.units))
	for _, sl := range s.units {
		units = append(units, sl.u)
	}
	s.mu.RUnlock()
	for _, u := range units {
		fn(u)
	}
}

// snapshot returns the current unit set (for the disk tier).
func (s *Store) snapshot() map[uint64]*Unit {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m := make(map[uint64]*Unit, len(s.units))
	for a, sl := range s.units {
		m[a] = sl.u
	}
	return m
}

// sweep advances the eviction clock over this store until need() reports
// satisfied or every unit has been visited twice (the second-chance bound).
// protect pins the address whose insertion triggered the sweep — evicting
// the unit we just published would thrash.
func (s *Store) sweep(need func() bool, protect uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.units) == 0 {
		return
	}
	addrs := make([]uint64, 0, len(s.units))
	for a := range s.units {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for visits := 0; visits < 2*len(addrs) && need(); visits++ {
		a := addrs[s.hand%len(addrs)]
		s.hand++
		if a == protect {
			continue
		}
		sl := s.units[a]
		if sl == nil {
			continue
		}
		if g := sl.gen.Load(); g != sl.seen {
			sl.seen = g // adopted since last visit: spare once
			continue
		}
		delete(s.units, a)
		s.evicted[a] = true
		s.evictions.Add(1)
		if s.cache != nil {
			s.cache.bytes.Add(-sl.size)
			s.cache.totalUnits.Add(-1)
		}
		if s.disk != nil {
			s.disk.needCompact.Store(true)
		}
	}
}

// Stats is a point-in-time snapshot of one store's counters.
type Stats struct {
	Units  int
	Hits   uint64
	Misses uint64
	// Puts counts distinct units published — the number of actual
	// translations performed against this store across all attached cores
	// and pipelines.
	Puts uint64
	// Evictions counts units dropped by the clock sweep.
	Evictions uint64
	// CorruptFrames counts disk frames whose CRC passed but whose payload
	// failed to decode — corruption past the framing layer, skipped
	// without discarding the rest of the tier.
	CorruptFrames uint64
	// IOFaults counts disk-tier operations that failed (EIO, ENOSPC, short
	// writes, rename failures); each one degraded to cold translation.
	IOFaults uint64
	// LockWaits counts advisory-lock acquisitions that timed out; each one
	// skipped its merge or persist and degraded to cold translation.
	LockWaits uint64
	// Merged counts units adopted from other processes through the shared
	// file rather than translated locally.
	Merged uint64
}

// Stats returns the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Units:         s.Len(),
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		Puts:          s.puts.Load(),
		Evictions:     s.evictions.Load(),
		CorruptFrames: s.corrupt.Load(),
		IOFaults:      s.ioFaults.Load(),
		LockWaits:     s.lockWaits.Load(),
		Merged:        s.merged.Load(),
	}
}

// Options configures a Cache.
type Options struct {
	// Dir is the backing directory; "" keeps the cache purely in-memory.
	Dir string
	// FS routes all disk-tier I/O; nil means the real filesystem. Tests
	// and the CLI substitute a FaultFS here.
	FS FS
	// MaxBytes caps the total encoded size of cached units across all
	// stores (0 = unbounded). Enforced by clock eviction with hysteresis.
	MaxBytes int64
	// MaxUnits caps the total unit count across all stores (0 = unbounded).
	MaxUnits int64
	// RescanEvery throttles on-miss re-scans of the shared file: every Nth
	// store miss checks whether the file grew (0 = default 64).
	RescanEvery uint64
	// LockTimeout bounds advisory-lock acquisition; a timed-out lock
	// degrades the operation to cold translation (0 = default 2s).
	LockTimeout time.Duration
}

// Cache is a registry of stores, one per Key, optionally backed by an
// on-disk directory shared with other processes. A process typically holds
// one Cache (per sweep, per daemon, per CLI invocation) and every harness
// instance resolves its Store through it.
type Cache struct {
	opts Options
	fs   FS

	mu     sync.Mutex
	stores map[Key]*Store

	bytes      atomic.Int64
	totalUnits atomic.Int64
}

// NewCache creates a cache backed by dir on the real filesystem, with no
// caps. dir == "" keeps the cache purely in-memory.
func NewCache(dir string) *Cache {
	return NewCacheOpts(Options{Dir: dir})
}

// NewCacheOpts creates a cache with explicit options.
func NewCacheOpts(opts Options) *Cache {
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	if opts.RescanEvery == 0 {
		opts.RescanEvery = 64
	}
	if opts.LockTimeout == 0 {
		opts.LockTimeout = 2 * time.Second
	}
	return &Cache{opts: opts, fs: opts.FS, stores: make(map[Key]*Store)}
}

// Dir returns the backing directory ("" for memory-only).
func (c *Cache) Dir() string { return c.opts.Dir }

// Open returns the store for key, creating it (and warm-loading it from
// the shared file, when the cache is directory-backed) on first use. Disk
// problems — missing file, stale format, torn tail, corruption, I/O
// errors, starved locks — degrade to a cold store, never to an error: the
// store is an accelerator, not a dependency.
func (c *Cache) Open(key Key) *Store {
	if key.Version == 0 {
		key.Version = FormatVersion
	}
	c.mu.Lock()
	if st, ok := c.stores[key]; ok {
		c.mu.Unlock()
		return st
	}
	st := NewStore(key)
	st.cache = c
	if c.opts.Dir != "" {
		st.disk = newDiskTier(c, key)
		st.disk.load(st) // best-effort warm start
	}
	c.stores[key] = st
	c.mu.Unlock()
	c.maybeEvict(st, ^uint64(0))
	return st
}

// Save persists every directory-backed store: under an exclusive advisory
// lock it merges frames other processes appended, truncates any torn tail,
// appends only this process's new frames, and compacts the file when
// eviction shrank the store. Memory-only caches no-op. Storage faults
// degrade (counters bumped); the first error is returned for diagnostics
// only — the cache remains usable.
func (c *Cache) Save() error {
	if c.opts.Dir == "" {
		return nil
	}
	var first error
	for _, st := range c.snapshotStores() {
		if st.disk == nil {
			continue
		}
		if err := st.disk.save(st); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (c *Cache) snapshotStores() []*Store {
	c.mu.Lock()
	defer c.mu.Unlock()
	stores := make([]*Store, 0, len(c.stores))
	for _, st := range c.stores {
		stores = append(stores, st)
	}
	sort.Slice(stores, func(i, j int) bool {
		return stores[i].key.String() < stores[j].key.String()
	})
	return stores
}

// overCap reports whether the cache exceeds its configured caps.
func (c *Cache) overCap() bool {
	if c.opts.MaxBytes > 0 && c.bytes.Load() > c.opts.MaxBytes {
		return true
	}
	if c.opts.MaxUnits > 0 && c.totalUnits.Load() > c.opts.MaxUnits {
		return true
	}
	return false
}

// maybeEvict runs the clock sweep when the cache is over a cap, draining
// to ~7/8 of the cap (hysteresis, so each overflow triggers one sweep, not
// one per Put). The store that triggered the overflow is swept last and
// its newest address never evicted.
func (c *Cache) maybeEvict(trigger *Store, protect uint64) {
	if !c.overCap() {
		return
	}
	needBytes := int64(0)
	if c.opts.MaxBytes > 0 {
		needBytes = c.opts.MaxBytes - c.opts.MaxBytes/8
	}
	needUnits := int64(0)
	if c.opts.MaxUnits > 0 {
		needUnits = c.opts.MaxUnits - c.opts.MaxUnits/8
	}
	need := func() bool {
		if needBytes > 0 && c.bytes.Load() > needBytes {
			return true
		}
		if needUnits > 0 && c.totalUnits.Load() > needUnits {
			return true
		}
		return false
	}
	for _, st := range c.snapshotStores() {
		if st == trigger {
			continue
		}
		st.sweep(need, ^uint64(0))
	}
	trigger.sweep(need, protect)
}

// CacheStats aggregates all stores in a cache.
type CacheStats struct {
	Stores int
	Units  int
	// Bytes is the tracked encoded size of cached units (0 unless a byte
	// cap is configured — sizing is pay-for-play).
	Bytes         int64
	Hits          uint64
	Misses        uint64
	Puts          uint64
	Evictions     uint64
	CorruptFrames uint64
	IOFaults      uint64
	LockWaits     uint64
	Merged        uint64
}

// Stats sums the counters of every open store.
func (c *Cache) Stats() CacheStats {
	stores := c.snapshotStores()
	var cs CacheStats
	cs.Stores = len(stores)
	cs.Bytes = c.bytes.Load()
	for _, st := range stores {
		s := st.Stats()
		cs.Units += s.Units
		cs.Hits += s.Hits
		cs.Misses += s.Misses
		cs.Puts += s.Puts
		cs.Evictions += s.Evictions
		cs.CorruptFrames += s.CorruptFrames
		cs.IOFaults += s.IOFaults
		cs.LockWaits += s.LockWaits
		cs.Merged += s.Merged
	}
	return cs
}
