package tstore

// Fuzz coverage for the frame protocol: arbitrary byte streams through
// readFrame/decodeUnit must never panic or over-allocate, and the scan
// must be prefix-stable — rescanning the valid prefix of any input
// recovers exactly the same frames. This is the property the torn-tail and
// kill -9 guarantees rest on.

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// scanFrames walks data (positioned after the header) exactly like the
// disk tier: stop at the first bad frame, skip CRC-valid-but-undecodable
// payloads. Returns decoded unit count, skipped-corrupt count and the last
// good frame boundary.
func scanFrames(data []byte, start int) (units, corrupt, validEnd int) {
	d := &dec{buf: data, off: start}
	validEnd = start
	for d.off < len(d.buf) {
		payload, ok := readFrame(d)
		if !ok {
			break
		}
		if _, err := decodeUnit(&dec{buf: payload}); err != nil {
			corrupt++
		} else {
			units++
		}
		validEnd = d.off
	}
	return units, corrupt, validEnd
}

func fuzzSeedFile() []byte {
	e := &enc{buf: append([]byte{}, fileMagic...)}
	e.str(testKey().String())
	for _, addr := range []uint64{0x1000, 0x1040, 0x1080} {
		var ue enc
		encodeUnit(&ue, &Unit{Addr: addr, SB: sampleSB(addr), Seams: 1})
		e.u64(uint64(len(ue.buf)))
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(ue.buf))
		e.buf = append(e.buf, crc[:]...)
		e.buf = append(e.buf, ue.buf...)
	}
	return e.buf
}

func FuzzFrameScan(f *testing.F) {
	valid := fuzzSeedFile()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])           // torn tail
	f.Add(valid[:len(valid)/2])           // torn mid-frame
	f.Add(append([]byte{}, valid[8:]...)) // headerless
	flip := append([]byte{}, valid...)
	flip[len(flip)/2] ^= 0x20
	f.Add(flip) // bit rot
	huge := append([]byte{}, valid[:20]...)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f) // giant varint length
	f.Add(huge)
	f.Add([]byte{})
	f.Add(fileMagic)

	f.Fuzz(func(t *testing.T, data []byte) {
		units, corrupt, validEnd := scanFrames(data, 0)
		if validEnd > len(data) {
			t.Fatalf("validEnd %d past input end %d", validEnd, len(data))
		}
		// Prefix stability: the valid prefix rescans to the same result.
		u2, c2, v2 := scanFrames(data[:validEnd], 0)
		if u2 != units || c2 != corrupt || v2 != validEnd {
			t.Fatalf("rescan of valid prefix diverged: %d/%d/%d vs %d/%d/%d",
				u2, c2, v2, units, corrupt, validEnd)
		}
		// Decoded units must re-encode deterministically (no half-decoded
		// state escapes); exercises decodeUnit's allocation bounds too.
		d := &dec{buf: data[:validEnd]}
		for d.off < len(d.buf) {
			payload, ok := readFrame(d)
			if !ok {
				break
			}
			u, err := decodeUnit(&dec{buf: payload})
			if err != nil {
				continue
			}
			var e1, e2 enc
			encodeUnit(&e1, u)
			ru, err := decodeUnit(&dec{buf: e1.buf})
			if err != nil {
				t.Fatalf("re-decode of re-encoded unit failed: %v", err)
			}
			encodeUnit(&e2, ru)
			if !bytes.Equal(e1.buf, e2.buf) {
				t.Fatal("decoded unit does not round-trip byte-identically")
			}
		}
	})
}
