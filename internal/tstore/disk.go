package tstore

// The persistent tier: one file per Key under the cache directory, named by
// a hash of the canonical key string, shared by any number of concurrent
// processes. The full key string is written into the file header and must
// match exactly on load — a file that disagrees (different image content,
// tool, engine, budget, delivery mode or format version) is ignored
// wholesale, so a stale tier can never serve a translation for the wrong
// universe.
//
// Cross-process protocol. The data file is append-only between
// compactions; mutual exclusion is an advisory flock on a companion
// ".lock" file that is never renamed or removed (locking the data file
// itself would race with compaction's rename: a waiter that finally
// acquired the lock would hold an fd to the orphaned inode and append into
// the void). Writers take the lock exclusive; they re-scan the file,
// merging frames other processes appended (this is how a warm daemon seeds
// a cold one), truncate any torn tail left by a killed writer back to the
// last good frame boundary, then append only the frames this process newly
// translated. Readers take the lock shared and never truncate. Because all
// writes happen under the exclusive lock, a reader at any lock acquisition
// sees only complete frames plus at most one torn tail from a crash —
// kill -9 at any byte boundary costs at most the frames after the tear,
// never the file.
//
// Units are CRC32-framed. A CRC failure ends the scan (torn tail); a frame
// whose CRC passes but whose payload fails to decode is counted as corrupt
// and skipped, and the scan continues — framing intact means the following
// frames are still addressable, so one bad payload must not discard the
// rest of the tier.
//
// Every failure on this path — EIO, ENOSPC, short writes, rename
// failures, starved locks — degrades the run to cold translation with a
// counter bumped. Nothing here ever propagates as a crash, and the CRC +
// key-header checks remain the last line against serving poisoned bytes.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

var fileMagic = []byte("TGTC")

// fileName derives the store file name from the key. The hash keeps file
// names short and filesystem-safe; the header check carries the actual
// invalidation guarantee.
func fileName(dir string, key Key) string {
	sum := sha256.Sum256([]byte(key.String()))
	return filepath.Join(dir, hex.EncodeToString(sum[:12])+".tcache")
}

// diskTier is one store's connection to its shared file. Its mutex
// serializes this process's disk operations for the store; cross-process
// exclusion is the flock.
type diskTier struct {
	fs          FS
	path        string
	lockPath    string
	lockTimeout time.Duration
	rescanEvery uint64

	mu sync.Mutex
	// lockf is the long-lived handle to the companion lock file, opened on
	// first acquire and kept for the tier's lifetime: the lock file is
	// never renamed or removed, flock state rides the open file
	// description, and re-opening with O_CREATE per operation is the
	// single most expensive syscall on the warm path. Guarded by mu.
	lockf File
	// onDisk records addresses known present in the file (from the last
	// scan under a lock); save appends only addresses not in it.
	onDisk map[uint64]bool
	// lastScan is the file size at the last scan; a cheap Stat comparison
	// gates on-miss re-scans. -1 forces the next re-scan.
	lastScan int64
	// missTick throttles on-miss re-scans to every rescanEvery-th miss.
	missTick uint64

	// needCompact is set by eviction: the file holds frames for units the
	// cache dropped, so the next save rewrites it whole (temp + rename).
	needCompact atomic.Bool
}

func newDiskTier(c *Cache, key Key) *diskTier {
	path := fileName(c.opts.Dir, key)
	return &diskTier{
		fs:          c.fs,
		path:        path,
		lockPath:    path + ".lock",
		lockTimeout: c.opts.LockTimeout,
		rescanEvery: c.opts.RescanEvery,
		onDisk:      make(map[uint64]bool),
		lastScan:    -1,
	}
}

// acquire takes the advisory lock with the tier's timeout, opening (and
// thereafter reusing) the long-lived lock-file handle. A timed-out or
// injected-timeout acquisition counts as a lock wait and returns nil —
// the caller degrades. Any other failure counts as an I/O fault. Called
// with t.mu held; the caller releases with Unlock, never Close.
func (t *diskTier) acquire(exclusive bool, s *Store) File {
	if t.lockf == nil {
		if err := t.fs.MkdirAll(filepath.Dir(t.lockPath), 0o755); err != nil {
			s.ioFaults.Add(1)
			return nil
		}
		f, err := t.fs.OpenFile(t.lockPath, os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			s.ioFaults.Add(1)
			return nil
		}
		t.lockf = f
	}
	deadline := time.Now().Add(t.lockTimeout)
	for {
		err := t.lockf.TryLock(exclusive)
		if err == nil {
			return t.lockf
		}
		if errors.Is(err, ErrLockTimeout) || (errors.Is(err, ErrLocked) && time.Now().After(deadline)) {
			s.lockWaits.Add(1)
			return nil
		}
		if !errors.Is(err, ErrLocked) {
			s.ioFaults.Add(1)
			return nil
		}
		time.Sleep(time.Millisecond)
	}
}

// scan walks the file image, verifying the header and framing. When merge
// is set, every decodable unit is offered to the store (evicted addresses
// excluded there). Returns the byte offset of the last good frame boundary
// (everything past it is a torn tail), the address set found, whether the
// header matched this store's key, and whether any merge landed.
func (t *diskTier) scan(data []byte, s *Store, merge bool) (validEnd int, addrs map[uint64]bool, headerOK, gained bool) {
	addrs = make(map[uint64]bool)
	if len(data) < len(fileMagic) || string(data[:len(fileMagic)]) != string(fileMagic) {
		return 0, addrs, false, false
	}
	d := &dec{buf: data, off: len(fileMagic)}
	if d.str() != s.key.String() || d.err != nil {
		// Hash collision or hand-renamed file: wrong universe.
		return 0, addrs, false, false
	}
	validEnd = d.off
	for d.off < len(d.buf) {
		payload, ok := readFrame(d)
		if !ok {
			break // torn tail (or bit rot): keep the frames before it
		}
		u, err := decodeUnit(&dec{buf: payload})
		if err != nil {
			// CRC-valid framing around an undecodable payload: count it,
			// skip it, keep scanning — the following frames are intact.
			s.corrupt.Add(1)
			validEnd = d.off
			continue
		}
		addrs[u.Addr] = true
		validEnd = d.off
		if merge && s.mergeDisk(u) {
			gained = true
		}
	}
	return validEnd, addrs, true, gained
}

// load warm-starts the store at Open time: a shared-lock scan-merge.
func (t *diskTier) load(s *Store) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.scanMerge(s)
}

// scanMerge reads and merges the file under a shared lock. Called with
// t.mu held. Returns true when the store gained units.
func (t *diskTier) scanMerge(s *Store) bool {
	lockf := t.acquire(false, s)
	if lockf == nil {
		t.lastScan = -1 // retry on a later miss
		return false
	}
	defer lockf.Unlock()
	data, err := t.fs.ReadFile(t.path)
	if err != nil {
		if !os.IsNotExist(err) {
			s.ioFaults.Add(1)
			t.lastScan = -1
		} else {
			t.lastScan = 0
		}
		return false
	}
	_, addrs, headerOK, gained := t.scan(data, s, true)
	if headerOK {
		t.onDisk = addrs
	}
	t.lastScan = int64(len(data))
	return gained
}

// maybeMerge is the on-miss re-scan: every rescanEvery-th miss, if the
// shared file changed size since the last scan, merge it. This is how
// frames appended by other processes mid-run reach this one. Returns true
// when the store gained units (the caller retries its lookup).
func (t *diskTier) maybeMerge(s *Store) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	tick := t.missTick
	t.missTick++
	if tick%t.rescanEvery != 0 {
		return false
	}
	if t.lastScan >= 0 {
		fi, err := t.fs.Stat(t.path)
		if err != nil || fi.Size() == t.lastScan {
			return false
		}
	}
	gained := t.scanMerge(s)
	if gained && s.cache != nil {
		s.cache.maybeEvict(s, ^uint64(0))
	}
	return gained
}

// frame appends one length+CRC framed unit encoding to e.
func frame(e *enc, u *Unit) {
	var ue enc
	encodeUnit(&ue, u)
	e.u64(uint64(len(ue.buf)))
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(ue.buf))
	e.buf = append(e.buf, crc[:]...)
	e.buf = append(e.buf, ue.buf...)
}

// save persists the store to the shared file under the exclusive lock:
// re-scan + merge, truncate the torn tail, append this process's new
// frames — or rewrite whole (temp + rename) when eviction requires
// compaction or the file is new/foreign. Degrades on any storage fault;
// the returned error is diagnostic only.
func (t *diskTier) save(s *Store) error {
	t.mu.Lock()
	defer t.mu.Unlock()

	units := s.snapshot()
	fresh := false
	for a := range units {
		if !t.onDisk[a] {
			fresh = true
			break
		}
	}
	if !fresh && !t.needCompact.Load() {
		return nil
	}

	lockf := t.acquire(true, s)
	if lockf == nil {
		return nil // degraded; counted in lockWaits/ioFaults
	}
	defer lockf.Unlock()

	data, err := t.fs.ReadFile(t.path)
	if err != nil && !os.IsNotExist(err) {
		s.ioFaults.Add(1)
		t.lastScan = -1
		return fmt.Errorf("tstore: save: %w", err)
	}
	validEnd, addrs, headerOK, _ := t.scan(data, s, true)
	if headerOK {
		t.onDisk = addrs
	}
	units = s.snapshot() // re-snapshot: the scan may have merged units

	if t.needCompact.Load() || !headerOK {
		return t.rewrite(s, units)
	}

	// Append path: fix the tail, then add only frames not yet on disk.
	newAddrs := make([]uint64, 0, len(units))
	for a := range units {
		if !t.onDisk[a] {
			newAddrs = append(newAddrs, a)
		}
	}
	if len(newAddrs) == 0 {
		return nil
	}
	sort.Slice(newAddrs, func(i, j int) bool { return newAddrs[i] < newAddrs[j] })

	f, err := t.fs.OpenFile(t.path, os.O_WRONLY, 0o644)
	if err != nil {
		s.ioFaults.Add(1)
		t.lastScan = -1
		return fmt.Errorf("tstore: save: %w", err)
	}
	defer f.Close()
	if validEnd < len(data) {
		if err := f.Truncate(int64(validEnd)); err != nil {
			s.ioFaults.Add(1)
			t.lastScan = -1
			return fmt.Errorf("tstore: save: %w", err)
		}
	}
	if _, err := f.Seek(int64(validEnd), io.SeekStart); err != nil {
		s.ioFaults.Add(1)
		t.lastScan = -1
		return fmt.Errorf("tstore: save: %w", err)
	}
	written := int64(validEnd)
	for _, a := range newAddrs {
		e := &enc{}
		frame(e, units[a])
		n, err := f.Write(e.buf)
		written += int64(n)
		if err != nil || n != len(e.buf) {
			// A torn or failed frame: stop appending — anything written
			// after a tear is unreachable until the next writer truncates
			// it back to this boundary. Frames already appended are fine.
			s.ioFaults.Add(1)
			t.lastScan = -1
			if err == nil {
				err = io.ErrShortWrite
			}
			return fmt.Errorf("tstore: save: %w", err)
		}
		t.onDisk[a] = true
	}
	if err := f.Sync(); err != nil {
		s.ioFaults.Add(1)
		t.lastScan = -1
		return fmt.Errorf("tstore: save: %w", err)
	}
	t.lastScan = written
	return nil
}

// rewrite compacts the file: header plus every live unit, written to a
// temp file and renamed over the original. Called with t.mu held and the
// exclusive lock taken. The lock file is a separate path precisely so this
// rename cannot strand a waiting locker on the orphaned inode.
func (t *diskTier) rewrite(s *Store, units map[uint64]*Unit) error {
	fail := func(err error) error {
		s.ioFaults.Add(1)
		t.lastScan = -1
		return fmt.Errorf("tstore: save: %w", err)
	}
	e := &enc{buf: append([]byte{}, fileMagic...)}
	e.str(s.key.String())
	addrs := make([]uint64, 0, len(units))
	for a := range units {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		frame(e, units[a])
	}
	tmp := t.path + ".compact"
	f, err := t.fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fail(err)
	}
	if n, err := f.Write(e.buf); err != nil || n != len(e.buf) {
		f.Close()
		t.fs.Remove(tmp)
		if err == nil {
			err = io.ErrShortWrite
		}
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		t.fs.Remove(tmp)
		return fail(err)
	}
	if err := f.Close(); err != nil {
		t.fs.Remove(tmp)
		return fail(err)
	}
	if err := t.fs.Rename(tmp, t.path); err != nil {
		t.fs.Remove(tmp)
		return fail(err)
	}
	t.needCompact.Store(false)
	t.onDisk = make(map[uint64]bool, len(addrs))
	for _, a := range addrs {
		t.onDisk[a] = true
	}
	t.lastScan = int64(len(e.buf))
	return nil
}

// readFrame pulls one length+CRC framed payload; ok=false on any
// truncation or checksum failure.
func readFrame(d *dec) ([]byte, bool) {
	n, w := binary.Uvarint(d.buf[d.off:])
	if w <= 0 || n > uint64(len(d.buf)-d.off-w) {
		return nil, false
	}
	d.off += w
	if len(d.buf)-d.off < 4+int(n) {
		return nil, false
	}
	want := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	payload := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	if crc32.ChecksumIEEE(payload) != want {
		return nil, false
	}
	return payload, true
}
