package tstore

// The persistent tier: one file per Key under the cache directory, named by
// a hash of the canonical key string. The full key string is also written
// into the file header and must match exactly on load — a file that
// disagrees (different image content, tool, engine, budget, delivery mode
// or format version) is ignored wholesale, so a stale tier can never serve
// a translation for the wrong universe. Units are CRC32-framed: a torn tail
// from a killed writer truncates the warm start at the last good frame.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

var fileMagic = []byte("TGTC")

// fileName derives the store file name from the key. The hash keeps file
// names short and filesystem-safe; the header check carries the actual
// invalidation guarantee.
func fileName(dir string, key Key) string {
	sum := sha256.Sum256([]byte(key.String()))
	return filepath.Join(dir, hex.EncodeToString(sum[:12])+".tcache")
}

// loadStore warm-starts st from its file, best-effort: any mismatch or
// corruption leaves the store cold (possibly partially warm on a torn
// tail). Called with the store not yet published, so no locking subtleties.
func loadStore(dir string, st *Store) {
	data, err := os.ReadFile(fileName(dir, st.key))
	if err != nil {
		return
	}
	if len(data) < len(fileMagic) || string(data[:len(fileMagic)]) != string(fileMagic) {
		return
	}
	d := &dec{buf: data, off: len(fileMagic)}
	if d.str() != st.key.String() || d.err != nil {
		// Hash-collision or hand-renamed file: wrong universe, ignore.
		return
	}
	loaded := 0
	for d.off < len(d.buf) {
		payload, ok := readFrame(d)
		if !ok {
			break // torn tail: keep the frames before it
		}
		u, err := decodeUnit(&dec{buf: payload})
		if err != nil {
			break
		}
		st.units[u.Addr] = u
		loaded++
	}
	st.saved = loaded
}

// readFrame pulls one length+CRC framed payload; ok=false on any
// truncation or checksum failure.
func readFrame(d *dec) ([]byte, bool) {
	n, w := binary.Uvarint(d.buf[d.off:])
	if w <= 0 || n > uint64(len(d.buf)-d.off-w) {
		return nil, false
	}
	d.off += w
	if len(d.buf)-d.off < 4+int(n) {
		return nil, false
	}
	want := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	payload := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	if crc32.ChecksumIEEE(payload) != want {
		return nil, false
	}
	return payload, true
}

// saveStore writes the store's units to its file when it grew since the
// last save. Whole-file write to a temp path plus rename: concurrent
// readers see either the old complete tier or the new one.
func saveStore(dir string, st *Store) error {
	st.mu.RLock()
	grown := len(st.units) > st.saved
	units := make([]*Unit, 0, len(st.units))
	for _, u := range st.units {
		units = append(units, u)
	}
	st.mu.RUnlock()
	if !grown {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("tstore: save: %w", err)
	}
	e := &enc{buf: append([]byte{}, fileMagic...)}
	e.str(st.key.String())
	var ue enc
	for _, u := range units {
		ue.buf = ue.buf[:0]
		encodeUnit(&ue, u)
		e.u64(uint64(len(ue.buf)))
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(ue.buf))
		e.buf = append(e.buf, crc[:]...)
		e.buf = append(e.buf, ue.buf...)
	}
	path := fileName(dir, st.key)
	tmp, err := os.CreateTemp(dir, ".tcache-*")
	if err != nil {
		return fmt.Errorf("tstore: save: %w", err)
	}
	if _, err := tmp.Write(e.buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("tstore: save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("tstore: save: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("tstore: save: %w", err)
	}
	st.mu.Lock()
	if len(units) > st.saved {
		st.saved = len(units)
	}
	st.mu.Unlock()
	return nil
}
