package tstore

// The disk-tier I/O seam. Every byte the persistent tier reads or writes —
// warm loads, on-miss merges, locked appends, compactions — flows through
// an FS, so every storage failure mode the fleet will meet in production
// (EIO, a full disk, a short write from a dying device, silent bit rot, a
// starved advisory lock) has one choke point where it can be injected
// deterministically and one set of counters where its handling shows up.
//
// The contract the rest of the package builds on: an FS error NEVER
// propagates past the tier as anything worse than "the store is cold(er)
// than it could be". CRC framing plus the key-in-header check remain the
// last line against corrupted bytes that do get through a read.

import (
	"errors"
	"io"
	"os"
	"sync"
	"syscall"

	"repro/internal/faultinject"
)

// ErrLocked is returned by File.TryLock when another process holds a
// conflicting advisory lock. Callers retry until their deadline.
var ErrLocked = errors.New("tstore: file locked")

// ErrLockTimeout is the injected lock-starvation fault: the acquisition is
// declared timed out immediately, without burning the real deadline.
var ErrLockTimeout = errors.New("tstore: lock acquisition timed out (injected)")

// File is the slice of *os.File the disk tier needs.
type File interface {
	io.Reader
	io.Writer
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
	Sync() error
	Close() error
	// TryLock acquires the file's advisory lock (flock) without blocking:
	// ErrLocked when a conflicting holder exists.
	TryLock(exclusive bool) error
	Unlock() error
}

// FS is the filesystem surface of the persistent tier.
type FS interface {
	ReadFile(path string) ([]byte, error)
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	MkdirAll(path string, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(path string) error
	Stat(path string) (os.FileInfo, error)
}

// OSFS is the real filesystem.
type OSFS struct{}

type osFile struct{ *os.File }

func (f osFile) TryLock(exclusive bool) error {
	how := syscall.LOCK_SH
	if exclusive {
		how = syscall.LOCK_EX
	}
	err := syscall.Flock(int(f.Fd()), how|syscall.LOCK_NB)
	if errors.Is(err, syscall.EWOULDBLOCK) || errors.Is(err, syscall.EAGAIN) {
		return ErrLocked
	}
	return err
}

func (f osFile) Unlock() error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}

func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (OSFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (OSFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OSFS) Remove(path string) error                     { return os.Remove(path) }
func (OSFS) Stat(path string) (os.FileInfo, error)        { return os.Stat(path) }

// FaultFS wraps an FS with deterministic storage fault injection. Each
// operation that can fail in production pulls a decision from the
// injector's storage streams (seed-deterministic, like every other
// injected fault) and fails with the corresponding real errno:
//
//	tsread  — ReadFile returns EIO
//	tsflip  — ReadFile silently flips one byte (CRC must catch it)
//	tswrite — File.Write returns EIO
//	tsnospc — File.Write returns ENOSPC
//	tsshort — File.Write persists only half the buffer (torn frame)
//	tslock  — TryLock reports an immediate acquisition timeout
//
// FaultFS is safe for concurrent use: storage decisions are drawn through
// Injector.FireStorage, which has its own mutex and never enters the
// replay journal (see that method's contract).
type FaultFS struct {
	// Inner is the wrapped filesystem (nil = OSFS).
	Inner FS
	// In supplies the decisions; a nil injector makes FaultFS transparent.
	In *faultinject.Injector

	mu       sync.Mutex
	flipSalt uint64 // decorrelates successive bit-flip positions
}

func (f *FaultFS) inner() FS {
	if f.Inner == nil {
		return OSFS{}
	}
	return f.Inner
}

func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	if f.In.FireStorage(faultinject.StoreReadErr) {
		return nil, &os.PathError{Op: "read", Path: path, Err: syscall.EIO}
	}
	data, err := f.inner().ReadFile(path)
	if err != nil {
		return data, err
	}
	if len(data) > 0 && f.In.FireStorage(faultinject.StoreBitFlip) {
		// Flip one byte at a deterministic, advancing position: the exact
		// byte never matters for correctness (CRC or the header check must
		// reject the damage wherever it lands), advancing positions make
		// repeated reads exercise different frames.
		f.mu.Lock()
		f.flipSalt += 0x9e3779b97f4a7c15
		idx := f.flipSalt % uint64(len(data))
		f.mu.Unlock()
		data[idx] ^= 0x20
	}
	return data, nil
}

type faultFile struct {
	File
	fs *FaultFS
}

func (f faultFile) Write(p []byte) (int, error) {
	if f.fs.In.FireStorage(faultinject.StoreWriteErr) {
		return 0, syscall.EIO
	}
	if f.fs.In.FireStorage(faultinject.StoreNoSpace) {
		return 0, syscall.ENOSPC
	}
	if len(p) > 1 && f.fs.In.FireStorage(faultinject.StoreShortWrite) {
		n, err := f.File.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, io.ErrShortWrite
	}
	return f.File.Write(p)
}

func (f faultFile) TryLock(exclusive bool) error {
	if f.fs.In.FireStorage(faultinject.StoreLockTimeout) {
		return ErrLockTimeout
	}
	return f.File.TryLock(exclusive)
}

func (f *FaultFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	file, err := f.inner().OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return faultFile{File: file, fs: f}, nil
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	return f.inner().MkdirAll(path, perm)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if f.In.FireStorage(faultinject.StoreWriteErr) {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: syscall.EIO}
	}
	return f.inner().Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(path string) error { return f.inner().Remove(path) }

func (f *FaultFS) Stat(path string) (os.FileInfo, error) { return f.inner().Stat(path) }
