package tstore

// Tests for the cross-process locked append-only protocol: corrupt-frame
// skipping, merge-through-the-shared-file, torn-tail recovery at every
// write boundary, bounded eviction with compaction, and the storage fault
// matrix (every injected kind degrades to cold, never crashes, never
// serves a wrong unit).

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// writeRawFile builds a store file by hand: header plus the given frame
// payloads (each framed with a correct CRC, whatever the payload).
func writeRawFile(t *testing.T, dir string, key Key, payloads [][]byte) string {
	t.Helper()
	e := &enc{buf: append([]byte{}, fileMagic...)}
	e.str(key.String())
	for _, p := range payloads {
		e.u64(uint64(len(p)))
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(p))
		e.buf = append(e.buf, crc[:]...)
		e.buf = append(e.buf, p...)
	}
	path := fileName(dir, key)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, e.buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func encodedUnit(t *testing.T, addr uint64) []byte {
	t.Helper()
	var e enc
	encodeUnit(&e, sampleUnit(t, addr))
	return e.buf
}

// TestCorruptFrameSkipped: a frame whose CRC passes but whose payload does
// not decode is counted and skipped — the frames after it still load. This
// is the satellite fix: the old loader discarded the rest of the tier.
func TestCorruptFrameSkipped(t *testing.T) {
	dir := t.TempDir()
	writeRawFile(t, dir, testKey(), [][]byte{
		encodedUnit(t, 0x1000),
		[]byte("not a unit at all"), // framed correctly, undecodable
		encodedUnit(t, 0x2000),
		encodedUnit(t, 0x3000),
	})
	st := NewCache(dir).Open(testKey())
	if got := st.Len(); got != 3 {
		t.Fatalf("loaded %d units, want 3 (corrupt frame must not end the scan)", got)
	}
	if got := st.Stats().CorruptFrames; got != 1 {
		t.Fatalf("CorruptFrames = %d, want 1", got)
	}
	for _, addr := range []uint64{0x1000, 0x2000, 0x3000} {
		if st.Get(addr) == nil {
			t.Fatalf("unit %#x lost behind the corrupt frame", addr)
		}
	}
}

// TestCrossProcessAppend: two caches on one directory interleave appends;
// each save preserves the other's frames (scan-merge before append), so a
// fresh cache sees the union.
func TestCrossProcessAppend(t *testing.T) {
	dir := t.TempDir()
	a := NewCache(dir)
	sa := a.Open(testKey())
	for i := uint64(0); i < 4; i++ {
		sa.Put(sampleUnit(t, 0x1000+i*64))
	}
	if err := a.Save(); err != nil {
		t.Fatal(err)
	}

	// B starts after A's save: warm from A's frames, translates one more.
	b := NewCache(dir)
	sb := b.Open(testKey())
	if sb.Len() != 4 {
		t.Fatalf("B warm-started with %d units, want 4", sb.Len())
	}
	sb.Put(sampleUnit(t, 0x5000))
	if err := b.Save(); err != nil {
		t.Fatal(err)
	}

	// A translates another unit and saves: it must append its own frame
	// without clobbering B's, and merge B's unit while under the lock.
	sa.Put(sampleUnit(t, 0x6000))
	if err := a.Save(); err != nil {
		t.Fatal(err)
	}
	if sa.Get(0x5000) == nil {
		t.Fatal("A's save did not merge B's frame")
	}
	if got := sa.Stats().Merged; got == 0 {
		t.Fatal("Merged counter not bumped by save-time scan")
	}

	fresh := NewCache(dir).Open(testKey())
	if got := fresh.Len(); got != 6 {
		t.Fatalf("union has %d units, want 6", got)
	}
}

// TestOnMissMerge: frames another process appends mid-run reach this one
// through the on-miss re-scan — the warm-seeds-cold path.
func TestOnMissMerge(t *testing.T) {
	dir := t.TempDir()
	a := NewCache(dir)
	sa := a.Open(testKey()) // opens before any file exists

	b := NewCache(dir)
	sb := b.Open(testKey())
	sb.Put(sampleUnit(t, 0x4000))
	if err := b.Save(); err != nil {
		t.Fatal(err)
	}

	// A's first miss re-scans (tick 0), sees the file grew, merges.
	if u := sa.Get(0x4000); u == nil {
		t.Fatal("on-miss merge did not adopt the other process's unit")
	}
	if got := sa.Stats().Merged; got != 1 {
		t.Fatalf("Merged = %d, want 1", got)
	}
	if got := sa.Stats().Hits; got != 1 {
		t.Fatalf("post-merge lookup was not a hit: hits=%d", got)
	}
}

// TestKillMidAppendEveryBoundary: truncating the file at EVERY byte offset
// (a kill -9 at any point of an append) leaves a file that loads without
// panic, recovers exactly the complete frames, and is fully repaired by
// the next writer (torn tail truncated under the lock, new frame appended).
func TestKillMidAppendEveryBoundary(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(dir)
	st := c.Open(testKey())
	for i := uint64(0); i < 4; i++ {
		st.Put(sampleUnit(t, 0x1000+i*64))
	}
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	path := fileName(dir, testKey())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Frame boundaries, for the exact-recovery assertion.
	d := &dec{buf: data, off: len(fileMagic)}
	d.str()
	headerEnd := d.off
	var bounds []int
	for d.off < len(d.buf) {
		if _, ok := readFrame(d); !ok {
			t.Fatal("test file has a bad frame")
		}
		bounds = append(bounds, d.off)
	}
	complete := func(n int) int {
		k := 0
		for _, b := range bounds {
			if b <= n {
				k++
			}
		}
		return k
	}
	for cut := 0; cut <= len(data); cut++ {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st := NewCache(dir).Open(testKey())
		want := 0
		if cut >= headerEnd {
			want = complete(cut)
		}
		if got := st.Len(); got != want {
			t.Fatalf("cut at %d/%d: loaded %d units, want %d", cut, len(data), got, want)
		}
	}
	// Survivor repair: leave a torn tail, have a new writer append.
	if err := os.WriteFile(path, data[:bounds[1]+5], 0o644); err != nil {
		t.Fatal(err)
	}
	c2 := NewCache(dir)
	s2 := c2.Open(testKey())
	if s2.Len() != 2 {
		t.Fatalf("torn file warm-started %d units, want 2", s2.Len())
	}
	s2.Put(sampleUnit(t, 0x9000))
	if err := c2.Save(); err != nil {
		t.Fatal(err)
	}
	s3 := NewCache(dir).Open(testKey())
	if s3.Len() != 3 {
		t.Fatalf("repaired file has %d units, want 3 (2 survivors + 1 new)", s3.Len())
	}
	if s3.Get(0x9000) == nil {
		t.Fatal("appended unit missing after repair")
	}
}

// TestConcurrentReadersAndWriters: caches in multiple goroutines hammer one
// directory with puts, saves and opens (flock conflicts are real even
// in-process: each open file description contends). Run under -race by
// make check. No assertion beyond "no panic, no corruption": every reader
// must see only decodable unions of what writers published.
func TestConcurrentReadersAndWriters(t *testing.T) {
	dir := t.TempDir()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := NewCache(dir)
			st := c.Open(testKey())
			for i := uint64(0); i < 6; i++ {
				st.Put(sampleUnit(t, 0x1000+(uint64(w)*6+i)*64))
				if err := c.Save(); err != nil {
					t.Errorf("writer %d save: %v", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				st := NewCache(dir).Open(testKey())
				st.Each(func(u *Unit) {
					if u.SB == nil {
						t.Error("reader observed a unit without IR")
					}
				})
				time.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := NewCache(dir).Open(testKey()).Len(); got != 24 {
		t.Fatalf("final union has %d units, want 24", got)
	}
}

// TestEvictionUnitCap: the clock keeps the cache under MaxUnits, and the
// compaction that follows keeps the FILE under it too.
func TestEvictionUnitCap(t *testing.T) {
	dir := t.TempDir()
	c := NewCacheOpts(Options{Dir: dir, MaxUnits: 10})
	st := c.Open(testKey())
	for i := uint64(0); i < 30; i++ {
		st.Put(sampleUnit(t, 0x1000+i*64))
		if got := c.totalUnits.Load(); got > 10 {
			t.Fatalf("after put %d: %d units cached, cap 10", i, got)
		}
	}
	if got := st.Stats().Evictions; got == 0 {
		t.Fatal("no evictions under a 10-unit cap with 30 puts")
	}
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	// The compacted file must not resurrect evicted units.
	fresh := NewCacheOpts(Options{Dir: dir}) // no cap: loads whatever is there
	if got := fresh.Open(testKey()).Len(); got > 10 {
		t.Fatalf("compacted file holds %d units, cap was 10", got)
	}
}

// TestEvictionByteCap: same, against MaxBytes, and Stats reports bytes.
func TestEvictionByteCap(t *testing.T) {
	unitSize := sizeOf(sampleUnit(t, 0x1000))
	cap := unitSize * 8
	c := NewCacheOpts(Options{MaxBytes: cap})
	st := c.Open(testKey())
	for i := uint64(0); i < 40; i++ {
		st.Put(sampleUnit(t, 0x1000+i*64))
		if got := c.bytes.Load(); got > cap {
			t.Fatalf("after put %d: %d bytes cached, cap %d", i, got, cap)
		}
	}
	cs := c.Stats()
	if cs.Evictions == 0 || cs.Bytes == 0 {
		t.Fatalf("byte-capped cache stats: %+v", cs)
	}
}

// TestEvictionSparesAdopted: the second-chance bit — units adopted since
// the hand's last visit survive a sweep that claims cold ones.
func TestEvictionSparesAdopted(t *testing.T) {
	c := NewCacheOpts(Options{MaxUnits: 8})
	st := c.Open(testKey())
	hot := uint64(0x1000)
	for i := uint64(0); i < 20; i++ {
		st.Put(sampleUnit(t, 0x1000+i*64))
		st.Get(hot) // keep the first unit continuously adopted
	}
	if st.Get(hot) == nil {
		t.Fatal("continuously adopted unit was evicted")
	}
}

// storageCase describes one injected storage fault kind's expectations.
type storageCase struct {
	kind    faultinject.Kind
	spec    string
	wantIO  bool // Stats().IOFaults must rise
	wantLck bool // Stats().LockWaits must rise
}

// TestStorageFaultsDegrade: every injected storage fault kind, firing on
// EVERY opportunity, leaves the store functional (cold at worst), bumps
// its counter, and never panics or serves a corrupted unit.
func TestStorageFaultsDegrade(t *testing.T) {
	cases := []storageCase{
		{kind: faultinject.StoreReadErr, spec: "tsread", wantIO: true},
		{kind: faultinject.StoreWriteErr, spec: "tswrite", wantIO: true},
		{kind: faultinject.StoreNoSpace, spec: "tsnospc", wantIO: true},
		{kind: faultinject.StoreShortWrite, spec: "tsshort", wantIO: true},
		{kind: faultinject.StoreBitFlip, spec: "tsflip"},
		{kind: faultinject.StoreLockTimeout, spec: "tslock", wantLck: true},
	}
	for _, tc := range cases {
		t.Run(tc.spec, func(t *testing.T) {
			dir := t.TempDir()
			// Seed the directory with a clean file first.
			clean := NewCache(dir)
			cs := clean.Open(testKey())
			for i := uint64(0); i < 4; i++ {
				cs.Put(sampleUnit(t, 0x1000+i*64))
			}
			if err := clean.Save(); err != nil {
				t.Fatal(err)
			}

			in := faultinject.New(7)
			in.Enable(tc.kind, 1)
			c := NewCacheOpts(Options{Dir: dir, FS: &FaultFS{In: in}, LockTimeout: 20 * time.Millisecond})
			st := c.Open(testKey()) // may come up cold: that IS the degradation
			for i := uint64(0); i < 4; i++ {
				addr := 0x1000 + i*64
				if u := st.Get(addr); u != nil {
					// Whatever survived the fault must be the right unit.
					if u.SB.GuestAddr != addr {
						t.Fatalf("wrong-universe unit served under %s", tc.spec)
					}
				} else {
					st.Put(sampleUnit(t, addr)) // cold path: retranslate
				}
			}
			if st.Get(0x1000) == nil {
				t.Fatal("store unusable after degradation")
			}
			st.Put(sampleUnit(t, 0xA000)) // force the save's append path
			_ = c.Save()                  // error is diagnostic; must not panic
			s := st.Stats()
			if tc.wantIO && s.IOFaults == 0 {
				t.Fatalf("%s: IOFaults not counted (stats %+v)", tc.spec, s)
			}
			if tc.wantLck && s.LockWaits == 0 {
				t.Fatalf("%s: LockWaits not counted (stats %+v)", tc.spec, s)
			}
			if in.Fired(tc.kind) == 0 {
				t.Fatalf("%s: injector never fired", tc.spec)
			}

			// The file (whatever state the faults left it in) must load
			// cleanly with a healthy FS: CRC + header checks are the last
			// line, and they never let damage escalate past "fewer units".
			recov := NewCache(dir).Open(testKey())
			recov.Each(func(u *Unit) {
				if u.SB == nil {
					t.Error("recovered unit without IR")
				}
			})
		})
	}
}

// TestShortWriteTornTailRepair: an injected short write mid-save leaves at
// most one torn tail, which the next clean writer truncates and repairs.
func TestShortWriteTornTailRepair(t *testing.T) {
	dir := t.TempDir()
	in := faultinject.New(3)
	in.Enable(faultinject.StoreShortWrite, 3) // tear some, land some
	c := NewCacheOpts(Options{Dir: dir, FS: &FaultFS{In: in}})
	st := c.Open(testKey())
	for i := uint64(0); i < 6; i++ {
		st.Put(sampleUnit(t, 0x1000+i*64))
	}
	_ = c.Save() // some frames land, one tears

	// A clean successor loads the prefix, then repairs on its save.
	c2 := NewCache(dir)
	s2 := c2.Open(testKey())
	before := s2.Len()
	s2.Put(sampleUnit(t, 0x9000))
	if err := c2.Save(); err != nil {
		t.Fatal(err)
	}
	s3 := NewCache(dir).Open(testKey())
	if got := s3.Len(); got != before+1 {
		t.Fatalf("after repair: %d units, want %d", got, before+1)
	}
}

// TestFireStorageDeterministic: the storage streams are a pure function of
// (seed, kind, N) like every other injected kind, and concurrent draws are
// safe (exercised under -race).
func TestFireStorageDeterministic(t *testing.T) {
	draw := func(seed uint64) []bool {
		in := faultinject.New(seed)
		in.Enable(faultinject.StoreReadErr, 3)
		out := make([]bool, 12)
		for i := range out {
			out[i] = in.FireStorage(faultinject.StoreReadErr)
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("storage stream not deterministic at draw %d", i)
		}
	}
	// Concurrent draws: total fired must equal the sequential count.
	in := faultinject.New(42)
	in.Enable(faultinject.StoreWriteErr, 2)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				in.FireStorage(faultinject.StoreWriteErr)
			}
		}()
	}
	wg.Wait()
	if seen, fired := in.Seen(faultinject.StoreWriteErr), in.Fired(faultinject.StoreWriteErr); seen != 800 || fired != 400 {
		t.Fatalf("concurrent draws lost decisions: seen=%d fired=%d, want 800/400", seen, fired)
	}
}
