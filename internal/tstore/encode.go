package tstore

// Unit serialization for the persistent tier, reusing the varint/CRC-framed
// idioms of internal/obs/store: an append-only varint stream per unit,
// wrapped in a length+CRC32 frame so a torn tail is detected and dropped
// instead of poisoning the store.
//
// Function values do not serialize. Pure op-table funcs (UOp.Fn/Fn1) are
// re-bound from the recorded vex.Op on decode; dirty-helper closures are
// left nil and re-bound by the adopting core from (Name, Meta, Args) — a
// decoded unit is inert until a core attaches it.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/vex"
)

// enc is an append-only varint stream.
type enc struct {
	buf []byte
}

func (e *enc) u64(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *enc) i64(v int64)  { e.buf = binary.AppendVarint(e.buf, v) }

func (e *enc) str(s string) {
	e.u64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// dec is the matching bounds-checked reader. The first malformed read
// latches err; subsequent reads return zero values.
type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("tstore: decode: "+format, args...)
	}
}

func (d *dec) u64() uint64 {
	// One-byte fast path: almost every field in a unit (kinds, widths,
	// temps, small lengths) is < 0x80, and the warm-start scan decodes
	// thousands of them per store file.
	if d.err == nil && d.off < len(d.buf) {
		if b := d.buf[d.off]; b < 0x80 {
			d.off++
			return uint64(b)
		}
	}
	return d.u64Slow()
}

func (d *dec) u64Slow() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) i64() int64 {
	if d.err == nil && d.off < len(d.buf) {
		if b := d.buf[d.off]; b < 0x80 {
			d.off++
			// Zig-zag decode of a single byte.
			return int64(b>>1) ^ -int64(b&1)
		}
	}
	return d.i64Slow()
}

func (d *dec) i64Slow() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad varint at %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) str() string {
	n := d.u64()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail("string length %d overruns buffer at %d", n, d.off)
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// count reads a collection length and sanity-bounds it against the bytes
// remaining, so corrupt input cannot trigger a huge allocation.
func (d *dec) count() int {
	n := d.u64()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.buf)-d.off)+1 {
		d.fail("count %d implausible at %d", n, d.off)
		return 0
	}
	return int(n)
}

func encExpr(e *enc, x vex.Expr) {
	e.u64(uint64(x.Kind))
	e.u64(x.Const)
	e.u64(uint64(x.Tmp))
	e.u64(uint64(x.Reg))
}

func decExpr(d *dec) vex.Expr {
	return vex.Expr{
		Kind:  vex.ExprKind(d.u64()),
		Const: d.u64(),
		Tmp:   vex.Temp(d.u64()),
		Reg:   uint8(d.u64()),
	}
}

// encodeUnit serializes a unit (without its frame).
func encodeUnit(e *enc, u *Unit) {
	e.u64(u.Addr)
	e.u64(uint64(u.Seams))
	flags := uint64(0)
	if u.Pretranslated {
		flags |= 1
	}
	if u.Code != nil {
		flags |= 2
	}
	e.u64(flags)
	encSB(e, u.SB)
	if u.Code != nil {
		encCompiled(e, u.Code)
	}
}

// decodeUnit reverses encodeUnit. Dirty helpers come back with nil Fn.
func decodeUnit(d *dec) (*Unit, error) {
	u := &Unit{Addr: d.u64()}
	u.Seams = int(d.u64())
	flags := d.u64()
	u.Pretranslated = flags&1 != 0
	u.SB = decSB(d)
	if flags&2 != 0 {
		u.Code = decCompiled(d)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("tstore: decode: %d trailing bytes in unit frame", len(d.buf)-d.off)
	}
	return u, nil
}

func encSB(e *enc, sb *vex.SuperBlock) {
	e.u64(sb.GuestAddr)
	e.u64(uint64(sb.NTemps))
	encExpr(e, sb.Next)
	e.u64(uint64(sb.NextJK))
	e.i64(int64(sb.Aux))
	e.u64(uint64(len(sb.Stmts)))
	for i := range sb.Stmts {
		s := &sb.Stmts[i]
		e.u64(uint64(s.Kind))
		e.u64(s.Addr)
		e.u64(uint64(s.Len))
		e.u64(uint64(s.Tmp))
		e.u64(uint64(s.Op))
		e.u64(uint64(s.Wd))
		encExpr(e, s.E1)
		encExpr(e, s.E2)
		e.u64(uint64(s.Reg))
		e.u64(s.Target)
		e.u64(uint64(s.JK))
		e.str(s.Name)
		e.u64(uint64(len(s.Args)))
		for _, a := range s.Args {
			encExpr(e, a)
		}
		e.u64(uint64(len(s.Meta)))
		for _, m := range s.Meta {
			e.u64(m)
		}
	}
}

func decSB(d *dec) *vex.SuperBlock {
	sb := &vex.SuperBlock{GuestAddr: d.u64()}
	sb.NTemps = uint32(d.u64())
	sb.Next = decExpr(d)
	sb.NextJK = vex.JumpKind(d.u64())
	sb.Aux = int32(d.i64())
	n := d.count()
	if d.err != nil {
		return sb
	}
	sb.Stmts = make([]vex.Stmt, n)
	for i := 0; i < n && d.err == nil; i++ {
		s := &sb.Stmts[i]
		s.Kind = vex.StmtKind(d.u64())
		s.Addr = d.u64()
		s.Len = uint8(d.u64())
		s.Tmp = vex.Temp(d.u64())
		s.Op = vex.Op(d.u64())
		s.Wd = vex.Width(d.u64())
		s.E1 = decExpr(d)
		s.E2 = decExpr(d)
		s.Reg = uint8(d.u64())
		s.Target = d.u64()
		s.JK = vex.JumpKind(d.u64())
		s.Name = d.str()
		if na := d.count(); na > 0 {
			s.Args = make([]vex.Expr, na)
			for j := range s.Args {
				s.Args[j] = decExpr(d)
			}
		}
		if nm := d.count(); nm > 0 {
			s.Meta = make([]uint64, nm)
			for j := range s.Meta {
				s.Meta[j] = d.u64()
			}
		}
	}
	return sb
}

func encCompiled(e *enc, c *vex.Compiled) {
	e.u64(c.GuestAddr)
	e.u64(uint64(c.NFrame))
	e.u64(uint64(c.NInstrs))
	e.u64(c.LastPC)
	e.u64(uint64(c.NextKind))
	e.u64(c.NextImm)
	e.u64(uint64(c.NextIdx))
	e.u64(uint64(c.NextJK))
	e.i64(int64(c.Aux))
	e.i64(int64(c.NextChain))
	e.u64(uint64(c.NChains))
	e.u64(uint64(len(c.Ops)))
	for i := range c.Ops {
		u := &c.Ops[i]
		e.u64(uint64(u.Code))
		e.u64(uint64(u.Wd))
		e.u64(uint64(u.Op))
		e.u64(uint64(u.Dst))
		e.u64(uint64(u.A))
		e.u64(uint64(u.B))
		e.i64(int64(u.ChainIdx))
		e.u64(u.Imm)
		if u.Dirty == nil {
			e.u64(0)
			continue
		}
		e.u64(1)
		dd := u.Dirty
		e.str(dd.Name)
		e.u64(uint64(len(dd.Args)))
		for _, a := range dd.Args {
			e.u64(uint64(a.Kind))
			e.u64(uint64(a.Idx))
			e.u64(a.Imm)
		}
		e.u64(uint64(len(dd.Meta)))
		for _, m := range dd.Meta {
			e.u64(m)
		}
		e.u64(uint64(dd.Tmp))
		if dd.HasTmp {
			e.u64(1)
		} else {
			e.u64(0)
		}
		e.u64(uint64(dd.InstrsBefore))
	}
	// PCs are near-monotone guest addresses: delta-encode them. ICs are
	// small monotone counts.
	prev := uint64(0)
	for _, pc := range c.PCs {
		e.i64(int64(pc) - int64(prev))
		prev = pc
	}
	for _, ic := range c.ICs {
		e.u64(uint64(ic))
	}
}

func decCompiled(d *dec) *vex.Compiled {
	c := &vex.Compiled{GuestAddr: d.u64()}
	c.NFrame = uint32(d.u64())
	c.NInstrs = int(d.u64())
	c.LastPC = d.u64()
	c.NextKind = vex.ExprKind(d.u64())
	c.NextImm = d.u64()
	c.NextIdx = uint32(d.u64())
	c.NextJK = vex.JumpKind(d.u64())
	c.Aux = int32(d.i64())
	c.NextChain = int32(d.i64())
	c.NChains = int(d.u64())
	n := d.count()
	if d.err != nil {
		return c
	}
	c.Ops = make([]vex.UOp, n)
	for i := 0; i < n && d.err == nil; i++ {
		u := &c.Ops[i]
		u.Code = vex.UCode(d.u64())
		u.Wd = uint8(d.u64())
		u.Op = vex.Op(d.u64())
		u.Dst = uint32(d.u64())
		u.A = uint32(d.u64())
		u.B = uint32(d.u64())
		u.ChainIdx = int32(d.i64())
		u.Imm = d.u64()
		if d.u64() != 0 {
			dd := &vex.DirtyOp{Name: d.str()}
			if na := d.count(); na > 0 {
				dd.Args = make([]vex.CArg, na)
				for j := range dd.Args {
					dd.Args[j] = vex.CArg{
						Kind: vex.ExprKind(d.u64()),
						Idx:  uint32(d.u64()),
						Imm:  d.u64(),
					}
				}
			}
			if nm := d.count(); nm > 0 {
				dd.Meta = make([]uint64, nm)
				for j := range dd.Meta {
					dd.Meta[j] = d.u64()
				}
			}
			dd.Tmp = uint32(d.u64())
			dd.HasTmp = d.u64() != 0
			dd.InstrsBefore = uint32(d.u64())
			u.Dirty = dd
		}
		rebindOp(d, u)
	}
	c.PCs = make([]uint64, n)
	prev := uint64(0)
	for i := 0; i < n && d.err == nil; i++ {
		prev = uint64(int64(prev) + d.i64())
		c.PCs[i] = prev
	}
	c.ICs = make([]uint32, n)
	for i := 0; i < n && d.err == nil; i++ {
		c.ICs[i] = uint32(d.u64())
	}
	return c
}

// rebindOp restores the pre-bound op-table funcs a serialized micro-op
// cannot carry. The vex compiler records the source vex.Op on every
// op-table micro-op precisely so this lookup works.
func rebindOp(d *dec, u *vex.UOp) {
	switch {
	case (u.Code >= vex.UBinTT && u.Code <= vex.UBinRR) ||
		(u.Code >= vex.UPutBinTT && u.Code <= vex.UPutBinRR) ||
		(u.Code >= vex.UExitBinTT && u.Code <= vex.UExitBinRR):
		if u.Fn = vex.BinopFn(u.Op); u.Fn == nil {
			d.fail("micro-op %d carries non-binary op %d", u.Code, u.Op)
		}
	case u.Code == vex.UUnT || u.Code == vex.UUnR ||
		u.Code == vex.UPutUnT || u.Code == vex.UPutUnR:
		if u.Fn1 = vex.UnopFn(u.Op); u.Fn1 == nil {
			d.fail("micro-op %d carries non-unary op %d", u.Code, u.Op)
		}
	}
}
