package tstore

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/vex"
)

// sampleSB builds a representative superblock: temps, marks, loads, stores,
// binops, unops, a conditional exit and a dirty call with Meta.
func sampleSB(addr uint64) *vex.SuperBlock {
	sb := &vex.SuperBlock{GuestAddr: addr, NextJK: vex.JKCall, Aux: -3,
		Next: vex.ConstE(addr + 64)}
	t0 := sb.NewTemp()
	t1 := sb.NewTemp()
	t2 := sb.NewTemp()
	sb.Append(vex.Stmt{Kind: vex.SIMark, Addr: addr, Len: 4})
	sb.Append(vex.Stmt{Kind: vex.SWrTmpLoad, Tmp: t0, Wd: 8, E1: vex.ConstE(0x5000)})
	sb.Append(vex.Stmt{Kind: vex.SWrTmpBinop, Tmp: t1, Op: vex.OpAdd,
		E1: vex.TmpE(t0), E2: vex.ConstE(7)})
	sb.Append(vex.Stmt{Kind: vex.SWrTmpUnop, Tmp: t2, Op: vex.OpNot, E1: vex.TmpE(t1)})
	sb.Append(vex.Stmt{Kind: vex.SDirty, Tmp: vex.NoTemp, Name: "flush_accesses",
		Fn:   func(any, []uint64) uint64 { return 0 },
		Args: []vex.Expr{vex.TmpE(t0)}, Meta: []uint64{addr, 8}})
	sb.Append(vex.Stmt{Kind: vex.SStore, Wd: 4, E1: vex.RegE(3), E2: vex.TmpE(t2)})
	sb.Append(vex.Stmt{Kind: vex.SExit, Target: addr + 32, JK: vex.JKBoring,
		E1: vex.TmpE(t1)})
	sb.Append(vex.Stmt{Kind: vex.SPutReg, Reg: 5, E1: vex.TmpE(t2)})
	return sb
}

func sampleUnit(t *testing.T, addr uint64) *Unit {
	t.Helper()
	sb := sampleSB(addr)
	code, err := vex.Compile(sb)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return &Unit{Addr: addr, SB: sb, Code: code, Seams: 2, Pretranslated: true}
}

func testKey() Key {
	return Key{Image: "abc123", Tool: "taskgrind", Engine: "compiled",
		Extend: 8, Delivery: "batched", Version: FormatVersion}
}

// TestUnitRoundtrip: encode/decode preserves the IR and the compiled form,
// and re-encoding the decoded unit is byte-identical (the property the
// content-addressed store rests on).
func TestUnitRoundtrip(t *testing.T) {
	u := sampleUnit(t, 0x1000)
	var e enc
	encodeUnit(&e, u)
	got, err := decodeUnit(&dec{buf: e.buf})
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Addr != u.Addr || got.Seams != u.Seams || got.Pretranslated != u.Pretranslated {
		t.Fatalf("header mismatch: %+v vs %+v", got, u)
	}
	if len(got.SB.Stmts) != len(u.SB.Stmts) || got.SB.NTemps != u.SB.NTemps ||
		got.SB.NextJK != u.SB.NextJK || got.SB.Aux != u.SB.Aux {
		t.Fatalf("SB shape mismatch")
	}
	for i, s := range got.SB.Stmts {
		o := u.SB.Stmts[i]
		if s.Kind != o.Kind || s.Op != o.Op || s.Wd != o.Wd || s.Name != o.Name {
			t.Fatalf("stmt %d mismatch: %+v vs %+v", i, s, o)
		}
	}
	if got.Code == nil || len(got.Code.Ops) != len(u.Code.Ops) ||
		got.Code.NInstrs != u.Code.NInstrs || len(got.Code.PCs) != len(u.Code.PCs) {
		t.Fatalf("compiled form mismatch")
	}
	// The decoder must rebind op-table functions from the Op tag.
	for i, op := range got.Code.Ops {
		o := u.Code.Ops[i]
		if op.Code != o.Code || op.Op != o.Op {
			t.Fatalf("uop %d mismatch: %+v vs %+v", i, op, o)
		}
		if (o.Fn != nil) != (op.Fn != nil) || (o.Fn1 != nil) != (op.Fn1 != nil) {
			t.Fatalf("uop %d fn rebinding lost: %+v", i, op)
		}
	}
	var e2 enc
	encodeUnit(&e2, got)
	if !bytes.Equal(e.buf, e2.buf) {
		t.Fatalf("re-encode not byte-identical: %d vs %d bytes", len(e.buf), len(e2.buf))
	}
}

// TestDecodeRejectsCorruption: every single-byte corruption either decodes
// to the same bytes or fails — never a silently different unit that
// re-encodes differently. (CRC catches corruption first in the file tier;
// this guards the decoder itself against shape confusion.)
func TestDecodeRejectsTruncation(t *testing.T) {
	u := sampleUnit(t, 0x1000)
	var e enc
	encodeUnit(&e, u)
	for cut := 0; cut < len(e.buf); cut += 7 {
		if _, err := decodeUnit(&dec{buf: e.buf[:cut]}); err == nil {
			t.Fatalf("truncation at %d/%d decoded successfully", cut, len(e.buf))
		}
	}
	// Trailing garbage is an error too.
	if _, err := decodeUnit(&dec{buf: append(append([]byte{}, e.buf...), 0)}); err == nil {
		t.Fatalf("trailing byte accepted")
	}
}

// TestStoreSharedCodeMerge: a Put of an SB-only unit followed by PutCode
// yields one unit carrying both; first writer wins on duplicate Puts.
func TestStoreMerge(t *testing.T) {
	st := NewStore(testKey())
	u := sampleUnit(t, 0x2000)
	st.Put(&Unit{Addr: u.Addr, SB: u.SB, Seams: 1})
	if got := st.Get(u.Addr); got == nil || got.Code != nil {
		t.Fatalf("want SB-only unit, got %+v", got)
	}
	st.PutCode(u.Addr, u.Code)
	if got := st.Get(u.Addr); got == nil || got.Code == nil {
		t.Fatalf("PutCode did not attach")
	}
	// A racing duplicate Put must not replace the merged unit.
	st.Put(&Unit{Addr: u.Addr, SB: sampleSB(u.Addr), Seams: 9})
	if got := st.Get(u.Addr); got.Seams != 1 || got.Code == nil {
		t.Fatalf("duplicate Put replaced the unit: %+v", got)
	}
	s := st.Stats()
	if s.Units != 1 || s.Puts != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestDiskRoundtrip: save, reopen, and get the same units back.
func TestDiskRoundtrip(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(dir)
	st := c.Open(testKey())
	for i := uint64(0); i < 8; i++ {
		u := sampleUnit(t, 0x1000+i*64)
		st.Put(u)
	}
	if err := c.Save(); err != nil {
		t.Fatalf("save: %v", err)
	}
	st2 := NewCache(dir).Open(testKey())
	if st2.Len() != 8 {
		t.Fatalf("reloaded %d units, want 8", st2.Len())
	}
	u := st2.Get(0x1000)
	if u == nil || u.Code == nil || u.Seams != 2 || !u.Pretranslated {
		t.Fatalf("reloaded unit mismatch: %+v", u)
	}
	// Dirty helpers must come back unbound (the adopting core rebinds).
	for _, s := range u.SB.Stmts {
		if s.Kind == vex.SDirty && s.Fn != nil {
			t.Fatalf("persisted dirty fn survived the disk")
		}
	}
}

// TestInvalidation: a tier saved under one key is never served for another
// — a modified image, a different tool, a bumped format version. This is
// the stale-translation safety property.
func TestInvalidation(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(dir)
	st := c.Open(testKey())
	st.Put(sampleUnit(t, 0x1000))
	if err := c.Save(); err != nil {
		t.Fatalf("save: %v", err)
	}
	cases := []Key{}
	k := testKey()
	k.Image = "abc124" // one bit of image content changed its hash
	cases = append(cases, k)
	k = testKey()
	k.Tool = "memcheck"
	cases = append(cases, k)
	k = testKey()
	k.Engine = "ir"
	cases = append(cases, k)
	k = testKey()
	k.Extend = 0
	cases = append(cases, k)
	k = testKey()
	k.Delivery = "per-event"
	cases = append(cases, k)
	k = testKey()
	k.Version = FormatVersion + 1
	cases = append(cases, k)
	for _, k := range cases {
		if got := NewCache(dir).Open(k).Len(); got != 0 {
			t.Fatalf("key %s served %d stale units", k.String(), got)
		}
	}
	// And the original key still loads.
	if got := NewCache(dir).Open(testKey()).Len(); got != 1 {
		t.Fatalf("original key lost its tier: %d units", got)
	}
}

// TestInvalidationRenamedFile: even a file hand-renamed to another key's
// name is rejected by the header check.
func TestInvalidationRenamedFile(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(dir)
	st := c.Open(testKey())
	st.Put(sampleUnit(t, 0x1000))
	if err := c.Save(); err != nil {
		t.Fatalf("save: %v", err)
	}
	other := testKey()
	other.Image = "fedcba"
	if err := os.Rename(fileName(dir, testKey()), fileName(dir, other)); err != nil {
		t.Fatal(err)
	}
	if got := NewCache(dir).Open(other).Len(); got != 0 {
		t.Fatalf("renamed tier served %d stale units", got)
	}
}

// TestTornTail: a truncated file (killed writer) warm-starts with the
// intact prefix and drops the torn frame.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(dir)
	st := c.Open(testKey())
	for i := uint64(0); i < 4; i++ {
		st.Put(sampleUnit(t, 0x1000+i*64))
	}
	if err := c.Save(); err != nil {
		t.Fatalf("save: %v", err)
	}
	path := fileName(dir, testKey())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o600); err != nil {
		t.Fatal(err)
	}
	got := NewCache(dir).Open(testKey()).Len()
	if got != 3 {
		t.Fatalf("torn tail recovered %d units, want 3", got)
	}
	// Flipping a byte inside a frame drops that frame and the rest.
	mid := len(fileMagic) + 40
	data[mid] ^= 0xff
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	if got := NewCache(dir).Open(testKey()).Len(); got >= 4 {
		t.Fatalf("corrupt frame not dropped: %d units", got)
	}
}

// TestSaveSkipsUngrown: Save rewrites only stores that grew since the last
// save, so a warm run that translates nothing does not touch the disk.
func TestSaveSkipsUngrown(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(dir)
	st := c.Open(testKey())
	st.Put(sampleUnit(t, 0x1000))
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	path := fileName(dir, testKey())
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewCache(dir)
	_ = c2.Open(testKey())
	if err := c2.Save(); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if !after.ModTime().Equal(before.ModTime()) {
		t.Fatalf("ungrown store was rewritten")
	}
	// No temp litter either way (the persistent .lock companion is part of
	// the cross-process protocol, not litter).
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if e.Name() != filepath.Base(path) && filepath.Ext(e.Name()) != ".lock" {
			t.Fatalf("unexpected file %s", e.Name())
		}
	}
}

// TestConcurrentStore: many goroutines race Get/Put/PutCode on one store
// (run under -race by make check).
func TestConcurrentStore(t *testing.T) {
	st := NewStore(testKey())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := uint64(0); i < 200; i++ {
				addr := 0x1000 + (i%50)*64
				if u := st.Get(addr); u != nil && u.SB.GuestAddr != addr {
					t.Errorf("unit addr mismatch")
					return
				}
				sb := sampleSB(addr)
				st.Put(&Unit{Addr: addr, SB: sb, Seams: 1})
				if w%2 == 0 {
					if code, err := vex.Compile(sb); err == nil {
						st.PutCode(addr, code)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if st.Len() != 50 {
		t.Fatalf("store has %d units, want 50", st.Len())
	}
}
