// Package heat is a 1-D heat-diffusion mini-app in three versions — the
// "porting simulation codes... particularly with dependent task-based
// programming models" scenario of the paper's introduction, and the
// substrate for the trial-and-error parallelization-assistant workflow its
// conclusion envisions:
//
//   - Serial: the reference loop nest.
//   - RacyTasks: the first tasking attempt — each chunk task depends only
//     on its own chunk, forgetting the stencil halo (a "missing
//     synchronization lead[ing] to an incorrect order of execution").
//   - FixedTasks: the dependence-complete version Taskgrind's report
//     points to.
//
// All versions compute the same result under the serialized schedule (the
// race is a determinacy hazard, not a wrong-value bug on every run), which
// is exactly why a determinacy-race tool is needed to find it.
package heat

import (
	"fmt"

	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/omp"
	"repro/internal/ompt"
)

// Version selects the program variant.
type Version int

// Variants.
const (
	Serial Version = iota
	RacyTasks
	FixedTasks
)

// String renders the variant name.
func (v Version) String() string {
	switch v {
	case Serial:
		return "serial"
	case RacyTasks:
		return "racy-tasks"
	case FixedTasks:
		return "fixed-tasks"
	}
	return "?"
}

const (
	r0 = guest.R0
	r1 = guest.R1
	r2 = guest.R2
	r3 = guest.R3
	r4 = guest.R4
	r5 = guest.R5
	r9 = guest.R9
)

// Params sizes the problem.
type Params struct {
	// N is the cell count (including the two fixed boundary cells).
	N int
	// Chunks is the number of tasks per sweep.
	Chunks int
	// Iters is the number of sweeps.
	Iters int
}

// Build constructs the guest program for a variant.
func Build(v Version, p Params) (*gbuild.Builder, error) {
	if p.N < 4 || p.Chunks < 1 || p.Iters < 1 {
		return nil, fmt.Errorf("heat: bad params %+v", p)
	}
	b := omp.NewProgram()
	b.Global("u_ptr", 8)
	b.Global("w_ptr", 8)

	emitSweepBody(b)
	switch v {
	case Serial:
		emitSerialMain(b, p)
	case RacyTasks, FixedTasks:
		emitTaskMicro(b, p, v == FixedTasks)
		emitTaskMain(b, p)
	default:
		return nil, fmt.Errorf("heat: unknown version %d", v)
	}
	return b, nil
}

// emitSweepBody defines sweep(args): update dst[i] for i in [lo, lo+count)
// from src, where args = {lo, count, parity}. parity 0 reads u/writes w;
// parity 1 reads w/writes u.
//
//	dst[i] = src[i] + 0.25*(src[i-1] - 2*src[i] + src[i+1])
func emitSweepBody(b *gbuild.Builder) {
	f := b.Func("sweep", "heat.c")
	f.Line(14)
	f.Enter(48)
	// Locals: fp-8 cursor (byte off), fp-16 end, fp-24 src, fp-32 dst.
	f.Ld(8, r1, r0, 0)  // lo
	f.Ld(8, r2, r0, 8)  // count
	f.Ld(8, r3, r0, 16) // parity
	f.Muli(r1, r1, 8)
	f.Muli(r2, r2, 8)
	f.Add(r2, r1, r2)
	f.StLocal(8, 8, r1)
	f.StLocal(8, 16, r2)
	swap := f.NewLabel()
	haveBufs := f.NewLabel()
	f.Ldi(r4, 0)
	f.Bne(r3, r4, swap)
	f.LoadSym(r4, "u_ptr")
	f.Ld(8, r4, r4, 0)
	f.LoadSym(r5, "w_ptr")
	f.Ld(8, r5, r5, 0)
	f.Jmp(haveBufs)
	f.Bind(swap)
	f.LoadSym(r4, "w_ptr")
	f.Ld(8, r4, r4, 0)
	f.LoadSym(r5, "u_ptr")
	f.Ld(8, r5, r5, 0)
	f.Bind(haveBufs)
	f.StLocal(8, 24, r4) // src
	f.StLocal(8, 32, r5) // dst
	loop := f.NewLabel()
	done := f.NewLabel()
	f.Bind(loop)
	f.LdLocal(8, r1, 8)
	f.LdLocal(8, r2, 16)
	f.Bge(r1, r2, done)
	f.LdLocal(8, r4, 24) // src
	f.Add(r3, r4, r1)
	f.Ld(8, r2, r3, -8) // src[i-1]
	f.Ld(8, r5, r3, 0)  // src[i]
	f.Ld(8, r9, r3, 8)  // src[i+1]
	f.Fadd(r2, r2, r9)  // left+right
	f.LdFloat(r9, 2.0)
	f.Fmul(r9, r5, r9)
	f.Fsub(r2, r2, r9) // left - 2*mid + right
	f.LdFloat(r9, 0.25)
	f.Fmul(r2, r2, r9)
	f.Fadd(r2, r5, r2) // mid + 0.25*lap
	f.LdLocal(8, r4, 32)
	f.Add(r3, r4, r1)
	f.St(8, r3, 0, r2) // dst[i] = ...
	f.LdLocal(8, r1, 8)
	f.Addi(r1, r1, 8)
	f.StLocal(8, 8, r1)
	f.Jmp(loop)
	f.Bind(done)
	f.Leave()
}

// chunks splits the interior [1, n-1) into k ranges.
func chunks(n, k int) [][2]int {
	interior := n - 2
	out := make([][2]int, 0, k)
	for c := 0; c < k; c++ {
		lo := 1 + interior*c/k
		hi := 1 + interior*(c+1)/k
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// argsFor places the static {lo, count, parity} block for one (chunk,
// parity) pair and defines the wrapper function; returns the wrapper name.
func argsFor(b *gbuild.Builder, c [2]int, ci, parity int) string {
	sym := fmt.Sprintf("hargs_c%d_p%d", ci, parity)
	var buf [24]byte
	putU64(buf[0:], uint64(c[0]))
	putU64(buf[8:], uint64(c[1]-c[0]))
	putU64(buf[16:], uint64(parity))
	b.GlobalInit(sym, buf[:])
	fn := "sweep$" + sym
	f := b.Func(fn, "heat.c")
	f.Line(20 + ci)
	f.Enter(0)
	f.LoadSym(r0, sym)
	f.Call("sweep")
	f.Leave()
	return fn
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// emitTaskMicro builds the tasked sweeps. With halo=false the chunk task
// depends only on its own source chunk — the missing stencil dependence.
func emitTaskMicro(b *gbuild.Builder, p Params, halo bool) {
	cs := chunks(p.N, p.Chunks)
	// Pre-generate wrappers for both parities.
	names := make([][2]string, len(cs))
	for ci, c := range cs {
		names[ci][0] = argsFor(b, c, ci, 0)
		names[ci][1] = argsFor(b, c, ci, 1)
	}
	bufSym := func(parity, which int) string {
		// which 0 = src of this parity, 1 = dst.
		if (parity ^ which) == 0 {
			return "u_ptr"
		}
		return "w_ptr"
	}
	dep := func(kind uint64, sym string, idx int) omp.Dep {
		return omp.Dep{Kind: kind, Emit: func(f *gbuild.Func, dst uint8) {
			f.LoadSym(dst, sym)
			f.Ld(8, dst, dst, 0)
			f.Addi(dst, dst, int32(idx*8))
		}}
	}
	f := b.Func("micro", "heat.c")
	f.Line(40)
	f.Enter(0)
	fn := f
	omp.SingleNowait(f, func() {
		omp.AssumeDeferrable(fn, true)
		for it := 0; it < p.Iters; it++ {
			parity := it & 1
			src := bufSym(parity, 0)
			dst := bufSym(parity, 1)
			for ci, c := range cs {
				deps := []omp.Dep{
					dep(ompt.DepOut, dst, c[0]),
					dep(ompt.DepIn, src, c[0]),
				}
				if halo {
					// The stencil also reads the neighbour
					// chunks' edge cells.
					if ci > 0 {
						deps = append(deps, dep(ompt.DepIn, src, cs[ci-1][0]))
					}
					if ci < len(cs)-1 {
						deps = append(deps, dep(ompt.DepIn, src, cs[ci+1][0]))
					}
				}
				omp.EmitTask(fn, omp.TaskOpts{Fn: names[ci][parity], Deps: deps})
			}
		}
		omp.Taskwait(fn)
	})
	f.Leave()
}

// emitInit allocates and initializes both buffers: a hot spike in the
// middle, cold elsewhere.
func emitInit(f *gbuild.Func, p Params) {
	for _, sym := range []string{"u_ptr", "w_ptr"} {
		f.LdConst64(r0, uint64(p.N*8))
		f.Hcall("malloc")
		f.LoadSym(r1, sym)
		f.St(8, r1, 0, r0)
	}
	f.Ldi(r3, 0)
	f.StLocal(8, 8, r3)
	loop := f.NewLabel()
	done := f.NewLabel()
	f.Bind(loop)
	f.LdLocal(8, r3, 8)
	f.LdConst64(r2, uint64(p.N*8))
	f.Bge(r3, r2, done)
	mid := f.NewLabel()
	store := f.NewLabel()
	f.LdFloat(r4, 0)
	f.LdConst64(r2, uint64((p.N/2)*8))
	f.Bne(r3, r2, mid)
	f.LdFloat(r4, 100.0)
	f.Bind(mid)
	f.Jmp(store)
	f.Bind(store)
	for _, sym := range []string{"u_ptr", "w_ptr"} {
		f.LoadSym(r1, sym)
		f.Ld(8, r1, r1, 0)
		f.Add(r1, r1, r3)
		f.St(8, r1, 0, r4)
	}
	f.LdLocal(8, r3, 8)
	f.Addi(r3, r3, 8)
	f.StLocal(8, 8, r3)
	f.Jmp(loop)
	f.Bind(done)
}

// emitChecksum computes floor(sum(final buffer)*256) & 0x7fffffff into R0.
func emitChecksum(f *gbuild.Func, p Params) {
	final := "u_ptr"
	if p.Iters&1 == 1 {
		final = "w_ptr"
	}
	f.Ldi(r3, 0)
	f.StLocal(8, 8, r3)
	f.LdFloat(r4, 0)
	f.StLocal(8, 16, r4)
	loop := f.NewLabel()
	done := f.NewLabel()
	f.Bind(loop)
	f.LdLocal(8, r3, 8)
	f.LdConst64(r2, uint64(p.N*8))
	f.Bge(r3, r2, done)
	f.LoadSym(r1, final)
	f.Ld(8, r1, r1, 0)
	f.Add(r1, r1, r3)
	f.Ld(8, r4, r1, 0)
	f.LdLocal(8, r5, 16)
	f.Fadd(r5, r5, r4)
	f.StLocal(8, 16, r5)
	f.LdLocal(8, r3, 8)
	f.Addi(r3, r3, 8)
	f.StLocal(8, 8, r3)
	f.Jmp(loop)
	f.Bind(done)
	f.LdLocal(8, r4, 16)
	f.LdFloat(r5, 256.0)
	f.Fmul(r4, r4, r5)
	f.Ftoi(r0, r4)
	f.LdConst64(r1, 0x7fffffff)
	f.ALU(guest.OpAnd, r0, r0, r1)
}

func emitTaskMain(b *gbuild.Builder, p Params) {
	f := b.Func("main", "heat.c")
	f.Line(5)
	f.Enter(32)
	emitInit(f, p)
	f.Ldi(r1, 0)
	omp.Parallel(f, "micro", r1, 0)
	emitChecksum(f, p)
	f.Hlt(r0)
}

// emitSerialMain runs the sweeps inline through the same sweep body.
func emitSerialMain(b *gbuild.Builder, p Params) {
	cs := chunks(p.N, p.Chunks)
	names := make([][2]string, len(cs))
	for ci, c := range cs {
		names[ci][0] = argsFor(b, c, ci, 0)
		names[ci][1] = argsFor(b, c, ci, 1)
	}
	f := b.Func("main", "heat.c")
	f.Line(5)
	f.Enter(32)
	emitInit(f, p)
	for it := 0; it < p.Iters; it++ {
		for ci := range cs {
			f.Call(names[ci][it&1])
		}
	}
	emitChecksum(f, p)
	f.Hlt(r0)
}
