package heat_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/heat"
)

var p = heat.Params{N: 64, Chunks: 4, Iters: 6}

func runHeat(t *testing.T, v heat.Version, tool *core.Taskgrind, seed uint64, threads int) uint64 {
	t.Helper()
	b, err := heat.Build(v, p)
	if err != nil {
		t.Fatal(err)
	}
	setup := harness.Setup{Seed: seed, Threads: threads}
	if tool != nil {
		setup.Tool = tool
	}
	res, _, err := harness.BuildAndRun(b, setup)
	if err != nil || res.Err != nil {
		t.Fatal(err, res.Err)
	}
	return res.ExitCode
}

// TestAllVersionsComputeTheSameChecksum: the race is a determinacy hazard;
// under the serialized deterministic scheduler every version agrees — which
// is why testing alone cannot find the bug.
func TestAllVersionsComputeTheSameChecksum(t *testing.T) {
	want := runHeat(t, heat.Serial, nil, 1, 1)
	if want == 0 {
		t.Fatal("zero checksum")
	}
	for _, v := range []heat.Version{heat.RacyTasks, heat.FixedTasks} {
		for _, threads := range []int{1, 4} {
			if got := runHeat(t, v, nil, 3, threads); got != want {
				t.Errorf("%v@%d: checksum %d != serial %d", v, threads, got, want)
			}
		}
	}
}

// TestTaskgrindFlagsOnlyTheRacyVersion: the assistant workflow — serial and
// fixed are clean, the halo-less version is reported.
func TestTaskgrindFlagsOnlyTheRacyVersion(t *testing.T) {
	for _, tc := range []struct {
		v    heat.Version
		want bool
	}{
		{heat.Serial, false},
		{heat.RacyTasks, true},
		{heat.FixedTasks, false},
	} {
		tg := core.New(core.DefaultOptions())
		runHeat(t, tc.v, tg, 2, 4)
		if got := tg.RaceCount > 0; got != tc.want {
			t.Errorf("%v: reported=%v want %v (count %d)\n%s",
				tc.v, got, tc.want, tg.RaceCount, tg.Reports.String())
		}
	}
}

// TestRacyDetectedEvenSerialized: with the deferrable annotation the
// missing halo dependence is visible on one thread — the tool beats
// debugging (Dijkstra's point in the paper's introduction).
func TestRacyDetectedEvenSerialized(t *testing.T) {
	tg := core.New(core.DefaultOptions())
	runHeat(t, heat.RacyTasks, tg, 1, 1)
	if tg.RaceCount == 0 {
		t.Fatal("racy version not detected at one thread")
	}
}

// TestReportNamesTheSweep: the report labels point into heat.c.
func TestReportNamesTheSweep(t *testing.T) {
	tg := core.New(core.DefaultOptions())
	runHeat(t, heat.RacyTasks, tg, 2, 4)
	if tg.Reports.Len() == 0 {
		t.Fatal("no reports")
	}
	r := tg.Reports.Races[0]
	if r.SegA == "" || r.SegB == "" {
		t.Fatalf("unlabelled report: %+v", r)
	}
}

// TestBadParams.
func TestBadParams(t *testing.T) {
	if _, err := heat.Build(heat.Serial, heat.Params{}); err == nil {
		t.Fatal("zero params accepted")
	}
}
