package faultinject

import (
	"testing"

	"repro/internal/obs"
)

func TestFireDeterministic(t *testing.T) {
	pattern := func(seed uint64) []bool {
		in := New(seed)
		in.Enable(PoolAlloc, 3)
		out := make([]bool, 30)
		for i := range out {
			out[i] = in.Fire(PoolAlloc)
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at occurrence %d", i)
		}
	}
	// Exactly one firing per period.
	fired := 0
	for _, hit := range a {
		if hit {
			fired++
		}
	}
	if fired != 10 {
		t.Fatalf("fired %d of 30 with period 3, want 10", fired)
	}
	// Different seeds phase the pattern differently for some seed pair.
	diverged := false
	for seed := uint64(0); seed < 8 && !diverged; seed++ {
		c := pattern(seed)
		for i := range a {
			if a[i] != c[i] {
				diverged = true
				break
			}
		}
	}
	if !diverged {
		t.Fatal("every seed produced the identical pattern")
	}
}

func TestKindsIndependent(t *testing.T) {
	in := New(1)
	in.Enable(HeapAlloc, 2)
	for i := 0; i < 10; i++ {
		in.Fire(HeapAlloc)
		if in.Fire(StealDeny) {
			t.Fatal("disabled kind fired")
		}
	}
	if in.Seen(HeapAlloc) != 10 || in.Fired(HeapAlloc) != 5 {
		t.Fatalf("heap seen=%d fired=%d", in.Seen(HeapAlloc), in.Fired(HeapAlloc))
	}
	if in.Seen(StealDeny) != 0 {
		t.Fatalf("disabled kind counted decisions: %d", in.Seen(StealDeny))
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Fire(HeapAlloc) || in.Enabled() || in.Seen(PoolAlloc) != 0 {
		t.Fatal("nil injector not inert")
	}
	in.Enable(HeapAlloc, 1) // must not panic
	in.PublishMetrics(obs.NewRegistry())
}

func TestParseSpec(t *testing.T) {
	in, err := ParseSpec("pool=7, steal=3", 9)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Enabled() {
		t.Fatal("spec did not enable anything")
	}
	// Only the named kinds are armed.
	for i := 0; i < 21; i++ {
		in.Fire(PoolAlloc)
		in.Fire(StealDeny)
		if in.Fire(HeapAlloc) || in.Fire(SchedPerturb) {
			t.Fatal("unnamed kind fired")
		}
	}
	if in.Fired(PoolAlloc) != 3 || in.Fired(StealDeny) != 7 {
		t.Fatalf("pool=%d steal=%d", in.Fired(PoolAlloc), in.Fired(StealDeny))
	}

	if in, err := ParseSpec("", 1); err != nil || in.Enabled() {
		t.Fatalf("empty spec: %v, enabled=%v", err, in.Enabled())
	}
	for _, bad := range []string{"pool", "bogus=3", "pool=zero", "pool=0"} {
		if _, err := ParseSpec(bad, 1); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

func TestPublishMetrics(t *testing.T) {
	in := New(5)
	in.Enable(SchedPerturb, 2)
	for i := 0; i < 6; i++ {
		in.Fire(SchedPerturb)
	}
	reg := obs.NewRegistry()
	in.PublishMetrics(reg)
	snap := reg.Snapshot()
	if got := snap.Counter("faultinject_considered_total", "kind", "sched"); got != 6 {
		t.Fatalf("considered = %d", got)
	}
	if got := snap.Counter("faultinject_injected_total", "kind", "sched"); got != 3 {
		t.Fatalf("injected = %d", got)
	}
}
