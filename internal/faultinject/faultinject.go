// Package faultinject implements deterministic, seed-driven fault injection
// for robustness testing: heap allocation failure, fast-pool exhaustion,
// task-steal denial and scheduler perturbation. Each site that can fail pulls
// a decision from the injector; whether the Nth occurrence fires is a pure
// function of (seed, kind, N), so a failing run replays exactly from its
// command line — the same replayability contract the scheduler PRNG gives
// the race experiments.
package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/obs"
)

// Kind enumerates injectable faults.
type Kind int

// Fault kinds.
const (
	// HeapAlloc makes malloc (the program heap) return NULL.
	HeapAlloc Kind = iota
	// PoolAlloc makes the runtime fast pool return NULL (task/region
	// descriptors), as if __kmp_fast_allocate were exhausted.
	PoolAlloc
	// StealDeny makes a work-steal attempt fail (a contended victim deque).
	StealDeny
	// SchedPerturb shrinks a scheduler timeslice to a single block, forcing
	// extra preemption points.
	SchedPerturb
	// EnginePanic raises a host-side panic from inside the compiled
	// engine's block dispatch — a model of a JIT defect. Only the compiled
	// engine consults this kind, so falling back to the IR oracle
	// naturally sidesteps the injected defect (the graceful-degradation
	// acceptance path).
	EnginePanic
	// LockSpurious wakes a guest condvar waiter without a matching signal —
	// the POSIX-permitted spurious wakeup. Correct guest code re-checks its
	// predicate under the mutex and waits again; code that treats a wait
	// return as a signal breaks.
	LockSpurious
	// LockDelay perturbs a mutex handoff: the released lock is handed to a
	// different waiter than the seed-deterministic pick, modelling a delayed
	// wakeup losing the race to another contender.
	LockDelay
	// TrylockFail makes a guest mutex trylock fail even when the lock is
	// free — the "weak trylock" the POSIX spec allows and lock-free retry
	// loops must tolerate.
	TrylockFail
	// StoreReadErr makes a translation-store disk read fail with EIO.
	StoreReadErr
	// StoreWriteErr makes a translation-store disk write (or compaction
	// rename) fail with EIO.
	StoreWriteErr
	// StoreNoSpace makes a translation-store disk write fail with ENOSPC.
	StoreNoSpace
	// StoreShortWrite truncates a translation-store disk write halfway —
	// the torn frame a crash or a dying device leaves behind.
	StoreShortWrite
	// StoreBitFlip silently corrupts one byte of a translation-store disk
	// read — bit rot the CRC framing must catch.
	StoreBitFlip
	// StoreLockTimeout starves a translation-store advisory-lock
	// acquisition until its deadline.
	StoreLockTimeout
	numKinds
)

// Kinds lists every kind (tests iterate it).
var Kinds = []Kind{HeapAlloc, PoolAlloc, StealDeny, SchedPerturb, EnginePanic,
	LockSpurious, LockDelay, TrylockFail,
	StoreReadErr, StoreWriteErr, StoreNoSpace, StoreShortWrite, StoreBitFlip,
	StoreLockTimeout}

// StorageKinds lists the translation-store storage fault kinds — the ones
// drawn through FireStorage rather than Fire (tests iterate it).
var StorageKinds = []Kind{StoreReadErr, StoreWriteErr, StoreNoSpace,
	StoreShortWrite, StoreBitFlip, StoreLockTimeout}

// String returns the spec name of the kind.
func (k Kind) String() string {
	switch k {
	case HeapAlloc:
		return "heap"
	case PoolAlloc:
		return "pool"
	case StealDeny:
		return "steal"
	case SchedPerturb:
		return "sched"
	case EnginePanic:
		return "panic"
	case LockSpurious:
		return "spurious"
	case LockDelay:
		return "handoff"
	case TrylockFail:
		return "trylock"
	case StoreReadErr:
		return "tsread"
	case StoreWriteErr:
		return "tswrite"
	case StoreNoSpace:
		return "tsnospc"
	case StoreShortWrite:
		return "tsshort"
	case StoreBitFlip:
		return "tsflip"
	case StoreLockTimeout:
		return "tslock"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// kindFromName inverts String for spec parsing.
func kindFromName(s string) (Kind, bool) {
	for _, k := range Kinds {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// site is the per-kind injection state.
type site struct {
	// every fires the site once per `every` occurrences (0 = disabled).
	every uint64
	// offset phases the firing pattern within the period (seed-derived).
	offset uint64
	// seen counts decisions pulled; fired counts positive ones.
	seen  uint64
	fired uint64
}

// Injector decides, deterministically, which occurrences of each fault site
// fail. It is not internally synchronized: like the rest of the machine it is
// driven from the single-threaded scheduler loop.
type Injector struct {
	seed  uint64
	sites [numKinds]site

	// storageMu guards the StorageKinds sites, which — unlike every other
	// kind — are drawn from concurrent contexts (pretranslation workers,
	// disk merges) via FireStorage.
	storageMu sync.Mutex

	// Observe, when set, taps every decision as it is drawn (fired or
	// not) — the hook the replay journal records injection streams
	// through.
	Observe func(kind Kind, fired bool)
	// OnFire, when set, is called for every decision that actually fires —
	// the hook the tracer records injection instants through.
	OnFire func(kind Kind)
}

// New creates an injector with no kinds enabled.
func New(seed uint64) *Injector {
	return &Injector{seed: seed}
}

// splitmix64 is the standard seed-expansion mix; it decorrelates the per-kind
// phase offsets from one another and from the scheduler PRNG stream.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Enable arms kind to fire once every `every` occurrences, at a seed-derived
// phase within the period. every <= 0 disables the kind.
func (in *Injector) Enable(kind Kind, every uint64) {
	if in == nil || kind < 0 || kind >= numKinds {
		return
	}
	s := &in.sites[kind]
	s.every = every
	if every > 0 {
		s.offset = splitmix64(in.seed^uint64(kind)*0x9e3779b97f4a7c15) % every
	}
}

// Fire reports whether this occurrence of kind should fail, and counts it.
// A nil injector never fires, so call sites keep an unconditional pointer.
func (in *Injector) Fire(kind Kind) bool {
	if in == nil || kind < 0 || kind >= numKinds {
		return false
	}
	s := &in.sites[kind]
	if s.every == 0 {
		return false
	}
	hit := (s.seen+s.offset)%s.every == 0
	s.seen++
	if hit {
		s.fired++
	}
	if in.Observe != nil {
		in.Observe(kind, hit)
	}
	if hit && in.OnFire != nil {
		in.OnFire(kind)
	}
	return hit
}

// FireStorage is Fire for the storage fault kinds. It differs in two ways
// forced by where storage I/O happens: it is thread-safe (disk reads and
// appends run on pretranslation workers and merge paths, concurrent with
// the scheduler loop), and it never enters the replay journal via Observe —
// by the degradation invariant a storage fault is guest-invisible (the run
// merely translates cold), so journaling its stream would only make replay
// depend on I/O interleaving. OnFire still runs so the tracer sees the
// injection instant.
func (in *Injector) FireStorage(kind Kind) bool {
	if in == nil || kind < 0 || kind >= numKinds {
		return false
	}
	in.storageMu.Lock()
	s := &in.sites[kind]
	if s.every == 0 {
		in.storageMu.Unlock()
		return false
	}
	hit := (s.seen+s.offset)%s.every == 0
	s.seen++
	if hit {
		s.fired++
	}
	in.storageMu.Unlock()
	if hit && in.OnFire != nil {
		in.OnFire(kind)
	}
	return hit
}

// Enabled reports whether any kind is armed.
func (in *Injector) Enabled() bool {
	if in == nil {
		return false
	}
	for i := range in.sites {
		if in.sites[i].every > 0 {
			return true
		}
	}
	return false
}

// Seen returns how many decisions kind has pulled.
func (in *Injector) Seen(kind Kind) uint64 {
	if in == nil || kind < 0 || kind >= numKinds {
		return 0
	}
	return in.sites[kind].seen
}

// Fired returns how many occurrences of kind failed.
func (in *Injector) Fired(kind Kind) uint64 {
	if in == nil || kind < 0 || kind >= numKinds {
		return 0
	}
	return in.sites[kind].fired
}

// ParseSpec builds an injector from a CLI spec: a comma-separated list of
// kind=period entries, e.g. "pool=7,steal=3". A period of N fires the kind
// once every N occurrences. Unknown kinds and malformed periods are errors.
func ParseSpec(spec string, seed uint64) (*Injector, error) {
	in := New(seed)
	if strings.TrimSpace(spec) == "" {
		return in, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: bad spec entry %q (want kind=period)", part)
		}
		kind, ok := kindFromName(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("faultinject: unknown kind %q (have heap, pool, steal, sched, panic, spurious, handoff, trylock, tsread, tswrite, tsnospc, tsshort, tsflip, tslock)", name)
		}
		every, err := strconv.ParseUint(strings.TrimSpace(val), 10, 64)
		if err != nil || every == 0 {
			return nil, fmt.Errorf("faultinject: bad period %q for %s", val, kind)
		}
		in.Enable(kind, every)
	}
	return in, nil
}

// Summary renders the per-kind fired/seen counts, sorted (diagnostics).
func (in *Injector) Summary() string {
	if in == nil {
		return ""
	}
	var parts []string
	for _, k := range Kinds {
		if in.sites[k].every > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d/%d", k, in.Fired(k), in.Seen(k)))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

// PublishMetrics implements obs.MetricSource: per-kind injected/considered
// counters under the faultinject_* namespace.
func (in *Injector) PublishMetrics(reg *obs.Registry) {
	if in == nil || reg == nil {
		return
	}
	for _, k := range Kinds {
		if in.sites[k].every == 0 {
			continue
		}
		reg.Counter("faultinject_considered_total", "kind", k.String()).Set(in.Seen(k))
		reg.Counter("faultinject_injected_total", "kind", k.String()).Set(in.Fired(k))
	}
}
