// Package lockgrind is a helgrind-style lock-aware tool on the DBI
// framework: per-thread execution segments on the seggraph substrate,
// lockset intersection for data races, and lock-order (cycle) detection for
// potential deadlocks.
//
// Its character is deliberately different from Taskgrind's determinacy
// analysis: it models the *observed* schedule the way helgrind models
// pthread programs. Each OS thread is a program-ordered chain of segments;
// cross-thread edges come only from synchronization the runtime actually
// performed (fork/join, task handoff, barriers, condvar signal→wait).
// Mutual exclusion adds no ordering — instead every segment carries the
// lockset held while it ran, and two concurrent segments conflict only when
// their locksets are disjoint (the helgrind/Eraser discipline). Acquiring a
// lock while holding another records a lock-order edge; a cycle in that
// order graph is a potential deadlock even if this schedule never hung.
//
// Like the other translating tools it receives accesses through the batched
// flush_accesses dirty-call path, so it runs under both engines and either
// delivery mode with bit-identical reports.
package lockgrind

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dbi"
	"repro/internal/guest"
	"repro/internal/itree"
	"repro/internal/ompt"
	"repro/internal/seggraph"
	"repro/internal/vex"
	"repro/internal/vm"
)

// seg is one per-thread execution segment with a constant lockset: segments
// split at every acquire/release, so all accesses in a segment ran under the
// same set of locks.
type seg struct {
	node    seggraph.NodeID
	thread  int
	label   string
	lockset []uint64 // sorted lock keys held throughout the segment
	reads   *itree.Tree
	writes  *itree.Tree
}

// tstate is the per-guest-thread tool state (vm.Thread.Tool).
type tstate struct {
	cur   *seg
	stack []*seg
	// held is the acquisition-ordered set of lock keys.
	held []uint64
}

type regionInfo struct {
	forkSeg  *seg
	lasts    []*seg
	arrivals map[uint64][]*seg
}

type taskInfo struct {
	createSeg *seg
	lastSeg   *seg
	children  []uint64
}

// Race is one lockset-discipline violation.
type Race struct {
	SegA, SegB       string
	ThreadA, ThreadB int
	LocksA, LocksB   string
	Kind             string
	Ranges           []itree.Interval
}

// OrderViolation is one cycle in the lock-order graph.
type OrderViolation struct {
	// Cycle lists the lock names in acquisition-order cycle, e.g.
	// ["M1", "M2"]: M1 was held while taking M2 and vice versa.
	Cycle []string
}

// Lockgrind is the tool plugin.
type Lockgrind struct {
	dbi.NopTool
	c *dbi.Core

	graph   *seggraph.Graph
	segs    []*seg
	regions map[uint64]*regionInfo
	tasks   map[uint64]*taskInfo
	// relSeg holds condvar release segments keyed by condvar address.
	relSeg map[uint64]*seg
	// prev chains same-thread segments in program order.
	prev map[int]*seg

	// lockNames assigns stable display names in first-use order.
	lockNames map[uint64]string
	mutexSeq  int
	// order is the lock-order graph: order[h][l] means l was acquired
	// while h was held; the value is the witnessing thread.
	order map[uint64]map[uint64]int

	Races      []*Race
	Violations []*OrderViolation
}

// New creates a Lockgrind instance.
func New() *Lockgrind {
	return &Lockgrind{
		graph:     seggraph.New(),
		regions:   make(map[uint64]*regionInfo),
		tasks:     make(map[uint64]*taskInfo),
		relSeg:    make(map[uint64]*seg),
		prev:      make(map[int]*seg),
		lockNames: make(map[uint64]string),
		order:     make(map[uint64]map[uint64]int),
	}
}

// Name implements dbi.Tool.
func (lg *Lockgrind) Name() string { return "lockgrind" }

// Attach keeps the core for symbolization.
func (lg *Lockgrind) Attach(c *dbi.Core) { lg.c = c }

// Count returns the number of findings (races + order violations).
func (lg *Lockgrind) Count() int { return len(lg.Races) + len(lg.Violations) }

// newSeg creates a segment for t, chained after the thread's previous
// segment (program order) and carrying the thread's current lockset.
func (lg *Lockgrind) newSeg(t *vm.Thread, ts *tstate, label string) *seg {
	s := &seg{
		node:   lg.graph.AddNode(),
		thread: t.ID,
		label:  label,
		reads:  itree.New(),
		writes: itree.New(),
	}
	if len(ts.held) > 0 {
		s.lockset = append([]uint64(nil), ts.held...)
		sort.Slice(s.lockset, func(i, j int) bool { return s.lockset[i] < s.lockset[j] })
	}
	if p := lg.prev[t.ID]; p != nil {
		lg.graph.AddEdge(p.node, s.node)
	}
	lg.prev[t.ID] = s
	lg.segs = append(lg.segs, s)
	return s
}

// split continues the current segment under the (possibly changed) lockset.
func (lg *Lockgrind) split(t *vm.Thread, ts *tstate) {
	if ts.cur == nil {
		return
	}
	ts.cur = lg.newSeg(t, ts, ts.cur.label)
}

// lockName assigns/returns the display name of a lock key.
func (lg *Lockgrind) lockName(key uint64) string {
	if n, ok := lg.lockNames[key]; ok {
		return n
	}
	var n string
	if key < guest.FastPoolBase {
		// Critical sections are keyed by their small lock id.
		n = fmt.Sprintf("critical(%d)", key)
	} else {
		lg.mutexSeq++
		n = fmt.Sprintf("M%d", lg.mutexSeq)
	}
	lg.lockNames[key] = n
	return n
}

// acquire records taking a lock: lock-order edges from every held lock, then
// a segment split so subsequent accesses carry the grown lockset.
func (lg *Lockgrind) acquire(t *vm.Thread, ts *tstate, key uint64) {
	lg.lockName(key)
	for _, h := range ts.held {
		if h == key {
			return // recursive acquire
		}
	}
	for _, h := range ts.held {
		m := lg.order[h]
		if m == nil {
			m = make(map[uint64]int)
			lg.order[h] = m
		}
		if _, ok := m[key]; !ok {
			m[key] = t.ID
		}
	}
	ts.held = append(ts.held, key)
	lg.split(t, ts)
}

// release records dropping a lock.
func (lg *Lockgrind) release(t *vm.Thread, ts *tstate, key uint64) {
	for i, h := range ts.held {
		if h == key {
			ts.held = append(ts.held[:i:i], ts.held[i+1:]...)
			break
		}
	}
	lg.split(t, ts)
}

// state returns (creating) the per-thread tool state.
func (lg *Lockgrind) state(t *vm.Thread) *tstate {
	if ts, ok := t.Tool.(*tstate); ok {
		return ts
	}
	ts := &tstate{}
	t.Tool = ts
	return ts
}

// ThreadStart implements dbi.Tool.
func (lg *Lockgrind) ThreadStart(t *vm.Thread) {
	ts := &tstate{}
	t.Tool = ts
	if t.ID == 0 {
		ts.cur = lg.newSeg(t, ts, "main")
	}
}

// ClientRequest implements dbi.Tool: it consumes the OMPT stream, keeping
// only the synchronization helgrind would see — thread lifecycle, fork/join,
// task handoff, barriers, condvars — plus the lock events that drive the
// lockset machinery. Task dependences are deliberately ignored: lockgrind
// has no OpenMP semantic knowledge, which is exactly what makes it a
// different point in the verdict matrix.
func (lg *Lockgrind) ClientRequest(t *vm.Thread, code int32, args [6]uint64) uint64 {
	ts := lg.state(t)
	switch code {
	case ompt.CRParallelBegin:
		lg.regions[args[0]] = &regionInfo{
			forkSeg:  ts.cur,
			arrivals: make(map[uint64][]*seg),
		}

	case ompt.CRImplicitBegin:
		ri := lg.regions[args[0]]
		s := lg.newSeg(t, ts, "parallel#"+utoa(args[0]))
		if ri != nil && ri.forkSeg != nil {
			lg.graph.AddEdge(ri.forkSeg.node, s.node)
		}
		ts.stack = append(ts.stack, ts.cur)
		ts.cur = s

	case ompt.CRImplicitEnd:
		if ri := lg.regions[args[0]]; ri != nil {
			ri.lasts = append(ri.lasts, ts.cur)
		}
		ts.cur = ts.stack[len(ts.stack)-1]
		ts.stack = ts.stack[:len(ts.stack)-1]

	case ompt.CRParallelEnd:
		ri := lg.regions[args[0]]
		s := lg.newSeg(t, ts, "join#"+utoa(args[0]))
		if ri != nil {
			for _, last := range ri.lasts {
				if last != nil {
					lg.graph.AddEdge(last.node, s.node)
				}
			}
		}
		ts.cur = s

	case ompt.CRTaskCreate:
		lg.tasks[args[0]] = &taskInfo{createSeg: ts.cur}
		if p := lg.tasks[args[1]]; p != nil {
			p.children = append(p.children, args[0])
		} else {
			lg.tasks[args[1]] = &taskInfo{children: []uint64{args[0]}}
		}
		lg.split(t, ts)

	case ompt.CRTaskBegin:
		ti := lg.tasks[args[0]]
		s := lg.newSeg(t, ts, lg.locate(tArg(args, 0)))
		s.label = "task#" + utoa(args[0])
		if ti != nil && ti.createSeg != nil {
			// The deque handoff is real synchronization: the stealing
			// thread provably runs the task after its creation.
			lg.graph.AddEdge(ti.createSeg.node, s.node)
		}
		ts.stack = append(ts.stack, ts.cur)
		ts.cur = s

	case ompt.CRTaskEnd:
		if ti := lg.tasks[args[0]]; ti != nil {
			ti.lastSeg = ts.cur
		}
		ts.cur = ts.stack[len(ts.stack)-1]
		ts.stack = ts.stack[:len(ts.stack)-1]

	case ompt.CRTaskWaitEnd:
		// The waiting thread really blocked until its children finished.
		wti := lg.tasks[args[0]]
		lg.split(t, ts)
		if wti != nil && ts.cur != nil {
			for _, cid := range wti.children {
				if c := lg.tasks[cid]; c != nil && c.lastSeg != nil {
					lg.graph.AddEdge(c.lastSeg.node, ts.cur.node)
				}
			}
		}

	case ompt.CRBarrierBegin:
		ri := lg.regions[args[0]]
		if ri != nil && ts.cur != nil {
			ri.arrivals[args[1]] = append(ri.arrivals[args[1]], ts.cur)
		}

	case ompt.CRBarrierEnd:
		ri := lg.regions[args[0]]
		if ri == nil || ts.cur == nil {
			return 0
		}
		gen := args[1] - 1
		lg.split(t, ts)
		for _, a := range ri.arrivals[gen] {
			lg.graph.AddEdge(a.node, ts.cur.node)
		}

	case ompt.CRCriticalAcquire, ompt.CRMutexAcquire:
		lg.acquire(t, ts, args[0])

	case ompt.CRCriticalRelease, ompt.CRMutexRelease:
		lg.release(t, ts, args[0])

	case ompt.CRCondSignal, ompt.CRCondBroadcast, ompt.CRRelease:
		if ts.cur != nil {
			lg.relSeg[args[0]] = ts.cur
			lg.split(t, ts)
		}

	case ompt.CRCondWait, ompt.CRAcquire:
		lg.split(t, ts)
		if rel := lg.relSeg[args[0]]; rel != nil && ts.cur != nil {
			lg.graph.AddEdge(rel.node, ts.cur.node)
		}
	}
	return 1
}

func tArg(args [6]uint64, i int) uint64 { return args[i] }

// locate resolves a guest address to file:line.
func (lg *Lockgrind) locate(addr uint64) string {
	if lg.c == nil {
		return "?"
	}
	im := lg.c.M.Image
	if file, line := im.LineFor(addr); file != "" {
		return fmt.Sprintf("%s:%d", file, line)
	}
	if sym := im.SymbolFor(addr); sym != nil {
		return sym.Name
	}
	return fmt.Sprintf("0x%x", addr)
}

// Instrument implements dbi.Tool: user code is routed through the batched
// access-delivery path; __kmp runtime internals are skipped wholesale, the
// way helgrind ships suppressions for the runtime it runs under.
func (lg *Lockgrind) Instrument(c *dbi.Core, sb *vex.SuperBlock) *vex.SuperBlock {
	if sym := c.M.Image.SymbolFor(sb.GuestAddr); sym != nil &&
		strings.HasPrefix(sym.Name, "__kmp") {
		return sb
	}
	out, _, _ := c.InstrumentAccesses(sb, lg)
	return out
}

// FlushAccesses implements dbi.AccessSink.
func (lg *Lockgrind) FlushAccesses(t *vm.Thread, batch []dbi.Access) {
	ts, _ := t.Tool.(*tstate)
	if ts == nil || ts.cur == nil {
		return
	}
	for i := range batch {
		a := &batch[i]
		// Runtime-pool internals (descriptors, lock words) are the
		// runtime's business, not the program's.
		if a.Addr >= guest.FastPoolBase && a.Addr < guest.FastPoolLimit {
			continue
		}
		if a.Store {
			ts.cur.writes.InsertPoint(a.Addr, a.Wd)
		} else {
			ts.cur.reads.InsertPoint(a.Addr, a.Wd)
		}
	}
}

// locksetsIntersect reports whether two sorted locksets share a key.
func locksetsIntersect(a, b []uint64) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// Fini implements dbi.Tool: close the graph, run the lockset-intersection
// race check over unordered segment pairs, then detect cycles in the
// lock-order graph.
func (lg *Lockgrind) Fini(c *dbi.Core) {
	lg.graph.Close()

	active := make([]*seg, 0, len(lg.segs))
	for _, s := range lg.segs {
		if !s.reads.Empty() || !s.writes.Empty() {
			active = append(active, s)
		}
	}
	for i := 0; i < len(active); i++ {
		s1 := active[i]
		for j := i + 1; j < len(active); j++ {
			s2 := active[j]
			if s1.thread == s2.thread {
				continue // one thread is program-ordered by construction
			}
			if lg.graph.Ordered(s1.node, s2.node) {
				continue
			}
			if locksetsIntersect(s1.lockset, s2.lockset) {
				continue // a common lock protects the overlap
			}
			lg.checkPair(s1, s2)
		}
	}
	lg.sortRaces()
	lg.findCycles()
}

// checkPair intersects the two segments' access sets (at least one write).
func (lg *Lockgrind) checkPair(s1, s2 *seg) {
	conf := itree.New()
	kinds := ""
	collect := func(a, b *itree.Tree, kind string) {
		found := false
		itree.ForEachIntersection(a, b, func(lo, hi uint64) bool {
			conf.Insert(lo, hi)
			found = true
			return true
		})
		if found {
			if kinds != "" {
				kinds += ","
			}
			kinds += kind
		}
	}
	collect(s1.writes, s2.writes, "w/w")
	collect(s1.writes, s2.reads, "w/r")
	collect(s2.writes, s1.reads, "r/w")
	if conf.Empty() {
		return
	}
	r := &Race{
		SegA: s1.label, SegB: s2.label,
		ThreadA: s1.thread, ThreadB: s2.thread,
		LocksA: lg.locksetString(s1.lockset),
		LocksB: lg.locksetString(s2.lockset),
		Kind:   kinds,
		Ranges: conf.Intervals(),
	}
	lg.Races = append(lg.Races, r)
}

func (lg *Lockgrind) locksetString(set []uint64) string {
	if len(set) == 0 {
		return "{}"
	}
	names := make([]string, len(set))
	for i, k := range set {
		names[i] = lg.lockName(k)
	}
	sort.Strings(names)
	return "{" + strings.Join(names, ",") + "}"
}

func (lg *Lockgrind) sortRaces() {
	sort.Slice(lg.Races, func(i, j int) bool {
		a, b := lg.Races[i], lg.Races[j]
		if a.SegA != b.SegA {
			return a.SegA < b.SegA
		}
		if a.SegB != b.SegB {
			return a.SegB < b.SegB
		}
		if a.ThreadA != b.ThreadA {
			return a.ThreadA < b.ThreadA
		}
		if len(a.Ranges) > 0 && len(b.Ranges) > 0 && a.Ranges[0].Lo != b.Ranges[0].Lo {
			return a.Ranges[0].Lo < b.Ranges[0].Lo
		}
		return a.ThreadB < b.ThreadB
	})
}

// findCycles detects cycles in the lock-order graph with an iterative DFS
// over sorted keys (deterministic). Each cycle is reported once, rotated so
// the smallest lock name leads.
func (lg *Lockgrind) findCycles() {
	keys := make([]uint64, 0, len(lg.order))
	for k := range lg.order {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[uint64]int)
	var path []uint64
	seen := make(map[string]bool)

	var dfs func(u uint64)
	dfs = func(u uint64) {
		color[u] = grey
		path = append(path, u)
		next := make([]uint64, 0, len(lg.order[u]))
		for v := range lg.order[u] {
			next = append(next, v)
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		for _, v := range next {
			switch color[v] {
			case white:
				dfs(v)
			case grey:
				// Found a cycle: path from v to u, closing back to v.
				start := 0
				for i, p := range path {
					if p == v {
						start = i
						break
					}
				}
				cycle := append([]uint64(nil), path[start:]...)
				lg.reportCycle(cycle, seen)
			}
		}
		path = path[:len(path)-1]
		color[u] = black
	}
	for _, k := range keys {
		if color[k] == white {
			dfs(k)
		}
	}
	sort.Slice(lg.Violations, func(i, j int) bool {
		return strings.Join(lg.Violations[i].Cycle, ",") < strings.Join(lg.Violations[j].Cycle, ",")
	})
}

// reportCycle canonicalizes (rotate so the lexicographically smallest name
// leads) and dedups a cycle.
func (lg *Lockgrind) reportCycle(cycle []uint64, seen map[string]bool) {
	names := make([]string, len(cycle))
	for i, k := range cycle {
		names[i] = lg.lockName(k)
	}
	min := 0
	for i := range names {
		if names[i] < names[min] {
			min = i
		}
	}
	rot := append(append([]string(nil), names[min:]...), names[:min]...)
	key := strings.Join(rot, ",")
	if seen[key] {
		return
	}
	seen[key] = true
	lg.Violations = append(lg.Violations, &OrderViolation{Cycle: rot})
}

// String renders findings helgrind-style.
func (lg *Lockgrind) String() string {
	var b strings.Builder
	n := 0
	for _, r := range lg.Races {
		n++
		fmt.Fprintf(&b, "==%d== Possible data race (%s): thread %d %s holding %s vs thread %d %s holding %s\n",
			n, r.Kind, r.ThreadA, r.SegA, r.LocksA, r.ThreadB, r.SegB, r.LocksB)
		for _, iv := range r.Ranges {
			fmt.Fprintf(&b, "  %d bytes from 0x%X\n", iv.Hi-iv.Lo, iv.Lo)
		}
	}
	for _, v := range lg.Violations {
		n++
		fmt.Fprintf(&b, "==%d== Lock order violated: cycle %s -> %s\n",
			n, strings.Join(v.Cycle, " -> "), v.Cycle[0])
	}
	fmt.Fprintf(&b, "== %d finding(s)\n", n)
	return b.String()
}

func utoa(v uint64) string { return fmt.Sprintf("%d", v) }
