// Package romp simulates ROMP (Gu & Mellor-Crummey, SC'18): a dynamic
// (static-binary-rewriting) OpenMP race detector built on Dyninst.
//
// It shares the segment-graph engine with capability options expressing the
// paper's characterization:
//
//   - explicitly undeferred (if(0)/final) tasks are not ordered (false
//     positive on DRB122), while team-serialized tasks are invisible to its
//     hooks and analyzed as ordered (false negative on TMB 1001 at one
//     thread);
//   - mutexinoutset dependences are not understood (false positive on
//     DRB135);
//   - threadprivate storage crashes the instrumented run ("segv" on
//     DRB127 — modelled as benchmark metadata);
//   - per-access shadow memory without interval merging, so its footprint
//     grows with the access count rather than the access *range* count —
//     the blow-up that crashed it at -s 64 in the paper (75 GB);
//   - bare error reports: raw addresses without source locations
//     (Listing 5) — see Format.
package romp

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/report"
)

// New returns a ROMP simulator.
func New() *core.Taskgrind {
	opt := core.Options{
		// Binary rewriting of the user program; the OpenMP runtime
		// library itself is excluded by its symbol filter.
		IgnoreList:       []string{"__kmp", "omp_"},
		IgnorePoolRegion: true,
		NoFree:           true,
		StackSuppression: true,
		TLSSuppression:   true,
		// Structural differences vs Taskgrind.
		FlatShadow:                 true,
		NoIfZeroOrdering:           true,
		IgnoreMutexinoutsetDeps:    true,
		GlobalDepNamespace:         true,
		IgnoreDeferrableAnnotation: true,
		MutexOrders:                true,
		CompileTime:                true,
		MaxReports:                 1024,
	}
	return core.New(opt)
}

// Format renders reports the way ROMP does (paper Listing 5): raw access
// descriptions, no debug information.
func Format(set *report.Set) string {
	var b strings.Builder
	for _, r := range set.Races {
		b.WriteString("data race found:\n")
		for _, rg := range r.Ranges {
			fmt.Fprintf(&b, "  two accesses to memory address 0x%x\n", rg.Lo)
		}
	}
	fmt.Fprintf(&b, "%d data race(s) found\n", set.Len())
	return b.String()
}
