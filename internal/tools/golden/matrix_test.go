// The verdict matrix: six tools × the lock scenarios, every cell pinned to
// an expected verdict, every reporting cell reproduced through its replay
// token. This is the acceptance gate for the guest-level lock subsystem —
// it encodes *why* each tool agrees or disagrees on each scenario:
//
//   - taskgrind reports schedule-dependence even when accesses are
//     mutex-serialized (the paper's §VI determinacy-vs-data-race
//     distinction), so it flags every lock scenario whose outcome depends
//     on handoff order.
//   - tasksan/archer (vector clocks) and romp/lockgrind (task graph /
//     lockset) only flag true data races: unprotected or
//     differently-protected overlapping accesses.
//   - lockgrind alone sees lock-order inversions — no access pair races,
//     but the acquisition graph has a cycle.
//   - memcheck is orthogonal: it only speaks up about heap misuse (the
//     leaked block in task.c-critical).
package golden

import (
	"io"
	"testing"

	"repro/internal/drb"
	"repro/internal/harness"
	"repro/internal/lulesh"
	"repro/internal/progs"
	"repro/internal/snapshot"
	"repro/internal/tools/lockgrind"
	"repro/internal/tools/memcheck"
	"repro/internal/tools/toolreg"
)

// Verdicts. "race" is any data-race (or, for taskgrind, nondeterminism)
// report; "lock-order" is a lock acquisition cycle with no racing access
// pair; "leak" is a memcheck heap finding; "clean" is silence.
const (
	vClean     = "clean"
	vRace      = "race"
	vLockOrder = "lock-order"
	vLeak      = "leak"
)

// matrixTools is the registry order the README table uses.
var matrixTools = []string{"taskgrind", "tasksan", "romp", "archer", "memcheck", "lockgrind"}

// lockMatrix maps scenario → tool → expected verdict. Every cell was
// empirically verified stable across seeds 1..8 and both engines before
// being pinned here.
var lockMatrix = map[string]map[string]string{
	"lock-100-mutex-counter": {
		"taskgrind": vRace, // increment order is schedule-dependent
		"tasksan":   vClean, "romp": vClean, "archer": vClean,
		"memcheck": vClean, "lockgrind": vClean,
	},
	"lock-101-diff-mutex": {
		"taskgrind": vRace, "tasksan": vRace, "romp": vRace,
		"archer": vRace, "lockgrind": vRace, // disjoint locksets: true race
		"memcheck": vClean,
	},
	"lock-102-no-lock": {
		"taskgrind": vRace, "tasksan": vRace, "romp": vRace,
		"archer": vRace, "lockgrind": vRace, // one side unlocked: true race
		"memcheck": vClean,
	},
	"lock-103-lock-order": {
		"taskgrind": vClean, "tasksan": vClean, "romp": vClean,
		"archer": vClean, "memcheck": vClean,
		"lockgrind": vLockOrder, // A→B vs B→A acquisition cycle
	},
	"lock-104-condvar": {
		"taskgrind": vRace, // which task blocks first is schedule-dependent
		"tasksan":   vClean, "romp": vClean, "archer": vClean,
		"memcheck": vClean, "lockgrind": vClean,
	},
	"lock-105-trylock": {
		"taskgrind": vRace, // trylock outcome is schedule-dependent
		"tasksan":   vClean, "romp": vClean, "archer": vClean,
		"memcheck": vClean, "lockgrind": vClean,
	},
	"task.c-critical": {
		"taskgrind": vRace, // §VI: serialized but still nondeterministic
		"memcheck":  vLeak, // the malloc'd block is never freed
		"tasksan":   vClean, "romp": vClean, "archer": vClean,
		"lockgrind": vClean,
	},
}

// matrixCell runs one (prog, tool, seed, engine) cell and returns the
// observed verdict plus the rendered report.
func matrixCell(t *testing.T, prog, toolName string, seed uint64, engine string) (string, string) {
	t.Helper()
	tool, count, err := toolreg.Make(toolName)
	if err != nil {
		t.Fatal(err)
	}
	b, err := progs.Build(prog, lulesh.Params{})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := harness.BuildAndRun(b, harness.Setup{
		Tool: tool, Seed: seed, Threads: 4, Stdout: io.Discard, Engine: engine,
	})
	if err != nil {
		t.Fatalf("%s/%s seed=%d engine=%q: %v", prog, toolName, seed, engine, err)
	}
	if res.Err != nil {
		t.Fatalf("%s/%s seed=%d engine=%q: run: %v", prog, toolName, seed, engine, res.Err)
	}
	text, ok := toolreg.Render(tool)
	if !ok {
		t.Fatalf("no renderer for %s", toolName)
	}
	verdict := vClean
	if count() > 0 {
		verdict = vRace
		switch tt := tool.(type) {
		case *lockgrind.Lockgrind:
			if len(tt.Races) == 0 && len(tt.Violations) > 0 {
				verdict = vLockOrder
			}
		case *memcheck.Memcheck:
			verdict = vLeak
			for _, f := range tt.Findings {
				if f.Kind != memcheck.Leak {
					verdict = vRace // any non-leak heap error is not what we pin here
				}
			}
		}
	}
	return verdict, text
}

// TestVerdictMatrix is the acceptance matrix: every cell must produce its
// expected verdict on every default seed; at seed 1 the rendered report
// must be byte-identical across both engines (where the tool allows engine
// selection); and every reporting cell must be reproduced byte-for-byte by
// decoding and re-running its own replay token.
func TestVerdictMatrix(t *testing.T) {
	scenarios := []string{"task.c-critical"}
	for _, b := range drb.LockSuite() {
		if b.Name == "lock-106-trylock-crash" {
			continue // fault-injection-only row; exercised by the explore sweep test
		}
		scenarios = append(scenarios, b.Name)
	}
	for _, prog := range scenarios {
		prog := prog
		want, ok := lockMatrix[prog]
		if !ok {
			t.Fatalf("lock scenario %q has no matrix row — add one", prog)
		}
		for _, toolName := range matrixTools {
			toolName := toolName
			t.Run(prog+"/"+toolName, func(t *testing.T) {
				exp, ok := want[toolName]
				if !ok {
					t.Fatalf("matrix row %q missing cell for %s", prog, toolName)
				}

				// Verdict must hold on every default seed.
				for _, seed := range drb.DefaultSeeds {
					got, _ := matrixCell(t, prog, toolName, seed, "")
					if got != exp {
						t.Fatalf("seed %d: verdict %q, want %q", seed, got, exp)
					}
				}

				// Engine determinism: ir and compiled render identical bytes.
				_, ref := matrixCell(t, prog, toolName, 1, "")
				if engineSelectable(toolName) {
					for _, eng := range []string{"ir", "compiled"} {
						if _, out := matrixCell(t, prog, toolName, 1, eng); out != ref {
							t.Fatalf("engine=%s report diverges:\n--- default ---\n%s--- %s ---\n%s",
								eng, ref, eng, out)
						}
					}
				}

				// Replay-token reproduction of every reporting cell: encode
				// the cell's configuration, decode it as the CLI would, and
				// re-run — the reproduced report must match byte-for-byte.
				if exp == vClean {
					return
				}
				tok := snapshot.Config{
					Prog: prog, Tool: toolName, Seed: 1, Threads: 4,
				}.Token()
				cfg, err := snapshot.ParseToken(tok)
				if err != nil {
					t.Fatalf("replay token: %v", err)
				}
				_, replayed := matrixCell(t, cfg.Prog, cfg.Tool, cfg.Seed, cfg.Engine)
				if replayed != ref {
					t.Fatalf("replay of %s does not reproduce the report:\n--- live ---\n%s--- replay ---\n%s",
						tok, ref, replayed)
				}
			})
		}
	}
}
