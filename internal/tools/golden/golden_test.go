// Package golden snapshots each tool's rendered, user-visible report on a
// fixed set of example programs. The delivery differential suite proves the
// batched and per-event paths hand tools identical access streams; these
// goldens additionally pin the *rendered output* byte-for-byte, so a
// delivery-path or engine refactor cannot silently reword, reorder, or drop
// reports. Regenerate with:
//
//	go test ./internal/tools/golden -update
package golden

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dbi"
	"repro/internal/drb"
	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/harness"
	"repro/internal/lulesh"
	"repro/internal/omp"
	"repro/internal/progs"
	"repro/internal/tools/toolreg"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// buildListing4 is the paper's running example (Listing 4): two sibling
// tasks racing on *xptr with no depend clauses.
func buildListing4() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("xptr", 8)
	const r0, r1, r2 = guest.R0, guest.R1, guest.R2
	task := func(name string, line int, val int32) {
		f := b.Func(name, "task.c")
		f.Line(line)
		f.LoadSym(r1, "xptr")
		f.Ld(8, r1, r1, 0)
		f.Ldi(r2, val)
		f.St(4, r1, 0, r2)
		f.Ret()
	}
	task("task_a", 8, 42)
	task("task_b", 11, 43)
	f := b.Func("micro", "task.c")
	f.Enter(0)
	fn := f
	omp.SingleNowait(f, func() {
		omp.EmitTask(fn, omp.TaskOpts{Fn: "task_a"})
		omp.EmitTask(fn, omp.TaskOpts{Fn: "task_b"})
	})
	f.Leave()
	f = b.Func("main", "task.c")
	f.Enter(0)
	f.Ldi(r0, 8)
	f.Hcall("malloc")
	f.LoadSym(r1, "xptr")
	f.St(8, r1, 0, r0)
	f.Ldi(r1, 0)
	omp.Parallel(f, "micro", r1, 0)
	f.Ldi(r0, 0)
	f.Hlt(r0)
	return b
}

// goldenPrograms is the example set: the paper's Listing 4 plus a
// representative slice of Table I — racy and race-free task-dependency
// benchmarks and one TMB stack case.
func goldenPrograms(t *testing.T) []struct {
	name string
	mk   func() *gbuild.Builder
} {
	t.Helper()
	want := []string{
		"027-taskdependmissing-orig",
		"072-taskdep1-orig",
		"106-taskwaitmissing-orig",
		"131-taskdep4-orig-omp45",
		"1001-stack_1",
	}
	progs := []struct {
		name string
		mk   func() *gbuild.Builder
	}{{"task.c", buildListing4}}
	for _, name := range want {
		found := false
		for _, b := range drb.All() {
			if b.Name == name {
				progs = append(progs, struct {
					name string
					mk   func() *gbuild.Builder
				}{b.Name, b.Build})
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("golden program %q not in drb suite", name)
		}
	}
	return progs
}

// render is cmd/taskgrind's report-printing switch (toolreg.Render): the
// same bytes the user sees on stdout.
func render(t *testing.T, tool dbi.Tool) string {
	t.Helper()
	text, ok := toolreg.Render(tool)
	if !ok {
		t.Fatalf("no renderer for tool %T", tool)
	}
	return text
}

// runTool executes prog under the named tool with the given delivery mode
// and engine, and returns the rendered report.
func runTool(t *testing.T, mk func() *gbuild.Builder, toolName string, d dbi.Delivery, engine string) string {
	t.Helper()
	tool, _, err := toolreg.Make(toolName)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := harness.BuildAndRun(mk(), harness.Setup{
		Tool: tool, Seed: 1, Threads: 4, Stdout: io.Discard, Delivery: d, Engine: engine,
	})
	if err != nil {
		t.Fatalf("%s: %v", toolName, err)
	}
	if res.Err != nil {
		t.Fatalf("%s: run: %v", toolName, res.Err)
	}
	return render(t, tool)
}

// TestGoldenReports locks each tool's rendered output on the example
// programs against checked-in snapshots, under both delivery modes: the
// batched fast path must produce the exact bytes the per-event reference
// produced when the goldens were recorded.
func TestGoldenReports(t *testing.T) {
	tools := []string{"taskgrind", "tasksan", "romp", "archer", "memcheck"}
	for _, p := range goldenPrograms(t) {
		p := p
		for _, toolName := range tools {
			toolName := toolName
			t.Run(toolName+"/"+p.name, func(t *testing.T) {
				got := runTool(t, p.mk, toolName, dbi.DeliverBatched, "")
				path := filepath.Join("testdata", toolName+"__"+p.name+".golden")
				if *update {
					if err := os.MkdirAll("testdata", 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden (run with -update to record): %v", err)
				}
				if got != string(want) {
					t.Errorf("batched output diverges from golden %s:\n--- want ---\n%s--- got ---\n%s",
						path, want, got)
				}
				if pe := runTool(t, p.mk, toolName, dbi.DeliverPerEvent, ""); pe != string(want) {
					t.Errorf("per-event output diverges from golden %s:\n--- want ---\n%s--- got ---\n%s",
						path, want, pe)
				}
			})
		}
	}
}

// lockPrograms is the lock-scenario example set: Listing 4 with its task
// bodies in a critical section plus every row of the drb lock suite.
func lockPrograms(t *testing.T) []struct {
	name string
	mk   func() *gbuild.Builder
} {
	t.Helper()
	out := []struct {
		name string
		mk   func() *gbuild.Builder
	}{{"task.c-critical", progs.Listing4Critical}}
	for _, b := range drb.LockSuite() {
		if b.Name == "lock-106-trylock-crash" {
			continue // only meaningful under fault injection; covered by the explore sweep test
		}
		out = append(out, struct {
			name string
			mk   func() *gbuild.Builder
		}{b.Name, b.Build})
	}
	return out
}

// engineSelectable reports whether the named tool runs under both execution
// engines. tasksan, romp and archer pin CompileTime instrumentation, so the
// engine dimension does not exist for them (SelectEngine rejects overrides).
func engineSelectable(toolName string) bool {
	switch toolName {
	case "tasksan", "romp", "archer":
		return false
	}
	return true
}

// TestGoldenLockReports locks all six tools' rendered output on the lock
// scenarios. Each golden is recorded from the batched/default-engine run;
// the per-event delivery path and (where the tool supports engine
// selection) both execution engines must reproduce it byte-for-byte, so a
// lock-handoff or seggraph change that perturbs any tool's verdict on a
// lock program fails loudly.
func TestGoldenLockReports(t *testing.T) {
	tools := []string{"taskgrind", "tasksan", "romp", "archer", "memcheck", "lockgrind"}
	for _, p := range lockPrograms(t) {
		p := p
		for _, toolName := range tools {
			toolName := toolName
			t.Run(toolName+"/"+p.name, func(t *testing.T) {
				got := runTool(t, p.mk, toolName, dbi.DeliverBatched, "")
				path := filepath.Join("testdata", toolName+"__"+p.name+".golden")
				if *update {
					if err := os.MkdirAll("testdata", 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden (run with -update to record): %v", err)
				}
				if got != string(want) {
					t.Errorf("batched output diverges from golden %s:\n--- want ---\n%s--- got ---\n%s",
						path, want, got)
				}
				if pe := runTool(t, p.mk, toolName, dbi.DeliverPerEvent, ""); pe != string(want) {
					t.Errorf("per-event output diverges from golden %s:\n--- want ---\n%s--- got ---\n%s",
						path, want, pe)
				}
				if !engineSelectable(toolName) {
					return
				}
				for _, eng := range []string{"ir", "compiled"} {
					if ee := runTool(t, p.mk, toolName, dbi.DeliverBatched, eng); ee != string(want) {
						t.Errorf("engine=%s output diverges from golden %s:\n--- want ---\n%s--- got ---\n%s",
							eng, path, want, ee)
					}
				}
			})
		}
	}
}

// mkProg adapts a progs registry name to a builder thunk.
func mkProg(t *testing.T, name string) func() *gbuild.Builder {
	t.Helper()
	return func() *gbuild.Builder {
		b, err := progs.Build(name, lulesh.Params{})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
}
