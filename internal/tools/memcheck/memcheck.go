// Package memcheck is a second, independent tool built on the DBI framework
// — a "memcheck-lite" demonstrating that the plugin contract the paper
// describes (§II-B: "a Valgrind tool includes the Valgrind core and a
// plugin... function replacement, used for instance by the default tool
// memcheck to wrap memory allocators") supports more than race detection.
//
// It wraps malloc/free through host-call redirection, tracks block
// liveness, and instruments every access to detect:
//
//   - heap use-after-free (access to a freed block),
//   - double free / wild free,
//   - out-of-bounds access into the allocator's alignment slack
//     ("redzone-lite": bytes between the requested and rounded size),
//   - leaks at exit (live blocks, with their allocation stacks).
package memcheck

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dbi"
	"repro/internal/guest"
	"repro/internal/vex"
	"repro/internal/vm"
)

// ErrorKind classifies findings.
type ErrorKind uint8

// Finding kinds.
const (
	UseAfterFree ErrorKind = iota
	DoubleFree
	WildFree
	RedzoneAccess
	Leak
)

// String renders the kind.
func (k ErrorKind) String() string {
	switch k {
	case UseAfterFree:
		return "use-after-free"
	case DoubleFree:
		return "double-free"
	case WildFree:
		return "wild-free"
	case RedzoneAccess:
		return "redzone-access"
	case Leak:
		return "leak"
	}
	return "?"
}

// Finding is one reported error.
type Finding struct {
	Kind ErrorKind
	// Addr is the faulting address (or the freed/leaked block address).
	Addr uint64
	// PC is the faulting guest instruction (0 for frees/leaks).
	PC uint64
	// AllocStack resolves the block's allocation site.
	AllocStack []uint64
}

// block tracks one allocation's requested size.
type block struct {
	addr, reqSize, roundSize uint64
	stack                    []uint64
	freed                    bool
}

// Memcheck is the tool plugin.
type Memcheck struct {
	dbi.NopTool
	c *dbi.Core

	// blocks sorted by address; freed blocks stay for UAF attribution.
	blocks []*block

	Findings []Finding
	seen     map[[2]uint64]bool
}

// New creates a Memcheck instance.
func New() *Memcheck {
	return &Memcheck{seen: make(map[[2]uint64]bool)}
}

// Name implements dbi.Tool.
func (mc *Memcheck) Name() string { return "memcheck" }

// Attach wraps malloc and free (Valgrind-style function replacement).
func (mc *Memcheck) Attach(c *dbi.Core) {
	mc.c = c
	origMalloc, err := c.M.RedirectHost("malloc", nil)
	if err == nil && origMalloc != nil {
		_, _ = c.M.RedirectHost("malloc", func(m *vm.Machine, t *vm.Thread) vm.HostResult {
			req := t.Regs[guest.R0]
			res := origMalloc(m, t)
			if res.Ret != 0 {
				mc.insert(&block{
					addr: res.Ret, reqSize: req,
					roundSize: roundUp(req),
					stack:     t.StackTrace(t.PC),
				})
			}
			return res
		})
	}
	origFree, err := c.M.RedirectHost("free", nil)
	if err == nil && origFree != nil {
		_, _ = c.M.RedirectHost("free", func(m *vm.Machine, t *vm.Thread) vm.HostResult {
			addr := t.Regs[guest.R0]
			if addr != 0 {
				switch b := mc.exact(addr); {
				case b == nil:
					mc.report(Finding{Kind: WildFree, Addr: addr})
					return vm.HostResult{} // do not corrupt the allocator
				case b.freed:
					mc.report(Finding{Kind: DoubleFree, Addr: addr, AllocStack: b.stack})
					return vm.HostResult{}
				default:
					b.freed = true
				}
			}
			return origFree(m, t)
		})
	}
}

func roundUp(n uint64) uint64 {
	if n == 0 {
		n = 1
	}
	return (n + 15) &^ 15
}

func (mc *Memcheck) insert(b *block) {
	i := sort.Search(len(mc.blocks), func(i int) bool { return mc.blocks[i].addr >= b.addr })
	// A recycled address replaces the dead entry.
	if i < len(mc.blocks) && mc.blocks[i].addr == b.addr {
		mc.blocks[i] = b
		return
	}
	mc.blocks = append(mc.blocks, nil)
	copy(mc.blocks[i+1:], mc.blocks[i:])
	mc.blocks[i] = b
}

// exact finds the block starting at addr.
func (mc *Memcheck) exact(addr uint64) *block {
	i := sort.Search(len(mc.blocks), func(i int) bool { return mc.blocks[i].addr >= addr })
	if i < len(mc.blocks) && mc.blocks[i].addr == addr {
		return mc.blocks[i]
	}
	return nil
}

// containing finds the block whose rounded span covers addr.
func (mc *Memcheck) containing(addr uint64) *block {
	i := sort.Search(len(mc.blocks), func(i int) bool { return mc.blocks[i].addr > addr })
	if i == 0 {
		return nil
	}
	b := mc.blocks[i-1]
	if addr >= b.addr && addr < b.addr+b.roundSize {
		return b
	}
	return nil
}

func (mc *Memcheck) report(f Finding) {
	key := [2]uint64{uint64(f.Kind), f.PC ^ f.Addr}
	if f.PC != 0 {
		key[1] = f.PC // dedup access errors per site
	}
	if mc.seen[key] {
		return
	}
	mc.seen[key] = true
	mc.Findings = append(mc.Findings, f)
}

// Instrument routes every load and store through the core's access-delivery
// path (batched per superblock segment by default, one callback per access
// in the differential reference mode).
func (mc *Memcheck) Instrument(c *dbi.Core, sb *vex.SuperBlock) *vex.SuperBlock {
	out, _, _ := c.InstrumentAccesses(sb, mc)
	return out
}

// FlushAccesses implements dbi.AccessSink: check a batch of accesses.
func (mc *Memcheck) FlushAccesses(t *vm.Thread, batch []dbi.Access) {
	for i := range batch {
		a := &batch[i]
		mc.access(a.Addr, uint64(a.Wd), a.PC)
	}
}

// access checks one memory access.
func (mc *Memcheck) access(addr, w, pc uint64) {
	if addr < guest.HeapBase || addr >= guest.HeapLimit {
		return
	}
	b := mc.containing(addr)
	if b == nil {
		return // not from malloc (runtime pools etc.)
	}
	switch {
	case b.freed:
		mc.report(Finding{Kind: UseAfterFree, Addr: addr, PC: pc, AllocStack: b.stack})
	case addr+w > b.addr+b.reqSize:
		mc.report(Finding{Kind: RedzoneAccess, Addr: addr, PC: pc, AllocStack: b.stack})
	}
}

// Fini reports leaks: blocks never freed.
func (mc *Memcheck) Fini(c *dbi.Core) {
	for _, b := range mc.blocks {
		if !b.freed {
			mc.Findings = append(mc.Findings, Finding{
				Kind: Leak, Addr: b.addr, AllocStack: b.stack,
			})
		}
	}
}

// Count returns findings of a kind.
func (mc *Memcheck) Count(kind ErrorKind) int {
	n := 0
	for _, f := range mc.Findings {
		if f.Kind == kind {
			n++
		}
	}
	return n
}

// String renders the findings memcheck-style.
func (mc *Memcheck) String() string {
	var sb strings.Builder
	for i, f := range mc.Findings {
		fmt.Fprintf(&sb, "==%d== %s at 0x%x", i+1, f.Kind, f.Addr)
		if f.PC != 0 && mc.c != nil {
			fmt.Fprintf(&sb, " (%s)", mc.c.M.Image.Locate(f.PC))
		}
		sb.WriteString("\n")
		if len(f.AllocStack) > 0 && mc.c != nil {
			fmt.Fprintf(&sb, "     block allocated at %s\n", mc.c.M.Image.Locate(f.AllocStack[0]))
		}
	}
	fmt.Fprintf(&sb, "== %d error(s)\n", len(mc.Findings))
	return sb.String()
}
