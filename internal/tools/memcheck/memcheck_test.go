package memcheck_test

import (
	"strings"
	"testing"

	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/harness"
	"repro/internal/tools/memcheck"
)

const (
	r0 = guest.R0
	r1 = guest.R1
	r2 = guest.R2
	r4 = guest.R4
)

func run(t *testing.T, b *gbuild.Builder) *memcheck.Memcheck {
	t.Helper()
	mc := memcheck.New()
	res, _, err := harness.BuildAndRun(b, harness.Setup{Tool: mc, Seed: 1, Threads: 1})
	if err != nil || res.Err != nil {
		t.Fatal(err, res.Err)
	}
	return mc
}

func TestCleanProgram(t *testing.T) {
	b := gbuild.New()
	f := b.Func("main", "ok.c")
	f.Enter(0)
	f.Ldi(r0, 16)
	f.Hcall("malloc")
	f.Mov(r4, r0)
	f.Ldi(r1, 7)
	f.St(8, r4, 0, r1)
	f.Ld(8, r1, r4, 8)
	f.Mov(r0, r4)
	f.Hcall("free")
	f.Ldi(r0, 0)
	f.Hlt(r0)
	mc := run(t, b)
	if len(mc.Findings) != 0 {
		t.Fatalf("clean program reported:\n%s", mc.String())
	}
}

func TestUseAfterFree(t *testing.T) {
	b := gbuild.New()
	f := b.Func("main", "uaf.c")
	f.Line(3)
	f.Enter(0)
	f.Ldi(r0, 16)
	f.Hcall("malloc")
	f.Mov(r4, r0)
	f.Hcall("free") // free(p)
	f.Line(7)
	f.Ld(8, r1, r4, 0) // read after free
	f.Ldi(r0, 0)
	f.Hlt(r0)
	mc := run(t, b)
	if mc.Count(memcheck.UseAfterFree) != 1 {
		t.Fatalf("findings:\n%s", mc.String())
	}
	if !strings.Contains(mc.String(), "use-after-free") ||
		!strings.Contains(mc.String(), "uaf.c:7") {
		t.Fatalf("report lacks location:\n%s", mc.String())
	}
}

func TestDoubleFree(t *testing.T) {
	b := gbuild.New()
	f := b.Func("main", "df.c")
	f.Enter(0)
	f.Ldi(r0, 8)
	f.Hcall("malloc")
	f.Mov(r4, r0)
	f.Hcall("free")
	f.Mov(r0, r4)
	f.Hcall("free")
	f.Ldi(r0, 0)
	f.Hlt(r0)
	mc := run(t, b)
	if mc.Count(memcheck.DoubleFree) != 1 {
		t.Fatalf("findings:\n%s", mc.String())
	}
}

func TestWildFree(t *testing.T) {
	b := gbuild.New()
	f := b.Func("main", "wf.c")
	f.Enter(0)
	f.LdConst64(r0, guest.HeapBase+0x100)
	f.Hcall("free")
	f.Ldi(r0, 0)
	f.Hlt(r0)
	mc := run(t, b)
	if mc.Count(memcheck.WildFree) != 1 {
		t.Fatalf("findings:\n%s", mc.String())
	}
}

func TestRedzoneAccess(t *testing.T) {
	b := gbuild.New()
	f := b.Func("main", "rz.c")
	f.Enter(0)
	f.Ldi(r0, 10) // rounds to 16: bytes 10..15 are slack
	f.Hcall("malloc")
	f.Ldi(r1, 1)
	f.St(8, r0, 8, r1) // bytes 8..16: crosses the requested size
	f.Hcall("free")
	f.Ldi(r0, 0)
	f.Hlt(r0)
	mc := run(t, b)
	if mc.Count(memcheck.RedzoneAccess) != 1 {
		t.Fatalf("findings:\n%s", mc.String())
	}
}

func TestLeakAtExit(t *testing.T) {
	b := gbuild.New()
	f := b.Func("main", "lk.c")
	f.Line(2)
	f.Enter(0)
	f.Ldi(r0, 32)
	f.Hcall("malloc")
	f.Ldi(r0, 8)
	f.Hcall("malloc")
	f.Hcall("free") // frees only the second
	f.Ldi(r0, 0)
	f.Hlt(r0)
	mc := run(t, b)
	if mc.Count(memcheck.Leak) != 1 {
		t.Fatalf("findings:\n%s", mc.String())
	}
	if !strings.Contains(mc.String(), "lk.c:2") {
		t.Fatalf("leak lacks allocation site:\n%s", mc.String())
	}
}

func TestRecycledAddressIsCleanAgain(t *testing.T) {
	// free(p); q = malloc(same size) -> same address; accessing q must
	// NOT be a use-after-free.
	b := gbuild.New()
	f := b.Func("main", "rc.c")
	f.Enter(0)
	f.Ldi(r0, 8)
	f.Hcall("malloc")
	f.Hcall("free")
	f.Ldi(r0, 8)
	f.Hcall("malloc")
	f.Ldi(r1, 5)
	f.St(8, r0, 0, r1)
	f.Hcall("free")
	f.Ldi(r0, 0)
	f.Hlt(r0)
	mc := run(t, b)
	if len(mc.Findings) != 0 {
		t.Fatalf("recycled block misreported:\n%s", mc.String())
	}
}

func TestErrorKindStrings(t *testing.T) {
	kinds := map[memcheck.ErrorKind]string{
		memcheck.UseAfterFree: "use-after-free", memcheck.DoubleFree: "double-free",
		memcheck.WildFree: "wild-free", memcheck.RedzoneAccess: "redzone-access",
		memcheck.Leak: "leak",
	}
	for k, s := range kinds {
		if k.String() != s {
			t.Errorf("%d -> %q", k, k.String())
		}
	}
}
