package archer_test

import (
	"strings"
	"testing"

	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/harness"
	"repro/internal/omp"
	"repro/internal/ompt"
	"repro/internal/tools/archer"
)

const R0, R1, R2 = guest.R0, guest.R1, guest.R2

// racyTasks: two tasks write the same global without a dependence.
func racyTasks(withDep bool) *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("g", 8)

	for i, name := range []string{"t1", "t2"} {
		f := b.Func(name, "a.c")
		f.Line(10 + i)
		f.LoadSym(R1, "g")
		f.Ldi(R2, 5)
		f.St(8, R1, 0, R2)
		f.Ret()
	}

	f := b.Func("micro", "a.c")
	f.Enter(0)
	fn := f
	omp.SingleNowait(f, func() {
		var deps []omp.Dep
		if withDep {
			deps = []omp.Dep{omp.DepSym(ompt.DepOut, "g")}
		}
		omp.EmitTask(fn, omp.TaskOpts{Fn: "t1", Deps: deps})
		omp.EmitTask(fn, omp.TaskOpts{Fn: "t2", Deps: deps})
	})
	f.Leave()

	f = b.Func("main", "a.c")
	f.Enter(0)
	f.Ldi(R1, 0)
	omp.Parallel(f, "micro", R1, 4)
	f.Ldi(R0, 0)
	f.Hlt(R0)
	return b
}

func run(t *testing.T, b *gbuild.Builder, seed uint64, threads int) *archer.Archer {
	t.Helper()
	a := archer.New()
	res, _, err := harness.BuildAndRun(b, harness.Setup{Tool: a, Seed: seed, Threads: threads})
	if err != nil || res.Err != nil {
		t.Fatal(err, res.Err)
	}
	return a
}

// TestDetectsCrossThreadRace: with 4 threads, at least one seed schedules
// the racy tasks on different threads, where Archer must report.
func TestDetectsCrossThreadRace(t *testing.T) {
	found := false
	for seed := uint64(1); seed <= 12 && !found; seed++ {
		a := run(t, racyTasks(false), seed, 4)
		found = a.RaceCount() > 0
	}
	if !found {
		t.Fatal("no seed produced a cross-thread schedule with a report")
	}
}

// TestThreadCentricBlindnessOnOneThread: serialized execution orders
// everything by program order — the structural FN of Table II.
func TestThreadCentricBlindnessOnOneThread(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		a := run(t, racyTasks(false), seed, 1)
		if a.RaceCount() != 0 {
			t.Fatalf("seed %d: archer reported %d on one thread (must be blind)", seed, a.RaceCount())
		}
	}
}

// TestDependenceSyncSuppresses: dep-ordered tasks never race under Archer.
func TestDependenceSyncSuppresses(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		a := run(t, racyTasks(true), seed, 4)
		if a.RaceCount() != 0 {
			t.Fatalf("seed %d: reports on dep-ordered tasks:\n%s", seed, a.String())
		}
	}
}

// TestTaskwaitSync: parent read after taskwait is ordered.
func TestTaskwaitSync(t *testing.T) {
	build := func() *gbuild.Builder {
		b := omp.NewProgram()
		b.Global("g", 8)
		f := b.Func("child", "tw.c")
		f.LoadSym(R1, "g")
		f.Ldi(R2, 7)
		f.St(8, R1, 0, R2)
		f.Ret()
		f = b.Func("micro", "tw.c")
		f.Enter(0)
		fn := f
		omp.SingleNowait(f, func() {
			omp.EmitTask(fn, omp.TaskOpts{Fn: "child"})
			omp.Taskwait(fn)
			fn.LoadSym(R1, "g")
			fn.Ld(8, R2, R1, 0)
		})
		f.Leave()
		f = b.Func("main", "tw.c")
		f.Enter(0)
		f.Ldi(R1, 0)
		omp.Parallel(f, "micro", R1, 4)
		f.Ldi(R0, 0)
		f.Hlt(R0)
		return b
	}
	for seed := uint64(1); seed <= 8; seed++ {
		a := run(t, build(), seed, 4)
		if a.RaceCount() != 0 {
			t.Fatalf("seed %d: taskwait not synced:\n%s", seed, a.String())
		}
	}
}

// TestCriticalSync: lock-ordered counter increments do not race.
func TestCriticalSync(t *testing.T) {
	b := omp.NewProgram()
	b.Global("counter", 8)
	f := b.Func("micro", "c.c")
	f.Enter(0)
	fn := f
	omp.Critical(f, 1, func() {
		fn.LoadSym(guest.R9, "counter")
		fn.Ld(8, guest.R10, guest.R9, 0)
		fn.Addi(guest.R10, guest.R10, 1)
		fn.St(8, guest.R9, 0, guest.R10)
	})
	f.Leave()
	f = b.Func("main", "c.c")
	f.Enter(0)
	f.Ldi(R1, 0)
	omp.Parallel(f, "micro", R1, 4)
	f.Ldi(R0, 0)
	f.Hlt(R0)

	a := run(t, b, 3, 4)
	if a.RaceCount() != 0 {
		t.Fatalf("critical sections not synced:\n%s", a.String())
	}
}

// TestFreeClearsShadow: heap recycling does not produce reports because the
// allocator interceptor resets shadow state on free.
func TestFreeClearsShadow(t *testing.T) {
	b := omp.NewProgram()
	b.Global("p", 8)

	// task: p2 = malloc(8); *p2 = 1; free(p2)
	f := b.Func("tsk", "fr.c")
	f.Enter(16)
	f.Ldi(R0, 8)
	f.Hcall("malloc")
	f.StLocal(8, 8, R0)
	f.Ldi(R1, 1)
	f.St(8, R0, 0, R1)
	f.LdLocal(8, R0, 8)
	f.Hcall("free")
	f.Leave()

	f = b.Func("micro", "fr.c")
	f.Enter(0)
	fn := f
	omp.SingleNowait(f, func() {
		omp.EmitTask(fn, omp.TaskOpts{Fn: "tsk"})
		omp.EmitTask(fn, omp.TaskOpts{Fn: "tsk"})
	})
	f.Leave()
	f = b.Func("main", "fr.c")
	f.Enter(0)
	f.Ldi(R1, 0)
	omp.Parallel(f, "micro", R1, 4)
	f.Ldi(R0, 0)
	f.Hlt(R0)

	for seed := uint64(1); seed <= 8; seed++ {
		a := run(t, b, seed, 4)
		if a.RaceCount() != 0 {
			t.Fatalf("seed %d: recycling FP in archer:\n%s", seed, a.String())
		}
		b = rebuildFr()
	}
}

func rebuildFr() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("p", 8)
	f := b.Func("tsk", "fr.c")
	f.Enter(16)
	f.Ldi(R0, 8)
	f.Hcall("malloc")
	f.StLocal(8, 8, R0)
	f.Ldi(R1, 1)
	f.St(8, R0, 0, R1)
	f.LdLocal(8, R0, 8)
	f.Hcall("free")
	f.Leave()
	f = b.Func("micro", "fr.c")
	f.Enter(0)
	fn := f
	omp.SingleNowait(f, func() {
		omp.EmitTask(fn, omp.TaskOpts{Fn: "tsk"})
		omp.EmitTask(fn, omp.TaskOpts{Fn: "tsk"})
	})
	f.Leave()
	f = b.Func("main", "fr.c")
	f.Enter(0)
	f.Ldi(R1, 0)
	omp.Parallel(f, "micro", R1, 4)
	f.Ldi(R0, 0)
	f.Hlt(R0)
	return b
}

// TestReportRendering: reports carry source locations (unlike ROMP).
func TestReportRendering(t *testing.T) {
	var a *archer.Archer
	for seed := uint64(1); seed <= 12; seed++ {
		a = run(t, racyTasks(false), seed, 4)
		if a.RaceCount() > 0 {
			break
		}
	}
	if a.RaceCount() == 0 {
		t.Skip("no racy schedule found")
	}
	if !strings.Contains(a.String(), "a.c:") {
		t.Fatalf("no source location in archer report:\n%s", a.String())
	}
}
