package archer

import (
	"testing"
	"testing/quick"
)

// normalize builds a VC from a short slice.
func mkVC(vals []uint8) VC {
	v := make(VC, len(vals))
	for i, x := range vals {
		v[i] = uint32(x)
	}
	return v
}

// TestQuickAcquireIsLUB: acquire computes the pointwise least upper bound —
// idempotent, commutative (on equal lengths), and dominating both inputs.
func TestQuickAcquireIsLUB(t *testing.T) {
	f := func(av, bv []uint8) bool {
		a, b := mkVC(av), mkVC(bv)
		m1 := a.clone()
		m1.acquire(b)
		// Dominates both.
		for i, x := range a {
			if m1[i] < x {
				return false
			}
		}
		for i, x := range b {
			if m1[i] < x {
				return false
			}
		}
		// Idempotent.
		m2 := m1.clone()
		m2.acquire(b)
		m2.acquire(a)
		for i := range m1 {
			if m1[i] != m2[i] {
				return false
			}
		}
		// Every component comes from one of the inputs.
		for i, x := range m1 {
			var fromA, fromB uint32
			if i < len(a) {
				fromA = a[i]
			}
			if i < len(b) {
				fromB = b[i]
			}
			if x != fromA && x != fromB {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestCoversSemantics: covers is exactly the component comparison, with
// out-of-range components treated as unknown (not covered).
func TestCoversSemantics(t *testing.T) {
	v := mkVC([]uint8{5, 0, 3})
	if !v.covers(0, 5) || !v.covers(0, 4) || v.covers(0, 6) {
		t.Error("component 0")
	}
	if v.covers(1, 1) || !v.covers(1, 0) {
		t.Error("component 1")
	}
	if v.covers(7, 0) && len(v) <= 7 {
		// covers(tid>=len, clk) must be false for clk>0; clk==0 is
		// trivially covered by the >= comparison only when in range.
		t.Error("out of range")
	}
	if v.covers(7, 1) {
		t.Error("out of range clk>0")
	}
}

// TestEnsureGrowsZeroFilled.
func TestEnsureGrowsZeroFilled(t *testing.T) {
	v := VC{}
	v.ensure(3)
	if len(v) != 4 {
		t.Fatalf("len = %d", len(v))
	}
	for _, x := range v {
		if x != 0 {
			t.Fatal("not zero filled")
		}
	}
}

// TestReleaseAdvancesOwnComponent: release returns the snapshot and bumps
// the releasing thread's own clock, so consecutive releases are ordered.
func TestReleaseAdvancesOwnComponent(t *testing.T) {
	a := New()
	th := &fakeThread{id: 2}
	_ = th
	// Exercise through the public path: vc/release need a *vm.Thread;
	// covered by the integration tests. Here check the shadow cell
	// paging instead.
	c1 := a.cellAt(100)
	c2 := a.cellAt(100)
	if c1 != c2 {
		t.Fatal("cellAt not stable")
	}
	c3 := a.cellAt(100 + 512)
	if c3 == c1 {
		t.Fatal("different pages aliased")
	}
	if a.ShadowFootprint() == 0 {
		t.Fatal("footprint not accounted")
	}
}

type fakeThread struct{ id int }
