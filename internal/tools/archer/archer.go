// Package archer simulates Archer (Atzeni et al., IPDPS'16): a
// ThreadSanitizer-based, compile-time-instrumented, *thread-centric* data
// race detector with OpenMP sync annotations.
//
// The algorithm is an online vector-clock race detector: every thread owns a
// clock, runtime synchronizations perform release/acquire transfers, and
// each instrumented access is checked against per-address shadow state.
//
// Its structural weakness — the reason the paper builds Taskgrind — is
// thread-centricity: two accesses by the same thread are always ordered by
// program order, so tasks the runtime serializes (single-thread execution,
// undeferred tasks) can never race. That is where Archer's false negatives
// in Table I/II come from, and they emerge from this implementation rather
// than being hard-coded.
package archer

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dbi"
	"repro/internal/guest"
	"repro/internal/ompt"
	"repro/internal/vex"
	"repro/internal/vm"
)

// VC is a vector clock indexed by thread id.
type VC []uint32

func (v VC) clone() VC { return append(VC(nil), v...) }

// ensure grows the clock to cover tid.
func (v *VC) ensure(tid int) {
	for len(*v) <= tid {
		*v = append(*v, 0)
	}
}

// acquire merges o into v (pointwise max).
func (v *VC) acquire(o VC) {
	v.ensure(len(o) - 1)
	for i, c := range o {
		if c > (*v)[i] {
			(*v)[i] = c
		}
	}
}

// covers reports whether epoch (tid, clk) happened-before v.
func (v VC) covers(tid int, clk uint32) bool {
	return tid < len(v) && v[tid] >= clk
}

// maxTrackedThreads bounds the per-cell read slots (like TSan's fixed
// shadow-cell count).
const maxTrackedThreads = 16

// cell is the per-8-byte-granule shadow state. wClk == 0 means no recorded
// write (thread clocks start at 1); a read slot with clk == 0 is empty.
type cell struct {
	wTid  int32
	wClk  uint32
	wPC   uint64
	reads [maxTrackedThreads]readSlot
}

type readSlot struct {
	clk uint32
	pc  uint64
}

// shadowPage is a direct-mapped block of cells (4 KiB of guest memory).
type shadowPage [512]cell

// Report is one deduplicated race (by program-counter pair).
type Report struct {
	PCA, PCB uint64
	Addr     uint64
	Kind     string
}

// Archer is the tool plugin.
type Archer struct {
	c *dbi.Core

	clocks   []*VC
	shadow   map[uint64]*shadowPage
	lastPage uint64
	lastPtr  *shadowPage
	taskAcq  map[uint64]VC
	taskEnd  map[uint64]VC
	deps     map[uint64][]uint64
	childs   map[uint64][]uint64
	forkVC   map[uint64]VC
	lastsVC  map[uint64][]VC
	barVC    map[[2]uint64][]VC
	lockVC   map[uint64]VC
	groupAt  map[uint64][]int
	taskSeq  int
	taskPar  map[uint64]uint64
	seqOf    map[uint64]int

	gslots map[uint64]*gslot

	seen    map[[2]uint64]bool
	Reports []Report
}

// New creates an Archer instance.
func New() *Archer {
	return &Archer{
		shadow:  make(map[uint64]*shadowPage),
		taskAcq: make(map[uint64]VC),
		taskEnd: make(map[uint64]VC),
		deps:    make(map[uint64][]uint64),
		childs:  make(map[uint64][]uint64),
		forkVC:  make(map[uint64]VC),
		lastsVC: make(map[uint64][]VC),
		barVC:   make(map[[2]uint64][]VC),
		lockVC:  make(map[uint64]VC),
		groupAt: make(map[uint64][]int),
		taskPar: make(map[uint64]uint64),
		seqOf:   make(map[uint64]int),
		seen:    make(map[[2]uint64]bool),
	}
}

// Name implements dbi.Tool.
func (a *Archer) Name() string { return "archer" }

// RaceCount returns the number of distinct reports (TSan dedups by stack
// pair; we dedup by PC pair).
func (a *Archer) RaceCount() int { return len(a.Reports) }

// Attach implements dbi.Attacher: free clears the shadow for the block (the
// TSan allocator interceptor behaviour that avoids recycling FPs).
func (a *Archer) Attach(c *dbi.Core) {
	a.c = c
	orig, err := c.M.RedirectHost("free", nil)
	if err == nil && orig != nil {
		_, _ = c.M.RedirectHost("free", func(m *vm.Machine, t *vm.Thread) vm.HostResult {
			addr := t.Regs[guest.R0]
			if blk := c.FindBlock(addr); blk != nil && blk.Addr == addr {
				for g := addr >> 3; g <= (addr+blk.Size-1)>>3; g++ {
					if pg := a.shadow[g>>9]; pg != nil {
						pg[g&511] = cell{}
					}
				}
			}
			return orig(m, t)
		})
	}
	c.M.ExtraFootprint = func() uint64 {
		return a.ShadowFootprint() + c.CacheFootprint()
	}
}

// ShadowFootprint reports shadow memory (TSan-like direct-mapped pages).
func (a *Archer) ShadowFootprint() uint64 {
	return uint64(len(a.shadow)) * 512 * 32 // ~32B live bytes per cell
}

// vc returns the thread's clock, initializing epoch 1.
func (a *Archer) vc(t *vm.Thread) *VC {
	for len(a.clocks) <= t.ID {
		a.clocks = append(a.clocks, nil)
	}
	c := a.clocks[t.ID]
	if c == nil {
		n := VC{}
		n.ensure(t.ID)
		n[t.ID] = 1
		c = &n
		a.clocks[t.ID] = c
	}
	return c
}

// cellAt returns the shadow cell for granule g, with a one-page cache for
// the streaming accesses numeric kernels make.
func (a *Archer) cellAt(g uint64) *cell {
	pageIdx := g >> 9
	if a.lastPtr == nil || pageIdx != a.lastPage {
		pg := a.shadow[pageIdx]
		if pg == nil {
			pg = new(shadowPage)
			a.shadow[pageIdx] = pg
		}
		a.lastPage, a.lastPtr = pageIdx, pg
	}
	return &a.lastPtr[g&511]
}

// release snapshots the thread clock and advances its own component.
func (a *Archer) release(t *vm.Thread) VC {
	c := a.vc(t)
	snap := c.clone()
	(*c)[t.ID]++
	return snap
}

// ThreadStart implements dbi.Tool.
func (a *Archer) ThreadStart(t *vm.Thread) { a.vc(t) }

// ThreadExit implements dbi.Tool.
func (a *Archer) ThreadExit(t *vm.Thread) {}

// Fini implements dbi.Tool (analysis is online; nothing to do).
func (a *Archer) Fini(c *dbi.Core) { a.sortReports() }

func (a *Archer) sortReports() {
	sort.Slice(a.Reports, func(i, j int) bool {
		if a.Reports[i].PCA != a.Reports[j].PCA {
			return a.Reports[i].PCA < a.Reports[j].PCA
		}
		return a.Reports[i].PCB < a.Reports[j].PCB
	})
}

// AccessHooks implements dbi.CompileTimeTool: Archer's checks are compiled
// into the program, so it runs on the direct engine — an order of magnitude
// cheaper than heavyweight DBI (the 10x-vs-100x gap of Table II).
func (a *Archer) AccessHooks(im *guest.Image) (vm.AccessHook, vm.AccessHook, []bool) {
	filter := dbi.SymbolFilter(im, func(sym string) bool {
		return !strings.HasPrefix(sym, "__kmp") && !strings.HasPrefix(sym, "omp_")
	})
	load := func(t *vm.Thread, addr uint64, w uint8, pc uint64) {
		a.check(t, addr, uint64(w), pc, false)
	}
	store := func(t *vm.Thread, addr uint64, w uint8, pc uint64) {
		a.check(t, addr, uint64(w), pc, true)
	}
	return load, store, filter
}

// Instrument implements dbi.Tool (IR-engine fallback; unused when the
// compile-time hooks are installed, kept for the countgrind-style use of
// Archer as a plain plugin).
func (a *Archer) Instrument(c *dbi.Core, sb *vex.SuperBlock) *vex.SuperBlock {
	if sym := c.M.Image.SymbolFor(sb.GuestAddr); sym != nil {
		if strings.HasPrefix(sym.Name, "__kmp") || strings.HasPrefix(sym.Name, "omp_") {
			return sb
		}
	}
	out, _, _ := c.InstrumentAccesses(sb, a)
	return out
}

// FlushAccesses implements dbi.AccessSink: shadow-check a batch of accesses.
func (a *Archer) FlushAccesses(t *vm.Thread, batch []dbi.Access) {
	for i := range batch {
		x := &batch[i]
		a.check(t, x.Addr, uint64(x.Wd), x.PC, x.Store)
	}
}

// tracked reports whether an address is in scope (user data; the runtime
// pool is invisible to compile-time instrumentation).
func tracked(addr uint64) bool {
	return addr >= guest.DataBase &&
		!(addr >= guest.FastPoolBase && addr < guest.FastPoolLimit)
}

// check is the TSan-style shadow update for one access.
func (a *Archer) check(t *vm.Thread, addr, w, pc uint64, write bool) {
	if !tracked(addr) || t.ID >= maxTrackedThreads {
		return
	}
	myVC := *a.vc(t)
	myClk := myVC[t.ID]
	for g := addr >> 3; g <= (addr+w-1)>>3; g++ {
		cl := a.cellAt(g)
		// Race iff a prior access by another thread is not ordered
		// before us. Same-thread accesses are always ordered — the
		// thread-centric property.
		if !write {
			if cl.wClk != 0 && int(cl.wTid) != t.ID && !myVC.covers(int(cl.wTid), cl.wClk) {
				a.report(cl.wPC, pc, g<<3, "w/r")
			}
			cl.reads[t.ID] = readSlot{clk: myClk, pc: pc}
			continue
		}
		if cl.wClk != 0 && int(cl.wTid) != t.ID && !myVC.covers(int(cl.wTid), cl.wClk) {
			a.report(cl.wPC, pc, g<<3, "w/w")
		}
		for rt := range cl.reads {
			rs := &cl.reads[rt]
			if rs.clk != 0 && rt != t.ID && !myVC.covers(rt, rs.clk) {
				a.report(rs.pc, pc, g<<3, "r/w")
			}
		}
		cl.wTid, cl.wClk, cl.wPC = int32(t.ID), myClk, pc
		// A write supersedes prior reads.
		cl.reads = [maxTrackedThreads]readSlot{}
	}
}

func (a *Archer) report(pcA, pcB, addr uint64, kind string) {
	if pcA > pcB {
		pcA, pcB = pcB, pcA
	}
	key := [2]uint64{pcA, pcB}
	if a.seen[key] {
		return
	}
	a.seen[key] = true
	a.Reports = append(a.Reports, Report{PCA: pcA, PCB: pcB, Addr: addr, Kind: kind})
}

// ClientRequest implements dbi.Tool: OpenMP sync becomes release/acquire.
func (a *Archer) ClientRequest(t *vm.Thread, code int32, args [6]uint64) uint64 {
	switch code {
	case ompt.CRParallelBegin:
		a.forkVC[args[0]] = a.release(t)
	case ompt.CRImplicitBegin:
		a.vc(t).acquire(a.forkVC[args[0]])
	case ompt.CRImplicitEnd:
		a.lastsVC[args[0]] = append(a.lastsVC[args[0]], a.release(t))
	case ompt.CRParallelEnd:
		for _, v := range a.lastsVC[args[0]] {
			a.vc(t).acquire(v)
		}
	case ompt.CRTaskCreate:
		a.taskSeq++
		a.taskAcq[args[0]] = a.release(t)
		a.taskPar[args[0]] = args[1]
		a.seqOf[args[0]] = a.taskSeq
		a.childs[args[1]] = append(a.childs[args[1]], args[0])
	case ompt.CRTaskDepAddr:
		// Archer's TSan annotations hash dependence addresses *globally*
		// (no sibling scoping), so dependences between non-sibling tasks
		// wrongly synchronize them — its FN on DRB173.
		a.globalDep(args[0], args[1], args[2])
	case ompt.CRTaskBegin:
		a.vc(t).acquire(a.taskAcq[args[0]])
		for _, p := range a.deps[args[0]] {
			a.vc(t).acquire(a.taskEnd[p])
		}
	case ompt.CRTaskEnd:
		a.taskEnd[args[0]] = a.release(t)
	case ompt.CRTaskWaitEnd, ompt.CRTaskWaitDepsEnd:
		// Plain taskwait acquires every child. Archer's runtime
		// annotation treats the OpenMP 5.0 dependent taskwait the same
		// way (over-synchronization) — its FN on DRB165.
		for _, c := range a.childs[args[0]] {
			a.vc(t).acquire(a.taskEnd[c])
		}
	case ompt.CRTaskGroupBegin:
		a.groupAt[args[0]] = append(a.groupAt[args[0]], a.taskSeq)
	case ompt.CRTaskGroupEnd:
		starts := a.groupAt[args[0]]
		if len(starts) == 0 {
			break
		}
		start := starts[len(starts)-1]
		a.groupAt[args[0]] = starts[:len(starts)-1]
		for id, seq := range a.seqOf {
			if seq > start && a.descends(id, args[0]) {
				a.vc(t).acquire(a.taskEnd[id])
			}
		}
	case ompt.CRBarrierBegin:
		k := [2]uint64{args[0], args[1]}
		a.barVC[k] = append(a.barVC[k], a.release(t))
	case ompt.CRBarrierEnd:
		k := [2]uint64{args[0], args[1] - 1}
		for _, v := range a.barVC[k] {
			a.vc(t).acquire(v)
		}
	case ompt.CRCriticalAcquire, ompt.CRMutexAcquire:
		a.vc(t).acquire(a.lockVC[args[0]])
	case ompt.CRCriticalRelease, ompt.CRMutexRelease:
		a.lockVC[args[0]] = a.release(t)
	case ompt.CRCondSignal, ompt.CRCondBroadcast:
		a.lockVC[^args[0]] = a.release(t)
	case ompt.CRCondWait:
		a.vc(t).acquire(a.lockVC[^args[0]])
	case ompt.CRRelease:
		a.lockVC[^args[0]] = a.release(t)
	case ompt.CRAcquire:
		a.vc(t).acquire(a.lockVC[^args[0]])
	}
	return 1
}

// globalDep records dependence predecessors through one global per-address
// slot (last writers + readers since).
func (a *Archer) globalDep(taskID, addr, kind uint64) {
	if a.gslots == nil {
		a.gslots = make(map[uint64]*gslot)
	}
	s := a.gslots[addr]
	if s == nil {
		s = &gslot{}
		a.gslots[addr] = s
	}
	add := func(ids []uint64) {
		for _, id := range ids {
			if id != taskID {
				a.deps[taskID] = append(a.deps[taskID], id)
			}
		}
	}
	if kind == ompt.DepIn {
		add(s.writers)
		s.readers = append(s.readers, taskID)
		return
	}
	add(s.writers)
	add(s.readers)
	s.writers = []uint64{taskID}
	s.readers = nil
}

type gslot struct {
	writers []uint64
	readers []uint64
}

func (a *Archer) descends(id, ancestor uint64) bool {
	for cur := id; cur != 0; cur = a.taskPar[cur] {
		if a.taskPar[cur] == ancestor {
			return true
		}
	}
	return false
}

// String renders the reports TSan-style.
func (a *Archer) String() string {
	var b strings.Builder
	for i, r := range a.Reports {
		fmt.Fprintf(&b, "==%d== ThreadSanitizer: data race (%s) %s <-> %s at 0x%x\n",
			i+1, r.Kind, a.c.M.Image.Locate(r.PCA), a.c.M.Image.Locate(r.PCB), r.Addr)
	}
	fmt.Fprintf(&b, "== %d race report(s)\n", len(a.Reports))
	return b.String()
}
