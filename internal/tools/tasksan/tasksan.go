// Package tasksan simulates TaskSanitizer (Matar & Unat, Euro-Par'18): an
// online, compile-time-instrumented, task-centric determinacy race detector.
//
// Like Taskgrind it reasons over segments rather than threads, so it shares
// the segment-graph engine (internal/core) — but with the structural
// differences the paper calls out, expressed as capability options:
//
//   - undeferred tasks are treated as ordinary deferred tasks
//     (false positive on DRB122-taskundeferred);
//   - taskgroup end is not understood as a synchronization
//     (false positive on DRB107-taskgroup);
//   - dependences are matched in one global namespace instead of per
//     sibling set, so dependences between non-sibling tasks wrongly order
//     them (false negatives on DRB173/175);
//   - compile-time instrumentation never sees runtime-internal memory
//     (no §IV-B fast-pool false positives, but also no coverage of
//     non-instrumented code);
//   - no TLS (DTV) suppression — thread-local storage reuse across tasks
//     on the same thread is reported (false positive on TMB 1006).
//
// Constructs newer than its Clang 8 front end are reported as "ncs" by the
// benchmark harness (metadata), matching Table I.
package tasksan

import "repro/internal/core"

// New returns a TaskSanitizer simulator (a configured segment-graph tool).
func New() *core.Taskgrind {
	opt := core.Options{
		// Compile-time instrumentation scope: user code only.
		IgnoreList:       []string{"__kmp", "omp_"},
		IgnorePoolRegion: true,
		// Allocator interceptors neutralize heap recycling like TSan.
		NoFree: true,
		// Task stacks are tracked, TLS is not.
		StackSuppression: true,
		TLSSuppression:   false,
		// Structural differences vs Taskgrind.
		NoUndeferredOrdering:       true,
		NoTaskgroupOrdering:        true,
		GlobalDepNamespace:         true,
		IgnoreDeferrableAnnotation: true,
		MutexOrders:                true,
		CompileTime:                true,
		// Only the task's immediate frame is tracked: deep callee
		// locals escape the suppression (TMB 1003/1005).
		StackSuppressWindow: 256,
		MaxReports:          1024,
	}
	tg := core.New(opt)
	return tg
}
