// Package toolreg is the tool factory shared by the benchmark harnesses and
// command-line drivers: it instantiates a tool plugin by name together with
// a race-report counter.
package toolreg

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dbi"
	"repro/internal/tools/archer"
	"repro/internal/tools/memcheck"
	"repro/internal/tools/romp"
	"repro/internal/tools/tasksan"
)

// Names lists the available tools.
func Names() []string {
	return []string{"none", "taskgrind", "taskgrind-naive", "taskgrind-par", "archer", "tasksan", "romp", "memcheck"}
}

// Make instantiates a tool. "none" returns a nil tool (uninstrumented
// reference run). "taskgrind-naive" disables every §IV suppression (the
// ~400k-reports configuration); "taskgrind-par" runs the analysis pass with
// a worker pool (the paper's future-work item).
func Make(name string) (dbi.Tool, func() int, error) {
	switch name {
	case "none", "":
		return nil, func() int { return 0 }, nil
	case "taskgrind":
		tg := core.New(core.DefaultOptions())
		return tg, func() int { return tg.RaceCount }, nil
	case "taskgrind-naive":
		tg := core.New(core.NaiveOptions())
		return tg, func() int { return tg.RaceCount }, nil
	case "taskgrind-par":
		opt := core.DefaultOptions()
		opt.AnalysisWorkers = 4
		tg := core.New(opt)
		return tg, func() int { return tg.RaceCount }, nil
	case "archer":
		a := archer.New()
		return a, a.RaceCount, nil
	case "tasksan":
		ts := tasksan.New()
		return ts, func() int { return ts.RaceCount }, nil
	case "romp":
		r := romp.New()
		return r, func() int { return r.RaceCount }, nil
	case "memcheck":
		mc := memcheck.New()
		return mc, func() int { return len(mc.Findings) }, nil
	}
	return nil, nil, fmt.Errorf("toolreg: unknown tool %q (have %v)", name, Names())
}
