// Package toolreg is the tool factory shared by the benchmark harnesses and
// command-line drivers: it instantiates a tool plugin by name together with
// a race-report counter.
package toolreg

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dbi"
	"repro/internal/tools/archer"
	"repro/internal/tools/lockgrind"
	"repro/internal/tools/memcheck"
	"repro/internal/tools/romp"
	"repro/internal/tools/tasksan"
)

// Names lists the available tools.
func Names() []string {
	return []string{"none", "taskgrind", "taskgrind-naive", "taskgrind-par", "archer", "tasksan", "romp", "memcheck", "lockgrind"}
}

// Make instantiates a tool. "none" returns a nil tool (uninstrumented
// reference run). "taskgrind-naive" disables every §IV suppression (the
// ~400k-reports configuration); "taskgrind-par" runs the analysis pass with
// a worker pool (the paper's future-work item).
func Make(name string) (dbi.Tool, func() int, error) {
	switch name {
	case "none", "":
		return nil, func() int { return 0 }, nil
	case "taskgrind":
		tg := core.New(core.DefaultOptions())
		tg.Variant = name
		return tg, func() int { return tg.RaceCount }, nil
	case "taskgrind-naive":
		tg := core.New(core.NaiveOptions())
		tg.Variant = name
		return tg, func() int { return tg.RaceCount }, nil
	case "taskgrind-par":
		opt := core.DefaultOptions()
		opt.AnalysisWorkers = 4
		tg := core.New(opt)
		tg.Variant = name
		return tg, func() int { return tg.RaceCount }, nil
	case "archer":
		a := archer.New()
		return a, a.RaceCount, nil
	case "tasksan":
		ts := tasksan.New()
		ts.Variant = name
		return ts, func() int { return ts.RaceCount }, nil
	case "romp":
		r := romp.New()
		r.Variant = name
		return r, func() int { return r.RaceCount }, nil
	case "memcheck":
		mc := memcheck.New()
		return mc, func() int { return len(mc.Findings) }, nil
	case "lockgrind":
		lg := lockgrind.New()
		return lg, lg.Count, nil
	}
	return nil, nil, fmt.Errorf("toolreg: unknown tool %q (have %v)", name, Names())
}

// Render returns the tool's user-facing report text — the exact bytes the
// CLI prints. It is the single rendering switch shared by cmd/taskgrind,
// the golden snapshots and the verdict matrix, so none of them can drift.
// ok is false for tools without a renderer (nil, trace recorders).
func Render(tool dbi.Tool) (text string, ok bool) {
	switch tt := tool.(type) {
	case *core.Taskgrind:
		if tt.Opt.IgnoreMutexinoutsetDeps { // the ROMP configuration
			return romp.Format(&tt.Reports), true
		}
		return tt.Reports.String(), true
	case *archer.Archer:
		return tt.String(), true
	case *memcheck.Memcheck:
		return tt.String(), true
	case *lockgrind.Lockgrind:
		return tt.String(), true
	}
	return "", false
}
