package dbi_test

import (
	"testing"

	"repro/internal/dbi"
	"repro/internal/dbi/hostlib"
	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/vex"
	"repro/internal/vm"
)

// buildFib builds a recursive fib(n) program that halts with the result.
func buildFib(t testing.TB, n int32) *guest.Image {
	t.Helper()
	b := gbuild.New()
	f := b.Func("main", "fib.c")
	f.Line(1)
	f.Ldi(guest.R0, n)
	f.Call("fib")
	f.Hlt(guest.R0)

	g := b.Func("fib", "fib.c")
	g.Line(3)
	g.Enter(16)
	base := g.NewLabel()
	g.Ldi(guest.R1, 2)
	g.Blt(guest.R0, guest.R1, base)
	g.StLocal(8, 8, guest.R0) // save n
	g.Addi(guest.R0, guest.R0, -1)
	g.Call("fib")
	g.StLocal(8, 16, guest.R0) // save fib(n-1)
	g.LdLocal(8, guest.R0, 8)
	g.Addi(guest.R0, guest.R0, -2)
	g.Call("fib")
	g.LdLocal(8, guest.R1, 16)
	g.Add(guest.R0, guest.R0, guest.R1)
	g.Leave()
	g.Bind(base)
	g.Leave()

	im, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func newMachine(t testing.TB, im *guest.Image, tool dbi.Tool, seed uint64) (*vm.Machine, *dbi.Core, *hostlib.Lib) {
	t.Helper()
	lib := hostlib.New()
	reg := vm.NewHostRegistry()
	lib.Install(reg)
	m, err := vm.New(im, reg, vm.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	core := dbi.New(m, tool)
	core.Validate = true
	lib.Bind(core)
	return m, core, lib
}

func TestFibDirectEngine(t *testing.T) {
	im := buildFib(t, 12)
	m, core, _ := newMachine(t, im, nil, 1)
	if err := core.Run(); err != nil {
		t.Fatal(err)
	}
	if m.ExitCode() != 144 {
		t.Fatalf("fib(12) = %d, want 144", m.ExitCode())
	}
	if m.InstrsExecuted == 0 {
		t.Fatal("no instructions counted")
	}
}

// countTool counts memory accesses via injected Dirty helpers — the minimal
// real Valgrind-style tool, exercising the whole instrumentation pipeline.
type countTool struct {
	dbi.NopTool
	loads, stores uint64
}

func (ct *countTool) Name() string { return "count" }

func (ct *countTool) Instrument(c *dbi.Core, sb *vex.SuperBlock) *vex.SuperBlock {
	out := &vex.SuperBlock{GuestAddr: sb.GuestAddr, NTemps: sb.NTemps, Next: sb.Next, NextJK: sb.NextJK, Aux: sb.Aux}
	for _, s := range sb.Stmts {
		switch s.Kind {
		case vex.SWrTmpLoad:
			out.Dirty("count_load", func(_ any, _ []uint64) uint64 {
				ct.loads++
				return 0
			}, s.E1)
		case vex.SStore:
			out.Dirty("count_store", func(_ any, _ []uint64) uint64 {
				ct.stores++
				return 0
			}, s.E1)
		}
		out.Stmts = append(out.Stmts, s)
	}
	return out
}

func TestFibIREngineMatchesDirectAndInstruments(t *testing.T) {
	im := buildFib(t, 12)
	tool := &countTool{}
	m, core, _ := newMachine(t, im, tool, 1)
	if err := core.Run(); err != nil {
		t.Fatal(err)
	}
	if m.ExitCode() != 144 {
		t.Fatalf("fib(12) under IR = %d, want 144", m.ExitCode())
	}
	if tool.loads == 0 || tool.stores == 0 {
		t.Fatalf("instrumentation saw loads=%d stores=%d", tool.loads, tool.stores)
	}
	// Every frame does a handful of stack stores; fib(12) makes 465 calls.
	if tool.stores < 465 {
		t.Errorf("stores = %d, implausibly low", tool.stores)
	}
	if core.Translations == 0 {
		t.Fatal("nothing translated")
	}
	// The cache must keep translations far below executed blocks.
	if core.Translations >= m.BlocksExecuted {
		t.Errorf("cache ineffective: %d translations for %d blocks", core.Translations, m.BlocksExecuted)
	}
}

func TestTranslateMatchesDirectSemantics(t *testing.T) {
	// Run a program exercising every ALU/branch/memory opcode under both
	// engines and compare exit codes.
	b := gbuild.New()
	arr := b.Global("arr", 64)
	f := b.Func("main", "ops.c")
	_ = arr
	f.LdConst64(guest.R0, 0x1_0000_0003)
	f.Ldi(guest.R1, 7)
	f.Add(guest.R2, guest.R0, guest.R1)
	f.Sub(guest.R2, guest.R2, guest.R1)
	f.Mul(guest.R3, guest.R2, guest.R1)
	f.ALU(guest.OpDiv, guest.R3, guest.R3, guest.R1)
	f.ALU(guest.OpRem, guest.R4, guest.R3, guest.R1)
	f.ALU(guest.OpXor, guest.R5, guest.R3, guest.R1)
	f.ALU(guest.OpShl, guest.R5, guest.R5, guest.R1)
	f.ALU(guest.OpShr, guest.R5, guest.R5, guest.R1)
	f.LoadSym(guest.R6, "arr")
	f.St(8, guest.R6, 0, guest.R5)
	f.St(4, guest.R6, 8, guest.R4)
	f.St(2, guest.R6, 12, guest.R4)
	f.St(1, guest.R6, 14, guest.R4)
	f.Ld(8, guest.R7, guest.R6, 0)
	f.Ld(4, guest.R8, guest.R6, 8)
	f.Add(guest.R7, guest.R7, guest.R8)
	// float: r9 = (3.5 + 1.5) * 2 = 10.0 -> int 10
	f.LdFloat(guest.R9, 3.5)
	f.LdFloat(guest.R10, 1.5)
	f.Fadd(guest.R9, guest.R9, guest.R10)
	f.LdFloat(guest.R10, 2.0)
	f.Fmul(guest.R9, guest.R9, guest.R10)
	f.Ftoi(guest.R9, guest.R9)
	f.Add(guest.R0, guest.R7, guest.R9)
	f.Hlt(guest.R0)
	im, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}

	run := func(tool dbi.Tool) uint64 {
		m, core, _ := newMachine(t, im, tool, 9)
		if err := core.Run(); err != nil {
			t.Fatal(err)
		}
		return m.ExitCode()
	}
	direct := run(nil)
	ir := run(&countTool{})
	if direct != ir {
		t.Fatalf("engines disagree: direct=%d ir=%d", direct, ir)
	}
}

func TestMallocRecordsAllocationStacks(t *testing.T) {
	b := gbuild.New()
	f := b.Func("main", "m.c")
	f.Line(3)
	f.Ldi(guest.R0, 8)
	f.Hcall("malloc")
	f.Mov(guest.R4, guest.R0) // keep pointer
	f.Ldi(guest.R1, 42)
	f.St(8, guest.R0, 0, guest.R1)
	f.Ld(8, guest.R0, guest.R0, 0)
	f.Hlt(guest.R0)
	im, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	m, core, _ := newMachine(t, im, &countTool{}, 1)
	if err := core.Run(); err != nil {
		t.Fatal(err)
	}
	if m.ExitCode() != 42 {
		t.Fatalf("exit = %d", m.ExitCode())
	}
	if core.AllocCount() != 1 {
		t.Fatalf("allocations = %d", core.AllocCount())
	}
	blk := core.Allocations()[0]
	if blk.Size != 16 { // rounded
		t.Errorf("block size = %d", blk.Size)
	}
	if found := core.FindBlock(blk.Addr + 7); found != blk {
		t.Error("FindBlock inside span failed")
	}
	if core.FindBlock(blk.Addr+16) == blk {
		t.Error("FindBlock past span matched")
	}
	if len(blk.Stack) == 0 {
		t.Error("no allocation stack recorded")
	}
	if file, line := im.LineFor(blk.Stack[0]); file != "m.c" || line != 3 {
		t.Errorf("allocation site = %s:%d", file, line)
	}
}

func TestRedirectHostWrapsFree(t *testing.T) {
	b := gbuild.New()
	f := b.Func("main", "r.c")
	f.Ldi(guest.R0, 8)
	f.Hcall("malloc")
	f.Mov(guest.R4, guest.R0)
	f.Mov(guest.R0, guest.R4)
	f.Hcall("free")
	f.Ldi(guest.R0, 8)
	f.Hcall("malloc")
	f.Seq(guest.R0, guest.R0, guest.R4) // 1 if recycled
	f.Hlt(guest.R0)
	im, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}

	// Default: the allocator recycles, so the second malloc returns the
	// same address.
	m, core, _ := newMachine(t, im, nil, 1)
	if err := core.Run(); err != nil {
		t.Fatal(err)
	}
	if m.ExitCode() != 1 {
		t.Fatal("expected recycling without redirection")
	}

	// With free redirected to a no-op (Taskgrind's trick) the addresses
	// must differ.
	m2, core2, _ := newMachine(t, im, nil, 1)
	_, err = m2.RedirectHost("free", func(mm *vm.Machine, tt *vm.Thread) vm.HostResult {
		return vm.HostResult{}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := core2.Run(); err != nil {
		t.Fatal(err)
	}
	if m2.ExitCode() != 0 {
		t.Fatal("redirection did not stop recycling")
	}

	// Redirecting something the image does not import fails.
	if _, err := m2.RedirectHost("nonesuch", nil); err == nil {
		t.Fatal("want redirect error")
	}
}
