package dbi_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dbi"
	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/vex"
)

// TestTranslateJumpKinds checks the block-ending classification.
func TestTranslateJumpKinds(t *testing.T) {
	b := gbuild.New()
	f := b.Func("main", "jk.c")
	f.Hcall("malloc") // block 0: ends JKHostCall
	f.Creq(0x42)      // block 1: ends JKClientReq
	f.Call("leaf")    // block 2: JKCall
	f.Hlt(guest.R0)   // block 3: JKExitThread
	leaf := b.Func("leaf", "jk.c")
	leaf.Ret() // JKRet
	im, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		addr uint64
		jk   vex.JumpKind
		aux  int32
	}{
		{guest.TextBase, vex.JKHostCall, 0},
		{guest.TextBase + 8, vex.JKClientReq, 0x42},
		{guest.TextBase + 16, vex.JKCall, 0},
		{guest.TextBase + 24, vex.JKExitThread, 0},
		{guest.TextBase + 32, vex.JKRet, 0},
	}
	for _, w := range want {
		sb, err := dbi.Translate(im, w.addr)
		if err != nil {
			t.Fatal(err)
		}
		if sb.NextJK != w.jk {
			t.Errorf("block 0x%x: jk = %v, want %v", w.addr, sb.NextJK, w.jk)
		}
		if w.jk == vex.JKClientReq && sb.Aux != w.aux {
			t.Errorf("creq aux = %#x", sb.Aux)
		}
		if err := sb.Validate(); err != nil {
			t.Errorf("block 0x%x invalid: %v", w.addr, err)
		}
	}
}

// TestTranslateBlockCapChains: very long straight-line code splits into
// chained blocks.
func TestTranslateBlockCapChains(t *testing.T) {
	b := gbuild.New()
	f := b.Func("main", "long.c")
	for i := 0; i < 200; i++ {
		f.Addi(guest.R1, guest.R1, 1)
	}
	f.Hlt(guest.R1)
	im, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := dbi.Translate(im, guest.TextBase)
	if err != nil {
		t.Fatal(err)
	}
	if sb.NextJK != vex.JKBoring {
		t.Fatalf("capped block jk = %v", sb.NextJK)
	}
	if sb.Next.Kind != vex.KindConst || sb.Next.Const != guest.TextBase+dbi.MaxBlockInstrs*guest.InstrBytes {
		t.Fatalf("chain target = %v", sb.Next)
	}
}

// randLinearProgram emits a random straight-line program over computational
// opcodes plus loads/stores into a scratch global, ending in hlt r0.
func randLinearProgram(rng *rand.Rand, n int) (*guest.Image, error) {
	b := gbuild.New()
	b.Global("scratch", 256)
	f := b.Func("main", "rand.c")
	f.LoadSym(guest.R7, "scratch")
	for i := 0; i < n; i++ {
		rd := uint8(rng.Intn(6))
		rs1 := uint8(rng.Intn(8))
		rs2 := uint8(rng.Intn(8))
		switch rng.Intn(12) {
		case 0:
			f.Ldi(rd, int32(rng.Int31()))
		case 1:
			f.Mov(rd, rs1)
		case 2:
			f.Add(rd, rs1, rs2)
		case 3:
			f.Sub(rd, rs1, rs2)
		case 4:
			f.Mul(rd, rs1, rs2)
		case 5:
			f.ALU(guest.OpXor, rd, rs1, rs2)
		case 6:
			f.ALU(guest.OpShl, rd, rs1, rs2)
		case 7:
			f.Addi(rd, rs1, int32(rng.Int31()))
		case 8:
			f.Slt(rd, rs1, rs2)
		case 9:
			width := []uint8{1, 2, 4, 8}[rng.Intn(4)]
			f.St(width, guest.R7, int32(rng.Intn(31)*8), rs2)
		case 10:
			width := []uint8{1, 2, 4, 8}[rng.Intn(4)]
			f.Ld(width, rd, guest.R7, int32(rng.Intn(31)*8))
		case 11:
			f.ALU(guest.OpSar, rd, rs1, rs2)
		}
	}
	f.Hlt(guest.R0)
	return b.Link()
}

// TestQuickIREngineMatchesDirect is the central translator property: for
// random straight-line programs, executing via translated IR produces the
// same exit state as the direct interpreter.
func TestQuickIREngineMatchesDirect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		im, err := randLinearProgram(rng, 40)
		if err != nil {
			return false
		}
		run := func(tool dbi.Tool) uint64 {
			m, core, _ := newMachine(t, im, tool, 1)
			if err := core.Run(); err != nil {
				t.Fatal(err)
			}
			return m.ExitCode()
		}
		return run(nil) == run(&countTool{})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSymbolFilter checks the per-instruction filter construction.
func TestSymbolFilter(t *testing.T) {
	b := gbuild.New()
	f := b.Func("user", "f.c")
	f.Nop()
	f.Ret()
	g := b.Func("__kmp_helper", "f.c")
	g.Nop()
	g.Ret()
	h := b.Func("main", "f.c")
	h.Hlt(guest.R0)
	im, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	filter := dbi.SymbolFilter(im, func(sym string) bool { return sym == "user" })
	want := []bool{true, true, false, false, false}
	for i, w := range want {
		if filter[i] != w {
			t.Errorf("filter[%d] = %v, want %v", i, filter[i], w)
		}
	}
}

// TestCacheFootprintGrows: translation-cache accounting is monotone.
func TestCacheFootprintGrows(t *testing.T) {
	im := buildFib(t, 10)
	_, core, _ := newMachine(t, im, &countTool{}, 1)
	if core.CacheFootprint() != 0 {
		t.Fatal("cache footprint nonzero before run")
	}
	if err := core.Run(); err != nil {
		t.Fatal(err)
	}
	if core.CacheFootprint() == 0 {
		t.Fatal("cache footprint zero after run")
	}
}

// BenchmarkIREngine measures the heavyweight engine on fib with and without
// the VEX optimization pass.
func BenchmarkIREngine(b *testing.B) {
	for _, cfg := range []struct {
		name string
		opt  bool
	}{{"optimized", true}, {"unoptimized", false}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				im := buildFib(b, 14)
				m, core, _ := newMachine(b, im, &countTool{}, 1)
				core.NoOptimize = !cfg.opt
				if err := core.Run(); err != nil {
					b.Fatal(err)
				}
				if m.ExitCode() != 377 {
					b.Fatal("wrong result")
				}
			}
		})
	}
}

// BenchmarkDirectEngine is the baseline for the same workload.
func BenchmarkDirectEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		im := buildFib(b, 14)
		_, core, _ := newMachine(b, im, nil, 1)
		if err := core.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestTranslateEveryALUAndBranchOp pins the opcode -> IR mapping for the
// full instruction set (the random program test only samples it).
func TestTranslateEveryALUAndBranchOp(t *testing.T) {
	b := gbuild.New()
	f := b.Func("main", "ops.c")
	alu := []guest.Opcode{
		guest.OpAdd, guest.OpSub, guest.OpMul, guest.OpDiv, guest.OpRem,
		guest.OpAnd, guest.OpOr, guest.OpXor, guest.OpShl, guest.OpShr,
		guest.OpSar, guest.OpSeq, guest.OpSne, guest.OpSlt, guest.OpSge,
		guest.OpSltu, guest.OpSgeu, guest.OpFadd, guest.OpFsub,
		guest.OpFmul, guest.OpFdiv, guest.OpFlt, guest.OpFle, guest.OpFeq,
	}
	for _, op := range alu {
		f.ALU(op, guest.R1, guest.R2, guest.R3)
	}
	f.Itof(guest.R1, guest.R2)
	f.Ftoi(guest.R1, guest.R2)
	f.Andi(guest.R1, guest.R2, 3)
	f.Ori(guest.R1, guest.R2, 3)
	l := f.NewLabel()
	f.Bind(l)
	for _, br := range []guest.Opcode{
		guest.OpBeq, guest.OpBne, guest.OpBlt, guest.OpBge, guest.OpBltu, guest.OpBgeu,
	} {
		f.Br(br, guest.R1, guest.R2, l)
	}
	f.Hlt(guest.R0)
	im, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	// Translate every block in the function; each must validate.
	addr := guest.TextBase
	for addr < im.TextEnd() {
		sb, err := dbi.Translate(im, addr)
		if err != nil {
			t.Fatalf("translate 0x%x: %v", addr, err)
		}
		if err := sb.Validate(); err != nil {
			t.Fatalf("block 0x%x: %v", addr, err)
		}
		// Advance past this block (count IMarks).
		n := 0
		for _, st := range sb.Stmts {
			if st.Kind == vex.SIMark {
				n++
			}
		}
		if n == 0 {
			n = 1
		}
		addr += uint64(n) * guest.InstrBytes
	}
}
