// Package dbi is the dynamic binary instrumentation framework — the analog
// of the Valgrind core in the paper. It translates guest basic blocks to
// flat VEX-like IR just in time, hands every translated block to the loaded
// tool plugin for instrumentation, caches translations, and executes the
// instrumented IR. It also provides the facilities Valgrind tools rely on:
// client requests, function replacement (host-call redirection), shadow call
// stacks, and a heap-allocation registry with captured allocation stacks.
package dbi

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/guest"
	"repro/internal/obs"
	"repro/internal/tstore"
	"repro/internal/vex"
	"repro/internal/vm"
)

// Tool is the plugin interface, mirroring a Valgrind tool: it gets every
// translated superblock once (at translation time) and may rewrite it, and
// receives the framework's runtime callbacks.
type Tool interface {
	// Name identifies the tool in reports.
	Name() string
	// Instrument rewrites a freshly translated superblock. It runs once
	// per guest block; the result is cached.
	Instrument(c *Core, sb *vex.SuperBlock) *vex.SuperBlock
	// ClientRequest handles an OpCreq from guest code (or from host-side
	// runtime bridges). The return value is delivered in R0.
	ClientRequest(t *vm.Thread, code int32, args [6]uint64) uint64
	// ThreadStart/ThreadExit track guest thread lifetime.
	ThreadStart(t *vm.Thread)
	ThreadExit(t *vm.Thread)
	// Fini runs after the guest program terminates (analysis passes).
	Fini(c *Core)
}

// NopTool is an embeddable do-nothing Tool.
type NopTool struct{}

// Name implements Tool.
func (NopTool) Name() string { return "none" }

// Instrument implements Tool (identity).
func (NopTool) Instrument(_ *Core, sb *vex.SuperBlock) *vex.SuperBlock { return sb }

// ClientRequest implements Tool.
func (NopTool) ClientRequest(*vm.Thread, int32, [6]uint64) uint64 { return 0 }

// ThreadStart implements Tool.
func (NopTool) ThreadStart(*vm.Thread) {}

// ThreadExit implements Tool.
func (NopTool) ThreadExit(*vm.Thread) {}

// Fini implements Tool.
func (NopTool) Fini(*Core) {}

// AllocBlock describes one live (or, in no-free mode, ever-made) heap
// allocation, with the stack captured at allocation time — the information
// Taskgrind's error reports print ("allocated in block ... from task.c:3").
type AllocBlock struct {
	Addr  uint64
	Size  uint64
	Seq   uint64 // allocation sequence number
	Stack []uint64
	Freed bool
}

// Core couples a vm.Machine with a Tool: the running DBI session.
type Core struct {
	M    *vm.Machine
	tool Tool

	cache map[uint64]*vex.SuperBlock
	// ccache is the compiled-translation cache (micro-op code plus
	// chaining metadata), used by the compiled engine.
	ccache map[uint64]*centry
	// cdisp is the fast dispatch table: a dense array indexed by
	// guest-PC/instruction-size mirroring ccache, the analog of Valgrind's
	// direct-mapped VG_(tt_fast). The compiled engine probes it before the
	// map; guest text is small and dense, so virtually every warm dispatch
	// is an indexed load instead of a map lookup. Entries are verified
	// against the block's GuestAddr (unaligned PCs alias slots).
	cdisp []*centry
	// cacheGen is the cache generation; ClearCache bumps it, invalidating
	// every chained successor pointer and dispatch prediction at once.
	cacheGen uint64
	// engineFixed is set when a CompileTimeTool installed the direct
	// engine with access hooks; SelectEngine then refuses to override.
	engineFixed bool

	// Shared, when set, is the content-addressed translation store tier
	// consulted between the local caches and fresh translation: local miss
	// -> adopt a published unit (copy-on-attach, dirty helpers re-bound to
	// this core) -> translate fresh and publish. The store must be keyed
	// for exactly this core's (image, tool, engine, extend, delivery)
	// universe — the harness derives the key; see internal/tstore.
	Shared *tstore.Store
	// pretranslating marks a throwaway translation-pipeline core: its
	// published units carry the Pretranslated flag.
	pretranslating bool

	// ExtendBudget, when positive, enables superblock extension: the
	// translator follows unconditional direct jumps and keeps decoding
	// until the block holds ExtendBudget guest instructions (Valgrind's
	// multi-block superblock granularity). Zero keeps single basic
	// blocks. Set before the first translation; both engines execute
	// extended blocks identically.
	ExtendBudget int

	// Translations counts distinct blocks this core translated itself
	// (blocks adopted from the shared store do not count).
	Translations uint64
	// TranslateNanos accumulates wall time spent in the translation
	// pipeline (decode, optimize, instrument) and CompileNanos the time
	// lowering instrumented IR to micro-ops. The two phases are timed
	// independently. Together they are the non-execution share of a run's
	// wall clock; the perf benchmark subtracts them to report pure
	// execution throughput.
	TranslateNanos uint64
	CompileNanos   uint64
	// CacheHits counts dispatches served from a translation cache (the
	// superblock cache under the IR engine, the compiled cache or a chain
	// hit under the compiled engine). CacheMisses counts dispatches no
	// local cache served — each is resolved either from the shared store
	// (SharedHits) or by a fresh translation (Translations), so
	// CacheMisses == SharedHits + Translations.
	CacheHits   uint64
	CacheMisses uint64
	// SharedHits counts blocks adopted from the shared translation store;
	// PretranslatedBlocks is the subset published ahead of execution by
	// the pretranslation pipeline.
	SharedHits          uint64
	PretranslatedBlocks uint64
	// Compiles counts superblocks lowered to micro-ops.
	Compiles uint64
	// ChainHits counts dispatches that bypassed translation-cache lookup
	// entirely through a chained successor pointer; ChainMisses counts
	// dispatches that had to look the block up (via the fast dispatch
	// table or the map: first visits and unchainable edges).
	ChainHits, ChainMisses uint64
	// ExtendSeams counts unconditional jumps fused away by superblock
	// extension.
	ExtendSeams uint64
	// cacheStmts counts IR statements held in the translation cache.
	cacheStmts uint64

	// Delivery selects how InstrumentAccesses-based tools receive the
	// access stream: batched per superblock segment (the default) or one
	// callback per access (the differential reference). Set before the
	// first translation.
	Delivery Delivery
	// batchBuf is the reusable access-batch buffer shared by every
	// flushSite (the scheduler is single-threaded by construction).
	batchBuf []Access
	// DirtyCalls counts tool dirty-call executions (both engines) —
	// the callback-granularity metric batched delivery improves.
	DirtyCalls uint64
	// AccessesDelivered counts guest accesses delivered through
	// InstrumentAccesses flush callbacks.
	AccessesDelivered uint64

	// Obs carries the optional observability hooks; nil when disabled.
	Obs *obs.Hooks
	// ctrCreqs and histBlockStmts are pre-resolved metrics (nil-safe).
	ctrCreqs       *obs.Counter
	histBlockStmts *obs.Histogram

	// allocation registry, sorted by Addr for lookup.
	allocs   []*AllocBlock
	allocSeq uint64

	// PanicHook, when set, is consulted once per compiled-engine block
	// dispatch; returning true raises a host-side panic from inside the
	// dispatcher (fault injection's model of a JIT defect). The IR oracle
	// never consults it, so an engine fallback sidesteps the injected
	// defect.
	PanicHook func() bool

	// Validate makes the engine validate every instrumented block
	// (debug mode).
	Validate bool
	// NoOptimize disables the VEX-style IR cleanup pass that normally
	// runs between translation and tool instrumentation.
	NoOptimize bool
}

// Attacher is implemented by tools that need the core before the run starts
// (to install redirections, register shadow-footprint reporting, ...).
type Attacher interface {
	Attach(c *Core)
}

// Identifier is implemented by tools whose instrumentation depends on
// configuration beyond the tool type: the translation store keys units by
// ToolID instead of Name, so two same-named instances with different
// instrumentation (e.g. taskgrind with and without its ignore-lists) never
// share translations.
type Identifier interface {
	ToolID() string
}

// CompileTimeTool is implemented by tools modelling compile-time (or static
// binary rewriting) instrumentation: instead of the heavyweight IR engine,
// they run on the direct interpreter with compiled-in access hooks — the
// architectural difference behind Archer's 10x vs Taskgrind's 100x
// overhead in the paper.
type CompileTimeTool interface {
	// AccessHooks returns the load/store checks and the per-instruction
	// instrumentation filter for the image.
	AccessHooks(im *guest.Image) (load, store vm.AccessHook, filter []bool)
}

// New wraps a machine with a tool and installs the translating engine and
// hooks. Pass nil for tool to run the direct engine (no instrumentation)
// while keeping Core facilities available. Threads that already exist (the
// main thread) get their ThreadStart callback immediately.
func New(m *vm.Machine, tool Tool) *Core {
	c := &Core{
		M: m, tool: tool,
		cache:  make(map[uint64]*vex.SuperBlock),
		ccache: make(map[uint64]*centry),
	}
	if tool != nil {
		installed := false
		if ct, ok := tool.(CompileTimeTool); ok {
			if load, store, filter := ct.AccessHooks(m.Image); load != nil || store != nil {
				m.Eng = &vm.DirectEngine{LoadHook: load, StoreHook: store, Filter: filter}
				installed = true
				c.engineFixed = true
			}
		}
		if !installed {
			m.Eng = &compiledEngine{c: c}
		}
		m.Hooks.ClientRequest = func(t *vm.Thread, code int32, args [6]uint64) uint64 {
			c.observeCreq(t, code)
			return tool.ClientRequest(t, code, args)
		}
		m.Hooks.ThreadStart = tool.ThreadStart
		m.Hooks.ThreadExit = tool.ThreadExit
		if a, ok := tool.(Attacher); ok {
			a.Attach(c)
		}
		for _, t := range m.Threads() {
			tool.ThreadStart(t)
		}
	}
	return c
}

// Tool returns the loaded tool (nil when uninstrumented).
func (c *Core) Tool() Tool { return c.tool }

// Engine names accepted by SelectEngine.
const (
	// EngineCompiled executes pre-lowered micro-ops with block chaining
	// (the default for instrumenting tools).
	EngineCompiled = "compiled"
	// EngineIR is the reference IR interpreter, kept as the differential-
	// testing oracle for the compiled engine.
	EngineIR = "ir"
)

// SelectEngine switches the execution engine. Call before the run starts.
// Tools that fixed the engine themselves (compile-time instrumentation via
// AccessHooks) cannot be overridden.
func (c *Core) SelectEngine(name string) error {
	if c.engineFixed {
		return fmt.Errorf("dbi: tool %s uses compile-time instrumentation; engine fixed", c.tool.Name())
	}
	switch name {
	case "", EngineCompiled:
		c.M.Eng = &compiledEngine{c: c}
	case EngineIR:
		c.M.Eng = &irEngine{c: c}
	default:
		return fmt.Errorf("dbi: unknown engine %q (have %q, %q)", name, EngineCompiled, EngineIR)
	}
	return nil
}

// EngineFixed reports whether the tool fixed the engine itself
// (compile-time instrumentation on the direct interpreter). Such cores
// never translate, so a shared translation store does not apply.
func (c *Core) EngineFixed() bool { return c.engineFixed }

// ClearCache drops every translation — IR and compiled — and bumps the
// cache generation, which atomically invalidates all chained successor
// pointers and per-thread dispatch predictions. The next dispatch of every
// block retranslates (and re-instruments) it.
func (c *Core) ClearCache() {
	c.cache = make(map[uint64]*vex.SuperBlock)
	c.ccache = make(map[uint64]*centry)
	for i := range c.cdisp {
		c.cdisp[i] = nil
	}
	c.cacheGen++
	c.cacheStmts = 0
	if h := c.Obs; h != nil && h.Tracer != nil {
		h.Tracer.Instant(c.M.BlocksExecuted, -1, "dbi", "cache-clear",
			map[string]any{"gen": c.cacheGen})
	}
}

// CacheGen returns the current cache generation (bumped by ClearCache).
func (c *Core) CacheGen() uint64 { return c.cacheGen }

// SetObs attaches observability hooks to the core (and its machine) and
// pre-resolves the hot-path metrics, so translation and client-request
// sites increment through nil-safe pointers instead of registry lookups.
func (c *Core) SetObs(h *obs.Hooks) {
	c.Obs = h
	c.M.Obs = h
	if h != nil && h.Metrics != nil {
		c.ctrCreqs = h.Metrics.Counter("core_client_requests_total")
		c.histBlockStmts = h.Metrics.Histogram("dbi_block_stmts")
	} else {
		c.ctrCreqs = nil
		c.histBlockStmts = nil
	}
}

// CacheStmts returns the IR statement count held in the translation cache.
func (c *Core) CacheStmts() uint64 { return c.cacheStmts }

// Run executes the program to completion and then runs the tool's Fini.
func (c *Core) Run() error {
	if err := c.M.Run(); err != nil {
		return err
	}
	if c.tool != nil {
		c.tool.Fini(c)
	}
	return nil
}

// ClientRequestFromHost lets host-side runtime bridges (like the built-in
// OMPT tool) issue client requests on behalf of a guest thread, exactly as
// if the thread had executed an OpCreq.
func (c *Core) ClientRequestFromHost(t *vm.Thread, code int32, args [6]uint64) uint64 {
	if c.tool == nil {
		return 0
	}
	c.observeCreq(t, code)
	return c.tool.ClientRequest(t, code, args)
}

// observeCreq counts and traces one client request delivery.
func (c *Core) observeCreq(t *vm.Thread, code int32) {
	c.ctrCreqs.Inc()
	if h := c.Obs; h != nil && h.Tracer != nil {
		h.Tracer.Instant(c.M.BlocksExecuted, t.ID, "core", "creq",
			map[string]any{"code": code})
	}
}

// --- allocation registry ---

// RecordAlloc registers a heap block with its allocation stack.
func (c *Core) RecordAlloc(addr, size uint64, stack []uint64) *AllocBlock {
	c.allocSeq++
	b := &AllocBlock{Addr: addr, Size: size, Seq: c.allocSeq, Stack: stack}
	i := sort.Search(len(c.allocs), func(i int) bool { return c.allocs[i].Addr >= addr })
	c.allocs = append(c.allocs, nil)
	copy(c.allocs[i+1:], c.allocs[i:])
	c.allocs[i] = b
	return b
}

// RecordFree marks the block at addr freed (the registry keeps it so stale
// reports can still resolve the allocation site).
func (c *Core) RecordFree(addr uint64) *AllocBlock {
	if b := c.FindBlock(addr); b != nil && b.Addr == addr && !b.Freed {
		b.Freed = true
		return b
	}
	return nil
}

// FindBlock returns the most recent allocation whose [Addr, Addr+Size) span
// contains addr, or nil.
func (c *Core) FindBlock(addr uint64) *AllocBlock {
	i := sort.Search(len(c.allocs), func(i int) bool { return c.allocs[i].Addr > addr })
	var best *AllocBlock
	for j := i - 1; j >= 0; j-- {
		b := c.allocs[j]
		if addr >= b.Addr && addr < b.Addr+b.Size {
			if best == nil || b.Seq > best.Seq {
				best = b
			}
		}
		// Allocation spans never exceed the heap; stop scanning once
		// far below.
		if best != nil || (j < i-64) {
			break
		}
	}
	return best
}

// Allocations returns the registry (sorted by address).
func (c *Core) Allocations() []*AllocBlock { return c.allocs }

// AllocCount returns the number of registered allocations.
func (c *Core) AllocCount() int { return len(c.allocs) }

// translate produces the instrumented IR for the block at addr, consulting
// the translation cache, then the shared store, then translating fresh. tid
// attributes translation trace events to the thread whose dispatch
// triggered them.
func (c *Core) translate(addr uint64, tid int) (*vex.SuperBlock, error) {
	if sb, ok := c.cache[addr]; ok {
		c.CacheHits++
		return sb, nil
	}
	c.CacheMisses++
	if u := c.sharedGet(addr); u != nil {
		if sb, err := c.adoptSB(u); err == nil {
			return sb, nil
		}
	}
	return c.translateFresh(addr, tid)
}

// translateFresh runs the full translation pipeline — decode, optimize,
// instrument — caches the result and publishes it to the shared store.
func (c *Core) translateFresh(addr uint64, tid int) (*vex.SuperBlock, error) {
	traced := c.Obs != nil && c.Obs.Tracer != nil
	if traced {
		c.Obs.Tracer.Begin(c.M.BlocksExecuted, tid, "dbi", "translate",
			map[string]any{"addr": addr})
	}
	start := time.Now()
	sb, seams, err := TranslateExt(c.M.Image, addr, c.ExtendBudget)
	if err != nil {
		return nil, err
	}
	c.ExtendSeams += uint64(seams)
	if !c.NoOptimize {
		// The VEX optimization pass: tools instrument cleaned-up IR,
		// exactly like Valgrind plugins do.
		sb = vex.Optimize(sb)
	}
	if c.tool != nil {
		sb = c.tool.Instrument(c, sb)
		if c.Validate {
			if err := sb.Validate(); err != nil {
				return nil, err
			}
		}
	}
	c.TranslateNanos += uint64(time.Since(start))
	c.cache[addr] = sb
	c.Translations++
	c.cacheStmts += uint64(len(sb.Stmts))
	c.histBlockStmts.Observe(float64(len(sb.Stmts)))
	if traced {
		c.Obs.Tracer.End(c.M.BlocksExecuted, tid, "dbi", "translate",
			map[string]any{"stmts": len(sb.Stmts)})
	}
	c.sharedPut(addr, sb, seams)
	return sb, nil
}

// compiled produces the micro-op translation for the block at addr,
// consulting the compiled cache, then the shared store, then running the
// full pipeline — translate, optimize, instrument, lower — once; every
// later dispatch executes the pre-resolved form.
func (c *Core) compiled(addr uint64, tid int) (*centry, error) {
	if ent, ok := c.ccache[addr]; ok {
		c.CacheHits++
		return ent, nil
	}
	c.CacheMisses++
	var unit *tstore.Unit
	sb, haveSB := c.cache[addr]
	if !haveSB {
		if unit = c.sharedGet(addr); unit != nil {
			if s, err := c.adoptSB(unit); err == nil {
				sb, haveSB = s, true
			} else {
				unit = nil // unadoptable: fall back to the local pipeline
			}
		}
	}
	if !haveSB {
		var err error
		if sb, err = c.translateFresh(addr, tid); err != nil {
			return nil, err
		}
	}
	var code *vex.Compiled
	if unit != nil && unit.Code != nil {
		if adopted, err := c.adoptCode(unit); err == nil {
			code = adopted
		}
	}
	if code == nil {
		// Compile cost is timed on its own clock, independent of the
		// translation phase above.
		start := time.Now()
		var err error
		code, err = vex.Compile(sb)
		if err != nil {
			return nil, err
		}
		c.Compiles++
		c.CompileNanos += uint64(time.Since(start))
		c.sharedPutCode(addr, code)
	}
	ent := &centry{code: code, gen: c.cacheGen, chains: make([]*centry, code.NChains)}
	c.ccache[addr] = ent
	if idx := addr / guest.InstrBytes; addr%guest.InstrBytes == 0 {
		if idx >= uint64(len(c.cdisp)) {
			nd := make([]*centry, idx+idx/2+64)
			copy(nd, c.cdisp)
			c.cdisp = nd
		}
		c.cdisp[idx] = ent
	}
	return ent, nil
}

// CachedBlocks returns the guest addresses of every cached translation in
// sorted order — the benchmark harness replays them to measure hot block
// throughput on real translated code.
func (c *Core) CachedBlocks() []uint64 {
	out := make([]uint64, 0, len(c.cache))
	for a := range c.cache {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BlockIR returns the cached instrumented IR for the block at addr, or nil
// if the block has not been translated. Introspection only — callers must
// not mutate the block.
func (c *Core) BlockIR(addr uint64) *vex.SuperBlock { return c.cache[addr] }

// CacheFootprint approximates the memory held by the translation cache —
// instrumented IR is a real part of a DBI tool's footprint.
func (c *Core) CacheFootprint() uint64 {
	const stmtBytes = 96 // sizeof(vex.Stmt) incl. args slices, amortized
	return c.cacheStmts*stmtBytes + c.Translations*64
}

// SymbolAt is a convenience for tools: the symbol containing a guest address.
func (c *Core) SymbolAt(addr uint64) *guest.Symbol { return c.M.Image.SymbolFor(addr) }

// SymbolFilter builds a per-instruction instrumentation filter: instruction
// i is instrumented iff keep(name of its enclosing function) is true.
func SymbolFilter(im *guest.Image, keep func(sym string) bool) []bool {
	n := len(im.Text)
	filter := make([]bool, n)
	for i := range filter {
		name := ""
		if sym := im.SymbolFor(guest.TextBase + uint64(i)*guest.InstrBytes); sym != nil {
			name = sym.Name
		}
		filter[i] = keep(name)
	}
	return filter
}
