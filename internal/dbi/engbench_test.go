package dbi_test

import (
	"testing"

	"repro/internal/dbi"
	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/vm"
)

// buildHotLoop: a self-looping block with a realistic instruction mix:
// loads, stores, ALU, a compare+branch back to itself.
func buildHotLoop(t testing.TB) (*guest.Image, uint64) {
	t.Helper()
	b := gbuild.New()
	arr := b.Global("arr", 64)
	f := b.Func("main", "hot.c")
	head := f.NewLabel()
	f.Bind(head)
	f.Ld(8, guest.R2, guest.R6, 0)
	f.Ld(8, guest.R3, guest.R6, 8)
	f.Add(guest.R2, guest.R2, guest.R3)
	f.Addi(guest.R2, guest.R2, 1)
	f.ALU(guest.OpXor, guest.R3, guest.R3, guest.R2)
	f.St(8, guest.R6, 0, guest.R2)
	f.St(8, guest.R6, 8, guest.R3)
	f.Jmp(head)
	im, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	return im, arr
}

func BenchmarkEngineOnly(b *testing.B) {
	for _, engine := range []string{dbi.EngineIR, dbi.EngineCompiled} {
		b.Run(engine, func(b *testing.B) {
			im, arr := buildHotLoop(b)
			m, err := vm.New(im, vm.NewHostRegistry(), vm.Config{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			core := dbi.New(m, dbi.NopTool{})
			if err := core.SelectEngine(engine); err != nil {
				b.Fatal(err)
			}
			th := m.Threads()[0]
			th.Regs[guest.R6] = arr
			for i := 0; i < 8; i++ {
				if _, err := m.Eng.RunBlock(m, th); err != nil {
					b.Fatal(err)
				}
			}
			start := m.InstrsExecuted
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Eng.RunBlock(m, th); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(m.InstrsExecuted-start)/b.Elapsed().Seconds(), "instrs/sec")
		})
	}
}
