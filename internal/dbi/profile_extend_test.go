package dbi_test

// Superblock extension fuses boring jumps into longer translation units, so
// an extended run dispatches fewer, bigger blocks than an unextended one.
// Profiler samples are weighted by each block's retired instruction count
// precisely so that this difference is invisible at symbol granularity:
// these tests pin that invariant.

import (
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dbi"
	"repro/internal/drb"
	"repro/internal/gbuild"
	"repro/internal/harness"
	"repro/internal/obs"
)

// profileBySymbol runs mk single-threaded with an every-block profiler and
// returns the per-symbol sample counts plus the machine's retired
// instruction total.
func profileBySymbol(t *testing.T, mk func() *gbuild.Builder, engine string, extend int) (map[string]uint64, uint64, uint64) {
	t.Helper()
	prof := obs.NewProfiler(1)
	res, inst, err := harness.BuildAndRun(mk(), harness.Setup{
		Seed: 1, Threads: 1, Stdout: io.Discard,
		Engine: engine, Extend: extend,
		Obs: &obs.Hooks{Prof: prof},
	})
	if err != nil {
		t.Fatalf("%s/extend=%d: %v", engine, extend, err)
	}
	if res.Err != nil {
		t.Fatalf("%s/extend=%d: run: %v", engine, extend, res.Err)
	}
	return prof.BySymbol(inst.M.Image), prof.Total(), inst.M.InstrsExecuted
}

// TestProfileExtendAgreement asserts that with instruction-weighted samples
// at interval 1, the per-symbol profile of an extended run is *identical* to
// the unextended one — extension only fuses jumps within a function, so the
// instructions retired per symbol cannot change, and the weighting makes
// the profiler see exactly that quantity. On both engines.
func TestProfileExtendAgreement(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			mk := func() *gbuild.Builder { return fuzzProgram(seed) }
			for _, engine := range []string{dbi.EngineIR, dbi.EngineCompiled} {
				base, baseTotal, baseInstrs := profileBySymbol(t, mk, engine, 0)
				ext, extTotal, extInstrs := profileBySymbol(t, mk, engine, 64)
				if baseInstrs != extInstrs {
					t.Fatalf("%s: retired instructions diverge: extend=0 %d, extend=64 %d",
						engine, baseInstrs, extInstrs)
				}
				if !reflect.DeepEqual(base, ext) {
					t.Fatalf("%s: per-symbol profiles diverge:\nextend=0:  %v\nextend=64: %v",
						engine, base, ext)
				}
				if baseTotal != extTotal {
					t.Fatalf("%s: sample totals diverge: extend=0 %d, extend=64 %d",
						engine, baseTotal, extTotal)
				}
			}
		})
	}
}

// TestProfileExtendAgreementParallel covers the multithreaded case. Here
// exact global equality is impossible: extension changes block boundaries,
// block boundaries are the scheduling quantum, and a shifted schedule makes
// threads spin marginally different amounts in the runtime's barrier and
// task loops. But that jitter is confined to the runtime: the guest
// instructions retired in *user* code are schedule-independent, so user
// symbols must agree exactly, and the runtime (`__kmp*`) divergence — pure
// spin-count jitter — is bounded at 10% of the runtime's own weight.
func TestProfileExtendAgreementParallel(t *testing.T) {
	for _, b := range drb.All() {
		if b.Name != "027-taskdependmissing-orig" && b.Name != "106-taskwaitmissing-orig" {
			continue
		}
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prof := func(extend int) map[string]uint64 {
				p := obs.NewProfiler(1)
				res, inst, err := harness.BuildAndRun(b.Build(), harness.Setup{
					Seed: 1, Threads: 4, Stdout: io.Discard,
					Engine: dbi.EngineCompiled, Extend: extend,
					Obs: &obs.Hooks{Prof: p},
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Err != nil {
					t.Fatal(res.Err)
				}
				return p.BySymbol(inst.M.Image)
			}
			base, ext := prof(0), prof(64)
			isRuntime := func(sym string) bool { return strings.HasPrefix(sym, "__kmp") }
			var rtWeight, rtDist uint64
			seen := map[string]bool{}
			for _, m := range []map[string]uint64{base, ext} {
				for sym := range m {
					if seen[sym] {
						continue
					}
					seen[sym] = true
					n, x := base[sym], ext[sym]
					if !isRuntime(sym) {
						if n != x {
							t.Errorf("user symbol %s: extend=0 weight %d, extend=64 weight %d (must match exactly)", sym, n, x)
						}
						continue
					}
					rtWeight += n
					if x > n {
						rtDist += x - n
					} else {
						rtDist += n - x
					}
				}
			}
			if rtWeight > 0 {
				if frac := float64(rtDist) / float64(rtWeight); frac > 0.10 {
					t.Errorf("runtime spin weight diverges by %.1f%% (limit 10%%)\nextend=0:  %v\nextend=64: %v",
						100*frac, base, ext)
				}
			}
		})
	}
}

// TestProfileWeightMatchesInstrs checks the weighting identity directly: at
// interval 1 every dispatched block fires, each credited its retired
// instruction count, so the profile total equals the machine's retired
// instruction counter.
func TestProfileWeightMatchesInstrs(t *testing.T) {
	for _, engine := range []string{dbi.EngineIR, dbi.EngineCompiled} {
		for _, extend := range []int{0, 64} {
			_, total, instrs := profileBySymbol(t, func() *gbuild.Builder { return fuzzProgram(3) }, engine, extend)
			if total != instrs {
				t.Errorf("%s/extend=%d: profile total %d != retired instructions %d",
					engine, extend, total, instrs)
			}
		}
	}
}
