package dbi

// Batched tool event delivery — the analog of Valgrind tools queueing events
// per superblock instead of calling into the tool on every guest memory
// access. A tool that only needs the access stream (address, width, PC,
// direction) instruments through InstrumentAccesses and receives the accesses
// of a whole superblock segment in one FlushAccesses callback, amortizing the
// dirty-call overhead that dominates heavyweight instrumentation.
//
// Correctness rests on two properties of the translation pipeline:
//
//   - the translator never emits mid-block SDirty statements: host calls and
//     client requests are block-terminal jump kinds, so all tool-visible
//     state changes (frees, segment switches, sync events) happen at block
//     boundaries — delivering a block's accesses at its end observes exactly
//     the same tool state as delivering them one by one;
//   - temps are SSA (written exactly once, Validate-enforced) and constants
//     are immutable, so an access's address expression still evaluates to
//     the access-time value at the flush point. Register-kind addresses may
//     be overwritten before the block ends, so InstrumentAccesses snapshots
//     them into fresh temps at the access point.
//
// A batch is flushed before every conditional exit (an exit taken mid-block
// must not swallow the accesses that preceded it) and at the block end. The
// per-event reference mode emits one flush per access, immediately before
// the access statement — byte-for-byte the classic Valgrind helper-per-access
// semantics — and the differential suite proves the two modes produce
// identical tool output.

import (
	"repro/internal/vex"
	"repro/internal/vm"
)

// Access is one recorded guest memory access, delivered to AccessSink tools.
type Access struct {
	// PC is the guest instruction performing the access.
	PC uint64
	// Addr is the accessed address, evaluated at the access point.
	Addr uint64
	// Wd is the access width in bytes.
	Wd uint8
	// Store is true for writes, false for reads.
	Store bool
}

// AccessSink receives batched access records. The batch slice is owned by the
// core and reused across flushes: sinks must consume it before returning and
// must not retain it.
type AccessSink interface {
	FlushAccesses(t *vm.Thread, batch []Access)
}

// Delivery selects how InstrumentAccesses delivers the access stream.
type Delivery uint8

// Delivery modes.
const (
	// DeliverBatched queues a superblock segment's accesses and delivers
	// them in one flush callback (the default, and the fast path).
	DeliverBatched Delivery = iota
	// DeliverPerEvent emits one flush per access, before the access
	// executes — the reference semantics the differential suite oracles
	// batched delivery against.
	DeliverPerEvent
)

// String names the mode (flag parsing, reports).
func (d Delivery) String() string {
	if d == DeliverPerEvent {
		return "per-event"
	}
	return "batched"
}

// ParseDelivery maps a flag value to a Delivery mode.
func ParseDelivery(s string) (Delivery, bool) {
	switch s {
	case "", "batched":
		return DeliverBatched, true
	case "per-event", "perevent", "per_event":
		return DeliverPerEvent, true
	}
	return DeliverBatched, false
}

// accessPoint is the compile-time half of one queued access: everything known
// at instrumentation time plus the expression yielding the address at run
// time (a constant or an SSA temp; registers are snapshotted — see flush).
type accessPoint struct {
	pc    uint64
	wd    uint8
	store bool
	addr  vex.Expr
}

// accessMetaStore is the store-direction bit in an access's packed Meta
// word (low byte: width). Two Meta words per access — PC, then
// width|direction — serialize a flush site so another core (or another
// process, via the persistent tier) can re-bind an equivalent one.
const accessMetaStore = 1 << 8

// flushMeta packs a flush site's access points into Stmt.Meta.
func flushMeta(pts []accessPoint) []uint64 {
	meta := make([]uint64, 0, 2*len(pts))
	for i := range pts {
		w := uint64(pts[i].wd)
		if pts[i].store {
			w |= accessMetaStore
		}
		meta = append(meta, pts[i].pc, w)
	}
	return meta
}

// flushSite is one flush callback baked into an instrumented block. Its dirty
// statement's arguments are the address expressions of the queued accesses in
// program order; flush marries them with the compile-time descriptors into
// the core's reusable batch buffer and hands the batch to the sink.
type flushSite struct {
	c    *Core
	sink AccessSink
	pts  []accessPoint
}

// flush is the DirtyFn delivering the site's batch.
func (f *flushSite) flush(ctx any, args []uint64) uint64 {
	buf := f.c.batchBuf[:0]
	for i := range f.pts {
		p := &f.pts[i]
		buf = append(buf, Access{PC: p.pc, Addr: args[i], Wd: p.wd, Store: p.store})
	}
	f.c.batchBuf = buf
	f.c.AccessesDelivered += uint64(len(buf))
	f.sink.FlushAccesses(ctx.(*vm.Thread), buf)
	return 0
}

// InstrumentAccesses rewrites a superblock so every guest load and store is
// delivered to sink according to the core's Delivery mode, returning the
// instrumented block and the number of load/store sites instrumented. Tools
// call it from their Instrument hook instead of inserting one dirty call per
// access; the result is cached like any instrumented translation.
func (c *Core) InstrumentAccesses(sb *vex.SuperBlock, sink AccessSink) (out *vex.SuperBlock, loads, stores uint64) {
	out = &vex.SuperBlock{
		GuestAddr: sb.GuestAddr, NTemps: sb.NTemps,
		Next: sb.Next, NextJK: sb.NextJK, Aux: sb.Aux,
		Stmts: make([]vex.Stmt, 0, len(sb.Stmts)+1),
	}
	perEvent := c.Delivery == DeliverPerEvent
	var pending []accessPoint
	flush := func() {
		if len(pending) == 0 {
			return
		}
		site := &flushSite{c: c, sink: sink, pts: pending}
		args := make([]vex.Expr, len(pending))
		for i := range pending {
			args[i] = pending[i].addr
		}
		out.Stmts = append(out.Stmts, vex.Stmt{
			Kind: vex.SDirty, Tmp: vex.NoTemp,
			Name: "flush_accesses", Fn: site.flush, Args: args,
			Meta: flushMeta(pending),
		})
		pending = nil
	}
	pc := sb.GuestAddr
	for _, s := range sb.Stmts {
		switch s.Kind {
		case vex.SIMark:
			pc = s.Addr
		case vex.SExit:
			// An exit taken here must have already delivered the
			// accesses that preceded it.
			flush()
		case vex.SWrTmpLoad, vex.SStore:
			addr := s.E1
			if addr.Kind == vex.KindGetReg {
				// The register may be overwritten before the flush
				// executes; snapshot its access-time value into a
				// fresh (SSA) temp.
				t := out.NewTemp()
				out.Append(vex.Stmt{Kind: vex.SWrTmpExpr, Tmp: t, E1: addr})
				addr = vex.TmpE(t)
			}
			pending = append(pending, accessPoint{
				pc: pc, wd: uint8(s.Wd), store: s.Kind == vex.SStore, addr: addr,
			})
			if s.Kind == vex.SWrTmpLoad {
				loads++
			} else {
				stores++
			}
			if perEvent {
				// Reference semantics: the tool observes the access
				// before it executes.
				flush()
			}
		}
		out.Stmts = append(out.Stmts, s)
	}
	flush()
	return out, loads, stores
}
