package dbi

// Shared-store adoption: the copy-on-attach seam between a core's private
// caches and the cross-core translation store (internal/tstore).
//
// A published unit's IR may embed dirty-call closures bound to the core and
// tool instance that translated it. Adoption therefore copies the statement
// (or micro-op) list and re-binds every dirty call to an equivalent helper
// of the adopting core, reconstructed from the statement's serializable
// (Name, Meta, Args) triple. Blocks without dirty calls — every nop-tool
// block, and any block the tool left uninstrumented — are shared by
// reference: the IR is immutable after instrumentation, so reference
// sharing is safe and free.
//
// Publication is gated the other way: only blocks whose dirty calls all
// carry a registered name and well-formed Meta are published. A tool that
// inserts an unregistered helper keeps its blocks core-private — correct,
// just not amortized.

import (
	"fmt"

	"repro/internal/tstore"
	"repro/internal/vex"
)

// storeActive reports whether this core participates in the shared tier.
// NoOptimize cores (a debug mode) are excluded: their IR differs from the
// canonical pipeline output and would poison the store.
func (c *Core) storeActive() bool {
	return c.Shared != nil && !c.NoOptimize
}

// sharedGet probes the shared store.
func (c *Core) sharedGet(addr uint64) *tstore.Unit {
	if !c.storeActive() {
		return nil
	}
	return c.Shared.Get(addr)
}

// sharedPut publishes a freshly translated block, if portable.
func (c *Core) sharedPut(addr uint64, sb *vex.SuperBlock, seams int) {
	if !c.storeActive() || !portableSB(sb) {
		return
	}
	c.Shared.Put(&tstore.Unit{
		Addr: addr, SB: sb, Seams: seams, Pretranslated: c.pretranslating,
	})
}

// sharedPutCode attaches a locally compiled form to the block's published
// unit (no-op when the block was not published).
func (c *Core) sharedPutCode(addr uint64, code *vex.Compiled) {
	if !c.storeActive() {
		return
	}
	c.Shared.PutCode(addr, code)
}

// portableSB reports whether every dirty call in sb can be re-bound by an
// adopting core.
func portableSB(sb *vex.SuperBlock) bool {
	for i := range sb.Stmts {
		s := &sb.Stmts[i]
		if s.Kind != vex.SDirty {
			continue
		}
		if s.Name != "flush_accesses" || len(s.Meta) != 2*len(s.Args) {
			return false
		}
	}
	return true
}

// bindFlush reconstructs a flush_accesses helper for this core from the
// serializable Meta words (pc, width|store-bit per access).
func (c *Core) bindFlush(meta []uint64, nargs int) (vex.DirtyFn, error) {
	sink, ok := c.tool.(AccessSink)
	if !ok {
		return nil, fmt.Errorf("dbi: adopt: tool %T is not an AccessSink", c.tool)
	}
	if len(meta) != 2*nargs {
		return nil, fmt.Errorf("dbi: adopt: flush_accesses meta %d words for %d args", len(meta), nargs)
	}
	pts := make([]accessPoint, nargs)
	for i := range pts {
		pts[i] = accessPoint{
			pc:    meta[2*i],
			wd:    uint8(meta[2*i+1]),
			store: meta[2*i+1]&accessMetaStore != 0,
		}
	}
	site := &flushSite{c: c, sink: sink, pts: pts}
	return site.flush, nil
}

// bindDirty dispatches on the registered helper name.
func (c *Core) bindDirty(name string, meta []uint64, nargs int) (vex.DirtyFn, error) {
	if name == "flush_accesses" {
		return c.bindFlush(meta, nargs)
	}
	return nil, fmt.Errorf("dbi: adopt: unknown dirty helper %q", name)
}

// adoptSB attaches a shared unit's IR to this core: re-binds dirty helpers
// when present (copying the statement list first), installs the block in
// the local cache and replays the translation-time bookkeeping — minus
// Translations, which is the point.
func (c *Core) adoptSB(u *tstore.Unit) (*vex.SuperBlock, error) {
	sb := u.SB
	dirty := false
	for i := range sb.Stmts {
		if sb.Stmts[i].Kind == vex.SDirty {
			dirty = true
			break
		}
	}
	if dirty {
		cp := *sb
		cp.Stmts = append([]vex.Stmt(nil), sb.Stmts...)
		for i := range cp.Stmts {
			s := &cp.Stmts[i]
			if s.Kind != vex.SDirty {
				continue
			}
			fn, err := c.bindDirty(s.Name, s.Meta, len(s.Args))
			if err != nil {
				return nil, err
			}
			s.Fn = fn
		}
		sb = &cp
	}
	if c.Validate {
		if err := sb.Validate(); err != nil {
			return nil, err
		}
	}
	c.cache[u.Addr] = sb
	c.SharedHits++
	if u.Pretranslated {
		c.PretranslatedBlocks++
	}
	c.ExtendSeams += uint64(u.Seams)
	c.cacheStmts += uint64(len(sb.Stmts))
	c.histBlockStmts.Observe(float64(len(sb.Stmts)))
	return sb, nil
}

// adoptCode attaches a shared unit's compiled form: micro-op arrays without
// dirty calls are shared by reference; otherwise the op list is copied and
// each dirty op re-bound. The side tables (PCs/ICs) are read-only and
// always shared.
func (c *Core) adoptCode(u *tstore.Unit) (*vex.Compiled, error) {
	code := u.Code
	dirty := false
	for i := range code.Ops {
		if code.Ops[i].Code == vex.UDirty {
			dirty = true
			break
		}
	}
	if !dirty {
		return code, nil
	}
	cp := *code
	cp.Ops = append([]vex.UOp(nil), code.Ops...)
	for i := range cp.Ops {
		op := &cp.Ops[i]
		if op.Code != vex.UDirty || op.Dirty == nil {
			continue
		}
		d := *op.Dirty
		fn, err := c.bindDirty(d.Name, d.Meta, len(d.Args))
		if err != nil {
			return nil, err
		}
		d.Fn = fn
		op.Dirty = &d
	}
	return &cp, nil
}
