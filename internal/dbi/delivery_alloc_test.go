package dbi_test

import (
	"testing"

	"repro/internal/dbi"
	"repro/internal/guest"
	"repro/internal/vex"
	"repro/internal/vm"
)

// countSink instruments through InstrumentAccesses and only counts what it
// is handed — no retention, so any steady-state allocation measured below
// belongs to the delivery machinery itself.
type countSink struct {
	dbi.NopTool
	loads, stores uint64
}

func (cs *countSink) Name() string { return "countsink" }

func (cs *countSink) Instrument(c *dbi.Core, sb *vex.SuperBlock) *vex.SuperBlock {
	out, _, _ := c.InstrumentAccesses(sb, cs)
	return out
}

// FlushAccesses implements dbi.AccessSink.
func (cs *countSink) FlushAccesses(t *vm.Thread, batch []dbi.Access) {
	for i := range batch {
		if batch[i].Store {
			cs.stores++
		} else {
			cs.loads++
		}
	}
}

// deliveryAllocs measures steady-state allocations per dispatched block with
// the access stream flowing through the given delivery mode.
func deliveryAllocs(t *testing.T, engine string, d dbi.Delivery) float64 {
	t.Helper()
	im, arr := buildSelfLoop(t)
	m, err := vm.New(im, vm.NewHostRegistry(), vm.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	core := dbi.New(m, &countSink{})
	core.Delivery = d
	if err := core.SelectEngine(engine); err != nil {
		t.Fatal(err)
	}
	th := m.Threads()[0]
	th.Regs[guest.R6] = arr
	for i := 0; i < 8; i++ {
		if _, err := m.Eng.RunBlock(m, th); err != nil {
			t.Fatal(err)
		}
	}
	return testing.AllocsPerRun(200, func() {
		if _, err := m.Eng.RunBlock(m, th); err != nil {
			t.Fatal(err)
		}
	})
}

// TestDeliveryDoesNotAllocate extends the RunBlock allocs/op guard to the
// access-delivery path: flushing a batch (or a per-event singleton) into a
// sink must not allocate in steady state — the batch buffer is reused.
func TestDeliveryDoesNotAllocate(t *testing.T) {
	for _, engine := range []string{dbi.EngineIR, dbi.EngineCompiled} {
		for _, d := range []dbi.Delivery{dbi.DeliverBatched, dbi.DeliverPerEvent} {
			if n := deliveryAllocs(t, engine, d); n != 0 {
				t.Errorf("%s engine, %v delivery: %.1f allocs per block, want 0", engine, d, n)
			}
		}
	}
}
