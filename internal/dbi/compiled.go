package dbi

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/vex"
	"repro/internal/vm"
)

// centry is one compiled translation in the code cache, together with its
// chaining metadata: direct pointers to successor translations, indexed by
// the chain sites the compiler assigned to the block's exits. A filled slot
// lets the dispatcher reach the successor without the map lookup — the
// analog of Valgrind patching a translation's exit branch to jump straight
// into the next translation.
type centry struct {
	code *vex.Compiled
	// gen is the cache generation this translation was compiled under.
	// Predictions stamped with it die when ClearCache bumps the
	// generation — even when the clear happens mid-block, under the feet
	// of an entry from the previous generation.
	gen uint64
	// chains holds the successor translation per chain site; nil until the
	// successor has been compiled and the edge traversed. Entries are only
	// valid within one cache generation: ClearCache drops the whole map,
	// so stale pointers die with their owners.
	chains []*centry
}

// pred is a per-thread dispatch prediction: the successor translation the
// last block executed by this thread chained to. When the thread's next
// dispatch matches, the engine skips the translation-cache lookup entirely.
type pred struct {
	pc  uint64
	gen uint64
	ent *centry
}

// compiledEngine executes pre-lowered micro-op translations (vex.Compiled)
// with block chaining. It is the production engine; irEngine remains as the
// reference interpreter the differential tests oracle against.
type compiledEngine struct {
	c    *Core
	tmps []uint64
	args []uint64
	// preds is indexed by thread ID.
	preds []pred
	// rets is the per-thread return-prediction stack (the analog of
	// Valgrind chaining returns through the stack of return addresses in
	// VG_(tt_fast)): every call pushes the predicted return target and, if
	// already compiled, its translation; the matching return re-primes the
	// dispatch prediction instead of dropping it. Mispredictions are
	// harmless — the dispatcher re-verifies PC and generation.
	rets [][]pred

	// Fault-attribution state (see FaultPoint). RunBlock records the block
	// being executed and the index of the op in flight before every
	// fault-capable op (memory accesses, dirty calls) — a register store,
	// orders of magnitude cheaper than the per-block defer it replaces.
	// curIC mirrors how many of the block's instructions have already been
	// credited to the counters.
	cur    *vex.Compiled
	curIdx int
	curIC  uint64
}

// FaultPoint implements vm.FaultLocator: called by the machine's crash
// containment when a panic unwinds out of RunBlock. It returns the guest PC
// of the faulting instruction (from the compiled block's PCs side table) and
// settles the instruction counters so they show exactly the instructions
// that retired before the fault — matching the IR interpreter's per-IMark
// bookkeeping.
func (e *compiledEngine) FaultPoint(m *vm.Machine, t *vm.Thread) uint64 {
	code := e.cur
	if code == nil {
		return t.PC
	}
	// Past the op loop (host-side transfer code): attribute to the block's
	// final guest instruction, all instructions retired.
	pc, n := code.LastPC, uint64(code.NInstrs)
	if i := e.curIdx; i >= 0 && i < len(code.Ops) {
		pc, n = code.PCs[i], uint64(code.ICs[i])
	} else if e.curIdx < 0 {
		// No fault-capable op reached yet.
		pc, n = code.GuestAddr, 0
	}
	if n > e.curIC {
		m.InstrsExecuted += n - e.curIC
		t.InstrsExecuted += n - e.curIC
		e.curIC = n
	}
	return pc
}

// clearPred invalidates the thread's dispatch prediction (dynamic successor:
// call, return, host call...).
func (e *compiledEngine) clearPred(tid int) { e.preds[tid].ent = nil }

// chainTo records that the current block transferred to target via chain
// site idx: it fills the centry's successor pointer once the target is
// compiled, and primes the thread's dispatch prediction.
func (e *compiledEngine) chainTo(tid int, ent *centry, idx int32, target uint64) {
	next := ent.chains[idx]
	if next == nil {
		// First traversal (or the target is not compiled yet): one map
		// lookup patches the chain for every execution after.
		if ne, ok := e.c.ccache[target]; ok {
			ent.chains[idx] = ne
			next = ne
		}
	}
	p := &e.preds[tid]
	p.ent = next
	p.pc = target
	// Stamp with the chain owner's generation, not the live one: if the
	// cache was cleared while this block ran, the prediction (which points
	// into the dead generation) must not survive the clear.
	p.gen = ent.gen
}

// RunBlock implements vm.Engine.
func (e *compiledEngine) RunBlock(m *vm.Machine, t *vm.Thread) (res vm.RunResult, err error) {
	if t.PC == vm.ThreadExitAddr {
		return m.ExitThread(t), nil
	}
	if e.c.PanicHook != nil && e.c.PanicHook() {
		panic(&vm.EnginePanic{PC: t.PC, Val: "injected engine defect (compiled)"})
	}
	// Drop the previous block's fault context before the lookup so a panic
	// during translation is not misattributed to stale state.
	e.cur = nil
	c := e.c
	tid := t.ID
	if tid >= len(e.preds) {
		np := make([]pred, tid+1)
		copy(np, e.preds)
		e.preds = np
		nr := make([][]pred, tid+1)
		copy(nr, e.rets)
		e.rets = nr
	}
	var ent *centry
	if p := &e.preds[tid]; p.ent != nil && p.pc == t.PC && p.gen == c.cacheGen {
		ent = p.ent
		c.ChainHits++
		c.CacheHits++
	} else if idx := t.PC / guest.InstrBytes; idx < uint64(len(c.cdisp)) &&
		c.cdisp[idx] != nil && c.cdisp[idx].code.GuestAddr == t.PC {
		// Fast dispatch table (Valgrind's VG_(tt_fast)): an indexed load
		// instead of the translation-cache map lookup.
		ent = c.cdisp[idx]
		c.ChainMisses++
		c.CacheHits++
	} else {
		c.ChainMisses++
		ent, err = c.compiled(t.PC, tid)
		if err != nil {
			return vm.RunOK, err
		}
	}
	code := ent.code
	if uint32(cap(e.tmps)) < code.NFrame {
		e.tmps = make([]uint64, code.NFrame)
	}
	tmps := e.tmps[:cap(e.tmps)]
	regs := &t.Regs

	// Instruction counting is folded into the exits: ic tracks how many of
	// the block's instructions have been credited to the counters so far
	// (advanced by dirty calls, exits and the block end). There is no
	// per-instruction micro-op.
	//
	// There is also no defer here: a mid-block fault unwinds straight to the
	// machine's containment boundary, which calls FaultPoint to recover the
	// faulting guest PC from the cur/curIdx state kept below.
	var ic uint64
	e.cur, e.curIdx, e.curIC = code, -1, 0

	ops := code.Ops
	for i := 0; i < len(ops); i++ {
		u := &ops[i]
		switch u.Code {
		case vex.UMovC:
			tmps[u.Dst] = u.Imm
		case vex.UMovT:
			tmps[u.Dst] = tmps[u.A]
		case vex.UMovR:
			tmps[u.Dst] = regs[u.A]
		case vex.UPutC:
			regs[u.Dst] = u.Imm
		case vex.UPutT:
			regs[u.Dst] = tmps[u.A]
		case vex.UPutR:
			regs[u.Dst] = regs[u.A]
		case vex.UBinTT:
			tmps[u.Dst] = u.Fn(tmps[u.A], tmps[u.B])
		case vex.UBinTC:
			tmps[u.Dst] = u.Fn(tmps[u.A], u.Imm)
		case vex.UBinTR:
			tmps[u.Dst] = u.Fn(tmps[u.A], regs[u.B])
		case vex.UBinCT:
			tmps[u.Dst] = u.Fn(u.Imm, tmps[u.B])
		case vex.UBinCR:
			tmps[u.Dst] = u.Fn(u.Imm, regs[u.B])
		case vex.UBinRT:
			tmps[u.Dst] = u.Fn(regs[u.A], tmps[u.B])
		case vex.UBinRC:
			tmps[u.Dst] = u.Fn(regs[u.A], u.Imm)
		case vex.UBinRR:
			tmps[u.Dst] = u.Fn(regs[u.A], regs[u.B])
		case vex.UUnT:
			tmps[u.Dst] = u.Fn1(tmps[u.A])
		case vex.UUnR:
			tmps[u.Dst] = u.Fn1(regs[u.A])
		case vex.ULdT:
			e.curIdx = i
			tmps[u.Dst] = m.Mem.Load(tmps[u.A], u.Wd)
		case vex.ULdC:
			e.curIdx = i
			tmps[u.Dst] = m.Mem.Load(u.Imm, u.Wd)
		case vex.ULdR:
			e.curIdx = i
			tmps[u.Dst] = m.Mem.Load(regs[u.A], u.Wd)
		case vex.UStTT:
			e.curIdx = i
			m.Mem.Store(tmps[u.A], u.Wd, tmps[u.B])
		case vex.UStTC:
			e.curIdx = i
			m.Mem.Store(tmps[u.A], u.Wd, u.Imm)
		case vex.UStTR:
			e.curIdx = i
			m.Mem.Store(tmps[u.A], u.Wd, regs[u.B])
		case vex.UStCT:
			e.curIdx = i
			m.Mem.Store(u.Imm, u.Wd, tmps[u.B])
		case vex.UStCR:
			e.curIdx = i
			m.Mem.Store(u.Imm, u.Wd, regs[u.B])
		case vex.UStRT:
			e.curIdx = i
			m.Mem.Store(regs[u.A], u.Wd, tmps[u.B])
		case vex.UStRC:
			e.curIdx = i
			m.Mem.Store(regs[u.A], u.Wd, u.Imm)
		case vex.UStRR:
			e.curIdx = i
			m.Mem.Store(regs[u.A], u.Wd, regs[u.B])
		case vex.UPutBinTT:
			regs[u.Dst] = u.Fn(tmps[u.A], tmps[u.B])
		case vex.UPutBinTC:
			regs[u.Dst] = u.Fn(tmps[u.A], u.Imm)
		case vex.UPutBinTR:
			regs[u.Dst] = u.Fn(tmps[u.A], regs[u.B])
		case vex.UPutBinCT:
			regs[u.Dst] = u.Fn(u.Imm, tmps[u.B])
		case vex.UPutBinCR:
			regs[u.Dst] = u.Fn(u.Imm, regs[u.B])
		case vex.UPutBinRT:
			regs[u.Dst] = u.Fn(regs[u.A], tmps[u.B])
		case vex.UPutBinRC:
			regs[u.Dst] = u.Fn(regs[u.A], u.Imm)
		case vex.UPutBinRR:
			regs[u.Dst] = u.Fn(regs[u.A], regs[u.B])
		case vex.UPutUnT:
			regs[u.Dst] = u.Fn1(tmps[u.A])
		case vex.UPutUnR:
			regs[u.Dst] = u.Fn1(regs[u.A])
		case vex.ULdPRI:
			e.curIdx = i
			regs[u.Dst] = m.Mem.Load(regs[u.A]+u.Imm, u.Wd)
		case vex.ULdTRI:
			e.curIdx = i
			tmps[u.Dst] = m.Mem.Load(regs[u.A]+u.Imm, u.Wd)
		case vex.UStRIR:
			e.curIdx = i
			m.Mem.Store(regs[u.A]+u.Imm, u.Wd, regs[u.B])
		case vex.UStRIT:
			e.curIdx = i
			m.Mem.Store(regs[u.A]+u.Imm, u.Wd, tmps[u.B])
		case vex.UExitT:
			if tmps[u.A] != 0 {
				return e.takeExit(m, t, ent, u, ic)
			}
		case vex.UExitR:
			if regs[u.A] != 0 {
				return e.takeExit(m, t, ent, u, ic)
			}
		case vex.UExitBinTT:
			if u.Fn(tmps[u.A], tmps[u.B]) != 0 {
				return e.takeExit(m, t, ent, u, ic)
			}
		case vex.UExitBinTR:
			if u.Fn(tmps[u.A], regs[u.B]) != 0 {
				return e.takeExit(m, t, ent, u, ic)
			}
		case vex.UExitBinRT:
			if u.Fn(regs[u.A], tmps[u.B]) != 0 {
				return e.takeExit(m, t, ent, u, ic)
			}
		case vex.UExitBinRR:
			if u.Fn(regs[u.A], regs[u.B]) != 0 {
				return e.takeExit(m, t, ent, u, ic)
			}
		case vex.UJmp:
			return e.takeExit(m, t, ent, u, ic)
		case vex.UDirty:
			e.curIdx = i
			d := u.Dirty
			// Credit the instructions started before the call so the
			// helper observes IR-interpreter-exact counters.
			if n := uint64(d.InstrsBefore); n > ic {
				m.InstrsExecuted += n - ic
				t.InstrsExecuted += n - ic
				ic = n
			}
			e.curIC = ic
			if cap(e.args) < len(d.Args) {
				e.args = make([]uint64, len(d.Args))
			}
			args := e.args[:len(d.Args)]
			for j := range d.Args {
				a := &d.Args[j]
				switch a.Kind {
				case vex.KindConst:
					args[j] = a.Imm
				case vex.KindRdTmp:
					args[j] = tmps[a.Idx]
				default:
					args[j] = regs[a.Idx]
				}
			}
			c.DirtyCalls++
			r := d.Fn(t, args)
			if d.HasTmp {
				tmps[d.Tmp] = r
			}
		}
	}

	// Block end: credit the remaining instructions and move the fault
	// attribution point to the final guest instruction (the transfer's
	// call site).
	if n := uint64(code.NInstrs); n > ic {
		m.InstrsExecuted += n - ic
		t.InstrsExecuted += n - ic
		ic = n
	}
	e.curIdx, e.curIC = len(ops), ic

	var next uint64
	switch code.NextKind {
	case vex.KindConst:
		next = code.NextImm
	case vex.KindRdTmp:
		next = tmps[code.NextIdx]
	default:
		next = regs[code.NextIdx]
	}
	switch code.NextJK {
	case vex.JKBoring:
		t.PC = next
		if code.NextChain != vex.NoChain {
			e.chainTo(tid, ent, code.NextChain, next)
		} else {
			e.clearPred(tid)
		}
		return vm.RunOK, nil
	case vex.JKCall:
		t.PushFrame(next, code.LastPC)
		t.PC = next
		e.pushRet(tid, code.LastPC+guest.InstrBytes)
		if code.NextChain != vex.NoChain {
			e.chainTo(tid, ent, code.NextChain, next)
		} else {
			e.clearPred(tid)
		}
		return vm.RunOK, nil
	case vex.JKRet:
		t.PopFrame()
		t.PC = next
		e.popRet(tid, next)
		if next == vm.ThreadExitAddr {
			return m.ExitThread(t), nil
		}
		return vm.RunOK, nil
	case vex.JKHostCall:
		// Host calls usually return to the static successor (the call
		// site's next instruction), so keep the chained prediction; hosts
		// that redirect the PC just miss the (re-verified) prediction.
		t.PC = next
		if code.NextChain != vex.NoChain {
			e.chainTo(tid, ent, code.NextChain, next)
		} else {
			e.clearPred(tid)
		}
		return m.DoHostCall(t, code.Aux), nil
	case vex.JKClientReq:
		t.PC = next
		if code.NextChain != vex.NoChain {
			e.chainTo(tid, ent, code.NextChain, next)
		} else {
			e.clearPred(tid)
		}
		m.DoClientRequest(t, code.Aux)
		return vm.RunOK, nil
	case vex.JKExitThread:
		t.PC = next
		e.clearPred(tid)
		return m.ExitThread(t), nil
	}
	return vm.RunOK, fmt.Errorf("dbi: bad jump kind %v", code.NextJK)
}

// retStackCap bounds the per-thread return-prediction stack; recursion
// deeper than this drops the stack (predictions are best-effort).
const retStackCap = 64

// probeDisp looks pc up in the fast dispatch table, returning its compiled
// translation or nil.
func (c *Core) probeDisp(pc uint64) *centry {
	if idx := pc / guest.InstrBytes; pc%guest.InstrBytes == 0 && idx < uint64(len(c.cdisp)) &&
		c.cdisp[idx] != nil && c.cdisp[idx].code.GuestAddr == pc {
		return c.cdisp[idx]
	}
	return nil
}

// pushRet records the predicted return target of a call edge.
func (e *compiledEngine) pushRet(tid int, pc uint64) {
	st := e.rets[tid]
	if len(st) >= retStackCap {
		st = st[:0]
	}
	e.rets[tid] = append(st, pred{pc: pc, gen: e.c.cacheGen, ent: e.c.probeDisp(pc)})
}

// popRet consumes the top return prediction; when it matches the actual
// return target within the live cache generation, the dispatch prediction is
// primed from it, otherwise it is dropped and the next dispatch falls back
// to the fast dispatch table.
func (e *compiledEngine) popRet(tid int, next uint64) {
	st := e.rets[tid]
	if n := len(st); n > 0 {
		r := st[n-1]
		e.rets[tid] = st[:n-1]
		if r.pc == next && r.gen == e.c.cacheGen {
			ent := r.ent
			if ent == nil {
				// Not compiled at push time; it may be by now.
				ent = e.c.probeDisp(next)
			}
			if ent != nil {
				p := &e.preds[tid]
				p.ent, p.pc, p.gen = ent, next, r.gen
				return
			}
		}
	}
	e.clearPred(tid)
}

// takeExit performs a taken block exit: credit the retired-instruction count
// the compiler stored on the op, transfer control, and chain the edge.
func (e *compiledEngine) takeExit(m *vm.Machine, t *vm.Thread, ent *centry, u *vex.UOp, ic uint64) (vm.RunResult, error) {
	if n := uint64(u.Dst); n > ic {
		m.InstrsExecuted += n - ic
		t.InstrsExecuted += n - ic
	}
	t.PC = u.Imm
	e.chainTo(t.ID, ent, u.ChainIdx, u.Imm)
	return vm.RunOK, nil
}
