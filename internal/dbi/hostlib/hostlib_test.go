package hostlib_test

import (
	"bytes"
	"testing"

	"repro/internal/dbi"
	"repro/internal/dbi/hostlib"
	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/vm"
)

// run builds, runs with the host library installed, and returns machine +
// captured stdout.
func run(t *testing.T, b *gbuild.Builder) (*vm.Machine, string) {
	t.Helper()
	im, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	lib := hostlib.New()
	reg := vm.NewHostRegistry()
	lib.Install(reg)
	var out bytes.Buffer
	m, err := vm.New(im, reg, vm.Config{Stdout: &out})
	if err != nil {
		t.Fatal(err)
	}
	core := dbi.New(m, nil)
	lib.Bind(core)
	if err := core.Run(); err != nil {
		t.Fatal(err)
	}
	return m, out.String()
}

func TestCallocZeroes(t *testing.T) {
	b := gbuild.New()
	f := b.Func("main", "c.c")
	f.Ldi(guest.R0, 4)
	f.Ldi(guest.R1, 8)
	f.Hcall("calloc")
	// Sum the 32 bytes; must be zero even if the region had garbage.
	f.Ld(8, guest.R1, guest.R0, 0)
	f.Ld(8, guest.R2, guest.R0, 8)
	f.Add(guest.R1, guest.R1, guest.R2)
	f.Ld(8, guest.R2, guest.R0, 16)
	f.Add(guest.R1, guest.R1, guest.R2)
	f.Ld(8, guest.R2, guest.R0, 24)
	f.Add(guest.R0, guest.R1, guest.R2)
	f.Hlt(guest.R0)
	m, _ := run(t, b)
	if m.ExitCode() != 0 {
		t.Fatalf("calloc not zeroed: %d", m.ExitCode())
	}
}

func TestReallocPreservesContents(t *testing.T) {
	b := gbuild.New()
	f := b.Func("main", "r.c")
	f.Ldi(guest.R0, 8)
	f.Hcall("malloc")
	f.Mov(guest.R4, guest.R0)
	f.LdConst64(guest.R1, 0xDEADBEEF)
	f.St(8, guest.R0, 0, guest.R1)
	f.Mov(guest.R0, guest.R4)
	f.Ldi(guest.R1, 64)
	f.Hcall("realloc")
	f.Ld(8, guest.R1, guest.R0, 0)
	f.LdConst64(guest.R2, 0xDEADBEEF)
	f.Seq(guest.R0, guest.R1, guest.R2)
	f.Hlt(guest.R0)
	m, _ := run(t, b)
	if m.ExitCode() != 1 {
		t.Fatal("realloc lost contents")
	}
}

func TestMemsetMemcpy(t *testing.T) {
	b := gbuild.New()
	b.Global("src", 16)
	b.Global("dst", 16)
	f := b.Func("main", "m.c")
	f.LoadSym(guest.R0, "src")
	f.Ldi(guest.R1, 0x5A)
	f.Ldi(guest.R2, 16)
	f.Hcall("memset")
	f.LoadSym(guest.R0, "dst")
	f.LoadSym(guest.R1, "src")
	f.Ldi(guest.R2, 16)
	f.Hcall("memcpy")
	f.LoadSym(guest.R1, "dst")
	f.Ld(8, guest.R0, guest.R1, 8)
	f.Hlt(guest.R0)
	m, _ := run(t, b)
	if m.ExitCode() != 0x5A5A5A5A5A5A5A5A {
		t.Fatalf("dst = %#x", m.ExitCode())
	}
}

func TestPrintFamily(t *testing.T) {
	b := gbuild.New()
	b.GlobalString("msg", "n=")
	f := b.Func("main", "p.c")
	f.LoadSym(guest.R0, "msg")
	f.Hcall("print_str")
	f.Ldi(guest.R0, -42)
	f.Hcall("print_i64")
	f.Ldi(guest.R0, '\n')
	f.Hcall("putchar")
	f.LdFloat(guest.R0, 2.5)
	f.Hcall("print_f64")
	f.Ldi(guest.R0, 0)
	f.Hlt(guest.R0)
	_, out := run(t, b)
	if out != "n=-42\n2.5" {
		t.Fatalf("stdout = %q", out)
	}
}

func TestExitAndAbort(t *testing.T) {
	b := gbuild.New()
	f := b.Func("main", "e.c")
	f.Ldi(guest.R0, 17)
	f.Hcall("exit")
	f.Hlt(guest.R0) // unreachable
	m, _ := run(t, b)
	if m.ExitCode() != 17 {
		t.Fatalf("exit = %d", m.ExitCode())
	}

	b2 := gbuild.New()
	g := b2.Func("main", "a.c")
	g.Hcall("abort")
	g.Hlt(guest.R0)
	m2, _ := run(t, b2)
	if m2.ExitCode() != 134 {
		t.Fatalf("abort = %d", m2.ExitCode())
	}
}

func TestAllocationsRecordedInRegistry(t *testing.T) {
	b := gbuild.New()
	f := b.Func("main", "g.c")
	f.Ldi(guest.R0, 24)
	f.Hcall("malloc")
	f.Hcall("free")
	f.Ldi(guest.R0, 0)
	f.Hlt(guest.R0)
	im, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	lib := hostlib.New()
	reg := vm.NewHostRegistry()
	lib.Install(reg)
	m, _ := vm.New(im, reg, vm.Config{})
	core := dbi.New(m, nil)
	lib.Bind(core)
	if err := core.Run(); err != nil {
		t.Fatal(err)
	}
	if core.AllocCount() != 1 {
		t.Fatalf("allocs = %d", core.AllocCount())
	}
	if !core.Allocations()[0].Freed {
		t.Fatal("free not recorded")
	}
}
