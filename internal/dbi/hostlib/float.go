package hostlib

import "math"

func f64(u uint64) float64 { return math.Float64frombits(u) }
