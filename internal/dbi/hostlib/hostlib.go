// Package hostlib provides the guest C library: malloc/free and friends,
// minimal formatted output, and process control, implemented as host calls.
// It plays the role of libc in the paper's setup. The heap allocator
// recycles freed blocks (LIFO), which is exactly the behaviour Taskgrind
// neutralizes by redirecting free to a no-op (§IV-B).
package hostlib

import (
	"fmt"

	"repro/internal/dbi"
	"repro/internal/gmem"
	"repro/internal/guest"
	"repro/internal/mem"
	"repro/internal/vm"
)

// Lib is one program's host library instance.
type Lib struct {
	// Heap is the allocator behind malloc/free.
	Heap *mem.Allocator
	core *dbi.Core
}

// New creates a library with a fresh heap.
func New() *Lib {
	return &Lib{Heap: mem.New(guest.HeapBase, guest.HeapLimit)}
}

// Bind attaches the DBI core so allocations are recorded with stacks.
// It must be called after dbi.New and before the machine runs.
func (l *Lib) Bind(core *dbi.Core) { l.core = core }

// Core returns the bound core (may be nil in raw VM tests).
func (l *Lib) Core() *dbi.Core { return l.core }

// Install registers every libc entry point.
func (l *Lib) Install(reg *vm.HostRegistry) {
	reg.Register("malloc", l.hMalloc)
	reg.Register("calloc", l.hCalloc)
	reg.Register("realloc", l.hRealloc)
	reg.Register("free", l.hFree)
	reg.Register("memset", l.hMemset)
	reg.Register("memcpy", l.hMemcpy)
	reg.Register("print_str", l.hPrintStr)
	reg.Register("print_i64", l.hPrintI64)
	reg.Register("print_f64", l.hPrintF64)
	reg.Register("putchar", l.hPutchar)
	reg.Register("exit", l.hExit)
	reg.Register("abort", l.hAbort)
	reg.Register("sched_yield", l.hYield)
}

// Malloc allocates and records a block on behalf of host-side code (the
// runtime uses it for structures that must live in guest memory).
func (l *Lib) Malloc(t *vm.Thread, n uint64) uint64 {
	addr := l.Heap.Alloc(n)
	if addr != 0 {
		// Grant guest access under the strict memory model. Freed blocks
		// stay mapped (the allocator recycles them; tools report UAF).
		t.Machine().Mem.Map(addr, mem.Round(n), gmem.PermRW)
		if l.core != nil {
			l.core.RecordAlloc(addr, mem.Round(n), t.StackTrace(t.PC))
		}
	}
	return addr
}

func (l *Lib) hMalloc(m *vm.Machine, t *vm.Thread) vm.HostResult {
	return vm.HostResult{Ret: l.Malloc(t, t.Regs[guest.R0])}
}

func (l *Lib) hCalloc(m *vm.Machine, t *vm.Thread) vm.HostResult {
	n := t.Regs[guest.R0] * t.Regs[guest.R1]
	addr := l.Malloc(t, n)
	if addr != 0 {
		m.Mem.Zero(addr, mem.Round(n))
	}
	return vm.HostResult{Ret: addr}
}

func (l *Lib) hRealloc(m *vm.Machine, t *vm.Thread) vm.HostResult {
	old, n := t.Regs[guest.R0], t.Regs[guest.R1]
	if old == 0 {
		return vm.HostResult{Ret: l.Malloc(t, n)}
	}
	oldSize := l.Heap.SizeOf(old)
	addr := l.Malloc(t, n)
	if addr != 0 {
		cp := oldSize
		if n < cp {
			cp = n
		}
		m.Mem.Copy(addr, old, cp)
		l.doFree(old)
	}
	return vm.HostResult{Ret: addr}
}

// doFree releases a block through the allocator and marks the registry.
func (l *Lib) doFree(addr uint64) {
	if err := l.Heap.Free(addr); err == nil && l.core != nil {
		l.core.RecordFree(addr)
	}
}

func (l *Lib) hFree(m *vm.Machine, t *vm.Thread) vm.HostResult {
	l.doFree(t.Regs[guest.R0])
	return vm.HostResult{}
}

func (l *Lib) hMemset(m *vm.Machine, t *vm.Thread) vm.HostResult {
	dst, val, n := t.Regs[guest.R0], t.Regs[guest.R1], t.Regs[guest.R2]
	for i := uint64(0); i < n; i++ {
		m.Mem.Store(dst+i, 1, val)
	}
	return vm.HostResult{Ret: dst}
}

func (l *Lib) hMemcpy(m *vm.Machine, t *vm.Thread) vm.HostResult {
	dst, src, n := t.Regs[guest.R0], t.Regs[guest.R1], t.Regs[guest.R2]
	m.Mem.Copy(dst, src, n)
	return vm.HostResult{Ret: dst}
}

func (l *Lib) hPrintStr(m *vm.Machine, t *vm.Thread) vm.HostResult {
	fmt.Fprint(m.Stdout, m.Mem.ReadCString(t.Regs[guest.R0]))
	return vm.HostResult{}
}

func (l *Lib) hPrintI64(m *vm.Machine, t *vm.Thread) vm.HostResult {
	fmt.Fprintf(m.Stdout, "%d", int64(t.Regs[guest.R0]))
	return vm.HostResult{}
}

func (l *Lib) hPrintF64(m *vm.Machine, t *vm.Thread) vm.HostResult {
	fmt.Fprintf(m.Stdout, "%g", f64(t.Regs[guest.R0]))
	return vm.HostResult{}
}

func (l *Lib) hPutchar(m *vm.Machine, t *vm.Thread) vm.HostResult {
	fmt.Fprintf(m.Stdout, "%c", rune(t.Regs[guest.R0]))
	return vm.HostResult{}
}

func (l *Lib) hExit(m *vm.Machine, t *vm.Thread) vm.HostResult {
	return vm.HostResult{Ret: t.Regs[guest.R0], Action: vm.HostExitProgram}
}

func (l *Lib) hAbort(m *vm.Machine, t *vm.Thread) vm.HostResult {
	return vm.HostResult{Ret: 134, Action: vm.HostExitProgram}
}

func (l *Lib) hYield(m *vm.Machine, t *vm.Thread) vm.HostResult {
	return vm.HostResult{Action: vm.HostYield}
}
