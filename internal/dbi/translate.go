package dbi

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/vex"
)

// MaxBlockInstrs caps the number of guest instructions per superblock.
const MaxBlockInstrs = 64

// Translate decodes the guest basic block starting at addr and lowers it to
// flat VEX-like IR. Conditional branches end the block (taken edge as an
// Exit statement, fall-through as Next).
func Translate(im *guest.Image, addr uint64) (*vex.SuperBlock, error) {
	sb, _, err := TranslateExt(im, addr, 0)
	return sb, err
}

// TranslateExt is Translate with superblock extension: when budget > 0 the
// translator follows unconditional direct jumps and keeps decoding at the
// target, building a multi-block translation of up to budget guest
// instructions (Valgrind's superblock granularity). The second result is the
// number of jumps fused away. budget <= 0 translates a single basic block
// capped at MaxBlockInstrs.
//
// Extension changes how many blocks a given execution dispatches, and the
// scheduler's preemption slices are counted in blocks — so both engines must
// run the same translations for interleavings (and differential equality) to
// hold. That is why extension lives here in the shared translator rather
// than in one engine.
func TranslateExt(im *guest.Image, addr uint64, budget int) (*vex.SuperBlock, int, error) {
	limit := MaxBlockInstrs
	if budget > 0 {
		limit = budget
	}
	seams := 0
	// Most guest instructions lower to 2-3 statements (IMark + compute +
	// PutReg) and most blocks are a handful of instructions; start the list
	// at a typical short block and let append grow the long tail.
	sb := &vex.SuperBlock{GuestAddr: addr, Stmts: make([]vex.Stmt, 0, 16)}
	pc := addr
	for n := 0; n < limit; n++ {
		in, err := im.FetchInstr(pc)
		if err != nil {
			return nil, seams, err
		}
		sb.IMark(pc, guest.InstrBytes)
		next := pc + guest.InstrBytes
		imm := uint64(int64(in.Imm))
		reg := vex.RegE

		switch in.Op {
		case guest.OpNop:
			// nothing
		case guest.OpLdi:
			sb.PutReg(in.Rd, vex.ConstE(imm))
		case guest.OpLdih:
			lo := sb.WrTmpBinop(vex.OpAnd, reg(in.Rd), vex.ConstE(0xffffffff))
			hi := sb.WrTmpBinop(vex.OpOr, vex.TmpE(lo), vex.ConstE(uint64(uint32(in.Imm))<<32))
			sb.PutReg(in.Rd, vex.TmpE(hi))
		case guest.OpMov:
			sb.PutReg(in.Rd, reg(in.Rs1))
		case guest.OpAdd, guest.OpSub, guest.OpMul, guest.OpDiv, guest.OpRem,
			guest.OpAnd, guest.OpOr, guest.OpXor, guest.OpShl, guest.OpShr, guest.OpSar,
			guest.OpSeq, guest.OpSne, guest.OpSlt, guest.OpSge, guest.OpSltu, guest.OpSgeu,
			guest.OpFadd, guest.OpFsub, guest.OpFmul, guest.OpFdiv,
			guest.OpFlt, guest.OpFle, guest.OpFeq:
			t := sb.WrTmpBinop(aluOp(in.Op), reg(in.Rs1), reg(in.Rs2))
			sb.PutReg(in.Rd, vex.TmpE(t))
		case guest.OpAddi:
			t := sb.WrTmpBinop(vex.OpAdd, reg(in.Rs1), vex.ConstE(imm))
			sb.PutReg(in.Rd, vex.TmpE(t))
		case guest.OpMuli:
			t := sb.WrTmpBinop(vex.OpMul, reg(in.Rs1), vex.ConstE(imm))
			sb.PutReg(in.Rd, vex.TmpE(t))
		case guest.OpAndi:
			t := sb.WrTmpBinop(vex.OpAnd, reg(in.Rs1), vex.ConstE(imm))
			sb.PutReg(in.Rd, vex.TmpE(t))
		case guest.OpOri:
			t := sb.WrTmpBinop(vex.OpOr, reg(in.Rs1), vex.ConstE(imm))
			sb.PutReg(in.Rd, vex.TmpE(t))
		case guest.OpShli:
			t := sb.WrTmpBinop(vex.OpShl, reg(in.Rs1), vex.ConstE(imm&63))
			sb.PutReg(in.Rd, vex.TmpE(t))
		case guest.OpShri:
			t := sb.WrTmpBinop(vex.OpShr, reg(in.Rs1), vex.ConstE(imm&63))
			sb.PutReg(in.Rd, vex.TmpE(t))
		case guest.OpItof:
			t := sb.WrTmpUnop(vex.OpItoF, reg(in.Rs1))
			sb.PutReg(in.Rd, vex.TmpE(t))
		case guest.OpFtoi:
			t := sb.WrTmpUnop(vex.OpFtoI, reg(in.Rs1))
			sb.PutReg(in.Rd, vex.TmpE(t))
		case guest.OpLd8, guest.OpLd16, guest.OpLd32, guest.OpLd64:
			a := addrExpr(sb, in)
			v := sb.WrTmpLoad(vex.Width(in.MemWidth()), a)
			sb.PutReg(in.Rd, vex.TmpE(v))
		case guest.OpSt8, guest.OpSt16, guest.OpSt32, guest.OpSt64:
			a := addrExpr(sb, in)
			sb.Store(vex.Width(in.MemWidth()), a, reg(in.Rs2))
		case guest.OpJmp:
			target := uint64(uint32(in.Imm))
			if budget > 0 && n+1 < limit && fetchable(im, target) {
				// Superblock extension: fuse the jump away and keep
				// decoding at its target.
				seams++
				pc = target
				continue
			}
			sb.Next = vex.ConstE(target)
			sb.NextJK = vex.JKBoring
			return sb, seams, nil
		case guest.OpBeq, guest.OpBne, guest.OpBlt, guest.OpBge, guest.OpBltu, guest.OpBgeu:
			g := sb.WrTmpBinop(branchOp(in.Op), reg(in.Rs1), reg(in.Rs2))
			sb.Exit(vex.TmpE(g), uint64(uint32(in.Imm)), vex.JKBoring)
			sb.Next = vex.ConstE(next)
			sb.NextJK = vex.JKBoring
			return sb, seams, nil
		case guest.OpJal:
			sb.PutReg(guest.LR, vex.ConstE(next))
			sb.Next = vex.ConstE(uint64(uint32(in.Imm)))
			sb.NextJK = vex.JKCall
			return sb, seams, nil
		case guest.OpJalr:
			target := sb.WrTmpExpr(reg(in.Rs1))
			sb.PutReg(guest.LR, vex.ConstE(next))
			sb.Next = vex.TmpE(target)
			sb.NextJK = vex.JKCall
			return sb, seams, nil
		case guest.OpRet:
			sb.Next = vex.RegE(guest.LR)
			sb.NextJK = vex.JKRet
			return sb, seams, nil
		case guest.OpHcall:
			sb.Next = vex.ConstE(next)
			sb.NextJK = vex.JKHostCall
			sb.Aux = in.Imm
			return sb, seams, nil
		case guest.OpCreq:
			sb.Next = vex.ConstE(next)
			sb.NextJK = vex.JKClientReq
			sb.Aux = in.Imm
			return sb, seams, nil
		case guest.OpHlt:
			sb.PutReg(guest.R0, reg(in.Rs1))
			sb.Next = vex.ConstE(next)
			sb.NextJK = vex.JKExitThread
			return sb, seams, nil
		default:
			return nil, seams, fmt.Errorf("dbi: cannot translate opcode %s at 0x%x", in.Op, pc)
		}
		pc = next
	}
	// Block cap reached: chain to the next address.
	sb.Next = vex.ConstE(pc)
	sb.NextJK = vex.JKBoring
	return sb, seams, nil
}

// fetchable reports whether addr decodes to a guest instruction (i.e. is a
// valid extension target).
func fetchable(im *guest.Image, addr uint64) bool {
	_, err := im.FetchInstr(addr)
	return err == nil
}

// addrExpr builds the effective-address expression rs1+imm for a memory op.
func addrExpr(sb *vex.SuperBlock, in guest.Instr) vex.Expr {
	if in.Imm == 0 {
		return vex.RegE(in.Rs1)
	}
	t := sb.WrTmpBinop(vex.OpAdd, vex.RegE(in.Rs1), vex.ConstE(uint64(int64(in.Imm))))
	return vex.TmpE(t)
}

func aluOp(op guest.Opcode) vex.Op {
	switch op {
	case guest.OpAdd:
		return vex.OpAdd
	case guest.OpSub:
		return vex.OpSub
	case guest.OpMul:
		return vex.OpMul
	case guest.OpDiv:
		return vex.OpDiv
	case guest.OpRem:
		return vex.OpRem
	case guest.OpAnd:
		return vex.OpAnd
	case guest.OpOr:
		return vex.OpOr
	case guest.OpXor:
		return vex.OpXor
	case guest.OpShl:
		return vex.OpShl
	case guest.OpShr:
		return vex.OpShr
	case guest.OpSar:
		return vex.OpSar
	case guest.OpSeq:
		return vex.OpCmpEQ
	case guest.OpSne:
		return vex.OpCmpNE
	case guest.OpSlt:
		return vex.OpCmpLT
	case guest.OpSge:
		return vex.OpCmpGE
	case guest.OpSltu:
		return vex.OpCmpLTU
	case guest.OpSgeu:
		return vex.OpCmpGEU
	case guest.OpFadd:
		return vex.OpFAdd
	case guest.OpFsub:
		return vex.OpFSub
	case guest.OpFmul:
		return vex.OpFMul
	case guest.OpFdiv:
		return vex.OpFDiv
	case guest.OpFlt:
		return vex.OpFCmpLT
	case guest.OpFle:
		return vex.OpFCmpLE
	case guest.OpFeq:
		return vex.OpFCmpEQ
	}
	panic(fmt.Sprintf("dbi: not an ALU op: %s", op))
}

func branchOp(op guest.Opcode) vex.Op {
	switch op {
	case guest.OpBeq:
		return vex.OpCmpEQ
	case guest.OpBne:
		return vex.OpCmpNE
	case guest.OpBlt:
		return vex.OpCmpLT
	case guest.OpBge:
		return vex.OpCmpGE
	case guest.OpBltu:
		return vex.OpCmpLTU
	case guest.OpBgeu:
		return vex.OpCmpGEU
	}
	panic(fmt.Sprintf("dbi: not a branch op: %s", op))
}
