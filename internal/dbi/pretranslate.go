package dbi

// The ahead-of-execution translation pipeline: a bounded worker pool that
// walks the image's statically reachable superblocks — breadth-first from
// the entry point and every function symbol — and fills the shared store
// (decode -> optimize -> instrument -> compile) on spare cores before the
// guest gets there. The analog of the parallel discovery/analysis phase in
// "Parallel Binary Code Analysis": block discovery parallelizes over the
// frontier because translation is per-block and deterministic.
//
// The pipeline is strictly an accelerator. It publishes through the same
// sharedPut path as a running core, so a unit is bit-identical whether the
// guest or the pipeline translated it first (first writer wins in the
// store); blocks it cannot discover (computed branch targets outside any
// symbol) fall back to on-demand translation; and any per-block failure is
// swallowed — the worst case is a block translated twice.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/guest"
	"repro/internal/tstore"
	"repro/internal/vex"
	"repro/internal/vm"
)

// Pretranslation is the handle on an asynchronous pipeline run.
type Pretranslation struct {
	done   chan struct{}
	blocks atomic.Uint64
}

// Wait blocks until the pipeline drains and returns the number of blocks
// it processed.
func (p *Pretranslation) Wait() int {
	<-p.done
	return int(p.blocks.Load())
}

// PretranslateAsync starts the pipeline in the background and returns
// immediately; the guest can start executing against the filling store.
// workers <= 0 uses GOMAXPROCS. newTool must return a fresh tool instance
// per call (each worker instruments with its own); pass a func returning
// nil for uninstrumented stores.
func PretranslateAsync(st *tstore.Store, im *guest.Image, workers int, newTool func() Tool) *Pretranslation {
	p := &Pretranslation{done: make(chan struct{})}
	go func() {
		defer close(p.done)
		p.run(st, im, workers, newTool)
	}()
	return p
}

// Pretranslate runs the pipeline synchronously and returns the number of
// blocks processed.
func Pretranslate(st *tstore.Store, im *guest.Image, workers int, newTool func() Tool) int {
	return PretranslateAsync(st, im, workers, newTool).Wait()
}

func (p *Pretranslation) run(st *tstore.Store, im *guest.Image, workers int, newTool func() Tool) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	key := st.Key()
	delivery, _ := ParseDelivery(key.Delivery)
	wantCode := key.Engine == EngineCompiled

	var (
		mu      sync.Mutex
		queue   []uint64
		seen    = make(map[uint64]bool)
		pending int // queued + in-flight addresses
	)
	cond := sync.NewCond(&mu)
	push := func(addr uint64) {
		if !seen[addr] {
			seen[addr] = true
			queue = append(queue, addr)
			pending++
			cond.Signal()
		}
	}

	mu.Lock()
	push(im.Entry)
	for i := range im.Symbols {
		s := &im.Symbols[i]
		if s.Kind == guest.SymFunc && s.Addr >= guest.TextBase &&
			s.Addr < im.TextEnd() && s.Addr%guest.InstrBytes == 0 {
			push(s.Addr)
		}
	}
	mu.Unlock()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A throwaway instrument-only core: it shares the store but
			// owns its caches and its tool instance, so nothing here
			// races the running guest's core.
			c := &Core{
				M:              &vm.Machine{Image: im},
				tool:           newTool(),
				cache:          make(map[uint64]*vex.SuperBlock),
				ccache:         make(map[uint64]*centry),
				ExtendBudget:   key.Extend,
				Delivery:       delivery,
				Shared:         st,
				pretranslating: true,
			}
			for {
				mu.Lock()
				for len(queue) == 0 && pending > 0 {
					cond.Wait()
				}
				if len(queue) == 0 {
					// pending == 0: the frontier is exhausted.
					mu.Unlock()
					cond.Broadcast()
					return
				}
				addr := queue[len(queue)-1]
				queue = queue[:len(queue)-1]
				mu.Unlock()

				succs := p.process(c, st, addr, wantCode, im.TextEnd())

				mu.Lock()
				for _, s := range succs {
					push(s)
				}
				pending--
				if pending == 0 {
					cond.Broadcast()
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

// process ensures the block at addr is in the store (with a compiled form
// when the key's engine wants one) and returns its static successors. Any
// failure — undecodable address, instrumentation panic — drops the block
// silently: the running guest translates it on demand instead.
func (p *Pretranslation) process(c *Core, st *tstore.Store, addr uint64, wantCode bool, textEnd uint64) (succs []uint64) {
	defer func() {
		if recover() != nil {
			succs = nil
		}
	}()
	if u := st.Get(addr); u != nil && (!wantCode || u.Code != nil) {
		p.blocks.Add(1)
		return blockSuccessors(u.SB, textEnd)
	}
	sb, err := c.translate(addr, 0)
	if err != nil {
		return nil
	}
	if wantCode && portableSB(sb) {
		if code, err := vex.Compile(sb); err == nil {
			st.PutCode(addr, code)
		}
	}
	p.blocks.Add(1)
	return blockSuccessors(sb, textEnd)
}

// blockSuccessors extracts the statically known control-flow successors of
// a superblock: conditional-exit targets, constant fall-through/call/host-
// call/client-request edges, and the return site of a direct call. Return
// instructions contribute nothing — their targets are exactly the call
// return sites discovered here.
func blockSuccessors(sb *vex.SuperBlock, textEnd uint64) []uint64 {
	var out []uint64
	add := func(a uint64) {
		if a >= guest.TextBase && a < textEnd && a%guest.InstrBytes == 0 {
			out = append(out, a)
		}
	}
	last := sb.GuestAddr
	for i := range sb.Stmts {
		s := &sb.Stmts[i]
		switch s.Kind {
		case vex.SIMark:
			last = s.Addr
		case vex.SExit:
			add(s.Target)
		}
	}
	switch sb.NextJK {
	case vex.JKBoring, vex.JKHostCall, vex.JKClientReq:
		if sb.Next.Kind == vex.KindConst {
			add(sb.Next.Const)
		}
	case vex.JKCall:
		if sb.Next.Kind == vex.KindConst {
			add(sb.Next.Const)
		}
		add(last + guest.InstrBytes)
	}
	return out
}
