package dbi_test

// Differential tests for tool access delivery: batched (one flush per
// superblock segment) against per-event (one callback per access, the
// reference semantics). The two modes must be indistinguishable to a tool —
// identical access streams in identical order, identical reports, identical
// counters — on both execution engines; batching may only change *how many
// times* the tool is entered, never *what* it observes.

import (
	"fmt"
	"io"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dbi"
	"repro/internal/drb"
	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/harness"
	"repro/internal/tools/memcheck"
	"repro/internal/tools/tasksan"
	"repro/internal/vex"
	"repro/internal/vm"
)

// sinkTool records the access stream delivered through the core's
// InstrumentAccesses path, under whichever delivery mode the core is in.
type sinkTool struct {
	dbi.NopTool
	log []accessRec
}

func (st *sinkTool) Name() string { return "sinklog" }

func (st *sinkTool) Instrument(c *dbi.Core, sb *vex.SuperBlock) *vex.SuperBlock {
	out, _, _ := c.InstrumentAccesses(sb, st)
	return out
}

// FlushAccesses implements dbi.AccessSink.
func (st *sinkTool) FlushAccesses(t *vm.Thread, batch []dbi.Access) {
	for i := range batch {
		a := &batch[i]
		st.log = append(st.log, accessRec{TID: t.ID, PC: a.PC, Store: a.Store, Addr: a.Addr, Wd: a.Wd})
	}
}

// deliveryState is one run's observable outcome plus the delivery counters.
type deliveryState struct {
	engineState
	DirtyCalls        uint64
	AccessesDelivered uint64
}

// runSink executes mk with the sink-logging tool under (engine, delivery).
func runSink(t *testing.T, mk func() *gbuild.Builder, engine string, d dbi.Delivery, extend, threads int, seed uint64) deliveryState {
	t.Helper()
	tool := &sinkTool{}
	res, inst, err := harness.BuildAndRun(mk(), harness.Setup{
		Tool: tool, Seed: seed, Threads: threads, Stdout: io.Discard,
		Engine: engine, Extend: extend, Delivery: d,
	})
	if err != nil {
		t.Fatalf("%s/%v: %v", engine, d, err)
	}
	if res.Err != nil {
		t.Fatalf("%s/%v: run: %v", engine, d, res.Err)
	}
	st := deliveryState{
		engineState: engineState{
			Exit:   res.ExitCode,
			Instrs: inst.M.InstrsExecuted,
			Blocks: inst.M.BlocksExecuted,
			Regs:   map[int][guest.NumRegs]uint64{},
			Mem:    inst.M.Mem.Hash(),
			Log:    tool.log,
		},
		DirtyCalls:        inst.Core.DirtyCalls,
		AccessesDelivered: inst.Core.AccessesDelivered,
	}
	for _, th := range inst.M.Threads() {
		st.Regs[th.ID] = th.Regs
	}
	return st
}

// diffDelivery proves per-event and batched delivery agree on everything a
// tool can observe, while batched enters the tool at most as often.
func diffDelivery(t *testing.T, name string, mk func() *gbuild.Builder, engine string, extend, threads int, seed uint64) {
	t.Helper()
	pe := runSink(t, mk, engine, dbi.DeliverPerEvent, extend, threads, seed)
	ba := runSink(t, mk, engine, dbi.DeliverBatched, extend, threads, seed)
	if pe.Exit != ba.Exit {
		t.Fatalf("%s: exit: per-event=%d batched=%d", name, pe.Exit, ba.Exit)
	}
	if pe.Instrs != ba.Instrs || pe.Blocks != ba.Blocks {
		t.Fatalf("%s: counts: per-event instrs=%d blocks=%d, batched instrs=%d blocks=%d",
			name, pe.Instrs, pe.Blocks, ba.Instrs, ba.Blocks)
	}
	if !reflect.DeepEqual(pe.Regs, ba.Regs) {
		t.Fatalf("%s: final registers diverge across delivery modes", name)
	}
	if pe.Mem != ba.Mem {
		t.Fatalf("%s: memory hash: per-event=%#x batched=%#x", name, pe.Mem, ba.Mem)
	}
	if len(pe.Log) != len(ba.Log) {
		t.Fatalf("%s: access log length: per-event=%d batched=%d", name, len(pe.Log), len(ba.Log))
	}
	for i := range pe.Log {
		if pe.Log[i] != ba.Log[i] {
			t.Fatalf("%s: access %d: per-event=%+v batched=%+v", name, i, pe.Log[i], ba.Log[i])
		}
	}
	if pe.AccessesDelivered != ba.AccessesDelivered {
		t.Fatalf("%s: accesses delivered: per-event=%d batched=%d",
			name, pe.AccessesDelivered, ba.AccessesDelivered)
	}
	if ba.DirtyCalls > pe.DirtyCalls {
		t.Fatalf("%s: batched delivery made MORE dirty calls (%d) than per-event (%d)",
			name, ba.DirtyCalls, pe.DirtyCalls)
	}
}

// TestDeliveryDifferentialDRB cross-checks the delivery modes on every
// DataRaceBench/TMB microbenchmark (the Table I workload), on both engines.
func TestDeliveryDifferentialDRB(t *testing.T) {
	for _, engine := range []string{dbi.EngineIR, dbi.EngineCompiled} {
		engine := engine
		for _, b := range drb.All() {
			b := b
			t.Run(engine+"/"+b.Name, func(t *testing.T) {
				diffDelivery(t, b.Name, b.Build, engine, 0, 4, 1)
			})
		}
	}
}

// TestDeliveryDifferentialListing4 covers the paper's running example.
func TestDeliveryDifferentialListing4(t *testing.T) {
	for _, engine := range []string{dbi.EngineIR, dbi.EngineCompiled} {
		diffDelivery(t, "task.c/"+engine, buildListing4, engine, 0, 4, 1)
	}
}

// TestDeliveryDifferentialFuzz cross-checks the delivery modes on generated
// programs, plain and with superblock extension, on both engines.
func TestDeliveryDifferentialFuzz(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			mk := func() *gbuild.Builder { return fuzzProgram(seed) }
			for _, engine := range []string{dbi.EngineIR, dbi.EngineCompiled} {
				diffDelivery(t, fmt.Sprintf("fuzz%d/%s", seed, engine), mk, engine, 0, 1, uint64(seed))
				diffDelivery(t, fmt.Sprintf("fuzz%d-ext/%s", seed, engine), mk, engine, 64, 1, uint64(seed))
			}
		})
	}
}

// runMemcheckDelivery runs mk under memcheck and returns the rendered report
// and findings.
func runMemcheckDelivery(t *testing.T, mk func() *gbuild.Builder, engine string, d dbi.Delivery, seed uint64) (string, []memcheck.Finding) {
	t.Helper()
	mc := memcheck.New()
	res, _, err := harness.BuildAndRun(mk(), harness.Setup{
		Tool: mc, Seed: seed, Threads: 4, Stdout: io.Discard,
		Engine: engine, Delivery: d,
	})
	if err != nil {
		t.Fatalf("%s/%v: %v", engine, d, err)
	}
	if res.Err != nil {
		t.Fatalf("%s/%v: run: %v", engine, d, res.Err)
	}
	return mc.String(), mc.Findings
}

// TestDeliveryDifferentialMemcheck asserts memcheck's user-visible reports
// are bit-identical across delivery modes on the Table I suite, both engines.
func TestDeliveryDifferentialMemcheck(t *testing.T) {
	progs := []struct {
		name string
		mk   func() *gbuild.Builder
	}{{"task.c", buildListing4}}
	for _, b := range drb.All() {
		progs = append(progs, struct {
			name string
			mk   func() *gbuild.Builder
		}{b.Name, b.Build})
	}
	for _, engine := range []string{dbi.EngineIR, dbi.EngineCompiled} {
		engine := engine
		for _, p := range progs {
			p := p
			t.Run(engine+"/"+p.name, func(t *testing.T) {
				peStr, peF := runMemcheckDelivery(t, p.mk, engine, dbi.DeliverPerEvent, 1)
				baStr, baF := runMemcheckDelivery(t, p.mk, engine, dbi.DeliverBatched, 1)
				if peStr != baStr {
					t.Fatalf("report text diverges:\nper-event:\n%s\nbatched:\n%s", peStr, baStr)
				}
				if !reflect.DeepEqual(peF, baF) {
					t.Fatalf("findings diverge: per-event=%+v batched=%+v", peF, baF)
				}
			})
		}
	}
}

// runTasksanDelivery runs mk under a tasksan configured for the IR path
// (CompileTime off, so delivery actually goes through the DBI engines) and
// returns the rendered report set and the analysis stats.
func runTasksanDelivery(t *testing.T, mk func() *gbuild.Builder, engine string, d dbi.Delivery, seed uint64) (string, int, core.Stats) {
	t.Helper()
	ts := tasksan.New()
	ts.Opt.CompileTime = false
	res, _, err := harness.BuildAndRun(mk(), harness.Setup{
		Tool: ts, Seed: seed, Threads: 4, Stdout: io.Discard,
		Engine: engine, Delivery: d,
	})
	if err != nil {
		t.Fatalf("%s/%v: %v", engine, d, err)
	}
	if res.Err != nil {
		t.Fatalf("%s/%v: run: %v", engine, d, res.Err)
	}
	return ts.Reports.String(), ts.RaceCount, ts.Stats
}

// TestDeliveryDifferentialTasksan asserts the segment-graph race detector
// produces identical reports and analysis counters across delivery modes on
// the Table I suite, both engines.
func TestDeliveryDifferentialTasksan(t *testing.T) {
	for _, engine := range []string{dbi.EngineIR, dbi.EngineCompiled} {
		engine := engine
		for _, b := range drb.All() {
			b := b
			t.Run(engine+"/"+b.Name, func(t *testing.T) {
				peStr, peN, peStats := runTasksanDelivery(t, b.Build, engine, dbi.DeliverPerEvent, 1)
				baStr, baN, baStats := runTasksanDelivery(t, b.Build, engine, dbi.DeliverBatched, 1)
				if peN != baN {
					t.Fatalf("race count diverges: per-event=%d batched=%d", peN, baN)
				}
				if peStr != baStr {
					t.Fatalf("report text diverges:\nper-event:\n%s\nbatched:\n%s", peStr, baStr)
				}
				if !reflect.DeepEqual(peStats, baStats) {
					t.Fatalf("analysis stats diverge:\nper-event: %+v\nbatched:   %+v", peStats, baStats)
				}
			})
		}
	}
}
