package dbi_test

import (
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dbi"
	"repro/internal/drb"
	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/harness"
	"repro/internal/lulesh"
	"repro/internal/omp"
	"repro/internal/vex"
	"repro/internal/vm"
)

// accessRec is one tool-visible memory access: what a real analysis tool
// would base its verdicts on. If the engines disagree on this stream, they
// are not interchangeable no matter how equal the final state looks.
type accessRec struct {
	TID   int
	PC    uint64
	Store bool
	Addr  uint64
	Wd    uint8
}

// logTool records every guest load and store through injected dirty calls.
type logTool struct {
	dbi.NopTool
	log []accessRec
}

func (lt *logTool) Name() string { return "log" }

func (lt *logTool) Instrument(_ *dbi.Core, sb *vex.SuperBlock) *vex.SuperBlock {
	out := &vex.SuperBlock{GuestAddr: sb.GuestAddr, NTemps: sb.NTemps, Next: sb.Next, NextJK: sb.NextJK, Aux: sb.Aux}
	pc := sb.GuestAddr
	for _, s := range sb.Stmts {
		switch s.Kind {
		case vex.SIMark:
			pc = s.Addr
		case vex.SWrTmpLoad:
			out.Dirty("log_load", lt.record(pc, false, uint8(s.Wd)), s.E1)
		case vex.SStore:
			out.Dirty("log_store", lt.record(pc, true, uint8(s.Wd)), s.E1)
		}
		out.Stmts = append(out.Stmts, s)
	}
	return out
}

func (lt *logTool) record(pc uint64, store bool, wd uint8) vex.DirtyFn {
	return func(ctx any, args []uint64) uint64 {
		t := ctx.(*vm.Thread)
		lt.log = append(lt.log, accessRec{TID: t.ID, PC: pc, Store: store, Addr: args[0], Wd: wd})
		return 0
	}
}

// engineState is the full observable outcome of a run: guest-architectural
// state plus the tool's view of it.
type engineState struct {
	Exit   uint64
	Instrs uint64
	Blocks uint64
	Regs   map[int][guest.NumRegs]uint64
	Mem    uint64
	Log    []accessRec
}

// runEngine executes the program built by mk under the given engine and
// returns its observable state.
func runEngine(t *testing.T, mk func() *gbuild.Builder, engine string, extend, threads int, seed uint64) engineState {
	t.Helper()
	tool := &logTool{}
	res, inst, err := harness.BuildAndRun(mk(), harness.Setup{
		Tool: tool, Seed: seed, Threads: threads, Stdout: io.Discard,
		Engine: engine, Extend: extend,
	})
	if err != nil {
		t.Fatalf("%s: %v", engine, err)
	}
	if res.Err != nil {
		t.Fatalf("%s: run: %v", engine, res.Err)
	}
	st := engineState{
		Exit:   res.ExitCode,
		Instrs: inst.M.InstrsExecuted,
		Blocks: inst.M.BlocksExecuted,
		Regs:   map[int][guest.NumRegs]uint64{},
		Mem:    inst.M.Mem.Hash(),
		Log:    tool.log,
	}
	for _, th := range inst.M.Threads() {
		st.Regs[th.ID] = th.Regs
	}
	return st
}

// diffEngines runs mk under the IR oracle and the compiled engine and
// asserts bit-identical observable state.
func diffEngines(t *testing.T, name string, mk func() *gbuild.Builder, extend, threads int, seed uint64) {
	t.Helper()
	ir := runEngine(t, mk, dbi.EngineIR, extend, threads, seed)
	co := runEngine(t, mk, dbi.EngineCompiled, extend, threads, seed)
	if ir.Exit != co.Exit {
		t.Fatalf("%s: exit: ir=%d compiled=%d", name, ir.Exit, co.Exit)
	}
	if ir.Instrs != co.Instrs || ir.Blocks != co.Blocks {
		t.Fatalf("%s: counts: ir instrs=%d blocks=%d, compiled instrs=%d blocks=%d",
			name, ir.Instrs, ir.Blocks, co.Instrs, co.Blocks)
	}
	if !reflect.DeepEqual(ir.Regs, co.Regs) {
		t.Fatalf("%s: final registers diverge", name)
	}
	if ir.Mem != co.Mem {
		t.Fatalf("%s: memory hash: ir=%#x compiled=%#x", name, ir.Mem, co.Mem)
	}
	if len(ir.Log) != len(co.Log) {
		t.Fatalf("%s: access log length: ir=%d compiled=%d", name, len(ir.Log), len(co.Log))
	}
	for i := range ir.Log {
		if ir.Log[i] != co.Log[i] {
			t.Fatalf("%s: access %d: ir=%+v compiled=%+v", name, i, ir.Log[i], co.Log[i])
		}
	}
}

// TestDifferentialDRB proves engine equivalence on every DataRaceBench/TMB
// microbenchmark in the suite — the paper's Table I workload.
func TestDifferentialDRB(t *testing.T) {
	for _, b := range drb.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			diffEngines(t, b.Name, b.Build, 0, 4, 1)
		})
	}
}

// TestDifferentialLulesh covers the proxy application (nested parallelism,
// task dependences, reductions, heavy host-call traffic).
func TestDifferentialLulesh(t *testing.T) {
	mk := func() *gbuild.Builder {
		b, err := lulesh.Build(lulesh.Params{S: 4, TEL: 2, TNL: 2, Iters: 1})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	diffEngines(t, "lulesh", mk, 0, 4, 1)
}

// TestDifferentialListing4 covers the paper's running example (OMP tasks).
func TestDifferentialListing4(t *testing.T) {
	diffEngines(t, "task.c", buildListing4, 0, 4, 1)
}

func buildListing4() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("xptr", 8)
	const r0, r1, r2 = guest.R0, guest.R1, guest.R2
	task := func(name string, line int, val int32) {
		f := b.Func(name, "task.c")
		f.Line(line)
		f.LoadSym(r1, "xptr")
		f.Ld(8, r1, r1, 0)
		f.Ldi(r2, val)
		f.St(4, r1, 0, r2)
		f.Ret()
	}
	task("task_a", 8, 42)
	task("task_b", 11, 43)
	f := b.Func("micro", "task.c")
	f.Enter(0)
	fn := f
	omp.SingleNowait(f, func() {
		omp.EmitTask(fn, omp.TaskOpts{Fn: "task_a"})
		omp.EmitTask(fn, omp.TaskOpts{Fn: "task_b"})
	})
	f.Leave()
	f = b.Func("main", "task.c")
	f.Enter(0)
	f.Ldi(r0, 8)
	f.Hcall("malloc")
	f.LoadSym(r1, "xptr")
	f.St(8, r1, 0, r0)
	f.Ldi(r1, 0)
	omp.Parallel(f, "micro", r1, 0)
	f.Ldi(r0, 0)
	f.Hlt(r0)
	return b
}

// fuzzProgram deterministically generates a random single-threaded guest
// program: ALU soup over a register window, loads and stores into a global
// array at random aligned offsets, forward branches, all wrapped in a
// bounded countdown loop so blocks re-execute (exercising the caches and
// chaining, not just translation).
func fuzzProgram(seed int64) *gbuild.Builder {
	rng := rand.New(rand.NewSource(seed))
	b := gbuild.New()
	b.Global("arr", 256)
	f := b.Func("main", fmt.Sprintf("fuzz%d.c", seed))

	// r10 = loop counter, r11 = base of arr, r0..r7 = data window.
	f.LoadSym(guest.R11, "arr")
	for r := uint8(0); r < 8; r++ {
		f.Ldi(r, rng.Int31())
	}
	f.Ldi(guest.R10, int32(2+rng.Intn(6)))
	f.Ldi(guest.R12, 0)
	head := f.NewLabel()
	f.Bind(head)

	alu := []guest.Opcode{
		guest.OpAdd, guest.OpSub, guest.OpMul, guest.OpDiv, guest.OpRem,
		guest.OpAnd, guest.OpOr, guest.OpXor, guest.OpShl, guest.OpShr,
		guest.OpSar, guest.OpSeq, guest.OpSne, guest.OpSlt, guest.OpSltu,
	}
	widths := []uint8{1, 2, 4, 8}
	n := 10 + rng.Intn(30)
	for i := 0; i < n; i++ {
		rd := uint8(rng.Intn(8))
		rs1 := uint8(rng.Intn(8))
		rs2 := uint8(rng.Intn(8))
		switch rng.Intn(6) {
		case 0, 1, 2:
			f.ALU(alu[rng.Intn(len(alu))], rd, rs1, rs2)
		case 3:
			wd := widths[rng.Intn(len(widths))]
			off := int32(rng.Intn(256/int(wd))) * int32(wd)
			f.St(wd, guest.R11, off, rs1)
		case 4:
			wd := widths[rng.Intn(len(widths))]
			off := int32(rng.Intn(256/int(wd))) * int32(wd)
			f.Ld(wd, rd, guest.R11, off)
		case 5:
			// Forward branch over a couple of ops: both paths stay
			// inside the loop body.
			skip := f.NewLabel()
			f.Br(guest.OpBeq, rs1, rs2, skip)
			f.ALU(alu[rng.Intn(len(alu))], rd, rs1, rs2)
			f.Jmp(skip) // adjacent unconditional jump: an extension seam
			f.Bind(skip)
		}
	}
	f.Addi(guest.R10, guest.R10, -1)
	f.Bne(guest.R10, guest.R12, head)

	// Fold the window into r0 so the exit code depends on everything.
	for r := uint8(1); r < 8; r++ {
		f.ALU(guest.OpXor, guest.R0, guest.R0, r)
	}
	f.Andi(guest.R0, guest.R0, 0xff)
	f.Hlt(guest.R0)
	return b
}

// TestDifferentialFuzz runs generated programs under both engines, plain and
// with superblock extension (same budget on both sides, so the schedules
// stay comparable).
func TestDifferentialFuzz(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			mk := func() *gbuild.Builder { return fuzzProgram(seed) }
			diffEngines(t, fmt.Sprintf("fuzz%d", seed), mk, 0, 1, uint64(seed))
			diffEngines(t, fmt.Sprintf("fuzz%d-ext", seed), mk, 64, 1, uint64(seed))
		})
	}
}
