package dbi

import (
	"fmt"

	"repro/internal/vex"
	"repro/internal/vm"
)

// irEngine is the heavyweight execution engine: every block runs through
// translated (and tool-instrumented) IR. This is intrinsically slower than
// the direct interpreter — the source of the paper's 10–100x overhead.
type irEngine struct {
	c    *Core
	tmps []uint64
	args []uint64
}

// RunBlock implements vm.Engine.
func (e *irEngine) RunBlock(m *vm.Machine, t *vm.Thread) (res vm.RunResult, err error) {
	if t.PC == vm.ThreadExitAddr {
		return m.ExitThread(t), nil
	}
	sb, err := e.c.translate(t.PC, t.ID)
	if err != nil {
		return vm.RunOK, err
	}
	if uint32(cap(e.tmps)) < sb.NTemps {
		e.tmps = make([]uint64, sb.NTemps)
	}
	tmps := e.tmps[:cap(e.tmps)]
	lastIMark := sb.GuestAddr

	// The IR engine only updates t.PC at block exits, so a fault mid-block
	// would be attributed to the block entry. Re-panic with the last IMark so
	// the VM's crash containment reports the precise faulting instruction.
	defer func() {
		if r := recover(); r != nil {
			if ep, ok := r.(*vm.EnginePanic); ok {
				panic(ep)
			}
			panic(&vm.EnginePanic{PC: lastIMark, Val: r})
		}
	}()

	eval := func(x vex.Expr) uint64 {
		switch x.Kind {
		case vex.KindConst:
			return x.Const
		case vex.KindRdTmp:
			return tmps[x.Tmp]
		case vex.KindGetReg:
			return t.Regs[x.Reg]
		}
		panic("dbi: bad expr kind")
	}

	for i := range sb.Stmts {
		s := &sb.Stmts[i]
		switch s.Kind {
		case vex.SIMark:
			lastIMark = s.Addr
			m.InstrsExecuted++
			t.InstrsExecuted++
		case vex.SWrTmpExpr:
			tmps[s.Tmp] = eval(s.E1)
		case vex.SWrTmpBinop:
			tmps[s.Tmp] = vex.EvalBinop(s.Op, eval(s.E1), eval(s.E2))
		case vex.SWrTmpUnop:
			tmps[s.Tmp] = vex.EvalUnop(s.Op, eval(s.E1))
		case vex.SWrTmpLoad:
			tmps[s.Tmp] = m.Mem.Load(eval(s.E1), uint8(s.Wd))
		case vex.SStore:
			m.Mem.Store(eval(s.E1), uint8(s.Wd), eval(s.E2))
		case vex.SPutReg:
			t.Regs[s.Reg] = eval(s.E1)
		case vex.SExit:
			if eval(s.E1) != 0 {
				t.PC = s.Target
				return vm.RunOK, nil
			}
		case vex.SDirty:
			if cap(e.args) < len(s.Args) {
				e.args = make([]uint64, len(s.Args))
			}
			args := e.args[:len(s.Args)]
			for j, a := range s.Args {
				args[j] = eval(a)
			}
			r := s.Fn(t, args)
			if s.Tmp != vex.NoTemp {
				tmps[s.Tmp] = r
			}
		default:
			return vm.RunOK, fmt.Errorf("dbi: bad statement kind %d", s.Kind)
		}
	}

	next := eval(sb.Next)
	switch sb.NextJK {
	case vex.JKBoring:
		t.PC = next
		return vm.RunOK, nil
	case vex.JKCall:
		t.PushFrame(next, lastIMark)
		t.PC = next
		return vm.RunOK, nil
	case vex.JKRet:
		t.PopFrame()
		t.PC = next
		if next == vm.ThreadExitAddr {
			return m.ExitThread(t), nil
		}
		return vm.RunOK, nil
	case vex.JKHostCall:
		t.PC = next
		return m.DoHostCall(t, sb.Aux), nil
	case vex.JKClientReq:
		t.PC = next
		m.DoClientRequest(t, sb.Aux)
		return vm.RunOK, nil
	case vex.JKExitThread:
		t.PC = next
		return m.ExitThread(t), nil
	}
	return vm.RunOK, fmt.Errorf("dbi: bad jump kind %v", sb.NextJK)
}
