package dbi

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/vex"
	"repro/internal/vm"
)

// evalExpr evaluates a VEX expression against the block's temp arena and the
// thread's registers. A package-level function (rather than a closure inside
// RunBlock) so the hot path stays allocation-free: the closure form forced a
// heap allocation on every dispatched block.
func evalExpr(x vex.Expr, tmps []uint64, regs *[guest.NumRegs]uint64) uint64 {
	switch x.Kind {
	case vex.KindConst:
		return x.Const
	case vex.KindRdTmp:
		return tmps[x.Tmp]
	case vex.KindGetReg:
		return regs[x.Reg]
	}
	panic("dbi: bad expr kind")
}

// irEngine is the heavyweight execution engine: every block runs through
// translated (and tool-instrumented) IR. This is intrinsically slower than
// the direct interpreter — the source of the paper's 10–100x overhead.
type irEngine struct {
	c    *Core
	tmps []uint64
	args []uint64
}

// RunBlock implements vm.Engine.
func (e *irEngine) RunBlock(m *vm.Machine, t *vm.Thread) (res vm.RunResult, err error) {
	if t.PC == vm.ThreadExitAddr {
		return m.ExitThread(t), nil
	}
	sb, err := e.c.translate(t.PC, t.ID)
	if err != nil {
		return vm.RunOK, err
	}
	if uint32(cap(e.tmps)) < sb.NTemps {
		e.tmps = make([]uint64, sb.NTemps)
	}
	tmps := e.tmps[:cap(e.tmps)]
	lastIMark := sb.GuestAddr

	// The IR engine only updates t.PC at block exits, so a fault mid-block
	// would be attributed to the block entry. Re-panic with the last IMark so
	// the VM's crash containment reports the precise faulting instruction.
	defer func() {
		if r := recover(); r != nil {
			if ep, ok := r.(*vm.EnginePanic); ok {
				panic(ep)
			}
			panic(&vm.EnginePanic{PC: lastIMark, Val: r})
		}
	}()

	regs := &t.Regs

	for i := range sb.Stmts {
		s := &sb.Stmts[i]
		switch s.Kind {
		case vex.SIMark:
			lastIMark = s.Addr
			m.InstrsExecuted++
			t.InstrsExecuted++
		case vex.SWrTmpExpr:
			tmps[s.Tmp] = evalExpr(s.E1, tmps, regs)
		case vex.SWrTmpBinop:
			// Pre-resolved function-pointer dispatch (the compiled
			// engine's table) instead of re-switching on the op.
			tmps[s.Tmp] = vex.BinopFn(s.Op)(evalExpr(s.E1, tmps, regs), evalExpr(s.E2, tmps, regs))
		case vex.SWrTmpUnop:
			tmps[s.Tmp] = vex.UnopFn(s.Op)(evalExpr(s.E1, tmps, regs))
		case vex.SWrTmpLoad:
			tmps[s.Tmp] = m.Mem.Load(evalExpr(s.E1, tmps, regs), uint8(s.Wd))
		case vex.SStore:
			m.Mem.Store(evalExpr(s.E1, tmps, regs), uint8(s.Wd), evalExpr(s.E2, tmps, regs))
		case vex.SPutReg:
			t.Regs[s.Reg] = evalExpr(s.E1, tmps, regs)
		case vex.SExit:
			if evalExpr(s.E1, tmps, regs) != 0 {
				t.PC = s.Target
				return vm.RunOK, nil
			}
		case vex.SDirty:
			if cap(e.args) < len(s.Args) {
				e.args = make([]uint64, len(s.Args))
			}
			args := e.args[:len(s.Args)]
			for j, a := range s.Args {
				args[j] = evalExpr(a, tmps, regs)
			}
			e.c.DirtyCalls++
			r := s.Fn(t, args)
			if s.Tmp != vex.NoTemp {
				tmps[s.Tmp] = r
			}
		default:
			return vm.RunOK, fmt.Errorf("dbi: bad statement kind %d", s.Kind)
		}
	}

	next := evalExpr(sb.Next, tmps, regs)
	switch sb.NextJK {
	case vex.JKBoring:
		t.PC = next
		return vm.RunOK, nil
	case vex.JKCall:
		t.PushFrame(next, lastIMark)
		t.PC = next
		return vm.RunOK, nil
	case vex.JKRet:
		t.PopFrame()
		t.PC = next
		if next == vm.ThreadExitAddr {
			return m.ExitThread(t), nil
		}
		return vm.RunOK, nil
	case vex.JKHostCall:
		t.PC = next
		return m.DoHostCall(t, sb.Aux), nil
	case vex.JKClientReq:
		t.PC = next
		m.DoClientRequest(t, sb.Aux)
		return vm.RunOK, nil
	case vex.JKExitThread:
		t.PC = next
		return m.ExitThread(t), nil
	}
	return vm.RunOK, fmt.Errorf("dbi: bad jump kind %v", sb.NextJK)
}
