package dbi_test

import (
	"testing"

	"repro/internal/dbi"
	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/vm"
)

// buildSelfLoop builds a block that loads, stores and jumps back to itself:
// one RunBlock call executes exactly one block and leaves the thread parked
// on the same block, which makes per-dispatch allocation measurable.
func buildSelfLoop(t testing.TB) (*guest.Image, uint64) {
	t.Helper()
	b := gbuild.New()
	arr := b.Global("arr", 64)
	f := b.Func("main", "loop.c")
	head := f.NewLabel()
	f.Bind(head)
	f.Ld(8, guest.R2, guest.R6, 0)
	f.Addi(guest.R2, guest.R2, 1)
	f.St(8, guest.R6, 0, guest.R2)
	f.Jmp(head)
	im, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	return im, arr
}

// engineAllocs measures steady-state heap allocations per dispatched block.
func engineAllocs(t *testing.T, engine string) float64 {
	t.Helper()
	im, arr := buildSelfLoop(t)
	m, err := vm.New(im, vm.NewHostRegistry(), vm.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	core := dbi.New(m, &countTool{})
	if err := core.SelectEngine(engine); err != nil {
		t.Fatal(err)
	}
	th := m.Threads()[0]
	th.Regs[guest.R6] = arr
	// Prime: translate, compile and chain the loop block.
	for i := 0; i < 8; i++ {
		if _, err := m.Eng.RunBlock(m, th); err != nil {
			t.Fatal(err)
		}
	}
	return testing.AllocsPerRun(200, func() {
		if _, err := m.Eng.RunBlock(m, th); err != nil {
			t.Fatal(err)
		}
	})
}

// TestRunBlockDoesNotAllocate is the allocs/op guard: the hot dispatch path
// of both engines must stay allocation-free in steady state (instrumented
// block with a load, a store, two dirty calls and a chained jump). A
// regression here is the paper's 100x overhead quietly getting worse.
func TestRunBlockDoesNotAllocate(t *testing.T) {
	for _, engine := range []string{dbi.EngineIR, dbi.EngineCompiled} {
		if n := engineAllocs(t, engine); n != 0 {
			t.Errorf("%s engine: %.1f allocs per block, want 0", engine, n)
		}
	}
}
