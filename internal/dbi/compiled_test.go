package dbi_test

import (
	"strings"
	"testing"

	"repro/internal/dbi"
	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/tools/archer"
	"repro/internal/vex"
)

func TestCompiledEngineIsDefaultAndChains(t *testing.T) {
	im := buildFib(t, 12)
	tool := &countTool{}
	m, core, _ := newMachine(t, im, tool, 1)
	if err := core.Run(); err != nil {
		t.Fatal(err)
	}
	if m.ExitCode() != 144 {
		t.Fatalf("fib(12) = %d, want 144", m.ExitCode())
	}
	if core.Compiles == 0 {
		t.Fatal("nothing compiled: the compiled engine is not the default")
	}
	if core.Compiles != core.Translations {
		t.Errorf("Compiles=%d Translations=%d, want equal (one lowering per translation)",
			core.Compiles, core.Translations)
	}
	// fib's hot blocks chain: most dispatches must bypass the cache map.
	if core.ChainHits == 0 {
		t.Fatal("no chain hits")
	}
	if core.ChainHits < core.ChainMisses {
		t.Errorf("chaining ineffective: %d hits, %d misses", core.ChainHits, core.ChainMisses)
	}
	if tool.loads == 0 || tool.stores == 0 {
		t.Fatalf("instrumentation lost: loads=%d stores=%d", tool.loads, tool.stores)
	}
}

func TestSelectEngine(t *testing.T) {
	im := buildFib(t, 8)
	_, core, _ := newMachine(t, im, &countTool{}, 1)
	if err := core.SelectEngine("bogus"); err == nil || !strings.Contains(err.Error(), "unknown engine") {
		t.Fatalf("want unknown-engine error, got %v", err)
	}
	if err := core.SelectEngine(dbi.EngineIR); err != nil {
		t.Fatal(err)
	}
	if err := core.Run(); err != nil {
		t.Fatal(err)
	}
	if core.Compiles != 0 {
		t.Fatalf("IR engine compiled %d blocks", core.Compiles)
	}

	// A compile-time tool (Archer) fixes the direct engine; overriding it
	// would silently drop its access hooks.
	_, core2, _ := newMachine(t, im, archer.New(), 1)
	if err := core2.SelectEngine(dbi.EngineCompiled); err == nil || !strings.Contains(err.Error(), "fixed") {
		t.Fatalf("want engine-fixed error, got %v", err)
	}
}

// clearTool clears the translation cache mid-run: after `after` instrumented
// block entries, the next entry calls ClearCache. This is the discard-
// translations path every real DBI framework needs (self-modifying code,
// tool-driven re-instrumentation) — and the hardest case for chaining,
// because cached successor pointers and per-thread predictions must all die
// with the generation.
type clearTool struct {
	dbi.NopTool
	core    *dbi.Core
	after   int
	entries int
	cleared int
}

func (ct *clearTool) Name() string { return "clear" }

func (ct *clearTool) Attach(c *dbi.Core) { ct.core = c }

func (ct *clearTool) Instrument(_ *dbi.Core, sb *vex.SuperBlock) *vex.SuperBlock {
	out := &vex.SuperBlock{GuestAddr: sb.GuestAddr, NTemps: sb.NTemps, Next: sb.Next, NextJK: sb.NextJK, Aux: sb.Aux}
	out.Dirty("clear_probe", func(_ any, _ []uint64) uint64 {
		ct.entries++
		if ct.entries == ct.after {
			ct.core.ClearCache()
			ct.cleared++
		}
		return 0
	})
	out.Stmts = append(out.Stmts, sb.Stmts...)
	return out
}

func TestClearCacheInvalidatesChains(t *testing.T) {
	im := buildFib(t, 10)

	// Baseline: how many distinct translations does the run need?
	_, coreRef, _ := newMachine(t, im, &countTool{}, 1)
	if err := coreRef.Run(); err != nil {
		t.Fatal(err)
	}
	base := coreRef.Translations

	tool := &clearTool{after: 50}
	m, core, _ := newMachine(t, im, tool, 1)
	if err := core.Run(); err != nil {
		t.Fatal(err)
	}
	if m.ExitCode() != 55 {
		t.Fatalf("fib(10) across a cache clear = %d, want 55", m.ExitCode())
	}
	if tool.cleared != 1 {
		t.Fatalf("cleared %d times, want 1", tool.cleared)
	}
	if core.CacheGen() != 1 {
		t.Fatalf("CacheGen = %d, want 1", core.CacheGen())
	}
	// The live blocks were retranslated (and recompiled) after the clear.
	if core.Translations <= base {
		t.Fatalf("no retranslation after clear: %d translations, baseline %d",
			core.Translations, base)
	}
	if core.Compiles != core.Translations {
		t.Errorf("Compiles=%d Translations=%d after clear", core.Compiles, core.Translations)
	}
}

func TestCompiledHandlesValidateAndHostCalls(t *testing.T) {
	// The malloc test exercises JKHostCall, allocation stacks and PopFrame
	// under the compiled engine (newMachine sets Validate).
	im := buildFib(t, 12)
	mIR, coreIR, _ := newMachine(t, im, &countTool{}, 7)
	if err := coreIR.SelectEngine(dbi.EngineIR); err != nil {
		t.Fatal(err)
	}
	if err := coreIR.Run(); err != nil {
		t.Fatal(err)
	}
	mC, coreC, _ := newMachine(t, im, &countTool{}, 7)
	if err := coreC.Run(); err != nil {
		t.Fatal(err)
	}
	if mIR.ExitCode() != mC.ExitCode() || mIR.InstrsExecuted != mC.InstrsExecuted {
		t.Fatalf("ir exit=%d instrs=%d, compiled exit=%d instrs=%d",
			mIR.ExitCode(), mIR.InstrsExecuted, mC.ExitCode(), mC.InstrsExecuted)
	}
}

// buildJumpLoop builds a countdown loop whose body hops through an
// unconditional jump every iteration — the shape superblock extension fuses.
func buildJumpLoop(t testing.TB, n int32) *guest.Image {
	t.Helper()
	b := gbuild.New()
	f := b.Func("main", "loop.c")
	f.Ldi(guest.R1, n)
	f.Ldi(guest.R0, 0)
	f.Ldi(guest.R2, 0)
	head := f.NewLabel()
	mid := f.NewLabel()
	f.Bind(head)
	f.Add(guest.R0, guest.R0, guest.R1)
	f.Jmp(mid) // extension seam
	f.Bind(mid)
	f.Addi(guest.R1, guest.R1, -1)
	f.Bne(guest.R1, guest.R2, head)
	f.Hlt(guest.R0)
	im, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestExtendBudgetFusesJumps(t *testing.T) {
	im := buildJumpLoop(t, 20)
	const want = 20 * 21 / 2

	run := func(extend int) (*dbi.Core, uint64, uint64, uint64) {
		m, core, _ := newMachine(t, im, &countTool{}, 3)
		core.ExtendBudget = extend
		if err := core.Run(); err != nil {
			t.Fatal(err)
		}
		return core, m.ExitCode(), m.InstrsExecuted, m.BlocksExecuted
	}

	core0, exit0, instrs0, blocks0 := run(0)
	if core0.ExtendSeams != 0 {
		t.Fatalf("seams without extension: %d", core0.ExtendSeams)
	}
	core1, exit1, instrs1, blocks1 := run(128)
	if exit0 != want || exit1 != want {
		t.Fatalf("exits: %d, %d, want %d", exit0, exit1, want)
	}
	if instrs0 != instrs1 {
		t.Fatalf("instruction counts differ under extension: %d vs %d", instrs0, instrs1)
	}
	if core1.ExtendSeams == 0 {
		t.Fatal("extension fused no jumps")
	}
	// Fused jumps mean fewer, bigger blocks for the same instruction stream.
	if blocks1 >= blocks0 {
		t.Fatalf("extension did not reduce dispatches: %d vs %d blocks", blocks1, blocks0)
	}
	// The IR engine executes extended translations identically.
	mIR, coreIR, _ := newMachine(t, im, &countTool{}, 3)
	coreIR.ExtendBudget = 128
	if err := coreIR.SelectEngine(dbi.EngineIR); err != nil {
		t.Fatal(err)
	}
	if err := coreIR.Run(); err != nil {
		t.Fatal(err)
	}
	if mIR.ExitCode() != want || mIR.InstrsExecuted != instrs1 {
		t.Fatalf("ir under extension: exit=%d instrs=%d, want %d/%d",
			mIR.ExitCode(), mIR.InstrsExecuted, want, instrs1)
	}
}

func TestEngineInstrumentationParity(t *testing.T) {
	// Both engines must call the same dirty helpers the same number of
	// times — the tool-facing half of engine equivalence.
	im := buildFib(t, 11)
	irTool, cTool := &countTool{}, &countTool{}

	_, coreIR, _ := newMachine(t, im, irTool, 5)
	if err := coreIR.SelectEngine(dbi.EngineIR); err != nil {
		t.Fatal(err)
	}
	if err := coreIR.Run(); err != nil {
		t.Fatal(err)
	}
	_, coreC, _ := newMachine(t, im, cTool, 5)
	if err := coreC.Run(); err != nil {
		t.Fatal(err)
	}
	if irTool.loads != cTool.loads || irTool.stores != cTool.stores {
		t.Fatalf("tool callbacks diverge: ir loads=%d stores=%d, compiled loads=%d stores=%d",
			irTool.loads, irTool.stores, cTool.loads, cTool.stores)
	}
}
