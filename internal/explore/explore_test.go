package explore_test

import (
	"strings"
	"testing"

	"repro/internal/explore"
	"repro/internal/gbuild"
	"repro/internal/harness"
	"repro/internal/lulesh"
	"repro/internal/omp"
	"repro/internal/ompt"
)

func racyLulesh() *gbuild.Builder {
	b, err := lulesh.Build(lulesh.Params{S: 6, TEL: 4, TNL: 4, Iters: 2, Racy: true})
	if err != nil {
		panic(err)
	}
	return b
}

// TestTaskgrindScheduleIndependent: the post-mortem segment analysis finds
// the same count under every schedule — the property that distinguishes it
// from online detectors in Table II.
func TestTaskgrindScheduleIndependent(t *testing.T) {
	out, err := explore.Run(racyLulesh, "taskgrind", 4, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Stable() {
		t.Fatalf("taskgrind counts vary: %v", out.Counts)
	}
	if out.Min == 0 {
		t.Fatal("taskgrind found nothing on racy LULESH")
	}
	if !strings.Contains(out.String(), "stable") {
		t.Errorf("summary: %s", out)
	}
}

// TestArcherScheduleSensitive: the online vector-clock detector's counts
// depend on which interleaving ran — the "149 to 273" phenomenon.
func TestArcherScheduleSensitive(t *testing.T) {
	// A program with many racing task pairs gives Archer room to vary:
	// which pairs actually collide depends on stealing.
	build := func() *gbuild.Builder {
		b := omp.NewProgram()
		b.Global("g", 8*4)
		for i, name := range []string{"wa", "wb", "wc", "wd"} {
			f := b.Func(name, "var.c")
			f.Line(5 + i)
			for j := int32(0); j < 4; j++ {
				f.LoadSym(1, "g")
				f.Ld(8, 2, 1, j*8)
				f.Addi(2, 2, 1)
				f.St(8, 1, j*8, 2)
			}
			f.Ret()
		}
		f := b.Func("micro", "var.c")
		f.Enter(0)
		fn := f
		omp.SingleNowait(f, func() {
			for _, name := range []string{"wa", "wb", "wc", "wd"} {
				omp.EmitTask(fn, omp.TaskOpts{Fn: name})
			}
			omp.Taskwait(fn)
		})
		f.Leave()
		f = b.Func("main", "var.c")
		f.Enter(0)
		f.Ldi(1, 0)
		omp.Parallel(f, "micro", 1, 4)
		f.Ldi(0, 0)
		f.Hlt(0)
		_ = ompt.DepIn
		return b
	}
	out, err := explore.Run(build, "archer", 4, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out.Max == 0 {
		t.Fatal("archer never detected anything")
	}
	if out.Stable() {
		t.Logf("archer unexpectedly stable at %d (acceptable but unusual): %v", out.Min, out.Counts)
	}
}

// TestParallelWorkersMatchSerial: concurrency in the harness must not
// change results.
func TestParallelWorkersMatchSerial(t *testing.T) {
	par, err := explore.Run(racyLulesh, "taskgrind", 4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	ser, err := explore.Run(racyLulesh, "taskgrind", 4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range par.Counts {
		if par.Counts[i] != ser.Counts[i] {
			t.Fatalf("worker parallelism changed results: %v vs %v", par.Counts, ser.Counts)
		}
	}
}

// TestBadToolPropagates.
func TestBadToolPropagates(t *testing.T) {
	if _, err := explore.Run(racyLulesh, "nonesuch", 4, 2, 2); err == nil {
		t.Fatal("unknown tool accepted")
	}
	if _, err := explore.RunSupervised(racyLulesh, "nonesuch", 4, 2, 2, harness.SuperviseOpts{}); err == nil {
		t.Fatal("unknown tool accepted by supervised sweep")
	}
}

// crasherProgram races an "init" task that publishes a valid pointer against
// a "deref" task that stores through it: schedules where the thief runs
// deref before init's store take a wild store through NULL. Whether a given
// seed crashes depends purely on the task pickup order.
func crasherProgram() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("g", 16) // g[0]: pointer slot (zero-init), g[8]: valid target
	f := b.Func("init", "crash.c")
	f.Line(5)
	// Filler work widens the racing window before the publishing store.
	for j := 0; j < 3; j++ {
		f.LoadSym(1, "g")
		f.Ld(8, 2, 1, 8)
		f.Addi(2, 2, 1)
		f.St(8, 1, 8, 2)
	}
	f.LoadSym(1, "g")
	f.Addi(2, 1, 8)
	f.St(8, 1, 0, 2) // g[0] = &g[8]
	f.Ret()
	f = b.Func("deref", "crash.c")
	f.Line(12)
	f.LoadSym(1, "g")
	f.Ld(8, 2, 1, 0) // r2 = g[0]
	f.Ldi(3, 7)
	f.St(8, 2, 0, 3) // *r2 = 7 — wild when init has not published yet
	f.Ret()
	f = b.Func("micro", "crash.c")
	f.Enter(0)
	fn := f
	omp.SingleNowait(f, func() {
		omp.EmitTask(fn, omp.TaskOpts{Fn: "init"})
		omp.EmitTask(fn, omp.TaskOpts{Fn: "deref"})
		omp.Taskwait(fn)
	})
	f.Leave()
	f = b.Func("main", "crash.c")
	f.Enter(0)
	f.Ldi(1, 0)
	omp.Parallel(f, "micro", 1, 4)
	f.Ldi(0, 0)
	f.Hlt(0)
	return b
}

// TestQuarantineKeepsSweepAlive: a schedule-dependent crasher quarantines
// its bad seeds with a taxonomy instead of aborting the sweep.
func TestQuarantineKeepsSweepAlive(t *testing.T) {
	out, err := explore.Run(crasherProgram, "taskgrind", 4, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Failed) == 0 {
		t.Fatal("no seed crashed: the crasher is not racing")
	}
	if len(out.Failed) == out.Seeds {
		t.Fatalf("every seed crashed: not schedule-dependent (%v)", out.Failed)
	}
	if len(out.Failed) != len(out.Failures) {
		t.Fatalf("Failed/Failures out of sync: %v vs %v", out.Failed, out.Failures)
	}
	for _, f := range out.Failures {
		if f.Kind != harness.TaxFault {
			t.Errorf("seed %d: taxonomy %q, want %q (%s)", f.Seed, f.Kind, harness.TaxFault, f.Err)
		}
	}
	if !strings.Contains(out.String(), "quarantined") {
		t.Errorf("summary omits quarantine: %s", out)
	}
}

// TestSupervisedSweepVerifiesCrashes: under RunSupervised every quarantined
// crash must have reproduced bit-identically before being reported, and the
// surviving seeds must agree with the plain sweep.
func TestSupervisedSweepVerifiesCrashes(t *testing.T) {
	sup, err := explore.RunSupervised(crasherProgram, "taskgrind", 4, 8, 4, harness.SuperviseOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sup.Failed) == 0 || len(sup.Failed) == sup.Seeds {
		t.Fatalf("want a mix of crashing and surviving seeds, got failed=%v", sup.Failed)
	}
	for _, f := range sup.Failures {
		if f.Kind != harness.TaxFault {
			t.Errorf("seed %d: taxonomy %q, want %q", f.Seed, f.Kind, harness.TaxFault)
		}
		if !f.Reproduced {
			t.Errorf("seed %d: crash did not reproduce under verified replay", f.Seed)
		}
	}
	plain, err := explore.Run(crasherProgram, "taskgrind", 4, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Failed) != len(sup.Failed) {
		t.Fatalf("supervision changed which seeds fail: %v vs %v", sup.Failed, plain.Failed)
	}
	for i := range plain.Failed {
		if plain.Failed[i] != sup.Failed[i] {
			t.Fatalf("supervision changed which seeds fail: %v vs %v", sup.Failed, plain.Failed)
		}
	}
	for i := range plain.Counts {
		if plain.Counts[i] != sup.Counts[i] {
			t.Fatalf("supervision changed surviving counts: %v vs %v", sup.Counts, plain.Counts)
		}
	}
}
