package explore_test

import (
	"strings"
	"testing"

	"repro/internal/explore"
	"repro/internal/gbuild"
	"repro/internal/lulesh"
	"repro/internal/omp"
	"repro/internal/ompt"
)

func racyLulesh() *gbuild.Builder {
	b, err := lulesh.Build(lulesh.Params{S: 6, TEL: 4, TNL: 4, Iters: 2, Racy: true})
	if err != nil {
		panic(err)
	}
	return b
}

// TestTaskgrindScheduleIndependent: the post-mortem segment analysis finds
// the same count under every schedule — the property that distinguishes it
// from online detectors in Table II.
func TestTaskgrindScheduleIndependent(t *testing.T) {
	out, err := explore.Run(racyLulesh, "taskgrind", 4, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Stable() {
		t.Fatalf("taskgrind counts vary: %v", out.Counts)
	}
	if out.Min == 0 {
		t.Fatal("taskgrind found nothing on racy LULESH")
	}
	if !strings.Contains(out.String(), "stable") {
		t.Errorf("summary: %s", out)
	}
}

// TestArcherScheduleSensitive: the online vector-clock detector's counts
// depend on which interleaving ran — the "149 to 273" phenomenon.
func TestArcherScheduleSensitive(t *testing.T) {
	// A program with many racing task pairs gives Archer room to vary:
	// which pairs actually collide depends on stealing.
	build := func() *gbuild.Builder {
		b := omp.NewProgram()
		b.Global("g", 8*4)
		for i, name := range []string{"wa", "wb", "wc", "wd"} {
			f := b.Func(name, "var.c")
			f.Line(5 + i)
			for j := int32(0); j < 4; j++ {
				f.LoadSym(1, "g")
				f.Ld(8, 2, 1, j*8)
				f.Addi(2, 2, 1)
				f.St(8, 1, j*8, 2)
			}
			f.Ret()
		}
		f := b.Func("micro", "var.c")
		f.Enter(0)
		fn := f
		omp.SingleNowait(f, func() {
			for _, name := range []string{"wa", "wb", "wc", "wd"} {
				omp.EmitTask(fn, omp.TaskOpts{Fn: name})
			}
			omp.Taskwait(fn)
		})
		f.Leave()
		f = b.Func("main", "var.c")
		f.Enter(0)
		f.Ldi(1, 0)
		omp.Parallel(f, "micro", 1, 4)
		f.Ldi(0, 0)
		f.Hlt(0)
		_ = ompt.DepIn
		return b
	}
	out, err := explore.Run(build, "archer", 4, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out.Max == 0 {
		t.Fatal("archer never detected anything")
	}
	if out.Stable() {
		t.Logf("archer unexpectedly stable at %d (acceptable but unusual): %v", out.Min, out.Counts)
	}
}

// TestParallelWorkersMatchSerial: concurrency in the harness must not
// change results.
func TestParallelWorkersMatchSerial(t *testing.T) {
	par, err := explore.Run(racyLulesh, "taskgrind", 4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	ser, err := explore.Run(racyLulesh, "taskgrind", 4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range par.Counts {
		if par.Counts[i] != ser.Counts[i] {
			t.Fatalf("worker parallelism changed results: %v vs %v", par.Counts, ser.Counts)
		}
	}
}

// TestBadToolPropagates.
func TestBadToolPropagates(t *testing.T) {
	if _, err := explore.Run(racyLulesh, "nonesuch", 4, 2, 2); err == nil {
		t.Fatal("unknown tool accepted")
	}
}
