// Package explore runs a program under a tool across many scheduler seeds
// and aggregates the report counts — the methodology behind the paper's
// Table II row "149 to 273" for Archer: online detectors see only the
// schedule that actually ran, so their counts vary run to run, while
// Taskgrind's post-mortem segment analysis is schedule-independent.
//
// Runs execute in parallel on host goroutines (each owns an isolated guest
// machine), one of the places real Go parallelism is sound in this
// repository.
package explore

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/gbuild"
	"repro/internal/harness"
	"repro/internal/tools/toolreg"
)

// Outcome aggregates one (program, tool) exploration.
type Outcome struct {
	Tool  string
	Seeds int
	// Counts holds the per-seed report counts, indexed like the seeds.
	Counts []int
	// Min/Max/Distinct summarize schedule sensitivity.
	Min, Max int
	Distinct int
	// DetectionRate is the fraction of seeds with at least one report.
	DetectionRate float64
}

// Stable reports whether every seed produced the same count.
func (o Outcome) Stable() bool { return o.Distinct <= 1 }

// String renders a Table-II-style range.
func (o Outcome) String() string {
	if o.Min == o.Max {
		return fmt.Sprintf("%s: %d report(s) across %d schedules (stable)", o.Tool, o.Min, o.Seeds)
	}
	return fmt.Sprintf("%s: %d to %d report(s) across %d schedules (%d distinct, %.0f%% detecting)",
		o.Tool, o.Min, o.Max, o.Seeds, o.Distinct, o.DetectionRate*100)
}

// Run explores nseeds schedules (seeds 1..n) with up to workers concurrent
// machines. build must return a fresh builder per call (builders are
// single-link).
func Run(build func() *gbuild.Builder, tool string, threads, nseeds, workers int) (Outcome, error) {
	if workers <= 0 {
		workers = 4
	}
	out := Outcome{Tool: tool, Seeds: nseeds, Counts: make([]int, nseeds)}
	errs := make([]error, nseeds)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < nseeds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			tl, count, err := toolreg.Make(tool)
			if err != nil {
				errs[i] = err
				return
			}
			res, _, err := harness.BuildAndRun(build(), harness.Setup{
				Tool: tl, Seed: uint64(i + 1), Threads: threads,
			})
			if err != nil {
				errs[i] = err
				return
			}
			if res.Err != nil {
				errs[i] = res.Err
				return
			}
			out.Counts[i] = count()
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	sorted := append([]int(nil), out.Counts...)
	sort.Ints(sorted)
	out.Min, out.Max = sorted[0], sorted[len(sorted)-1]
	distinct := map[int]bool{}
	detecting := 0
	for _, c := range out.Counts {
		distinct[c] = true
		if c > 0 {
			detecting++
		}
	}
	out.Distinct = len(distinct)
	out.DetectionRate = float64(detecting) / float64(nseeds)
	return out, nil
}
