// Package explore runs a program under a tool across many scheduler seeds
// and aggregates the report counts — the methodology behind the paper's
// Table II row "149 to 273" for Archer: online detectors see only the
// schedule that actually ran, so their counts vary run to run, while
// Taskgrind's post-mortem segment analysis is schedule-independent.
//
// Runs execute in parallel on host goroutines (each owns an isolated guest
// machine), one of the places real Go parallelism is sound in this
// repository.
package explore

import (
	"fmt"
	"sort"

	"repro/internal/gbuild"
	"repro/internal/harness"
)

// Failure describes one quarantined seed: a schedule whose run crashed,
// hung or diverged. The sweep continues past it — a single bad interleaving
// must not cost the other N-1 data points.
type Failure struct {
	// Seed is the scheduler seed that failed.
	Seed int
	// Kind classifies the failure (the harness.Tax* taxonomy: "fault",
	// "panic", "timeout", "deadlock", "divergence", "error").
	Kind string
	// Err is the failure's rendered error.
	Err string
	// Reproduced reports that a supervised sweep replayed the crash
	// bit-identically before reporting it as real (RunSupervised only).
	Reproduced bool
}

// Outcome aggregates one (program, tool) exploration.
type Outcome struct {
	Tool  string
	Seeds int
	// Counts holds the per-seed report counts, indexed like the seeds
	// (zero for quarantined seeds).
	Counts []int
	// Failed lists the seeds that were quarantined, in seed order.
	Failed []int
	// Failures carries the quarantined seeds' taxonomy, parallel to Failed.
	Failures []Failure
	// Min/Max/Distinct summarize schedule sensitivity over surviving seeds.
	Min, Max int
	Distinct int
	// DetectionRate is the fraction of surviving seeds with at least one
	// report.
	DetectionRate float64
}

// Stable reports whether every seed produced the same count.
func (o Outcome) Stable() bool { return o.Distinct <= 1 }

// String renders a Table-II-style range.
func (o Outcome) String() string {
	var s string
	if o.Min == o.Max {
		s = fmt.Sprintf("%s: %d report(s) across %d schedules (stable)", o.Tool, o.Min, o.Seeds)
	} else {
		s = fmt.Sprintf("%s: %d to %d report(s) across %d schedules (%d distinct, %.0f%% detecting)",
			o.Tool, o.Min, o.Max, o.Seeds, o.Distinct, o.DetectionRate*100)
	}
	if len(o.Failed) > 0 {
		s += fmt.Sprintf(" [%d seed(s) quarantined]", len(o.Failed))
	}
	return s
}

// Run explores nseeds schedules (seeds 1..n) with up to workers concurrent
// machines. build must return a fresh builder per call (builders are
// single-link). Crashing, hung or otherwise failing seeds are quarantined
// into Outcome.Failed/Failures rather than aborting the sweep; only setup
// errors (unknown tool, unbuildable program) fail the whole call.
func Run(build func() *gbuild.Builder, tool string, threads, nseeds, workers int) (Outcome, error) {
	return RunOpts(build, tool, threads, nseeds, Opts{Workers: workers})
}

// finish folds per-seed failures into the outcome and computes the summary
// statistics over the surviving seeds.
func (o *Outcome) finish(fails []*Failure) {
	survivors := make([]int, 0, len(o.Counts))
	for i, f := range fails {
		if f != nil {
			o.Failed = append(o.Failed, f.Seed)
			o.Failures = append(o.Failures, *f)
			continue
		}
		survivors = append(survivors, o.Counts[i])
	}
	if len(survivors) == 0 {
		return
	}
	sorted := append([]int(nil), survivors...)
	sort.Ints(sorted)
	o.Min, o.Max = sorted[0], sorted[len(sorted)-1]
	distinct := map[int]bool{}
	detecting := 0
	for _, c := range survivors {
		distinct[c] = true
		if c > 0 {
			detecting++
		}
	}
	o.Distinct = len(distinct)
	o.DetectionRate = float64(detecting) / float64(len(survivors))
}

// RunSupervised explores like Run but drives every seed through the recovery
// supervisor: each run records a decision journal, crashes must reproduce
// once under journal-verified replay before they are reported as real
// (Failure.Reproduced), and — with opts.OnPanic set to OnPanicFallback —
// host-side engine defects degrade to the IR oracle instead of costing the
// data point. opts.VerifyCrash is forced on.
func RunSupervised(build func() *gbuild.Builder, tool string, threads, nseeds, workers int, opts harness.SuperviseOpts) (Outcome, error) {
	return RunSupervisedOpts(build, tool, threads, nseeds, Opts{Workers: workers}, opts)
}
