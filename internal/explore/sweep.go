package explore

// Sweep recording: every seed's run — spans, instants, profile samples,
// final counters, verdict and replay token — lands in one shared columnar
// run store, so a 1000-seed sweep becomes a queryable dataset instead of a
// pile of per-run files. Rebuild reconstructs the in-process Outcome from
// the recorded headers bit-identically; `taskgrind query agg` is built on
// it.

import (
	"sort"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/obs/store"
	"repro/internal/tools/toolreg"
	"repro/internal/tstore"
)

// Opts extends a sweep beyond the positional basics.
type Opts struct {
	// Workers bounds concurrent machines (0 = 4).
	Workers int
	// Prog labels recorded runs (the run-store header's program field).
	Prog string
	// Engine selects the DBI engine for every seed ("" = tool default);
	// also recorded in run headers.
	Engine string
	// Record, when non-nil, records every seed's run — including
	// quarantined crashes — into the store.
	Record *store.Writer
	// TokenFor builds seed's replay token (stamped into recorded headers
	// and onto supervised crash reports). Optional.
	TokenFor func(seed int) string
	// TStore shares translations across the sweep's seeds: every seed
	// runs the same image under the same tool, so the whole sweep costs
	// roughly one seed's worth of translation work. Nil builds a
	// sweep-private in-memory cache (amortization on by default); pass an
	// explicit cache to share with a daemon or a persistent tier.
	TStore *tstore.Cache
	// Inject is a fault-injection spec ("trylock=3,spurious=7") applied to
	// every seed; each attempt gets a fresh injector so firing patterns are
	// a pure function of (spec, InjectSeed), independent of sweep order.
	Inject string
	// InjectSeed phases the Inject firing patterns (0 = 1).
	InjectSeed uint64
}

// injector builds the per-attempt injector from the sweep spec ("" = nil).
func (o Opts) injector() (*faultinject.Injector, error) {
	if o.Inject == "" {
		return nil, nil
	}
	seed := o.InjectSeed
	if seed == 0 {
		seed = 1
	}
	return faultinject.ParseSpec(o.Inject, seed)
}

// recording bundles one seed's observability attachments while it records.
type recording struct {
	rw   *store.RunWriter
	reg  *obs.Registry
	tr   *obs.Tracer
	prof *obs.Profiler
}

// beginRecording opens a run in the store and builds the hooks that feed it.
func beginRecording(o Opts, tool string, threads, seed int, im *guest.Image) *recording {
	if o.Record == nil {
		return nil
	}
	rr := &recording{
		reg:  obs.NewRegistry(),
		prof: obs.NewProfiler(1),
	}
	rr.rw = o.Record.Begin(store.RunHeader{
		Prog: o.Prog, Tool: tool, Engine: o.Engine,
		Seed: uint64(seed), Threads: threads,
	})
	sink := store.NewStoreSink(rr.rw)
	if im != nil {
		sink.SymFn = func(pc uint64) string {
			if sym := im.SymbolFor(pc); sym != nil {
				return sym.Name
			}
			return ""
		}
	}
	rr.tr = obs.NewTracer(sink)
	return rr
}

// hooks returns the obs attachment for the recorded attempt.
func (rr *recording) hooks() *obs.Hooks {
	if rr == nil {
		return nil
	}
	return &obs.Hooks{Metrics: rr.reg, Tracer: rr.tr, Prof: rr.prof}
}

// finish captures the run's final state into the store. inst is the
// surviving instance (fallback when the run degraded); token/verdict/
// reports/reproduced describe the outcome.
func (rr *recording) finish(inst *harness.Instance, res harness.Result,
	verdict string, reports int, reproduced bool, token string) error {
	if rr == nil {
		return nil
	}
	_ = rr.tr.Close() // settles still-open spans in the store sink
	if inst != nil {
		inst.CaptureMetrics(rr.reg)
		rr.rw.SetWork(res.GuestInstrs, inst.M.BlocksExecuted, uint64(res.Wall))
		if tg, ok := inst.Core.Tool().(*core.Taskgrind); ok {
			for _, row := range store.RacesFromSet(&tg.Reports) {
				rr.rw.AddRace(row)
			}
		}
	}
	rr.rw.SetCounters(rr.reg.Snapshot().Counters)
	rr.rw.SetReplayToken(token)
	rr.rw.SetReproduced(reproduced)
	if verdict == "" {
		verdict = store.VerdictOK
	}
	errStr := ""
	if res.Err != nil {
		errStr = res.Err.Error()
	}
	rr.rw.SetResult(verdict, reports, errStr)
	var im *guest.Image
	if inst != nil {
		im = inst.M.Image
	}
	rr.prof.Each(func(pc, count uint64) {
		sym := ""
		if im != nil {
			if s := im.SymbolFor(pc); s != nil {
				sym = s.Name
			}
		}
		rr.rw.Sample(pc, sym, count)
	})
	return rr.rw.Finish()
}

// RunOpts explores nseeds schedules (seeds 1..n) like Run, with recording
// and engine selection from o.
func RunOpts(build func() *gbuild.Builder, tool string, threads, nseeds int, o Opts) (Outcome, error) {
	workers := o.Workers
	if workers <= 0 {
		workers = 4
	}
	tc := o.TStore
	if tc == nil {
		tc = tstore.NewCache("")
	}
	out := Outcome{Tool: tool, Seeds: nseeds, Counts: make([]int, nseeds)}
	errs := make([]error, nseeds)
	fails := make([]*Failure, nseeds)
	done := make(chan int, workers)
	sem := make(chan struct{}, workers)
	for i := 0; i < nseeds; i++ {
		go func(i int) {
			defer func() { done <- i }()
			sem <- struct{}{}
			defer func() { <-sem }()
			tl, count, err := toolreg.Make(tool)
			if err != nil {
				errs[i] = err
				return
			}
			im, err := build().Link()
			if err != nil {
				errs[i] = err
				return
			}
			rr := beginRecording(o, tool, threads, i+1, im)
			in, err := o.injector()
			if err != nil {
				errs[i] = err
				return
			}
			inst, err := harness.New(harness.Setup{
				Image: im, Tool: tl, Seed: uint64(i + 1), Threads: threads,
				Engine: o.Engine, Obs: rr.hooks(), TStore: tc, Inject: in,
			})
			if err != nil {
				errs[i] = err
				return
			}
			res := inst.Run()
			token := ""
			if o.TokenFor != nil {
				token = o.TokenFor(i + 1)
			}
			if res.Err != nil {
				fails[i] = &Failure{Seed: i + 1, Kind: harness.Classify(res.Err), Err: res.Err.Error()}
				errs[i] = rr.finish(inst, res, fails[i].Kind, 0, false, token)
				return
			}
			out.Counts[i] = count()
			errs[i] = rr.finish(inst, res, store.VerdictOK, out.Counts[i], false, token)
		}(i)
	}
	for n := 0; n < nseeds; n++ {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	out.finish(fails)
	return out, nil
}

// RunSupervisedOpts explores like RunSupervised, with recording and engine
// selection from o. Only the first attempt of each seed is traced (replay
// and fallback attempts re-execute the recorded timeline); the surviving
// attempt's counters, reports and verdict complete the recorded header.
func RunSupervisedOpts(build func() *gbuild.Builder, tool string, threads, nseeds int, o Opts, sopts harness.SuperviseOpts) (Outcome, error) {
	workers := o.Workers
	if workers <= 0 {
		workers = 4
	}
	if _, _, err := toolreg.Make(tool); err != nil {
		return Outcome{Tool: tool, Seeds: nseeds}, err
	}
	if _, err := o.injector(); err != nil {
		return Outcome{Tool: tool, Seeds: nseeds}, err
	}
	tc := o.TStore
	if tc == nil {
		tc = tstore.NewCache("")
	}
	sopts.VerifyCrash = true
	out := Outcome{Tool: tool, Seeds: nseeds, Counts: make([]int, nseeds)}
	errs := make([]error, nseeds)
	fails := make([]*Failure, nseeds)
	done := make(chan int, workers)
	sem := make(chan struct{}, workers)
	for i := 0; i < nseeds; i++ {
		go func(i int) {
			defer func() { done <- i }()
			sem <- struct{}{}
			defer func() { <-sem }()
			im, err := build().Link()
			if err != nil {
				errs[i] = err
				return
			}
			rr := beginRecording(o, tool, threads, i+1, im)
			seedOpts := sopts
			if o.TokenFor != nil && seedOpts.Token == "" {
				seedOpts.Token = o.TokenFor(i + 1)
			}
			var count func() int
			attempts := 0
			factory := func() harness.Setup {
				tl, c, _ := toolreg.Make(tool)
				count = c
				s := harness.Setup{
					Image: im, Tool: tl, Seed: uint64(i + 1),
					Threads: threads, Engine: o.Engine, TStore: tc,
				}
				// A fresh injector per attempt: replay/fallback attempts
				// re-draw the identical firing pattern.
				s.Inject, _ = o.injector()
				if attempts == 0 {
					s.Obs = rr.hooks()
				}
				attempts++
				return s
			}
			sup, err := harness.Supervise(factory, seedOpts)
			if err != nil {
				errs[i] = err
				return
			}
			if sup.Err != nil {
				fails[i] = &Failure{Seed: i + 1, Kind: sup.Taxonomy,
					Err: sup.Err.Error(), Reproduced: sup.Reproduced}
				errs[i] = rr.finish(sup.Inst, sup.Result, sup.Taxonomy, 0,
					sup.Reproduced, seedOpts.Token)
				return
			}
			out.Counts[i] = count()
			errs[i] = rr.finish(sup.Inst, sup.Result, store.VerdictOK,
				out.Counts[i], sup.Reproduced, seedOpts.Token)
		}(i)
	}
	for n := 0; n < nseeds; n++ {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	out.finish(fails)
	return out, nil
}

// SeedResult is one seed's terminal outcome, independent of where the seed
// ran: an in-process sweep, a recorded run store, or a daemon job group.
// Verdict is store.VerdictOK for a surviving seed, else the failure
// taxonomy (harness.Tax*).
type SeedResult struct {
	Seed       int
	Verdict    string
	Reports    int
	Err        string
	Reproduced bool
}

// Aggregate folds per-seed terminal results into a sweep Outcome — the
// cross-seed statistics core shared by Rebuild (store headers) and the
// analysis daemon (job groups). Later duplicates of a seed win, mirroring
// Rebuild's header semantics; seeds never reported stay as zero-count
// survivors.
func Aggregate(tool string, results []SeedResult) Outcome {
	rs := append([]SeedResult(nil), results...)
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].Seed < rs[j].Seed })
	nseeds := 0
	for _, r := range rs {
		if r.Seed > nseeds {
			nseeds = r.Seed
		}
	}
	out := Outcome{Tool: tool, Seeds: nseeds, Counts: make([]int, nseeds)}
	fails := make([]*Failure, nseeds)
	for _, r := range rs {
		if r.Seed <= 0 || r.Seed > nseeds {
			continue
		}
		i := r.Seed - 1
		if r.Verdict == store.VerdictOK {
			out.Counts[i] = r.Reports
			fails[i] = nil
			continue
		}
		fails[i] = &Failure{Seed: r.Seed, Kind: r.Verdict,
			Err: r.Err, Reproduced: r.Reproduced}
	}
	out.finish(fails)
	return out
}

// Rebuild reconstructs a sweep's Outcome from recorded run headers — the
// cross-seed aggregation `taskgrind query agg` prints. Given the complete
// header set of one sweep (seeds 1..N, one run per seed), the result is
// bit-identical to the Outcome the in-process sweep returned: same verdict
// matrix, same failure taxonomy, same summary statistics.
func Rebuild(tool string, headers []store.RunHeader) Outcome {
	rs := make([]SeedResult, 0, len(headers))
	for _, h := range headers {
		rs = append(rs, SeedResult{Seed: int(h.Seed), Verdict: h.Verdict,
			Reports: h.Reports, Err: h.Err, Reproduced: h.Reproduced})
	}
	return Aggregate(tool, rs)
}
