package explore_test

// Lock-fault sweep quarantine: a supervised 100-seed sweep over the
// trylock-crash scenario with an injected trylock failure must quarantine
// every crashing seed, replay each crash bit-identically before reporting
// it (Reproduced), and stamp a replay token that reproduces the crash
// standalone.

import (
	"strings"
	"testing"

	"repro/internal/drb"
	"repro/internal/explore"
	"repro/internal/faultinject"
	"repro/internal/harness"
	"repro/internal/snapshot"
)

func TestLockFaultSweepQuarantine(t *testing.T) {
	const (
		prog    = "lock-106-trylock-crash"
		tool    = "lockgrind"
		spec    = "trylock=2"
		threads = 4
		nseeds  = 100
	)
	bench, ok := drb.ByName(prog)
	if !ok {
		t.Fatalf("unknown scenario %q", prog)
	}
	tokenFor := func(seed int) string {
		return snapshot.Config{
			Prog: prog, Tool: tool, Seed: uint64(seed), Threads: threads,
			Inject: spec, InjectSeed: 1,
		}.Token()
	}
	out, err := explore.RunSupervisedOpts(bench.Build, tool, threads, nseeds, explore.Opts{
		Inject:   spec,
		TokenFor: tokenFor,
	}, harness.SuperviseOpts{})
	if err != nil {
		t.Fatal(err)
	}

	// The injector pattern is a pure function of (spec, InjectSeed) —
	// identical for every seed — so the single trylock draw fails on every
	// seed and all 100 runs hit the wild store in the fallback path.
	if len(out.Failed) != nseeds {
		t.Fatalf("quarantined %d/%d seeds, want all", len(out.Failed), nseeds)
	}
	for _, f := range out.Failures {
		if f.Kind != harness.TaxFault {
			t.Fatalf("seed %d quarantined as %q, want %q: %s", f.Seed, f.Kind, harness.TaxFault, f.Err)
		}
		if !f.Reproduced {
			t.Fatalf("seed %d crash was not replay-verified before quarantine", f.Seed)
		}
		if !strings.Contains(f.Err, "0xdead0000") {
			t.Fatalf("seed %d crashed elsewhere than the injected fallback path: %s", f.Seed, f.Err)
		}
	}

	// Standalone token reproduction: decode one quarantined seed's token
	// and re-run it from the decoded configuration alone — the same crash
	// must come back.
	cfg, err := snapshot.ParseToken(tokenFor(out.Failed[0]))
	if err != nil {
		t.Fatal(err)
	}
	b, ok := drb.ByName(cfg.Prog)
	if !ok {
		t.Fatalf("token names unknown program %q", cfg.Prog)
	}
	in, err := faultinject.ParseSpec(cfg.Inject, cfg.InjectSeed)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := harness.BuildAndRun(b.Build(), harness.Setup{
		Seed: cfg.Seed, Threads: cfg.Threads, Inject: in,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil || !strings.Contains(res.Err.Error(), "0xdead0000") {
		t.Fatalf("token replay did not reproduce the crash: %v", res.Err)
	}
}
