package lulesh

import (
	"testing"
)

var small = Params{S: 8, TEL: 4, TNL: 4, Iters: 2}

func mustRun(t *testing.T, p Params, tool string, threads int, seed uint64) RunResult {
	t.Helper()
	res, err := Run(p, tool, threads, seed)
	if err != nil {
		t.Fatalf("%s@%d: %v", tool, threads, err)
	}
	return res
}

// TestCorrectVersionIsClean: the dependence-complete LULESH reports zero
// races under every tool at one and four threads (Table II "racy=no" rows).
func TestCorrectVersionIsClean(t *testing.T) {
	for _, tool := range []string{"taskgrind", "archer", "tasksan", "romp"} {
		for _, threads := range []int{1, 4} {
			for seed := uint64(1); seed <= 3; seed++ {
				if res := mustRun(t, small, tool, threads, seed); res.Reports != 0 {
					t.Errorf("%s@%d seed %d: %d reports on correct LULESH",
						tool, threads, seed, res.Reports)
				}
			}
		}
	}
}

// TestRacyVersionShape reproduces the §V-B detection pattern: Taskgrind
// (annotated) reports the dropped dependence even on one thread, while
// Archer "never reports errors when running in a single-thread".
func TestRacyVersionShape(t *testing.T) {
	racy := small
	racy.Racy = true
	if res := mustRun(t, racy, "taskgrind", 1, 2); res.Reports == 0 {
		t.Error("taskgrind@1 found nothing on racy LULESH")
	}
	if res := mustRun(t, racy, "taskgrind", 4, 2); res.Reports == 0 {
		t.Error("taskgrind@4 found nothing on racy LULESH")
	}
	if res := mustRun(t, racy, "archer", 1, 2); res.Reports != 0 {
		t.Errorf("archer@1 reported %d on racy LULESH (paper: 0, serialization blindness)", res.Reports)
	}
	found := false
	for seed := uint64(1); seed <= 6 && !found; seed++ {
		found = mustRun(t, racy, "archer", 4, seed).Reports > 0
	}
	if !found {
		t.Error("archer@4 never reported on racy LULESH")
	}
}

// TestChecksumStableAcrossEngines: the energy-field checksum must be
// identical under the direct interpreter and both instrumented engines —
// instrumentation must not perturb semantics.
func TestChecksumStableAcrossEngines(t *testing.T) {
	want := mustRun(t, small, "none", 1, 7).ExitCode
	if want == 0 {
		t.Fatal("zero checksum")
	}
	for _, tool := range []string{"taskgrind", "archer", "tasksan", "romp"} {
		for _, threads := range []int{1, 4} {
			if got := mustRun(t, small, tool, threads, 7).ExitCode; got != want {
				t.Errorf("%s@%d checksum %d != %d", tool, threads, got, want)
			}
		}
	}
}

// TestDeterministicChecksumAcrossSeeds: the correct program is
// deterministic by construction — any seed gives the same checksum.
func TestDeterministicChecksumAcrossSeeds(t *testing.T) {
	want := mustRun(t, small, "none", 4, 1).ExitCode
	for seed := uint64(2); seed <= 6; seed++ {
		if got := mustRun(t, small, "none", 4, seed).ExitCode; got != want {
			t.Errorf("seed %d checksum %d != %d (schedule leaked into results)", seed, got, want)
		}
	}
}

// TestCubicScaling: work and memory grow O(s^3) — doubling s must grow the
// instruction count by roughly 8x (Fig 4's x-axis claim).
func TestCubicScaling(t *testing.T) {
	p4, p8 := small, small
	p4.S = 4
	p8.S = 8
	a := mustRun(t, p4, "none", 1, 1)
	b := mustRun(t, p8, "none", 1, 1)
	ratio := float64(b.Instrs) / float64(a.Instrs)
	if ratio < 5 || ratio > 12 {
		t.Errorf("instr ratio s=8/s=4 = %.1f, want ~8 (O(s^3))", ratio)
	}
}

// TestNaiveModeExplodes reproduces the §IV motivation: without the
// suppression passes, even the *correct* small LULESH reports a huge number
// of determinacy races (the paper measured ~400k at -s 4 -tel 2).
func TestNaiveModeExplodes(t *testing.T) {
	// The paper measured ~400k at -s 4 -tel 2 on the real LULESH (~40
	// loops per iteration); our proxy has 4 kernels, so the absolute count
	// scales down — the claim under test is the *relative* explosion:
	// zero reports with suppressions, dozens+ without.
	p := Params{S: 4, TEL: 2, TNL: 2, Iters: 4}
	def := mustRun(t, p, "taskgrind", 4, 3)
	naive := mustRun(t, p, "taskgrind-naive", 4, 3)
	if def.Reports != 0 {
		t.Errorf("default taskgrind reports = %d, want 0", def.Reports)
	}
	if naive.Reports < 20 {
		t.Errorf("naive taskgrind reports = %d, expected an explosion (>=20)", naive.Reports)
	}
	t.Logf("suppression ablation: naive=%d default=%d", naive.Reports, def.Reports)
}

// TestOverheadOrdering: Taskgrind (heavyweight, record everything) costs
// more than Archer, which costs more than the uninstrumented run — the
// ordering of Table II's time columns.
func TestOverheadOrdering(t *testing.T) {
	p := Params{S: 12, TEL: 4, TNL: 4, Iters: 2}
	// Wall clocks are noisy under parallel test load: take the minimum of
	// three runs per configuration.
	minWall := func(tool string) (best RunResult) {
		for i := 0; i < 3; i++ {
			r := mustRun(t, p, tool, 1, 1)
			if i == 0 || r.Wall < best.Wall {
				best = r
			}
		}
		return best
	}
	none := minWall("none")
	arch := minWall("archer")
	tg := minWall("taskgrind")
	if !(tg.Wall > none.Wall) {
		t.Errorf("taskgrind (%v) not slower than none (%v)", tg.Wall, none.Wall)
	}
	if !(arch.Wall > none.Wall) {
		t.Errorf("archer (%v) not slower than none (%v)", arch.Wall, none.Wall)
	}
	if tg.Footprint <= none.Footprint || arch.Footprint <= none.Footprint {
		t.Errorf("tool memory not above reference: none=%d archer=%d tg=%d",
			none.Footprint, arch.Footprint, tg.Footprint)
	}
}

// TestParallelAnalysisSameReports: the parallel analysis pass finds the same
// race count on racy LULESH.
func TestParallelAnalysisSameReports(t *testing.T) {
	racy := small
	racy.Racy = true
	seq := mustRun(t, racy, "taskgrind", 4, 5)
	par := mustRun(t, racy, "taskgrind-par", 4, 5)
	if seq.Reports != par.Reports {
		t.Errorf("parallel analysis reports %d != sequential %d", par.Reports, seq.Reports)
	}
}

// TestTableIIAndFig4Generate exercises the experiment drivers end to end on
// a reduced configuration.
func TestTableIIAndFig4Generate(t *testing.T) {
	p := Params{S: 6, TEL: 2, TNL: 2, Iters: 2}
	rows, err := GenerateTableII(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Correct rows report 0 for Taskgrind; racy rows report > 0.
	for _, r := range rows {
		tg := r.Results["taskgrind"].Reports
		if !r.Racy && tg != 0 {
			t.Errorf("correct row thr=%d: taskgrind reports %d", r.Threads, tg)
		}
		if r.Racy && tg == 0 {
			t.Errorf("racy row thr=%d: taskgrind reports 0", r.Threads)
		}
	}
	out := FormatTableII(rows)
	if len(out) == 0 {
		t.Fatal("empty table")
	}
	pts, err := GenerateFig4([]int{4, 6}, Params{TEL: 2, TNL: 2, Iters: 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[1].Reference.Instrs <= pts[0].Reference.Instrs {
		t.Fatalf("fig4 points wrong: %+v", pts)
	}
	if FormatFig4(pts) == "" {
		t.Fatal("empty fig4")
	}
}

// TestBadParams covers parameter validation.
func TestBadParams(t *testing.T) {
	if _, err := Build(Params{}); err == nil {
		t.Fatal("zero params accepted")
	}
}
