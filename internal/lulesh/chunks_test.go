package lulesh

import (
	"testing"
	"testing/quick"
)

// TestChunksPartition: chunks() produces a gap-free, non-overlapping cover
// of [0, n) for any positive n, k.
func TestChunksPartition(t *testing.T) {
	f := func(n16, k8 uint8) bool {
		n := int(n16)%500 + 1
		k := int(k8)%16 + 1
		cs := chunks(n, k)
		if len(cs) != k {
			return false
		}
		pos := 0
		for _, c := range cs {
			if c[0] != pos || c[1] < c[0] {
				return false
			}
			pos = c[1]
		}
		return pos == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestChunksBalanced: chunk sizes differ by at most one.
func TestChunksBalanced(t *testing.T) {
	cs := chunks(1003, 7)
	min, max := 1<<30, 0
	for _, c := range cs {
		sz := c[1] - c[0]
		if sz < min {
			min = sz
		}
		if sz > max {
			max = sz
		}
	}
	if max-min > 1 {
		t.Fatalf("imbalance: min=%d max=%d", min, max)
	}
}

// TestOverlappingFindsExactly: cross-granularity overlap computation.
func TestOverlappingFindsExactly(t *testing.T) {
	elem := chunks(100, 4)                          // [0,25) [25,50) [50,75) [75,100)
	node := chunks(100, 3)                          // [0,34) [34,67) [67,100)
	ov := overlapping(elem, node[1][0], node[1][1]) // [34,67)
	// overlaps elem chunks [25,50) and [50,75).
	if len(ov) != 2 || ov[0][0] != 25 || ov[1][0] != 50 {
		t.Fatalf("overlapping = %v", ov)
	}
	// Degenerate query.
	if len(overlapping(elem, 100, 100)) != 0 {
		t.Fatal("empty range overlapped")
	}
}

// TestOverlappingCoversUnion: every element chunk overlapping a node chunk
// is found (property vs. brute force).
func TestQuickOverlappingMatchesBruteForce(t *testing.T) {
	f := func(n8, a8, b8 uint8) bool {
		n := int(n8)%200 + 10
		parts := chunks(n, int(a8)%8+1)
		qs := chunks(n, int(b8)%8+1)
		for _, q := range qs {
			got := overlapping(parts, q[0], q[1])
			var want [][2]int
			for _, p := range parts {
				if p[0] < q[1] && p[1] > q[0] {
					want = append(want, p)
				}
			}
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestDefaultParamsMatchPaper: Table II uses -s 16 -tel 4 -tnl 4 -i 4.
func TestDefaultParamsMatchPaper(t *testing.T) {
	p := DefaultParams()
	if p.S != 16 || p.TEL != 4 || p.TNL != 4 || p.Iters != 4 {
		t.Fatalf("defaults = %+v", p)
	}
	if p.Cells() != 4096 {
		t.Fatalf("cells = %d", p.Cells())
	}
}
