package lulesh

import (
	"fmt"
	"time"

	"repro/internal/harness"
	"repro/internal/tools/toolreg"
)

// RunResult is one measured LULESH execution — a cell of Table II or a data
// point of Fig 4.
type RunResult struct {
	Params   Params
	Tool     string
	Threads  int
	ExitCode uint64
	// Wall is the recording-phase wall time (the paper excludes the
	// analysis pass from its timing).
	Wall time.Duration
	// AnalysisWall is the post-mortem analysis time (informational).
	AnalysisWall time.Duration
	// Instrs is the deterministic guest work metric.
	Instrs uint64
	// Footprint is guest + tool shadow memory in bytes.
	Footprint uint64
	// Reports is the number of determinacy-race reports.
	Reports int
}

// Run executes LULESH once under a named tool.
func Run(p Params, tool string, threads int, seed uint64) (RunResult, error) {
	b, err := Build(p)
	if err != nil {
		return RunResult{}, err
	}
	im, err := b.Link()
	if err != nil {
		return RunResult{}, err
	}
	t, count, err := toolreg.Make(tool)
	if err != nil {
		return RunResult{}, err
	}
	inst, err := harness.New(harness.Setup{Image: im, Tool: t, Seed: seed, Threads: threads})
	if err != nil {
		return RunResult{}, err
	}
	start := time.Now()
	runErr := inst.M.Run()
	wall := time.Since(start)
	if runErr != nil {
		return RunResult{}, fmt.Errorf("lulesh under %s: %w", tool, runErr)
	}
	var analysis time.Duration
	if t != nil {
		astart := time.Now()
		t.Fini(inst.Core)
		analysis = time.Since(astart)
	}
	return RunResult{
		Params:       p,
		Tool:         tool,
		Threads:      threads,
		ExitCode:     inst.M.ExitCode(),
		Wall:         wall,
		AnalysisWall: analysis,
		Instrs:       inst.M.InstrsExecuted,
		Footprint:    inst.M.Footprint(),
		Reports:      count(),
	}, nil
}

// TableIIRow is one row of Table II.
type TableIIRow struct {
	Racy    bool
	Threads int
	Results map[string]RunResult // keyed by tool: none, archer, taskgrind
}

// GenerateTableII reproduces Table II: {correct, racy} × {1, 4} threads
// under no-tools, Archer, and Taskgrind. Unlike the paper's prototype, this
// implementation does not deadlock on multi-threaded runs, so the 4-thread
// Taskgrind cells carry real measurements.
func GenerateTableII(p Params, seed uint64) ([]TableIIRow, error) {
	var rows []TableIIRow
	for _, racy := range []bool{false, true} {
		for _, threads := range []int{1, 4} {
			pp := p
			pp.Racy = racy
			row := TableIIRow{Racy: racy, Threads: threads, Results: map[string]RunResult{}}
			for _, tool := range []string{"none", "archer", "taskgrind"} {
				res, err := Run(pp, tool, threads, seed)
				if err != nil {
					return nil, err
				}
				row.Results[tool] = res
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatTableII renders Table II.
func FormatTableII(rows []TableIIRow) string {
	out := fmt.Sprintf("%-5s %-4s | %-30s | %-30s | %-20s\n",
		"racy", "thr", "execution time", "memory", "reports")
	out += fmt.Sprintf("%-5s %-4s | %9s %9s %10s | %9s %9s %10s | %9s %10s\n",
		"", "", "no-tools", "archer", "taskgrind", "no-tools", "archer", "taskgrind", "archer", "taskgrind")
	for _, r := range rows {
		racy := "no"
		if r.Racy {
			racy = "yes"
		}
		n, a, t := r.Results["none"], r.Results["archer"], r.Results["taskgrind"]
		out += fmt.Sprintf("%-5s %-4d | %9s %9s %10s | %8.1fM %8.1fM %9.1fM | %9d %10d\n",
			racy, r.Threads,
			n.Wall.Round(time.Microsecond), a.Wall.Round(time.Microsecond), t.Wall.Round(time.Microsecond),
			float64(n.Footprint)/1e6, float64(a.Footprint)/1e6, float64(t.Footprint)/1e6,
			a.Reports, t.Reports)
	}
	return out
}

// Fig4Point is one problem-size sweep point: reference and Archer at 4
// threads, Taskgrind at 1 (the paper's configuration).
type Fig4Point struct {
	S         int
	Reference RunResult
	Archer    RunResult
	Taskgrind RunResult
}

// GenerateFig4 sweeps the problem size.
func GenerateFig4(sizes []int, base Params, seed uint64) ([]Fig4Point, error) {
	var out []Fig4Point
	for _, s := range sizes {
		p := base
		p.S = s
		ref, err := Run(p, "none", 4, seed)
		if err != nil {
			return nil, err
		}
		arch, err := Run(p, "archer", 4, seed)
		if err != nil {
			return nil, err
		}
		tg, err := Run(p, "taskgrind", 1, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig4Point{S: s, Reference: ref, Archer: arch, Taskgrind: tg})
	}
	return out, nil
}

// FormatFig4 renders the sweep as the two series of Fig 4.
func FormatFig4(points []Fig4Point) string {
	out := fmt.Sprintf("%-4s | %12s %12s %12s | %10s %10s %10s | %8s %8s\n",
		"s", "ref time", "archer time", "tg time", "ref mem", "archer mem", "tg mem", "t-ovh", "m-ovh")
	for _, p := range points {
		tovh := float64(p.Taskgrind.Wall) / float64(p.Reference.Wall)
		movh := float64(p.Taskgrind.Footprint) / float64(p.Reference.Footprint)
		out += fmt.Sprintf("%-4d | %12s %12s %12s | %9.1fM %9.1fM %9.1fM | %7.1fx %7.1fx\n",
			p.S,
			p.Reference.Wall.Round(time.Microsecond),
			p.Archer.Wall.Round(time.Microsecond),
			p.Taskgrind.Wall.Round(time.Microsecond),
			float64(p.Reference.Footprint)/1e6,
			float64(p.Archer.Footprint)/1e6,
			float64(p.Taskgrind.Footprint)/1e6,
			tovh, movh)
	}
	return out
}
