// Package lulesh implements the dependent task-based LULESH proxy
// application of the paper's evaluation (§V-B): a Lagrangian-hydrodynamics-
// shaped kernel pipeline over an s³ mesh with O(s³) time and memory, split
// into dependent tasks.
//
// Four kernels run per iteration over the same cell space, element-centered
// kernels chunked into `tel` tasks and node-centered kernels into `tnl`
// tasks (the paper's -tel / -tnl knobs). Task dependences connect kernels
// through array-section base addresses, including the cross-granularity
// overlaps between tel- and tnl-chunkings, plus a per-iteration timestep
// reduction task — so the execution builds a genuinely layered segment
// graph. The racy variant drops the advance kernel's dependence on the
// force array, the "removing a task dependence to introduce data races
// intentionally" experiment of Table II.
package lulesh

import (
	"fmt"

	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/omp"
	"repro/internal/ompt"
)

// Params mirrors the paper's command line: -s -tel -tnl -i, racy variant.
type Params struct {
	// S is the mesh edge; the problem has S^3 cells.
	S int
	// TEL is the number of tasks per element-centered loop.
	TEL int
	// TNL is the number of tasks per node-centered loop.
	TNL int
	// Iters is the iteration count (-i).
	Iters int
	// Racy drops the advance kernel's in-dependence on the force array.
	Racy bool
	// Progress emits per-iteration progress output (-p).
	Progress bool
}

// DefaultParams returns the paper's Table II configuration.
func DefaultParams() Params {
	return Params{S: 16, TEL: 4, TNL: 4, Iters: 4, Progress: false}
}

// Cells returns the cell count.
func (p Params) Cells() int { return p.S * p.S * p.S }

const (
	r0 = guest.R0
	r1 = guest.R1
	r2 = guest.R2
	r3 = guest.R3
	r4 = guest.R4
	r5 = guest.R5
	r9 = guest.R9
)

// chunks partitions [0, n) into k half-open ranges.
func chunks(n, k int) [][2]int {
	out := make([][2]int, 0, k)
	for c := 0; c < k; c++ {
		lo := n * c / k
		hi := n * (c + 1) / k
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// overlapping returns the ranges of parts that intersect [lo, hi).
func overlapping(parts [][2]int, lo, hi int) [][2]int {
	var out [][2]int
	for _, p := range parts {
		if p[0] < hi && p[1] > lo {
			out = append(out, p)
		}
	}
	return out
}

// depOn builds a dependence on array element ptrSym[idx] — the address a
// task-dependent code uses as the section token.
func depOn(kind uint64, ptrSym string, idx int) omp.Dep {
	return omp.Dep{Kind: kind, Emit: func(f *gbuild.Func, dst uint8) {
		f.LoadSym(dst, ptrSym)
		f.Ld(8, dst, dst, 0)
		f.Addi(dst, dst, int32(idx*8))
	}}
}

// kernelSpec describes one compute kernel.
type kernelSpec struct {
	name string
	line int
	// emit generates the per-cell body. On entry r1 holds the cell index
	// (as byte offset); the body may clobber r0..r5, r9, r10.
	emit func(f *gbuild.Func)
}

// emitKernelFn defines the task function for a kernel: payload = {lo, count}
// cell range; loops over cells invoking the body.
func emitKernelFn(b *gbuild.Builder, k kernelSpec) {
	f := b.Func(k.name, "lulesh.c")
	f.Line(k.line)
	f.Enter(32)
	// Locals: fp-8 = cursor (byte offset), fp-16 = end (byte offset).
	f.Ld(8, r1, r0, 0) // lo
	f.Ld(8, r2, r0, 8) // count
	f.Muli(r1, r1, 8)
	f.Muli(r2, r2, 8)
	f.Add(r2, r1, r2)
	f.StLocal(8, 8, r1)
	f.StLocal(8, 16, r2)
	loop := f.NewLabel()
	done := f.NewLabel()
	f.Bind(loop)
	f.LdLocal(8, r1, 8)
	f.LdLocal(8, r2, 16)
	f.Bge(r1, r2, done)
	k.emit(f) // body: r1 = byte offset of the cell
	f.LdLocal(8, r1, 8)
	f.Addi(r1, r1, 8)
	f.StLocal(8, 8, r1)
	f.Jmp(loop)
	f.Bind(done)
	f.Leave()
}

// loadArr emits dst = *(ptrSym) (the array base pointer).
func loadArr(f *gbuild.Func, dst uint8, ptrSym string) {
	f.LoadSym(dst, ptrSym)
	f.Ld(8, dst, dst, 0)
}

// Build constructs the guest program.
func Build(p Params) (*gbuild.Builder, error) {
	if p.S <= 0 || p.TEL <= 0 || p.TNL <= 0 || p.Iters <= 0 {
		return nil, fmt.Errorf("lulesh: bad params %+v", p)
	}
	n := p.Cells()
	b := omp.NewProgram()
	for _, sym := range []string{"e_ptr", "p_ptr", "v_ptr", "f_ptr"} {
		b.Global(sym, 8)
	}
	b.Global("dt_v", 8)
	b.GlobalString("msg_iter", "iter\n")

	// K1 nodal force: f[j] = (p[j] + v[j]) * 0.5.
	emitKernelFn(b, kernelSpec{name: "k1_force", line: 40, emit: func(f *gbuild.Func) {
		loadArr(f, r3, "p_ptr")
		f.Add(r3, r3, r1)
		f.Ld(8, r4, r3, 0)
		loadArr(f, r3, "v_ptr")
		f.Add(r3, r3, r1)
		f.Ld(8, r5, r3, 0)
		f.Fadd(r4, r4, r5)
		f.LdFloat(r5, 0.5)
		f.Fmul(r4, r4, r5)
		loadArr(f, r3, "f_ptr")
		f.Add(r3, r3, r1)
		f.St(8, r3, 0, r4)
	}})
	// K2 advance: e[j] += f[j] * dt.
	emitKernelFn(b, kernelSpec{name: "k2_advance", line: 55, emit: func(f *gbuild.Func) {
		loadArr(f, r3, "f_ptr")
		f.Add(r3, r3, r1)
		f.Ld(8, r4, r3, 0)
		f.LoadSym(r3, "dt_v")
		f.Ld(8, r5, r3, 0)
		f.Fmul(r4, r4, r5)
		loadArr(f, r3, "e_ptr")
		f.Add(r3, r3, r1)
		f.Ld(8, r5, r3, 0)
		f.Fadd(r5, r5, r4)
		f.St(8, r3, 0, r5)
	}})
	// K3 EOS: p[i] = e[i]*0.3 + 0.1.
	emitKernelFn(b, kernelSpec{name: "k3_eos", line: 70, emit: func(f *gbuild.Func) {
		loadArr(f, r3, "e_ptr")
		f.Add(r3, r3, r1)
		f.Ld(8, r4, r3, 0)
		f.LdFloat(r5, 0.3)
		f.Fmul(r4, r4, r5)
		f.LdFloat(r5, 0.1)
		f.Fadd(r4, r4, r5)
		loadArr(f, r3, "p_ptr")
		f.Add(r3, r3, r1)
		f.St(8, r3, 0, r4)
	}})
	// K4 volume update: v[i] = v[i]*0.99 + e[i]*0.01.
	emitKernelFn(b, kernelSpec{name: "k4_volume", line: 85, emit: func(f *gbuild.Func) {
		loadArr(f, r3, "v_ptr")
		f.Add(r3, r3, r1)
		f.Ld(8, r4, r3, 0)
		f.LdFloat(r5, 0.99)
		f.Fmul(r4, r4, r5)
		loadArr(f, r3, "e_ptr")
		f.Add(r3, r3, r1)
		f.Ld(8, r5, r3, 0)
		f.LdFloat(r9, 0.01)
		f.Fmul(r5, r5, r9)
		f.Fadd(r4, r4, r5)
		loadArr(f, r3, "v_ptr")
		f.Add(r3, r3, r1)
		f.St(8, r3, 0, r4)
	}})
	// Timestep reduction: dt = 1e-3 / (1 + |e[0]|*0) — reads a strided
	// sample of e and rewrites dt (the CalcTimeConstraints analog).
	f := b.Func("k5_dt", "lulesh.c")
	f.Line(100)
	f.Enter(32)
	f.Ld(8, r1, r0, 0) // count (cells)
	f.Muli(r1, r1, 8)
	f.StLocal(8, 16, r1)
	f.Ldi(r1, 0)
	f.StLocal(8, 8, r1)
	f.LdFloat(r4, 0)
	f.StLocal(8, 24, r4)
	dloop := f.NewLabel()
	ddone := f.NewLabel()
	f.Bind(dloop)
	f.LdLocal(8, r1, 8)
	f.LdLocal(8, r2, 16)
	f.Bge(r1, r2, ddone)
	loadArr(f, r3, "e_ptr")
	f.Add(r3, r3, r1)
	f.Ld(8, r4, r3, 0)
	f.LdLocal(8, r5, 24)
	f.Fadd(r5, r5, r4)
	f.StLocal(8, 24, r5)
	f.Addi(r1, r1, 64) // stride 8 cells
	f.StLocal(8, 8, r1)
	f.Jmp(dloop)
	f.Bind(ddone)
	// dt = 1e-3 * 0.999 (sum only guards against dead-code elimination —
	// of which this back end has none, but the reads are the point).
	f.LoadSym(r3, "dt_v")
	f.Ld(8, r4, r3, 0)
	f.LdFloat(r5, 0.999)
	f.Fmul(r4, r4, r5)
	f.St(8, r3, 0, r4)
	f.Leave()

	emitMicro(b, p, n)
	emitLuleshMain(b, p, n)
	return b, nil
}

// argsGlobal places a static {lo, count} argument block for one task and
// returns its symbol. Real task-dependent codes pass chunk descriptors as
// preallocated structures, not per-spawn captures — which also keeps the
// runtime's recycling pool out of the user access stream.
func argsGlobal(b *gbuild.Builder, name string, lo, count int) string {
	var buf [16]byte
	putU64(buf[0:], uint64(lo))
	putU64(buf[8:], uint64(count))
	b.GlobalInit(name, buf[:])
	return name
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// spawnKernelTask emits a task whose body receives the static args block.
func spawnKernelTask(f *gbuild.Func, fn, argsSym string, deps []omp.Dep) {
	omp.EmitTask(f, omp.TaskOpts{Fn: fn + "$" + argsSym, Deps: deps})
}

// emitArgWrapper defines the per-chunk entry point: it loads the static args
// block address and tail-calls the kernel body.
func emitArgWrapper(b *gbuild.Builder, fn, argsSym string) {
	f := b.Func(fn+"$"+argsSym, "lulesh.c")
	f.Enter(0)
	f.LoadSym(r0, argsSym)
	f.Call(fn)
	f.Leave()
}

// emitMicro generates the task pipeline.
func emitMicro(b *gbuild.Builder, p Params, n int) {
	elem := chunks(n, p.TEL)
	node := chunks(n, p.TNL)

	// Static argument blocks and wrappers, shared across iterations.
	for ki, k := range []string{"k1_force", "k2_advance", "k3_eos", "k4_volume"} {
		cs := node
		if ki >= 2 {
			cs = elem
		}
		for ci, c := range cs {
			sym := fmt.Sprintf("args_k%d_c%d", ki+1, ci)
			argsGlobal(b, sym, c[0], c[1]-c[0])
			emitArgWrapper(b, k, sym)
		}
	}
	argsGlobal(b, "args_k5", n, 0)
	emitArgWrapper(b, "k5_dt", "args_k5")

	f := b.Func("micro", "lulesh.c")
	f.Line(110)
	f.Enter(16)
	omp.AssumeDeferrable(f, true)
	fn := f
	omp.SingleNowait(f, func() {
		for iter := 0; iter < p.Iters; iter++ {
			// K1 (node loop): in p,v over overlapping element chunks;
			// out f on the node chunk.
			for ci, nc := range node {
				deps := []omp.Dep{depOn(ompt.DepOut, "f_ptr", nc[0])}
				for _, ec := range overlapping(elem, nc[0], nc[1]) {
					deps = append(deps,
						depOn(ompt.DepIn, "p_ptr", ec[0]),
						depOn(ompt.DepIn, "v_ptr", ec[0]))
				}
				spawnKernelTask(fn, "k1_force", fmt.Sprintf("args_k1_c%d", ci), deps)
			}
			// K2 (node loop): in f (DROPPED in the racy variant!),
			// inout e.
			for ci, nc := range node {
				deps := []omp.Dep{depOn(ompt.DepInout, "e_ptr", nc[0])}
				if !p.Racy {
					deps = append(deps, depOn(ompt.DepIn, "f_ptr", nc[0]))
				}
				spawnKernelTask(fn, "k2_advance", fmt.Sprintf("args_k2_c%d", ci), deps)
			}
			// K3 (element loop): in e over overlapping node chunks;
			// out p.
			for ci, ec := range elem {
				deps := []omp.Dep{depOn(ompt.DepOut, "p_ptr", ec[0])}
				for _, nc := range overlapping(node, ec[0], ec[1]) {
					deps = append(deps, depOn(ompt.DepIn, "e_ptr", nc[0]))
				}
				spawnKernelTask(fn, "k3_eos", fmt.Sprintf("args_k3_c%d", ci), deps)
			}
			// K4 (element loop): in e over node chunks; inout v.
			for ci, ec := range elem {
				deps := []omp.Dep{depOn(ompt.DepInout, "v_ptr", ec[0])}
				for _, nc := range overlapping(node, ec[0], ec[1]) {
					deps = append(deps, depOn(ompt.DepIn, "e_ptr", nc[0]))
				}
				spawnKernelTask(fn, "k4_volume", fmt.Sprintf("args_k4_c%d", ci), deps)
			}
			// Timestep reduction: in every e node chunk, plus dt itself.
			deps := []omp.Dep{omp.DepSym(ompt.DepInout, "dt_v")}
			for _, nc := range node {
				deps = append(deps, depOn(ompt.DepIn, "e_ptr", nc[0]))
			}
			spawnKernelTask(fn, "k5_dt", "args_k5", deps)
			if p.Progress {
				fn.LoadSym(r0, "msg_iter")
				fn.Hcall("print_str")
			}
		}
		omp.Taskwait(fn)
	})
	f.Leave()
}

// emitLuleshMain allocates and initializes the mesh, runs the region, and
// returns a checksum of the energy field (scaled to an integer) so the
// direct and instrumented engines can be cross-checked.
func emitLuleshMain(b *gbuild.Builder, p Params, n int) {
	f := b.Func("main", "lulesh.c")
	f.Line(10)
	f.Enter(16)
	// Allocate the four fields.
	for _, sym := range []string{"e_ptr", "p_ptr", "v_ptr", "f_ptr"} {
		f.LdConst64(r0, uint64(n*8))
		f.Hcall("malloc")
		f.LoadSym(r1, sym)
		f.St(8, r1, 0, r0)
	}
	// dt = 1e-3.
	f.LoadSym(r1, "dt_v")
	f.LdFloat(r2, 1e-3)
	f.St(8, r1, 0, r2)
	// Init: e = 1.0, p = 1.0, v = 1.0, f = 0.0.
	f.Ldi(r3, 0)
	f.StLocal(8, 8, r3)
	initLoop := f.NewLabel()
	initDone := f.NewLabel()
	f.Bind(initLoop)
	f.LdLocal(8, r3, 8)
	f.LdConst64(r2, uint64(n*8))
	f.Bge(r3, r2, initDone)
	for i, sym := range []string{"e_ptr", "p_ptr", "v_ptr", "f_ptr"} {
		loadArr(f, r1, sym)
		f.Add(r1, r1, r3)
		if i < 3 {
			f.LdFloat(r2, 1.0)
		} else {
			f.LdFloat(r2, 0.0)
		}
		f.St(8, r1, 0, r2)
	}
	f.LdLocal(8, r3, 8)
	f.Addi(r3, r3, 8)
	f.StLocal(8, 8, r3)
	f.Jmp(initLoop)
	f.Bind(initDone)

	f.Line(20)
	f.Ldi(r1, 0)
	omp.Parallel(f, "micro", r1, 0)

	// Checksum: floor(sum(e) * 16) mod 2^31.
	f.Line(30)
	f.Ldi(r3, 0)
	f.StLocal(8, 8, r3)
	f.LdFloat(r4, 0)
	f.StLocal(8, 16, r4)
	sumLoop := f.NewLabel()
	sumDone := f.NewLabel()
	f.Bind(sumLoop)
	f.LdLocal(8, r3, 8)
	f.LdConst64(r2, uint64(n*8))
	f.Bge(r3, r2, sumDone)
	loadArr(f, r1, "e_ptr")
	f.Add(r1, r1, r3)
	f.Ld(8, r4, r1, 0)
	f.LdLocal(8, r5, 16)
	f.Fadd(r5, r5, r4)
	f.StLocal(8, 16, r5)
	f.Addi(r3, r3, 8)
	f.StLocal(8, 8, r3)
	f.Jmp(sumLoop)
	f.Bind(sumDone)
	f.LdLocal(8, r4, 16)
	f.LdFloat(r5, 16.0)
	f.Fmul(r4, r4, r5)
	f.Ftoi(r0, r4)
	f.LdConst64(r1, 0x7fffffff)
	f.ALU(guest.OpAnd, r0, r0, r1)
	f.Hlt(r0)
}
