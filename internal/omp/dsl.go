package omp

import (
	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/ompt"
)

// This file is the "compiler front end" for OpenMP constructs: helpers that
// emit the guest-code sequences Clang would generate for the corresponding
// pragmas (task allocation, payload capture, dependence arrays on the
// caller's stack, fork calls). Benchmarks are written against these helpers.
//
// Register conventions inside emitted sequences: R8 is the payload pointer
// handed to Fill callbacks, R9/R10 are scratch for Dep/Fill emitters, and
// emitted sequences preserve SP/FP across the whole construct.

// NewProgram creates a builder with the runtime prelude already emitted.
func NewProgram() *gbuild.Builder {
	b := gbuild.New()
	EmitPrelude(b)
	return b
}

// Parallel emits `#pragma omp parallel num_threads(n)` running microtask
// with the argument currently in argReg (pass guest.R1 to use R1 as-is).
func Parallel(f *gbuild.Func, microtask string, argReg uint8, nthreads int) {
	if argReg != guest.R1 {
		f.Mov(guest.R1, argReg)
	}
	f.LoadSym(guest.R0, microtask)
	f.Ldi(guest.R2, int32(nthreads))
	f.Call("__kmpc_fork_call")
}

// Dep describes one task dependence: Emit must leave the dependence address
// in dst (scratch allowed: R9, R10).
type Dep struct {
	Kind uint64
	Emit func(f *gbuild.Func, dst uint8)
}

// DepSym builds a dependence on a global symbol.
func DepSym(kind uint64, sym string) Dep {
	return Dep{Kind: kind, Emit: func(f *gbuild.Func, dst uint8) { f.LoadSym(dst, sym) }}
}

// DepSymOff builds a dependence on symbol+offset (array element).
func DepSymOff(kind uint64, sym string, off int32) Dep {
	return Dep{Kind: kind, Emit: func(f *gbuild.Func, dst uint8) {
		f.LoadSym(dst, sym)
		f.Addi(dst, dst, off)
	}}
}

// DepLocal builds a dependence on the current frame slot fp-off.
func DepLocal(kind uint64, off int32) Dep {
	return Dep{Kind: kind, Emit: func(f *gbuild.Func, dst uint8) { f.LocalAddr(dst, off) }}
}

// TaskOpts configures EmitTask.
type TaskOpts struct {
	// Fn is the task body function (receives the payload pointer in R0).
	Fn string
	// PayloadBytes sizes the firstprivate area copied into the descriptor.
	PayloadBytes int32
	// Fill emits the firstprivate capture: stores relative to payloadReg.
	// These stores run in *user* code, in the creating segment.
	Fill func(f *gbuild.Func, payloadReg uint8)
	// Deps lists task dependences.
	Deps []Dep
	// Flags are ompt.Flag* creation flags (detached, mergeable, ...).
	Flags uint64
}

// EmitTask emits `#pragma omp task` — allocate a descriptor from the fast
// pool, capture firstprivates into its payload, stage the dependence array
// on the caller's stack, and enqueue (running inline when the runtime
// decides the task is undeferred).
func EmitTask(f *gbuild.Func, o TaskOpts) {
	ndeps := int32(len(o.Deps))
	frame := 16*ndeps + 16 // dep array + saved descriptor slot
	f.Addi(guest.SP, guest.SP, -frame)

	// Allocate the descriptor. A NULL return (pool exhausted, possibly
	// fault-injected) skips the whole construct: the task is dropped, like
	// user code checking kmp_task_alloc's result.
	f.Ldi(guest.R0, o.PayloadBytes)
	f.LoadSym(guest.R1, o.Fn)
	f.Hcall("__kmp_task_alloc") // r0 = desc, 0 on exhaustion
	f.St(8, guest.SP, 16*ndeps, guest.R0)
	fail := f.NewLabel()
	f.Ldi(guest.R9, 0)
	f.Beq(guest.R0, guest.R9, fail)

	// Capture firstprivates (user-code stores into the payload).
	if o.Fill != nil {
		f.Addi(guest.R8, guest.R0, TDPayload)
		o.Fill(f, guest.R8)
	}

	// Stage the dependence array on the caller's stack (user-code stores,
	// like Clang's kmp_depend_info array).
	for i, d := range o.Deps {
		d.Emit(f, guest.R9)
		f.St(8, guest.SP, int32(i*16), guest.R9)
		f.Ldi(guest.R9, int32(d.Kind))
		f.St(8, guest.SP, int32(i*16+8), guest.R9)
	}

	// Enqueue.
	f.Ld(8, guest.R0, guest.SP, 16*ndeps)
	f.Mov(guest.R1, guest.SP)
	f.Ldi(guest.R2, ndeps)
	f.LdConst64(guest.R3, o.Flags)
	f.Hcall("__kmp_task_enqueue") // 0 deferred, else run inline
	skip := f.NewLabel()
	f.Ldi(guest.R9, 0)
	f.Beq(guest.R0, guest.R9, skip)
	f.Call("__kmp_invoke_task")
	f.Bind(skip)
	f.Bind(fail)
	f.Addi(guest.SP, guest.SP, frame)
}

// Taskwait emits `#pragma omp taskwait`.
func Taskwait(f *gbuild.Func) { f.Call("__kmpc_omp_taskwait") }

// ForStatic emits `#pragma omp for schedule(static)` over [0, n): each team
// member computes its contiguous chunk and runs body for every index, with
// the implicit barrier at the end. body receives the register holding the
// current index (guest.R11); it may clobber R0..R10 but must preserve
// SP/FP/R12+.
//
// Lowering (what Clang's __kmpc_for_static_init does):
//
//	tid = omp_get_thread_num(); nth = omp_get_num_threads()
//	lo = n*tid/nth; hi = n*(tid+1)/nth
//	for i = lo; i < hi; i++ { body(i) }
//	barrier
func ForStatic(f *gbuild.Func, n int32, body func(idxReg uint8)) {
	// Locals live in registers kept across the loop: R11 index, and the
	// bound parked on the stack.
	f.Call("omp_get_thread_num")
	f.Mov(guest.R11, guest.R0) // tid
	f.Call("omp_get_num_threads")
	f.Mov(guest.R10, guest.R0) // nth
	// lo = n*tid/nth
	f.Muli(guest.R9, guest.R11, n)
	f.Div(guest.R9, guest.R9, guest.R10)
	// hi = n*(tid+1)/nth
	f.Addi(guest.R11, guest.R11, 1)
	f.Muli(guest.R11, guest.R11, n)
	f.Div(guest.R11, guest.R11, guest.R10)
	// Park hi; loop with index in R11.
	f.Push(guest.R11)
	f.Mov(guest.R11, guest.R9)
	loop := f.NewLabel()
	done := f.NewLabel()
	f.Bind(loop)
	f.Ld(8, guest.R10, guest.SP, 0) // hi
	f.Bge(guest.R11, guest.R10, done)
	f.Push(guest.R11)
	body(guest.R11)
	f.Pop(guest.R11)
	f.Addi(guest.R11, guest.R11, 1)
	f.Jmp(loop)
	f.Bind(done)
	f.Pop(guest.R11)
	f.Call("__kmp_task_barrier") // the worksharing construct's barrier
}

// TaskwaitDeps emits `#pragma omp taskwait depend(...)` (OpenMP 5.0): wait
// only for the child tasks the dependences select.
func TaskwaitDeps(f *gbuild.Func, deps []Dep) {
	ndeps := int32(len(deps))
	frame := 16 * ndeps
	f.Addi(guest.SP, guest.SP, -frame)
	for i, d := range deps {
		d.Emit(f, guest.R9)
		f.St(8, guest.SP, int32(i*16), guest.R9)
		f.Ldi(guest.R9, int32(d.Kind))
		f.St(8, guest.SP, int32(i*16+8), guest.R9)
	}
	f.Mov(guest.R0, guest.SP)
	f.Ldi(guest.R1, ndeps)
	f.Call("__kmpc_omp_taskwait_deps")
	f.Addi(guest.SP, guest.SP, frame)
}

// Barrier emits `#pragma omp barrier`.
func Barrier(f *gbuild.Func) { f.Call("__kmpc_barrier") }

// Taskgroup emits `#pragma omp taskgroup { body }`.
func Taskgroup(f *gbuild.Func, body func()) {
	f.Call("__kmpc_taskgroup")
	body()
	f.Call("__kmpc_end_taskgroup")
}

// Single emits `#pragma omp single { body }` (with the implicit barrier).
func Single(f *gbuild.Func, body func()) {
	SingleNowait(f, body)
	f.Call("__kmp_task_barrier")
}

// SingleNowait emits `#pragma omp single nowait { body }`.
func SingleNowait(f *gbuild.Func, body func()) {
	f.Hcall("__kmp_single_enter")
	skip := f.NewLabel()
	f.Ldi(guest.R1, 0)
	f.Beq(guest.R0, guest.R1, skip)
	body()
	f.Bind(skip)
}

// Critical emits `#pragma omp critical` with the given lock id.
func Critical(f *gbuild.Func, lockID int32, body func()) {
	f.Ldi(guest.R0, lockID)
	f.Call("__kmpc_critical")
	body()
	f.Ldi(guest.R0, lockID)
	f.Call("__kmpc_end_critical")
}

// MutexInit emits creation of a guest mutex, storing its handle into the
// global sym. Call it from serial code (or inside a single) before the
// threads that contend on it start — the fork edge orders the handle
// publication.
func MutexInit(f *gbuild.Func, sym string) {
	f.Call("__kmpc_mutex_init")
	f.LoadSym(guest.R1, sym)
	f.St(8, guest.R1, 0, guest.R0)
}

// loadHandle loads the lock handle stored in global sym into dst.
func loadHandle(f *gbuild.Func, sym string, dst uint8) {
	f.LoadSym(dst, sym)
	f.Ld(8, dst, dst, 0)
}

// WithMutex emits lock(sym); body; unlock(sym).
func WithMutex(f *gbuild.Func, sym string, body func()) {
	loadHandle(f, sym, guest.R0)
	f.Call("__kmpc_mutex_lock")
	body()
	loadHandle(f, sym, guest.R0)
	f.Call("__kmpc_mutex_unlock")
}

// TryMutex emits `if (trylock(sym)) { body; unlock } else { elseBody }`.
// elseBody may be nil.
func TryMutex(f *gbuild.Func, sym string, body, elseBody func()) {
	loadHandle(f, sym, guest.R0)
	f.Call("__kmpc_mutex_trylock")
	busy := f.NewLabel()
	done := f.NewLabel()
	f.Ldi(guest.R1, 0)
	f.Beq(guest.R0, guest.R1, busy)
	body()
	loadHandle(f, sym, guest.R0)
	f.Call("__kmpc_mutex_unlock")
	f.Jmp(done)
	f.Bind(busy)
	if elseBody != nil {
		elseBody()
	}
	f.Bind(done)
}

// CondInit emits creation of a guest condvar, storing its handle into sym.
func CondInit(f *gbuild.Func, sym string) {
	f.Call("__kmpc_cond_init")
	f.LoadSym(guest.R1, sym)
	f.St(8, guest.R1, 0, guest.R0)
}

// CondWait emits wait(condSym, mutexSym): the caller must hold the mutex;
// it is released during the wait and reacquired before control returns.
// Callers must re-check their predicate in a loop (spurious wakeups).
func CondWait(f *gbuild.Func, condSym, mutexSym string) {
	loadHandle(f, condSym, guest.R0)
	loadHandle(f, mutexSym, guest.R1)
	f.Call("__kmpc_cond_wait")
}

// CondSignal emits signal(condSym).
func CondSignal(f *gbuild.Func, condSym string) {
	loadHandle(f, condSym, guest.R0)
	f.Call("__kmpc_cond_signal")
}

// CondBroadcast emits broadcast(condSym).
func CondBroadcast(f *gbuild.Func, condSym string) {
	loadHandle(f, condSym, guest.R0)
	f.Call("__kmpc_cond_broadcast")
}

// AssumeDeferrable emits the §V-B client-request annotation telling
// Taskgrind that subsequently created tasks are semantically deferrable.
func AssumeDeferrable(f *gbuild.Func, on bool) {
	v := int32(0)
	if on {
		v = 1
	}
	f.Ldi(guest.R0, v)
	f.Creq(ompt.CRAssumeDeferrable)
}
