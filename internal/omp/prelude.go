package omp

import (
	"repro/internal/gbuild"
	"repro/internal/guest"
)

// EmitPrelude appends the guest-side runtime code to a program: the
// __kmp_* dispatch loops and the __kmpc_* entry points user code calls.
// These are genuine guest functions — the DBI framework instruments them
// like any other binary code, which is why Taskgrind needs the __kmp
// ignore-list (§IV-A).
func EmitPrelude(b *gbuild.Builder) {
	const file = "libomp.c"

	// __kmpc_fork_call(fn, arg, nthreads): run a parallel region.
	f := b.Func("__kmpc_fork_call", file)
	f.Enter(16)
	f.Hcall("__kmp_fork_setup") // r0 = region desc, 0 when the pool is exhausted
	fail := f.NewLabel()
	f.Ldi(guest.R1, 0)
	f.Beq(guest.R0, guest.R1, fail)
	f.StLocal(8, 8, guest.R0)
	f.Call("__kmp_run_implicit")
	join := f.NewLabel()
	f.Bind(join)
	f.LdLocal(8, guest.R0, 8)
	f.Hcall("__kmp_join_wait") // 1 done, 0 keep waiting
	f.Ldi(guest.R1, 0)
	f.Beq(guest.R0, guest.R1, join)
	f.Bind(fail)
	f.Leave()

	// __kmp_run_implicit(desc): execute this thread's implicit task, then
	// the end-of-region barrier.
	f = b.Func("__kmp_run_implicit", file)
	f.Enter(16)
	f.StLocal(8, 8, guest.R0)
	f.Hcall("__kmp_implicit_begin") // returns desc
	// Unsynchronized shared bookkeeping, like a real runtime's internal
	// counters: a benign determinacy race the ignore-list must filter.
	f.Ld(8, guest.R3, guest.R0, rdStats)
	f.Addi(guest.R3, guest.R3, 1)
	f.St(8, guest.R0, rdStats, guest.R3)
	f.Ld(8, guest.R2, guest.R0, rdFn)
	f.Ld(8, guest.R1, guest.R0, rdArg)
	f.Mov(guest.R0, guest.R1)
	f.CallReg(guest.R2) // microtask(arg)
	f.Call("__kmp_task_barrier")
	f.LdLocal(8, guest.R0, 8)
	f.Hcall("__kmp_implicit_end")
	f.Leave()

	// __kmp_worker_entry: pool worker main loop (never returns).
	f = b.Func("__kmp_worker_entry", file)
	loop := f.NewLabel()
	f.Bind(loop)
	f.Hcall("__kmp_worker_wait") // region desc, or 0 to re-poll
	f.Ldi(guest.R1, 0)
	f.Beq(guest.R0, guest.R1, loop)
	f.Call("__kmp_run_implicit")
	f.Jmp(loop)

	// pollLoop emits the common poll-drain shape: hcall `poll` returns
	// 0 (blocked; retry), 1 (done) or a task descriptor to run.
	pollLoop := func(f *gbuild.Func, poll string) {
		f.Enter(0)
		l := f.NewLabel()
		done := f.NewLabel()
		f.Bind(l)
		f.Hcall(poll)
		f.Ldi(guest.R1, 1)
		f.Beq(guest.R0, guest.R1, done)
		f.Ldi(guest.R1, 0)
		f.Beq(guest.R0, guest.R1, l)
		f.Call("__kmp_invoke_task")
		f.Jmp(l)
		f.Bind(done)
		f.Leave()
	}

	// __kmp_task_barrier: team barrier, draining tasks.
	f = b.Func("__kmp_task_barrier", file)
	pollLoop(f, "__kmp_barrier_poll")

	// __kmpc_omp_taskwait: wait for the current task's children.
	f = b.Func("__kmpc_omp_taskwait", file)
	pollLoop(f, "__kmp_taskwait_poll")

	// __kmpc_end_taskgroup: wait for the innermost taskgroup.
	f = b.Func("__kmpc_end_taskgroup", file)
	pollLoop(f, "__kmp_taskgroup_poll")

	// __kmpc_omp_taskwait_deps(depArr, ndeps): OpenMP 5.0 dependent
	// taskwait.
	f = b.Func("__kmpc_omp_taskwait_deps", file)
	f.Enter(0)
	f.Hcall("__kmp_taskwait_deps_init")
	twd := f.NewLabel()
	twdDone := f.NewLabel()
	f.Bind(twd)
	f.Hcall("__kmp_taskwait_deps_poll")
	f.Ldi(guest.R1, 1)
	f.Beq(guest.R0, guest.R1, twdDone)
	f.Ldi(guest.R1, 0)
	f.Beq(guest.R0, guest.R1, twd)
	f.Call("__kmp_invoke_task")
	f.Jmp(twd)
	f.Bind(twdDone)
	f.Leave()

	// __kmpc_taskgroup: open a taskgroup.
	f = b.Func("__kmpc_taskgroup", file)
	f.Hcall("__kmp_taskgroup_begin")
	f.Ret()

	// __kmpc_barrier: explicit team barrier.
	f = b.Func("__kmpc_barrier", file)
	f.Enter(0)
	f.Call("__kmp_task_barrier")
	f.Leave()

	// __kmp_invoke_task(desc): run one explicit task body.
	f = b.Func("__kmp_invoke_task", file)
	f.Enter(16)
	f.Hcall("__kmp_task_begin") // r0 = desc
	f.StLocal(8, 8, guest.R0)
	f.Ld(8, guest.R2, guest.R0, TDFn)
	f.Addi(guest.R0, guest.R0, TDPayload) // task fn gets the payload ptr
	f.CallReg(guest.R2)
	f.LdLocal(8, guest.R0, 8)
	f.Hcall("__kmp_task_end")
	f.Leave()

	// __kmpc_critical(lockID) / __kmpc_end_critical(lockID).
	f = b.Func("__kmpc_critical", file)
	f.Enter(16)
	f.StLocal(8, 8, guest.R0)
	retry := f.NewLabel()
	f.Bind(retry)
	f.LdLocal(8, guest.R0, 8)
	f.Hcall("__kmp_critical_enter") // 1 acquired, 0 retry
	f.Ldi(guest.R1, 0)
	f.Beq(guest.R0, guest.R1, retry)
	f.Leave()

	f = b.Func("__kmpc_end_critical", file)
	f.Hcall("__kmp_critical_exit")
	f.Ret()

	// Guest-level mutexes and condvars. The descriptors live in guest
	// memory (fast pool), and every wrapper loads the lock/generation word
	// before its host call — genuine tool-visible accesses to runtime
	// internals, the §IV-A pitfall the ignore-list exists for. State
	// *mutation* stays in the host calls: a guest-side release store would
	// open a window where another thread's host call sees stale ownership.

	// __kmpc_mutex_init() -> handle (0 on pool exhaustion).
	f = b.Func("__kmpc_mutex_init", file)
	f.Hcall("__kmp_mutex_init")
	f.Ret()

	// __kmpc_mutex_lock(handle): spin-read the lock word, attempt via the
	// host call, retry after every wakeup (another contender may have
	// barged in — the schedule-dependent handoff).
	f = b.Func("__kmpc_mutex_lock", file)
	f.Enter(16)
	f.StLocal(8, 8, guest.R0)
	mlRetry := f.NewLabel()
	f.Bind(mlRetry)
	f.LdLocal(8, guest.R0, 8)
	f.Ld(8, guest.R9, guest.R0, 0) // tool-visible read of the lock word
	f.Hcall("__kmp_mutex_lock")    // 1 acquired, 0 retry
	f.Ldi(guest.R1, 0)
	f.Beq(guest.R0, guest.R1, mlRetry)
	f.Leave()

	// __kmpc_mutex_trylock(handle) -> 1 acquired, 0 busy.
	f = b.Func("__kmpc_mutex_trylock", file)
	f.Ld(8, guest.R9, guest.R0, 0)
	f.Hcall("__kmp_mutex_trylock")
	f.Ret()

	// __kmpc_mutex_unlock(handle).
	f = b.Func("__kmpc_mutex_unlock", file)
	f.Ld(8, guest.R9, guest.R0, 0)
	f.Hcall("__kmp_mutex_unlock")
	f.Ret()

	// __kmpc_cond_init() -> handle (0 on pool exhaustion).
	f = b.Func("__kmpc_cond_init", file)
	f.Hcall("__kmp_cond_init")
	f.Ret()

	// __kmpc_cond_wait(cond, mutex): release the mutex and wait for a
	// signal (the host call blocks; 0 means keep polling), then reacquire
	// the mutex. Callers re-check their predicate — spurious wakeups are
	// allowed, and the fault injector provokes them.
	f = b.Func("__kmpc_cond_wait", file)
	f.Enter(24)
	f.StLocal(8, 8, guest.R0)
	f.StLocal(8, 16, guest.R1)
	cwPoll := f.NewLabel()
	f.Bind(cwPoll)
	f.LdLocal(8, guest.R0, 8)
	f.LdLocal(8, guest.R1, 16)
	f.Ld(8, guest.R9, guest.R0, 0) // tool-visible read of the generation word
	f.Hcall("__kmp_cond_wait")     // 1 woken, 0 keep waiting
	f.Ldi(guest.R1, 0)
	f.Beq(guest.R0, guest.R1, cwPoll)
	f.LdLocal(8, guest.R0, 16)
	f.Call("__kmpc_mutex_lock")
	f.Leave()

	// __kmpc_cond_signal(cond) / __kmpc_cond_broadcast(cond).
	f = b.Func("__kmpc_cond_signal", file)
	f.Ld(8, guest.R9, guest.R0, 0)
	f.Hcall("__kmp_cond_signal")
	f.Ret()

	f = b.Func("__kmpc_cond_broadcast", file)
	f.Ld(8, guest.R9, guest.R0, 0)
	f.Hcall("__kmp_cond_broadcast")
	f.Ret()

	// omp_get_thread_num / omp_get_num_threads / omp_fulfill_event.
	f = b.Func("omp_get_thread_num", file)
	f.Hcall("__kmp_get_thread_num")
	f.Ret()

	f = b.Func("omp_get_num_threads", file)
	f.Hcall("__kmp_get_num_threads")
	f.Ret()

	f = b.Func("omp_fulfill_event", file)
	f.Hcall("__kmp_fulfill_event")
	f.Ret()
}
