package omp_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/harness"
	"repro/internal/omp"
	"repro/internal/ompt"
)

// depSpec is one task's dependence list in the random-DAG property test.
type depSpec struct {
	addrIdx int
	kind    uint64
}

// mustPrecede computes the OpenMP dependence ordering for a creation-order
// sequence of dependence lists: per address, an in-task depends on the last
// writer set; a writer depends on the last writer set and the readers since.
// (inoutset/mutexinoutset are exercised by their dedicated tests; this model
// covers in/out/inout, the combinations DRB exercises most.)
func mustPrecede(specs [][]depSpec, naddrs int) map[[2]int]bool {
	type slot struct {
		writers []int
		readers []int
	}
	slots := make([]slot, naddrs)
	ordered := map[[2]int]bool{}
	dep := func(pred, succ int) {
		if pred != succ {
			ordered[[2]int{pred, succ}] = true
		}
	}
	for task, deps := range specs {
		for _, d := range deps {
			s := &slots[d.addrIdx]
			switch d.kind {
			case ompt.DepIn:
				for _, w := range s.writers {
					dep(w, task)
				}
				s.readers = append(s.readers, task)
			default: // out / inout
				for _, w := range s.writers {
					dep(w, task)
				}
				for _, r := range s.readers {
					dep(r, task)
				}
				s.writers = []int{task}
				s.readers = nil
			}
		}
	}
	return ordered
}

// buildDepDAGProgram emits: each task first checks that every model-required
// predecessor has set its done flag (accumulating violations into a global),
// then sets its own flag. The exit code is the violation count — nonzero
// means the runtime executed a task before a dependence predecessor
// finished.
func buildDepDAGProgram(specs [][]depSpec, naddrs int, ordered map[[2]int]bool) *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("deptokens", uint64(naddrs*8))
	b.Global("doneflags", uint64(len(specs)*8))
	b.Global("violations", 8)

	for task := range specs {
		f := b.Func(fmt.Sprintf("task%d", task), "dag.c")
		f.Enter(0)
		for pred := range specs {
			if !ordered[[2]int{pred, task}] {
				continue
			}
			// if doneflags[pred] == 0: violations++ (single writer per
			// violation slot is irrelevant; any nonzero value fails
			// the test).
			okL := f.NewLabel()
			f.LoadSym(guest.R1, "doneflags")
			f.Ld(8, guest.R2, guest.R1, int32(pred*8))
			f.Ldi(guest.R3, 1)
			f.Beq(guest.R2, guest.R3, okL)
			f.LoadSym(guest.R1, "violations")
			f.Ld(8, guest.R2, guest.R1, 0)
			f.Addi(guest.R2, guest.R2, 1)
			f.St(8, guest.R1, 0, guest.R2)
			f.Bind(okL)
		}
		// A little work to widen the schedule window.
		f.Ldi(guest.R4, 0)
		spin := f.NewLabel()
		f.Bind(spin)
		f.Addi(guest.R4, guest.R4, 1)
		f.Ldi(guest.R5, 12)
		f.Blt(guest.R4, guest.R5, spin)
		// done[self] = 1.
		f.LoadSym(guest.R1, "doneflags")
		f.Ldi(guest.R2, 1)
		f.St(8, guest.R1, int32(task*8), guest.R2)
		f.Leave()
	}

	f := b.Func("micro", "dag.c")
	f.Enter(0)
	fn := f
	omp.SingleNowait(f, func() {
		for task, deps := range specs {
			var ds []omp.Dep
			for _, d := range deps {
				ds = append(ds, omp.DepSymOff(d.kind, "deptokens", int32(d.addrIdx*8)))
			}
			omp.EmitTask(fn, omp.TaskOpts{Fn: fmt.Sprintf("task%d", task), Deps: ds})
		}
		omp.Taskwait(fn)
	})
	f.Leave()

	f = b.Func("main", "dag.c")
	f.Enter(0)
	f.Ldi(guest.R1, 0)
	omp.Parallel(f, "micro", guest.R1, 4)
	f.LoadSym(guest.R1, "violations")
	f.Ld(8, guest.R0, guest.R1, 0)
	f.Hlt(guest.R0)
	return b
}

// TestQuickDependenceSemantics: for random dependence DAGs and random
// schedules, the runtime never runs a task before its model-required
// predecessors completed.
func TestQuickDependenceSemantics(t *testing.T) {
	kinds := []uint64{ompt.DepIn, ompt.DepOut, ompt.DepInout}
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 100))
		ntasks := 4 + rng.Intn(6)
		naddrs := 1 + rng.Intn(3)
		specs := make([][]depSpec, ntasks)
		for i := range specs {
			n := 1 + rng.Intn(2)
			for d := 0; d < n; d++ {
				specs[i] = append(specs[i], depSpec{
					addrIdx: rng.Intn(naddrs),
					kind:    kinds[rng.Intn(len(kinds))],
				})
			}
		}
		ordered := mustPrecede(specs, naddrs)
		b := buildDepDAGProgram(specs, naddrs, ordered)
		for seed := uint64(1); seed <= 4; seed++ {
			res, _, err := harness.BuildAndRun(b, harness.Setup{Seed: seed, Threads: 4})
			if err != nil || res.Err != nil {
				t.Fatalf("trial %d seed %d: %v %v", trial, seed, err, res.Err)
			}
			if res.ExitCode != 0 {
				t.Fatalf("trial %d seed %d: %d dependence violations (specs %v)",
					trial, seed, res.ExitCode, specs)
			}
			b = buildDepDAGProgram(specs, naddrs, ordered)
		}
	}
}
