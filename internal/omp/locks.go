package omp

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/obs"
	"repro/internal/vm"
)

// Guest-level mutex/condvar primitives. Like the task deques, descriptor
// state lives in *guest memory* (allocated from the __kmp fast pool), so the
// lock word is a tool-visible location: the emitted __kmpc_mutex_* wrappers
// load it on every attempt, and a tool without the __kmp ignore-list drowns
// in runtime-internal accesses (§IV-A, organically). Policy — who blocks,
// who is handed the lock — is host calls, playing the futex role.
//
// Handoff is seed-deterministic: with more than one waiter the wakeup target
// is drawn from the scheduler PRNG (vm.SchedRand), so lock handoff order is
// a pure function of (program, seed) and replays byte-for-byte. Lock-free
// programs never reach a multi-waiter queue and therefore never perturb the
// PRNG stream — the solo-loop fast path is untouched.

// Mutex descriptor layout in guest memory.
const (
	// mxWord: the lock word — 0 free, 1 held. Read by guest wrappers.
	mxWord = 0
	// mxOwner: holder's thread id + 1 (0 = none).
	mxOwner = 8
	// mxWaiters: current queue length (guest-visible contention gauge).
	mxWaiters = 16
	mxLen     = 24
)

// Condvar descriptor layout in guest memory.
const (
	// cvSeq: signal generation, bumped on every signal/broadcast. The
	// waiter's wrapper reads it each poll — the tool-visible handoff trace.
	cvSeq = 0
	// cvWaiters: current queue length.
	cvWaiters = 8
	cvLen     = 16
)

// Condvar wait protocol states (ThreadState.condState).
const (
	condIdle uint8 = iota
	// condQueued: blocked on the condvar, not yet signalled.
	condQueued
	// condSignaled: a signal picked this waiter; its next poll returns.
	condSignaled
)

// hMutexInit allocates a mutex descriptor from the fast pool and returns its
// guest address (0 on exhaustion, like any other pool failure).
func (r *Runtime) hMutexInit(m *vm.Machine, t *vm.Thread) vm.HostResult {
	addr := r.Pool.Alloc(mxLen)
	if addr == 0 {
		r.AllocFailures++
		return vm.HostResult{Ret: 0}
	}
	r.mapAlloc(m, addr)
	m.Mem.Store(addr+mxWord, 8, 0)
	m.Mem.Store(addr+mxOwner, 8, 0)
	m.Mem.Store(addr+mxWaiters, 8, 0)
	return vm.HostResult{Ret: addr}
}

// hMutexLock attempts to take the mutex at R0. Contenders queue and block;
// a woken waiter's retry loop re-attempts (another thread may have barged in
// between the handoff and the retry — that is the schedule-dependent part).
func (r *Runtime) hMutexLock(m *vm.Machine, t *vm.Thread) vm.HostResult {
	ts := r.ts(t)
	addr := t.Regs[guest.R0]
	if m.Mem.Load(addr+mxWord, 8) == 0 {
		m.Mem.Store(addr+mxWord, 8, 1)
		m.Mem.Store(addr+mxOwner, 8, uint64(t.ID)+1)
		r.MutexAcquires++
		r.Events.MutexAcquire(t, addr)
		r.emit(obs.PhaseBegin, t, "mutex", map[string]any{"addr": addr})
		return vm.HostResult{Ret: 1}
	}
	if m.Mem.Load(addr+mxOwner, 8) == uint64(t.ID)+1 {
		// Recursive acquire by the holder: a no-op, counted once.
		return vm.HostResult{Ret: 1}
	}
	r.MutexContended++
	r.mutexQueue[addr] = append(r.mutexQueue[addr], ts)
	m.Mem.Store(addr+mxWaiters, 8, uint64(len(r.mutexQueue[addr])))
	return vm.HostResult{Action: vm.HostBlock, Reason: fmt.Sprintf("mutex 0x%x", addr)}
}

// hMutexTrylock is the non-blocking attempt. The TrylockFail injector makes
// it fail even when the lock is free (the POSIX "weak trylock").
func (r *Runtime) hMutexTrylock(m *vm.Machine, t *vm.Thread) vm.HostResult {
	addr := t.Regs[guest.R0]
	if r.TrylockFail != nil && r.TrylockFail() {
		r.TrylocksFailed++
		return vm.HostResult{Ret: 0}
	}
	if m.Mem.Load(addr+mxWord, 8) != 0 {
		return vm.HostResult{Ret: 0}
	}
	m.Mem.Store(addr+mxWord, 8, 1)
	m.Mem.Store(addr+mxOwner, 8, uint64(t.ID)+1)
	r.MutexAcquires++
	r.Events.MutexAcquire(t, addr)
	r.emit(obs.PhaseBegin, t, "mutex", map[string]any{"addr": addr, "try": true})
	return vm.HostResult{Ret: 1}
}

// hMutexUnlock releases the mutex at R0 and wakes one waiter.
func (r *Runtime) hMutexUnlock(m *vm.Machine, t *vm.Thread) vm.HostResult {
	addr := t.Regs[guest.R0]
	r.releaseMutex(m, t, addr)
	return vm.HostResult{}
}

// releaseMutex clears the guest lock state, raises the release event and
// hands off to a waiter (shared by unlock and cond-wait).
func (r *Runtime) releaseMutex(m *vm.Machine, t *vm.Thread, addr uint64) {
	if m.Mem.Load(addr+mxOwner, 8) != uint64(t.ID)+1 {
		panic("omp: mutex unlock by non-owner")
	}
	m.Mem.Store(addr+mxWord, 8, 0)
	m.Mem.Store(addr+mxOwner, 8, 0)
	r.Events.MutexRelease(t, addr)
	r.emit(obs.PhaseEnd, t, "mutex", map[string]any{"addr": addr})
	r.wakeMutexWaiter(m, addr)
}

// wakeMutexWaiter picks the handoff target. With one waiter the choice is
// forced; with several it is drawn from the scheduler PRNG, and the
// LockDelay injector rotates the pick to model a delayed wakeup losing to
// another contender. Every unlock with a non-empty queue wakes exactly one
// waiter, so no wakeup is ever lost.
func (r *Runtime) wakeMutexWaiter(m *vm.Machine, addr uint64) {
	q := r.mutexQueue[addr]
	if len(q) == 0 {
		return
	}
	i := 0
	if len(q) > 1 {
		i = int(m.SchedRand() % uint64(len(q)))
	}
	if r.LockDelay != nil && r.LockDelay() {
		i = (i + 1) % len(q)
	}
	next := q[i]
	r.mutexQueue[addr] = append(q[:i:i], q[i+1:]...)
	m.Mem.Store(addr+mxWaiters, 8, uint64(len(r.mutexQueue[addr])))
	r.MutexHandoffs++
	next.T.Wake()
}

// hCondInit allocates a condvar descriptor from the fast pool.
func (r *Runtime) hCondInit(m *vm.Machine, t *vm.Thread) vm.HostResult {
	addr := r.Pool.Alloc(cvLen)
	if addr == 0 {
		r.AllocFailures++
		return vm.HostResult{Ret: 0}
	}
	r.mapAlloc(m, addr)
	m.Mem.Store(addr+cvSeq, 8, 0)
	m.Mem.Store(addr+cvWaiters, 8, 0)
	return vm.HostResult{Ret: addr}
}

// hCondWait implements one poll of the wait loop (R0=cond, R1=mutex). The
// first call releases the mutex and blocks; a signalled waiter's next call
// returns 1 and raises the happens-before acquire. The LockSpurious injector
// returns immediately without queuing — a POSIX spurious wakeup, with no
// CondWait event because there is no matching signal.
func (r *Runtime) hCondWait(m *vm.Machine, t *vm.Thread) vm.HostResult {
	ts := r.ts(t)
	cond := t.Regs[guest.R0]
	mutex := t.Regs[guest.R1]
	switch ts.condState {
	case condSignaled:
		ts.condState = condIdle
		r.Events.CondWait(t, cond, mutex)
		return vm.HostResult{Ret: 1}
	case condQueued:
		// Still waiting (woken spuriously by the scheduler): re-block.
		return vm.HostResult{Action: vm.HostBlock, Reason: fmt.Sprintf("cond 0x%x", cond)}
	}
	r.CondWaits++
	r.releaseMutex(m, t, mutex)
	if r.LockSpurious != nil && r.LockSpurious() {
		r.CondSpurious++
		return vm.HostResult{Ret: 1}
	}
	ts.condState = condQueued
	r.condQueue[cond] = append(r.condQueue[cond], ts)
	m.Mem.Store(cond+cvWaiters, 8, uint64(len(r.condQueue[cond])))
	return vm.HostResult{Action: vm.HostBlock, Reason: fmt.Sprintf("cond 0x%x", cond)}
}

// hCondSignal bumps the generation word and wakes one waiter, chosen from
// the scheduler PRNG when several are queued. Signalling with no waiters is
// a lost signal, as in POSIX.
func (r *Runtime) hCondSignal(m *vm.Machine, t *vm.Thread) vm.HostResult {
	cond := t.Regs[guest.R0]
	m.Mem.Store(cond+cvSeq, 8, m.Mem.Load(cond+cvSeq, 8)+1)
	r.CondSignals++
	r.Events.CondSignal(t, cond)
	q := r.condQueue[cond]
	if len(q) > 0 {
		i := 0
		if len(q) > 1 {
			i = int(m.SchedRand() % uint64(len(q)))
		}
		w := q[i]
		r.condQueue[cond] = append(q[:i:i], q[i+1:]...)
		m.Mem.Store(cond+cvWaiters, 8, uint64(len(r.condQueue[cond])))
		w.condState = condSignaled
		w.T.Wake()
	}
	return vm.HostResult{}
}

// hCondBroadcast wakes every waiter in queue order.
func (r *Runtime) hCondBroadcast(m *vm.Machine, t *vm.Thread) vm.HostResult {
	cond := t.Regs[guest.R0]
	m.Mem.Store(cond+cvSeq, 8, m.Mem.Load(cond+cvSeq, 8)+1)
	r.CondSignals++
	r.Events.CondBroadcast(t, cond)
	for _, w := range r.condQueue[cond] {
		w.condState = condSignaled
		w.T.Wake()
	}
	delete(r.condQueue, cond)
	m.Mem.Store(cond+cvWaiters, 8, 0)
	return vm.HostResult{}
}
