package omp_test

import (
	"testing"

	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/harness"
	"repro/internal/omp"
	"repro/internal/ompt"
	"repro/internal/vm"
)

// TestDetachedTaskWaitsForFulfill: a detached task's completion is deferred
// to omp_fulfill_event; taskwait must not pass until a sibling fulfills it,
// and the end state must reflect both.
func TestDetachedTaskWaitsForFulfill(t *testing.T) {
	build := func() *gbuild.Builder {
		b := omp.NewProgram()
		b.Global("flag", 8)
		b.Global("det_id", 8)

		f := b.Func("det", "detach.c")
		f.LoadSym(R1, "flag")
		f.Ldi(R2, 1)
		f.St(8, R1, 0, R2)
		f.Ret()

		f = b.Func("ful", "detach.c")
		f.Enter(0)
		f.LoadSym(R1, "det_id")
		f.Ld(8, R0, R1, 0)
		f.Hcall("__kmp_fulfill_event")
		f.Leave()

		f = b.Func("micro", "detach.c")
		f.Enter(0)
		fn := f
		omp.SingleNowait(f, func() {
			omp.EmitTask(fn, omp.TaskOpts{Fn: "det", Flags: ompt.FlagDetached})
			// Record the detached task's id for the fulfiller.
			fn.Hcall("test_last_task_id")
			fn.LoadSym(R1, "det_id")
			fn.St(8, R1, 0, R0)
			omp.EmitTask(fn, omp.TaskOpts{Fn: "ful"})
			omp.Taskwait(fn)
			// Past the taskwait: the detached task is complete.
			fn.LoadSym(R1, "flag")
			fn.Ld(8, R2, R1, 0)
			fn.Muli(R2, R2, 42)
			fn.St(8, R1, 0, R2)
		})
		f.Leave()

		f = b.Func("main", "detach.c")
		f.Enter(0)
		f.Ldi(R1, 0)
		omp.Parallel(f, "micro", R1, 4)
		f.LoadSym(R1, "flag")
		f.Ld(8, R0, R1, 0)
		f.Hlt(R0)
		return b
	}
	for seed := uint64(1); seed <= 6; seed++ {
		res, _, err := harness.BuildAndRun(build(), harness.Setup{
			Seed: seed, Threads: 4,
			ExtraHost: func(reg *vm.HostRegistry, inst *harness.Instance) {
				reg.Register("test_last_task_id", func(m *vm.Machine, th *vm.Thread) vm.HostResult {
					return vm.HostResult{Ret: inst.OMP.LastExplicitTaskID()}
				})
			},
		})
		if err != nil || res.Err != nil {
			t.Fatal(err, res.Err)
		}
		if res.ExitCode != 42 {
			t.Fatalf("seed %d: flag = %d, want 42 (detach completion ordering)", seed, res.ExitCode)
		}
	}
}

// TestExplicitBarrierOrders: `#pragma omp barrier` separates the two phases
// on every thread: each thread writes its slot in phase 1 and reads its
// neighbour's slot in phase 2.
func TestExplicitBarrierOrders(t *testing.T) {
	build := func() *gbuild.Builder {
		b := omp.NewProgram()
		b.Global("slots", 8*4)
		b.Global("sum", 8)

		f := b.Func("micro", "bar.c")
		f.Enter(32)
		f.Call("omp_get_thread_num")
		f.StLocal(8, 8, R0)
		// slots[tid] = tid + 1
		f.Muli(R1, R0, 8)
		f.LoadSym(R2, "slots")
		f.Add(R2, R2, R1)
		f.Addi(R3, R0, 1)
		f.St(8, R2, 0, R3)
		omp.Barrier(f)
		// read slots[(tid+1)%4] — written by the neighbour before the
		// barrier.
		f.LdLocal(8, R0, 8)
		f.Addi(R0, R0, 1)
		f.Andi(R0, R0, 3)
		f.Muli(R1, R0, 8)
		f.LoadSym(R2, "slots")
		f.Add(R2, R2, R1)
		f.Ld(8, R3, R2, 0)
		fn := f
		omp.Critical(f, 2, func() {
			fn.LoadSym(guest.R9, "sum")
			fn.Ld(8, guest.R10, guest.R9, 0)
			fn.Add(guest.R10, guest.R10, R3)
			fn.St(8, guest.R9, 0, guest.R10)
		})
		f.Leave()

		f = b.Func("main", "bar.c")
		f.Enter(0)
		f.Ldi(R1, 0)
		omp.Parallel(f, "micro", R1, 4)
		f.LoadSym(R1, "sum")
		f.Ld(8, R0, R1, 0)
		f.Hlt(R0)
		return b
	}
	for seed := uint64(1); seed <= 8; seed++ {
		res, _, err := harness.BuildAndRun(build(), harness.Setup{Seed: seed, Threads: 4})
		if err != nil || res.Err != nil {
			t.Fatal(err, res.Err)
		}
		if res.ExitCode != 10 {
			t.Fatalf("seed %d: sum = %d, want 10 (barrier must order phases)", seed, res.ExitCode)
		}
	}
}

// TestSingleClaimedExactlyOnce: N single constructs are each executed by
// exactly one thread.
func TestSingleClaimedExactlyOnce(t *testing.T) {
	build := func() *gbuild.Builder {
		b := omp.NewProgram()
		b.Global("count", 8)
		f := b.Func("micro", "single.c")
		f.Enter(0)
		fn := f
		for i := 0; i < 3; i++ {
			omp.Single(f, func() {
				omp.Critical(fn, 5, func() {
					fn.LoadSym(guest.R9, "count")
					fn.Ld(8, guest.R10, guest.R9, 0)
					fn.Addi(guest.R10, guest.R10, 1)
					fn.St(8, guest.R9, 0, guest.R10)
				})
			})
		}
		f.Leave()
		f = b.Func("main", "single.c")
		f.Enter(0)
		f.Ldi(R1, 0)
		omp.Parallel(f, "micro", R1, 4)
		f.LoadSym(R1, "count")
		f.Ld(8, R0, R1, 0)
		f.Hlt(R0)
		return b
	}
	for seed := uint64(1); seed <= 6; seed++ {
		res, _, err := harness.BuildAndRun(build(), harness.Setup{Seed: seed, Threads: 4})
		if err != nil || res.Err != nil {
			t.Fatal(err, res.Err)
		}
		if res.ExitCode != 3 {
			t.Fatalf("seed %d: singles executed %d times, want 3", seed, res.ExitCode)
		}
	}
}

// TestNestedParallelSerializes: a parallel region inside a parallel region
// runs with a team of one (nesting disabled), and still computes correctly.
func TestNestedParallelSerializes(t *testing.T) {
	b := omp.NewProgram()
	b.Global("acc", 8)

	f := b.Func("inner", "nest.c")
	fn := f
	f.Enter(0)
	omp.Critical(f, 3, func() {
		fn.LoadSym(guest.R9, "acc")
		fn.Ld(8, guest.R10, guest.R9, 0)
		fn.Addi(guest.R10, guest.R10, 1)
		fn.St(8, guest.R9, 0, guest.R10)
	})
	f.Leave()

	f = b.Func("outer", "nest.c")
	f.Enter(0)
	f.Ldi(R1, 0)
	omp.Parallel(f, "inner", R1, 4) // nested: serialized to 1
	f.Leave()

	f = b.Func("main", "nest.c")
	f.Enter(0)
	f.Ldi(R1, 0)
	omp.Parallel(f, "outer", R1, 4)
	f.LoadSym(R1, "acc")
	f.Ld(8, R0, R1, 0)
	f.Hlt(R0)

	res, inst, err := harness.BuildAndRun(b, harness.Setup{Seed: 2, Threads: 4})
	if err != nil || res.Err != nil {
		t.Fatal(err, res.Err)
	}
	// 4 outer members × 1 serialized inner each.
	if res.ExitCode != 4 {
		t.Fatalf("acc = %d, want 4", res.ExitCode)
	}
	if inst.OMP.RegionsStarted != 5 {
		t.Fatalf("regions = %d, want 5 (1 outer + 4 nested)", inst.OMP.RegionsStarted)
	}
}

// TestIfZeroRunsInline: an if(0) task executes on the creating thread
// immediately, even in a 4-thread team.
func TestIfZeroRunsInline(t *testing.T) {
	b := omp.NewProgram()
	b.Global("v", 8)
	globalWriteTask(b, "w", "if0.c", "v", 7)

	f := b.Func("micro", "if0.c")
	f.Enter(0)
	fn := f
	omp.SingleNowait(f, func() {
		omp.EmitTask(fn, omp.TaskOpts{Fn: "w", Flags: ompt.FlagIfZero})
		// Undeferred: the write is already visible, no taskwait needed.
		fn.LoadSym(R1, "v")
		fn.Ld(8, R2, R1, 0)
		fn.Muli(R2, R2, 6)
		fn.St(8, R1, 0, R2)
	})
	f.Leave()

	f = b.Func("main", "if0.c")
	f.Enter(0)
	f.Ldi(R1, 0)
	omp.Parallel(f, "micro", R1, 4)
	f.LoadSym(R1, "v")
	f.Ld(8, R0, R1, 0)
	f.Hlt(R0)

	for seed := uint64(1); seed <= 8; seed++ {
		res, _, err := harness.BuildAndRun(b, harness.Setup{Seed: seed, Threads: 4})
		if err != nil || res.Err != nil {
			t.Fatal(err, res.Err)
		}
		if res.ExitCode != 42 {
			t.Fatalf("seed %d: v = %d, want 42", seed, res.ExitCode)
		}
		b = rebuildIf0()
	}
}

func rebuildIf0() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("v", 8)
	globalWriteTask(b, "w", "if0.c", "v", 7)
	f := b.Func("micro", "if0.c")
	f.Enter(0)
	fn := f
	omp.SingleNowait(f, func() {
		omp.EmitTask(fn, omp.TaskOpts{Fn: "w", Flags: ompt.FlagIfZero})
		fn.LoadSym(R1, "v")
		fn.Ld(8, R2, R1, 0)
		fn.Muli(R2, R2, 6)
		fn.St(8, R1, 0, R2)
	})
	f.Leave()
	f = b.Func("main", "if0.c")
	f.Enter(0)
	f.Ldi(R1, 0)
	omp.Parallel(f, "micro", R1, 4)
	f.LoadSym(R1, "v")
	f.Ld(8, R0, R1, 0)
	f.Hlt(R0)
	return b
}

func globalWriteTask(b *gbuild.Builder, name, file, sym string, val int32) {
	f := b.Func(name, file)
	f.LoadSym(R1, sym)
	f.Ldi(R2, val)
	f.St(8, R1, 0, R2)
	f.Ret()
}

// TestForStaticCoversRange: `omp for` touches every index exactly once
// across the team (each slot set to idx+1; the sum checks coverage).
func TestForStaticCoversRange(t *testing.T) {
	build := func() *gbuild.Builder {
		b := omp.NewProgram()
		b.Global("arr", 8*16)

		f := b.Func("micro", "for.c")
		f.Enter(0)
		omp.ForStatic(f, 16, func(idx uint8) {
			f.Muli(R1, idx, 8)
			f.LoadSym(R2, "arr")
			f.Add(R2, R2, R1)
			f.Addi(R3, idx, 1)
			f.St(8, R2, 0, R3)
		})
		f.Leave()

		f = b.Func("main", "for.c")
		f.Enter(0)
		f.Ldi(R1, 0)
		omp.Parallel(f, "micro", R1, 4)
		f.LoadSym(R1, "arr")
		f.Ldi(R0, 0)
		for i := int32(0); i < 16; i++ {
			f.Ld(8, R2, R1, i*8)
			f.Add(R0, R0, R2)
		}
		f.Hlt(R0) // 1+2+...+16 = 136
		return b
	}
	for seed := uint64(1); seed <= 6; seed++ {
		res, _, err := harness.BuildAndRun(build(), harness.Setup{Seed: seed, Threads: 4})
		if err != nil || res.Err != nil {
			t.Fatal(err, res.Err)
		}
		if res.ExitCode != 136 {
			t.Fatalf("seed %d: sum = %d, want 136", seed, res.ExitCode)
		}
	}
}

// TestForStaticSingleThread degenerates to a serial loop.
func TestForStaticSingleThread(t *testing.T) {
	b := omp.NewProgram()
	b.Global("acc", 8)
	f := b.Func("micro", "for1.c")
	f.Enter(0)
	omp.ForStatic(f, 5, func(idx uint8) {
		f.LoadSym(R1, "acc")
		f.Ld(8, R2, R1, 0)
		f.Add(R2, R2, idx)
		f.St(8, R1, 0, R2)
	})
	f.Leave()
	f = b.Func("main", "for1.c")
	f.Enter(0)
	f.Ldi(R1, 0)
	omp.Parallel(f, "micro", R1, 1)
	f.LoadSym(R1, "acc")
	f.Ld(8, R0, R1, 0)
	f.Hlt(R0)
	res, _, err := harness.BuildAndRun(b, harness.Setup{Seed: 1, Threads: 1})
	if err != nil || res.Err != nil {
		t.Fatal(err, res.Err)
	}
	if res.ExitCode != 10 {
		t.Fatalf("sum = %d, want 10", res.ExitCode)
	}
}
