package omp

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/obs"
	"repro/internal/ompt"
	"repro/internal/vm"
)

// hTaskAlloc allocates a task descriptor from the fast pool:
// R0 = payload size, R1 = task function. Returns the descriptor address.
// The pool recycles, so a descriptor freed at task end is immediately reused
// — the unwrappable-allocator behaviour of §IV-B.
func (r *Runtime) hTaskAlloc(m *vm.Machine, t *vm.Thread) vm.HostResult {
	size := t.Regs[guest.R0]
	fn := t.Regs[guest.R1]
	desc := r.Pool.Alloc(TDPayload + size)
	if desc == 0 {
		// Pool exhausted (or fault-injected): return NULL like
		// __kmp_fast_allocate falling back to a failed malloc. The emitted
		// task-creation sequence checks and skips the task.
		r.AllocFailures++
		return vm.HostResult{Ret: 0}
	}
	r.mapAlloc(m, desc)
	m.Mem.Store(desc+TDFn, 8, fn)
	m.Mem.Store(desc+TDFlags, 8, 0)
	return vm.HostResult{Ret: desc}
}

// hTaskEnqueue finishes task creation: R0 = descriptor, R1 = dependence
// array (pairs of {addr, kind} u64 words), R2 = ndeps, R3 = flags. It
// returns 0 when the task was deferred, or the descriptor when the caller
// must execute it inline (undeferred: serialized teams).
func (r *Runtime) hTaskEnqueue(m *vm.Machine, t *vm.Thread) vm.HostResult {
	ts := r.ts(t)
	desc := t.Regs[guest.R0]
	depArr := t.Regs[guest.R1]
	ndeps := int(t.Regs[guest.R2])
	flags := t.Regs[guest.R3]

	parent := ts.cur
	r.nextTaskID++
	r.TasksCreated++
	task := &Task{
		ID:      r.nextTaskID,
		Desc:    desc,
		Fn:      m.Mem.Load(desc+TDFn, 8),
		Flags:   flags,
		Parent:  parent,
		Region:  ts.Team,
		State:   TaskCreated,
		depMap:  make(map[uint64]*depSlot),
		creator: ts,
	}
	// Undeferred execution: team serialization, or an explicit if(0)/final
	// clause (FlagIfZero set by the front end).
	serialized := ts.Team == nil || len(ts.Team.Members) == 1
	inline := serialized || flags&ompt.FlagIfZero != 0
	if inline {
		task.Flags |= ompt.FlagUndeferred
		r.TasksUndeferred++
	}
	m.Mem.Store(desc+TDID, 8, task.ID)
	m.Mem.Store(desc+TDFlags, 8, task.Flags)
	r.tasksByID[task.ID] = task

	parent.incompleteChildren++
	if g := r.activeGroup(parent); g != nil {
		task.group = g
		g.incomplete++
	}
	if task.Region != nil {
		task.Region.incompleteTasks++
	}

	r.Events.TaskCreate(t, task.ID, parent.ID, task.Flags, task.Fn, desc)
	r.ctrTaskCreate.Inc()
	r.emit(obs.PhaseInstant, t, "task_create",
		map[string]any{"task": task.ID, "parent": parent.ID, "fn": task.Fn})

	// Dependence matching against siblings (same parent namespace).
	for i := 0; i < ndeps; i++ {
		addr := m.Mem.Load(depArr+uint64(i)*16, 8)
		kind := m.Mem.Load(depArr+uint64(i)*16+8, 8)
		r.Events.TaskDepRaw(t, task.ID, addr, kind)
		r.addDependence(t, parent, task, addr, kind)
	}

	if task.npreds == 0 {
		task.State = TaskReady
		if inline {
			// Undeferred: the creating thread runs it now; the
			// prelude calls __kmp_invoke_task on a non-zero return.
			return vm.HostResult{Ret: desc}
		}
		r.pushReady(ts, task)
	} else if serialized {
		// Cannot happen: in a serialized team every sibling completed
		// before this creation.
		panic("omp: undeferred task with pending dependences")
	}
	// An if(0) task with pending dependences falls back to deferred
	// execution (simplification; none of the benchmarks need it).
	return vm.HostResult{Ret: 0}
}

// activeGroup returns the taskgroup new children of task join.
func (r *Runtime) activeGroup(task *Task) *taskgroup {
	if n := len(task.groupStack); n > 0 {
		return task.groupStack[n-1]
	}
	// Descendants created by a task that was itself created into a group
	// belong to that group too (taskgroup waits on descendants).
	return task.group
}

// addDependence runs the per-address dependence state machine and registers
// edges from incomplete predecessors. mutexinoutset is serialized in
// creation order (a documented simplification: the runtime picks an order
// and reports it through OMPT, so mutually-exclusive tasks are ordered in
// the segment graph — yielding the paper's TN on DRB135).
func (r *Runtime) addDependence(t *vm.Thread, parent, task *Task, addr, kind uint64) {
	slot := parent.depMap[addr]
	if slot == nil {
		slot = &depSlot{}
		parent.depMap[addr] = slot
	}
	depend := func(preds []*Task) {
		for _, p := range preds {
			if p == nil || p == task {
				continue
			}
			r.Events.TaskDependence(t, p.ID, task.ID, addr, kind)
			if p.State != TaskCompleted {
				task.npreds++
				p.succs = append(p.succs, task)
			}
		}
	}
	switch kind {
	case ompt.DepIn:
		depend(slot.writers)
		slot.readers = append(slot.readers, task)
	case ompt.DepOut, ompt.DepInout, ompt.DepMutexinoutset:
		depend(slot.writers)
		depend(slot.readers)
		slot.writers = []*Task{task}
		slot.readers = nil
		slot.setKind = kind
	case ompt.DepInoutset:
		if slot.setKind == ompt.DepInoutset && len(slot.readers) == 0 {
			// Join the current inoutset batch: mutually compatible.
			slot.writers = append(slot.writers, task)
		} else {
			depend(slot.writers)
			depend(slot.readers)
			slot.writers = []*Task{task}
			slot.readers = nil
			slot.setKind = ompt.DepInoutset
		}
	default:
		panic(fmt.Sprintf("omp: bad dependence kind %d", kind))
	}
}

// pushReady queues a ready task on a thread's deque and pokes the team.
func (r *Runtime) pushReady(ts *ThreadState, task *Task) {
	task.State = TaskReady
	ts.deque = append(ts.deque, task)
	if reg := task.Region; reg != nil {
		r.wakeTeam(reg)
	}
}

// wakeTeam wakes blocked team members so they re-poll.
func (r *Runtime) wakeTeam(reg *Region) {
	for _, m := range reg.Members {
		if m.T.State == vm.ThreadBlocked {
			m.T.Wake()
		}
	}
}

// findWork pops the caller's deque (LIFO) or steals from a teammate (FIFO).
func (r *Runtime) findWork(ts *ThreadState) *Task {
	if n := len(ts.deque); n > 0 {
		task := ts.deque[n-1]
		ts.deque = ts.deque[:n-1]
		return task
	}
	reg := ts.Team
	if reg == nil {
		return nil
	}
	n := len(reg.Members)
	for i := 1; i < n; i++ {
		r.StealsAttempted++
		if r.DenySteal != nil && r.DenySteal() {
			r.StealsDenied++
			continue
		}
		v := reg.Members[(ts.ThreadNum+i+r.stealCursor)%n]
		if v == ts || len(v.deque) == 0 {
			continue
		}
		task := v.deque[0]
		v.deque = v.deque[1:]
		r.StealsSuccessful++
		r.stealCursor++
		r.emit(obs.PhaseInstant, ts.T, "steal",
			map[string]any{"task": task.ID, "victim": v.ThreadNum})
		return task
	}
	return nil
}

// hTaskBegin (R0 = descriptor) marks the task running on this thread.
func (r *Runtime) hTaskBegin(m *vm.Machine, t *vm.Thread) vm.HostResult {
	ts := r.ts(t)
	desc := t.Regs[guest.R0]
	id := m.Mem.Load(desc+TDID, 8)
	task := r.tasksByID[id]
	if task == nil {
		panic(fmt.Sprintf("omp: task_begin on unknown task %d (desc 0x%x)", id, desc))
	}
	task.State = TaskRunning
	ts.taskStack = append(ts.taskStack, ts.cur)
	ts.cur = task
	r.Events.TaskBegin(t, task.ID)
	r.ctrTaskBegin.Inc()
	r.emit(obs.PhaseBegin, t, "task", map[string]any{"task": task.ID, "fn": task.Fn})
	return vm.HostResult{Ret: desc}
}

// hTaskEnd (R0 = descriptor) finishes the running task. For detached tasks
// completion is deferred to omp_fulfill_event; everyone else completes now,
// releasing dependents, parent waits, and the descriptor (recycled!).
func (r *Runtime) hTaskEnd(m *vm.Machine, t *vm.Thread) vm.HostResult {
	ts := r.ts(t)
	task := ts.cur
	ts.cur = ts.taskStack[len(ts.taskStack)-1]
	ts.taskStack = ts.taskStack[:len(ts.taskStack)-1]
	r.Events.TaskEnd(t, task.ID)
	r.ctrTaskEnd.Inc()
	r.emit(obs.PhaseEnd, t, "task", map[string]any{"task": task.ID})
	task.State = TaskFinished
	if task.Flags&ompt.FlagDetached == 0 {
		r.completeTask(ts, task)
	}
	return vm.HostResult{}
}

// completeTask performs the completion side effects.
func (r *Runtime) completeTask(ts *ThreadState, task *Task) {
	if task.State == TaskCompleted {
		return
	}
	task.State = TaskCompleted
	if p := task.Parent; p != nil {
		p.incompleteChildren--
	}
	if g := task.group; g != nil {
		g.incomplete--
	}
	if reg := task.Region; reg != nil {
		reg.incompleteTasks--
		r.wakeTeam(reg)
	} else if task.Parent != nil && task.Parent.creator != nil {
		task.Parent.creator.T.Wake()
	}
	// Release dependents to the completing thread's deque.
	for _, s := range task.succs {
		s.npreds--
		if s.npreds == 0 {
			r.pushReady(ts, s)
		}
	}
	// Recycle the descriptor through the fast pool.
	if task.Desc != 0 {
		r.Pool.Free(task.Desc)
	}
	// Wake the parent's thread if it is waiting on children.
	if p := task.Parent; p != nil && p.inWait && p.creator != nil {
		p.creator.T.Wake()
	}
}

// hFulfillEvent (R0 = task ID) completes a detached task.
func (r *Runtime) hFulfillEvent(m *vm.Machine, t *vm.Thread) vm.HostResult {
	ts := r.ts(t)
	task := r.tasksByID[t.Regs[guest.R0]]
	if task == nil {
		panic("omp: fulfill on unknown task")
	}
	if task.State == TaskFinished {
		r.completeTask(ts, task)
	} else {
		// Fulfilled before the body finished: completion happens at end.
		task.Flags &^= ompt.FlagDetached
	}
	return vm.HostResult{}
}

// hBarrierPoll implements the team barrier with task draining; returns
// 0 = keep polling (blocked), 1 = barrier done, otherwise a ready task
// descriptor to execute.
func (r *Runtime) hBarrierPoll(m *vm.Machine, t *vm.Thread) vm.HostResult {
	ts := r.ts(t)
	reg := ts.Team
	if reg == nil {
		return vm.HostResult{Ret: 1}
	}
	bg := &reg.bar
	if !ts.inBarrier {
		ts.inBarrier = true
		ts.barrierStart = bg.gen
		bg.count++
		r.Events.BarrierBegin(t, reg.ID, bg.gen)
	}
	if bg.gen > ts.barrierStart {
		ts.inBarrier = false
		r.Events.BarrierEnd(t, reg.ID, bg.gen)
		return vm.HostResult{Ret: 1}
	}
	if task := r.findWork(ts); task != nil {
		return vm.HostResult{Ret: task.Desc}
	}
	if bg.count == len(reg.Members) && reg.incompleteTasks == 0 {
		bg.gen++
		bg.count = 0
		r.wakeTeam(reg)
		ts.inBarrier = false
		r.Events.BarrierEnd(t, reg.ID, bg.gen)
		return vm.HostResult{Ret: 1}
	}
	return vm.HostResult{Ret: 0, Action: vm.HostBlock, Reason: "barrier"}
}

// hTaskwaitPoll waits for the current task's direct children, draining ready
// tasks meanwhile. Same return protocol as hBarrierPoll.
func (r *Runtime) hTaskwaitPoll(m *vm.Machine, t *vm.Thread) vm.HostResult {
	ts := r.ts(t)
	cur := ts.cur
	if !cur.inWait {
		cur.inWait = true
		r.Events.TaskWaitBegin(t, cur.ID)
	}
	if cur.incompleteChildren == 0 {
		cur.inWait = false
		r.Events.TaskWaitEnd(t, cur.ID)
		return vm.HostResult{Ret: 1}
	}
	if task := r.findWork(ts); task != nil {
		return vm.HostResult{Ret: task.Desc}
	}
	return vm.HostResult{Ret: 0, Action: vm.HostBlock, Reason: "taskwait"}
}

// hTaskwaitDepsInit starts an OpenMP 5.0 `taskwait depend(...)`: R0 = dep
// array, R1 = ndeps. The waiting task's children matching the dependences
// become the wait set. No dependence state is registered (the construct is
// not a task).
func (r *Runtime) hTaskwaitDepsInit(m *vm.Machine, t *vm.Thread) vm.HostResult {
	ts := r.ts(t)
	cur := ts.cur
	depArr := t.Regs[guest.R0]
	ndeps := int(t.Regs[guest.R1])
	cur.waitPreds = nil
	seen := map[*Task]bool{}
	add := func(tasks []*Task) {
		for _, p := range tasks {
			if p != nil && !seen[p] {
				seen[p] = true
				cur.waitPreds = append(cur.waitPreds, p)
			}
		}
	}
	for i := 0; i < ndeps; i++ {
		addr := m.Mem.Load(depArr+uint64(i)*16, 8)
		kind := m.Mem.Load(depArr+uint64(i)*16+8, 8)
		slot := cur.depMap[addr]
		if slot == nil {
			continue
		}
		switch kind {
		case ompt.DepIn:
			add(slot.writers)
		default:
			add(slot.writers)
			add(slot.readers)
		}
	}
	return vm.HostResult{}
}

// hTaskwaitDepsPoll waits for the set collected by hTaskwaitDepsInit.
func (r *Runtime) hTaskwaitDepsPoll(m *vm.Machine, t *vm.Thread) vm.HostResult {
	ts := r.ts(t)
	cur := ts.cur
	done := true
	for _, p := range cur.waitPreds {
		if p.State != TaskCompleted {
			done = false
			break
		}
	}
	if done {
		preds := make([]uint64, len(cur.waitPreds))
		for i, p := range cur.waitPreds {
			preds[i] = p.ID
		}
		cur.waitPreds = nil
		r.Events.TaskWaitDeps(t, cur.ID, preds)
		return vm.HostResult{Ret: 1}
	}
	if task := r.findWork(ts); task != nil {
		return vm.HostResult{Ret: task.Desc}
	}
	return vm.HostResult{Ret: 0, Action: vm.HostBlock, Reason: "taskwait-deps"}
}

// hTaskgroupBegin opens a taskgroup on the current task.
func (r *Runtime) hTaskgroupBegin(m *vm.Machine, t *vm.Thread) vm.HostResult {
	ts := r.ts(t)
	g := &taskgroup{}
	ts.cur.groupStack = append(ts.cur.groupStack, g)
	r.Events.TaskGroupBegin(t, ts.cur.ID)
	return vm.HostResult{}
}

// hTaskgroupPoll waits for the innermost taskgroup to drain.
func (r *Runtime) hTaskgroupPoll(m *vm.Machine, t *vm.Thread) vm.HostResult {
	ts := r.ts(t)
	cur := ts.cur
	n := len(cur.groupStack)
	if n == 0 {
		panic("omp: taskgroup end without begin")
	}
	g := cur.groupStack[n-1]
	if g.incomplete == 0 {
		cur.groupStack = cur.groupStack[:n-1]
		r.Events.TaskGroupEnd(t, cur.ID)
		return vm.HostResult{Ret: 1}
	}
	if task := r.findWork(ts); task != nil {
		return vm.HostResult{Ret: task.Desc}
	}
	return vm.HostResult{Ret: 0, Action: vm.HostBlock, Reason: "taskgroup"}
}
