// Package omp implements the OpenMP-like task runtime the benchmarks run on:
// parallel regions with a reusable worker pool, explicit tasks with the full
// dependence-type set (in / out / inout / inoutset / mutexinoutset),
// taskwait, taskgroup, barriers, single, critical sections, detachable
// tasks, and work-stealing scheduling.
//
// The runtime is deliberately split the way a real one is: scheduler state
// and descriptors live in *guest memory* (allocated from the __kmp fast pool,
// which recycles — the allocator Valgrind-style wrapping cannot fix, §IV-B),
// and the dispatch loops are *guest code* under __kmp_* symbols emitted by
// EmitPrelude — so runtime accesses are instrumented like everything else and
// the ignore-list (§IV-A) has real work to do. Policy decisions (queues,
// dependence matching, barrier release) are host calls, playing the role the
// futex/kernel boundary plays for a native runtime.
package omp

import (
	"fmt"

	"repro/internal/gmem"
	"repro/internal/guest"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/ompt"
	"repro/internal/vm"
)

// Task descriptor layout in guest memory (the kmp_task_t analog).
const (
	// TDFn: entry function address.
	TDFn = 0
	// TDID: host-assigned task id.
	TDID = 8
	// TDFlags: creation flags.
	TDFlags = 16
	// TDPayload: start of the firstprivate payload area.
	TDPayload = 32
)

// Region descriptor layout (fork argument block). rdStats is a shared
// bookkeeping counter the guest-side runtime code updates without
// synchronization — the benign runtime non-determinism that makes the
// ignore-list necessary (§IV-A).
const (
	rdFn    = 0
	rdArg   = 8
	rdID    = 16
	rdStats = 24
	rdLen   = 32
)

// TaskState tracks a task through its lifetime.
type TaskState uint8

// Task states.
const (
	TaskCreated TaskState = iota
	TaskReady
	TaskRunning
	TaskFinished  // body done, completion pending (detached)
	TaskCompleted // completion side effects done
)

// Task is the host-side view of one task (implicit or explicit).
type Task struct {
	ID     uint64
	Desc   uint64 // guest address of the descriptor (0 for implicit tasks)
	Fn     uint64
	Flags  uint64
	Parent *Task
	Region *Region
	State  TaskState

	// npreds counts incomplete dependence predecessors.
	npreds int
	// succs are dependence successors released at completion.
	succs []*Task
	// incompleteChildren gates taskwait.
	incompleteChildren int
	// group is the taskgroup this task was created into (may be nil).
	group *taskgroup
	// groupStack is the stack of taskgroups this task has opened.
	groupStack []*taskgroup
	// depMap tracks sibling dependences keyed by address.
	depMap map[uint64]*depSlot
	// inWait marks an active taskwait.
	inWait bool
	// waitPreds is the wait set of an active `taskwait depend(...)`.
	waitPreds []*Task
	// creator is the thread state that enqueued the task.
	creator *ThreadState
}

type taskgroup struct {
	incomplete int
	waiting    bool
}

// depSlot is the per-(parent, address) dependence state machine.
type depSlot struct {
	// writers is the current "last writer set": one out/inout task, or the
	// current inoutset batch.
	writers []*Task
	// readers are the in-tasks since the last writer set.
	readers []*Task
	// setKind distinguishes a plain writer from an inoutset batch.
	setKind uint64
}

// barrier is a generation barrier.
type barrier struct {
	gen   uint64
	count int
}

// Region is a parallel region instance.
type Region struct {
	ID      uint64
	Desc    uint64
	// Fn is the outlined parallel-region body's guest address.
	Fn      uint64
	Members []*ThreadState
	// incompleteTasks counts explicit tasks bound to the region.
	incompleteTasks int
	bar             barrier
	// implicitLive counts members whose implicit task has not ended.
	implicitLive int
	// singleClaimed marks which single-construct instances are taken.
	singleClaimed map[uint64]bool
	// master blocks in join until implicitLive reaches 0.
	master *ThreadState
}

// ThreadState is the per-guest-thread runtime state (stored in vm.Thread.RT).
type ThreadState struct {
	T         *vm.Thread
	Worker    bool
	Team      *Region
	ThreadNum int
	// cur is the innermost executing task.
	cur *Task
	// taskStack holds suspended outer tasks.
	taskStack []*Task
	// deque is the thread's ready-task deque (LIFO pop, FIFO steal).
	deque []*Task
	// barrier bookkeeping.
	inBarrier    bool
	barrierStart uint64
	// single construct instance counter.
	singleSeq uint64
	// pendingRegion is set by fork for parked workers.
	pendingRegion *Region
	// condState tracks the guest condvar wait protocol (locks.go).
	condState uint8
	// teamStack saves the enclosing team context across nested regions.
	teamStack []teamSnap
}

// teamSnap is the per-member team context saved at fork and restored at
// implicit-task end (nested parallel regions).
type teamSnap struct {
	team         *Region
	threadNum    int
	inBarrier    bool
	barrierStart uint64
	singleSeq    uint64
}

// Runtime is one machine's OpenMP runtime instance.
type Runtime struct {
	M      *vm.Machine
	Events ompt.Events
	// Pool is the internal fast allocator (recycles; not wrappable).
	Pool *mem.Allocator

	nextTaskID   uint64
	nextRegionID uint64
	workers      []*ThreadState
	// MaxThreads caps team sizes (default 4).
	MaxThreads int

	critOwner  map[uint64]*ThreadState
	critQueue  map[uint64][]*ThreadState
	mutexQueue map[uint64][]*ThreadState
	condQueue  map[uint64][]*ThreadState
	tasksByID  map[uint64]*Task
	regions    map[uint64]*Region
	workerAddr uint64 // guest entry of __kmp_worker_entry
	// StealSeed varies victim selection.
	stealCursor int

	// DenySteal, when set, is consulted on every steal attempt; returning
	// true makes the attempt fail (fault injection: a contended victim).
	DenySteal func() bool
	// TrylockFail, when set, makes a mutex trylock fail even when the lock
	// is free (fault injection: the POSIX weak trylock).
	TrylockFail func() bool
	// LockDelay, when set, rotates a mutex handoff to a different waiter
	// than the seed-deterministic pick (fault injection: delayed wakeup).
	LockDelay func() bool
	// LockSpurious, when set, turns a condvar wait into a spurious wakeup
	// (fault injection: return without a matching signal).
	LockSpurious func() bool

	// Stats.
	TasksCreated     uint64
	TasksUndeferred  uint64
	RegionsStarted   uint64
	StealsAttempted  uint64
	StealsSuccessful uint64
	StealsDenied     uint64
	// AllocFailures counts NULL returns from the fast pool (exhaustion or
	// injected failure) surfaced to the guest.
	AllocFailures uint64
	// Lock substrate stats (locks.go).
	MutexAcquires  uint64
	MutexContended uint64
	MutexHandoffs  uint64
	TrylocksFailed uint64
	CondWaits      uint64
	CondSignals    uint64
	CondSpurious   uint64

	// Obs carries the optional observability hooks; nil when disabled.
	Obs *obs.Hooks
	// Pre-resolved task-lifecycle counters (nil-safe when metrics off).
	ctrTaskCreate *obs.Counter
	ctrTaskBegin  *obs.Counter
	ctrTaskEnd    *obs.Counter
}

// NewRuntime creates a detached runtime. Install registers its host calls on
// a registry; Attach binds it to the machine built from that registry.
// Events may be left nil (no tool) or set to an ompt.Bridge.
func NewRuntime() *Runtime {
	return &Runtime{
		Events:     ompt.NopEvents{},
		Pool:       mem.New(guest.FastPoolBase, guest.FastPoolLimit),
		MaxThreads: 4,
		critOwner:  make(map[uint64]*ThreadState),
		critQueue:  make(map[uint64][]*ThreadState),
		mutexQueue: make(map[uint64][]*ThreadState),
		condQueue:  make(map[uint64][]*ThreadState),
		tasksByID:  make(map[uint64]*Task),
		regions:    make(map[uint64]*Region),
	}
}

// mapAlloc grants the guest RW access over a fresh fast-pool block under the
// strict memory model. Freed blocks stay mapped: the pool recycles them, and
// use-after-free is the tools' business, not a segfault.
func (r *Runtime) mapAlloc(m *vm.Machine, addr uint64) {
	m.Mem.Map(addr, r.Pool.SizeOf(addr), gmem.PermRW)
}

// Attach binds the runtime to its machine (after vm.New).
func (r *Runtime) Attach(m *vm.Machine) {
	r.M = m
	if sym := m.Image.SymbolByName("__kmp_worker_entry"); sym != nil {
		r.workerAddr = sym.Addr
	}
}

// SetObs attaches observability hooks and pre-resolves the task-lifecycle
// counters so the scheduling host calls increment through nil-safe pointers.
func (r *Runtime) SetObs(h *obs.Hooks) {
	r.Obs = h
	if h != nil && h.Metrics != nil {
		r.ctrTaskCreate = h.Metrics.Counter("omp_task_create_total")
		r.ctrTaskBegin = h.Metrics.Counter("omp_task_begin_total")
		r.ctrTaskEnd = h.Metrics.Counter("omp_task_end_total")
	} else {
		r.ctrTaskCreate, r.ctrTaskBegin, r.ctrTaskEnd = nil, nil, nil
	}
}

// emit sends a task-runtime trace event on the machine's block clock.
func (r *Runtime) emit(ph obs.Phase, t *vm.Thread, name string, args map[string]any) {
	if h := r.Obs; h != nil && h.Tracer != nil {
		h.Tracer.Emit(obs.Event{
			TS: r.M.BlocksExecuted, Thread: t.ID, Phase: ph,
			Cat: "omp", Name: name, Args: args,
		})
	}
}

// ts returns (creating if needed) the runtime state of a guest thread. The
// main thread lazily gets a root implicit task.
func (r *Runtime) ts(t *vm.Thread) *ThreadState {
	if s, ok := t.RT.(*ThreadState); ok {
		return s
	}
	s := &ThreadState{T: t}
	t.RT = s
	// Root task for the initial thread (serial part of the program).
	r.nextTaskID++
	root := &Task{ID: r.nextTaskID, State: TaskRunning, depMap: make(map[uint64]*depSlot)}
	r.tasksByID[root.ID] = root
	s.cur = root
	return s
}

// CurrentTaskID exposes the executing task's ID (testing / tools).
func (r *Runtime) CurrentTaskID(t *vm.Thread) uint64 {
	return r.ts(t).cur.ID
}

// TaskByID returns a task (testing aid).
func (r *Runtime) TaskByID(id uint64) *Task { return r.tasksByID[id] }

// LastTaskID returns the most recently assigned task id (testing aid).
func (r *Runtime) LastTaskID() uint64 { return r.nextTaskID }

// LastExplicitTaskID returns the highest id among explicit tasks (testing
// aid; implicit tasks also consume ids, so LastTaskID may name one).
func (r *Runtime) LastExplicitTaskID() uint64 {
	var best uint64
	for id, task := range r.tasksByID {
		if task.Desc != 0 && id > best {
			best = id
		}
	}
	return best
}

// Install registers every runtime host call.
func (r *Runtime) Install(reg *vm.HostRegistry) {
	reg.Register("__kmp_fork_setup", r.hForkSetup)
	reg.Register("__kmp_join_wait", r.hJoinWait)
	reg.Register("__kmp_worker_wait", r.hWorkerWait)
	reg.Register("__kmp_implicit_begin", r.hImplicitBegin)
	reg.Register("__kmp_implicit_end", r.hImplicitEnd)
	reg.Register("__kmp_barrier_poll", r.hBarrierPoll)
	reg.Register("__kmp_task_alloc", r.hTaskAlloc)
	reg.Register("__kmp_task_enqueue", r.hTaskEnqueue)
	reg.Register("__kmp_task_begin", r.hTaskBegin)
	reg.Register("__kmp_task_end", r.hTaskEnd)
	reg.Register("__kmp_taskwait_poll", r.hTaskwaitPoll)
	reg.Register("__kmp_taskwait_deps_init", r.hTaskwaitDepsInit)
	reg.Register("__kmp_taskwait_deps_poll", r.hTaskwaitDepsPoll)
	reg.Register("__kmp_taskgroup_begin", r.hTaskgroupBegin)
	reg.Register("__kmp_taskgroup_poll", r.hTaskgroupPoll)
	reg.Register("__kmp_single_enter", r.hSingleEnter)
	reg.Register("__kmp_critical_enter", r.hCriticalEnter)
	reg.Register("__kmp_critical_exit", r.hCriticalExit)
	reg.Register("__kmp_mutex_init", r.hMutexInit)
	reg.Register("__kmp_mutex_lock", r.hMutexLock)
	reg.Register("__kmp_mutex_trylock", r.hMutexTrylock)
	reg.Register("__kmp_mutex_unlock", r.hMutexUnlock)
	reg.Register("__kmp_cond_init", r.hCondInit)
	reg.Register("__kmp_cond_wait", r.hCondWait)
	reg.Register("__kmp_cond_signal", r.hCondSignal)
	reg.Register("__kmp_cond_broadcast", r.hCondBroadcast)
	reg.Register("__kmp_get_thread_num", r.hGetThreadNum)
	reg.Register("__kmp_get_num_threads", r.hGetNumThreads)
	reg.Register("__kmp_fulfill_event", r.hFulfillEvent)
}

// --- parallel region management ---

func (r *Runtime) hForkSetup(m *vm.Machine, t *vm.Thread) vm.HostResult {
	fn := t.Regs[guest.R0]
	arg := t.Regs[guest.R1]
	n := int(t.Regs[guest.R2])
	if n <= 0 || n > r.MaxThreads {
		n = r.MaxThreads
	}
	master := r.ts(t)
	if master.Team != nil {
		// Nested parallel regions run serialized (team of one), like a
		// nesting-disabled LLVM runtime.
		n = 1
	}
	desc := r.Pool.Alloc(rdLen)
	if desc == 0 {
		// Pool exhausted: the region cannot start. Return NULL; the emitted
		// __kmpc_fork_call checks and skips the region body (the serial
		// fallback a real runtime takes when it cannot set up a team).
		r.AllocFailures++
		return vm.HostResult{Ret: 0}
	}
	r.mapAlloc(m, desc)
	r.nextRegionID++
	r.RegionsStarted++
	m.Mem.Store(desc+rdFn, 8, fn)
	m.Mem.Store(desc+rdArg, 8, arg)
	m.Mem.Store(desc+rdID, 8, r.nextRegionID)
	reg := &Region{
		ID:            r.nextRegionID,
		Desc:          desc,
		Fn:            fn,
		singleClaimed: make(map[uint64]bool),
		master:        master,
	}
	r.regions[reg.ID] = reg
	// Team: the encountering thread plus n-1 pool workers.
	reg.Members = append(reg.Members, master)
	for i := 1; i < n; i++ {
		w := r.grabWorker(reg)
		if w == nil {
			break
		}
		reg.Members = append(reg.Members, w)
	}
	for i, ts := range reg.Members {
		ts.teamStack = append(ts.teamStack, teamSnap{
			team:         ts.Team,
			threadNum:    ts.ThreadNum,
			inBarrier:    ts.inBarrier,
			barrierStart: ts.barrierStart,
			singleSeq:    ts.singleSeq,
		})
		ts.ThreadNum = i
		ts.Team = reg
		ts.inBarrier = false
		ts.singleSeq = 0
	}
	reg.implicitLive = len(reg.Members)
	r.Events.ParallelBegin(t, reg.ID, len(reg.Members), fn)
	r.emit(obs.PhaseBegin, t, "parallel", map[string]any{"region": reg.ID, "members": len(reg.Members), "fn": fn})
	// Release the workers into the region (pendingRegion was set at claim
	// time).
	for _, ts := range reg.Members[1:] {
		ts.T.Wake()
	}
	return vm.HostResult{Ret: desc}
}

// grabWorker claims a parked pool worker for reg, creating one if the pool
// is exhausted.
func (r *Runtime) grabWorker(reg *Region) *ThreadState {
	for _, w := range r.workers {
		if w.Team == nil && w.pendingRegion == nil {
			// Claim with pendingRegion (the wake token) so the next
			// grab in the same fork skips this worker.
			w.pendingRegion = reg
			return w
		}
	}
	if r.workerAddr == 0 {
		return nil
	}
	t := r.M.NewThread(r.workerAddr, 0)
	w := r.ts(t)
	w.Worker = true
	w.pendingRegion = reg
	// Workers start parked: they block in __kmp_worker_wait on first run.
	r.workers = append(r.workers, w)
	return w
}

func (r *Runtime) hWorkerWait(m *vm.Machine, t *vm.Thread) vm.HostResult {
	ts := r.ts(t)
	if reg := ts.pendingRegion; reg != nil {
		ts.pendingRegion = nil
		return vm.HostResult{Ret: reg.Desc}
	}
	return vm.HostResult{Action: vm.HostBlock, Reason: "worker parked"}
}

func (r *Runtime) hImplicitBegin(m *vm.Machine, t *vm.Thread) vm.HostResult {
	ts := r.ts(t)
	reg := ts.Team
	if reg == nil {
		panic("omp: implicit_begin outside a region")
	}
	r.nextTaskID++
	task := &Task{
		ID:     r.nextTaskID,
		Region: reg,
		Flags:  ompt.FlagImplicit,
		Parent: ts.cur,
		State:  TaskRunning,
		depMap: make(map[uint64]*depSlot),
	}
	r.tasksByID[task.ID] = task
	ts.taskStack = append(ts.taskStack, ts.cur)
	ts.cur = task
	r.Events.ImplicitBegin(t, reg.ID, task.ID, ts.ThreadNum)
	r.emit(obs.PhaseBegin, t, "implicit", map[string]any{"task": task.ID, "region": reg.ID, "fn": reg.Fn})
	return vm.HostResult{Ret: reg.Desc}
}

func (r *Runtime) hImplicitEnd(m *vm.Machine, t *vm.Thread) vm.HostResult {
	ts := r.ts(t)
	reg := ts.Team
	task := ts.cur
	task.State = TaskCompleted
	ts.cur = ts.taskStack[len(ts.taskStack)-1]
	ts.taskStack = ts.taskStack[:len(ts.taskStack)-1]
	r.Events.ImplicitEnd(t, reg.ID, task.ID)
	r.emit(obs.PhaseEnd, t, "implicit", map[string]any{"task": task.ID, "region": reg.ID})
	reg.implicitLive--
	// Restore the enclosing team context (nested regions) or leave the
	// team (top level / pool workers).
	snap := ts.teamStack[len(ts.teamStack)-1]
	ts.teamStack = ts.teamStack[:len(ts.teamStack)-1]
	ts.Team = snap.team
	ts.ThreadNum = snap.threadNum
	ts.inBarrier = snap.inBarrier
	ts.barrierStart = snap.barrierStart
	ts.singleSeq = snap.singleSeq
	if reg.implicitLive == 0 {
		reg.master.T.Wake()
	}
	return vm.HostResult{}
}

// hJoinWait is polled by the master (R0 = region desc) until every implicit
// task of the region has ended; it returns 0 while waiting (the prelude
// loops) and 1 once the region is over.
func (r *Runtime) hJoinWait(m *vm.Machine, t *vm.Thread) vm.HostResult {
	desc := t.Regs[guest.R0]
	regID := m.Mem.Load(desc+rdID, 8)
	reg := r.regions[regID]
	if reg != nil && reg.implicitLive > 0 {
		return vm.HostResult{Ret: 0, Action: vm.HostBlock, Reason: "join barrier"}
	}
	delete(r.regions, regID)
	r.Events.ParallelEnd(t, regID)
	r.emit(obs.PhaseEnd, t, "parallel", map[string]any{"region": regID})
	r.Pool.Free(desc)
	return vm.HostResult{Ret: 1}
}

// --- misc queries ---

func (r *Runtime) hGetThreadNum(m *vm.Machine, t *vm.Thread) vm.HostResult {
	return vm.HostResult{Ret: uint64(r.ts(t).ThreadNum)}
}

func (r *Runtime) hGetNumThreads(m *vm.Machine, t *vm.Thread) vm.HostResult {
	ts := r.ts(t)
	if ts.Team == nil {
		return vm.HostResult{Ret: 1}
	}
	return vm.HostResult{Ret: uint64(len(ts.Team.Members))}
}

func (r *Runtime) hSingleEnter(m *vm.Machine, t *vm.Thread) vm.HostResult {
	ts := r.ts(t)
	ts.singleSeq++
	reg := ts.Team
	if reg == nil {
		return vm.HostResult{Ret: 1}
	}
	if reg.singleClaimed[ts.singleSeq] {
		return vm.HostResult{Ret: 0}
	}
	reg.singleClaimed[ts.singleSeq] = true
	return vm.HostResult{Ret: 1}
}

func (r *Runtime) hCriticalEnter(m *vm.Machine, t *vm.Thread) vm.HostResult {
	ts := r.ts(t)
	id := t.Regs[guest.R0]
	if owner := r.critOwner[id]; owner != nil && owner != ts {
		r.critQueue[id] = append(r.critQueue[id], ts)
		return vm.HostResult{Action: vm.HostBlock, Reason: fmt.Sprintf("critical %d", id)}
	}
	r.critOwner[id] = ts
	r.Events.CriticalAcquire(t, id)
	return vm.HostResult{Ret: 1}
}

func (r *Runtime) hCriticalExit(m *vm.Machine, t *vm.Thread) vm.HostResult {
	ts := r.ts(t)
	id := t.Regs[guest.R0]
	if r.critOwner[id] != ts {
		panic("omp: critical exit by non-owner")
	}
	delete(r.critOwner, id)
	r.Events.CriticalRelease(t, id)
	if q := r.critQueue[id]; len(q) > 0 {
		next := q[0]
		r.critQueue[id] = q[1:]
		next.T.Wake()
	}
	return vm.HostResult{}
}
