package omp_test

import (
	"testing"

	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/harness"
	"repro/internal/omp"
)

const R0, R1, R2, R3 = guest.R0, guest.R1, guest.R2, guest.R3

// run links and runs with the given seed and thread cap, failing on error.
func run(t *testing.T, b *gbuild.Builder, seed uint64, threads int) harness.Result {
	t.Helper()
	res, _, err := harness.BuildAndRun(b, harness.Setup{Seed: seed, Threads: threads})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	return res
}

// TestParallelThreadNum: every team member writes results[tid] = tid+1;
// main sums. Checks fork/join, worker pool, thread numbering.
func TestParallelThreadNum(t *testing.T) {
	b := omp.NewProgram()
	b.Global("results", 8*4)

	f := b.Func("micro", "par.c")
	f.Enter(16)
	f.StLocal(8, 8, R0) // results base
	f.Call("omp_get_thread_num")
	f.Mov(R2, R0)
	f.LdLocal(8, R1, 8)
	f.Muli(R3, R2, 8)
	f.Add(R3, R1, R3)
	f.Addi(R2, R2, 1)
	f.St(8, R3, 0, R2)
	f.Leave()

	f = b.Func("main", "par.c")
	f.Enter(0)
	f.LoadSym(R1, "results")
	omp.Parallel(f, "micro", R1, 4)
	f.LoadSym(R1, "results")
	f.Ldi(R0, 0)
	for i := int32(0); i < 4; i++ {
		f.Ld(8, R2, R1, i*8)
		f.Add(R0, R0, R2)
	}
	f.Hlt(R0)

	for seed := uint64(1); seed <= 5; seed++ {
		if res := run(t, b, seed, 4); res.ExitCode != 10 {
			t.Fatalf("seed %d: sum = %d, want 10", seed, res.ExitCode)
		}
		b = rebuild(t, b) // builders are single-link; rebuild for next seed
		break
	}
}

// rebuild is a helper for tests that want to run the same source again: the
// builder cannot be relinked, so tests just rebuild via their own closures.
// (Kept trivial here; multi-seed tests construct programs in a loop.)
func rebuild(t *testing.T, b *gbuild.Builder) *gbuild.Builder { return b }

// taskDepProgram: single { t1: x=41 (out x); t2: y=x+1 (in x, out y) },
// main returns y.
func taskDepProgram() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("x", 8)
	b.Global("y", 8)

	f := b.Func("t1", "dep.c")
	f.LoadSym(R1, "x")
	f.Ldi(R2, 41)
	f.St(8, R1, 0, R2)
	f.Ret()

	f = b.Func("t2", "dep.c")
	f.LoadSym(R1, "x")
	f.Ld(8, R2, R1, 0)
	f.Addi(R2, R2, 1)
	f.LoadSym(R1, "y")
	f.St(8, R1, 0, R2)
	f.Ret()

	f = b.Func("micro", "dep.c")
	f.Enter(0)
	fn := f
	omp.Single(f, func() {
		omp.EmitTask(fn, omp.TaskOpts{Fn: "t1", Deps: []omp.Dep{omp.DepSym(2, "x")}}) // out
		omp.EmitTask(fn, omp.TaskOpts{Fn: "t2", Deps: []omp.Dep{omp.DepSym(1, "x")}}) // in
	})
	f.Leave()

	f = b.Func("main", "dep.c")
	f.Enter(0)
	f.Ldi(R1, 0)
	omp.Parallel(f, "micro", R1, 4)
	f.LoadSym(R1, "y")
	f.Ld(8, R0, R1, 0)
	f.Hlt(R0)
	return b
}

func TestTaskDependenceOrdering(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		if res := run(t, taskDepProgram(), seed, 4); res.ExitCode != 42 {
			t.Fatalf("seed %d: y = %d, want 42", seed, res.ExitCode)
		}
	}
}

func TestTaskDependenceSerialized(t *testing.T) {
	res, inst, err := harness.BuildAndRun(taskDepProgram(), harness.Setup{Seed: 3, Threads: 1})
	if err != nil || res.Err != nil {
		t.Fatal(err, res.Err)
	}
	if res.ExitCode != 42 {
		t.Fatalf("serialized y = %d", res.ExitCode)
	}
	if inst.OMP.TasksUndeferred != 2 {
		t.Fatalf("undeferred = %d, want 2", inst.OMP.TasksUndeferred)
	}
}

// TestTaskwait: child writes x=7, parent taskwaits then copies to y.
func TestTaskwait(t *testing.T) {
	build := func() *gbuild.Builder {
		b := omp.NewProgram()
		b.Global("x", 8)

		f := b.Func("child", "tw.c")
		f.LoadSym(R1, "x")
		f.Ldi(R2, 7)
		f.St(8, R1, 0, R2)
		f.Ret()

		f = b.Func("micro", "tw.c")
		f.Enter(0)
		fn := f
		omp.SingleNowait(f, func() {
			omp.EmitTask(fn, omp.TaskOpts{Fn: "child"})
			omp.Taskwait(fn)
			// After taskwait the write must be visible.
			fn.LoadSym(R1, "x")
			fn.Ld(8, R2, R1, 0)
			fn.Muli(R2, R2, 6) // x*6 = 42
			fn.St(8, R1, 0, R2)
		})
		f.Leave()

		f = b.Func("main", "tw.c")
		f.Enter(0)
		f.Ldi(R1, 0)
		omp.Parallel(f, "micro", R1, 4)
		f.LoadSym(R1, "x")
		f.Ld(8, R0, R1, 0)
		f.Hlt(R0)
		return b
	}
	for seed := uint64(1); seed <= 8; seed++ {
		if res := run(t, build(), seed, 4); res.ExitCode != 42 {
			t.Fatalf("seed %d: x = %d, want 42", seed, res.ExitCode)
		}
	}
}

// TestFirstprivatePayload: the parent captures 7 into the payload; the task
// multiplies it and stores to a global.
func TestFirstprivatePayload(t *testing.T) {
	b := omp.NewProgram()
	b.Global("out", 8)

	f := b.Func("child", "fp.c")
	// R0 = payload pointer.
	f.Ld(8, R2, R0, 0)
	f.Muli(R2, R2, 6)
	f.LoadSym(R1, "out")
	f.St(8, R1, 0, R2)
	f.Ret()

	f = b.Func("micro", "fp.c")
	f.Enter(0)
	fn := f
	omp.SingleNowait(f, func() {
		omp.EmitTask(fn, omp.TaskOpts{
			Fn:           "child",
			PayloadBytes: 8,
			Fill: func(f *gbuild.Func, p uint8) {
				f.Ldi(guest.R9, 7)
				f.St(8, p, 0, guest.R9)
			},
		})
		omp.Taskwait(fn)
	})
	f.Leave()

	f = b.Func("main", "fp.c")
	f.Enter(0)
	f.Ldi(R1, 0)
	omp.Parallel(f, "micro", R1, 4)
	f.LoadSym(R1, "out")
	f.Ld(8, R0, R1, 0)
	f.Hlt(R0)

	if res := run(t, b, 2, 4); res.ExitCode != 42 {
		t.Fatalf("payload result = %d, want 42", res.ExitCode)
	}
}

// TestTaskgroupWaitsDescendants: a task spawns a grandchild; taskgroup end
// must wait for both.
func TestTaskgroupWaitsDescendants(t *testing.T) {
	build := func() *gbuild.Builder {
		b := omp.NewProgram()
		b.Global("x", 8)

		f := b.Func("grandchild", "tg.c")
		f.LoadSym(R1, "x")
		f.Ld(8, R2, R1, 0)
		f.Addi(R2, R2, 40)
		f.St(8, R1, 0, R2)
		f.Ret()

		f = b.Func("childtask", "tg.c")
		f.Enter(0)
		fn := f
		fn.LoadSym(R1, "x")
		fn.Ldi(R2, 2)
		fn.St(8, R1, 0, R2)
		omp.EmitTask(fn, omp.TaskOpts{Fn: "grandchild"})
		f.Leave()

		f = b.Func("micro", "tg.c")
		f.Enter(0)
		fn = f
		omp.SingleNowait(f, func() {
			omp.Taskgroup(fn, func() {
				omp.EmitTask(fn, omp.TaskOpts{Fn: "childtask"})
			})
			// Both child and grandchild completed here.
			fn.LoadSym(R1, "x")
			fn.Ld(8, R2, R1, 0)
			fn.LoadSym(R1, "done")
			fn.St(8, R1, 0, R2)
		})
		f.Leave()

		b.Global("done", 8)
		f = b.Func("main", "tg.c")
		f.Enter(0)
		f.Ldi(R1, 0)
		omp.Parallel(f, "micro", R1, 4)
		f.LoadSym(R1, "done")
		f.Ld(8, R0, R1, 0)
		f.Hlt(R0)
		return b
	}
	for seed := uint64(1); seed <= 8; seed++ {
		if res := run(t, build(), seed, 4); res.ExitCode != 42 {
			t.Fatalf("seed %d: done = %d, want 42", seed, res.ExitCode)
		}
	}
}

// TestCriticalMutualExclusion: 4 threads each add 1 to a shared counter 25
// times under a critical section; the total must be exact.
func TestCriticalMutualExclusion(t *testing.T) {
	build := func() *gbuild.Builder {
		b := omp.NewProgram()
		b.Global("counter", 8)

		f := b.Func("micro", "crit.c")
		f.Enter(16)
		f.Ldi(R3, 0)
		f.StLocal(8, 8, R3)
		loop := f.NewLabel()
		f.Bind(loop)
		fn := f
		omp.Critical(f, 1, func() {
			fn.LoadSym(guest.R9, "counter")
			fn.Ld(8, guest.R10, guest.R9, 0)
			fn.Addi(guest.R10, guest.R10, 1)
			fn.St(8, guest.R9, 0, guest.R10)
		})
		f.LdLocal(8, R3, 8)
		f.Addi(R3, R3, 1)
		f.StLocal(8, 8, R3)
		f.Ldi(R2, 25)
		f.Blt(R3, R2, loop)
		f.Leave()

		f = b.Func("main", "crit.c")
		f.Enter(0)
		f.Ldi(R1, 0)
		omp.Parallel(f, "micro", R1, 4)
		f.LoadSym(R1, "counter")
		f.Ld(8, R0, R1, 0)
		f.Hlt(R0)
		return b
	}
	for seed := uint64(1); seed <= 4; seed++ {
		if res := run(t, build(), seed, 4); res.ExitCode != 100 {
			t.Fatalf("seed %d: counter = %d, want 100", seed, res.ExitCode)
		}
	}
}

// TestDeterministicReplay: identical seeds give identical executions.
func TestDeterministicReplay(t *testing.T) {
	a := run(t, taskDepProgram(), 7, 4)
	b := run(t, taskDepProgram(), 7, 4)
	if a.GuestInstrs != b.GuestInstrs {
		t.Fatalf("same seed diverged: %d vs %d instrs", a.GuestInstrs, b.GuestInstrs)
	}
}

// TestWorkerPoolReuse: two consecutive parallel regions reuse pool workers.
func TestWorkerPoolReuse(t *testing.T) {
	b := omp.NewProgram()
	b.Global("acc", 8)

	f := b.Func("micro", "two.c")
	f.Enter(0)
	fn := f
	omp.Critical(f, 1, func() {
		fn.LoadSym(guest.R9, "acc")
		fn.Ld(8, guest.R10, guest.R9, 0)
		fn.Addi(guest.R10, guest.R10, 1)
		fn.St(8, guest.R9, 0, guest.R10)
	})
	f.Leave()

	f = b.Func("main", "two.c")
	f.Enter(0)
	f.Ldi(R1, 0)
	omp.Parallel(f, "micro", R1, 4)
	f.Ldi(R1, 0)
	omp.Parallel(f, "micro", R1, 4)
	f.LoadSym(R1, "acc")
	f.Ld(8, R0, R1, 0)
	f.Hlt(R0)

	res, inst, err := harness.BuildAndRun(b, harness.Setup{Seed: 5, Threads: 4})
	if err != nil || res.Err != nil {
		t.Fatal(err, res.Err)
	}
	if res.ExitCode != 8 {
		t.Fatalf("acc = %d, want 8", res.ExitCode)
	}
	// 4 guest threads total: main + 3 pool workers, reused by region 2.
	if n := len(inst.M.Threads()); n != 4 {
		t.Fatalf("threads = %d, want 4 (pool reuse)", n)
	}
	if inst.OMP.RegionsStarted != 2 {
		t.Fatalf("regions = %d", inst.OMP.RegionsStarted)
	}
}

// TestInoutsetBatching: two inoutset tasks on the same address are mutually
// compatible (no dependence between them) but both precede a later in task.
func TestInoutsetBatching(t *testing.T) {
	build := func() *gbuild.Builder {
		b := omp.NewProgram()
		b.Global("x", 8)
		b.Global("y", 8)

		// Each inoutset task adds 21 to x (disjoint halves would be
		// realistic; addition keeps the check simple and is
		// order-insensitive).
		f := b.Func("setter", "ios.c")
		fn := f
		f.Enter(0)
		omp.Critical(f, 9, func() {
			fn.LoadSym(R1, "x")
			fn.Ld(8, R2, R1, 0)
			fn.Addi(R2, R2, 21)
			fn.St(8, R1, 0, R2)
		})
		f.Leave()

		f = b.Func("reader", "ios.c")
		f.LoadSym(R1, "x")
		f.Ld(8, R2, R1, 0)
		f.LoadSym(R1, "y")
		f.St(8, R1, 0, R2)
		f.Ret()

		f = b.Func("micro", "ios.c")
		f.Enter(0)
		fn2 := f
		omp.SingleNowait(f, func() {
			omp.EmitTask(fn2, omp.TaskOpts{Fn: "setter", Deps: []omp.Dep{omp.DepSym(5, "x")}})
			omp.EmitTask(fn2, omp.TaskOpts{Fn: "setter", Deps: []omp.Dep{omp.DepSym(5, "x")}})
			omp.EmitTask(fn2, omp.TaskOpts{Fn: "reader", Deps: []omp.Dep{omp.DepSym(1, "x")}})
			omp.Taskwait(fn2)
		})
		f.Leave()

		f = b.Func("main", "ios.c")
		f.Enter(0)
		f.Ldi(R1, 0)
		omp.Parallel(f, "micro", R1, 4)
		f.LoadSym(R1, "y")
		f.Ld(8, R0, R1, 0)
		f.Hlt(R0)
		return b
	}
	for seed := uint64(1); seed <= 8; seed++ {
		if res := run(t, build(), seed, 4); res.ExitCode != 42 {
			t.Fatalf("seed %d: y = %d, want 42", seed, res.ExitCode)
		}
	}
}
