package cilk_test

import (
	"testing"

	"repro/internal/cilk"
	"repro/internal/core"
	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/harness"
	"repro/internal/report"
)

const (
	r0 = guest.R0
	r1 = guest.R1
	r2 = guest.R2
	r3 = guest.R3
	r9 = guest.R9
)

// fibProgram builds the canonical Cilk fib with spawn/sync. Children write
// their results into the parent's frame; sync orders the reads. The racy
// variant reads the results *before* the sync — the textbook Cilk
// determinacy race.
func fibProgram(n int32, racy bool) *gbuild.Builder {
	b := cilk.NewProgram(4)

	// cilk_fib(payload {n, result*}).
	f := b.Func("cilk_fib", "fib.c")
	f.Line(5)
	f.Enter(48)
	f.Ld(8, r1, r0, 0) // n
	f.Ld(8, r2, r0, 8) // result*
	f.StLocal(8, 8, r1)
	f.StLocal(8, 16, r2)
	rec := f.NewLabel()
	f.Ldi(r3, 2)
	f.Bge(r1, r3, rec)
	f.St(8, r2, 0, r1) // base: *result = n
	f.Leave()
	f.Bind(rec)
	// Locals x (fp-24), y (fp-32).
	fill := func(delta int32, off int32) func(*gbuild.Func, uint8) {
		return func(f *gbuild.Func, p uint8) {
			f.LdLocal(8, r9, 8)
			f.Addi(r9, r9, -delta)
			f.St(8, p, 0, r9)
			f.LocalAddr(r9, off)
			f.St(8, p, 8, r9)
		}
	}
	cilk.Spawn(f, "cilk_fib", 16, fill(1, 24))
	cilk.Spawn(f, "cilk_fib", 16, fill(2, 32))
	if !racy {
		cilk.Sync(f)
	}
	f.Line(12)
	f.LdLocal(8, r1, 24)
	f.LdLocal(8, r2, 32)
	f.Add(r1, r1, r2)
	f.LdLocal(8, r2, 16)
	f.St(8, r2, 0, r1) // *result = x + y
	if racy {
		cilk.Sync(f)
	}
	f.Leave()

	f = b.Func("cilk_main", "fib.c")
	f.Line(20)
	f.Enter(16)
	cilk.Spawn(f, "cilk_fib", 16, func(f *gbuild.Func, p uint8) {
		f.Ldi(r9, n)
		f.St(8, p, 0, r9)
		f.LocalAddr(r9, 8)
		f.St(8, p, 8, r9)
	})
	cilk.Sync(f)
	f.LdLocal(8, r1, 8)
	cilk.Exit(f, r1)
	f.Leave()
	return b
}

func TestFibCorrectAcrossSeeds(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		res, _, err := harness.BuildAndRun(fibProgram(10, false), harness.Setup{Seed: seed, Threads: 4})
		if err != nil || res.Err != nil {
			t.Fatal(err, res.Err)
		}
		if res.ExitCode != 55 {
			t.Fatalf("seed %d: fib(10) = %d, want 55", seed, res.ExitCode)
		}
	}
}

func TestTaskgrindCleanOnCorrectFib(t *testing.T) {
	// With the two implemented future-work extensions (pool no-free and
	// stack-lifetime suppression) the correct recursive spawn tree is
	// clean; see TestFibPoolRecyclingLimitation for the published
	// behaviour without them.
	opt := core.DefaultOptions()
	opt.NoFreePool = true
	tg := core.New(opt)
	res, _, err := harness.BuildAndRun(fibProgram(8, false), harness.Setup{Tool: tg, Seed: 2, Threads: 4})
	if err != nil || res.Err != nil {
		t.Fatal(err, res.Err)
	}
	if res.ExitCode != 21 {
		t.Fatalf("fib(8) = %d", res.ExitCode)
	}
	if tg.RaceCount != 0 {
		t.Fatalf("correct fib reported %d races:\n%s", tg.RaceCount, tg.Reports.String())
	}
}

func TestTaskgrindDetectsMissingSync(t *testing.T) {
	// With the sync moved after the read, the parent reads x/y while the
	// spawned children may still write them.
	found := false
	for seed := uint64(1); seed <= 6 && !found; seed++ {
		tg := core.New(core.DefaultOptions())
		res, _, err := harness.BuildAndRun(fibProgram(6, true), harness.Setup{Tool: tg, Seed: seed, Threads: 4})
		if err != nil || res.Err != nil {
			t.Fatal(err, res.Err)
		}
		found = tg.RaceCount > 0
	}
	if !found {
		t.Fatal("missing cilk_sync not detected")
	}
}

// TestFibPoolRecyclingLimitation documents the published tool's §IV-B
// limitation on capture-heavy recursive code: without the fast-pool
// extension, descriptor recycling produces runtime-pool false positives
// even on the correct program.
func TestFibPoolRecyclingLimitation(t *testing.T) {
	tg := core.New(core.DefaultOptions())
	res, _, err := harness.BuildAndRun(fibProgram(8, false), harness.Setup{Tool: tg, Seed: 2, Threads: 4})
	if err != nil || res.Err != nil {
		t.Fatal(err, res.Err)
	}
	if tg.RaceCount == 0 {
		t.Skip("no recycling occurred under this schedule")
	}
	for _, r := range tg.Reports.Races {
		for _, rg := range r.Ranges {
			if rg.Region != report.RegionPool {
				t.Fatalf("non-pool false positive %v in %s vs %s", rg, r.SegA, r.SegB)
			}
		}
	}
}

// TestSerializedSemantics: with one worker the annotated program still
// exposes its task structure — Taskgrind detects the missing sync even
// serialized (the Cilk analog of the §V-B annotation).
func TestSerializedSemantics(t *testing.T) {
	tg := core.New(core.DefaultOptions())
	res, _, err := harness.BuildAndRun(fibProgram(6, true), harness.Setup{Tool: tg, Seed: 1, Threads: 1})
	if err != nil || res.Err != nil {
		t.Fatal(err, res.Err)
	}
	if tg.RaceCount == 0 {
		t.Fatal("serialized cilk race not detected despite annotation")
	}
	// The serialized execution computes the right value (serial elision).
	if res.ExitCode != 8 {
		t.Fatalf("serial fib(6) = %d, want 8", res.ExitCode)
	}
}
