// Package cilk provides the Cilk programming model front end of the paper's
// §III-A(b): spawn/sync task parallelism. Following the paper's observation
// that "Cilk programs can be assumed to have a single parallel region
// containing all tasks", the front end lowers spawn/sync onto the shared
// work-stealing tasking substrate: a Cilk program is one parallel region
// whose initial worker runs main's continuation, cilk_spawn creates a task,
// and cilk_sync waits for the current function's children — exactly the
// segment structure (strands between spawn/sync points) a Cilk race
// detector reasons about.
package cilk

import (
	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/omp"
)

// NewProgram creates a builder with the runtime prelude and the Cilk
// bootstrap emitted. User code defines `cilk_main` (the entry strand) and
// any number of spawned functions; main is generated.
func NewProgram(workers int) *gbuild.Builder {
	b := omp.NewProgram()

	// The bootstrap microtask: the first worker runs cilk_main inside a
	// single region (one parallel region containing all tasks).
	f := b.Func("__cilk_boot", "libcilk.c")
	f.Enter(0)
	fn := f
	omp.SingleNowait(f, func() {
		// Cilk semantics are task semantics regardless of worker
		// count: annotate so serialized executions stay analyzable.
		omp.AssumeDeferrable(fn, true)
		fn.Call("cilk_main")
	})
	f.Leave()

	f = b.Func("main", "libcilk.c")
	f.Enter(0)
	f.Ldi(guest.R1, 0)
	omp.Parallel(f, "__cilk_boot", guest.R1, workers)
	f.LoadSym(guest.R1, "__cilk_exit")
	f.Ld(8, guest.R0, guest.R1, 0)
	f.Hlt(guest.R0)
	b.Global("__cilk_exit", 8)
	return b
}

// Spawn emits `cilk_spawn fn(...)`: the child runs fn with the payload
// filled by fill (nil for none); the parent continuation proceeds — and may
// be stolen, exactly like a task.
func Spawn(f *gbuild.Func, fn string, payloadBytes int32, fill func(*gbuild.Func, uint8)) {
	omp.EmitTask(f, omp.TaskOpts{Fn: fn, PayloadBytes: payloadBytes, Fill: fill})
}

// Sync emits `cilk_sync`: wait for every child this function spawned.
func Sync(f *gbuild.Func) { omp.Taskwait(f) }

// Exit stores the program's exit value (from reg) for main to return.
func Exit(f *gbuild.Func, reg uint8) {
	f.LoadSym(guest.R9, "__cilk_exit")
	f.St(8, guest.R9, 0, reg)
}
