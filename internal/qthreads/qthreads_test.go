package qthreads_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/harness"
	"repro/internal/omp"
	"repro/internal/qthreads"
	"repro/internal/vm"
)

const (
	r0 = guest.R0
	r1 = guest.R1
	r2 = guest.R2
	r9 = guest.R9
)

// producerConsumer builds: a forked qthread computes a value into a shared
// global and publishes through writeEF on a FEB cell; the main strand
// readFFs the cell and then reads the shared global. With FEB the data-flow
// is ordered; without (the racy variant skips the FEB and spins on a plain
// flag) the global is racy.
func producerConsumer(useFEB bool) *gbuild.Builder {
	b := omp.NewProgram()
	qthreads.EmitPrelude(b)
	b.Global("cell", 8)   // FEB word
	b.Global("shared", 8) // payload guarded by the FEB
	b.Global("result", 8)

	f := b.Func("producer", "pc.c")
	f.Line(10)
	f.LoadSym(r1, "shared")
	f.Ldi(r2, 42)
	f.St(8, r1, 0, r2)
	if useFEB {
		f.Enter(0)
		f.LoadSym(r0, "cell")
		f.Ldi(r1, 1)
		qthreads.WriteEF(f, r0, r1)
		f.Leave()
	} else {
		// Plain flag store: no happens-before.
		f.LoadSym(r1, "cell")
		f.Ldi(r2, 1)
		f.St(8, r1, 0, r2)
	}
	if !useFEB {
		f.Ret()
	}

	f = b.Func("micro", "pc.c")
	f.Line(20)
	f.Enter(16)
	fn := f
	omp.SingleNowait(f, func() {
		omp.AssumeDeferrable(fn, true)
		qthreads.Fork(fn, "producer", 0, nil)
		if useFEB {
			fn.LoadSym(r0, "cell")
			qthreads.ReadFF(fn, r0)
		} else {
			// Spin on the flag (synchronizes nothing).
			spin := fn.NewLabel()
			fn.Bind(spin)
			fn.Hcall("sched_yield")
			fn.LoadSym(r1, "cell")
			fn.Ld(8, r1, r1, 0)
			fn.Ldi(r2, 0)
			fn.Beq(r1, r2, spin)
		}
		fn.Line(30)
		fn.LoadSym(r1, "shared")
		fn.Ld(8, r2, r1, 0)
		fn.LoadSym(r1, "result")
		fn.St(8, r1, 0, r2)
		omp.Taskwait(fn)
	})
	f.Leave()

	f = b.Func("main", "pc.c")
	f.Enter(0)
	f.Ldi(r1, 0)
	omp.Parallel(f, "micro", r1, 4)
	f.LoadSym(r1, "result")
	f.Ld(8, r0, r1, 0)
	f.Hlt(r0)
	return b
}

func runQT(t *testing.T, b *gbuild.Builder, tool *core.Taskgrind, seed uint64, threads int) harness.Result {
	t.Helper()
	var dt interface {
		Name() string
	}
	_ = dt
	setup := harness.Setup{Seed: seed, Threads: threads,
		ExtraHost: func(reg *vm.HostRegistry, inst *harness.Instance) {
			qthreads.New(inst.OMP).Install(reg)
		}}
	if tool != nil {
		setup.Tool = tool
	}
	res, _, err := harness.BuildAndRun(b, setup)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	return res
}

// TestFEBOrdersDataFlow: readFF blocks until the producer's writeEF, so the
// consumer always sees 42 and Taskgrind reports nothing.
func TestFEBOrdersDataFlow(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		tg := core.New(core.DefaultOptions())
		res := runQT(t, producerConsumer(true), tg, seed, 4)
		if res.ExitCode != 42 {
			t.Fatalf("seed %d: result = %d, want 42", seed, res.ExitCode)
		}
		if tg.RaceCount != 0 {
			t.Fatalf("seed %d: FEB-ordered program reported %d races:\n%s",
				seed, tg.RaceCount, tg.Reports.String())
		}
	}
}

// TestPlainFlagIsRacy: spinning on an ordinary flag provides no
// happens-before — Taskgrind reports the shared-variable race (and the
// flag itself).
func TestPlainFlagIsRacy(t *testing.T) {
	tg := core.New(core.DefaultOptions())
	res := runQT(t, producerConsumer(false), tg, 3, 4)
	if res.ExitCode != 42 {
		t.Fatalf("result = %d", res.ExitCode)
	}
	if tg.RaceCount == 0 {
		t.Fatal("unsynchronized flag handoff not reported")
	}
}

// TestFEBBlocksUntilFull: the consumer must actually block (not busy-read
// stale data) when the producer is delayed.
func TestFEBBlocksUntilFull(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		res := runQT(t, producerConsumer(true), nil, seed, 1)
		if res.ExitCode != 42 {
			t.Fatalf("seed %d (1 thread): result = %d", seed, res.ExitCode)
		}
	}
}

// TestFillAndEmpty exercises qthread_fill / qthread_empty host calls.
func TestFillAndEmpty(t *testing.T) {
	b := omp.NewProgram()
	qthreads.EmitPrelude(b)
	b.Global("cell", 8)
	f := b.Func("main", "fe.c")
	f.Enter(0)
	f.LoadSym(r0, "cell")
	f.Hcall("qt_feb_fill") // mark full without a write
	f.LoadSym(r0, "cell")
	qthreads.ReadFF(f, r0) // returns immediately (cell content 0)
	f.LoadSym(r0, "cell")
	f.Hcall("qt_feb_empty")
	f.Ldi(r0, 7)
	f.Hlt(r0)
	res, _, err := harness.BuildAndRun(b, harness.Setup{Seed: 1, Threads: 1,
		ExtraHost: func(reg *vm.HostRegistry, inst *harness.Instance) {
			qthreads.New(inst.OMP).Install(reg)
		}})
	if err != nil || res.Err != nil {
		t.Fatal(err, res.Err)
	}
	if res.ExitCode != 7 {
		t.Fatalf("exit = %d", res.ExitCode)
	}
}

// TestPipelineOfFEBStages: a three-stage producer pipeline where each stage
// reads its input cell with readFF and publishes its output with writeEF —
// the canonical Qthreads dataflow shape. Values must flow in order and
// Taskgrind must see no races.
func TestPipelineOfFEBStages(t *testing.T) {
	b := omp.NewProgram()
	qthreads.EmitPrelude(b)
	b.Global("c0", 8)
	b.Global("c1", 8)
	b.Global("c2", 8)
	b.Global("out", 8)

	// stage(srcSym, dstSym): out = in*2 through FEB cells.
	stage := func(name, src, dst string) {
		f := b.Func(name, "pipe.c")
		f.Enter(0)
		f.LoadSym(r0, src)
		qthreads.ReadFF(f, r0) // r0 = value
		f.Muli(r1, r0, 2)
		f.LoadSym(r0, dst)
		qthreads.WriteEF(f, r0, r1)
		f.Leave()
	}
	stage("s1", "c0", "c1")
	stage("s2", "c1", "c2")

	f := b.Func("sink", "pipe.c")
	f.Enter(0)
	f.LoadSym(r0, "c2")
	qthreads.ReadFF(f, r0)
	f.LoadSym(r1, "out")
	f.St(8, r1, 0, r0)
	f.Leave()

	f = b.Func("micro", "pipe.c")
	f.Enter(0)
	fn := f
	omp.SingleNowait(f, func() {
		omp.AssumeDeferrable(fn, true)
		// Forked in reverse order: the pipeline still resolves through
		// the full/empty bits.
		qthreads.Fork(fn, "sink", 0, nil)
		qthreads.Fork(fn, "s2", 0, nil)
		qthreads.Fork(fn, "s1", 0, nil)
		// Feed the head.
		fn.LoadSym(r0, "c0")
		fn.Ldi(r1, 10)
		qthreads.WriteEF(fn, r0, r1)
		omp.Taskwait(fn)
	})
	f.Leave()

	f = b.Func("main", "pipe.c")
	f.Enter(0)
	f.Ldi(r1, 0)
	omp.Parallel(f, "micro", r1, 4)
	f.LoadSym(r1, "out")
	f.Ld(8, r0, r1, 0)
	f.Hlt(r0)

	for seed := uint64(1); seed <= 8; seed++ {
		tg := core.New(core.DefaultOptions())
		res := runQT(t, b, tg, seed, 4)
		if res.ExitCode != 40 {
			t.Fatalf("seed %d: pipeline out = %d, want 40", seed, res.ExitCode)
		}
		if tg.RaceCount != 0 {
			t.Fatalf("seed %d: FEB pipeline reported %d races:\n%s",
				seed, tg.RaceCount, tg.Reports.String())
		}
		b = rebuildPipeline()
	}
}

func rebuildPipeline() *gbuild.Builder {
	b := omp.NewProgram()
	qthreads.EmitPrelude(b)
	b.Global("c0", 8)
	b.Global("c1", 8)
	b.Global("c2", 8)
	b.Global("out", 8)
	stage := func(name, src, dst string) {
		f := b.Func(name, "pipe.c")
		f.Enter(0)
		f.LoadSym(r0, src)
		qthreads.ReadFF(f, r0)
		f.Muli(r1, r0, 2)
		f.LoadSym(r0, dst)
		qthreads.WriteEF(f, r0, r1)
		f.Leave()
	}
	stage("s1", "c0", "c1")
	stage("s2", "c1", "c2")
	f := b.Func("sink", "pipe.c")
	f.Enter(0)
	f.LoadSym(r0, "c2")
	qthreads.ReadFF(f, r0)
	f.LoadSym(r1, "out")
	f.St(8, r1, 0, r0)
	f.Leave()
	f = b.Func("micro", "pipe.c")
	f.Enter(0)
	fn := f
	omp.SingleNowait(f, func() {
		omp.AssumeDeferrable(fn, true)
		qthreads.Fork(fn, "sink", 0, nil)
		qthreads.Fork(fn, "s2", 0, nil)
		qthreads.Fork(fn, "s1", 0, nil)
		fn.LoadSym(r0, "c0")
		fn.Ldi(r1, 10)
		qthreads.WriteEF(fn, r0, r1)
		omp.Taskwait(fn)
	})
	f.Leave()
	f = b.Func("main", "pipe.c")
	f.Enter(0)
	f.Ldi(r1, 0)
	omp.Parallel(f, "micro", r1, 4)
	f.LoadSym(r1, "out")
	f.Ld(8, r0, r1, 0)
	f.Hlt(r0)
	return b
}
