// Package qthreads provides the Qthreads programming model of the paper's
// §III-A(c): lightweight tasks synchronized through full/empty bits (FEB).
// The paper lists FEB support as requiring "subtle extensions to Taskgrind
// semantics"; the extension implemented here is the generic release/acquire
// happens-before event pair (ompt.CRRelease/CRAcquire) the FEB operations
// raise: writeEF releases, readFF acquires — data-flow ordering every
// analysis tool honors.
//
// Tasking (qthread_fork) lowers onto the shared work-stealing substrate,
// one parallel region containing all qthreads.
package qthreads

import (
	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/omp"
	"repro/internal/vm"
)

// febState tracks one synchronization word.
type febState struct {
	full    bool
	waiters []*vm.Thread
}

// Runtime adds the FEB host calls on top of the tasking substrate.
type Runtime struct {
	OMP *omp.Runtime
	feb map[uint64]*febState
}

// New creates the FEB runtime bound to the tasking substrate.
func New(o *omp.Runtime) *Runtime {
	return &Runtime{OMP: o, feb: make(map[uint64]*febState)}
}

// Install registers the FEB host calls.
func (r *Runtime) Install(reg *vm.HostRegistry) {
	reg.Register("qt_feb_empty", r.hEmpty)
	reg.Register("qt_feb_fill", r.hFill)
	reg.Register("qt_writeEF_commit", r.hWriteEFCommit)
	reg.Register("qt_readFF_poll", r.hReadFFPoll)
}

func (r *Runtime) state(addr uint64) *febState {
	s := r.feb[addr]
	if s == nil {
		s = &febState{}
		r.feb[addr] = s
	}
	return s
}

// hEmpty marks a word empty (qthread_empty).
func (r *Runtime) hEmpty(m *vm.Machine, t *vm.Thread) vm.HostResult {
	r.state(t.Regs[guest.R0]).full = false
	return vm.HostResult{}
}

// hFill marks a word full without a write (qthread_fill).
func (r *Runtime) hFill(m *vm.Machine, t *vm.Thread) vm.HostResult {
	r.wake(t.Regs[guest.R0])
	return vm.HostResult{}
}

func (r *Runtime) wake(addr uint64) {
	s := r.state(addr)
	s.full = true
	for _, w := range s.waiters {
		w.Wake()
	}
	s.waiters = nil
}

// hWriteEFCommit finishes a writeEF: R0 = addr. The guest wrapper has
// already performed the (instrumented) store; the host side publishes the
// full bit and raises the release event. Blocking until empty is handled by
// the wrapper's initial poll (simplified: the benchmarks use single-writer
// words, the common Qthreads producer/consumer shape).
func (r *Runtime) hWriteEFCommit(m *vm.Machine, t *vm.Thread) vm.HostResult {
	addr := t.Regs[guest.R0]
	r.OMP.Events.Release(t, addr)
	r.wake(addr)
	return vm.HostResult{}
}

// hReadFFPoll: R0 = addr. Returns 1 when the word is full (raising the
// acquire event); blocks otherwise (0 on wake; the wrapper re-polls).
func (r *Runtime) hReadFFPoll(m *vm.Machine, t *vm.Thread) vm.HostResult {
	addr := t.Regs[guest.R0]
	s := r.state(addr)
	if s.full {
		r.OMP.Events.Acquire(t, addr)
		return vm.HostResult{Ret: 1}
	}
	s.waiters = append(s.waiters, t)
	return vm.HostResult{Ret: 0, Action: vm.HostBlock, Reason: "readFF"}
}

// EmitPrelude appends the guest-side FEB wrappers:
//
//	qt_writeEF(addr, val): store val (instrumented), publish full.
//	qt_readFF(addr) -> val: wait full, load (instrumented).
func EmitPrelude(b *gbuild.Builder) {
	f := b.Func("qt_writeEF", "libqthreads.c")
	f.Enter(0)
	f.St(8, guest.R0, 0, guest.R1) // the user-visible write
	f.Hcall("qt_writeEF_commit")
	f.Leave()

	f = b.Func("qt_readFF", "libqthreads.c")
	f.Enter(16)
	f.StLocal(8, 8, guest.R0)
	loop := f.NewLabel()
	f.Bind(loop)
	f.LdLocal(8, guest.R0, 8)
	f.Hcall("qt_readFF_poll")
	f.Ldi(guest.R1, 0)
	f.Beq(guest.R0, guest.R1, loop)
	f.LdLocal(8, guest.R1, 8)
	f.Ld(8, guest.R0, guest.R1, 0) // the user-visible read
	f.Leave()
}

// Fork emits qthread_fork(fn, payload): a task on the shared substrate.
func Fork(f *gbuild.Func, fn string, payloadBytes int32, fill func(*gbuild.Func, uint8)) {
	omp.EmitTask(f, omp.TaskOpts{Fn: fn, PayloadBytes: payloadBytes, Fill: fill})
}

// WriteEF emits qt_writeEF(addrReg, valReg).
func WriteEF(f *gbuild.Func, addrReg, valReg uint8) {
	if addrReg != guest.R0 {
		f.Mov(guest.R0, addrReg)
	}
	if valReg != guest.R1 {
		f.Mov(guest.R1, valReg)
	}
	f.Call("qt_writeEF")
}

// ReadFF emits qt_readFF(addrReg); the value lands in R0.
func ReadFF(f *gbuild.Func, addrReg uint8) {
	if addrReg != guest.R0 {
		f.Mov(guest.R0, addrReg)
	}
	f.Call("qt_readFF")
}
