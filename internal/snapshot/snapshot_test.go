package snapshot

import (
	"testing"

	"repro/internal/gmem"
)

func page(idx uint64, fill byte) gmem.PageDump {
	d := make([]byte, gmem.PageSize)
	for i := range d {
		d[i] = fill
	}
	return gmem.PageDump{Idx: idx, Data: d}
}

func TestCheckpointEncodeDecodeRoundTrip(t *testing.T) {
	cp := &Checkpoint{
		Seq: 3, Slices: 100, Blocks: 400, Instrs: 2000, RNG: 0xdeadbeef,
		Threads: []ThreadState{{ID: 0, PC: 0x40, Instrs: 17,
			CallStack: []Frame{{Fn: 0x10, CallSite: 0x44, SP: 0x7000}}}},
		Pages:   []gmem.PageDump{page(5, 0xaa)},
		Regions: []gmem.Region{{Lo: 0x1000, Hi: 0x2000, Perm: gmem.PermRW}},
	}
	cp.Threads[0].Regs[3] = 42
	cp.Digest = cp.ComputeDigest()

	enc, err := cp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCheckpoint(enc)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Diff(got); err != nil {
		t.Fatalf("round-trip diff: %v", err)
	}
	if got.Pages[0].Data[0] != 0xaa || got.Regions[0].Perm != gmem.PermRW {
		t.Fatal("payload lost in round trip")
	}
}

func TestCheckpointDiffDetectsDivergence(t *testing.T) {
	a := &Checkpoint{Slices: 10, Threads: []ThreadState{{ID: 0, PC: 0x40}}}
	a.Digest = a.ComputeDigest()
	b := &Checkpoint{Slices: 10, Threads: []ThreadState{{ID: 0, PC: 0x44}}}
	b.Digest = b.ComputeDigest()
	if err := a.Diff(b); err == nil {
		t.Fatal("PC divergence not detected")
	}
	c := &Checkpoint{Slices: 11, Threads: []ThreadState{{ID: 0, PC: 0x40}}}
	if err := a.Diff(c); err == nil {
		t.Fatal("position divergence not detected")
	}
}

func TestManagerBoundedRetentionFoldsIntoBase(t *testing.T) {
	mgr := NewManager(2)
	mgr.SetBase([]gmem.PageDump{page(1, 0x01)}, nil)

	cp1 := &Checkpoint{Seq: 1, Pages: []gmem.PageDump{page(1, 0x11), page(2, 0x22)}}
	cp2 := &Checkpoint{Seq: 2, Pages: []gmem.PageDump{page(3, 0x33)}}
	cp3 := &Checkpoint{Seq: 3, Pages: []gmem.PageDump{page(2, 0x99)}}
	mgr.Add(cp1)
	mgr.Add(cp2)
	mgr.Add(cp3) // evicts cp1 into the base

	if got := len(mgr.Checkpoints()); got != 2 {
		t.Fatalf("retained %d checkpoints, want 2", got)
	}
	if mgr.Taken != 3 || mgr.Dropped != 1 {
		t.Fatalf("taken/dropped = %d/%d", mgr.Taken, mgr.Dropped)
	}
	if mgr.Latest() != cp3 {
		t.Fatal("Latest is not the newest checkpoint")
	}

	// At cp2, page 1 comes from the folded cp1 delta, page 2 from cp1,
	// page 3 from cp2 itself.
	full := mgr.PagesAt(cp2)
	if full[1][0] != 0x11 || full[2][0] != 0x22 || full[3][0] != 0x33 {
		t.Fatalf("PagesAt(cp2) = %#x %#x %#x", full[1][0], full[2][0], full[3][0])
	}
	// At cp3, page 2 is overridden by cp3's delta.
	if full := mgr.PagesAt(cp3); full[2][0] != 0x99 {
		t.Fatalf("PagesAt(cp3)[2] = %#x", full[2][0])
	}
	if d, ok := mgr.PageAt(cp2, 2); !ok || d[0] != 0x22 {
		t.Fatalf("PageAt(cp2, 2) = %v %#x", ok, d[0])
	}
	if _, ok := mgr.PageAt(cp2, 77); ok {
		t.Fatal("untouched page reported present")
	}
}

func TestJournalRecordVerifyAgree(t *testing.T) {
	j := NewJournal()
	decisions := []struct {
		tid       int
		perturbed bool
	}{{0, false}, {1, true}, {1, false}, {0, false}}
	for i, d := range decisions {
		if err := j.Slice(uint64(i), d.tid, d.perturbed); err != nil {
			t.Fatal(err)
		}
	}
	j.Fire(2, false)
	j.Fire(2, true)
	j.AddMark(Mark{Slice: 3, Blocks: 12, Digest: 0xabc})

	v := j.Verifier(false)
	for i, d := range decisions {
		if err := v.Slice(uint64(i), d.tid, d.perturbed); err != nil {
			t.Fatalf("faithful replay diverged at %d: %v", i, err)
		}
	}
	if err := v.Fire(2, false); err != nil {
		t.Fatal(err)
	}
	if err := v.Fire(2, true); err != nil {
		t.Fatal(err)
	}
	if err := v.AddMark(Mark{Slice: 3, Blocks: 12, Digest: 0xabc}); err != nil {
		t.Fatal(err)
	}
	// Running past the recording is allowed (replay continues beyond the
	// recorded crash window).
	if err := v.Slice(4, 1, false); err != nil {
		t.Fatal(err)
	}
	if v.Err() != nil {
		t.Fatalf("unexpected divergence: %v", v.Err())
	}
}

func TestJournalDetectsDivergence(t *testing.T) {
	j := NewJournal()
	j.Slice(0, 0, false)
	j.Slice(1, 1, false)

	v := j.Verifier(false)
	v.Slice(0, 0, false)
	err := v.Slice(1, 0, false) // recorded t1, replayed t0
	if err == nil {
		t.Fatal("pick divergence not detected")
	}
	d, ok := err.(*Divergence)
	if !ok || d.What != "pick" || d.Slice != 1 {
		t.Fatalf("divergence = %+v", err)
	}

	// Perturb mismatch on the same pick.
	v2 := j.Verifier(false)
	if err := v2.Slice(0, 0, true); err == nil {
		t.Fatal("perturb divergence not detected")
	}

	// Fire mismatch.
	j2 := NewJournal()
	j2.Fire(1, true)
	v3 := j2.Verifier(false)
	if err := v3.Fire(1, false); err == nil {
		t.Fatal("fire divergence not detected")
	}

	// Mark mismatch.
	j3 := NewJournal()
	j3.AddMark(Mark{Slice: 5, Digest: 1})
	v4 := j3.Verifier(false)
	if err := v4.AddMark(Mark{Slice: 5, Digest: 2}); err == nil {
		t.Fatal("mark divergence not detected")
	}
}

func TestJournalSoftModeRecordsWithoutFailing(t *testing.T) {
	j := NewJournal()
	j.Slice(0, 0, false)
	j.Slice(1, 1, false)

	v := j.Verifier(true)
	if err := v.Slice(0, 0, false); err != nil {
		t.Fatal(err)
	}
	if err := v.Slice(1, 0, false); err != nil {
		t.Fatalf("soft mode returned error: %v", err)
	}
	if v.Err() == nil || v.Err().Slice != 1 {
		t.Fatalf("soft divergence not recorded: %+v", v.Err())
	}
	// Later decisions are suppressed, first divergence retained.
	v.Slice(2, 1, true)
	if v.Err().Slice != 1 {
		t.Fatal("first divergence not sticky")
	}
}

func TestJournalFirePrefixSemantics(t *testing.T) {
	// A replay that draws more decisions for a kind than recorded (or from
	// a kind never recorded) is a consistent prefix extension, not a
	// divergence — the IR fallback path depends on this.
	j := NewJournal()
	j.Fire(0, true)
	v := j.Verifier(false)
	if err := v.Fire(0, true); err != nil {
		t.Fatal(err)
	}
	if err := v.Fire(0, false); err != nil {
		t.Fatalf("past-prefix draw flagged: %v", err)
	}
	if err := v.Fire(9, true); err != nil {
		t.Fatalf("unrecorded kind flagged: %v", err)
	}
	if v.Err() != nil {
		t.Fatalf("unexpected divergence: %v", v.Err())
	}
}

func TestTokenRoundTrip(t *testing.T) {
	cfg := Config{
		Prog: "fib", Tool: "memcheck", Seed: 99, Threads: 4, Slice: 7,
		Engine: "compiled", Delivery: "batched", Extend: 2,
		Inject: "panic:every=3", InjectSeed: 1234, Lenient: true,
		LSize: 10, LIters: 8, LTasksEl: 4, LTasksNd: 2, LRacy: true,
	}
	tok := cfg.Token()
	got, err := ParseToken(tok)
	if err != nil {
		t.Fatal(err)
	}
	if got != cfg {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, cfg)
	}
	// Canonical: same config, same token.
	if cfg.Token() != tok {
		t.Fatal("token not deterministic")
	}
}

func TestTokenDefaultsOmitted(t *testing.T) {
	short := Config{Prog: "fib", Tool: "core", Seed: 1}.Token()
	long := Config{Prog: "fib", Tool: "core", Seed: 1, Threads: 8,
		Inject: "heap:every=2;pool:every=3", InjectSeed: 42}.Token()
	if len(short) >= len(long) {
		t.Fatal("zero fields not omitted from encoding")
	}
}

func TestTokenRejectsGarbage(t *testing.T) {
	for _, tok := range []string{"", "nope", "tg1:%%%", "tg2:AAAA"} {
		if _, err := ParseToken(tok); err == nil {
			t.Fatalf("ParseToken(%q) accepted", tok)
		}
	}
	// Bad numeric field.
	bad := Config{Prog: "x"}.Token()
	_ = bad
	if _, err := ParseToken("tg1:c2VlZD1ub3BlJnByb2c9eA"); err == nil { // seed=nope&prog=x
		t.Fatal("non-numeric seed accepted")
	}
}
