package snapshot

// The schedule journal records every non-deterministic decision a run makes
// — per-slice scheduler picks (which thread, whether the perturb draw fired),
// per-kind fault-injection firings, and periodic state marks — and can then
// be rewound into verify mode, where a re-execution is checked decision by
// decision against the recording. A verified replay that reaches the end of
// the journal without divergence is, by construction, the same run.
//
// Verification is prefix-based on purpose: a fallback re-execution under the
// IR oracle never consults the compiled engine's panic-injection stream, so
// it legitimately draws *fewer* injection decisions than the recording. A
// replay consuming a strict prefix of a stream is consistent; consuming a
// different value is a divergence.

import "fmt"

// Mode selects whether the journal is being written or checked.
type Mode int

const (
	// Record appends decisions to the journal.
	Record Mode = iota
	// Verify checks decisions against the recording and flags divergence.
	Verify
)

// Divergence describes the first point where a verifying run departed from
// the recording. It implements error.
type Divergence struct {
	// What names the diverging stream ("pick", "perturb", "fire:<kind>",
	// "mark").
	What string
	// Slice is the scheduler slice index at the divergence.
	Slice uint64
	// Want is the recorded value, Got the replayed one.
	Want, Got string
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("replay divergence at slice %d: %s: recorded %s, got %s",
		d.Slice, d.What, d.Want, d.Got)
}

// pickRec is one scheduler decision: the chosen thread and whether the
// perturbation draw shrank its slice.
type pickRec struct {
	TID       int32
	Perturbed bool
}

// Mark is a periodic cheap state digest, recorded at checkpoint boundaries
// and cross-checked on replay (the online divergence probe).
type Mark struct {
	Slice  uint64
	Blocks uint64
	Instrs uint64
	Digest uint64
}

// Journal is the recorded decision stream of one run. Not internally
// synchronized: all writers run on the serialized machine loop.
type Journal struct {
	// Mode selects record vs verify behaviour.
	Mode Mode
	// Soft, in verify mode, records the first divergence without failing
	// the run — used when the re-execution is *expected* to depart (the
	// trusted IR fallback) and the journal's job is only to report where.
	Soft bool

	picks []pickRec
	fires map[int][]bool
	marks []Mark

	pos     int
	firePos map[int]int
	markPos int
	exhaust bool
	div     *Divergence
}

// NewJournal returns an empty journal in Record mode.
func NewJournal() *Journal {
	return &Journal{fires: make(map[int][]bool), firePos: make(map[int]int)}
}

// Verifier returns a journal sharing this recording, rewound to the start in
// Verify mode. The recording is not copied; do not record into the original
// while a verifier is live.
func (j *Journal) Verifier(soft bool) *Journal {
	return &Journal{
		Mode:    Verify,
		Soft:    soft,
		picks:   j.picks,
		fires:   j.fires,
		marks:   j.marks,
		firePos: make(map[int]int),
	}
}

// diverge registers a divergence. In Soft mode only the first is retained
// and verification continues (subsequent checks are suppressed: once off the
// recorded path every later comparison is noise). In strict mode the
// divergence is sticky and returned to the caller.
func (j *Journal) diverge(d *Divergence) error {
	if j.div == nil {
		j.div = d
	}
	if j.Soft {
		j.exhaust = true
		return nil
	}
	return j.div
}

// Slice records (or verifies) one scheduler decision. slice is the machine's
// slice index, tid the chosen thread, perturbed whether the perturb draw
// fired. In verify mode a mismatch returns *Divergence (nil in Soft mode);
// running past the end of the recording silently stops verification — the
// recording ended (crash point or fallback window) and the replay continuing
// is expected.
func (j *Journal) Slice(slice uint64, tid int, perturbed bool) error {
	if j.Mode == Record {
		j.picks = append(j.picks, pickRec{TID: int32(tid), Perturbed: perturbed})
		return nil
	}
	// A sticky divergence from another stream (injection fires are checked
	// mid-slice, where no error can propagate) surfaces here, at the next
	// slice boundary.
	if j.div != nil && !j.Soft {
		return j.div
	}
	if j.exhaust {
		return nil
	}
	if j.pos >= len(j.picks) {
		j.exhaust = true
		return nil
	}
	rec := j.picks[j.pos]
	j.pos++
	if int(rec.TID) != tid {
		return j.diverge(&Divergence{What: "pick", Slice: slice,
			Want: fmt.Sprintf("t%d", rec.TID), Got: fmt.Sprintf("t%d", tid)})
	}
	if rec.Perturbed != perturbed {
		return j.diverge(&Divergence{What: "perturb", Slice: slice,
			Want: fmt.Sprintf("%v", rec.Perturbed), Got: fmt.Sprintf("%v", perturbed)})
	}
	return nil
}

// Fire records (or verifies) one fault-injection decision for an injection
// kind. Streams are per-kind so engines that consult different kinds (the IR
// oracle never draws from the compiled engine's panic stream) stay
// prefix-consistent.
func (j *Journal) Fire(kind int, fired bool) error {
	if j.Mode == Record {
		j.fires[kind] = append(j.fires[kind], fired)
		return nil
	}
	if j.exhaust {
		return nil
	}
	stream := j.fires[kind]
	pos := j.firePos[kind]
	if pos >= len(stream) {
		// Past the recorded prefix for this kind: stop checking it.
		j.firePos[kind] = pos + 1
		return nil
	}
	j.firePos[kind] = pos + 1
	if stream[pos] != fired {
		return j.diverge(&Divergence{What: fmt.Sprintf("fire:%d", kind), Slice: 0,
			Want: fmt.Sprintf("%v", stream[pos]), Got: fmt.Sprintf("%v", fired)})
	}
	return nil
}

// AddMark records (or verifies) a periodic state digest. Marks are the
// online divergence probe: a replayed run whose digest departs from the
// recording at a mark pins the divergence to the preceding window.
func (j *Journal) AddMark(m Mark) error {
	if j.Mode == Record {
		j.marks = append(j.marks, m)
		return nil
	}
	if j.exhaust {
		return nil
	}
	if j.markPos >= len(j.marks) {
		j.exhaust = true
		return nil
	}
	rec := j.marks[j.markPos]
	j.markPos++
	if rec != m {
		return j.diverge(&Divergence{What: "mark", Slice: m.Slice,
			Want: fmt.Sprintf("slice=%d blocks=%d instrs=%d digest=%#x", rec.Slice, rec.Blocks, rec.Instrs, rec.Digest),
			Got:  fmt.Sprintf("slice=%d blocks=%d instrs=%d digest=%#x", m.Slice, m.Blocks, m.Instrs, m.Digest)})
	}
	return nil
}

// Err returns the first divergence seen (strict or soft), or nil.
func (j *Journal) Err() *Divergence { return j.div }

// MarksMatched returns how many recorded marks this verifier has matched
// (a mark that diverged is not counted).
func (j *Journal) MarksMatched() int {
	n := j.markPos
	if j.div != nil && j.div.What == "mark" && n > 0 {
		n--
	}
	return n
}

// Len returns the number of recorded scheduler decisions.
func (j *Journal) Len() int { return len(j.picks) }

// Marks returns the recorded state marks.
func (j *Journal) Marks() []Mark { return j.marks }

// FireCount returns the number of recorded decisions for an injection kind.
func (j *Journal) FireCount(kind int) int { return len(j.fires[kind]) }
