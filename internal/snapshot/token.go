package snapshot

// Replay tokens. A run of this system is a pure function of its
// configuration (program, tool, seed, engine, injection spec, ...), so a
// crash is fully reproduced by re-running with the same configuration. The
// token is that configuration, canonically encoded and printed at the bottom
// of every CrashReport; `taskgrind -replay <token>` decodes it and re-runs.

import (
	"encoding/base64"
	"fmt"
	"net/url"
	"strconv"
	"strings"
)

// tokenPrefix versions the encoding; bump on incompatible changes.
const tokenPrefix = "tg1:"

// Config is the complete run configuration a replay token carries.
// Zero-valued fields are omitted from the encoding, so tokens stay short for
// default runs.
type Config struct {
	Prog       string
	Tool       string
	Seed       uint64
	Threads    int
	Slice      int
	Engine     string
	Delivery   string
	Extend     int
	Inject     string
	InjectSeed uint64
	Lenient    bool

	// LULESH proxy-app parameters (prog=lulesh only).
	LSize    int
	LIters   int
	LTasksEl int
	LTasksNd int
	LRacy    bool
}

// Token canonically encodes the configuration. Keys are sorted (url.Values
// encoding), so equal configurations always produce equal tokens.
func (c Config) Token() string {
	v := url.Values{}
	set := func(k, val string) {
		if val != "" {
			v.Set(k, val)
		}
	}
	setInt := func(k string, n int) {
		if n != 0 {
			v.Set(k, strconv.Itoa(n))
		}
	}
	setU64 := func(k string, n uint64) {
		if n != 0 {
			v.Set(k, strconv.FormatUint(n, 10))
		}
	}
	set("prog", c.Prog)
	set("tool", c.Tool)
	setU64("seed", c.Seed)
	setInt("threads", c.Threads)
	setInt("slice", c.Slice)
	set("engine", c.Engine)
	set("delivery", c.Delivery)
	setInt("extend", c.Extend)
	set("inject", c.Inject)
	setU64("iseed", c.InjectSeed)
	if c.Lenient {
		v.Set("lenient", "1")
	}
	setInt("ls", c.LSize)
	setInt("li", c.LIters)
	setInt("lte", c.LTasksEl)
	setInt("ltn", c.LTasksNd)
	if c.LRacy {
		v.Set("lracy", "1")
	}
	return tokenPrefix + base64.RawURLEncoding.EncodeToString([]byte(v.Encode()))
}

// ParseToken decodes a replay token back into a configuration.
func ParseToken(tok string) (Config, error) {
	var c Config
	if !strings.HasPrefix(tok, tokenPrefix) {
		return c, fmt.Errorf("snapshot: not a replay token (want %q prefix)", tokenPrefix)
	}
	raw, err := base64.RawURLEncoding.DecodeString(strings.TrimPrefix(tok, tokenPrefix))
	if err != nil {
		return c, fmt.Errorf("snapshot: malformed replay token: %w", err)
	}
	v, err := url.ParseQuery(string(raw))
	if err != nil {
		return c, fmt.Errorf("snapshot: malformed replay token payload: %w", err)
	}
	geti := func(k string) (int, error) {
		if !v.Has(k) {
			return 0, nil
		}
		return strconv.Atoi(v.Get(k))
	}
	getu := func(k string) (uint64, error) {
		if !v.Has(k) {
			return 0, nil
		}
		return strconv.ParseUint(v.Get(k), 10, 64)
	}
	c.Prog = v.Get("prog")
	c.Tool = v.Get("tool")
	c.Engine = v.Get("engine")
	c.Delivery = v.Get("delivery")
	c.Inject = v.Get("inject")
	c.Lenient = v.Get("lenient") == "1"
	c.LRacy = v.Get("lracy") == "1"
	if c.Seed, err = getu("seed"); err != nil {
		return c, fmt.Errorf("snapshot: token field seed: %w", err)
	}
	if c.InjectSeed, err = getu("iseed"); err != nil {
		return c, fmt.Errorf("snapshot: token field iseed: %w", err)
	}
	for _, f := range []struct {
		k   string
		dst *int
	}{
		{"threads", &c.Threads}, {"slice", &c.Slice}, {"extend", &c.Extend},
		{"ls", &c.LSize}, {"li", &c.LIters}, {"lte", &c.LTasksEl}, {"ltn", &c.LTasksNd},
	} {
		if *f.dst, err = geti(f.k); err != nil {
			return c, fmt.Errorf("snapshot: token field %s: %w", f.k, err)
		}
	}
	return c, nil
}
