// Package snapshot is the checkpoint/replay substrate of the robustness
// layer: serializable snapshots of guest machine state (registers, dirty
// memory pages, scheduler bookkeeping, PRNG position), a bounded-history
// checkpoint manager, a schedule journal that records — or verifies — every
// scheduling decision and fault-injection draw, and compact replay tokens
// that let any crashing run be reproduced bit-identically from its command
// line.
//
// The design leans on the same property Valgrind's serialized scheduler
// gives the paper's experiments: with one guest thread running at a time and
// every non-deterministic choice drawn from seeded streams, a run is a pure
// function of its configuration. Checkpoints therefore never need to
// serialize host-side tool or runtime object graphs — a rewind reconstructs
// them by deterministic re-execution, and the snapshot's job is to *verify*
// (cheaply, via digests and dirty-page deltas) that the reconstruction is
// bit-faithful before the run resumes.
package snapshot

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/gmem"
	"repro/internal/guest"
)

// Frame mirrors one shadow call stack entry (vm.Frame, kept dependency-free
// so vm can import this package).
type Frame struct {
	Fn, CallSite, SP uint64
}

// ThreadState is one guest thread's serializable state at a checkpoint.
type ThreadState struct {
	ID          int
	Regs        [guest.NumRegs]uint64
	PC          uint64
	State       uint8
	BlockReason string
	StackLo     uint64
	StackHi     uint64
	TLSBase     uint64
	TLSGen      uint64
	CallStack   []Frame
	Blocks      uint64
	Instrs      uint64
}

// Checkpoint is a serializable snapshot of guest machine state, taken at a
// timeslice boundary. Pages holds only the delta since the previous
// checkpoint (the gmem generation cut); the Manager composes deltas into
// full states.
type Checkpoint struct {
	// Seq numbers checkpoints from 1 within a run.
	Seq uint64
	// Scheduler position and counters.
	Slices      uint64
	Blocks      uint64
	Instrs      uint64
	Switches    uint64
	Preemptions uint64
	// Contained-failure counters.
	GuestFaults   uint64
	HostPanics    uint64
	WatchdogTrips uint64
	// RNG is the scheduler PRNG stream position.
	RNG uint64
	// Exited/ExitCode capture program termination state.
	Exited   bool
	ExitCode uint64
	// NextStackTop/NextTLS are the machine's thread-resource cursors.
	NextStackTop uint64
	NextTLS      uint64
	// CacheGen is the DBI translation-cache generation at capture.
	CacheGen uint64
	Threads  []ThreadState
	// Pages is the dirty-page delta since the previous checkpoint.
	Pages []gmem.PageDump
	// Regions is the full permission map (small: heap maps coalesce).
	Regions []gmem.Region
	// Digest is the cheap state hash over registers, PCs and counters —
	// the value the online divergence probe cross-checks (see Journal
	// marks). It intentionally excludes memory: hashing resident pages
	// every checkpoint would dominate; memory fidelity is covered by the
	// dirty-page deltas themselves and by the full-hash fidelity tests.
	Digest uint64
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// mix folds one 64-bit word into an FNV-1a accumulator.
func mix(h, v uint64) uint64 {
	for shift := 0; shift < 64; shift += 8 {
		h = (h ^ (v >> shift & 0xff)) * fnvPrime
	}
	return h
}

// ComputeDigest (re)computes the checkpoint's state digest from its
// scheduler counters and thread states.
func (c *Checkpoint) ComputeDigest() uint64 {
	h := uint64(fnvOffset)
	for _, v := range []uint64{c.Slices, c.Blocks, c.Instrs, c.Switches, c.RNG} {
		h = mix(h, v)
	}
	for _, t := range c.Threads {
		h = mix(h, uint64(t.ID))
		h = mix(h, t.PC)
		h = mix(h, uint64(t.State))
		h = mix(h, t.Instrs)
		for _, r := range t.Regs {
			h = mix(h, r)
		}
		for _, f := range t.CallStack {
			h = mix(h, f.Fn)
			h = mix(h, f.CallSite)
			h = mix(h, f.SP)
		}
	}
	return h
}

// Encode serializes the checkpoint (gob).
func (c *Checkpoint) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		return nil, fmt.Errorf("snapshot: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeCheckpoint deserializes a checkpoint produced by Encode.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	var c Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&c); err != nil {
		return nil, fmt.Errorf("snapshot: decode: %w", err)
	}
	return &c, nil
}

// Diff compares two checkpoints' guest-visible state (everything except the
// page deltas, whose partitioning depends on checkpoint cadence) and returns
// a description of the first mismatch, or nil when the states agree. Used by
// the supervisor to verify a replayed reconstruction against the recorded
// checkpoint before resuming.
func (c *Checkpoint) Diff(o *Checkpoint) error {
	if c.Slices != o.Slices || c.Blocks != o.Blocks || c.Instrs != o.Instrs {
		return fmt.Errorf("snapshot: position mismatch: slices/blocks/instrs %d/%d/%d vs %d/%d/%d",
			c.Slices, c.Blocks, c.Instrs, o.Slices, o.Blocks, o.Instrs)
	}
	if c.RNG != o.RNG {
		return fmt.Errorf("snapshot: PRNG stream diverged at slice %d", c.Slices)
	}
	if len(c.Threads) != len(o.Threads) {
		return fmt.Errorf("snapshot: thread count %d vs %d", len(c.Threads), len(o.Threads))
	}
	for i := range c.Threads {
		a, b := &c.Threads[i], &o.Threads[i]
		if a.PC != b.PC || a.State != b.State || a.Regs != b.Regs {
			return fmt.Errorf("snapshot: thread %d state diverged at slice %d (pc %#x vs %#x)",
				a.ID, c.Slices, a.PC, b.PC)
		}
	}
	if c.Digest != o.Digest {
		return fmt.Errorf("snapshot: digest mismatch at slice %d", c.Slices)
	}
	return nil
}

// Manager retains a bounded history of checkpoints plus a base page image.
// Dropping an old checkpoint folds its page delta into the base, so the
// manager can always reconstruct full memory at any retained checkpoint
// while holding each page at most twice (base + newest delta containing it).
type Manager struct {
	// Retain bounds the retained checkpoint history (default 4).
	Retain int

	base        map[uint64][]byte
	baseRegions []gmem.Region
	ckpts       []*Checkpoint

	// Taken counts checkpoints ever added; Dropped counts those folded
	// into the base. PageBytes approximates retained page payload.
	Taken     uint64
	Dropped   uint64
	PageBytes uint64
}

// NewManager creates a manager retaining up to retain checkpoints
// (retain <= 0 selects the default of 4).
func NewManager(retain int) *Manager {
	if retain <= 0 {
		retain = 4
	}
	return &Manager{Retain: retain, base: make(map[uint64][]byte)}
}

// SetBase installs the boot-time full page image (gmem.AllPages) and
// permission map: the state checkpoint zero deltas build on.
func (mgr *Manager) SetBase(pages []gmem.PageDump, regions []gmem.Region) {
	for _, pd := range pages {
		mgr.base[pd.Idx] = append([]byte(nil), pd.Data...)
		mgr.PageBytes += uint64(len(pd.Data))
	}
	mgr.baseRegions = append([]gmem.Region(nil), regions...)
}

// Add appends a checkpoint, folding the oldest into the base when the
// retention bound is exceeded.
func (mgr *Manager) Add(cp *Checkpoint) {
	mgr.Taken++
	for _, pd := range cp.Pages {
		mgr.PageBytes += uint64(len(pd.Data))
	}
	mgr.ckpts = append(mgr.ckpts, cp)
	for len(mgr.ckpts) > mgr.Retain {
		old := mgr.ckpts[0]
		mgr.ckpts = mgr.ckpts[1:]
		for _, pd := range old.Pages {
			if prev, ok := mgr.base[pd.Idx]; ok {
				mgr.PageBytes -= uint64(len(prev))
			}
			mgr.base[pd.Idx] = pd.Data
		}
		mgr.baseRegions = old.Regions
		mgr.Dropped++
	}
}

// Latest returns the newest retained checkpoint, or nil.
func (mgr *Manager) Latest() *Checkpoint {
	if len(mgr.ckpts) == 0 {
		return nil
	}
	return mgr.ckpts[len(mgr.ckpts)-1]
}

// Checkpoints returns the retained history, oldest first.
func (mgr *Manager) Checkpoints() []*Checkpoint { return mgr.ckpts }

// PageAt returns the content of page idx as of checkpoint cp (which must be
// retained): the newest dump at or before cp, falling back to the base
// image. ok=false means the page was untouched at cp (all zero).
func (mgr *Manager) PageAt(cp *Checkpoint, idx uint64) (data []byte, ok bool) {
	pos := -1
	for i, c := range mgr.ckpts {
		if c == cp {
			pos = i
			break
		}
	}
	if pos < 0 {
		return nil, false
	}
	for i := pos; i >= 0; i-- {
		for _, pd := range mgr.ckpts[i].Pages {
			if pd.Idx == idx {
				return pd.Data, true
			}
		}
	}
	d, ok := mgr.base[idx]
	return d, ok
}

// PagesAt composes the full page image at a retained checkpoint: base plus
// every delta up to and including cp. The result maps page index to content.
func (mgr *Manager) PagesAt(cp *Checkpoint) map[uint64][]byte {
	out := make(map[uint64][]byte, len(mgr.base))
	for idx, d := range mgr.base {
		out[idx] = d
	}
	for _, c := range mgr.ckpts {
		for _, pd := range c.Pages {
			out[pd.Idx] = pd.Data
		}
		if c == cp {
			break
		}
	}
	return out
}
