package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Inc()
	c.Add(4)
	if got := r.Counter("x_total").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("mem_bytes")
	g.Set(12.5)
	if got := r.Gauge("mem_bytes").Value(); got != 12.5 {
		t.Fatalf("gauge = %g", got)
	}
}

func TestNilReceiversAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(1)
	var h *Histogram
	h.Observe(1)
	var reg *Registry
	if reg.Counter("x") != nil {
		t.Fatal("nil registry returned a counter")
	}
	reg.Counter("x").Inc() // must not panic
	snap := reg.Snapshot()
	if len(snap.Counters) != 0 {
		t.Fatal("nil registry snapshot non-empty")
	}
	var tr *Tracer
	tr.Emit(Event{})
	tr.Instant(0, 0, "c", "n", nil)
	if tr.Events() != 0 || tr.Close() != nil {
		t.Fatal("nil tracer misbehaved")
	}
	var p *Profiler
	p.Sample(0x1000)
	if p.Total() != 0 {
		t.Fatal("nil profiler sampled")
	}
}

func TestLabelsCanonicalOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("blocks_total", "thread", "0", "kind", "user").Add(7)
	// Same labels in a different order resolve to the same counter.
	if got := r.Counter("blocks_total", "kind", "user", "thread", "0").Value(); got != 7 {
		t.Fatalf("label order changed identity: %d", got)
	}
	snap := r.Snapshot()
	want := `blocks_total{kind="user",thread="0"}`
	if _, ok := snap.Counters[want]; !ok {
		t.Fatalf("canonical key missing, have %v", snap.Counters)
	}
	if snap.Counter("blocks_total", "thread", "0", "kind", "user") != 7 {
		t.Fatal("snapshot lookup by labels failed")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("stmts")
	for _, v := range []float64{1, 2, 3, 100, 1e9} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	snap := r.Snapshot()
	hs := snap.Histograms[Key("stmts")]
	if hs.Count != 5 || hs.Sum != 1e9+106 {
		t.Fatalf("snapshot hist = %+v", hs)
	}
	var n uint64
	for _, b := range hs.Buckets {
		n += b
	}
	if n != 5 {
		t.Fatalf("bucket sum = %d", n)
	}
	// The overflow bucket caught the 1e9 observation.
	if hs.Buckets[len(hs.Buckets)-1] != 1 {
		t.Fatalf("overflow bucket = %d", hs.Buckets[len(hs.Buckets)-1])
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		r.Counter("b_total").Add(2)
		r.Counter("a_total").Add(1)
		r.Gauge("g").Set(3)
		r.Histogram("h").Observe(4)
		var buf bytes.Buffer
		if err := r.Snapshot().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("snapshots differ:\n%s\n%s", a, b)
	}
	var decoded Snapshot
	if err := json.Unmarshal([]byte(a), &decoded); err != nil {
		t.Fatalf("snapshot not valid JSON: %v", err)
	}
	if decoded.Counters["a_total"] != 1 || decoded.Counters["b_total"] != 2 {
		t.Fatalf("roundtrip lost counters: %v", decoded.Counters)
	}
}

func TestSnapshotWriteTextSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total").Add(1)
	r.Counter("aa_total").Add(2)
	r.Gauge("mm").Set(3)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "aa_total") ||
		!strings.HasPrefix(lines[1], "mm") || !strings.HasPrefix(lines[2], "zz_total") {
		t.Fatalf("text dump not sorted: %q", buf.String())
	}
}
