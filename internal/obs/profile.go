package obs

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/guest"
)

// Profiler samples the guest program counter on the block clock: every
// Interval-th dispatched block contributes one sample at its entry PC,
// weighted by the block's retired guest instruction count. The weighting is
// what makes profiles comparable across superblock extension: an extended
// block retires the instructions of every basic block it fused, so sampling
// it at weight 1 would understate exactly the code hot enough to get
// extended. Because the block clock is deterministic, the profile is exactly
// reproducible from (program, seed). Samples resolve through the image's
// symbol and line tables into a flat and a per-symbol profile — where
// instrumented execution time goes, the measurement behind every "make the
// hot path faster" decision.
type Profiler struct {
	// Interval is the sampling period in blocks (1 = every block).
	Interval uint64

	tick    uint64
	samples map[uint64]uint64 // block entry PC -> sample count
	total   uint64
}

// NewProfiler creates a profiler sampling every interval blocks (minimum 1).
func NewProfiler(interval uint64) *Profiler {
	if interval == 0 {
		interval = 1
	}
	return &Profiler{Interval: interval, samples: make(map[uint64]uint64)}
}

// Sample ticks the block clock with the PC of a dispatched block, at unit
// weight. A nil receiver is a no-op so dispatch loops can call through an
// unconditional pointer.
func (p *Profiler) Sample(pc uint64) { p.SampleW(pc, 1) }

// SampleW ticks the block clock with the PC of a dispatched block that
// retired weight guest instructions. The clock advances once per block
// regardless of weight; when the interval fires, the sample is credited
// weight counts (a zero-weight fire — e.g. a thread-exit dispatch that
// retires nothing — advances the clock without recording).
func (p *Profiler) SampleW(pc, weight uint64) {
	if p == nil {
		return
	}
	p.tick++
	if p.tick >= p.Interval {
		p.tick = 0
		if weight > 0 {
			p.samples[pc] += weight
			p.total += weight
		}
	}
}

// Total returns the number of samples taken.
func (p *Profiler) Total() uint64 {
	if p == nil {
		return 0
	}
	return p.total
}

// Each visits every (block entry PC, weighted count) sample pair in
// ascending PC order — the deterministic iteration recording backends use
// to persist the profile.
func (p *Profiler) Each(fn func(pc, count uint64)) {
	if p == nil {
		return
	}
	pcs := make([]uint64, 0, len(p.samples))
	for pc := range p.samples {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	for _, pc := range pcs {
		fn(pc, p.samples[pc])
	}
}

// BySymbol aggregates the samples per enclosing symbol — the granularity at
// which extended and unextended profiles are comparable (extension fuses
// jumps within a function but never crosses call or return edges).
func (p *Profiler) BySymbol(im *guest.Image) map[string]uint64 {
	out := make(map[string]uint64)
	if p == nil {
		return out
	}
	for pc, n := range p.samples {
		name := "?"
		if im != nil {
			if sym := im.SymbolFor(pc); sym != nil {
				name = sym.Name
			}
		}
		out[name] += n
	}
	return out
}

// flatEntry is one resolved PC row of the profile.
type flatEntry struct {
	pc    uint64
	count uint64
	sym   string
	file  string
	line  int
}

// Report writes the per-symbol and flat profiles, resolving sample PCs
// through the image's symbol and line tables. topN bounds the flat section
// (0 = 20).
func (p *Profiler) Report(w io.Writer, im *guest.Image, topN int) error {
	if p == nil {
		_, err := fmt.Fprintln(w, "(profiler disabled)")
		return err
	}
	if topN <= 0 {
		topN = 20
	}
	flat := make([]flatEntry, 0, len(p.samples))
	bySym := make(map[string]uint64)
	for pc, n := range p.samples {
		e := flatEntry{pc: pc, count: n, sym: "?"}
		if im != nil {
			if sym := im.SymbolFor(pc); sym != nil {
				e.sym = sym.Name
			}
			e.file, e.line = im.LineFor(pc)
		}
		bySym[e.sym] += n
		flat = append(flat, e)
	}
	// Deterministic ordering: count desc, then address.
	sort.Slice(flat, func(i, j int) bool {
		if flat[i].count != flat[j].count {
			return flat[i].count > flat[j].count
		}
		return flat[i].pc < flat[j].pc
	})
	type symRow struct {
		name  string
		count uint64
	}
	syms := make([]symRow, 0, len(bySym))
	for name, n := range bySym {
		syms = append(syms, symRow{name, n})
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].count != syms[j].count {
			return syms[i].count > syms[j].count
		}
		return syms[i].name < syms[j].name
	})

	total := p.total
	if total == 0 {
		total = 1
	}
	if _, err := fmt.Fprintf(w, "guest-PC profile: %d samples, interval %d blocks\n\n", p.total, p.Interval); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "per-symbol:\n%10s %7s  %s\n", "SAMPLES", "%", "SYMBOL"); err != nil {
		return err
	}
	for _, s := range syms {
		if _, err := fmt.Fprintf(w, "%10d %6.2f%%  %s\n", s.count, 100*float64(s.count)/float64(total), s.name); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "\nflat (top %d):\n%10s %7s  %-10s %s\n", topN, "SAMPLES", "%", "PC", "LOCATION"); err != nil {
		return err
	}
	for i, e := range flat {
		if i >= topN {
			break
		}
		loc := e.sym
		if e.file != "" {
			loc = fmt.Sprintf("%s (%s:%d)", e.sym, e.file, e.line)
		}
		if _, err := fmt.Fprintf(w, "%10d %6.2f%%  0x%-8x %s\n", e.count, 100*float64(e.count)/float64(total), e.pc, loc); err != nil {
			return err
		}
	}
	return nil
}
