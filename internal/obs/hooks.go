package obs

// Hooks bundles the observability attachments a subsystem may carry. The
// pointer itself is the master switch: a nil *Hooks on vm.Machine, dbi.Core
// or omp.Runtime means observability is off and hook sites reduce to one
// nil comparison. Individual members may also be nil (e.g. tracing without
// profiling).
type Hooks struct {
	Metrics *Registry
	Tracer  *Tracer
	Prof    *Profiler
}

// Tracing reports whether h carries an active tracer.
func (h *Hooks) Tracing() bool { return h != nil && h.Tracer.Enabled() }

// MetricSource is implemented by tools (and other components) that publish
// their internal statistics into a registry at capture time — the mechanism
// by which per-tool stats (instrumented access counts, analysis work) join
// the unified snapshot without the registry layer knowing tool types.
type MetricSource interface {
	PublishMetrics(reg *Registry)
}
