package obs

// Phase classifies a trace event, mirroring the Chrome trace_event `ph`
// field: duration Begin/End pairs, Instant markers, and Diagnostic events
// (anomalies the tracer itself flags, rendered as instants).
type Phase byte

// Phases.
const (
	PhaseBegin   Phase = 'B'
	PhaseEnd     Phase = 'E'
	PhaseInstant Phase = 'i'
)

// Event is one structured trace record. TS is the machine's block clock
// (deterministic virtual time); Thread is the guest thread the event is
// attributed to.
type Event struct {
	TS     uint64
	Thread int
	Phase  Phase
	// Cat groups events by subsystem: "dbi", "sched", "omp", "core", "diag".
	Cat  string
	Name string
	// Args carries event payload; values should be JSON-encodable.
	Args map[string]any
}

// Sink consumes a stream of events.
type Sink interface {
	Write(ev Event)
	// Close flushes and finalizes the sink's output.
	Close() error
}

// SinkMetrics is implemented by sinks that account for trace loss or other
// recording statistics; Tracer.PublishMetrics surfaces them as counters so
// dropped events show up in -v output instead of disappearing silently.
type SinkMetrics interface {
	SinkMetrics(put func(name string, v uint64))
}

// Tracer fans events out to its sinks. A nil *Tracer is valid and drops
// everything, so subsystems can emit unconditionally through a possibly-nil
// pointer. BlockEvents gates the very-high-frequency per-block dispatch
// events (off by default even when tracing).
type Tracer struct {
	sinks []Sink
	// BlockEvents enables one instant event per dispatched basic block.
	BlockEvents bool

	events uint64
	diags  uint64
}

// NewTracer creates a tracer writing to the given sinks.
func NewTracer(sinks ...Sink) *Tracer {
	return &Tracer{sinks: sinks}
}

// Enabled reports whether the tracer exists and has at least one sink.
func (tr *Tracer) Enabled() bool { return tr != nil && len(tr.sinks) > 0 }

// Emit delivers an event to every sink.
func (tr *Tracer) Emit(ev Event) {
	if tr == nil {
		return
	}
	tr.events++
	for _, s := range tr.sinks {
		s.Write(ev)
	}
}

// Begin emits a duration-begin event.
func (tr *Tracer) Begin(ts uint64, thread int, cat, name string, args map[string]any) {
	tr.Emit(Event{TS: ts, Thread: thread, Phase: PhaseBegin, Cat: cat, Name: name, Args: args})
}

// End emits a duration-end event.
func (tr *Tracer) End(ts uint64, thread int, cat, name string, args map[string]any) {
	tr.Emit(Event{TS: ts, Thread: thread, Phase: PhaseEnd, Cat: cat, Name: name, Args: args})
}

// Instant emits an instant event.
func (tr *Tracer) Instant(ts uint64, thread int, cat, name string, args map[string]any) {
	tr.Emit(Event{TS: ts, Thread: thread, Phase: PhaseInstant, Cat: cat, Name: name, Args: args})
}

// Diagnostic emits an anomaly event under the "diag" category and counts it.
// Consumers (tests, the CLI) can assert Diagnostics() == 0 on clean runs.
func (tr *Tracer) Diagnostic(ts uint64, thread int, name string, args map[string]any) {
	if tr == nil {
		return
	}
	tr.diags++
	tr.Emit(Event{TS: ts, Thread: thread, Phase: PhaseInstant, Cat: "diag", Name: name, Args: args})
}

// Events returns the number of events emitted.
func (tr *Tracer) Events() uint64 {
	if tr == nil {
		return 0
	}
	return tr.events
}

// Diagnostics returns the number of diagnostic events emitted.
func (tr *Tracer) Diagnostics() uint64 {
	if tr == nil {
		return 0
	}
	return tr.diags
}

// PublishMetrics copies tracer and sink accounting (events emitted, ring
// drops, store batch/drop counts) into the registry. Call at capture time.
func (tr *Tracer) PublishMetrics(reg *Registry) {
	if tr == nil || reg == nil {
		return
	}
	reg.Counter("trace_events_total").Set(tr.events)
	reg.Counter("trace_diagnostics_total").Set(tr.diags)
	for _, s := range tr.sinks {
		if sm, ok := s.(SinkMetrics); ok {
			sm.SinkMetrics(func(name string, v uint64) {
				reg.Counter(name).Set(v)
			})
		}
	}
}

// Close closes every sink, returning the first error.
func (tr *Tracer) Close() error {
	if tr == nil {
		return nil
	}
	var first error
	for _, s := range tr.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
