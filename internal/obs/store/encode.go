package store

// Column encoding primitives: unsigned/zigzag varints, length-prefixed
// strings, and the per-run string dictionary. Each column is one contiguous
// varint stream; timestamp-like columns are delta-encoded against the
// previous row (rows are sorted by the delta key before encoding), so
// monotone clocks cost one or two bytes per row.

import (
	"encoding/binary"
	"fmt"
)

// enc is an append-only varint stream.
type enc struct {
	buf []byte
}

func (e *enc) u64(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *enc) i64(v int64)  { e.buf = binary.AppendVarint(e.buf, v) }

func (e *enc) str(s string) {
	e.u64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// bytesSection appends a length-prefixed blob (a column or a JSON section),
// so readers can skip sections they do not need.
func (e *enc) bytesSection(b []byte) {
	e.u64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// dec is the matching bounds-checked reader. The first malformed read
// latches err; subsequent reads return zero values.
type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("store: decode: "+format, args...)
	}
}

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad varint at %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) str() string {
	n := d.u64()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail("string length %d overruns buffer at %d", n, d.off)
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// bytesSection reads a length-prefixed blob as a sub-decoder.
func (d *dec) bytesSection() *dec {
	n := d.u64()
	if d.err != nil {
		return &dec{err: d.err}
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail("section length %d overruns buffer at %d", n, d.off)
		return &dec{err: d.err}
	}
	sub := &dec{buf: d.buf[d.off : d.off+int(n)]}
	d.off += int(n)
	return sub
}

// dict interns strings for one run block. Index 0 is always the empty
// string, so zero-valued columns decode to "".
type dict struct {
	idx  map[string]uint32
	strs []string
}

func newDict() *dict {
	return &dict{idx: map[string]uint32{"": 0}, strs: []string{""}}
}

func (d *dict) id(s string) uint32 {
	if i, ok := d.idx[s]; ok {
		return i
	}
	i := uint32(len(d.strs))
	d.idx[s] = i
	d.strs = append(d.strs, s)
	return i
}

func (d *dict) encode(e *enc) {
	e.u64(uint64(len(d.strs)))
	for _, s := range d.strs {
		e.str(s)
	}
}

func decodeDict(d *dec) []string {
	n := d.u64()
	if d.err != nil || n > uint64(len(d.buf)) {
		d.fail("dictionary count %d implausible", n)
		return nil
	}
	strs := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		strs = append(strs, d.str())
	}
	return strs
}

// dictStr resolves a dictionary index defensively.
func dictStr(strs []string, i uint64) string {
	if i < uint64(len(strs)) {
		return strs[i]
	}
	return ""
}

// zigzag delta helpers for non-monotone uint64 sequences (span starts,
// sample PCs are sorted so deltas are non-negative, but thread ids and the
// like go through i64 directly).
func deltaEnc(e *enc, prev, v uint64) uint64 {
	e.i64(int64(v) - int64(prev))
	return v
}

func deltaDec(d *dec, prev uint64) uint64 {
	return uint64(int64(prev) + d.i64())
}
