package store

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// writeRun records one synthetic run with a deterministic shape derived from
// the seed, so tests can regenerate the same store byte-for-byte.
func writeRun(t *testing.T, w *Writer, seed uint64) RunHeader {
	t.Helper()
	rw := w.Begin(RunHeader{
		Prog: "task.c", Tool: "taskgrind", Engine: "compiled",
		Delivery: "batched", Seed: seed, Threads: 4,
	})
	base := seed * 100
	for th := 0; th < 4; th++ {
		rw.Span(th, "implicit", fmt.Sprintf("task#%d", th), "micro",
			0x1000, base+uint64(th), base+uint64(th)+50)
		rw.Span(th, "task", fmt.Sprintf("task#%d", 10+th), "task_a",
			0x2000, base+uint64(th)+5, base+uint64(th)+15)
		rw.Instant(base+uint64(th)+7, th, "sched", "switch", uint64(th))
	}
	rw.Instant(base+3, 1, "omp", "steal", 42)
	rw.Sample(0x1000, "micro", 80)
	rw.Sample(0x2000, "task_a", 20)
	rw.AddRace(RaceRow{SegA: "task.c:8", SegB: "task.c:11",
		ThreadA: 0, ThreadB: 2, Kind: "w/w", Addr: 0x8000000, Bytes: 4, Region: "heap"})
	rw.SetCounters(map[string]uint64{"vm_blocks_executed_total": 10 * seed})
	rw.SetWork(100*seed, 10*seed, 12345)
	rw.SetReplayToken("tg1:test")
	rw.SetResult(VerdictOK, 1, "")
	if err := rw.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	return rw.Header()
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	h := writeRun(t, w, 1)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if h.ID != 1 {
		t.Fatalf("run ID = %d, want 1", h.ID)
	}

	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Recovered() != 0 {
		t.Fatalf("recovered = %d, want 0", r.Recovered())
	}
	runs, err := r.Runs(Q{})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(runs))
	}
	got := runs[0]
	if got.Prog != "task.c" || got.Tool != "taskgrind" || got.Seed != 1 ||
		got.Verdict != VerdictOK || got.Reports != 1 ||
		got.ReplayToken != "tg1:test" || got.Instrs != 100 {
		t.Fatalf("header round-trip mismatch: %+v", got)
	}
	if len(got.Races) != 1 || got.Races[0].SegA != "task.c:8" {
		t.Fatalf("races round-trip mismatch: %+v", got.Races)
	}
	if got.Counters["vm_blocks_executed_total"] != 10 {
		t.Fatalf("counters round-trip mismatch: %v", got.Counters)
	}

	spans, err := r.Spans(Q{})
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 8 {
		t.Fatalf("spans = %d, want 8", len(spans))
	}
	// Spans come back sorted by start time.
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Fatalf("spans not sorted at %d: %d < %d", i, spans[i].Start, spans[i-1].Start)
		}
	}
	ins, err := r.Instants(Q{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 5 {
		t.Fatalf("instants = %d, want 5", len(ins))
	}
	samples, err := r.Samples(Q{})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 || samples[0].PC != 0x1000 || samples[0].Weight != 80 {
		t.Fatalf("samples round-trip mismatch: %+v", samples)
	}
}

func TestGoldenSegment(t *testing.T) {
	// The encoded segment bytes for a fixed input are a format contract:
	// if this golden changes, old stores need a reader migration.
	dir := t.TempDir()
	w, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeRun(t, w, 1)
	writeRun(t, w, 2)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "seg-00001.tgseg"))
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden.tgseg")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if string(got) != string(want) {
		t.Fatalf("segment bytes differ from golden (%d vs %d bytes); run with -update if the format change is intentional",
			len(got), len(want))
	}
	// And the golden segment must still decode.
	r, err := OpenReader(filepath.Dir(golden))
	if err == nil {
		_ = r
	}
}

func TestGoldenStillDecodes(t *testing.T) {
	// Decode the checked-in golden segment through a copy (OpenReader globs
	// the directory, and testdata may grow other files).
	src, err := os.ReadFile(filepath.Join("testdata", "golden.tgseg"))
	if err != nil {
		t.Skipf("no golden yet: %v", err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "seg-00001.tgseg"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	runs, err := r.Runs(Q{})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0].Seed != 1 || runs[1].Seed != 2 {
		t.Fatalf("golden decode mismatch: %+v", runs)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	w.MaxSegBytes = 1024 // force rotation every couple of runs
	for seed := uint64(1); seed <= 10; seed++ {
		writeRun(t, w, seed)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.tgseg"))
	if len(segs) < 2 {
		t.Fatalf("expected rotation, got %d segment(s)", len(segs))
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	runs, err := r.Runs(Q{})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 10 {
		t.Fatalf("runs = %d, want 10", len(runs))
	}
}

func TestAppendSession(t *testing.T) {
	dir := t.TempDir()
	w1, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeRun(t, w1, 1)
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}

	// A second session appends a fresh segment and continues run IDs.
	w2, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	h := writeRun(t, w2, 2)
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if h.ID != 2 {
		t.Fatalf("second-session run ID = %d, want 2", h.ID)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	runs, err := r.Runs(Q{})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0].ID != 1 || runs[1].ID != 2 {
		t.Fatalf("append session runs mismatch: %+v", runs)
	}
}

func TestTornSegmentRecovery(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeRun(t, w, 1)
	writeRun(t, w, 2)
	writeRun(t, w, 3)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "seg-00001.tgseg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	// Tear the file mid-way through the last block: the footer is gone and
	// the final frame is torn. Recovery must keep runs 1 and 2.
	metas, ok := footerOf(data)
	if !ok || len(metas) != 3 {
		t.Fatalf("test setup: footer metas = %v", metas)
	}
	cut := metas[2].Off + metas[2].Len/2
	if err := os.WriteFile(seg, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Recovered() != 1 {
		t.Fatalf("recovered = %d, want 1", r.Recovered())
	}
	runs, err := r.Runs(Q{})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0].Seed != 1 || runs[1].Seed != 2 {
		t.Fatalf("recovered runs mismatch: %+v", runs)
	}
	// Event queries against a recovered segment must still work (recovered
	// blocks carry no range index, so they are decoded, never pruned).
	spans, err := r.Spans(Q{Kind: "task"})
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 8 { // 4 task spans per surviving run
		t.Fatalf("recovered spans = %d, want 8", len(spans))
	}

	// A new writer session must append alongside, not touch, the torn file.
	w2, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	h := writeRun(t, w2, 9)
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if h.ID != 3 { // max recoverable run ID was 2
		t.Fatalf("post-recovery run ID = %d, want 3", h.ID)
	}
	r2, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	runs2, err := r2.Runs(Q{})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs2) != 3 {
		t.Fatalf("post-recovery runs = %d, want 3", len(runs2))
	}
}

func TestConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rw := w.Begin(RunHeader{Prog: "task.c", Tool: "taskgrind", Seed: uint64(i + 1)})
			for j := 0; j < 5000; j++ {
				rw.Span(i%4, "task", "t", "sym", uint64(j), uint64(j), uint64(j+1))
			}
			rw.SetResult(VerdictOK, i, "")
			errs[i] = rw.Finish()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	runs, err := r.Runs(Q{})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != n {
		t.Fatalf("runs = %d, want %d", len(runs), n)
	}
	seen := map[uint64]bool{}
	seeds := map[uint64]bool{}
	for _, h := range runs {
		if seen[h.ID] {
			t.Fatalf("duplicate run ID %d", h.ID)
		}
		seen[h.ID] = true
		seeds[h.Seed] = true
	}
	if len(seeds) != n {
		t.Fatalf("seeds = %d, want %d", len(seeds), n)
	}
	for i := uint64(1); i <= n; i++ {
		sp, err := r.Spans(Q{Seed: &i})
		if err != nil {
			t.Fatal(err)
		}
		if len(sp) != 5000 {
			t.Fatalf("seed %d spans = %d, want 5000", i, len(sp))
		}
	}
}

func TestPruningEquivalence(t *testing.T) {
	// Filtered queries with the footer index must equal full-scan-then-filter.
	dir := t.TempDir()
	w, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	w.MaxSegBytes = 1024
	for seed := uint64(1); seed <= 12; seed++ {
		writeRun(t, w, seed) // disjoint [seed*100, seed*100+53] time ranges
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	three := uint64(3)
	th2 := 2
	queries := []struct {
		q      Q
		prunes bool // the footer index can rule out at least one block
	}{
		{Q{}, false},
		{Q{Seed: &three}, true},
		{Q{MinTS: 500, MaxTS: 700}, true},
		{Q{Thread: &th2}, false},       // every run touches threads 0..3
		{Q{Sym: "task_a"}, false},      // every run records task_a
		{Q{Kind: "task"}, false},       // kinds are in every block's dict
		{Q{Kind: "sched"}, false},
		{Q{Sym: "no-such-symbol"}, true},
		{Q{MinTS: 1e9}, true},
		{Q{Seed: &three, Kind: "implicit", MinTS: 300, MaxTS: 310}, true},
	}
	for qi, tc := range queries {
		q := tc.q
		pruned, err := OpenReader(dir)
		if err != nil {
			t.Fatal(err)
		}
		full, err := OpenReader(dir)
		if err != nil {
			t.Fatal(err)
		}
		full.NoPrune = true

		ps, err1 := pruned.Spans(q)
		fs, err2 := full.Spans(q)
		if err1 != nil || err2 != nil {
			t.Fatalf("q%d spans: %v / %v", qi, err1, err2)
		}
		if !reflect.DeepEqual(ps, fs) {
			t.Fatalf("q%d spans diverge: pruned %d rows, full %d rows", qi, len(ps), len(fs))
		}
		pi, err1 := pruned.Instants(q)
		fi, err2 := full.Instants(q)
		if err1 != nil || err2 != nil {
			t.Fatalf("q%d instants: %v / %v", qi, err1, err2)
		}
		if !reflect.DeepEqual(pi, fi) {
			t.Fatalf("q%d instants diverge: pruned %d, full %d", qi, len(pi), len(fi))
		}
		pr, err1 := pruned.Runs(q)
		fr, err2 := full.Runs(q)
		if err1 != nil || err2 != nil {
			t.Fatalf("q%d runs: %v / %v", qi, err1, err2)
		}
		if !reflect.DeepEqual(pr, fr) {
			t.Fatalf("q%d runs diverge: pruned %d, full %d", qi, len(pr), len(fr))
		}
		if tc.prunes && pruned.PrunedBlocks == 0 {
			t.Errorf("q%d (%+v): expected the footer index to prune at least one block", qi, q)
		}
	}
}

func TestMaxEventsDrop(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	rw := w.Begin(RunHeader{Prog: "p", Tool: "t", Seed: 1})
	rw.SetMaxEvents(100)
	for i := 0; i < 250; i++ {
		rw.Instant(uint64(i), 0, "k", "n", 0)
	}
	if err := rw.Finish(); err != nil {
		t.Fatal(err)
	}
	_, dropped := rw.Stats()
	if dropped != 150 {
		t.Fatalf("dropped = %d, want 150", dropped)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, wDropped, _ := w.Stats()
	if wDropped != 150 {
		t.Fatalf("writer dropped = %d, want 150", wDropped)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := r.Instants(Q{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 100 {
		t.Fatalf("retained instants = %d, want 100", len(ins))
	}
}

func TestTopSymbolsAndAggregate(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeRun(t, w, 1)
	// One failed run for the verdict matrix.
	rw := w.Begin(RunHeader{Prog: "task.c", Tool: "taskgrind", Seed: 2})
	rw.SetResult("panic", 0, "boom")
	if err := rw.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	top, err := TopSymbols(r, Q{}, "samples", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 || top[0].Sym != "micro" || top[0].Weight != 80 {
		t.Fatalf("top samples mismatch: %+v", top)
	}
	bySpan, err := TopSymbols(r, Q{}, "span", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(bySpan) != 1 || bySpan[0].Sym != "micro" || bySpan[0].SpanTime != 200 {
		t.Fatalf("top span mismatch: %+v", bySpan)
	}

	joins, err := JoinRaces(r, Q{})
	if err != nil {
		t.Fatal(err)
	}
	if len(joins) != 1 || joins[0].Race.Kind != "w/w" {
		t.Fatalf("race join mismatch: %+v", joins)
	}
	// Thread 0 and 2 each executed one implicit + one task span.
	if len(joins[0].SpansA) != 2 || len(joins[0].SpansB) != 2 {
		t.Fatalf("race join spans: a=%d b=%d, want 2/2", len(joins[0].SpansA), len(joins[0].SpansB))
	}

	runs, err := r.Runs(Q{})
	if err != nil {
		t.Fatal(err)
	}
	agg := Aggregate(runs)
	if agg.Runs != 2 || agg.Verdicts[VerdictOK] != 1 || agg.Verdicts["panic"] != 1 {
		t.Fatalf("aggregate mismatch: %+v", agg)
	}
	if agg.Reports[1] != 1 {
		t.Fatalf("report histogram mismatch: %+v", agg.Reports)
	}

	// Verdict-filtered header query.
	okRuns, err := r.Runs(Q{Verdict: VerdictOK})
	if err != nil {
		t.Fatal(err)
	}
	if len(okRuns) != 1 || okRuns[0].Seed != 1 {
		t.Fatalf("verdict filter mismatch: %+v", okRuns)
	}
}

func TestPruningCounters(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 4; seed++ {
		writeRun(t, w, seed)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	two := uint64(2)
	if _, err := r.Spans(Q{Seed: &two}); err != nil {
		t.Fatal(err)
	}
	if r.ScannedBlocks != 1 || r.PrunedBlocks != 3 {
		t.Fatalf("scanned=%d pruned=%d, want 1/3", r.ScannedBlocks, r.PrunedBlocks)
	}
}

// TestStableEncoding pins that two identical recordings produce identical
// bytes — the property the CLI golden tests lean on.
func TestStableEncoding(t *testing.T) {
	record := func() []byte {
		dir := t.TempDir()
		w, err := Create(dir)
		if err != nil {
			t.Fatal(err)
		}
		writeRun(t, w, 7)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir, "seg-00001.tgseg"))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := record(), record()
	if string(a) != string(b) {
		t.Fatal("identical recordings produced different bytes")
	}
}
