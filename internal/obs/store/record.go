// Package store is the queryable recording backend of the observability
// layer: an append-only, columnar run store holding many analysis runs —
// spans (task/parallel/translation intervals on the block clock), instants
// (steals, preemptions, faults, injections), and counter/profile samples —
// plus a per-run header carrying the run's configuration and verdict.
//
// The design follows the batched, indexed recorder idiom of akita's
// datarecording (SQLite memory-tracer schema: structured tables, proper
// indexing, batch writes), realized without cgo or SQLite: one store is a
// directory of segment files; each run is one CRC-framed block of
// dictionary- and varint-delta-encoded columns; each segment carries a
// footer index (time range, threads, symbols, run identity per block) that
// lets the reader skip whole blocks on filtered queries. Because every
// record's clock is the machine's deterministic block counter, two runs of
// the same seed produce byte-identical blocks — the property the golden
// query tests pin.
package store

import "repro/internal/report"

// Verdict values for RunHeader.Verdict. A successful run records VerdictOK;
// failed runs record their harness failure taxonomy (fault, panic, timeout,
// deadlock, divergence, error).
const VerdictOK = "ok"

// RunHeader identifies and summarizes one recorded run. It is stored as a
// JSON section inside the run's block (headers are small; the bulk event
// data is columnar) and echoed into the segment footer for pruning.
type RunHeader struct {
	// ID is the store-assigned run identity (unique within a store,
	// monotonically increasing across append sessions).
	ID uint64 `json:"id"`
	// Prog/Tool/Engine/Delivery/Seed/Threads are the run configuration —
	// the same fields a replay token encodes.
	Prog     string `json:"prog,omitempty"`
	Tool     string `json:"tool,omitempty"`
	Engine   string `json:"engine,omitempty"`
	Delivery string `json:"delivery,omitempty"`
	Seed     uint64 `json:"seed,omitempty"`
	Threads  int    `json:"threads,omitempty"`
	// Verdict is VerdictOK or the failure taxonomy kind.
	Verdict string `json:"verdict"`
	// Reports is the tool's report count (the Table I/II currency).
	Reports int `json:"reports"`
	// Reproduced marks a quarantined crash that replayed bit-identically
	// before being reported (supervised sweeps only).
	Reproduced bool `json:"reproduced,omitempty"`
	// ReplayToken reproduces the run (`taskgrind -replay <token>`).
	ReplayToken string `json:"replay_token,omitempty"`
	// Err is the rendered run error for failed runs.
	Err string `json:"err,omitempty"`
	// WallNanos is host wall time (nondeterministic; excluded from golden
	// comparisons). Instrs/Blocks are the deterministic work metrics.
	WallNanos uint64 `json:"wall_nanos,omitempty"`
	Instrs    uint64 `json:"instrs,omitempty"`
	Blocks    uint64 `json:"blocks,omitempty"`
	// Counters is the final metrics snapshot (counter keys only).
	Counters map[string]uint64 `json:"counters,omitempty"`
	// Races carries the run's race-report rows for cross-run joins.
	Races []RaceRow `json:"races,omitempty"`
}

// RaceRow is one race report, flattened for storage: the segment pair, the
// executing threads, the access kind and the first conflicting range.
type RaceRow struct {
	SegA    string `json:"seg_a"`
	SegB    string `json:"seg_b"`
	ThreadA int    `json:"thread_a"`
	ThreadB int    `json:"thread_b"`
	Kind    string `json:"kind"`
	Addr    uint64 `json:"addr,omitempty"`
	Bytes   uint64 `json:"bytes,omitempty"`
	Region  string `json:"region,omitempty"`
}

// RacesFromSet flattens a determinacy-race report set into storable rows.
func RacesFromSet(s *report.Set) []RaceRow {
	if s == nil || len(s.Races) == 0 {
		return nil
	}
	rows := make([]RaceRow, 0, len(s.Races))
	for _, r := range s.Races {
		row := RaceRow{
			SegA: r.SegA, SegB: r.SegB,
			ThreadA: r.ThreadA, ThreadB: r.ThreadB,
			Kind: r.Kind,
		}
		if len(r.Ranges) > 0 {
			rg := r.Ranges[0]
			row.Addr = rg.Lo
			row.Region = rg.Region.String()
		}
		row.Bytes = r.Bytes()
		rows = append(rows, row)
	}
	return rows
}

// Span is one recorded interval: a task, implicit task, parallel region or
// translation, attributed to a guest thread, a guest PC and a symbol, on the
// block clock.
type Span struct {
	Run    uint64 `json:"run"`
	Thread int    `json:"thread"`
	// Kind is "task", "implicit", "parallel", "translation", or "cat/name"
	// for other Begin/End pairs.
	Kind string `json:"kind"`
	// Name is the human label (e.g. "task.c:8" for a task, the target
	// symbol for a translation).
	Name string `json:"name,omitempty"`
	// Sym is the enclosing guest symbol of PC, when resolvable.
	Sym string `json:"sym,omitempty"`
	PC  uint64 `json:"pc,omitempty"`
	// Start and End are block-clock times.
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
}

// Instant is one recorded point event: a steal, a preemption (scheduler
// switch), a fault-injection firing, a diagnostic.
type Instant struct {
	Run    uint64 `json:"run"`
	TS     uint64 `json:"ts"`
	Thread int    `json:"thread"`
	// Kind is the event category ("sched", "omp", "dbi", "inject", "diag").
	Kind string `json:"kind"`
	Name string `json:"name"`
	// Arg carries the event's primary numeric payload (task id, address),
	// zero when none.
	Arg uint64 `json:"arg,omitempty"`
}

// Sample is one weighted guest-PC profile sample: Weight guest instructions
// retired at blocks starting at PC.
type Sample struct {
	Run    uint64 `json:"run"`
	PC     uint64 `json:"pc"`
	Sym    string `json:"sym,omitempty"`
	Weight uint64 `json:"weight"`
}

// RunData is one fully decoded run block.
type RunData struct {
	Header   RunHeader
	Spans    []Span
	Instants []Instant
	Samples  []Sample
}
