package store

// Query helpers shared by the `taskgrind query` CLI verbs and the tests:
// symbol aggregation over recorded profiles/spans and the race-to-span join.

import "sort"

// TopEntry is one row of a symbol aggregation.
type TopEntry struct {
	Sym string `json:"sym"`
	// Weight is the summed profile sample weight (guest instructions).
	Weight uint64 `json:"weight,omitempty"`
	// SpanTime is the summed span duration in block-clock ticks; Spans the
	// interval count.
	SpanTime uint64 `json:"span_time,omitempty"`
	Spans    uint64 `json:"spans,omitempty"`
}

// symKey attributes a span to a symbol: the resolved guest symbol when
// available, else the human label.
func symKey(sym, name string) string {
	if sym != "" {
		return sym
	}
	if name != "" {
		return name
	}
	return "?"
}

// TopSymbols aggregates the store by symbol: by "samples" ranks on summed
// profile weight, by "span" on summed span time. n bounds the result
// (0 = all). Ordering is deterministic: rank desc, then symbol asc.
func TopSymbols(r *Reader, q Q, by string, n int) ([]TopEntry, error) {
	agg := map[string]*TopEntry{}
	get := func(sym string) *TopEntry {
		e, ok := agg[sym]
		if !ok {
			e = &TopEntry{Sym: sym}
			agg[sym] = e
		}
		return e
	}
	samples, err := r.Samples(q)
	if err != nil {
		return nil, err
	}
	for _, s := range samples {
		e := get(symKey(s.Sym, ""))
		e.Weight += s.Weight
	}
	spans, err := r.Spans(q)
	if err != nil {
		return nil, err
	}
	for _, s := range spans {
		e := get(symKey(s.Sym, s.Name))
		e.SpanTime += s.End - s.Start
		e.Spans++
	}
	out := make([]TopEntry, 0, len(agg))
	for _, e := range agg {
		out = append(out, *e)
	}
	rank := func(e TopEntry) uint64 {
		if by == "span" {
			return e.SpanTime
		}
		return e.Weight
	}
	sort.Slice(out, func(i, j int) bool {
		if rank(out[i]) != rank(out[j]) {
			return rank(out[i]) > rank(out[j])
		}
		return out[i].Sym < out[j].Sym
	})
	// Drop zero-ranked rows (symbols with only the other record kind).
	for len(out) > 0 && rank(out[len(out)-1]) == 0 {
		out = out[:len(out)-1]
	}
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out, nil
}

// RaceJoin is one race-report row joined with the racing threads' task
// spans — the schedule context that makes the report actionable.
type RaceJoin struct {
	Run  uint64  `json:"run"`
	Seed uint64  `json:"seed,omitempty"`
	Race RaceRow `json:"race"`
	// SpansA/SpansB are the task/implicit spans executed by the two racing
	// threads; when a span's label or symbol matches the race's segment
	// label the join narrows to those.
	SpansA []Span `json:"spans_a,omitempty"`
	SpansB []Span `json:"spans_b,omitempty"`
}

// threadTaskSpans selects the task-like spans of one thread, narrowed to
// those matching the segment label when any do.
func threadTaskSpans(spans []Span, thread int, seg string) []Span {
	var all, matched []Span
	for _, s := range spans {
		if s.Thread != thread {
			continue
		}
		if s.Kind != "task" && s.Kind != "implicit" && s.Kind != "parallel" {
			continue
		}
		all = append(all, s)
		if seg != "" && (s.Name == seg || s.Sym == seg) {
			matched = append(matched, s)
		}
	}
	if len(matched) > 0 {
		return matched
	}
	return all
}

// JoinRaces joins every matching run's race rows with the spans of the
// racing threads.
func JoinRaces(r *Reader, q Q) ([]RaceJoin, error) {
	runs, err := r.Data(q)
	if err != nil {
		return nil, err
	}
	var out []RaceJoin
	for _, rd := range runs {
		for _, race := range rd.Header.Races {
			out = append(out, RaceJoin{
				Run:    rd.Header.ID,
				Seed:   rd.Header.Seed,
				Race:   race,
				SpansA: threadTaskSpans(rd.Spans, race.ThreadA, race.SegA),
				SpansB: threadTaskSpans(rd.Spans, race.ThreadB, race.SegB),
			})
		}
	}
	return out, nil
}

// AggStats summarizes one store slice for `query agg`: per-verdict run
// counts, the failure taxonomy, and per-seed work statistics.
type AggStats struct {
	Runs     int            `json:"runs"`
	Verdicts map[string]int `json:"verdicts"`
	// Reports histograms the per-run report counts of ok runs.
	Reports map[int]int `json:"reports"`
	// Wall/Instr aggregates (wall is host time — nondeterministic).
	WallNanosTotal uint64 `json:"wall_nanos_total"`
	InstrsTotal    uint64 `json:"instrs_total"`
	InstrsMin      uint64 `json:"instrs_min,omitempty"`
	InstrsMax      uint64 `json:"instrs_max,omitempty"`
}

// Aggregate folds the matching run headers into summary statistics.
func Aggregate(headers []RunHeader) AggStats {
	a := AggStats{Verdicts: map[string]int{}, Reports: map[int]int{}}
	for _, h := range headers {
		a.Runs++
		a.Verdicts[h.Verdict]++
		if h.Verdict == VerdictOK {
			a.Reports[h.Reports]++
		}
		a.WallNanosTotal += h.WallNanos
		a.InstrsTotal += h.Instrs
		if h.Instrs > 0 {
			if a.InstrsMin == 0 || h.Instrs < a.InstrsMin {
				a.InstrsMin = h.Instrs
			}
			if h.Instrs > a.InstrsMax {
				a.InstrsMax = h.Instrs
			}
		}
	}
	return a
}
