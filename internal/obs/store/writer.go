package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// File framing. A segment file is:
//
//	segMagic
//	{ blockMagic u32:len u32:crc payload }*
//	footerJSON u32:crc u32:len footMagic
//
// Every run block is CRC-framed, so a reader can recover a segment whose
// footer never landed (crash mid-flush) by scanning blocks until the first
// torn frame; everything before it is intact.
const (
	segMagic   = "TGSEG01\n"
	blockMagic = "TGRB"
	footMagic  = "TGFT"

	// DefaultBatch is the in-memory event batch size: the tracing fast
	// path appends raw records to the batch; every DefaultBatch events one
	// amortized pass moves them into the columnar builders.
	DefaultBatch = 4096
	// DefaultMaxEvents bounds one run's retained events (spans + instants
	// + samples); further events are counted as dropped, keeping a
	// runaway run from exhausting memory.
	DefaultMaxEvents = 1 << 20
	// DefaultMaxSegBytes rotates the segment file when it grows past this.
	DefaultMaxSegBytes = 4 << 20
)

// BlockMeta is one run block's footer index entry: enough identity to
// answer header-level queries and enough range information (time span,
// threads, symbols) for the reader to skip the block on filtered scans
// without decoding it.
type BlockMeta struct {
	Off int64 `json:"off"`
	Len int64 `json:"len"`

	Run     uint64 `json:"run"`
	Prog    string `json:"prog,omitempty"`
	Tool    string `json:"tool,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
	Verdict string `json:"verdict"`

	TSMin   uint64   `json:"ts_min"`
	TSMax   uint64   `json:"ts_max"`
	Threads []int    `json:"threads,omitempty"`
	Syms    []string `json:"syms,omitempty"`

	Spans    int `json:"spans"`
	Instants int `json:"instants"`
	Samples  int `json:"samples"`
}

// Writer appends runs to a store directory. One Writer serializes appends
// from any number of concurrently recording RunWriters (explore sweep
// workers); each Writer session opens a fresh segment file and never
// rewrites existing ones, so the store is append-only at every level.
type Writer struct {
	// MaxSegBytes rotates the current segment once it exceeds this size
	// (default DefaultMaxSegBytes). Set before the first Finish.
	MaxSegBytes int64

	mu      sync.Mutex
	dir     string
	f       *os.File
	off     int64
	segIdx  int
	blocks  []BlockMeta
	nextRun uint64
	closed  bool

	flushedBatches atomic.Uint64
	droppedEvents  atomic.Uint64
	finishedRuns   atomic.Uint64
}

// Create opens a store directory for appending, creating it if needed.
// Existing segments are scanned only for the next run ID and segment index;
// their contents are never modified.
func Create(dir string) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create: %w", err)
	}
	maxRun, maxSeg, err := scanIdentity(dir)
	if err != nil {
		return nil, err
	}
	w := &Writer{
		dir:         dir,
		segIdx:      maxSeg,
		nextRun:     maxRun,
		MaxSegBytes: DefaultMaxSegBytes,
	}
	if err := w.openSegment(); err != nil {
		return nil, err
	}
	return w, nil
}

// scanIdentity finds the highest run ID and segment index already present.
func scanIdentity(dir string) (maxRun uint64, maxSeg int, err error) {
	paths, err := filepath.Glob(filepath.Join(dir, "seg-*.tgseg"))
	if err != nil {
		return 0, 0, err
	}
	for _, p := range paths {
		var idx int
		if _, serr := fmt.Sscanf(filepath.Base(p), "seg-%d.tgseg", &idx); serr == nil && idx > maxSeg {
			maxSeg = idx
		}
		metas, _, serr := readSegment(p)
		if serr != nil {
			continue // unreadable segment: skip, never overwrite
		}
		for _, m := range metas {
			if m.Run > maxRun {
				maxRun = m.Run
			}
		}
	}
	return maxRun, maxSeg, nil
}

func segName(idx int) string { return fmt.Sprintf("seg-%05d.tgseg", idx) }

// openSegment starts the next segment file. Caller holds mu (or is the
// constructor).
func (w *Writer) openSegment() error {
	w.segIdx++
	f, err := os.OpenFile(filepath.Join(w.dir, segName(w.segIdx)),
		os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: open segment: %w", err)
	}
	if _, err := f.WriteString(segMagic); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.off = int64(len(segMagic))
	w.blocks = nil
	return nil
}

// sealSegment writes the footer and closes the current segment file. Caller
// holds mu.
func (w *Writer) sealSegment() error {
	if w.f == nil {
		return nil
	}
	js, err := json.Marshal(w.blocks)
	if err != nil {
		return err
	}
	var tail [12]byte
	binary.LittleEndian.PutUint32(tail[0:], crc32.ChecksumIEEE(js))
	binary.LittleEndian.PutUint32(tail[4:], uint32(len(js)))
	copy(tail[8:], footMagic)
	if _, err := w.f.Write(append(js, tail[:]...)); err != nil {
		return err
	}
	err = w.f.Close()
	w.f = nil
	return err
}

// Close seals the open segment. The Writer is unusable afterwards.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	return w.sealSegment()
}

// Stats returns the writer's cumulative batch/drop accounting across all
// its RunWriters — the trace-loss numbers surfaced as obs metrics.
func (w *Writer) Stats() (flushedBatches, droppedEvents, finishedRuns uint64) {
	return w.flushedBatches.Load(), w.droppedEvents.Load(), w.finishedRuns.Load()
}

// Dir returns the store directory.
func (w *Writer) Dir() string { return w.dir }

// Begin starts recording one run. The returned RunWriter must be used from
// a single goroutine; Finish appends the encoded block to the store.
func (w *Writer) Begin(h RunHeader) *RunWriter {
	w.mu.Lock()
	w.nextRun++
	h.ID = w.nextRun
	w.mu.Unlock()
	return &RunWriter{
		w:         w,
		h:         h,
		d:         newDict(),
		maxEvents: DefaultMaxEvents,
		batch:     make([]rec, 0, DefaultBatch),
	}
}

// rec is one raw record in the fast-path batch.
type rec struct {
	kind    uint8 // 0 span, 1 instant, 2 sample
	a, b, c uint64
	thread  int32
	k, n, s uint32 // dict ids: kind, name, sym
}

// cols is the columnar (struct-of-arrays) builder a batch flushes into.
type cols struct {
	spanStart, spanEnd, spanPC    []uint64
	spanThread                    []int32
	spanKind, spanName, spanSym   []uint32
	instTS, instArg               []uint64
	instThread                    []int32
	instKind, instName            []uint32
	samplePC, sampleW             []uint64
	sampleSym                     []uint32
}

// RunWriter accumulates one run's records. Adds go to a fixed-size batch (a
// slice append on the tracing fast path); full batches flush into the
// columnar builders in one amortized pass; Finish sorts, delta-encodes and
// appends the block.
type RunWriter struct {
	w *Writer
	h RunHeader
	d *dict

	batch     []rec
	c         cols
	events    int
	maxEvents int

	flushed uint64
	dropped uint64
	done    bool
}

// Header returns the (store-assigned) run header as begun.
func (rw *RunWriter) Header() RunHeader { return rw.h }

// SetMaxEvents overrides the per-run retained event bound (0 keeps the
// default).
func (rw *RunWriter) SetMaxEvents(n int) {
	if n > 0 {
		rw.maxEvents = n
	}
}

func (rw *RunWriter) add(r rec) {
	if rw.events >= rw.maxEvents {
		rw.dropped++
		return
	}
	rw.events++
	rw.batch = append(rw.batch, r)
	if len(rw.batch) == cap(rw.batch) {
		rw.flush()
	}
}

// flush moves the batch into the columnar builders — the amortized step off
// the per-event fast path.
func (rw *RunWriter) flush() {
	for i := range rw.batch {
		r := &rw.batch[i]
		switch r.kind {
		case 0:
			rw.c.spanStart = append(rw.c.spanStart, r.a)
			rw.c.spanEnd = append(rw.c.spanEnd, r.b)
			rw.c.spanPC = append(rw.c.spanPC, r.c)
			rw.c.spanThread = append(rw.c.spanThread, r.thread)
			rw.c.spanKind = append(rw.c.spanKind, r.k)
			rw.c.spanName = append(rw.c.spanName, r.n)
			rw.c.spanSym = append(rw.c.spanSym, r.s)
		case 1:
			rw.c.instTS = append(rw.c.instTS, r.a)
			rw.c.instArg = append(rw.c.instArg, r.c)
			rw.c.instThread = append(rw.c.instThread, r.thread)
			rw.c.instKind = append(rw.c.instKind, r.k)
			rw.c.instName = append(rw.c.instName, r.n)
		case 2:
			rw.c.samplePC = append(rw.c.samplePC, r.c)
			rw.c.sampleW = append(rw.c.sampleW, r.a)
			rw.c.sampleSym = append(rw.c.sampleSym, r.s)
		}
	}
	if len(rw.batch) > 0 {
		rw.flushed++
	}
	rw.batch = rw.batch[:0]
}

// Span records one interval.
func (rw *RunWriter) Span(thread int, kind, name, sym string, pc, start, end uint64) {
	rw.add(rec{kind: 0, a: start, b: end, c: pc, thread: int32(thread),
		k: rw.d.id(kind), n: rw.d.id(name), s: rw.d.id(sym)})
}

// Instant records one point event.
func (rw *RunWriter) Instant(ts uint64, thread int, kind, name string, arg uint64) {
	rw.add(rec{kind: 1, a: ts, c: arg, thread: int32(thread),
		k: rw.d.id(kind), n: rw.d.id(name)})
}

// Sample records one weighted guest-PC profile sample.
func (rw *RunWriter) Sample(pc uint64, sym string, weight uint64) {
	rw.add(rec{kind: 2, a: weight, c: pc, s: rw.d.id(sym)})
}

// AddRace appends one race-report row to the run header.
func (rw *RunWriter) AddRace(r RaceRow) { rw.h.Races = append(rw.h.Races, r) }

// SetCounters attaches the final metrics snapshot to the run header.
func (rw *RunWriter) SetCounters(c map[string]uint64) { rw.h.Counters = c }

// SetResult records the run outcome into the header before Finish. verdict
// is VerdictOK or a failure taxonomy kind; errStr carries the rendered
// error for failures.
func (rw *RunWriter) SetResult(verdict string, reports int, errStr string) {
	rw.h.Verdict = verdict
	rw.h.Reports = reports
	rw.h.Err = errStr
}

// SetWork records the run's deterministic work and wall-clock metrics.
func (rw *RunWriter) SetWork(instrs, blocks, wallNanos uint64) {
	rw.h.Instrs, rw.h.Blocks, rw.h.WallNanos = instrs, blocks, wallNanos
}

// SetReproduced marks a verified (replayed bit-identically) crash.
func (rw *RunWriter) SetReproduced(v bool) { rw.h.Reproduced = v }

// SetReplayToken stamps the run's reproduction recipe.
func (rw *RunWriter) SetReplayToken(tok string) { rw.h.ReplayToken = tok }

// Stats returns the run's flushed-batch and dropped-event counts.
func (rw *RunWriter) Stats() (flushedBatches, droppedEvents uint64) {
	return rw.flushed, rw.dropped
}

// Abort discards the run without writing anything (a superseded supervision
// attempt). The store-assigned run ID is not reused.
func (rw *RunWriter) Abort() { rw.done = true }

// Finish encodes the run block and appends it to the store. The RunWriter
// is unusable afterwards.
func (rw *RunWriter) Finish() error {
	if rw.done {
		return nil
	}
	rw.done = true
	rw.flush()
	if rw.h.Verdict == "" {
		rw.h.Verdict = VerdictOK
	}
	payload, meta, err := rw.encode()
	if err != nil {
		return err
	}
	rw.w.flushedBatches.Add(rw.flushed)
	rw.w.droppedEvents.Add(rw.dropped)
	rw.w.finishedRuns.Add(1)
	return rw.w.appendBlock(payload, meta)
}

// sortPerm returns indices 0..n-1 ordered by less, stable.
func sortPerm(n int, less func(i, j int) bool) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	sort.SliceStable(p, func(a, b int) bool { return less(p[a], p[b]) })
	return p
}

// encode produces the block payload and its footer meta.
func (rw *RunWriter) encode() ([]byte, BlockMeta, error) {
	c := &rw.c
	meta := BlockMeta{
		Run: rw.h.ID, Prog: rw.h.Prog, Tool: rw.h.Tool, Seed: rw.h.Seed,
		Verdict: rw.h.Verdict,
		Spans:   len(c.spanStart), Instants: len(c.instTS), Samples: len(c.samplePC),
	}
	// Range metadata for pruning: time over spans+instants, thread set,
	// symbol set (every non-empty dictionary string: kinds and names are
	// few, and including them lets name filters prune too).
	first := true
	span := func(lo, hi uint64) {
		if first {
			meta.TSMin, meta.TSMax, first = lo, hi, false
			return
		}
		if lo < meta.TSMin {
			meta.TSMin = lo
		}
		if hi > meta.TSMax {
			meta.TSMax = hi
		}
	}
	threads := map[int]bool{}
	for i := range c.spanStart {
		span(c.spanStart[i], c.spanEnd[i])
		threads[int(c.spanThread[i])] = true
	}
	for i := range c.instTS {
		span(c.instTS[i], c.instTS[i])
		threads[int(c.instThread[i])] = true
	}
	for t := range threads {
		meta.Threads = append(meta.Threads, t)
	}
	sort.Ints(meta.Threads)
	for _, s := range rw.d.strs {
		if s != "" {
			meta.Syms = append(meta.Syms, s)
		}
	}
	sort.Strings(meta.Syms)

	e := &enc{}
	hdr, err := json.Marshal(rw.h)
	if err != nil {
		return nil, meta, err
	}
	e.bytesSection(hdr)
	de := &enc{}
	rw.d.encode(de)
	e.bytesSection(de.buf)

	// Spans, sorted by (start, end, thread): starts become non-negative
	// deltas.
	sp := sortPerm(len(c.spanStart), func(i, j int) bool {
		if c.spanStart[i] != c.spanStart[j] {
			return c.spanStart[i] < c.spanStart[j]
		}
		if c.spanEnd[i] != c.spanEnd[j] {
			return c.spanEnd[i] < c.spanEnd[j]
		}
		return c.spanThread[i] < c.spanThread[j]
	})
	e.u64(uint64(len(sp)))
	col := func(fill func(e *enc)) {
		sub := &enc{}
		fill(sub)
		e.bytesSection(sub.buf)
	}
	col(func(s *enc) {
		prev := uint64(0)
		for _, i := range sp {
			s.u64(c.spanStart[i] - prev)
			prev = c.spanStart[i]
		}
	})
	col(func(s *enc) {
		for _, i := range sp {
			s.u64(c.spanEnd[i] - c.spanStart[i])
		}
	})
	col(func(s *enc) {
		for _, i := range sp {
			s.i64(int64(c.spanThread[i]))
		}
	})
	col(func(s *enc) {
		for _, i := range sp {
			s.u64(uint64(c.spanKind[i]))
		}
	})
	col(func(s *enc) {
		for _, i := range sp {
			s.u64(uint64(c.spanName[i]))
		}
	})
	col(func(s *enc) {
		for _, i := range sp {
			s.u64(uint64(c.spanSym[i]))
		}
	})
	col(func(s *enc) {
		for _, i := range sp {
			s.u64(c.spanPC[i])
		}
	})

	// Instants, sorted by ts (stable: emission order preserved at equal
	// clock values — the block clock only moves at block boundaries).
	ip := sortPerm(len(c.instTS), func(i, j int) bool { return c.instTS[i] < c.instTS[j] })
	e.u64(uint64(len(ip)))
	col(func(s *enc) {
		prev := uint64(0)
		for _, i := range ip {
			s.u64(c.instTS[i] - prev)
			prev = c.instTS[i]
		}
	})
	col(func(s *enc) {
		for _, i := range ip {
			s.i64(int64(c.instThread[i]))
		}
	})
	col(func(s *enc) {
		for _, i := range ip {
			s.u64(uint64(c.instKind[i]))
		}
	})
	col(func(s *enc) {
		for _, i := range ip {
			s.u64(uint64(c.instName[i]))
		}
	})
	col(func(s *enc) {
		for _, i := range ip {
			s.u64(c.instArg[i])
		}
	})

	// Samples, sorted by PC.
	pp := sortPerm(len(c.samplePC), func(i, j int) bool { return c.samplePC[i] < c.samplePC[j] })
	e.u64(uint64(len(pp)))
	col(func(s *enc) {
		prev := uint64(0)
		for _, i := range pp {
			s.u64(c.samplePC[i] - prev)
			prev = c.samplePC[i]
		}
	})
	col(func(s *enc) {
		for _, i := range pp {
			s.u64(uint64(c.sampleSym[i]))
		}
	})
	col(func(s *enc) {
		for _, i := range pp {
			s.u64(c.sampleW[i])
		}
	})
	return e.buf, meta, nil
}

// appendBlock frames and writes one run block, rotating the segment when it
// outgrows MaxSegBytes.
func (w *Writer) appendBlock(payload []byte, meta BlockMeta) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("store: append to closed writer")
	}
	var frame [12]byte
	copy(frame[0:], blockMagic)
	binary.LittleEndian.PutUint32(frame[4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[8:], crc32.ChecksumIEEE(payload))
	if _, err := w.f.Write(frame[:]); err != nil {
		return err
	}
	if _, err := w.f.Write(payload); err != nil {
		return err
	}
	meta.Off = w.off
	meta.Len = int64(len(frame) + len(payload))
	w.off += meta.Len
	w.blocks = append(w.blocks, meta)
	if w.off >= w.MaxSegBytes {
		if err := w.sealSegment(); err != nil {
			return err
		}
		return w.openSegment()
	}
	return nil
}
