package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// segment is one fully loaded segment file.
type segment struct {
	path      string
	data      []byte
	metas     []BlockMeta
	recovered bool // footer missing/invalid; metas rebuilt by scanning
}

// Reader opens a store directory for querying. All segment bytes are held
// in memory (segments rotate at a few MB); queries decode only the blocks
// the footer index cannot rule out.
type Reader struct {
	segs []segment

	// NoPrune disables footer-index block skipping — every block is
	// decoded and row-filtered. The pruning-equivalence tests compare
	// pruned and unpruned results.
	NoPrune bool

	// ScannedBlocks / PrunedBlocks count, cumulatively across queries, the
	// blocks decoded vs skipped via the footer index.
	ScannedBlocks uint64
	PrunedBlocks  uint64
}

// OpenReader loads every segment in dir. Segments without a valid footer
// (crash mid-flush) are recovered by scanning their CRC-framed blocks; a
// torn final frame is dropped, never the blocks before it.
func OpenReader(dir string) (*Reader, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "seg-*.tgseg"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("store: no segments in %s", dir)
	}
	sort.Strings(paths)
	r := &Reader{}
	for _, p := range paths {
		metas, data, err := readSegment(p)
		if err != nil {
			return nil, fmt.Errorf("store: %s: %w", filepath.Base(p), err)
		}
		recovered := !hasFooter(data)
		r.segs = append(r.segs, segment{path: p, data: data, metas: metas, recovered: recovered})
	}
	return r, nil
}

func hasFooter(data []byte) bool {
	_, ok := footerOf(data)
	return ok
}

// footerOf extracts the footer index if the trailer is intact.
func footerOf(data []byte) ([]BlockMeta, bool) {
	if len(data) < len(segMagic)+12 {
		return nil, false
	}
	tail := data[len(data)-12:]
	if string(tail[8:12]) != footMagic {
		return nil, false
	}
	crc := binary.LittleEndian.Uint32(tail[0:4])
	n := int(binary.LittleEndian.Uint32(tail[4:8]))
	end := len(data) - 12
	if n > end-len(segMagic) {
		return nil, false
	}
	js := data[end-n : end]
	if crc32.ChecksumIEEE(js) != crc {
		return nil, false
	}
	var metas []BlockMeta
	if err := json.Unmarshal(js, &metas); err != nil {
		return nil, false
	}
	return metas, true
}

// readSegment loads one segment, preferring the footer index and falling
// back to a block scan when the footer never landed.
func readSegment(path string) ([]BlockMeta, []byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return nil, nil, fmt.Errorf("bad segment magic")
	}
	if metas, ok := footerOf(data); ok {
		return metas, data, nil
	}
	return scanBlocks(data), data, nil
}

// scanBlocks rebuilds block metadata by walking CRC frames from the start
// of a footerless segment. The first torn or corrupt frame ends the scan:
// everything before it is intact and kept. Recovered metas carry the run
// identity (decoded from the block header) but no range index, so they are
// never pruned.
func scanBlocks(data []byte) []BlockMeta {
	var metas []BlockMeta
	off := len(segMagic)
	for {
		if off+12 > len(data) || string(data[off:off+4]) != blockMagic {
			return metas
		}
		n := int(binary.LittleEndian.Uint32(data[off+4 : off+8]))
		crc := binary.LittleEndian.Uint32(data[off+8 : off+12])
		if n < 0 || off+12+n > len(data) {
			return metas
		}
		payload := data[off+12 : off+12+n]
		if crc32.ChecksumIEEE(payload) != crc {
			return metas
		}
		m := BlockMeta{Off: int64(off), Len: int64(12 + n), TSMax: ^uint64(0)}
		if h, err := decodeHeader(payload); err == nil {
			m.Run, m.Prog, m.Tool, m.Seed, m.Verdict = h.ID, h.Prog, h.Tool, h.Seed, h.Verdict
		}
		metas = append(metas, m)
		off += 12 + n
	}
}

// decodeHeader decodes just the header JSON section of a block payload.
func decodeHeader(payload []byte) (RunHeader, error) {
	d := &dec{buf: payload}
	hs := d.bytesSection()
	var h RunHeader
	if d.err != nil {
		return h, d.err
	}
	if err := json.Unmarshal(hs.buf, &h); err != nil {
		return h, err
	}
	return h, nil
}

// decodeBlock fully decodes one run block payload.
func decodeBlock(payload []byte) (RunData, error) {
	var rd RunData
	d := &dec{buf: payload}
	hs := d.bytesSection()
	if d.err == nil {
		if err := json.Unmarshal(hs.buf, &rd.Header); err != nil {
			return rd, fmt.Errorf("store: block header: %w", err)
		}
	}
	strs := decodeDict(d.bytesSection())

	nSpans := d.u64()
	cols := func(k int) []*dec {
		out := make([]*dec, k)
		for i := range out {
			out[i] = d.bytesSection()
		}
		return out
	}
	sc := cols(7)
	if d.err == nil && nSpans <= uint64(len(payload)) {
		rd.Spans = make([]Span, 0, nSpans)
		prev := uint64(0)
		for i := uint64(0); i < nSpans; i++ {
			start := prev + sc[0].u64()
			prev = start
			rd.Spans = append(rd.Spans, Span{
				Run:    rd.Header.ID,
				Start:  start,
				End:    start + sc[1].u64(),
				Thread: int(sc[2].i64()),
				Kind:   dictStr(strs, sc[3].u64()),
				Name:   dictStr(strs, sc[4].u64()),
				Sym:    dictStr(strs, sc[5].u64()),
				PC:     sc[6].u64(),
			})
		}
	}

	nInst := d.u64()
	ic := cols(5)
	if d.err == nil && nInst <= uint64(len(payload)) {
		rd.Instants = make([]Instant, 0, nInst)
		prev := uint64(0)
		for i := uint64(0); i < nInst; i++ {
			ts := prev + ic[0].u64()
			prev = ts
			rd.Instants = append(rd.Instants, Instant{
				Run:    rd.Header.ID,
				TS:     ts,
				Thread: int(ic[1].i64()),
				Kind:   dictStr(strs, ic[2].u64()),
				Name:   dictStr(strs, ic[3].u64()),
				Arg:    ic[4].u64(),
			})
		}
	}

	nSamp := d.u64()
	pc := cols(3)
	if d.err == nil && nSamp <= uint64(len(payload)) {
		rd.Samples = make([]Sample, 0, nSamp)
		prev := uint64(0)
		for i := uint64(0); i < nSamp; i++ {
			p := prev + pc[0].u64()
			prev = p
			rd.Samples = append(rd.Samples, Sample{
				Run:    rd.Header.ID,
				PC:     p,
				Sym:    dictStr(strs, pc[1].u64()),
				Weight: pc[2].u64(),
			})
		}
	}
	if d.err != nil {
		return rd, d.err
	}
	for _, c := range append(append(sc, ic...), pc...) {
		if c.err != nil {
			return rd, c.err
		}
	}
	return rd, nil
}

// Q is a query predicate. The zero value matches everything; set fields to
// narrow. Identity predicates (Run, Tool, Prog, Verdict, Seed) apply to run
// headers and blocks; range predicates (MinTS/MaxTS, Thread, Sym, Kind)
// apply to event rows, and prune whole blocks via the footer index before
// any decoding.
type Q struct {
	Run     uint64 // 0 = any (run IDs start at 1)
	Tool    string
	Prog    string
	Verdict string
	Seed    *uint64

	MinTS uint64
	MaxTS uint64 // 0 = unbounded
	// Thread filters rows to one guest thread (nil = any).
	Thread *int
	// Sym matches a span/sample symbol or name, or an instant name.
	Sym string
	// Kind matches the span/instant kind.
	Kind string
}

// matchIdentity reports whether a block/run identity passes q.
func (q Q) matchIdentity(run uint64, prog, tool string, seed uint64, verdict string) bool {
	if q.Run != 0 && run != q.Run {
		return false
	}
	if q.Prog != "" && prog != q.Prog {
		return false
	}
	if q.Tool != "" && tool != q.Tool {
		return false
	}
	if q.Verdict != "" && verdict != q.Verdict {
		return false
	}
	if q.Seed != nil && seed != *q.Seed {
		return false
	}
	return true
}

// pruneEvents reports whether the footer index proves no event row in the
// block can match q. Recovered blocks (no range index) are never pruned.
func (q Q) pruneEvents(m BlockMeta) bool {
	if q.MaxTS != 0 && m.TSMin > q.MaxTS {
		return true
	}
	if q.MinTS != 0 && m.TSMax < q.MinTS {
		return true
	}
	if q.Thread != nil && m.Threads != nil {
		found := false
		for _, t := range m.Threads {
			if t == *q.Thread {
				found = true
				break
			}
		}
		if !found {
			return true
		}
	}
	if q.Sym != "" && m.Syms != nil {
		i := sort.SearchStrings(m.Syms, q.Sym)
		if i >= len(m.Syms) || m.Syms[i] != q.Sym {
			return true
		}
	}
	if q.Kind != "" && m.Syms != nil {
		// Kinds are interned in the same dictionary as symbols.
		i := sort.SearchStrings(m.Syms, q.Kind)
		if i >= len(m.Syms) || m.Syms[i] != q.Kind {
			return true
		}
	}
	return false
}

// scan decodes every block that survives pruning and hands it to fn.
func (r *Reader) scan(q Q, events bool, fn func(rd RunData)) error {
	for si := range r.segs {
		seg := &r.segs[si]
		for _, m := range seg.metas {
			if !r.NoPrune {
				if !q.matchIdentity(m.Run, m.Prog, m.Tool, m.Seed, m.Verdict) ||
					(events && q.pruneEvents(m)) {
					r.PrunedBlocks++
					continue
				}
			}
			r.ScannedBlocks++
			if m.Off+m.Len > int64(len(seg.data)) {
				return fmt.Errorf("store: %s: block range out of file", filepath.Base(seg.path))
			}
			payload := seg.data[m.Off+12 : m.Off+m.Len]
			rd, err := decodeBlock(payload)
			if err != nil {
				return fmt.Errorf("store: %s: %w", filepath.Base(seg.path), err)
			}
			if r.NoPrune && !q.matchIdentity(rd.Header.ID, rd.Header.Prog, rd.Header.Tool, rd.Header.Seed, rd.Header.Verdict) {
				continue
			}
			fn(rd)
		}
	}
	return nil
}

// Runs returns the headers of every run matching q's identity predicates,
// ordered by run ID.
func (r *Reader) Runs(q Q) ([]RunHeader, error) {
	var out []RunHeader
	err := r.scan(q, false, func(rd RunData) { out = append(out, rd.Header) })
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, err
}

// matchSpan applies q's row predicates to one span.
func (q Q) matchSpan(s Span) bool {
	if q.MaxTS != 0 && s.Start > q.MaxTS {
		return false
	}
	if q.MinTS != 0 && s.End < q.MinTS {
		return false
	}
	if q.Thread != nil && s.Thread != *q.Thread {
		return false
	}
	if q.Sym != "" && s.Sym != q.Sym && s.Name != q.Sym {
		return false
	}
	if q.Kind != "" && s.Kind != q.Kind {
		return false
	}
	return true
}

// Spans returns every span matching q, ordered by (run, start).
func (r *Reader) Spans(q Q) ([]Span, error) {
	var out []Span
	err := r.scan(q, true, func(rd RunData) {
		for _, s := range rd.Spans {
			if q.matchSpan(s) {
				out = append(out, s)
			}
		}
	})
	return out, err
}

// matchInstant applies q's row predicates to one instant.
func (q Q) matchInstant(in Instant) bool {
	if q.MaxTS != 0 && in.TS > q.MaxTS {
		return false
	}
	if q.MinTS != 0 && in.TS < q.MinTS {
		return false
	}
	if q.Thread != nil && in.Thread != *q.Thread {
		return false
	}
	if q.Sym != "" && in.Name != q.Sym {
		return false
	}
	if q.Kind != "" && in.Kind != q.Kind {
		return false
	}
	return true
}

// Instants returns every instant matching q, ordered by (run, ts).
func (r *Reader) Instants(q Q) ([]Instant, error) {
	var out []Instant
	err := r.scan(q, true, func(rd RunData) {
		for _, in := range rd.Instants {
			if q.matchInstant(in) {
				out = append(out, in)
			}
		}
	})
	return out, err
}

// Samples returns every profile sample matching q, ordered by (run, pc).
func (r *Reader) Samples(q Q) ([]Sample, error) {
	var out []Sample
	err := r.scan(q, true, func(rd RunData) {
		for _, s := range rd.Samples {
			if q.Sym != "" && s.Sym != q.Sym {
				continue
			}
			out = append(out, s)
		}
	})
	return out, err
}

// Data returns fully decoded runs matching q's identity predicates (row
// predicates are not applied — callers get whole runs for joins).
func (r *Reader) Data(q Q) ([]RunData, error) {
	var out []RunData
	err := r.scan(q, false, func(rd RunData) { out = append(out, rd) })
	sort.Slice(out, func(i, j int) bool { return out[i].Header.ID < out[j].Header.ID })
	return out, err
}

// Recovered reports how many segments were loaded without a valid footer
// (torn-tail scan recovery).
func (r *Reader) Recovered() int {
	n := 0
	for _, s := range r.segs {
		if s.recovered {
			n++
		}
	}
	return n
}
