package store

import (
	"fmt"

	"repro/internal/obs"
)

// StoreSink adapts a RunWriter to the obs.Sink interface: Begin/End pairs
// become spans (paired on a per-thread stack), instants become instant
// rows. It lives on the tracing fast path, so per-event work is one map
// lookup plus a batched append.
type StoreSink struct {
	rw *RunWriter

	// SymFn resolves a guest PC to its enclosing symbol name ("" when
	// unknown). Optional; typically guest.Image-backed.
	SymFn func(pc uint64) string

	open  map[int][]openSpan
	maxTS uint64
}

type openSpan struct {
	cat, name string
	label     string
	ts        uint64
	pc        uint64
}

// NewStoreSink wraps a RunWriter as an event sink.
func NewStoreSink(rw *RunWriter) *StoreSink {
	return &StoreSink{rw: rw, open: make(map[int][]openSpan)}
}

// Run returns the underlying run writer (for counters, result, Finish).
func (s *StoreSink) Run() *RunWriter { return s.rw }

// argU64 extracts a numeric event argument.
func argU64(args map[string]any, key string) (uint64, bool) {
	v, ok := args[key]
	if !ok {
		return 0, false
	}
	switch n := v.(type) {
	case uint64:
		return n, true
	case int:
		return uint64(n), true
	case int64:
		return uint64(n), true
	case uint32:
		return uint64(n), true
	case uint:
		return uint64(n), true
	}
	return 0, false
}

// eventPC pulls the guest PC out of an event's args: task events carry the
// outlined function under "fn", translations the block address under "addr".
func eventPC(args map[string]any) uint64 {
	for _, k := range [...]string{"fn", "addr", "pc"} {
		if v, ok := argU64(args, k); ok {
			return v
		}
	}
	return 0
}

// eventArg pulls the primary numeric payload of an instant.
func eventArg(args map[string]any) uint64 {
	for _, k := range [...]string{"task", "addr", "pc", "region", "victim", "hits"} {
		if v, ok := argU64(args, k); ok {
			return v
		}
	}
	return 0
}

// spanKind maps an event's cat/name to the stored span kind.
func spanKind(cat, name string) string {
	switch {
	case cat == "omp" && (name == "task" || name == "parallel" || name == "implicit"):
		return name
	case cat == "dbi" && name == "translate":
		return "translation"
	}
	return cat + "/" + name
}

// spanLabel builds the human label for a span from its begin event.
func spanLabel(name string, args map[string]any) string {
	if id, ok := argU64(args, "task"); ok {
		return fmt.Sprintf("task#%d", id)
	}
	if id, ok := argU64(args, "region"); ok {
		return fmt.Sprintf("region#%d", id)
	}
	if a, ok := argU64(args, "addr"); ok {
		return fmt.Sprintf("0x%x", a)
	}
	return name
}

func (s *StoreSink) sym(pc uint64) string {
	if pc == 0 || s.SymFn == nil {
		return ""
	}
	return s.SymFn(pc)
}

// Write implements obs.Sink.
func (s *StoreSink) Write(ev obs.Event) {
	if ev.TS > s.maxTS {
		s.maxTS = ev.TS
	}
	switch ev.Phase {
	case obs.PhaseBegin:
		s.open[ev.Thread] = append(s.open[ev.Thread], openSpan{
			cat: ev.Cat, name: ev.Name,
			label: spanLabel(ev.Name, ev.Args),
			ts:    ev.TS, pc: eventPC(ev.Args),
		})
	case obs.PhaseEnd:
		stack := s.open[ev.Thread]
		// Pop the nearest matching begin; mismatches (lost begins) drop
		// the end rather than corrupting the stack.
		for i := len(stack) - 1; i >= 0; i-- {
			if stack[i].cat == ev.Cat && stack[i].name == ev.Name {
				sp := stack[i]
				s.open[ev.Thread] = append(stack[:i], stack[i+1:]...)
				s.rw.Span(ev.Thread, spanKind(sp.cat, sp.name), sp.label,
					s.sym(sp.pc), sp.pc, sp.ts, ev.TS)
				return
			}
		}
	default: // instants and diagnostics
		s.rw.Instant(ev.TS, ev.Thread, ev.Cat, ev.Name, eventArg(ev.Args))
	}
}

// Close settles any still-open spans (interrupted runs: crashes, timeouts)
// at the last seen clock value. It does not Finish the run — the harness
// appends counters and the verdict first.
func (s *StoreSink) Close() error {
	for thread, stack := range s.open {
		for i := len(stack) - 1; i >= 0; i-- {
			sp := stack[i]
			s.rw.Span(thread, spanKind(sp.cat, sp.name), sp.label,
				s.sym(sp.pc), sp.pc, sp.ts, s.maxTS)
		}
		delete(s.open, thread)
	}
	return nil
}

// SinkMetrics implements obs.SinkMetrics, surfacing recording loss.
func (s *StoreSink) SinkMetrics(put func(name string, v uint64)) {
	flushed, dropped := s.rw.Stats()
	put("trace_store_flushed_batches_total", flushed)
	put("trace_store_dropped_events_total", dropped)
}
