package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// RingSink keeps the last N events in memory — the always-cheap sink for
// post-mortem inspection and tests.
type RingSink struct {
	buf     []Event
	next    int
	wrapped bool
	dropped uint64
}

// NewRingSink creates a ring holding up to capacity events.
func NewRingSink(capacity int) *RingSink {
	if capacity <= 0 {
		capacity = 1024
	}
	return &RingSink{buf: make([]Event, 0, capacity)}
}

// Write implements Sink.
func (r *RingSink) Write(ev Event) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
		return
	}
	r.buf[r.next] = ev
	r.next = (r.next + 1) % cap(r.buf)
	r.wrapped = true
	r.dropped++
}

// Events returns the retained events in emission order.
func (r *RingSink) Events() []Event {
	if !r.wrapped {
		return append([]Event(nil), r.buf...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dropped returns how many events fell off the ring.
func (r *RingSink) Dropped() uint64 { return r.dropped }

// SinkMetrics implements SinkMetrics: ring overflow is trace loss.
func (r *RingSink) SinkMetrics(put func(name string, v uint64)) {
	put("trace_ring_dropped_total", r.dropped)
}

// Close implements Sink.
func (r *RingSink) Close() error { return nil }

// jsonEvent is the wire form shared by the JSONL and Chrome sinks.
type jsonEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   uint64         `json:"ts"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func toJSONEvent(ev Event) jsonEvent {
	je := jsonEvent{
		Name: ev.Name,
		Cat:  ev.Cat,
		Ph:   string(ev.Phase),
		TS:   ev.TS,
		TID:  ev.Thread,
		Args: ev.Args,
	}
	if ev.Phase == PhaseInstant {
		je.S = "t" // thread-scoped instant
	}
	return je
}

// JSONLSink writes one JSON object per line — the machine-readable stream
// format for ad-hoc processing (jq, scripts). Writes are buffered off the
// tracing fast path; the first encode/write error latches and is reported
// by Close, matching ChromeSink.
type JSONLSink struct {
	bw  *bufio.Writer
	enc *json.Encoder
	c   io.Closer
	err error
}

// NewJSONLSink writes JSON lines to w; if w is an io.Closer it is closed by
// Close.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{bw: bufio.NewWriter(w)}
	s.enc = json.NewEncoder(s.bw)
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Write implements Sink.
func (s *JSONLSink) Write(ev Event) {
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(toJSONEvent(ev))
}

// Close flushes the buffer and reports the first error seen.
func (s *JSONLSink) Close() error {
	if ferr := s.bw.Flush(); ferr != nil && s.err == nil {
		s.err = ferr
	}
	if s.c != nil {
		if cerr := s.c.Close(); cerr != nil && s.err == nil {
			s.err = cerr
		}
	}
	if s.err != nil {
		return fmt.Errorf("obs: jsonl sink: %w", s.err)
	}
	return nil
}

// ChromeSink streams the Chrome trace_event JSON-array format: the output
// loads directly in chrome://tracing and Perfetto, turning the task
// schedule into an interactive timeline. TS is written verbatim (block
// clock as microseconds — virtual time, arbitrary units).
type ChromeSink struct {
	w   io.Writer
	n   uint64
	err error
}

// NewChromeSink creates a trace_event sink over w; if w is an io.Closer it
// is closed by Close.
func NewChromeSink(w io.Writer) *ChromeSink {
	return &ChromeSink{w: w}
}

// Write implements Sink.
func (s *ChromeSink) Write(ev Event) {
	if s.err != nil {
		return
	}
	sep := ",\n"
	if s.n == 0 {
		sep = "[\n"
	}
	b, err := json.Marshal(toJSONEvent(ev))
	if err != nil {
		s.err = err
		return
	}
	if _, err := io.WriteString(s.w, sep); err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Write(b); err != nil {
		s.err = err
		return
	}
	s.n++
}

// Close finalizes the JSON array (an empty trace becomes "[]").
func (s *ChromeSink) Close() error {
	if s.err == nil {
		tail := "\n]\n"
		if s.n == 0 {
			tail = "[]\n"
		}
		_, s.err = io.WriteString(s.w, tail)
	}
	if c, ok := s.w.(io.Closer); ok {
		if cerr := c.Close(); cerr != nil && s.err == nil {
			s.err = cerr
		}
	}
	if s.err != nil {
		return fmt.Errorf("obs: chrome sink: %w", s.err)
	}
	return nil
}
