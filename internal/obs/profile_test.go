package obs

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/guest"
)

// testImage builds an unfrozen image with two functions and line info;
// SymbolFor/LineFor only need the tables sorted, which literals below are.
func testImage() *guest.Image {
	return &guest.Image{
		Symbols: []guest.Symbol{
			{Name: "hot_loop", Addr: guest.TextBase, Size: 64, Kind: guest.SymFunc},
			{Name: "cold_path", Addr: guest.TextBase + 64, Size: 64, Kind: guest.SymFunc},
		},
		Lines: []guest.LineEntry{
			{Addr: guest.TextBase, Len: 64, File: "hot.c", Line: 10},
			{Addr: guest.TextBase + 64, Len: 64, File: "cold.c", Line: 99},
		},
	}
}

func TestProfilerSamplingAndReport(t *testing.T) {
	p := NewProfiler(1)
	for i := 0; i < 30; i++ {
		p.Sample(guest.TextBase) // hot_loop entry
	}
	for i := 0; i < 10; i++ {
		p.Sample(guest.TextBase + 64) // cold_path
	}
	if p.Total() != 40 {
		t.Fatalf("total = %d", p.Total())
	}
	var buf bytes.Buffer
	if err := p.Report(&buf, testImage(), 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "hot_loop") || !strings.Contains(out, "cold_path") {
		t.Fatalf("symbols missing:\n%s", out)
	}
	if !strings.Contains(out, "hot.c:10") {
		t.Fatalf("line info missing:\n%s", out)
	}
	// hot_loop (75%) must be listed before cold_path (25%).
	if strings.Index(out, "hot_loop") > strings.Index(out, "cold_path") {
		t.Fatalf("not sorted by weight:\n%s", out)
	}
}

func TestProfilerInterval(t *testing.T) {
	p := NewProfiler(4)
	for i := 0; i < 16; i++ {
		p.Sample(0x1000)
	}
	if p.Total() != 4 {
		t.Fatalf("interval sampling took %d samples, want 4", p.Total())
	}
}

func TestProfilerUnresolvedPC(t *testing.T) {
	p := NewProfiler(1)
	p.Sample(0xdead0000)
	var buf bytes.Buffer
	if err := p.Report(&buf, testImage(), 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "?") {
		t.Fatalf("unresolved PC not marked:\n%s", buf.String())
	}
}
