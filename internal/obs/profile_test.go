package obs

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/guest"
)

// testImage builds an unfrozen image with two functions and line info;
// SymbolFor/LineFor only need the tables sorted, which literals below are.
func testImage() *guest.Image {
	return &guest.Image{
		Symbols: []guest.Symbol{
			{Name: "hot_loop", Addr: guest.TextBase, Size: 64, Kind: guest.SymFunc},
			{Name: "cold_path", Addr: guest.TextBase + 64, Size: 64, Kind: guest.SymFunc},
		},
		Lines: []guest.LineEntry{
			{Addr: guest.TextBase, Len: 64, File: "hot.c", Line: 10},
			{Addr: guest.TextBase + 64, Len: 64, File: "cold.c", Line: 99},
		},
	}
}

func TestProfilerSamplingAndReport(t *testing.T) {
	p := NewProfiler(1)
	for i := 0; i < 30; i++ {
		p.Sample(guest.TextBase) // hot_loop entry
	}
	for i := 0; i < 10; i++ {
		p.Sample(guest.TextBase + 64) // cold_path
	}
	if p.Total() != 40 {
		t.Fatalf("total = %d", p.Total())
	}
	var buf bytes.Buffer
	if err := p.Report(&buf, testImage(), 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "hot_loop") || !strings.Contains(out, "cold_path") {
		t.Fatalf("symbols missing:\n%s", out)
	}
	if !strings.Contains(out, "hot.c:10") {
		t.Fatalf("line info missing:\n%s", out)
	}
	// hot_loop (75%) must be listed before cold_path (25%).
	if strings.Index(out, "hot_loop") > strings.Index(out, "cold_path") {
		t.Fatalf("not sorted by weight:\n%s", out)
	}
}

func TestProfilerInterval(t *testing.T) {
	p := NewProfiler(4)
	for i := 0; i < 16; i++ {
		p.Sample(0x1000)
	}
	if p.Total() != 4 {
		t.Fatalf("interval sampling took %d samples, want 4", p.Total())
	}
}

func TestProfilerWeightedSamples(t *testing.T) {
	p := NewProfiler(1)
	p.SampleW(guest.TextBase, 7)    // a 7-instruction superblock
	p.SampleW(guest.TextBase, 7)    // dispatched twice
	p.SampleW(guest.TextBase+64, 3) // a 3-instruction block
	p.SampleW(guest.TextBase+64, 0) // zero-weight fire: ticks, records nothing
	if p.Total() != 17 {
		t.Fatalf("weighted total = %d, want 17", p.Total())
	}
	by := p.BySymbol(testImage())
	if by["hot_loop"] != 14 || by["cold_path"] != 3 {
		t.Fatalf("per-symbol = %v, want hot_loop:14 cold_path:3", by)
	}
}

func TestProfilerWeightedInterval(t *testing.T) {
	// Weight must not advance the block clock: with interval 4, every 4th
	// SampleW fires regardless of the weights seen in between.
	p := NewProfiler(4)
	for i := 0; i < 16; i++ {
		p.SampleW(0x1000, 5)
	}
	if p.Total() != 4*5 {
		t.Fatalf("interval-weighted total = %d, want 20", p.Total())
	}
}

func TestProfilerBySymbolUnresolved(t *testing.T) {
	p := NewProfiler(1)
	p.SampleW(0xdead0000, 2)
	by := p.BySymbol(testImage())
	if by["?"] != 2 {
		t.Fatalf("unresolved bucket = %v, want ?:2", by)
	}
	if got := p.BySymbol(nil); got["?"] != 2 {
		t.Fatalf("nil-image BySymbol = %v, want ?:2", got)
	}
	var nilp *Profiler
	if got := nilp.BySymbol(testImage()); len(got) != 0 {
		t.Fatalf("nil profiler BySymbol = %v, want empty", got)
	}
}

func TestProfilerUnresolvedPC(t *testing.T) {
	p := NewProfiler(1)
	p.Sample(0xdead0000)
	var buf bytes.Buffer
	if err := p.Report(&buf, testImage(), 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "?") {
		t.Fatalf("unresolved PC not marked:\n%s", buf.String())
	}
}
