// Package obs is the observability layer of the DBI framework: a metrics
// registry (counters, gauges, histograms with labels), a structured event
// tracer with pluggable sinks (in-memory ring, JSON-lines, Chrome
// trace_event), and a guest-PC profiler that attributes block-clock time to
// symbols and source lines.
//
// The design follows the hookable/tracer idiom of discrete-event simulators:
// subsystems carry an optional *Hooks pointer that is nil when observability
// is disabled, and every hook call site nil-checks it, so the instrumented
// hot paths (block dispatch, translation) pay only a pointer comparison when
// nothing is attached. All clocks are the machine's deterministic block
// counter, so two runs with the same seed produce byte-identical snapshots
// and traces.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Counter is a monotonically increasing metric. The zero receiver is valid:
// every method nil-checks, so call sites can keep an unconditional pointer
// that is nil while observability is disabled.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Set overwrites the value (used when capturing a subsystem's own counter
// field into the registry at snapshot time).
func (c *Counter) Set(n uint64) {
	if c != nil {
		c.v = n
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a point-in-time value.
type Gauge struct {
	v float64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// DefaultBuckets are power-of-two histogram bounds, suiting the block/IR
// size distributions the framework observes.
var DefaultBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384}

// Histogram counts observations into cumulative-style buckets.
type Histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; last is +Inf
	count  uint64
	sum    float64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.count++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Registry holds named metrics. Lookups memoize, so hot call sites resolve
// their Counter once and then increment through the pointer.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Key renders the canonical metric key: name{k1="v1",k2="v2"} with labels
// sorted by key. Labels are passed as alternating key, value strings.
func Key(name string, labels ...string) string {
	if len(labels) == 0 {
		return name
	}
	if len(labels)%2 != 0 {
		panic("obs: odd label list for " + name)
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns (creating if needed) the counter for name+labels. A nil
// registry returns nil, which is a valid (no-op) Counter receiver.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	k := Key(name, labels...)
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge for name+labels.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	k := Key(name, labels...)
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram for name+labels,
// with DefaultBuckets bounds.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	k := Key(name, labels...)
	h, ok := r.hists[k]
	if !ok {
		h = &Histogram{bounds: DefaultBuckets, counts: make([]uint64, len(DefaultBuckets)+1)}
		r.hists[k] = h
	}
	return h
}

// HistogramSnapshot is the serialized form of a histogram.
type HistogramSnapshot struct {
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds"`
	Buckets []uint64  `json:"buckets"`
}

// Snapshot is a frozen, serializable view of a registry. Map keys are
// canonical metric keys; encoding/json sorts them, so the JSON form is
// deterministic.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes the registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Counters: make(map[string]uint64)}
	if r == nil {
		return s
	}
	for k, c := range r.counters {
		s.Counters[k] = c.Value()
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for k, g := range r.gauges {
			s.Gauges[k] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for k, h := range r.hists {
			s.Histograms[k] = HistogramSnapshot{
				Count:   h.count,
				Sum:     h.sum,
				Bounds:  h.bounds,
				Buckets: append([]uint64(nil), h.counts...),
			}
		}
	}
	return s
}

// Counter looks a counter value up by canonical key (name + optional labels).
func (s Snapshot) Counter(name string, labels ...string) uint64 {
	return s.Counters[Key(name, labels...)]
}

// Gauge looks a gauge value up by canonical key.
func (s Snapshot) Gauge(name string, labels ...string) float64 {
	return s.Gauges[Key(name, labels...)]
}

// WriteJSON serializes the snapshot (indented, deterministic key order).
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText renders "key value" lines sorted by key — the -v statistics
// dump renders from this same snapshot, so text and JSON cannot disagree.
func (s Snapshot) WriteText(w io.Writer) error {
	keys := make([]string, 0, len(s.Counters)+len(s.Gauges))
	for k := range s.Counters {
		keys = append(keys, k)
	}
	for k := range s.Gauges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		var err error
		if v, ok := s.Counters[k]; ok {
			_, err = fmt.Fprintf(w, "%s %d\n", k, v)
		} else {
			_, err = fmt.Fprintf(w, "%s %g\n", k, s.Gauges[k])
		}
		if err != nil {
			return err
		}
	}
	return nil
}
