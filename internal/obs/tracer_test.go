package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRingSinkOrderAndWrap(t *testing.T) {
	ring := NewRingSink(3)
	tr := NewTracer(ring)
	for i := uint64(0); i < 5; i++ {
		tr.Instant(i, 0, "t", "e", nil)
	}
	evs := ring.Events()
	if len(evs) != 3 {
		t.Fatalf("kept %d events", len(evs))
	}
	if evs[0].TS != 2 || evs[2].TS != 4 {
		t.Fatalf("order wrong: %+v", evs)
	}
	if ring.Dropped() != 2 {
		t.Fatalf("dropped = %d", ring.Dropped())
	}
	if tr.Events() != 5 {
		t.Fatalf("tracer events = %d", tr.Events())
	}
}

func TestJSONLSinkLines(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(NewJSONLSink(&buf))
	tr.Begin(1, 2, "omp", "task", map[string]any{"id": uint64(7)})
	tr.End(5, 2, "omp", "task", nil)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	var ev struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		TS   float64 `json:"ts"`
		TID  int     `json:"tid"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Name != "task" || ev.Ph != "B" || ev.TS != 1 || ev.TID != 2 {
		t.Fatalf("event = %+v", ev)
	}
}

// chromeEvents decodes a trace_event array written by ChromeSink.
func chromeEvents(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var evs []map[string]any
	if err := json.Unmarshal(data, &evs); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v\n%s", err, data)
	}
	return evs
}

func TestChromeSinkValidJSONAndBalance(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(NewChromeSink(&buf))
	tr.Begin(0, 0, "omp", "implicit", nil)
	tr.Begin(2, 0, "omp", "task", nil)
	tr.Instant(3, 0, "sched", "steal", nil)
	tr.End(4, 0, "omp", "task", nil)
	tr.Begin(1, 1, "omp", "implicit", nil)
	tr.End(6, 1, "omp", "implicit", nil)
	tr.End(7, 0, "omp", "implicit", nil)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	evs := chromeEvents(t, buf.Bytes())
	if len(evs) != 7 {
		t.Fatalf("events = %d", len(evs))
	}
	// Per-thread: ts monotone nondecreasing, B/E balanced and nested.
	lastTS := map[int]float64{}
	depth := map[int]int{}
	for _, ev := range evs {
		tid := int(ev["tid"].(float64))
		ts := ev["ts"].(float64)
		if ts < lastTS[tid] {
			t.Fatalf("ts went backwards on tid %d: %v", tid, ev)
		}
		lastTS[tid] = ts
		switch ev["ph"] {
		case "B":
			depth[tid]++
		case "E":
			depth[tid]--
			if depth[tid] < 0 {
				t.Fatalf("unbalanced E on tid %d", tid)
			}
		}
	}
	for tid, d := range depth {
		if d != 0 {
			t.Fatalf("tid %d left %d spans open", tid, d)
		}
	}
}

func TestChromeSinkEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeSink(&buf)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	evs := chromeEvents(t, buf.Bytes())
	if len(evs) != 0 {
		t.Fatalf("empty trace decoded to %d events", len(evs))
	}
}

func TestDiagnosticsCounted(t *testing.T) {
	ring := NewRingSink(8)
	tr := NewTracer(ring)
	tr.Diagnostic(3, 1, "unbalanced-task-end", map[string]any{"task": uint64(9)})
	if tr.Diagnostics() != 1 {
		t.Fatalf("diags = %d", tr.Diagnostics())
	}
	evs := ring.Events()
	if len(evs) != 1 || evs[0].Cat != "diag" || evs[0].Phase != PhaseInstant {
		t.Fatalf("diag event = %+v", evs)
	}
}
