package ompt_test

import (
	"testing"

	"repro/internal/dbi"
	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/ompt"
	"repro/internal/vex"
	"repro/internal/vm"
)

// capture is a tool that records every client request it receives.
type capture struct {
	dbi.NopTool
	codes []int32
	args  [][6]uint64
}

func (c *capture) Name() string { return "capture" }
func (c *capture) ClientRequest(t *vm.Thread, code int32, args [6]uint64) uint64 {
	c.codes = append(c.codes, code)
	c.args = append(c.args, args)
	return 1
}
func (c *capture) Instrument(_ *dbi.Core, sb *vex.SuperBlock) *vex.SuperBlock { return sb }

// newBridge builds a minimal machine + core + bridge for event tests.
func newBridge(t *testing.T) (*ompt.Bridge, *capture, *vm.Thread) {
	t.Helper()
	b := gbuild.New()
	f := b.Func("main", "x.c")
	f.Hlt(guest.R0)
	im, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(im, vm.NewHostRegistry(), vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cap := &capture{}
	core := dbi.New(m, cap)
	return &ompt.Bridge{Core: core}, cap, m.Thread(0)
}

// TestBridgeEncodesEveryEvent drives every Events method and checks the
// request codes arrive in order with their arguments.
func TestBridgeEncodesEveryEvent(t *testing.T) {
	br, cap, th := newBridge(t)
	br.ParallelBegin(th, 1, 4, 0x2000)
	br.ImplicitBegin(th, 1, 10, 2)
	br.TaskCreate(th, 11, 10, ompt.FlagUndeferred, 0x3000, 0x50000000)
	br.TaskDepRaw(th, 11, 0x1234, ompt.DepOut)
	br.TaskDependence(th, 7, 11, 0x1234, ompt.DepOut)
	br.TaskBegin(th, 11)
	br.TaskEnd(th, 11)
	br.TaskWaitBegin(th, 10)
	br.TaskWaitEnd(th, 10)
	br.TaskWaitDeps(th, 10, []uint64{7, 11})
	br.TaskGroupBegin(th, 10)
	br.TaskGroupEnd(th, 10)
	br.BarrierBegin(th, 1, 0)
	br.BarrierEnd(th, 1, 1)
	br.CriticalAcquire(th, 9)
	br.CriticalRelease(th, 9)
	br.Release(th, 0x77)
	br.Acquire(th, 0x77)
	br.ImplicitEnd(th, 1, 10)
	br.ParallelEnd(th, 1)

	want := []int32{
		ompt.CRParallelBegin, ompt.CRImplicitBegin, ompt.CRTaskCreate,
		ompt.CRTaskDepAddr, ompt.CRTaskDependence, ompt.CRTaskBegin,
		ompt.CRTaskEnd, ompt.CRTaskWaitBegin, ompt.CRTaskWaitEnd,
		ompt.CRTaskWaitDepPred, ompt.CRTaskWaitDepPred, ompt.CRTaskWaitDepsEnd,
		ompt.CRTaskGroupBegin, ompt.CRTaskGroupEnd,
		ompt.CRBarrierBegin, ompt.CRBarrierEnd,
		ompt.CRCriticalAcquire, ompt.CRCriticalRelease,
		ompt.CRRelease, ompt.CRAcquire,
		ompt.CRImplicitEnd, ompt.CRParallelEnd,
	}
	if len(cap.codes) != len(want) {
		t.Fatalf("got %d requests, want %d", len(cap.codes), len(want))
	}
	for i, w := range want {
		if cap.codes[i] != w {
			t.Errorf("request %d = %#x, want %#x", i, cap.codes[i], w)
		}
	}
	// Spot-check arguments.
	if cap.args[0] != [6]uint64{1, 4, 0x2000, 0, 0, 0} {
		t.Errorf("ParallelBegin args = %v", cap.args[0])
	}
	if cap.args[2] != [6]uint64{11, 10, ompt.FlagUndeferred, 0x3000, 0x50000000, 0} {
		t.Errorf("TaskCreate args = %v", cap.args[2])
	}
	if cap.args[9] != [6]uint64{10, 7, 0, 0, 0, 0} || cap.args[10] != [6]uint64{10, 11, 0, 0, 0, 0} {
		t.Errorf("TaskWaitDeps preds = %v / %v", cap.args[9], cap.args[10])
	}
}

// TestNopEventsIsComplete ensures NopEvents satisfies the interface (compile
// check) and is callable.
func TestNopEventsIsComplete(t *testing.T) {
	var e ompt.Events = ompt.NopEvents{}
	e.ParallelBegin(nil, 0, 0, 0)
	e.TaskWaitDeps(nil, 0, nil)
	e.Release(nil, 0)
	e.Acquire(nil, 0)
}

// TestDepKindNames covers the dependence-kind renderer.
func TestDepKindNames(t *testing.T) {
	want := map[uint64]string{
		ompt.DepIn: "in", ompt.DepOut: "out", ompt.DepInout: "inout",
		ompt.DepMutexinoutset: "mutexinoutset", ompt.DepInoutset: "inoutset",
		99: "?",
	}
	for k, s := range want {
		if ompt.DepKindName(k) != s {
			t.Errorf("%d -> %q", k, ompt.DepKindName(k))
		}
	}
}
