// Package ompt is the tooling interface between the task runtimes and DBI
// tools, modelled on OpenMP's OMPT (paper §III-A): the runtime raises
// callbacks on scheduling events, and the built-in OMPT tool forwards them to
// the loaded tool plugin as Valgrind-style client requests. Every analysis
// tool in this repository (Taskgrind and the baselines) consumes the same
// request stream, mirroring how Archer/TaskSanitizer/Taskgrind all sit on
// OMPT in the paper.
package ompt

import (
	"repro/internal/dbi"
	"repro/internal/vm"
)

// Client-request codes carried by OpCreq (guest-issued) or forwarded by the
// bridge (runtime-issued). The 0x4F00 base namespaces them ("O" "MP").
const (
	// CRParallelBegin: args[0]=regionID, args[1]=numThreads, args[2]=microtask fn.
	CRParallelBegin int32 = 0x4f00 + iota
	// CRParallelEnd: args[0]=regionID.
	CRParallelEnd
	// CRImplicitBegin: args[0]=regionID, args[1]=taskID, args[2]=threadNum.
	CRImplicitBegin
	// CRImplicitEnd: args[0]=regionID, args[1]=taskID.
	CRImplicitEnd
	// CRTaskCreate: args[0]=taskID, args[1]=parentTaskID, args[2]=flags,
	// args[3]=task fn address, args[4]=descriptor guest address.
	CRTaskCreate
	// CRTaskDependence: args[0]=predTaskID, args[1]=succTaskID,
	// args[2]=address, args[3]=dependence kind.
	CRTaskDependence
	// CRTaskBegin: args[0]=taskID. The issuing thread starts executing it.
	CRTaskBegin
	// CRTaskEnd: args[0]=taskID.
	CRTaskEnd
	// CRTaskWaitBegin / CRTaskWaitEnd: args[0]=waiting taskID.
	CRTaskWaitBegin
	CRTaskWaitEnd
	// CRTaskGroupBegin / CRTaskGroupEnd: args[0]=owning taskID.
	CRTaskGroupBegin
	CRTaskGroupEnd
	// CRBarrierBegin / CRBarrierEnd: args[0]=regionID, args[1]=generation.
	CRBarrierBegin
	CRBarrierEnd
	// CRCriticalAcquire / CRCriticalRelease: args[0]=lockID.
	CRCriticalAcquire
	CRCriticalRelease
	// CRAssumeDeferrable: args[0]=0|1. The §V-B source annotation telling
	// Taskgrind that tasks are semantically deferrable even when the
	// runtime serializes them (single-thread undeferred execution).
	CRAssumeDeferrable
	// CRDetachFulfill: args[0]=taskID whose detach event is fulfilled.
	CRDetachFulfill
	// CRTLSGenBump: args[0]=new generation; the issuing thread's DTV
	// changed (models TLS reallocation, §IV-C).
	CRTLSGenBump
	// CRTaskDepAddr: args[0]=taskID, args[1]=address, args[2]=kind — one
	// raw dependence entry of a task, before sibling matching. Baseline
	// simulators that re-match dependences globally consume these.
	CRTaskDepAddr
	// CRTaskWaitDepPred: args[0]=waiting taskID, args[1]=predecessor
	// taskID — one dependence a `taskwait depend(...)` waited for.
	CRTaskWaitDepPred
	// CRTaskWaitDepsEnd: args[0]=waiting taskID — a dependent taskwait
	// (OpenMP 5.0) completed.
	CRTaskWaitDepsEnd
	// CRRelease / CRAcquire: args[0]=token — a generic happens-before
	// release/acquire pair, used by synchronization primitives outside
	// OpenMP's vocabulary (Qthreads full/empty bits). The segment at the
	// release happens-before segments after a matching acquire.
	CRRelease
	CRAcquire
	// CRMutexAcquire / CRMutexRelease: args[0]=guest address of the mutex
	// descriptor. Guest-level mutexes (omp_mutex_*): the descriptor lives in
	// guest memory like the task deques, so the lock word itself is a
	// tool-visible location.
	CRMutexAcquire
	CRMutexRelease
	// CRCondWait: args[0]=condvar guest address, args[1]=mutex guest
	// address — raised on the waiter when it returns from a signalled wait
	// (the happens-before acquire side). Spurious wakeups do not raise it.
	CRCondWait
	// CRCondSignal / CRCondBroadcast: args[0]=condvar guest address — the
	// happens-before release side.
	CRCondSignal
	CRCondBroadcast
)

// Task flag bits (CRTaskCreate args[2]).
const (
	FlagUndeferred uint64 = 1 << iota
	FlagMergeable
	FlagDetached
	FlagUntied
	FlagFinal
	FlagImplicit
	// FlagDeferrableAnnotated marks tasks created while the §V-B
	// "assume deferrable" annotation was active.
	FlagDeferrableAnnotated
	// FlagIfZero marks tasks made undeferred by an if(0)/final clause
	// (as opposed to team serialization).
	FlagIfZero
)

// Dependence kinds (CRTaskDependence args[3]).
const (
	DepIn uint64 = 1 + iota
	DepOut
	DepInout
	DepMutexinoutset
	DepInoutset
)

// DepKindName renders a dependence kind.
func DepKindName(k uint64) string {
	switch k {
	case DepIn:
		return "in"
	case DepOut:
		return "out"
	case DepInout:
		return "inout"
	case DepMutexinoutset:
		return "mutexinoutset"
	case DepInoutset:
		return "inoutset"
	}
	return "?"
}

// Events is the callback set a runtime raises; it mirrors the OMPT callback
// table registered by an OMPT tool.
type Events interface {
	ParallelBegin(t *vm.Thread, regionID uint64, numThreads int, fnAddr uint64)
	ParallelEnd(t *vm.Thread, regionID uint64)
	ImplicitBegin(t *vm.Thread, regionID, taskID uint64, threadNum int)
	ImplicitEnd(t *vm.Thread, regionID, taskID uint64)
	TaskCreate(t *vm.Thread, taskID, parentID, flags, fnAddr, descAddr uint64)
	TaskDependence(t *vm.Thread, predID, succID, addr, kind uint64)
	TaskDepRaw(t *vm.Thread, taskID, addr, kind uint64)
	TaskBegin(t *vm.Thread, taskID uint64)
	TaskEnd(t *vm.Thread, taskID uint64)
	TaskWaitBegin(t *vm.Thread, taskID uint64)
	TaskWaitEnd(t *vm.Thread, taskID uint64)
	TaskWaitDeps(t *vm.Thread, taskID uint64, preds []uint64)
	TaskGroupBegin(t *vm.Thread, taskID uint64)
	TaskGroupEnd(t *vm.Thread, taskID uint64)
	BarrierBegin(t *vm.Thread, regionID, gen uint64)
	BarrierEnd(t *vm.Thread, regionID, gen uint64)
	CriticalAcquire(t *vm.Thread, lockID uint64)
	CriticalRelease(t *vm.Thread, lockID uint64)
	MutexAcquire(t *vm.Thread, addr uint64)
	MutexRelease(t *vm.Thread, addr uint64)
	CondWait(t *vm.Thread, cond, mutex uint64)
	CondSignal(t *vm.Thread, cond uint64)
	CondBroadcast(t *vm.Thread, cond uint64)
	Release(t *vm.Thread, token uint64)
	Acquire(t *vm.Thread, token uint64)
}

// NopEvents is an embeddable no-op Events implementation.
type NopEvents struct{}

// ParallelBegin implements Events.
func (NopEvents) ParallelBegin(*vm.Thread, uint64, int, uint64) {}

// ParallelEnd implements Events.
func (NopEvents) ParallelEnd(*vm.Thread, uint64) {}

// ImplicitBegin implements Events.
func (NopEvents) ImplicitBegin(*vm.Thread, uint64, uint64, int) {}

// ImplicitEnd implements Events.
func (NopEvents) ImplicitEnd(*vm.Thread, uint64, uint64) {}

// TaskCreate implements Events.
func (NopEvents) TaskCreate(*vm.Thread, uint64, uint64, uint64, uint64, uint64) {}

// TaskDependence implements Events.
func (NopEvents) TaskDependence(*vm.Thread, uint64, uint64, uint64, uint64) {}

// TaskDepRaw implements Events.
func (NopEvents) TaskDepRaw(*vm.Thread, uint64, uint64, uint64) {}

// TaskBegin implements Events.
func (NopEvents) TaskBegin(*vm.Thread, uint64) {}

// TaskEnd implements Events.
func (NopEvents) TaskEnd(*vm.Thread, uint64) {}

// TaskWaitBegin implements Events.
func (NopEvents) TaskWaitBegin(*vm.Thread, uint64) {}

// TaskWaitEnd implements Events.
func (NopEvents) TaskWaitEnd(*vm.Thread, uint64) {}

// TaskWaitDeps implements Events.
func (NopEvents) TaskWaitDeps(*vm.Thread, uint64, []uint64) {}

// TaskGroupBegin implements Events.
func (NopEvents) TaskGroupBegin(*vm.Thread, uint64) {}

// TaskGroupEnd implements Events.
func (NopEvents) TaskGroupEnd(*vm.Thread, uint64) {}

// BarrierBegin implements Events.
func (NopEvents) BarrierBegin(*vm.Thread, uint64, uint64) {}

// BarrierEnd implements Events.
func (NopEvents) BarrierEnd(*vm.Thread, uint64, uint64) {}

// CriticalAcquire implements Events.
func (NopEvents) CriticalAcquire(*vm.Thread, uint64) {}

// CriticalRelease implements Events.
func (NopEvents) CriticalRelease(*vm.Thread, uint64) {}

// MutexAcquire implements Events.
func (NopEvents) MutexAcquire(*vm.Thread, uint64) {}

// MutexRelease implements Events.
func (NopEvents) MutexRelease(*vm.Thread, uint64) {}

// CondWait implements Events.
func (NopEvents) CondWait(*vm.Thread, uint64, uint64) {}

// CondSignal implements Events.
func (NopEvents) CondSignal(*vm.Thread, uint64) {}

// CondBroadcast implements Events.
func (NopEvents) CondBroadcast(*vm.Thread, uint64) {}

// Release implements Events.
func (NopEvents) Release(*vm.Thread, uint64) {}

// Acquire implements Events.
func (NopEvents) Acquire(*vm.Thread, uint64) {}

// Bridge is the built-in OMPT tool: it converts runtime callbacks into
// client requests delivered to the loaded DBI tool plugin. It is injected
// automatically when a tool is present (paper: "the OMPT-tool is
// automatically injected into the instrumented program by Taskgrind").
type Bridge struct {
	Core *dbi.Core
}

var _ Events = (*Bridge)(nil)

func (b *Bridge) req(t *vm.Thread, code int32, args ...uint64) {
	var a [6]uint64
	copy(a[:], args)
	b.Core.ClientRequestFromHost(t, code, a)
}

// ParallelBegin implements Events.
func (b *Bridge) ParallelBegin(t *vm.Thread, regionID uint64, n int, fnAddr uint64) {
	b.req(t, CRParallelBegin, regionID, uint64(n), fnAddr)
}

// ParallelEnd implements Events.
func (b *Bridge) ParallelEnd(t *vm.Thread, regionID uint64) {
	b.req(t, CRParallelEnd, regionID)
}

// ImplicitBegin implements Events.
func (b *Bridge) ImplicitBegin(t *vm.Thread, regionID, taskID uint64, threadNum int) {
	b.req(t, CRImplicitBegin, regionID, taskID, uint64(threadNum))
}

// ImplicitEnd implements Events.
func (b *Bridge) ImplicitEnd(t *vm.Thread, regionID, taskID uint64) {
	b.req(t, CRImplicitEnd, regionID, taskID)
}

// TaskCreate implements Events.
func (b *Bridge) TaskCreate(t *vm.Thread, taskID, parentID, flags, fnAddr, descAddr uint64) {
	b.req(t, CRTaskCreate, taskID, parentID, flags, fnAddr, descAddr)
}

// TaskDependence implements Events.
func (b *Bridge) TaskDependence(t *vm.Thread, predID, succID, addr, kind uint64) {
	b.req(t, CRTaskDependence, predID, succID, addr, kind)
}

// TaskDepRaw implements Events.
func (b *Bridge) TaskDepRaw(t *vm.Thread, taskID, addr, kind uint64) {
	b.req(t, CRTaskDepAddr, taskID, addr, kind)
}

// TaskBegin implements Events.
func (b *Bridge) TaskBegin(t *vm.Thread, taskID uint64) { b.req(t, CRTaskBegin, taskID) }

// TaskEnd implements Events.
func (b *Bridge) TaskEnd(t *vm.Thread, taskID uint64) { b.req(t, CRTaskEnd, taskID) }

// TaskWaitBegin implements Events.
func (b *Bridge) TaskWaitBegin(t *vm.Thread, taskID uint64) { b.req(t, CRTaskWaitBegin, taskID) }

// TaskWaitEnd implements Events.
func (b *Bridge) TaskWaitEnd(t *vm.Thread, taskID uint64) { b.req(t, CRTaskWaitEnd, taskID) }

// TaskWaitDeps implements Events.
func (b *Bridge) TaskWaitDeps(t *vm.Thread, taskID uint64, preds []uint64) {
	for _, p := range preds {
		b.req(t, CRTaskWaitDepPred, taskID, p)
	}
	b.req(t, CRTaskWaitDepsEnd, taskID)
}

// TaskGroupBegin implements Events.
func (b *Bridge) TaskGroupBegin(t *vm.Thread, taskID uint64) { b.req(t, CRTaskGroupBegin, taskID) }

// TaskGroupEnd implements Events.
func (b *Bridge) TaskGroupEnd(t *vm.Thread, taskID uint64) { b.req(t, CRTaskGroupEnd, taskID) }

// BarrierBegin implements Events.
func (b *Bridge) BarrierBegin(t *vm.Thread, regionID, gen uint64) {
	b.req(t, CRBarrierBegin, regionID, gen)
}

// BarrierEnd implements Events.
func (b *Bridge) BarrierEnd(t *vm.Thread, regionID, gen uint64) {
	b.req(t, CRBarrierEnd, regionID, gen)
}

// CriticalAcquire implements Events.
func (b *Bridge) CriticalAcquire(t *vm.Thread, lockID uint64) {
	b.req(t, CRCriticalAcquire, lockID)
}

// CriticalRelease implements Events.
func (b *Bridge) CriticalRelease(t *vm.Thread, lockID uint64) {
	b.req(t, CRCriticalRelease, lockID)
}

// MutexAcquire implements Events.
func (b *Bridge) MutexAcquire(t *vm.Thread, addr uint64) { b.req(t, CRMutexAcquire, addr) }

// MutexRelease implements Events.
func (b *Bridge) MutexRelease(t *vm.Thread, addr uint64) { b.req(t, CRMutexRelease, addr) }

// CondWait implements Events.
func (b *Bridge) CondWait(t *vm.Thread, cond, mutex uint64) { b.req(t, CRCondWait, cond, mutex) }

// CondSignal implements Events.
func (b *Bridge) CondSignal(t *vm.Thread, cond uint64) { b.req(t, CRCondSignal, cond) }

// CondBroadcast implements Events.
func (b *Bridge) CondBroadcast(t *vm.Thread, cond uint64) { b.req(t, CRCondBroadcast, cond) }

// Release implements Events.
func (b *Bridge) Release(t *vm.Thread, token uint64) { b.req(t, CRRelease, token) }

// Acquire implements Events.
func (b *Bridge) Acquire(t *vm.Thread, token uint64) { b.req(t, CRAcquire, token) }
