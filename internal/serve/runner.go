package serve

// Per-job execution: each admitted job runs one attempt at a time on a
// worker, under its own cancellation context and wall budget. Failures are
// contained by the harness (supervised jobs additionally verify crashes by
// replay and degrade host panics to the IR oracle) and become the job's
// result; transient taxonomies re-enter the queue after backoff.

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dbi"
	"repro/internal/faultinject"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/obs/store"
	"repro/internal/progs"
	"repro/internal/tools/archer"
	"repro/internal/tools/memcheck"
	"repro/internal/tools/romp"
	"repro/internal/tools/toolreg"
	"repro/internal/vm"
)

// transient reports whether a failure taxonomy is worth retrying: a host
// panic or a watchdog trip can be load- or schedule-coupled, while a guest
// fault, deadlock or divergence is a deterministic property of the
// configuration — retrying those only burns workers.
func transient(tax string) bool {
	return tax == harness.TaxPanic || tax == harness.TaxTimeout
}

// maxRetriesFor resolves a job's retry budget (spec override, -1 disables).
func (s *Server) maxRetriesFor(j *Job) int {
	switch {
	case j.Spec.MaxRetries < 0:
		return 0
	case j.Spec.MaxRetries > 0:
		return j.Spec.MaxRetries
	}
	return s.opts.MaxRetries
}

// runJob executes one attempt of j on the calling worker and finalizes or
// schedules a retry.
func (s *Server) runJob(j *Job) {
	s.inflight.Add(1)
	defer s.inflight.Done()
	now := time.Now()
	s.mu.Lock()
	if j.status.Terminal() {
		s.mu.Unlock()
		return
	}
	if j.canceled {
		j.status = StatusCanceled
		j.finished = now
		s.canceledJobs.Add(1)
		s.mu.Unlock()
		return
	}
	if j.started.IsZero() {
		j.started = now
		j.queueWait = now.Sub(j.submitted)
		for w := int64(j.queueWait); ; {
			cur := s.queueWaitMax.Load()
			if w <= cur || s.queueWaitMax.CompareAndSwap(cur, w) {
				break
			}
		}
	}
	j.status = StatusRunning
	j.attempts++
	ctx, cancel := context.WithCancel(s.ctx)
	j.cancel = cancel
	s.mu.Unlock()

	s.running.Add(1)
	res := s.runAttempt(ctx, j)
	cancel()
	s.running.Add(-1)

	s.finalize(j, res)
}

// finalize applies one attempt's result: terminal state, retry scheduling,
// schedule-sensitivity detection, counters.
func (s *Server) finalize(j *Job, res JobResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.cancel = nil
	res.Attempts = j.attempts
	j.taxSeen = append(j.taxSeen, res.Verdict)
	// A job whose attempts disagree is schedule-sensitive: the outcome
	// depends on something outside the replayable configuration, and the
	// replay token is the only stable currency for it.
	for _, t := range j.taxSeen {
		if t != j.taxSeen[0] {
			res.ScheduleSensitive = true
			break
		}
	}
	finish := func(st Status) {
		j.status = st
		j.result = &res
		j.finished = time.Now()
		if res.ScheduleSensitive {
			s.schedSens.Add(1)
		}
	}
	switch {
	case res.Verdict == harness.TaxCanceled || j.canceled:
		finish(StatusCanceled)
		s.canceledJobs.Add(1)
	case res.Verdict == store.VerdictOK:
		finish(StatusDone)
		s.completed.Add(1)
	case transient(res.Verdict) && j.attempts <= s.maxRetriesFor(j):
		if s.draining.Load() {
			// Retries do not outlive a drain: persist the job for the
			// next daemon instead of backing off into a stopping pool.
			s.parkLocked(j)
			return
		}
		j.status = StatusRetryWait
		j.result = &res // interim: visible while backing off
		s.retried.Add(1)
		d := s.backoffFor(j.attempts)
		s.retryWG.Add(1)
		j.retryStop = time.AfterFunc(d, func() {
			defer s.retryWG.Done()
			s.requeue(j)
		})
	default:
		finish(StatusFailed)
		s.quarantined.Add(1)
	}
}

// requeue returns a backed-off job to the queue (or parks/cancels it if the
// world changed during the wait).
func (s *Server) requeue(j *Job) {
	s.mu.Lock()
	j.retryStop = nil
	if j.status.Terminal() {
		s.mu.Unlock()
		return
	}
	if j.canceled {
		j.status = StatusCanceled
		j.finished = time.Now()
		s.canceledJobs.Add(1)
		s.mu.Unlock()
		return
	}
	if s.draining.Load() {
		s.parkLocked(j)
		s.mu.Unlock()
		return
	}
	j.status = StatusQueued
	s.mu.Unlock()
	s.retriesBusy.Add(1)
	defer s.retriesBusy.Add(-1)
	select {
	case s.queue <- j:
	case <-s.ctx.Done():
		s.mu.Lock()
		s.parkLocked(j)
		s.mu.Unlock()
	}
}

// runRecord is an optional per-job run-store recording (Options.Record).
type runRecord struct {
	rw  *store.RunWriter
	reg *obs.Registry
}

func (rr *runRecord) abort() {
	if rr != nil {
		rr.rw.Abort()
	}
}

// finish completes the recorded run with the surviving attempt's state.
func (rr *runRecord) finish(inst *harness.Instance, res harness.Result, out JobResult) {
	if rr == nil {
		return
	}
	if inst != nil {
		inst.CaptureMetrics(rr.reg)
		rr.rw.SetWork(res.GuestInstrs, inst.M.BlocksExecuted, uint64(res.Wall))
		if tg, ok := inst.Core.Tool().(*core.Taskgrind); ok {
			for _, row := range store.RacesFromSet(&tg.Reports) {
				rr.rw.AddRace(row)
			}
		}
	}
	rr.rw.SetCounters(rr.reg.Snapshot().Counters)
	rr.rw.SetReplayToken(out.ReplayToken)
	rr.rw.SetReproduced(out.Reproduced)
	rr.rw.SetResult(out.Verdict, out.Reports, out.Err)
	_ = rr.rw.Finish()
}

// runAttempt executes one attempt of j under ctx, fully contained: every
// failure mode comes back as a classified JobResult, never as a panic or a
// daemon exit.
func (s *Server) runAttempt(ctx context.Context, j *Job) JobResult {
	sp := j.Spec
	out := JobResult{ReplayToken: j.Token}
	fail := func(tax string, err error) JobResult {
		out.Verdict = tax
		out.Err = err.Error()
		return out
	}
	deliv, _ := dbi.ParseDelivery(sp.Delivery)
	timeout := time.Duration(sp.TimeoutMS) * time.Millisecond
	if timeout <= 0 {
		timeout = s.opts.JobTimeout
	}
	b, err := progs.Build(sp.Prog, sp.Lulesh())
	if err != nil {
		return fail(harness.TaxError, err)
	}
	im, err := b.Link()
	if err != nil {
		return fail(harness.TaxError, err)
	}
	var rr *runRecord
	if s.opts.Record != nil {
		rr = &runRecord{reg: obs.NewRegistry()}
		rr.rw = s.opts.Record.Begin(store.RunHeader{
			Prog: sp.Prog, Tool: sp.Tool, Engine: sp.Engine,
			Delivery: deliv.String(), Seed: sp.Seed, Threads: sp.Threads,
		})
	}

	// The attempt factory: fresh tool, injector and output buffer per
	// (re-)execution, mirroring the CLI's makeSetup — supervised runs may
	// build record, replay and fallback instances from it. Only the first
	// build attaches the recording registry, so replays don't double-count.
	outBuf := &bytes.Buffer{}
	var countFn func() int
	builds := 0
	factory := func() harness.Setup {
		tl, count, _ := toolreg.Make(sp.Tool)
		countFn = count
		inj, _ := faultinject.ParseSpec(sp.Inject, sp.InjectSeed)
		outBuf.Reset()
		st := harness.Setup{
			Image: im, Tool: tl, Seed: sp.Seed, Threads: sp.Threads,
			Stdout: outBuf, Inject: inj, LenientMem: sp.Lenient,
			Engine: sp.Engine, Extend: sp.Extend, Delivery: deliv,
			TStore: s.opts.TCache,
			RunOpts: vm.RunOpts{
				MaxBlocks: sp.MaxBlocks, MaxInstrs: sp.MaxInstrs, Timeout: timeout,
				ProgressEvery: s.opts.ProgressEvery,
				OnProgress: func(blocks, instrs uint64) {
					j.progBlocks.Store(blocks)
					j.progInstrs.Store(instrs)
				},
			},
		}
		if rr != nil && builds == 0 {
			st.Obs = &obs.Hooks{Metrics: rr.reg}
		}
		builds++
		return st
	}

	var res harness.Result
	var inst *harness.Instance
	if sp.Supervised {
		sup, serr := harness.SuperviseCtx(ctx, factory, harness.SuperviseOpts{
			OnPanic: harness.OnPanicFallback, VerifyCrash: true, Token: j.Token,
		})
		if serr != nil {
			rr.abort()
			return fail(harness.TaxError, serr)
		}
		res, inst = sup.Result, sup.Inst
		out.Reproduced, out.FellBack = sup.Reproduced, sup.FellBack
		switch {
		case res.Err != nil:
			out.Verdict = sup.Taxonomy
		case sup.Taxonomy == harness.TaxDivergence:
			// The run completed under the oracle, but the configured engine
			// departed from the recorded timeline first: that is a finding,
			// not a success.
			out.Verdict = harness.TaxDivergence
			out.Err = fmt.Sprintf("engine divergence in slice window [%d,%d] (journal-verified)",
				sup.Window[0], sup.Window[1])
		default:
			out.Verdict = store.VerdictOK
		}
	} else {
		inst, err = harness.New(factory())
		if err != nil {
			rr.abort()
			return fail(harness.TaxError, err)
		}
		res = inst.RunCtx(ctx)
		if res.Err != nil {
			out.Verdict = harness.Classify(res.Err)
		} else {
			out.Verdict = store.VerdictOK
		}
	}

	// Settle the live progress counters to the attempt's final numbers (a
	// short run can finish before its first ProgressEvery tick).
	j.progBlocks.Store(inst.M.BlocksExecuted)
	j.progInstrs.Store(res.GuestInstrs)
	out.GuestInstrs = res.GuestInstrs
	out.WallMS = float64(res.Wall) / float64(time.Millisecond)
	if res.Err != nil && out.Err == "" {
		out.Err = res.Err.Error()
	}
	if res.Crash != nil {
		out.Crash = res.Crash.Render(inst.M.Image)
	}
	if out.Verdict == store.VerdictOK {
		out.Reports = countFn()
		out.Output = outBuf.String() + renderReports(inst.Core.Tool(), out.Reports)
	}
	rr.finish(inst, res, out)
	return out
}

// renderReports renders a surviving tool's findings — the same per-tool
// switch the CLI prints, so a job's Output matches the equivalent
// `taskgrind` invocation.
func renderReports(tl dbi.Tool, count int) string {
	switch tt := tl.(type) {
	case *core.Taskgrind:
		if tt.Opt.IgnoreMutexinoutsetDeps { // the ROMP configuration
			return romp.Format(&tt.Reports)
		}
		return tt.Reports.String()
	case *archer.Archer:
		return tt.String()
	case *memcheck.Memcheck:
		return tt.String()
	}
	return fmt.Sprintf("== %d report(s)\n", count)
}
