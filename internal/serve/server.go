package serve

// The daemon core: bounded job queue with admission control, worker pool,
// retry with exponential backoff + deterministic jitter, cancellation,
// graceful drain with queue-state persistence, and the robustness counters
// published through the obs registry.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/store"
	"repro/internal/tstore"
)

// Sentinel admission errors; the HTTP layer maps them to 429/503.
var (
	// ErrQueueFull sheds a submission the bounded queue cannot hold.
	ErrQueueFull = errors.New("serve: queue full")
	// ErrDraining rejects submissions while the server drains.
	ErrDraining = errors.New("serve: draining, not admitting jobs")
	// ErrUnknownJob reports a job id that was never admitted.
	ErrUnknownJob = errors.New("serve: unknown job")
)

// Options configures a Server. Zero values take the documented defaults.
type Options struct {
	// Workers bounds concurrently running jobs (default 4).
	Workers int
	// QueueDepth bounds admitted-but-not-running jobs (default 64);
	// submissions beyond it are shed with ErrQueueFull.
	QueueDepth int
	// MaxRetries bounds automatic retries of transient failures per job
	// (default 2); JobSpec.MaxRetries overrides per job.
	MaxRetries int
	// RetryBase is the first backoff delay (default 25ms); each retry
	// doubles it up to RetryMax (default 2s), plus up to 50% deterministic
	// jitter.
	RetryBase time.Duration
	RetryMax  time.Duration
	// JobTimeout is the default per-job wall budget when the spec carries
	// none (default 30s). It rides the job's context, so it also bounds
	// supervised replay/fallback attempts.
	JobTimeout time.Duration
	// DrainTimeout bounds Drain's wait for in-flight jobs before it
	// cancels them (default 30s).
	DrainTimeout time.Duration
	// StatePath, when set, persists still-queued jobs at drain time and
	// resumes them on the next Start.
	StatePath string
	// Record, when set, appends every job's run to the shared columnar
	// run store (the same store `taskgrind query` reads).
	Record *store.Writer
	// Seed drives the backoff jitter PRNG (default 1). Deterministic so
	// load tests are reproducible.
	Seed uint64
	// ProgressEvery is the job progress-tick cadence in timeslices
	// (default 64).
	ProgressEvery int
	// TCache shares one content-addressed translation cache across every
	// job the daemon runs: repeat jobs on the same program under the same
	// tool reuse each other's translations. Nil builds a daemon-private
	// in-memory cache; pass one with a directory for a persistent tier
	// that survives restarts.
	TCache *tstore.Cache
}

// withDefaults fills zero options.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 2
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 25 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 2 * time.Second
	}
	if o.JobTimeout <= 0 {
		o.JobTimeout = 30 * time.Second
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 30 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ProgressEvery <= 0 {
		o.ProgressEvery = 64
	}
	if o.TCache == nil {
		o.TCache = tstore.NewCache("")
	}
	return o
}

// Server is the analysis daemon core. Create with New, launch workers with
// Start, stop with Drain (graceful) or Stop (immediate).
type Server struct {
	opts Options

	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // admission order, for listing
	groups map[string][]*Job
	jobSeq int
	grpSeq int
	rng    uint64 // backoff jitter PRNG (xorshift64*)
	parked []JobSpec

	queue    chan *Job
	workers  sync.WaitGroup
	inflight sync.WaitGroup
	retryWG  sync.WaitGroup // pending backoff timers + their re-enqueues
	started  bool
	draining atomic.Bool

	// Robustness counters (satellite: published through the obs registry).
	admitted      atomic.Uint64
	shed          atomic.Uint64
	retried       atomic.Uint64
	quarantined   atomic.Uint64
	completed     atomic.Uint64
	canceledJobs  atomic.Uint64
	schedSens     atomic.Uint64
	resumed       atomic.Uint64
	running       atomic.Int64
	drainNanos    atomic.Int64
	queueWaitMax  atomic.Int64
	retriesBusy   atomic.Int64 // retry goroutines blocked on a full queue
	parkedAtDrain atomic.Uint64
	stateCorrupt  atomic.Uint64 // corrupt -state files quarantined at start
}

// New builds a server (workers not yet started).
func New(opts Options) *Server {
	opts = opts.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		opts:   opts,
		ctx:    ctx,
		cancel: cancel,
		jobs:   make(map[string]*Job),
		groups: make(map[string][]*Job),
		rng:    opts.Seed | 1,
		queue:  make(chan *Job, opts.QueueDepth),
	}
}

// Start launches the worker pool and, when StatePath holds a persisted
// queue from a drained predecessor, resumes those jobs first.
func (s *Server) Start() error {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return errors.New("serve: already started")
	}
	s.started = true
	s.mu.Unlock()
	if err := s.resumeState(); err != nil {
		return err
	}
	for i := 0; i < s.opts.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return nil
}

// jitter draws the next PRNG value (xorshift64*, the vm scheduler's
// generator) — deterministic backoff jitter for reproducible load tests.
func (s *Server) jitter() uint64 {
	x := s.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	s.rng = x
	return x * 2685821657736338717
}

// backoffFor computes the attempt'th retry delay: RetryBase doubled per
// prior retry, capped at RetryMax, plus up to 50% jitter. Caller holds
// s.mu (the jitter PRNG is mutex-guarded state).
func (s *Server) backoffFor(attempt int) time.Duration {
	d := s.opts.RetryBase << uint(attempt-1)
	if d > s.opts.RetryMax || d <= 0 {
		d = s.opts.RetryMax
	}
	return d + time.Duration(s.jitter()%uint64(d/2+1))
}

// Submit validates, normalizes and admits a spec. A Seeds>1 spec expands
// into one job per seed sharing a group; admission is all-or-nothing, so a
// sweep never half-enters a nearly-full queue. Returns ErrQueueFull (shed;
// callers should retry later) or ErrDraining.
func (s *Server) Submit(spec JobSpec) ([]*Job, error) {
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if s.draining.Load() {
		return nil, ErrDraining
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := spec.Seeds
	if free := cap(s.queue) - len(s.queue); free < n {
		s.shed.Add(uint64(n))
		return nil, fmt.Errorf("%w: %d slot(s) free, %d needed", ErrQueueFull, free, n)
	}
	group := ""
	if n > 1 {
		s.grpSeq++
		group = fmt.Sprintf("g%04d", s.grpSeq)
	}
	jobs := make([]*Job, 0, n)
	for i := 0; i < n; i++ {
		js := spec
		js.Seeds = 1
		js.Seed = spec.Seed + uint64(i)
		s.jobSeq++
		j := &Job{
			ID:        fmt.Sprintf("j%06d", s.jobSeq),
			Group:     group,
			Spec:      js,
			Token:     js.Config().Token(),
			status:    StatusQueued,
			submitted: time.Now(),
		}
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		if group != "" {
			s.groups[group] = append(s.groups[group], j)
		}
		jobs = append(jobs, j)
		s.queue <- j // capacity checked above; sends are serialized by s.mu
	}
	s.admitted.Add(uint64(n))
	return jobs, nil
}

// worker pulls jobs until the server stops.
func (s *Server) worker() {
	defer s.workers.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case j := <-s.queue:
			if s.draining.Load() {
				s.park(j)
				continue
			}
			s.runJob(j)
		}
	}
}

// park records a job still queued at drain time for state persistence.
func (s *Server) park(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.parkLocked(j)
}

// parkLocked parks under the caller's lock.
func (s *Server) parkLocked(j *Job) {
	if j.status.Terminal() {
		return
	}
	if j.canceled {
		j.status = StatusCanceled
		j.finished = time.Now()
		s.canceledJobs.Add(1)
		return
	}
	j.status = StatusParked
	j.finished = time.Now()
	s.parked = append(s.parked, j.Spec)
	s.parkedAtDrain.Add(1)
}

// Cancel stops a job: a queued job is marked and skipped by its worker, a
// backoff retry is aborted, and a running job's context is canceled — the
// guest stops within one timeslice.
func (s *Server) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return ErrUnknownJob
	}
	if j.status.Terminal() {
		s.mu.Unlock()
		return nil
	}
	j.canceled = true
	if j.retryStop != nil && j.retryStop.Stop() {
		// The backoff timer will never fire: finalize here.
		j.retryStop = nil
		s.retryWG.Done()
		j.status = StatusCanceled
		j.finished = time.Now()
		s.canceledJobs.Add(1)
	}
	cancel := j.cancel
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return nil
}

// Job returns one job's view.
func (s *Server) Job(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, ErrUnknownJob
	}
	return j.view(), nil
}

// Jobs lists every job's view in admission order; status/group filter when
// non-empty.
func (s *Server) Jobs(status Status, group string) []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		if status != "" && j.status != status {
			continue
		}
		if group != "" && j.Group != group {
			continue
		}
		out = append(out, j.view())
	}
	return out
}

// Group returns a sweep group's member views, in seed order.
func (s *Server) Group(id string) ([]JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	jobs, ok := s.groups[id]
	if !ok {
		return nil, fmt.Errorf("%w: group %q", ErrUnknownJob, id)
	}
	out := make([]JobView, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.view())
	}
	return out, nil
}

// Healthy reports liveness: true as long as the server's control loop
// exists. Contained job failures never flip it — that is the point.
func (s *Server) Healthy() bool { return s.ctx.Err() == nil }

// Ready reports whether submissions are currently admitted.
func (s *Server) Ready() bool { return !s.draining.Load() && s.ctx.Err() == nil }

// QueueDepth is the current number of admitted-but-not-running jobs.
func (s *Server) QueueDepth() int { return len(s.queue) }

// PublishMetrics copies the daemon's robustness counters into the registry
// — the same snapshot idiom as harness.CaptureMetrics, so `/metrics`, the
// daemon's -v dump, and tests all read one source of truth.
func (s *Server) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("serve_jobs_admitted_total").Set(s.admitted.Load())
	reg.Counter("serve_jobs_shed_total").Set(s.shed.Load())
	reg.Counter("serve_jobs_retried_total").Set(s.retried.Load())
	reg.Counter("serve_jobs_quarantined_total").Set(s.quarantined.Load())
	reg.Counter("serve_jobs_completed_total").Set(s.completed.Load())
	reg.Counter("serve_jobs_canceled_total").Set(s.canceledJobs.Load())
	reg.Counter("serve_jobs_schedule_sensitive_total").Set(s.schedSens.Load())
	reg.Counter("serve_jobs_resumed_total").Set(s.resumed.Load())
	reg.Counter("serve_jobs_parked_total").Set(s.parkedAtDrain.Load())
	reg.Gauge("serve_queue_depth").Set(float64(len(s.queue)))
	reg.Gauge("serve_jobs_running").Set(float64(s.running.Load()))
	reg.Gauge("serve_workers").Set(float64(s.opts.Workers))
	reg.Gauge("serve_retry_backlog").Set(float64(s.retriesBusy.Load()))
	reg.Gauge("serve_drain_seconds").Set(float64(s.drainNanos.Load()) / 1e9)
	reg.Gauge("serve_queue_wait_max_seconds").Set(float64(s.queueWaitMax.Load()) / 1e9)
	reg.Counter("serve_state_corrupt_total").Set(s.stateCorrupt.Load())
	cs := s.opts.TCache.Stats()
	reg.Gauge("tstore_stores").Set(float64(cs.Stores))
	reg.Gauge("tstore_units").Set(float64(cs.Units))
	reg.Gauge("tstore_bytes").Set(float64(cs.Bytes))
	reg.Counter("tstore_hits_total").Set(cs.Hits)
	reg.Counter("tstore_misses_total").Set(cs.Misses)
	reg.Counter("tstore_translations_total").Set(cs.Puts)
	reg.Counter("tstore_evictions_total").Set(cs.Evictions)
	reg.Counter("tstore_io_faults_total").Set(cs.IOFaults)
	reg.Counter("tstore_lock_waits_total").Set(cs.LockWaits)
	reg.Counter("tstore_corrupt_frames_total").Set(cs.CorruptFrames)
	reg.Counter("tstore_merged_total").Set(cs.Merged)
}

// MetricsSnapshot publishes into a fresh registry and freezes it.
func (s *Server) MetricsSnapshot() obs.Snapshot {
	reg := obs.NewRegistry()
	s.PublishMetrics(reg)
	return reg.Snapshot()
}

// Drain gracefully stops the server: stop admitting (Ready goes false),
// park still-queued jobs, wait for in-flight jobs up to the deadline (ctx
// deadline, else Options.DrainTimeout), cancel any that overstay, persist
// parked queue state, and stop the workers. Idempotent.
func (s *Server) Drain(ctx context.Context) error {
	start := time.Now()
	if s.draining.Swap(true) {
		return nil
	}
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.DrainTimeout)
		defer cancel()
	}
	// Park everything still queued. Workers racing us also park once the
	// draining flag is up; the channel hands each job to exactly one side.
	for {
		select {
		case j := <-s.queue:
			s.park(j)
			continue
		default:
		}
		break
	}
	// Park jobs waiting out a retry backoff: their timers are queued work
	// too. A timer we lose the race against re-enqueues into the draining
	// pool and parks itself (requeue checks the flag).
	s.mu.Lock()
	for _, j := range s.jobs {
		if j.retryStop != nil && j.retryStop.Stop() {
			j.retryStop = nil
			s.retryWG.Done()
			s.parkLocked(j)
		}
	}
	s.mu.Unlock()
	// Wait for in-flight jobs; cancel stragglers at the deadline and wait
	// again — a canceled guest stops within one timeslice, so this second
	// wait is short.
	if !s.waitInflight(ctx.Done()) {
		s.cancelRunning()
		s.waitInflight(nil)
	}
	s.cancel() // stops workers and any blocked retry re-enqueues
	s.workers.Wait()
	s.retryWG.Wait() // in-flight re-enqueues park before state is persisted
	err := s.persistState()
	s.drainNanos.Store(int64(time.Since(start)))
	return err
}

// Stop terminates immediately: cancel everything, no parking, no
// persistence. Tests and defer paths use it.
func (s *Server) Stop() {
	s.draining.Store(true)
	s.cancelRunning()
	s.cancel()
	s.workers.Wait()
	s.retryWG.Wait()
}

// waitInflight waits for running jobs; done aborts the wait (false).
func (s *Server) waitInflight(done <-chan struct{}) bool {
	fin := make(chan struct{})
	go func() { s.inflight.Wait(); close(fin) }()
	select {
	case <-fin:
		return true
	case <-done:
		return false
	}
}

// cancelRunning cancels every running job's context.
func (s *Server) cancelRunning() {
	s.mu.Lock()
	var cancels []func()
	for _, j := range s.jobs {
		j.canceled = true
		if j.cancel != nil {
			cancels = append(cancels, j.cancel)
		}
		if j.retryStop != nil && j.retryStop.Stop() {
			j.retryStop = nil
			s.retryWG.Done()
			j.status = StatusCanceled
			j.finished = time.Now()
			s.canceledJobs.Add(1)
		}
	}
	s.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// stateFile is the persisted queue format (StatePath).
type stateFile struct {
	SavedAt time.Time `json:"saved_at"`
	Queued  []JobSpec `json:"queued"`
}

// persistState writes parked specs to StatePath (removing a stale file
// when nothing is parked).
func (s *Server) persistState() error {
	if s.opts.StatePath == "" {
		return nil
	}
	s.mu.Lock()
	parked := append([]JobSpec(nil), s.parked...)
	s.mu.Unlock()
	if len(parked) == 0 {
		err := os.Remove(s.opts.StatePath)
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
		return nil
	}
	data, err := json.MarshalIndent(stateFile{SavedAt: time.Now().UTC(), Queued: parked}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(s.opts.StatePath, append(data, '\n'), 0o644)
}

// resumeState re-admits a drained predecessor's persisted queue.
func (s *Server) resumeState() error {
	if s.opts.StatePath == "" {
		return nil
	}
	data, err := os.ReadFile(s.opts.StatePath)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	var st stateFile
	if err := json.Unmarshal(data, &st); err != nil {
		// A damaged park file must never wedge a fleet restart: quarantine
		// it (the bytes stay on disk for a human to inspect) and start
		// empty. The parked jobs are lost — their submitters see a timeout
		// and resubmit — which beats a daemon that cannot boot.
		quarantine := s.opts.StatePath + ".corrupt"
		if rerr := os.Rename(s.opts.StatePath, quarantine); rerr != nil {
			// Even the rename failing must not block startup; drop the
			// file's claim on us and move on.
			quarantine = s.opts.StatePath + " (rename failed: " + rerr.Error() + ")"
		}
		s.stateCorrupt.Add(1)
		fmt.Fprintf(os.Stderr, "serve: corrupt state file quarantined to %s: %v\n", quarantine, err)
		return nil
	}
	for _, spec := range st.Queued {
		if _, err := s.Submit(spec); err != nil {
			return fmt.Errorf("serve: resume queued job: %w", err)
		}
		s.resumed.Add(1)
	}
	if err := os.Remove(s.opts.StatePath); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return nil
}

// QueueWaits returns every started job's queue wait — the monitoring basis
// for the serve benchmark's p99 figure.
func (s *Server) QueueWaits() []time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]time.Duration, 0, len(s.order))
	for _, id := range s.order {
		if j := s.jobs[id]; !j.started.IsZero() {
			out = append(out, j.queueWait)
		}
	}
	return out
}

// Percentile computes the p'th percentile (0..100, nearest-rank) of ds.
func Percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	for i := 1; i < len(sorted); i++ { // insertion sort: n is small
		for k := i; k > 0 && sorted[k] < sorted[k-1]; k-- {
			sorted[k], sorted[k-1] = sorted[k-1], sorted[k]
		}
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
