package serve

// The HTTP/JSON monitoring and submission surface. It lives in the library
// (not cmd/taskgrindd) so tests and benchmarks drive the daemon in-process
// through httptest.
//
//	GET  /healthz            liveness (contained job failures never flip it)
//	GET  /readyz             admission readiness (503 while draining)
//	POST /jobs               submit a spec, or {"token":"tg1:..."} to re-run
//	GET  /jobs               list jobs (?status=failed&group=g0001)
//	GET  /jobs/{id}          one job: status, progress, result
//	DELETE /jobs/{id}        cancel (also POST /jobs/{id}/cancel)
//	GET  /groups/{id}        sweep group: members + aggregated Outcome
//	GET  /metrics            obs-registry snapshot (JSON)

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/explore"
)

// submitRequest is the POST /jobs body: either a full spec or a replay
// token (which decodes into one).
type submitRequest struct {
	JobSpec
	ReplayTok string `json:"token,omitempty"`
}

// submitResponse acknowledges an admitted submission.
type submitResponse struct {
	Jobs  []JobView `json:"jobs"`
	Group string    `json:"group,omitempty"`
}

// groupView is the GET /groups/{id} rendering: the members plus their
// cross-seed aggregation, computed with the same explore statistics the
// CLI's `query agg` prints.
type groupView struct {
	Group   string       `json:"group"`
	Done    int          `json:"done"`
	Total   int          `json:"total"`
	Jobs    []JobView    `json:"jobs"`
	Outcome *outcomeView `json:"outcome,omitempty"`
}

// outcomeView is explore.Outcome with JSON tags.
type outcomeView struct {
	Tool          string  `json:"tool"`
	Seeds         int     `json:"seeds"`
	Counts        []int   `json:"counts"`
	Failed        []int   `json:"failed,omitempty"`
	Min           int     `json:"min"`
	Max           int     `json:"max"`
	Distinct      int     `json:"distinct"`
	DetectionRate float64 `json:"detection_rate"`
	Summary       string  `json:"summary"`
}

// Handler returns the daemon's HTTP surface over s.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if !s.Healthy() {
			http.Error(w, "stopped", http.StatusInternalServerError)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.Ready() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var req submitRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		spec := req.JobSpec
		if req.ReplayTok != "" {
			var err error
			spec, err = SpecFromToken(req.ReplayTok)
			if err != nil {
				http.Error(w, "bad token: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		jobs, err := s.Submit(spec)
		switch {
		case errors.Is(err, ErrQueueFull):
			// Shed with a hint: one job's default deadline is a fair guess
			// at when a slot frees up.
			w.Header().Set("Retry-After", strconv.Itoa(int(s.opts.JobTimeout.Seconds())+1))
			http.Error(w, err.Error(), http.StatusTooManyRequests)
			return
		case errors.Is(err, ErrDraining):
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		case err != nil:
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp := submitResponse{Jobs: make([]JobView, 0, len(jobs))}
		s.mu.Lock()
		for _, j := range jobs {
			resp.Jobs = append(resp.Jobs, j.view())
			resp.Group = j.Group
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, resp)
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		views := s.Jobs(Status(r.URL.Query().Get("status")), r.URL.Query().Get("group"))
		writeJSON(w, http.StatusOK, views)
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, err := s.Job(r.PathValue("id"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	cancel := func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := s.Cancel(id); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		v, _ := s.Job(id)
		writeJSON(w, http.StatusOK, v)
	}
	mux.HandleFunc("DELETE /jobs/{id}", cancel)
	mux.HandleFunc("POST /jobs/{id}/cancel", cancel)
	mux.HandleFunc("GET /groups/{id}", func(w http.ResponseWriter, r *http.Request) {
		views, err := s.Group(r.PathValue("id"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, groupSummary(r.PathValue("id"), views))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := s.MetricsSnapshot()
		w.Header().Set("Content-Type", "application/json")
		_ = snap.WriteJSON(w)
	})
	return mux
}

// groupSummary aggregates a sweep group's terminal members into an
// explore.Outcome (partial groups aggregate only once every member is
// terminal — a half-done sweep has no meaningful range statistics).
func groupSummary(id string, views []JobView) groupView {
	gv := groupView{Group: id, Total: len(views), Jobs: views}
	base := ^uint64(0)
	for _, v := range views {
		if v.Status.Terminal() {
			gv.Done++
		}
		if v.Spec.Seed < base {
			base = v.Spec.Seed
		}
	}
	if gv.Done < gv.Total || gv.Total == 0 {
		return gv
	}
	rs := make([]explore.SeedResult, 0, len(views))
	tool := ""
	for _, v := range views {
		tool = v.Spec.Tool
		r := explore.SeedResult{Seed: int(v.Spec.Seed-base) + 1}
		if v.Result != nil {
			r.Verdict = v.Result.Verdict
			r.Reports = v.Result.Reports
			r.Err = v.Result.Err
			r.Reproduced = v.Result.Reproduced
		} else {
			// Terminal without a result: canceled before running, or parked
			// at drain. Either way the seed did not survive.
			r.Verdict = string(v.Status)
		}
		rs = append(rs, r)
	}
	out := explore.Aggregate(tool, rs)
	gv.Outcome = &outcomeView{
		Tool: out.Tool, Seeds: out.Seeds, Counts: out.Counts, Failed: out.Failed,
		Min: out.Min, Max: out.Max, Distinct: out.Distinct,
		DetectionRate: out.DetectionRate, Summary: out.String(),
	}
	return gv
}

// writeJSON writes v as an indented JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
