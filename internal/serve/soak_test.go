package serve

// Chaos-under-load soak: hundreds of concurrent jobs, a large fraction
// carrying -inject fault specs or guaranteed guest faults, pushed through a
// bounded queue small enough that submitters hit 429s and retry. The
// acceptance bar (ISSUE 7): the daemon never dies, /healthz stays green
// throughout, every failed job is classified and carries a tg1: replay
// token, token re-submission reproduces the crash byte-for-byte, and
// cancellation + drain complete within their deadlines.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/harness"
)

const soakJobs = 600

func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	s := newTestServer(t, Options{
		Workers: 8, QueueDepth: 48, MaxRetries: 1,
		RetryBase: time.Millisecond, RetryMax: 4 * time.Millisecond,
		JobTimeout: 30 * time.Second,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// specFor mixes healthy runs, guest faults, injected host panics,
	// injected allocator/pool/steal/sched faults, and watchdog trips.
	specFor := func(i int) JobSpec {
		seed := uint64(i%13 + 1)
		switch i % 6 {
		case 0:
			return JobSpec{Prog: "task.c", Seed: seed}
		case 1:
			return JobSpec{Prog: "wildstore", Seed: seed}
		case 2:
			return JobSpec{Prog: "task.c", Seed: seed, Inject: "panic=40", InjectSeed: uint64(i%5 + 1)}
		case 3:
			return JobSpec{Prog: "task.c", Seed: seed, Inject: "pool=3", InjectSeed: uint64(i%7 + 1)}
		case 4:
			return JobSpec{Prog: "task.c", Seed: seed, Inject: "steal=2,sched=5", InjectSeed: uint64(i%3 + 1)}
		default:
			return JobSpec{Prog: "task.c", Seed: seed, MaxBlocks: 40, MaxRetries: -1}
		}
	}

	// Health watchdog: /healthz polled continuously while the storm runs.
	stopHealth := make(chan struct{})
	var healthFails atomic.Int64
	var healthChecks atomic.Int64
	go func() {
		for {
			select {
			case <-stopHealth:
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/healthz")
			if err != nil || resp.StatusCode != http.StatusOK {
				healthFails.Add(1)
			}
			if resp != nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			healthChecks.Add(1)
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Submission storm: 24 concurrent submitters, retrying on 429 — the
	// bounded queue sheds under this load by construction.
	var (
		mu     sync.Mutex
		ids    []string
		sheds  atomic.Int64
		submWG sync.WaitGroup
	)
	jobsCh := make(chan int)
	for w := 0; w < 24; w++ {
		submWG.Add(1)
		go func() {
			defer submWG.Done()
			for i := range jobsCh {
				body, _ := json.Marshal(specFor(i))
				for {
					resp, err := http.Post(ts.URL+"/jobs", "application/json",
						strings.NewReader(string(body)))
					if err != nil {
						t.Errorf("submit %d: %v", i, err)
						return
					}
					if resp.StatusCode == http.StatusTooManyRequests {
						sheds.Add(1)
						if resp.Header.Get("Retry-After") == "" {
							t.Error("429 without Retry-After")
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						time.Sleep(2 * time.Millisecond)
						continue
					}
					if resp.StatusCode != http.StatusAccepted {
						msg, _ := io.ReadAll(resp.Body)
						resp.Body.Close()
						t.Errorf("submit %d: %d: %s", i, resp.StatusCode, msg)
						return
					}
					var sub submitResponse
					err = json.NewDecoder(resp.Body).Decode(&sub)
					resp.Body.Close()
					if err != nil || len(sub.Jobs) != 1 {
						t.Errorf("submit %d: decode: %v", i, err)
						return
					}
					mu.Lock()
					ids = append(ids, sub.Jobs[0].ID)
					mu.Unlock()
					break
				}
			}
		}()
	}
	for i := 0; i < soakJobs; i++ {
		jobsCh <- i
	}
	close(jobsCh)
	submWG.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if len(ids) != soakJobs {
		t.Fatalf("admitted %d jobs, want %d", len(ids), soakJobs)
	}

	// Cancel a handful mid-flight; they must settle promptly.
	cancelStart := time.Now()
	canceledIDs := []string{ids[10], ids[100], ids[300]}
	for _, id := range canceledIDs {
		if err := s.Cancel(id); err != nil {
			t.Fatalf("cancel %s: %v", id, err)
		}
	}

	// Wait for the whole fleet to settle.
	settled := time.Now().Add(120 * time.Second)
	for _, id := range ids {
		for {
			v, err := s.Job(id)
			if err != nil {
				t.Fatal(err)
			}
			if v.Status.Terminal() {
				break
			}
			if time.Now().After(settled) {
				t.Fatalf("job %s stuck in %s", id, v.Status)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	for _, id := range canceledIDs {
		v, _ := s.Job(id)
		if v.Status != StatusCanceled && v.Status != StatusDone && v.Status != StatusFailed {
			t.Fatalf("canceled job %s ended %s", id, v.Status)
		}
	}
	if d := time.Since(cancelStart); d > 120*time.Second {
		t.Fatalf("settling took %v", d)
	}

	close(stopHealth)
	if healthFails.Load() > 0 {
		t.Fatalf("/healthz failed %d/%d probes during the storm",
			healthFails.Load(), healthChecks.Load())
	}
	if healthChecks.Load() == 0 {
		t.Fatal("health watchdog never ran")
	}

	// Every failed job must be classified with a known taxonomy and carry a
	// replay token.
	known := map[string]bool{
		harness.TaxFault: true, harness.TaxPanic: true, harness.TaxTimeout: true,
		harness.TaxDeadlock: true, harness.TaxDivergence: true, harness.TaxError: true,
	}
	var failed []JobView
	counts := map[string]int{}
	for _, v := range s.Jobs("", "") {
		switch v.Status {
		case StatusFailed:
			if v.Result == nil || !known[v.Result.Verdict] {
				t.Fatalf("failed job %s has no classified verdict: %+v", v.ID, v.Result)
			}
			if !strings.HasPrefix(v.Result.ReplayToken, "tg1:") {
				t.Fatalf("failed job %s carries no replay token", v.ID)
			}
			counts[v.Result.Verdict]++
			failed = append(failed, v)
		case StatusDone:
			counts["ok"]++
		case StatusCanceled:
			counts["canceled"]++
		default:
			t.Fatalf("job %s settled in unexpected state %s", v.ID, v.Status)
		}
	}
	t.Logf("soak outcome: %v, sheds=%d, health probes=%d", counts, sheds.Load(), healthChecks.Load())
	if counts["ok"] == 0 {
		t.Fatal("no job survived the storm (expected the healthy sixth to)")
	}
	if counts[harness.TaxFault] == 0 || counts[harness.TaxPanic] == 0 || counts[harness.TaxTimeout] == 0 {
		t.Fatalf("fault mix did not exercise the taxonomy: %v", counts)
	}

	// Replay verification: re-submitting a failed job's token reproduces
	// the crash byte-for-byte. (Watchdog failures are excluded: budgets are
	// run limits, not run identity, so tokens do not encode them.)
	reproduced := 0
	for _, v := range failed {
		if reproduced == 5 {
			break
		}
		if v.Result.Verdict == harness.TaxTimeout || v.Result.Crash == "" {
			continue
		}
		resp, err := http.Post(ts.URL+"/jobs", "application/json",
			strings.NewReader(fmt.Sprintf(`{"token":%q}`, v.Result.ReplayToken)))
		if err != nil {
			t.Fatal(err)
		}
		var sub submitResponse
		err = json.NewDecoder(resp.Body).Decode(&sub)
		resp.Body.Close()
		if err != nil || len(sub.Jobs) != 1 {
			t.Fatalf("token resubmission: %v", err)
		}
		rv := await(t, s, sub.Jobs[0].ID, 60*time.Second)
		if rv.Status != StatusFailed || rv.Result.Crash != v.Result.Crash {
			t.Fatalf("token %s did not reproduce byte-for-byte:\n--- original (%s)\n%s\n--- replay (%s)\n%s",
				v.Result.ReplayToken, v.Result.Verdict, v.Result.Crash, rv.Status, rv.Result.Crash)
		}
		reproduced++
	}
	if reproduced == 0 {
		t.Fatal("no crash was replay-checked")
	}

	// Metrics surface agrees with what we watched happen.
	snap := s.MetricsSnapshot()
	if got := snap.Counter("serve_jobs_admitted_total"); got < soakJobs {
		t.Fatalf("admitted counter %d < %d", got, soakJobs)
	}
	if sheds.Load() > 0 && snap.Counter("serve_jobs_shed_total") == 0 {
		t.Fatal("shed counter does not reflect observed 429s")
	}
	if snap.Counter("serve_jobs_quarantined_total") == 0 {
		t.Fatal("quarantined counter never ticked")
	}
	if snap.Counter("serve_jobs_retried_total") == 0 {
		t.Fatal("retried counter never ticked (injected panics retry once)")
	}

	// Graceful drain completes within its deadline.
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	drainStart := time.Now()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if d := time.Since(drainStart); d > 30*time.Second {
		t.Fatalf("drain took %v", d)
	}
	if s.Ready() {
		t.Fatal("drained server still ready")
	}
	if s.MetricsSnapshot().Gauge("serve_drain_seconds") <= 0 {
		t.Fatal("drain duration gauge not recorded")
	}
}
