// Package serve is the analysis-as-a-service layer: a fault-contained,
// long-running daemon core that accepts analysis jobs (program + tool +
// engine/delivery config + seed range + budgets), runs them on a bounded
// worker pool, and is robust by construction — per-job isolation through
// the harness supervisor, bounded-queue admission control that sheds load
// instead of growing without bound, automatic retry with exponential
// backoff + jitter for transient failures, context-based cancellation that
// interrupts a running guest within one timeslice, and graceful drain that
// persists queued work. A guest fault, host panic, watchdog trip or
// deadlock inside a job is classified, optionally verified by replay, and
// reported as that job's *result*; the server never dies with it.
//
// cmd/taskgrindd wraps this package in an HTTP/JSON binary; the HTTP
// surface itself lives here (Handler) so tests and benchmarks drive the
// daemon in-process.
package serve

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/dbi"
	"repro/internal/faultinject"
	"repro/internal/lulesh"
	"repro/internal/progs"
	"repro/internal/snapshot"
	"repro/internal/tools/toolreg"
)

// JobSpec is one analysis job's complete configuration — the same fields a
// `tg1:` replay token carries, plus run budgets and daemon behavior. The
// zero value of every field is a sensible default (Normalize fills them),
// so `{"prog":"task.c"}` is a valid submission.
type JobSpec struct {
	Prog       string `json:"prog"`
	Tool       string `json:"tool,omitempty"`
	Seed       uint64 `json:"seed,omitempty"`
	Threads    int    `json:"threads,omitempty"`
	Engine     string `json:"engine,omitempty"`
	Delivery   string `json:"delivery,omitempty"`
	Extend     int    `json:"extend,omitempty"`
	Inject     string `json:"inject,omitempty"`
	InjectSeed uint64 `json:"inject_seed,omitempty"`
	Lenient    bool   `json:"lenient,omitempty"`

	// Seeds > 1 turns the submission into a seed-range sweep: the server
	// expands it into Seeds jobs (seeds Seed..Seed+Seeds-1) sharing one
	// group, all riding the same worker pool; GET /groups/{id} aggregates
	// them into an explore.Outcome.
	Seeds int `json:"seeds,omitempty"`

	// LULESH proxy-app parameters (prog=lulesh only).
	LSize    int  `json:"ls,omitempty"`
	LIters   int  `json:"li,omitempty"`
	LTasksEl int  `json:"lte,omitempty"`
	LTasksNd int  `json:"ltn,omitempty"`
	LRacy    bool `json:"lracy,omitempty"`

	// Budgets. TimeoutMS falls back to the server's default job deadline
	// when zero; MaxBlocks/MaxInstrs are unlimited when zero.
	MaxBlocks uint64 `json:"max_blocks,omitempty"`
	MaxInstrs uint64 `json:"max_instrs,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`

	// Supervised drives the job through harness.Supervise: crashes must
	// reproduce under journal-verified replay before they are reported
	// (Result.Reproduced), and a host panic degrades to the IR oracle
	// instead of failing the job.
	Supervised bool `json:"supervised,omitempty"`
	// MaxRetries bounds automatic retries of transient failures for this
	// job; -1 disables retries, 0 uses the server default.
	MaxRetries int `json:"max_retries,omitempty"`
}

// Normalize fills defaulted fields in place, mirroring the CLI defaults so
// a job's replay token matches the token an equivalent `taskgrind`
// invocation prints.
func (sp *JobSpec) Normalize() {
	if sp.Prog == "" {
		sp.Prog = "task.c"
	}
	if sp.Tool == "" {
		sp.Tool = "taskgrind"
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	if sp.Threads == 0 {
		sp.Threads = 4
	}
	if sp.Delivery == "" {
		sp.Delivery = dbi.DeliverBatched.String()
	}
	if sp.Seeds <= 0 {
		sp.Seeds = 1
	}
	if sp.Prog == "lulesh" {
		if sp.LSize == 0 {
			sp.LSize = 8
		}
		if sp.LIters == 0 {
			sp.LIters = 2
		}
		if sp.LTasksEl == 0 {
			sp.LTasksEl = 4
		}
		if sp.LTasksNd == 0 {
			sp.LTasksNd = 4
		}
	}
}

// Validate rejects specs that could never run: unknown program, tool,
// delivery mode or injection spec. Called after Normalize.
func (sp *JobSpec) Validate() error {
	if _, err := progs.Build(sp.Prog, sp.Lulesh()); err != nil {
		return err
	}
	if _, _, err := toolreg.Make(sp.Tool); err != nil {
		return err
	}
	if _, ok := dbi.ParseDelivery(sp.Delivery); !ok {
		return fmt.Errorf("serve: unknown delivery %q (batched, per-event)", sp.Delivery)
	}
	if sp.Engine != "" && sp.Engine != dbi.EngineCompiled && sp.Engine != dbi.EngineIR {
		return fmt.Errorf("serve: unknown engine %q (compiled, ir)", sp.Engine)
	}
	if _, err := faultinject.ParseSpec(sp.Inject, sp.InjectSeed); err != nil {
		return err
	}
	if sp.MaxRetries < -1 {
		return fmt.Errorf("serve: max_retries %d out of range (-1 disables)", sp.MaxRetries)
	}
	return nil
}

// Lulesh bundles the spec's proxy-app parameters.
func (sp *JobSpec) Lulesh() lulesh.Params {
	return lulesh.Params{S: sp.LSize, TEL: sp.LTasksEl, TNL: sp.LTasksNd,
		Iters: sp.LIters, Racy: sp.LRacy}
}

// Config maps the spec onto the replay-token configuration. Equal specs
// produce equal tokens, and the token of a job equals the token the CLI
// would stamp on the same single run — the stable result currency shared
// by both front ends.
func (sp *JobSpec) Config() snapshot.Config {
	cfg := snapshot.Config{
		Prog: sp.Prog, Tool: sp.Tool, Seed: sp.Seed, Threads: sp.Threads,
		Engine: sp.Engine, Delivery: sp.Delivery, Extend: sp.Extend,
		Inject: sp.Inject, Lenient: sp.Lenient,
	}
	if sp.Inject != "" {
		cfg.InjectSeed = sp.InjectSeed
	}
	if sp.Prog == "lulesh" {
		cfg.LSize, cfg.LIters, cfg.LTasksEl, cfg.LTasksNd, cfg.LRacy =
			sp.LSize, sp.LIters, sp.LTasksEl, sp.LTasksNd, sp.LRacy
	}
	return cfg
}

// SpecFromToken decodes a replay token into a job spec — submitting a
// crash report's token re-runs (and byte-for-byte reproduces) the crash
// as a daemon job.
func SpecFromToken(tok string) (JobSpec, error) {
	cfg, err := snapshot.ParseToken(tok)
	if err != nil {
		return JobSpec{}, err
	}
	sp := JobSpec{
		Prog: cfg.Prog, Tool: cfg.Tool, Seed: cfg.Seed, Threads: cfg.Threads,
		Engine: cfg.Engine, Delivery: cfg.Delivery, Extend: cfg.Extend,
		Inject: cfg.Inject, InjectSeed: cfg.InjectSeed, Lenient: cfg.Lenient,
		LSize: cfg.LSize, LIters: cfg.LIters, LTasksEl: cfg.LTasksEl,
		LTasksNd: cfg.LTasksNd, LRacy: cfg.LRacy,
	}
	sp.Normalize()
	return sp, nil
}

// Status is a job's lifecycle state.
type Status string

const (
	// StatusQueued: admitted, waiting for a worker.
	StatusQueued Status = "queued"
	// StatusRunning: a worker is executing the job.
	StatusRunning Status = "running"
	// StatusRetryWait: a transient failure is backing off before re-entering
	// the queue.
	StatusRetryWait Status = "retry-wait"
	// StatusDone: terminal, the analysis completed (reports may be > 0).
	StatusDone Status = "done"
	// StatusFailed: terminal, the final attempt ended in a classified
	// failure; Result.Verdict carries the taxonomy and Result.ReplayToken
	// reproduces it.
	StatusFailed Status = "failed"
	// StatusCanceled: terminal, canceled while queued or interrupted while
	// running.
	StatusCanceled Status = "canceled"
	// StatusParked: terminal for this process — the job was still queued at
	// drain time and was persisted to the state file for the next daemon.
	StatusParked Status = "parked"
)

// Terminal reports whether a status is final for this daemon process.
func (s Status) Terminal() bool {
	switch s {
	case StatusDone, StatusFailed, StatusCanceled, StatusParked:
		return true
	}
	return false
}

// JobResult is a terminal job's outcome.
type JobResult struct {
	// Verdict is "ok" or the failure taxonomy (harness.Tax*).
	Verdict string `json:"verdict"`
	// Reports is the surviving tool's report count (races found).
	Reports int `json:"reports"`
	// Output is the rendered tool report (done jobs).
	Output string `json:"output,omitempty"`
	// Err and Crash describe a failed job: the error string and the
	// symbolized Valgrind-style crash report (byte-identical on replay).
	Err   string `json:"err,omitempty"`
	Crash string `json:"crash,omitempty"`
	// ReplayToken reproduces this run: `taskgrind -replay <token>` or a
	// re-submission by token.
	ReplayToken string `json:"replay_token,omitempty"`
	// Reproduced reports a supervised crash replayed bit-identically.
	Reproduced bool `json:"reproduced,omitempty"`
	// FellBack reports a supervised job that completed under the IR oracle
	// after the configured engine panicked.
	FellBack bool `json:"fell_back,omitempty"`
	// ScheduleSensitive flags a job whose retry attempts produced different
	// outcomes — the failure depends on something outside the replayable
	// configuration, so the replay token is the only stable currency.
	ScheduleSensitive bool `json:"schedule_sensitive,omitempty"`
	// Attempts counts executions, retries included.
	Attempts int `json:"attempts"`
	// GuestInstrs/WallMS are the surviving attempt's work metrics.
	GuestInstrs uint64  `json:"guest_instrs"`
	WallMS      float64 `json:"wall_ms"`
}

// Job is one admitted analysis job. Mutable state is guarded by the
// owning Server's mutex; progress counters are atomics written by the run
// goroutine and read lock-free by the monitoring surface.
type Job struct {
	ID    string
	Group string
	Spec  JobSpec
	Token string

	status    Status
	attempts  int
	taxSeen   []string // per-attempt verdicts, for schedule-sensitivity
	result    *JobResult
	cancel    func() // non-nil while running
	canceled  bool   // cancel requested (any state)
	retryStop *time.Timer

	submitted time.Time
	started   time.Time
	finished  time.Time
	queueWait time.Duration

	progBlocks atomic.Uint64
	progInstrs atomic.Uint64
}

// Progress is a running job's live counters.
type Progress struct {
	Blocks uint64 `json:"blocks"`
	Instrs uint64 `json:"instrs"`
}

// JobView is the JSON rendering of a job's state.
type JobView struct {
	ID          string     `json:"id"`
	Group       string     `json:"group,omitempty"`
	Status      Status     `json:"status"`
	Spec        JobSpec    `json:"spec"`
	Token       string     `json:"token"`
	Attempts    int        `json:"attempts"`
	QueueWaitMS float64    `json:"queue_wait_ms"`
	Progress    Progress   `json:"progress"`
	Result      *JobResult `json:"result,omitempty"`
	Submitted   time.Time  `json:"submitted"`
	Started     *time.Time `json:"started,omitempty"`
	Finished    *time.Time `json:"finished,omitempty"`
}

// view renders the job; caller holds the server mutex.
func (j *Job) view() JobView {
	v := JobView{
		ID: j.ID, Group: j.Group, Status: j.status, Spec: j.Spec,
		Token: j.Token, Attempts: j.attempts,
		QueueWaitMS: float64(j.queueWait) / float64(time.Millisecond),
		Progress: Progress{
			Blocks: j.progBlocks.Load(),
			Instrs: j.progInstrs.Load(),
		},
		Result:    j.result,
		Submitted: j.submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}
