package serve

import (
	"testing"
	"time"

	"repro/internal/obs/store"
	"repro/internal/tstore"
)

// TestJobsShareTranslationStore: a seed-range sweep through the daemon
// translates the program roughly once — daemon workers resolve their
// translations from the shared store — and the store's counters surface
// through /metrics.
func TestJobsShareTranslationStore(t *testing.T) {
	cache := tstore.NewCache("")
	s := newTestServer(t, Options{Workers: 4, TCache: cache})
	jobs, err := s.Submit(JobSpec{Prog: "task.c", Seed: 1, Seeds: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		v := await(t, s, j.ID, 30*time.Second)
		if v.Status != StatusDone {
			t.Fatalf("job %s: status %s (result %+v)", j.ID, v.Status, v.Result)
		}
		if v.Result.Verdict != store.VerdictOK {
			t.Fatalf("job %s: verdict %q", j.ID, v.Result.Verdict)
		}
	}
	cs := cache.Stats()
	if cs.Stores != 1 {
		t.Fatalf("8 identical jobs opened %d stores, want 1", cs.Stores)
	}
	if cs.Puts == 0 || cs.Hits == 0 {
		t.Fatalf("store not exercised: %+v", cs)
	}
	// First-writer-wins: racing workers may translate the same block, but
	// the store keeps one unit per block — its size is one image's worth.
	if cs.Puts != uint64(cs.Units) {
		t.Fatalf("store grew %d times for %d units", cs.Puts, cs.Units)
	}
	// Warm jobs adopt far more than the one cold job translated.
	if cs.Hits < 4*uint64(cs.Units) {
		t.Fatalf("jobs adopted only %d blocks for a %d-unit store", cs.Hits, cs.Units)
	}
	snap := s.MetricsSnapshot()
	if got := snap.Counters["tstore_translations_total"]; got != cs.Puts {
		t.Fatalf("metrics report %d translations, store says %d", got, cs.Puts)
	}
}
