package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/obs/store"
)

// newTestServer starts a server with test-friendly backoff and stops it at
// cleanup.
func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.RetryBase == 0 {
		opts.RetryBase = time.Millisecond
	}
	if opts.RetryMax == 0 {
		opts.RetryMax = 5 * time.Millisecond
	}
	s := New(opts)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

// await polls until j reaches a terminal state.
func await(t *testing.T, s *Server, id string, timeout time.Duration) JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if v.Status.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s after %v", id, v.Status, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestJobRunsToCompletion(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	jobs, err := s.Submit(JobSpec{Prog: "task.c", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	v := await(t, s, jobs[0].ID, 30*time.Second)
	if v.Status != StatusDone {
		t.Fatalf("status %s, want done (result %+v)", v.Status, v.Result)
	}
	if v.Result.Verdict != store.VerdictOK {
		t.Fatalf("verdict %q, want ok", v.Result.Verdict)
	}
	if v.Result.Reports == 0 {
		t.Fatal("task.c seed 2 should report the Listing 4 race")
	}
	if !strings.Contains(v.Result.Output, "==") {
		t.Fatalf("no rendered report in output:\n%s", v.Result.Output)
	}
	if v.Token == "" || !strings.HasPrefix(v.Token, "tg1:") {
		t.Fatalf("job carries no replay token: %q", v.Token)
	}
	if v.Progress.Instrs == 0 {
		t.Fatal("no progress counters ticked")
	}
}

// TestFailureContained: a wild-pointer crash is the job's result, not the
// server's problem.
func TestFailureContained(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	jobs, err := s.Submit(JobSpec{Prog: "wildstore"})
	if err != nil {
		t.Fatal(err)
	}
	v := await(t, s, jobs[0].ID, 30*time.Second)
	if v.Status != StatusFailed {
		t.Fatalf("status %s, want failed", v.Status)
	}
	if v.Result.Verdict != harness.TaxFault {
		t.Fatalf("verdict %q, want fault", v.Result.Verdict)
	}
	if !strings.Contains(v.Result.Crash, "Invalid write") &&
		!strings.Contains(v.Result.Crash, "==") {
		t.Fatalf("no rendered crash report:\n%s", v.Result.Crash)
	}
	if !strings.HasPrefix(v.Result.ReplayToken, "tg1:") {
		t.Fatalf("failed job carries no replay token: %q", v.Result.ReplayToken)
	}
	if !s.Healthy() {
		t.Fatal("a contained job failure flipped server health")
	}
	snap := s.MetricsSnapshot()
	if got := snap.Counter("serve_jobs_quarantined_total"); got != 1 {
		t.Fatalf("quarantined counter %d, want 1", got)
	}
}

// TestTokenResubmissionReproduces: a failed job's replay token, submitted
// as a new job, reproduces the crash report byte for byte.
func TestTokenResubmissionReproduces(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	jobs, err := s.Submit(JobSpec{Prog: "wildstore", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	v1 := await(t, s, jobs[0].ID, 30*time.Second)
	if v1.Status != StatusFailed {
		t.Fatalf("status %s, want failed", v1.Status)
	}
	spec, err := SpecFromToken(v1.Result.ReplayToken)
	if err != nil {
		t.Fatal(err)
	}
	again, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	v2 := await(t, s, again[0].ID, 30*time.Second)
	if v2.Result.Crash != v1.Result.Crash {
		t.Fatalf("replayed crash differs:\n--- original\n%s\n--- replay\n%s",
			v1.Result.Crash, v2.Result.Crash)
	}
	if v2.Result.ReplayToken != v1.Result.ReplayToken {
		t.Fatalf("token drifted across resubmission: %q vs %q",
			v1.Result.ReplayToken, v2.Result.ReplayToken)
	}
}

// TestRetryBackoffExhaustion: a deterministic host panic is transient by
// taxonomy, so it retries with backoff — and fails for good once the retry
// budget is spent, without ever becoming schedule-sensitive (every attempt
// failed the same way).
func TestRetryBackoffExhaustion(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2, MaxRetries: 2})
	jobs, err := s.Submit(JobSpec{
		Prog: "task.c", Seed: 2, Inject: "panic=40", InjectSeed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	v := await(t, s, jobs[0].ID, 30*time.Second)
	if v.Status != StatusFailed {
		t.Fatalf("status %s, want failed", v.Status)
	}
	if v.Result.Verdict != harness.TaxPanic {
		t.Fatalf("verdict %q, want panic", v.Result.Verdict)
	}
	if v.Result.Attempts != 3 {
		t.Fatalf("attempts %d, want 3 (1 + 2 retries)", v.Result.Attempts)
	}
	if v.Result.ScheduleSensitive {
		t.Fatal("identical failures flagged schedule-sensitive")
	}
	snap := s.MetricsSnapshot()
	if got := snap.Counter("serve_jobs_retried_total"); got != 2 {
		t.Fatalf("retried counter %d, want 2", got)
	}
}

// TestRetryDisabled: max_retries=-1 fails on the first transient failure.
func TestRetryDisabled(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	jobs, err := s.Submit(JobSpec{
		Prog: "task.c", Seed: 2, Inject: "panic=40", InjectSeed: 7, MaxRetries: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	v := await(t, s, jobs[0].ID, 30*time.Second)
	if v.Result.Attempts != 1 {
		t.Fatalf("attempts %d, want 1", v.Result.Attempts)
	}
}

// TestSupervisedFallback: a supervised job survives an injected engine
// panic by degrading to the IR oracle, and still reports the race.
func TestSupervisedFallback(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	jobs, err := s.Submit(JobSpec{
		Prog: "task.c", Seed: 2, Inject: "panic=40", InjectSeed: 7,
		Supervised: true, MaxRetries: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	v := await(t, s, jobs[0].ID, 60*time.Second)
	if v.Status != StatusDone {
		t.Fatalf("status %s, want done (result %+v)", v.Status, v.Result)
	}
	if !v.Result.FellBack {
		t.Fatal("job did not record the IR-oracle fallback")
	}
	if v.Result.Reports == 0 {
		t.Fatal("fallback run lost the race report")
	}
}

// TestQueueFullSheds: submissions beyond the bounded queue are shed, with
// the shed counter ticking.
func TestQueueFullSheds(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, QueueDepth: 2})
	// Occupy the single worker with a long job first so fillers stay queued.
	long, err := s.Submit(JobSpec{Prog: "lulesh", LIters: 50})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, long[0].ID)
	if _, err := s.Submit(JobSpec{Prog: "task.c"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(JobSpec{Prog: "task.c"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(JobSpec{Prog: "task.c"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submission: got %v, want ErrQueueFull", err)
	}
	if got := s.MetricsSnapshot().Counter("serve_jobs_shed_total"); got == 0 {
		t.Fatal("shed counter did not tick")
	}
	if err := s.Cancel(long[0].ID); err != nil {
		t.Fatal(err)
	}
}

// waitRunning polls until the job leaves the queue.
func waitRunning(t *testing.T, s *Server, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		v, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if v.Status == StatusRunning {
			return
		}
		if v.Status.Terminal() {
			t.Fatalf("job %s finished (%s) before it could be observed running", id, v.Status)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never started", id)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCancelRunningJob: cancelling a running guest interrupts it promptly
// (context checked per timeslice) and classifies it canceled.
func TestCancelRunningJob(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	jobs, err := s.Submit(JobSpec{Prog: "lulesh", LIters: 200, TimeoutMS: 120_000})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, jobs[0].ID)
	start := time.Now()
	if err := s.Cancel(jobs[0].ID); err != nil {
		t.Fatal(err)
	}
	v := await(t, s, jobs[0].ID, 10*time.Second)
	if v.Status != StatusCanceled {
		t.Fatalf("status %s, want canceled", v.Status)
	}
	if wait := time.Since(start); wait > 5*time.Second {
		t.Fatalf("cancellation took %v", wait)
	}
	if got := s.MetricsSnapshot().Counter("serve_jobs_canceled_total"); got != 1 {
		t.Fatalf("canceled counter %d, want 1", got)
	}
}

// TestSweepGroupAggregates: a seeds>1 submission fans out into a group
// whose aggregation matches an in-process explore of the same seeds.
func TestSweepGroupAggregates(t *testing.T) {
	s := newTestServer(t, Options{Workers: 4})
	jobs, err := s.Submit(JobSpec{Prog: "task.c", Seeds: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 6 || jobs[0].Group == "" {
		t.Fatalf("expected 6 grouped jobs, got %d (group %q)", len(jobs), jobs[0].Group)
	}
	for _, j := range jobs {
		await(t, s, j.ID, 60*time.Second)
	}
	views, err := s.Group(jobs[0].Group)
	if err != nil {
		t.Fatal(err)
	}
	gv := groupSummary(jobs[0].Group, views)
	if gv.Outcome == nil {
		t.Fatal("terminal group did not aggregate")
	}
	if gv.Outcome.Seeds != 6 {
		t.Fatalf("aggregated %d seeds, want 6", gv.Outcome.Seeds)
	}
	if gv.Outcome.DetectionRate == 0 {
		t.Fatal("no seed detected the Listing 4 race")
	}
}

// TestDrainPersistsAndResumes: drain parks queued jobs into the state
// file; a new server on the same path resumes them.
func TestDrainPersistsAndResumes(t *testing.T) {
	state := filepath.Join(t.TempDir(), "queue.json")
	s := newTestServer(t, Options{Workers: 1, QueueDepth: 8, StatePath: state})
	long, err := s.Submit(JobSpec{Prog: "lulesh", LIters: 100, TimeoutMS: 120_000})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, long[0].ID)
	for i := 0; i < 3; i++ {
		if _, err := s.Submit(JobSpec{Prog: "task.c", Seed: uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if s.Ready() {
		t.Fatal("drained server still admits")
	}
	if _, err := s.Submit(JobSpec{Prog: "task.c"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submission: got %v, want ErrDraining", err)
	}
	data, err := os.ReadFile(state)
	if err != nil {
		t.Fatalf("no persisted queue state: %v", err)
	}
	var st stateFile
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Queued) != 3 {
		t.Fatalf("persisted %d jobs, want 3:\n%s", len(st.Queued), data)
	}
	if got := s.MetricsSnapshot().Gauge("serve_drain_seconds"); got <= 0 {
		t.Fatal("drain duration gauge not recorded")
	}

	s2 := newTestServer(t, Options{Workers: 2, StatePath: state})
	if got := s2.MetricsSnapshot().Counter("serve_jobs_resumed_total"); got != 3 {
		t.Fatalf("resumed %d jobs, want 3", got)
	}
	for _, v := range s2.Jobs("", "") {
		if v := await(t, s2, v.ID, 60*time.Second); v.Status != StatusDone {
			t.Fatalf("resumed job %s ended %s", v.ID, v.Status)
		}
	}
	if _, err := os.Stat(state); !os.IsNotExist(err) {
		t.Fatal("state file not consumed on resume")
	}
}

// TestCorruptStateQuarantined: a damaged park file must never wedge a
// fleet restart — the daemon quarantines it (rename to <state>.corrupt),
// counts it, and starts empty and ready.
func TestCorruptStateQuarantined(t *testing.T) {
	state := filepath.Join(t.TempDir(), "queue.json")
	if err := os.WriteFile(state, []byte("{\"queued\": [truncated gar"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Options{Workers: 1, StatePath: state})
	if !s.Ready() {
		t.Fatal("server with corrupt state did not come up ready")
	}
	if got := s.MetricsSnapshot().Counter("serve_state_corrupt_total"); got != 1 {
		t.Fatalf("serve_state_corrupt_total = %d, want 1", got)
	}
	if _, err := os.Stat(state); !os.IsNotExist(err) {
		t.Fatal("corrupt state file still in place")
	}
	data, err := os.ReadFile(state + ".corrupt")
	if err != nil {
		t.Fatalf("quarantined copy missing: %v", err)
	}
	if !strings.Contains(string(data), "truncated gar") {
		t.Fatal("quarantined copy does not preserve the damaged bytes")
	}
	// The daemon still works: submit and complete a job.
	jobs, err := s.Submit(JobSpec{Prog: "task.c"})
	if err != nil {
		t.Fatal(err)
	}
	if v := await(t, s, jobs[0].ID, 60*time.Second); v.Status != StatusDone {
		t.Fatalf("job after quarantine ended %s", v.Status)
	}
}

// TestRecordedJobsLandInStore: with Options.Record, every job's run —
// including crashes — appears in the shared run store.
func TestRecordedJobsLandInStore(t *testing.T) {
	dir := t.TempDir()
	w, err := store.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Options{Workers: 2, Record: w})
	a, err := s.Submit(JobSpec{Prog: "task.c", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(JobSpec{Prog: "wildstore"})
	if err != nil {
		t.Fatal(err)
	}
	await(t, s, a[0].ID, 30*time.Second)
	await(t, s, b[0].ID, 30*time.Second)
	s.Stop()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := store.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	headers, err := r.Runs(store.Q{})
	if err != nil {
		t.Fatal(err)
	}
	if len(headers) != 2 {
		t.Fatalf("recorded %d runs, want 2", len(headers))
	}
	byProg := map[string]store.RunHeader{}
	for _, h := range headers {
		byProg[h.Prog] = h
	}
	if h := byProg["wildstore"]; h.Verdict != harness.TaxFault {
		t.Fatalf("wildstore recorded verdict %q, want fault", h.Verdict)
	}
	if h := byProg["task.c"]; h.Verdict != store.VerdictOK || h.Reports == 0 {
		t.Fatalf("task.c recorded verdict %q reports %d", h.Verdict, h.Reports)
	}
}

// TestHTTPSurface drives the whole lifecycle through the HTTP handler.
func TestHTTPSurface(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}
	if code, body := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz %d: %s", code, body)
	}
	if code, body := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz %d: %s", code, body)
	}

	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"prog":"task.c","seed":2}`))
	if err != nil {
		t.Fatal(err)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || len(sub.Jobs) != 1 {
		t.Fatalf("submit: %d, %d jobs", resp.StatusCode, len(sub.Jobs))
	}
	id := sub.Jobs[0].ID
	await(t, s, id, 30*time.Second)
	code, body := get("/jobs/" + id)
	if code != http.StatusOK || !strings.Contains(body, `"status": "done"`) {
		t.Fatalf("/jobs/%s %d:\n%s", id, code, body)
	}
	if code, body := get("/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "serve_jobs_admitted_total") {
		t.Fatalf("/metrics %d:\n%s", code, body)
	}
	if code, _ := get("/jobs/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown job returned %d, want 404", code)
	}

	// Bad submissions are 400s, not daemon failures.
	for _, bad := range []string{`{"prog":"no-such-prog"}`, `{"token":"tg1:!!!"}`, `not json`} {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad submission %q: %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestHTTPShedsWith429: an overflowing queue answers 429 + Retry-After.
func TestHTTPShedsWith429(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	long, err := s.Submit(JobSpec{Prog: "lulesh", LIters: 50, TimeoutMS: 120_000})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, long[0].ID)
	if _, err := s.Submit(JobSpec{Prog: "task.c"}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"prog":"task.c"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	_ = s.Cancel(long[0].ID)
}
