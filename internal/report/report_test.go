package report

import (
	"strings"
	"testing"
)

func sample() *Race {
	return &Race{
		SegA: "task.c:8", SegB: "task.c:11",
		ThreadA: 1, ThreadB: 2,
		Kind: "w/w",
		Ranges: []Range{{
			Lo: 0xC3EA040, Hi: 0xC3EA044, Region: RegionHeap,
			BlockAddr: 0xC3EA040, BlockSize: 8,
			BlockStack: []string{"task.c:3", "main (task.c:2)"},
		}},
	}
}

func TestRaceRenderingMatchesListing6Shape(t *testing.T) {
	out := sample().String()
	for _, want := range []string{
		"Segments task.c:8 and task.c:11 were declared independent",
		"4 bytes from 0xC3EA040",
		"allocated in block 0xC3EA040 of size 8",
		"from task.c:3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRaceBytes(t *testing.T) {
	r := sample()
	r.Ranges = append(r.Ranges, Range{Lo: 100, Hi: 116, Region: RegionStack})
	if r.Bytes() != 20 {
		t.Fatalf("bytes = %d", r.Bytes())
	}
}

func TestSetSortDeterministic(t *testing.T) {
	s := &Set{}
	s.Add(&Race{SegA: "b.c:2", SegB: "b.c:3", Ranges: []Range{{Lo: 10, Hi: 11}}})
	s.Add(&Race{SegA: "a.c:1", SegB: "b.c:3", Ranges: []Range{{Lo: 20, Hi: 21}}})
	s.Add(&Race{SegA: "a.c:1", SegB: "a.c:9", Ranges: []Range{{Lo: 5, Hi: 6}}})
	s.Sort()
	got := []string{
		s.Races[0].SegA + "/" + s.Races[0].SegB,
		s.Races[1].SegA + "/" + s.Races[1].SegB,
		s.Races[2].SegA + "/" + s.Races[2].SegB,
	}
	want := []string{"a.c:1/a.c:9", "a.c:1/b.c:3", "b.c:2/b.c:3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	if !strings.Contains(s.String(), "3 determinacy race report(s)") {
		t.Fatalf("summary missing:\n%s", s.String())
	}
}

func TestRegionNames(t *testing.T) {
	want := map[MemRegion]string{
		RegionGlobal: "global", RegionHeap: "heap", RegionPool: "runtime-pool",
		RegionTLS: "tls", RegionStack: "stack",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("%d -> %q", r, r.String())
		}
	}
}

func TestRangeWithoutBlock(t *testing.T) {
	r := &Race{SegA: "x:1", SegB: "y:2", Kind: "r/w",
		Ranges: []Range{{Lo: 0x100, Hi: 0x108, Region: RegionGlobal}}}
	out := r.String()
	if strings.Contains(out, "allocated in block") {
		t.Fatalf("global range rendered a heap block:\n%s", out)
	}
	if !strings.Contains(out, "(global)") {
		t.Fatalf("region missing:\n%s", out)
	}
}
