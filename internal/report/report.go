// Package report defines determinacy-race reports and their rendering — the
// "meaningful error reports" deliverable of the paper (§V-C, Listing 6):
// the two segments declared independent, the conflicting byte range, and the
// allocation block it belongs to, all resolved to source locations through
// debug info.
package report

import (
	"fmt"
	"sort"
	"strings"
)

// MemRegion classifies where a conflicting range lives.
type MemRegion uint8

// Memory regions.
const (
	RegionGlobal MemRegion = iota
	RegionHeap
	RegionPool // runtime fast-pool (task descriptors / payloads)
	RegionTLS
	RegionStack
)

// String renders a region name.
func (r MemRegion) String() string {
	switch r {
	case RegionGlobal:
		return "global"
	case RegionHeap:
		return "heap"
	case RegionPool:
		return "runtime-pool"
	case RegionTLS:
		return "tls"
	case RegionStack:
		return "stack"
	}
	return "?"
}

// Range is one conflicting byte span inside a race.
type Range struct {
	Lo, Hi uint64
	Region MemRegion
	// Block describes the containing heap allocation, when any.
	BlockAddr uint64
	BlockSize uint64
	// BlockStack is the allocation stack resolved to source locations.
	BlockStack []string
}

// Race is one determinacy-race report: a pair of segments declared
// independent that access overlapping memory with at least one write.
type Race struct {
	// SegA / SegB label the two segments by construct location
	// (e.g. "task.c:8").
	SegA, SegB string
	// ThreadA / ThreadB are the executing guest threads.
	ThreadA, ThreadB int
	// Write reports which sides wrote ("w/w", "w/r", "r/w").
	Kind string
	// Ranges are the conflicting byte spans (merged).
	Ranges []Range
}

// Bytes sums the conflicting bytes.
func (r *Race) Bytes() uint64 {
	var n uint64
	for _, rg := range r.Ranges {
		n += rg.Hi - rg.Lo
	}
	return n
}

// String renders the report in the paper's Listing 6 style.
func (r *Race) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Segments %s and %s were declared independent while accessing the same memory address (%s)\n",
		r.SegA, r.SegB, r.Kind)
	for _, rg := range r.Ranges {
		fmt.Fprintf(&b, "  %d bytes from 0x%X (%s)", rg.Hi-rg.Lo, rg.Lo, rg.Region)
		if rg.BlockAddr != 0 {
			fmt.Fprintf(&b, " allocated in block 0x%X of size %d", rg.BlockAddr, rg.BlockSize)
			if len(rg.BlockStack) > 0 {
				fmt.Fprintf(&b, "\n    from %s", strings.Join(rg.BlockStack, "\n         "))
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Set is an ordered collection of races with dedup by segment pair.
type Set struct {
	Races []*Race
}

// Add appends a race.
func (s *Set) Add(r *Race) { s.Races = append(s.Races, r) }

// Len returns the report count — the paper's "N° of reports" metric counts
// conflicting segment pairs.
func (s *Set) Len() int { return len(s.Races) }

// Sort orders reports deterministically (by labels then threads).
func (s *Set) Sort() {
	sort.Slice(s.Races, func(i, j int) bool {
		a, b := s.Races[i], s.Races[j]
		if a.SegA != b.SegA {
			return a.SegA < b.SegA
		}
		if a.SegB != b.SegB {
			return a.SegB < b.SegB
		}
		if a.ThreadA != b.ThreadA {
			return a.ThreadA < b.ThreadA
		}
		if len(a.Ranges) > 0 && len(b.Ranges) > 0 {
			return a.Ranges[0].Lo < b.Ranges[0].Lo
		}
		return a.ThreadB < b.ThreadB
	})
}

// String renders all reports.
func (s *Set) String() string {
	var b strings.Builder
	for i, r := range s.Races {
		fmt.Fprintf(&b, "==%d== %s", i+1, r)
	}
	fmt.Fprintf(&b, "== %d determinacy race report(s)\n", len(s.Races))
	return b.String()
}
