package gasm

import "testing"

// FuzzAssemble: the assembler takes untrusted text (cmd/taskgrind -asm), so
// arbitrary input must produce either a builder or an error — never a panic.
// Note gbuild reports inconsistent programs through Link errors, so a
// successful Assemble is also Linked to drive that path.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"",
		"func main:\n  ldi r0, 0\n  hlt r0\n",
		"; comment only\n# another\n",
		".file \"x.c\"\n.global g 8\nfunc main:\n  la r1, g\n  ld64 r0, [r1+0]\n  hlt r0\n",
		".string s \"hi\"\n.word w 1 2 3\n.tls t 8\n",
		"func f:\nlbl:\n  addi r1, r1, 1\n  beq r1, r2, lbl\n  ret\n",
		".runtime omp\nfunc main:\n  hlt r0\n",
		"func main:\n  enter 16\n  push r1\n  pop r1\n  leave\n",
		"func main:\n  st32 [sp-4], r2\n  hcall malloc\n  creq 0x4f10\n  hlt r0\n",
		// Near-miss inputs that must error cleanly.
		"func main\n",
		"ldi r0, 0\n",
		"func main:\n  ldi r99, 0\n",
		"func main:\n  beq r0, r1, nowhere\n",
		".word w zz\n",
		".global\n",
		"func main:\n  ld64 r0, [r1+\n",
		"func main:\n  ldi r0, 99999999999999999999\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		b, err := Assemble(src)
		if err != nil {
			return
		}
		// Linking may legitimately fail (undefined symbols, no main); it
		// just must not panic either.
		_, _ = b.Link()
	})
}
