// Package gasm is a textual assembler for the guest ISA: it parses a simple
// assembly dialect into a gbuild program, so new analysis targets can be
// written as .s files and run under any tool via cmd/taskgrind -asm.
//
// Syntax overview (see the package tests for complete programs):
//
//	; comment                     # comment
//	.file "prog.c"                source file for debug info
//	.global name size             zero-initialized data object
//	.string name "text"           NUL-terminated string
//	.word name v1 [v2 ...]        initialized 64-bit words
//	.tls name size                thread-local object (addressed off tp)
//	.entry name                   entry function (default main)
//	.runtime omp                  link the OpenMP guest prelude (__kmpc_*)
//	.runtime qthreads             link the Qthreads FEB wrappers
//
//	func name:                    open a function
//	.line N                       line directive
//	label:                        local label
//	  ldi r0, 42                  mnemonics mirror internal/guest
//	  la  r1, name                load symbol address (pseudo)
//	  ld64 r2, [r1+8]             loads/stores use [reg+offset]
//	  st32 [sp-4], r2
//	  beq r0, r1, label           branches name local labels
//	  call fn                     jal to a function
//	  hcall malloc                host call by name
//	  creq 0x4f10                 client request
//	  enter 16 / leave            frame pseudos
//	  push r1 / pop r1
//	  ret / hlt r0
package gasm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/omp"
	"repro/internal/qthreads"
)

// Assemble parses source into a linked image-ready builder.
func Assemble(src string) (*gbuild.Builder, error) {
	a := &asm{
		b:      gbuild.New(),
		labels: map[string]gbuild.Label{},
		file:   "asm.s",
	}
	for i, raw := range strings.Split(src, "\n") {
		a.lineNo = i + 1
		if err := a.line(raw); err != nil {
			return nil, fmt.Errorf("gasm: line %d: %w", a.lineNo, err)
		}
	}
	return a.b, nil
}

type asm struct {
	b      *gbuild.Builder
	f      *gbuild.Func
	labels map[string]gbuild.Label
	file   string
	lineNo int
}

func (a *asm) line(raw string) error {
	// Strip comments.
	if i := strings.IndexAny(raw, ";#"); i >= 0 {
		// Keep ; or # inside string literals.
		if q := strings.Index(raw, `"`); q < 0 || q > i {
			raw = raw[:i]
		}
	}
	s := strings.TrimSpace(raw)
	if s == "" {
		return nil
	}
	switch {
	case strings.HasPrefix(s, ".file"):
		name, err := quoted(s[len(".file"):])
		if err != nil {
			return err
		}
		a.file = name
		return nil
	case strings.HasPrefix(s, ".global"):
		fs := strings.Fields(s)
		if len(fs) != 3 {
			return fmt.Errorf(".global wants: name size")
		}
		size, err := strconv.ParseUint(fs[2], 0, 32)
		if err != nil {
			return err
		}
		a.b.Global(fs[1], size)
		return nil
	case strings.HasPrefix(s, ".string"):
		rest := strings.TrimSpace(s[len(".string"):])
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return fmt.Errorf(".string wants: name \"text\"")
		}
		text, err := quoted(rest[sp:])
		if err != nil {
			return err
		}
		a.b.GlobalString(rest[:sp], text)
		return nil
	case strings.HasPrefix(s, ".tls"):
		fs := strings.Fields(s)
		if len(fs) != 3 {
			return fmt.Errorf(".tls wants: name size")
		}
		size, err := strconv.ParseUint(fs[2], 0, 32)
		if err != nil {
			return err
		}
		a.b.TLSGlobal(fs[1], size)
		return nil
	case strings.HasPrefix(s, ".word"):
		fs := strings.Fields(s)
		if len(fs) < 3 {
			return fmt.Errorf(".word wants: name v1 [v2 ...]")
		}
		buf := make([]byte, 8*(len(fs)-2))
		for i, tok := range fs[2:] {
			v, err := strconv.ParseInt(tok, 0, 64)
			if err != nil {
				return err
			}
			for j := 0; j < 8; j++ {
				buf[i*8+j] = byte(uint64(v) >> (8 * j))
			}
		}
		a.b.GlobalInit(fs[1], buf)
		return nil
	case strings.HasPrefix(s, ".runtime"):
		fs := strings.Fields(s)
		if len(fs) != 2 {
			return fmt.Errorf(".runtime wants: omp|qthreads")
		}
		switch fs[1] {
		case "omp":
			omp.EmitPrelude(a.b)
		case "qthreads":
			qthreads.EmitPrelude(a.b)
		default:
			return fmt.Errorf("unknown runtime %q", fs[1])
		}
		return nil
	case strings.HasPrefix(s, ".entry"):
		fs := strings.Fields(s)
		if len(fs) != 2 {
			return fmt.Errorf(".entry wants: name")
		}
		a.b.SetEntry(fs[1])
		return nil
	case strings.HasPrefix(s, ".line"):
		if a.f == nil {
			return fmt.Errorf(".line outside a function")
		}
		fs := strings.Fields(s)
		if len(fs) != 2 {
			return fmt.Errorf(".line wants: number")
		}
		n, err := strconv.Atoi(fs[1])
		if err != nil {
			return err
		}
		a.f.Line(n)
		return nil
	case strings.HasPrefix(s, "func "):
		name := strings.TrimSuffix(strings.TrimSpace(s[5:]), ":")
		a.f = a.b.Func(name, a.file)
		a.labels = map[string]gbuild.Label{}
		return nil
	case strings.HasSuffix(s, ":") && !strings.Contains(s, " "):
		if a.f == nil {
			return fmt.Errorf("label outside a function")
		}
		a.f.Bind(a.label(strings.TrimSuffix(s, ":")))
		return nil
	}
	if a.f == nil {
		return fmt.Errorf("instruction outside a function")
	}
	return a.instr(s)
}

// label interns a local label.
func (a *asm) label(name string) gbuild.Label {
	if l, ok := a.labels[name]; ok {
		return l
	}
	l := a.f.NewLabel()
	a.labels[name] = l
	return l
}

// operands splits "r1, [sp+8], 42" into trimmed fields.
func operands(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// reg parses a register name.
func reg(s string) (uint8, error) {
	switch s {
	case "sp":
		return guest.SP, nil
	case "fp":
		return guest.FP, nil
	case "lr":
		return guest.LR, nil
	case "tp":
		return guest.TP, nil
	}
	if strings.HasPrefix(s, "r") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < guest.NumRegs {
			return uint8(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

// imm parses an immediate (decimal, 0x hex, negative, 'c' char).
func imm(s string) (int64, error) {
	if len(s) == 3 && s[0] == '\'' && s[2] == '\'' {
		return int64(s[1]), nil
	}
	return strconv.ParseInt(s, 0, 64)
}

// memOperand parses "[reg+off]" / "[reg-off]" / "[reg]".
func memOperand(s string) (uint8, int32, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	sep := strings.IndexAny(inner, "+-")
	if sep < 0 {
		r, err := reg(inner)
		return r, 0, err
	}
	r, err := reg(strings.TrimSpace(inner[:sep]))
	if err != nil {
		return 0, 0, err
	}
	off, err := imm(strings.TrimSpace(inner[sep:]))
	if err != nil {
		return 0, 0, err
	}
	return r, int32(off), nil
}

// alu3 maps three-register mnemonics.
var alu3 = map[string]guest.Opcode{
	"add": guest.OpAdd, "sub": guest.OpSub, "mul": guest.OpMul,
	"div": guest.OpDiv, "rem": guest.OpRem, "and": guest.OpAnd,
	"or": guest.OpOr, "xor": guest.OpXor, "shl": guest.OpShl,
	"shr": guest.OpShr, "sar": guest.OpSar, "seq": guest.OpSeq,
	"sne": guest.OpSne, "slt": guest.OpSlt, "sge": guest.OpSge,
	"sltu": guest.OpSltu, "sgeu": guest.OpSgeu,
	"fadd": guest.OpFadd, "fsub": guest.OpFsub, "fmul": guest.OpFmul,
	"fdiv": guest.OpFdiv, "flt": guest.OpFlt, "fle": guest.OpFle,
	"feq": guest.OpFeq,
}

// branches maps conditional-branch mnemonics.
var branches = map[string]guest.Opcode{
	"beq": guest.OpBeq, "bne": guest.OpBne, "blt": guest.OpBlt,
	"bge": guest.OpBge, "bltu": guest.OpBltu, "bgeu": guest.OpBgeu,
}

// loads and stores by width.
var ldWidth = map[string]uint8{"ld8": 1, "ld16": 2, "ld32": 4, "ld64": 8}
var stWidth = map[string]uint8{"st8": 1, "st16": 2, "st32": 4, "st64": 8}

func (a *asm) instr(s string) error {
	sp := strings.IndexAny(s, " \t")
	mnem, rest := s, ""
	if sp >= 0 {
		mnem, rest = s[:sp], strings.TrimSpace(s[sp:])
	}
	ops := operands(rest)
	f := a.f

	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s wants %d operands, got %d", mnem, n, len(ops))
		}
		return nil
	}

	if op, ok := alu3[mnem]; ok {
		if err := need(3); err != nil {
			return err
		}
		rd, e1 := reg(ops[0])
		rs1, e2 := reg(ops[1])
		rs2, e3 := reg(ops[2])
		if err := firstErr(e1, e2, e3); err != nil {
			return err
		}
		f.ALU(op, rd, rs1, rs2)
		return nil
	}
	if op, ok := branches[mnem]; ok {
		if err := need(3); err != nil {
			return err
		}
		rs1, e1 := reg(ops[0])
		rs2, e2 := reg(ops[1])
		if err := firstErr(e1, e2); err != nil {
			return err
		}
		f.Br(op, rs1, rs2, a.label(ops[2]))
		return nil
	}
	if w, ok := ldWidth[mnem]; ok {
		if err := need(2); err != nil {
			return err
		}
		rd, e1 := reg(ops[0])
		base, off, e2 := memOperand(ops[1])
		if err := firstErr(e1, e2); err != nil {
			return err
		}
		f.Ld(w, rd, base, off)
		return nil
	}
	if w, ok := stWidth[mnem]; ok {
		if err := need(2); err != nil {
			return err
		}
		base, off, e1 := memOperand(ops[0])
		rs, e2 := reg(ops[1])
		if err := firstErr(e1, e2); err != nil {
			return err
		}
		f.St(w, base, off, rs)
		return nil
	}

	switch mnem {
	case "nop":
		f.Nop()
	case "ldi":
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(ops[0])
		if err != nil {
			return err
		}
		v, err := imm(ops[1])
		if err != nil {
			return err
		}
		f.LdConst64(rd, uint64(v))
	case "la":
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(ops[0])
		if err != nil {
			return err
		}
		f.LoadSym(rd, ops[1])
	case "mov":
		if err := need(2); err != nil {
			return err
		}
		rd, e1 := reg(ops[0])
		rs, e2 := reg(ops[1])
		if err := firstErr(e1, e2); err != nil {
			return err
		}
		f.Mov(rd, rs)
	case "addi", "muli", "andi", "ori":
		if err := need(3); err != nil {
			return err
		}
		rd, e1 := reg(ops[0])
		rs1, e2 := reg(ops[1])
		if err := firstErr(e1, e2); err != nil {
			return err
		}
		v, err := imm(ops[2])
		if err != nil {
			return err
		}
		switch mnem {
		case "addi":
			f.Addi(rd, rs1, int32(v))
		case "muli":
			f.Muli(rd, rs1, int32(v))
		case "andi":
			f.Andi(rd, rs1, int32(v))
		case "ori":
			f.Ori(rd, rs1, int32(v))
		}
	case "itof", "ftoi":
		if err := need(2); err != nil {
			return err
		}
		rd, e1 := reg(ops[0])
		rs, e2 := reg(ops[1])
		if err := firstErr(e1, e2); err != nil {
			return err
		}
		if mnem == "itof" {
			f.Itof(rd, rs)
		} else {
			f.Ftoi(rd, rs)
		}
	case "jmp":
		if err := need(1); err != nil {
			return err
		}
		f.Jmp(a.label(ops[0]))
	case "call":
		if err := need(1); err != nil {
			return err
		}
		f.Call(ops[0])
	case "callr":
		if err := need(1); err != nil {
			return err
		}
		r, err := reg(ops[0])
		if err != nil {
			return err
		}
		f.CallReg(r)
	case "ret":
		f.Ret()
	case "hcall":
		if err := need(1); err != nil {
			return err
		}
		f.Hcall(ops[0])
	case "creq":
		if err := need(1); err != nil {
			return err
		}
		v, err := imm(ops[0])
		if err != nil {
			return err
		}
		f.Creq(int32(v))
	case "hlt":
		if err := need(1); err != nil {
			return err
		}
		r, err := reg(ops[0])
		if err != nil {
			return err
		}
		f.Hlt(r)
	case "enter":
		if err := need(1); err != nil {
			return err
		}
		v, err := imm(ops[0])
		if err != nil {
			return err
		}
		f.Enter(int32(v))
	case "leave":
		f.Leave()
	case "push":
		if err := need(1); err != nil {
			return err
		}
		r, err := reg(ops[0])
		if err != nil {
			return err
		}
		f.Push(r)
	case "pop":
		if err := need(1); err != nil {
			return err
		}
		r, err := reg(ops[0])
		if err != nil {
			return err
		}
		f.Pop(r)
	default:
		return fmt.Errorf("unknown mnemonic %q", mnem)
	}
	return nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// quoted extracts a double-quoted string with \n \t \" \\ escapes.
func quoted(s string) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("want a quoted string, got %q", s)
	}
	body := s[1 : len(s)-1]
	var out strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c == '\\' && i+1 < len(body) {
			i++
			switch body[i] {
			case 'n':
				out.WriteByte('\n')
			case 't':
				out.WriteByte('\t')
			case '"':
				out.WriteByte('"')
			case '\\':
				out.WriteByte('\\')
			default:
				return "", fmt.Errorf("bad escape \\%c", body[i])
			}
			continue
		}
		out.WriteByte(c)
	}
	return out.String(), nil
}
