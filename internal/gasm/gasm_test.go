package gasm_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gasm"
	"repro/internal/harness"
)

// run assembles and executes a source file under the standard harness.
func run(t *testing.T, src string, tool *core.Taskgrind) (uint64, string) {
	t.Helper()
	b, err := gasm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	setup := harness.Setup{Seed: 1, Threads: 4, Stdout: &out}
	if tool != nil {
		setup.Tool = tool
	}
	res, _, err := harness.BuildAndRun(b, setup)
	if err != nil || res.Err != nil {
		t.Fatal(err, res.Err)
	}
	return res.ExitCode, out.String()
}

func TestArithmeticAndControlFlow(t *testing.T) {
	exit, _ := run(t, `
.file "sum.c"
func main:
  ldi r0, 0
  ldi r1, 1
  ldi r2, 11
loop:
  add r0, r0, r1
  addi r1, r1, 1
  blt r1, r2, loop
  hlt r0            ; 1+2+...+10 = 55
`, nil)
	if exit != 55 {
		t.Fatalf("sum = %d", exit)
	}
}

func TestGlobalsMemoryAndCalls(t *testing.T) {
	exit, out := run(t, `
.file "g.c"
.global cell 8
.string msg "ok\n"

func helper:
  enter 16
  la r1, cell
  ld64 r2, [r1]
  muli r2, r2, 2
  st64 [r1+0], r2
  leave

func main:
  enter 0
  la r1, cell
  ldi r2, 21
  st64 [r1], r2
  call helper
  la r0, msg
  hcall print_str
  la r1, cell
  ld64 r0, [r1]
  hlt r0
`, nil)
	if exit != 42 {
		t.Fatalf("cell = %d", exit)
	}
	if out != "ok\n" {
		t.Fatalf("stdout = %q", out)
	}
}

func TestHostCallsAndHex(t *testing.T) {
	exit, _ := run(t, `
func main:
  ldi r0, 0x20
  hcall malloc
  mov r4, r0
  ldi r1, 'A'
  st8 [r4], r1
  ld8 r0, [r4]
  hlt r0
`, nil)
	if exit != 'A' {
		t.Fatalf("exit = %d", exit)
	}
}

func TestPushPopAndStackOps(t *testing.T) {
	exit, _ := run(t, `
func main:
  ldi r1, 7
  push r1
  ldi r1, 0
  pop r0
  hlt r0
`, nil)
	if exit != 7 {
		t.Fatalf("exit = %d", exit)
	}
}

func TestTLSDirective(t *testing.T) {
	exit, _ := run(t, `
.tls tvar 8
func main:
  ldi r1, 9
  st64 [tp+64], r1
  ld64 r0, [tp+64]
  hlt r0
`, nil)
	if exit != 9 {
		t.Fatalf("tls = %d", exit)
	}
}

func TestEntryDirective(t *testing.T) {
	exit, _ := run(t, `
.entry start
func other:
  ldi r0, 1
  hlt r0
func start:
  ldi r0, 2
  hlt r0
`, nil)
	if exit != 2 {
		t.Fatalf("entry = %d", exit)
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"func main:\n  frobnicate r0\n", "unknown mnemonic"},
		{"func main:\n  add r0, r1\n", "wants 3 operands"},
		{"func main:\n  ldi rx, 1\n", "bad register"},
		{"  ldi r0, 1\n", "outside a function"},
		{"func main:\n  ld64 r0, r1\n", "bad memory operand"},
		{".global x\n", ".global wants"},
		{".string x 5\n", "quoted string"},
	}
	for _, c := range cases {
		_, err := gasm.Assemble(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("src %q: err = %v, want %q", c.src, err, c.want)
		}
		if err != nil && !strings.Contains(err.Error(), "line ") {
			t.Errorf("error lacks line number: %v", err)
		}
	}
}

// TestAssembledRaceProgram: a complete two-task racy program written in
// assembly, detected by Taskgrind — the end-to-end path cmd/taskgrind -asm
// uses. The OpenMP entry points are ordinary call targets.
func TestAssembledRaceProgram(t *testing.T) {
	src := `
.file "race.s"
.runtime omp
.global x 8

func writer1:
  .line 5
  la r1, x
  ldi r2, 1
  st64 [r1], r2
  ret

func writer2:
  .line 9
  la r1, x
  ldi r2, 2
  st64 [r1], r2
  ret

func spawn_one:
  ; r0 = task fn address: allocate a descriptor and enqueue
  enter 16
  mov r1, r0
  ldi r0, 0
  hcall __kmp_task_alloc
  ldi r1, 0
  ldi r2, 0
  ldi r3, 0
  hcall __kmp_task_enqueue
  ldi r9, 0
  beq r0, r9, deferred
  call __kmp_invoke_task
deferred:
  leave

func micro:
  enter 0
  hcall __kmp_single_enter
  ldi r1, 0
  beq r0, r1, skip
  la r0, writer1
  call spawn_one
  la r0, writer2
  call spawn_one
  call __kmpc_omp_taskwait
skip:
  leave

func main:
  enter 0
  la r0, micro
  ldi r1, 0
  ldi r2, 4
  call __kmpc_fork_call
  ldi r0, 0
  hlt r0
`
	found := false
	for seed := uint64(1); seed <= 6 && !found; seed++ {
		b, err := gasm.Assemble(src)
		if err != nil {
			t.Fatal(err)
		}
		tg := core.New(core.DefaultOptions())
		res, _, err := harness.BuildAndRun(b, harness.Setup{Tool: tg, Seed: seed, Threads: 4})
		if err != nil || res.Err != nil {
			t.Fatal(err, res.Err)
		}
		found = tg.RaceCount > 0
	}
	if !found {
		t.Fatal("assembled race not detected")
	}
}

func TestWordDirective(t *testing.T) {
	exit, _ := run(t, `
.word table 10 0x20 -3
func main:
  la r1, table
  ld64 r0, [r1]
  ld64 r2, [r1+8]
  add r0, r0, r2
  ld64 r2, [r1+16]
  add r0, r0, r2
  hlt r0           ; 10 + 32 - 3 = 39
`, nil)
	if exit != 39 {
		t.Fatalf("sum = %d", exit)
	}
}
