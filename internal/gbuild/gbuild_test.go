package gbuild

import (
	"strings"
	"testing"

	"repro/internal/guest"
)

func TestBuildLinkSmallProgram(t *testing.T) {
	b := New()
	b.Global("counter", 8)
	b.GlobalString("msg", "hi")
	f := b.Func("main", "t.c")
	f.Line(1)
	f.Ldi(guest.R0, 5)
	l := f.NewLabel()
	f.Bind(l)
	f.Line(2)
	f.Addi(guest.R0, guest.R0, -1)
	f.Ldi(guest.R1, 0)
	f.Bne(guest.R0, guest.R1, l)
	f.Hlt(guest.R0)

	im, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	if im.Entry != guest.TextBase {
		t.Errorf("entry = %#x", im.Entry)
	}
	if s := im.SymbolByName("counter"); s == nil || s.Kind != guest.SymObject {
		t.Error("counter symbol missing")
	}
	if file, line := im.LineFor(im.Entry); file != "t.c" || line != 1 {
		t.Errorf("line info = %s:%d", file, line)
	}
	// The backward branch must point at the bind site (instruction 1).
	in, err := im.FetchInstr(guest.TextBase + 3*guest.InstrBytes)
	if err != nil || in.Op != guest.OpBne {
		t.Fatalf("expected bne, got %v (%v)", in, err)
	}
	if uint64(uint32(in.Imm)) != guest.TextBase+1*guest.InstrBytes {
		t.Errorf("branch target = %#x", uint32(in.Imm))
	}
}

func TestForwardLabelAndCallFixups(t *testing.T) {
	b := New()
	f := b.Func("main", "t.c")
	done := f.NewLabel()
	f.Ldi(guest.R0, 1)
	f.Jmp(done)
	f.Ldi(guest.R0, 99) // skipped
	f.Bind(done)
	f.Call("leaf")
	f.Hlt(guest.R0)
	g := b.Func("leaf", "t.c")
	g.Addi(guest.R0, guest.R0, 1)
	g.Ret()

	im, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	leaf := im.SymbolByName("leaf")
	if leaf == nil {
		t.Fatal("no leaf symbol")
	}
	// jal must target leaf.
	jal, _ := im.FetchInstr(guest.TextBase + 3*guest.InstrBytes)
	if jal.Op != guest.OpJal || uint64(uint32(jal.Imm)) != leaf.Addr {
		t.Errorf("jal = %v, leaf at %#x", jal, leaf.Addr)
	}
}

func TestUndefinedSymbolFails(t *testing.T) {
	b := New()
	f := b.Func("main", "t.c")
	f.Call("nowhere")
	f.Hlt(guest.R0)
	if _, err := b.Link(); err == nil || !strings.Contains(err.Error(), "undefined symbol") {
		t.Fatalf("want undefined-symbol error, got %v", err)
	}
}

func TestMissingEntryFails(t *testing.T) {
	b := New()
	f := b.Func("notmain", "t.c")
	f.Ret()
	if _, err := b.Link(); err == nil {
		t.Fatal("want missing-entry error")
	}
}

func TestDuplicateGlobalFails(t *testing.T) {
	b := New()
	b.Global("x", 8)
	b.Global("x", 8)
	f := b.Func("main", "t.c")
	f.Hlt(guest.R0)
	if _, err := b.Link(); err == nil || !strings.Contains(err.Error(), "duplicate global") {
		t.Fatalf("want duplicate error, got %v", err)
	}
}

func TestLdConst64(t *testing.T) {
	b := New()
	f := b.Func("main", "t.c")
	f.LdConst64(guest.R0, 42)             // fits: 1 instr
	f.LdConst64(guest.R1, 0x123456789abc) // needs ldi+ldih
	f.Hlt(guest.R0)
	im, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	if n := len(im.Text); n != 4 {
		t.Errorf("instruction count = %d, want 4", n)
	}
}

func TestTLSGlobals(t *testing.T) {
	b := New()
	off1 := b.TLSGlobal("a", 8)
	off2 := b.TLSGlobal("b", 4)
	off3 := b.TLSGlobal("c", 8)
	if off1 != TCBSize {
		t.Errorf("first TLS offset = %d", off1)
	}
	if off2 != off1+8 {
		t.Errorf("second TLS offset = %d", off2)
	}
	if off3%8 != 0 || off3 <= off2 {
		t.Errorf("third TLS offset = %d (alignment)", off3)
	}
	if b.TLSOffset("b") != off2 {
		t.Error("TLSOffset lookup")
	}
	f := b.Func("main", "t.c")
	f.Hlt(guest.R0)
	im, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	if im.TLSSize < off3+8 {
		t.Errorf("TLSSize = %d", im.TLSSize)
	}
}

func TestHostImportInterning(t *testing.T) {
	b := New()
	f := b.Func("main", "t.c")
	f.Hcall("malloc")
	f.Hcall("free")
	f.Hcall("malloc")
	f.Hlt(guest.R0)
	im, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	if len(im.HostImports) != 2 {
		t.Errorf("imports = %v", im.HostImports)
	}
}
