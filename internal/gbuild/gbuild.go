// Package gbuild is the tool-chain back end for the guest ISA: a structured
// assembler that builds binary program images (internal/guest.Image) with
// symbol tables and line debug info.
//
// It plays the role of the compiler in the paper's setup: benchmark sources
// are expressed through this builder, the result is a genuine guest binary,
// and from that point on the DBI framework only ever sees instruction words.
package gbuild

import (
	"encoding/binary"
	"fmt"

	"repro/internal/guest"
)

// Label is a forward-referenceable code location inside a function.
type Label int

// fixupKind says how a pending reference patches its instruction.
type fixupKind uint8

const (
	fixImmLabel fixupKind = iota // imm <- absolute address of label
	fixImmSym                    // imm <- absolute address of symbol
	fixLdi64Sym                  // ldi/ldih pair <- address of symbol
)

type fixup struct {
	instr int // index into Builder.text
	kind  fixupKind
	label Label
	sym   string
}

// Builder accumulates functions and globals and links them into an Image.
type Builder struct {
	text    []guest.Instr
	lines   []lineRec
	symbols []guest.Symbol
	fixups  []fixup

	data      []byte
	dataSyms  map[string]uint64 // name -> address
	funcAddr  map[string]uint64 // name -> address (after Link)
	funcOrder []string
	funcsByNm map[string]*Func
	hostIDs   map[string]int
	hostNames []string
	entry     string
	linkErr   error

	tlsOff  uint64
	tlsSyms map[string]uint64
}

// TCBSize is the reserved thread-control-block header at the start of each
// thread's TLS block; _Thread_local offsets start past it.
const TCBSize = 64

// TLSGlobal reserves a per-thread (_Thread_local) object and returns its
// offset from the thread pointer (guest.TP).
func (b *Builder) TLSGlobal(name string, size uint64) uint64 {
	if b.tlsSyms == nil {
		b.tlsSyms = make(map[string]uint64)
		b.tlsOff = TCBSize
	}
	if _, dup := b.tlsSyms[name]; dup {
		b.fail(fmt.Errorf("gbuild: duplicate TLS global %q", name))
	}
	off := (b.tlsOff + 7) &^ 7
	b.tlsOff = off + size
	b.tlsSyms[name] = off
	return off
}

// TLSOffset returns the offset of a previously reserved TLS global.
func (b *Builder) TLSOffset(name string) uint64 {
	off, ok := b.tlsSyms[name]
	if !ok {
		b.fail(fmt.Errorf("gbuild: unknown TLS global %q", name))
	}
	return off
}

type lineRec struct {
	instr int
	file  string
	line  int
}

// New creates an empty builder.
func New() *Builder {
	return &Builder{
		dataSyms:  make(map[string]uint64),
		funcAddr:  make(map[string]uint64),
		funcsByNm: make(map[string]*Func),
		hostIDs:   make(map[string]int),
	}
}

// HostID interns a host-import name and returns its host-call number.
func (b *Builder) HostID(name string) int {
	if id, ok := b.hostIDs[name]; ok {
		return id
	}
	id := len(b.hostNames)
	b.hostIDs[name] = id
	b.hostNames = append(b.hostNames, name)
	return id
}

// Global reserves a zero-initialized data object of the given size, 8-byte
// aligned, and returns its address.
func (b *Builder) Global(name string, size uint64) uint64 {
	return b.GlobalInit(name, make([]byte, size))
}

// GlobalInit places an initialized data object and returns its address.
func (b *Builder) GlobalInit(name string, init []byte) uint64 {
	for len(b.data)%8 != 0 {
		b.data = append(b.data, 0)
	}
	addr := guest.DataBase + uint64(len(b.data))
	b.data = append(b.data, init...)
	if name != "" {
		if _, dup := b.dataSyms[name]; dup {
			b.fail(fmt.Errorf("gbuild: duplicate global %q", name))
		}
		b.dataSyms[name] = addr
		b.symbols = append(b.symbols, guest.Symbol{
			Name: name, Addr: addr, Size: uint64(len(init)), Kind: guest.SymObject,
		})
	}
	return addr
}

// GlobalU64 places a little-endian uint64 global.
func (b *Builder) GlobalU64(name string, v uint64) uint64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return b.GlobalInit(name, buf[:])
}

// GlobalString places a NUL-terminated string and returns its address.
func (b *Builder) GlobalString(name, s string) uint64 {
	return b.GlobalInit(name, append([]byte(s), 0))
}

// DataAddr returns the address of a previously placed global.
func (b *Builder) DataAddr(name string) uint64 {
	a, ok := b.dataSyms[name]
	if !ok {
		b.fail(fmt.Errorf("gbuild: unknown global %q", name))
	}
	return a
}

// SetEntry names the entry function (default "main").
func (b *Builder) SetEntry(name string) { b.entry = name }

func (b *Builder) fail(err error) {
	if b.linkErr == nil {
		b.linkErr = err
	}
}

// Func opens a new function with the given symbol name and source file for
// debug info. Instructions are appended through the returned Func until the
// next call to Func or Link.
func (b *Builder) Func(name, file string) *Func {
	if _, dup := b.funcsByNm[name]; dup {
		b.fail(fmt.Errorf("gbuild: duplicate function %q", name))
	}
	f := &Func{
		b:     b,
		name:  name,
		file:  file,
		start: len(b.text),
	}
	b.funcsByNm[name] = f
	b.funcOrder = append(b.funcOrder, name)
	return f
}

// Link resolves all references and produces a frozen image.
func (b *Builder) Link() (*guest.Image, error) {
	if b.linkErr != nil {
		return nil, b.linkErr
	}
	// Assign function symbol addresses.
	for _, name := range b.funcOrder {
		f := b.funcsByNm[name]
		addr := guest.TextBase + uint64(f.start)*guest.InstrBytes
		b.funcAddr[name] = addr
		b.symbols = append(b.symbols, guest.Symbol{
			Name: name, Addr: addr,
			Size: uint64(f.end-f.start) * guest.InstrBytes,
			Kind: guest.SymFunc,
		})
		for lbl, idx := range f.labels {
			if idx < 0 {
				return nil, fmt.Errorf("gbuild: %s: label %d bound nowhere", name, lbl)
			}
		}
	}
	// Apply fixups.
	for _, fx := range b.fixups {
		var target uint64
		switch fx.kind {
		case fixImmLabel, fixLdi64Sym, fixImmSym:
			if fx.sym != "" {
				a, ok := b.funcAddr[fx.sym]
				if !ok {
					a, ok = b.dataSyms[fx.sym]
				}
				if !ok {
					return nil, fmt.Errorf("gbuild: undefined symbol %q", fx.sym)
				}
				target = a
			} else {
				return nil, fmt.Errorf("gbuild: label fixup left unresolved")
			}
		}
		switch fx.kind {
		case fixImmSym:
			b.text[fx.instr].Imm = int32(uint32(target))
		case fixLdi64Sym:
			// ldi rd, lo32 ; ldih rd, hi32
			b.text[fx.instr].Imm = int32(uint32(target))
			b.text[fx.instr+1].Imm = int32(uint32(target >> 32))
		}
	}
	// Emit image.
	im := &guest.Image{
		Data:        append([]byte(nil), b.data...),
		HostImports: append([]string(nil), b.hostNames...),
		Symbols:     b.symbols,
	}
	im.Text = make([]uint64, len(b.text))
	for i, in := range b.text {
		if !in.Valid() {
			return nil, fmt.Errorf("gbuild: invalid instruction %d: %+v", i, in)
		}
		im.Text[i] = in.Encode()
	}
	// Line table: coalesce per-instruction records into ranges.
	for i, lr := range b.lines {
		addr := guest.TextBase + uint64(lr.instr)*guest.InstrBytes
		end := im.TextEnd()
		if i+1 < len(b.lines) {
			end = guest.TextBase + uint64(b.lines[i+1].instr)*guest.InstrBytes
		}
		if end > addr {
			im.Lines = append(im.Lines, guest.LineEntry{
				Addr: addr, Len: end - addr, File: lr.file, Line: lr.line,
			})
		}
	}
	im.TLSSize = b.tlsOff
	entry := b.entry
	if entry == "" {
		entry = "main"
	}
	ea, ok := b.funcAddr[entry]
	if !ok {
		return nil, fmt.Errorf("gbuild: entry function %q not defined", entry)
	}
	im.Entry = ea
	if err := im.Freeze(); err != nil {
		return nil, err
	}
	return im, nil
}

// Func emits instructions for one function.
type Func struct {
	b      *Builder
	name   string
	file   string
	start  int
	end    int
	labels []int // label -> text index (-1 = unbound)
	// pending label fixups local to this function
	pend []struct {
		instr int
		label Label
	}
	curLine int
}

// Name returns the function's symbol name.
func (f *Func) Name() string { return f.name }

// Line sets the source line attributed to subsequently emitted instructions.
func (f *Func) Line(n int) {
	f.curLine = n
	f.b.lines = append(f.b.lines, lineRec{instr: len(f.b.text), file: f.file, line: n})
}

// emit appends one instruction.
func (f *Func) emit(in guest.Instr) int {
	idx := len(f.b.text)
	f.b.text = append(f.b.text, in)
	f.end = len(f.b.text)
	return idx
}

// NewLabel creates an unbound label.
func (f *Func) NewLabel() Label {
	f.labels = append(f.labels, -1)
	return Label(len(f.labels) - 1)
}

// Bind attaches a label to the next emitted instruction.
func (f *Func) Bind(l Label) {
	if f.labels[l] != -1 {
		f.b.fail(fmt.Errorf("gbuild: %s: label %d bound twice", f.name, l))
	}
	f.labels[l] = len(f.b.text)
	// Resolve pending references now if possible at link... we resolve at
	// function close; simplest is to patch immediately for already-emitted
	// references once the label binds.
	for i := 0; i < len(f.pend); i++ {
		p := f.pend[i]
		if p.label == l {
			f.b.text[p.instr].Imm = int32(uint32(guest.TextBase + uint64(f.labels[l])*guest.InstrBytes))
			f.pend = append(f.pend[:i], f.pend[i+1:]...)
			i--
		}
	}
}

// labelImm returns the label's absolute address if bound, otherwise records a
// pending patch for the instruction about to be emitted at index idx.
func (f *Func) refLabel(idx int, l Label) {
	if f.labels[l] >= 0 {
		f.b.text[idx].Imm = int32(uint32(guest.TextBase + uint64(f.labels[l])*guest.InstrBytes))
		return
	}
	f.pend = append(f.pend, struct {
		instr int
		label Label
	}{idx, l})
}

// --- plain instructions ---

// Nop emits a no-op.
func (f *Func) Nop() { f.emit(guest.Instr{Op: guest.OpNop}) }

// Ldi loads a sign-extended 32-bit immediate.
func (f *Func) Ldi(rd uint8, imm int32) {
	f.emit(guest.Instr{Op: guest.OpLdi, Rd: rd, Imm: imm})
}

// LdConst64 materializes an arbitrary 64-bit constant (1 or 2 instructions).
func (f *Func) LdConst64(rd uint8, v uint64) {
	if int64(int32(uint32(v))) == int64(v) {
		f.Ldi(rd, int32(uint32(v)))
		return
	}
	f.emit(guest.Instr{Op: guest.OpLdi, Rd: rd, Imm: int32(uint32(v))})
	f.emit(guest.Instr{Op: guest.OpLdih, Rd: rd, Imm: int32(uint32(v >> 32))})
}

// LdFloat materializes a float64 constant's bit pattern.
func (f *Func) LdFloat(rd uint8, v float64) {
	f.LdConst64(rd, f64bits(v))
}

// LoadSym loads the absolute address of a symbol (function or global).
func (f *Func) LoadSym(rd uint8, sym string) {
	idx := f.emit(guest.Instr{Op: guest.OpLdi, Rd: rd})
	f.emit(guest.Instr{Op: guest.OpLdih, Rd: rd})
	f.b.fixups = append(f.b.fixups, fixup{instr: idx, kind: fixLdi64Sym, sym: sym})
}

// Mov copies a register.
func (f *Func) Mov(rd, rs uint8) { f.emit(guest.Instr{Op: guest.OpMov, Rd: rd, Rs1: rs}) }

// ALU emits a three-register ALU operation.
func (f *Func) ALU(op guest.Opcode, rd, rs1, rs2 uint8) {
	f.emit(guest.Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Add emits rd = rs1 + rs2.
func (f *Func) Add(rd, rs1, rs2 uint8) { f.ALU(guest.OpAdd, rd, rs1, rs2) }

// Sub emits rd = rs1 - rs2.
func (f *Func) Sub(rd, rs1, rs2 uint8) { f.ALU(guest.OpSub, rd, rs1, rs2) }

// Mul emits rd = rs1 * rs2.
func (f *Func) Mul(rd, rs1, rs2 uint8) { f.ALU(guest.OpMul, rd, rs1, rs2) }

// Div emits rd = rs1 / rs2 (signed).
func (f *Func) Div(rd, rs1, rs2 uint8) { f.ALU(guest.OpDiv, rd, rs1, rs2) }

// Addi emits rd = rs1 + imm.
func (f *Func) Addi(rd, rs1 uint8, imm int32) {
	f.emit(guest.Instr{Op: guest.OpAddi, Rd: rd, Rs1: rs1, Imm: imm})
}

// Muli emits rd = rs1 * imm.
func (f *Func) Muli(rd, rs1 uint8, imm int32) {
	f.emit(guest.Instr{Op: guest.OpMuli, Rd: rd, Rs1: rs1, Imm: imm})
}

// Andi emits rd = rs1 & imm.
func (f *Func) Andi(rd, rs1 uint8, imm int32) {
	f.emit(guest.Instr{Op: guest.OpAndi, Rd: rd, Rs1: rs1, Imm: imm})
}

// Ori emits rd = rs1 | imm.
func (f *Func) Ori(rd, rs1 uint8, imm int32) {
	f.emit(guest.Instr{Op: guest.OpOri, Rd: rd, Rs1: rs1, Imm: imm})
}

// Slt emits rd = (rs1 < rs2) signed.
func (f *Func) Slt(rd, rs1, rs2 uint8) { f.ALU(guest.OpSlt, rd, rs1, rs2) }

// Seq emits rd = (rs1 == rs2).
func (f *Func) Seq(rd, rs1, rs2 uint8) { f.ALU(guest.OpSeq, rd, rs1, rs2) }

// Fadd emits float64 rd = rs1 + rs2.
func (f *Func) Fadd(rd, rs1, rs2 uint8) { f.ALU(guest.OpFadd, rd, rs1, rs2) }

// Fsub emits float64 rd = rs1 - rs2.
func (f *Func) Fsub(rd, rs1, rs2 uint8) { f.ALU(guest.OpFsub, rd, rs1, rs2) }

// Fmul emits float64 rd = rs1 * rs2.
func (f *Func) Fmul(rd, rs1, rs2 uint8) { f.ALU(guest.OpFmul, rd, rs1, rs2) }

// Fdiv emits float64 rd = rs1 / rs2.
func (f *Func) Fdiv(rd, rs1, rs2 uint8) { f.ALU(guest.OpFdiv, rd, rs1, rs2) }

// Itof converts int64 rs1 to float64 rd.
func (f *Func) Itof(rd, rs1 uint8) { f.emit(guest.Instr{Op: guest.OpItof, Rd: rd, Rs1: rs1}) }

// Ftoi truncates float64 rs1 to int64 rd.
func (f *Func) Ftoi(rd, rs1 uint8) { f.emit(guest.Instr{Op: guest.OpFtoi, Rd: rd, Rs1: rs1}) }

// Ld emits rd = M[rs1+off] with the given width (1/2/4/8).
func (f *Func) Ld(width uint8, rd, rs1 uint8, off int32) {
	var op guest.Opcode
	switch width {
	case 1:
		op = guest.OpLd8
	case 2:
		op = guest.OpLd16
	case 4:
		op = guest.OpLd32
	case 8:
		op = guest.OpLd64
	default:
		f.b.fail(fmt.Errorf("gbuild: bad load width %d", width))
		return
	}
	f.emit(guest.Instr{Op: op, Rd: rd, Rs1: rs1, Imm: off})
}

// St emits M[rs1+off] = rs2 with the given width.
func (f *Func) St(width uint8, rs1 uint8, off int32, rs2 uint8) {
	var op guest.Opcode
	switch width {
	case 1:
		op = guest.OpSt8
	case 2:
		op = guest.OpSt16
	case 4:
		op = guest.OpSt32
	case 8:
		op = guest.OpSt64
	default:
		f.b.fail(fmt.Errorf("gbuild: bad store width %d", width))
		return
	}
	f.emit(guest.Instr{Op: op, Rs1: rs1, Rs2: rs2, Imm: off})
}

// Jmp branches unconditionally to a label.
func (f *Func) Jmp(l Label) {
	idx := f.emit(guest.Instr{Op: guest.OpJmp})
	f.refLabel(idx, l)
}

// Br emits a conditional branch (one of OpBeq..OpBgeu) to a label.
func (f *Func) Br(op guest.Opcode, rs1, rs2 uint8, l Label) {
	idx := f.emit(guest.Instr{Op: op, Rs1: rs1, Rs2: rs2})
	f.refLabel(idx, l)
}

// Beq branches if rs1 == rs2.
func (f *Func) Beq(rs1, rs2 uint8, l Label) { f.Br(guest.OpBeq, rs1, rs2, l) }

// Bne branches if rs1 != rs2.
func (f *Func) Bne(rs1, rs2 uint8, l Label) { f.Br(guest.OpBne, rs1, rs2, l) }

// Blt branches if rs1 < rs2 (signed).
func (f *Func) Blt(rs1, rs2 uint8, l Label) { f.Br(guest.OpBlt, rs1, rs2, l) }

// Bge branches if rs1 >= rs2 (signed).
func (f *Func) Bge(rs1, rs2 uint8, l Label) { f.Br(guest.OpBge, rs1, rs2, l) }

// Call emits jal to a named function.
func (f *Func) Call(fn string) {
	idx := f.emit(guest.Instr{Op: guest.OpJal})
	f.b.fixups = append(f.b.fixups, fixup{instr: idx, kind: fixImmSym, sym: fn})
}

// CallReg emits jalr through a register holding a function address.
func (f *Func) CallReg(rs1 uint8) { f.emit(guest.Instr{Op: guest.OpJalr, Rs1: rs1}) }

// Ret returns through lr.
func (f *Func) Ret() { f.emit(guest.Instr{Op: guest.OpRet}) }

// Hcall calls a host library function by name; arguments r0..r5, result r0.
func (f *Func) Hcall(name string) {
	id := f.b.HostID(name)
	f.emit(guest.Instr{Op: guest.OpHcall, Imm: int32(id)})
}

// Creq issues a client request with the given code; arguments r0..r5,
// result r0.
func (f *Func) Creq(code int32) { f.emit(guest.Instr{Op: guest.OpCreq, Imm: code}) }

// Hlt terminates the thread (program, on the main thread) with status rs1.
func (f *Func) Hlt(rs1 uint8) { f.emit(guest.Instr{Op: guest.OpHlt, Rs1: rs1}) }

// --- call-frame conveniences ---

// Enter sets up a stack frame: pushes lr and fp, sets fp = sp, reserves
// localBytes of locals (must be a multiple of 8).
func (f *Func) Enter(localBytes int32) {
	f.Addi(guest.SP, guest.SP, -16)
	f.St(8, guest.SP, 8, guest.LR)
	f.St(8, guest.SP, 0, guest.FP)
	f.Mov(guest.FP, guest.SP)
	if localBytes > 0 {
		f.Addi(guest.SP, guest.SP, -localBytes)
	}
}

// Leave tears down the frame created by Enter and returns.
func (f *Func) Leave() {
	f.Mov(guest.SP, guest.FP)
	f.Ld(8, guest.FP, guest.SP, 0)
	f.Ld(8, guest.LR, guest.SP, 8)
	f.Addi(guest.SP, guest.SP, 16)
	f.Ret()
}

// Push pushes a register.
func (f *Func) Push(r uint8) {
	f.Addi(guest.SP, guest.SP, -8)
	f.St(8, guest.SP, 0, r)
}

// Pop pops into a register.
func (f *Func) Pop(r uint8) {
	f.Ld(8, r, guest.SP, 0)
	f.Addi(guest.SP, guest.SP, 8)
}

// LocalAddr computes rd = fp - off for a local slot (off > 0, within the
// frame reserved by Enter).
func (f *Func) LocalAddr(rd uint8, off int32) {
	f.Addi(rd, guest.FP, -off)
}

// StLocal stores rs into the local slot at fp-off.
func (f *Func) StLocal(width uint8, off int32, rs uint8) {
	f.St(width, guest.FP, -off, rs)
}

// LdLocal loads the local slot at fp-off into rd.
func (f *Func) LdLocal(width uint8, rd uint8, off int32) {
	f.Ld(width, rd, guest.FP, -off)
}
