package gbuild

import "math"

func f64bits(v float64) uint64 { return math.Float64bits(v) }
