package vm

// This file is the guest fault model and crash-containment layer. A buggy
// guest must never take the host down: wild accesses, runaway loops,
// deadlocks and even host-side panics raised while servicing the guest are
// converted at the basic-block boundary into structured errors that carry
// the faulting thread, its guest PC and a symbolizable stack trace — the
// analog of Valgrind turning SIGSEGV into an error report instead of dying.

import (
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/gmem"
	"repro/internal/guest"
)

// GuestFault reports an invalid guest memory access caught by the strict
// gmem permission map: the DBI equivalent of a segmentation fault.
type GuestFault struct {
	// PC is the guest address of the faulting instruction.
	PC uint64
	// Addr is the first violating byte.
	Addr uint64
	// Access is read or write.
	Access gmem.Access
	// Width is the access size in bytes.
	Width uint8
	// Perm is what was mapped at Addr (PermNone when unmapped).
	Perm gmem.Perm
	// TID is the faulting guest thread.
	TID int
	// Stack is the shadow call stack at the fault, innermost first.
	Stack []uint64
}

// Error implements error.
func (f *GuestFault) Error() string {
	why := "unmapped"
	if f.Perm != gmem.PermNone {
		why = "protection " + f.Perm.String()
	}
	return fmt.Sprintf("vm: invalid %s of size %d at 0x%x (%s) by thread %d at pc 0x%x",
		f.Access, f.Width, f.Addr, why, f.TID, f.PC)
}

// HostPanic reports a Go panic raised host-side (runtime host calls, tool
// instrumentation, IR evaluation) while running a guest block, recovered at
// the block boundary instead of crashing the process.
type HostPanic struct {
	// Val is the recovered panic value.
	Val any
	// PC/TID/Stack locate the guest when the panic fired.
	PC    uint64
	TID   int
	Stack []uint64
	// GoStack is the host stack trace (debug.Stack) for diagnostics.
	GoStack []byte
}

// Error implements error.
func (p *HostPanic) Error() string {
	return fmt.Sprintf("vm: host panic while running thread %d at pc 0x%x: %v", p.TID, p.PC, p.Val)
}

// EnginePanic lets an execution engine annotate a panic that unwinds through
// it with the precise guest PC (e.g. the last IMark of an IR block, which is
// finer-grained than the block entry the VM would otherwise report). Engines
// recover, wrap and re-panic; runBlockGuarded unwraps.
type EnginePanic struct {
	PC  uint64
	Val any
}

// WatchdogError reports a tripped execution watchdog: a block, instruction
// or wall-clock budget was exhausted while the guest was still running.
type WatchdogError struct {
	// Kind is "blocks", "instrs" or "wall".
	Kind string
	// Limit is the budget that tripped (blocks, instructions, or
	// nanoseconds for "wall").
	Limit uint64
	// Threads is the per-thread state dump at the trip.
	Threads []ThreadDump
}

// Error implements error. The "blocks" form keeps the historical
// "block budget (%d) exhausted" wording.
func (w *WatchdogError) Error() string {
	switch w.Kind {
	case "blocks":
		return fmt.Sprintf("vm: block budget (%d) exhausted", w.Limit)
	case "instrs":
		return fmt.Sprintf("vm: instruction budget (%d) exhausted", w.Limit)
	default:
		return fmt.Sprintf("vm: wall-clock timeout (%v) exceeded", time.Duration(w.Limit))
	}
}

// CanceledError terminates a run whose RunOpts.Ctx was canceled. It is an
// administrative stop, not a guest failure: no CrashReport is built for it,
// and the harness taxonomy classifies it as "canceled". Threads carries the
// point-of-stop dump so a canceled job's status can still say where the
// guest was.
type CanceledError struct {
	// Cause is the context's cancellation cause (context.Canceled unless
	// the canceler attached one).
	Cause error
	// Threads is the per-thread state dump at the stop.
	Threads []ThreadDump
}

// Error implements error.
func (e *CanceledError) Error() string {
	return fmt.Sprintf("vm: run canceled: %v", e.Cause)
}

// Unwrap exposes the cancellation cause (errors.Is(err, context.Canceled)).
func (e *CanceledError) Unwrap() error { return e.Cause }

// DeadlockError enriches ErrDeadlock with each thread's block reason and
// stack trace. errors.Is(err, ErrDeadlock) keeps working.
type DeadlockError struct {
	Threads []ThreadDump
	summary string
}

// Error implements error, preserving the historical message shape.
func (e *DeadlockError) Error() string { return ErrDeadlock.Error() + e.summary }

// Unwrap makes errors.Is(err, ErrDeadlock) true.
func (e *DeadlockError) Unwrap() error { return ErrDeadlock }

// ThreadDump is a point-in-time snapshot of one guest thread, used in crash
// reports, watchdog trips and deadlock diagnostics.
type ThreadDump struct {
	ID          int
	State       ThreadState
	BlockReason string
	PC          uint64
	// Stack is the shadow call stack, innermost first.
	Stack []uint64
	// Blocks/Instrs are the thread's execution totals.
	Blocks, Instrs uint64
}

// stateName renders a ThreadState.
func stateName(s ThreadState) string {
	switch s {
	case ThreadRunnable:
		return "runnable"
	case ThreadBlocked:
		return "blocked"
	default:
		return "exited"
	}
}

// DumpThreads snapshots every thread's state (crash reports, watchdog).
func (m *Machine) DumpThreads() []ThreadDump {
	out := make([]ThreadDump, 0, len(m.threads))
	for _, t := range m.threads {
		out = append(out, ThreadDump{
			ID:          t.ID,
			State:       t.State,
			BlockReason: t.BlockReason,
			PC:          t.PC,
			Stack:       t.StackTrace(t.PC),
			Blocks:      t.BlocksExecuted,
			Instrs:      t.InstrsExecuted,
		})
	}
	return out
}

// CrashReport is the Valgrind-style rendering of a contained failure:
// what happened, where (symbolized), and what every thread was doing.
type CrashReport struct {
	// Kind is "invalid-access", "host-panic", "watchdog" or "deadlock".
	Kind string
	// Err is the underlying structured error.
	Err error
	// TID is the faulting thread (-1 when the failure is not attributable
	// to a single thread, e.g. deadlock).
	TID int
	// PC is the faulting guest address (0 when not applicable).
	PC uint64
	// Stack is the faulting thread's stack, innermost first.
	Stack []uint64
	// Threads dumps every thread.
	Threads []ThreadDump
	// ReplayToken, when set by the harness, is rendered at the bottom of
	// the report: re-running `taskgrind -replay <token>` reproduces this
	// crash bit-identically.
	ReplayToken string
}

// CrashReport classifies err. It returns nil when err is nil or not one of
// the contained-failure types (plain errors stay plain).
func (m *Machine) CrashReport(err error) *CrashReport {
	if err == nil {
		return nil
	}
	var gf *GuestFault
	if errors.As(err, &gf) {
		return &CrashReport{Kind: "invalid-access", Err: gf, TID: gf.TID,
			PC: gf.PC, Stack: gf.Stack, Threads: m.DumpThreads()}
	}
	var hp *HostPanic
	if errors.As(err, &hp) {
		return &CrashReport{Kind: "host-panic", Err: hp, TID: hp.TID,
			PC: hp.PC, Stack: hp.Stack, Threads: m.DumpThreads()}
	}
	var wd *WatchdogError
	if errors.As(err, &wd) {
		return &CrashReport{Kind: "watchdog", Err: wd, TID: -1, Threads: wd.Threads}
	}
	var dl *DeadlockError
	if errors.As(err, &dl) {
		return &CrashReport{Kind: "deadlock", Err: dl, TID: -1, Threads: dl.Threads}
	}
	return nil
}

// Render formats the report with the image's symbol and line tables:
//
//	==taskgrind== Invalid write of size 8 at 0xdead0000 (unmapped) by thread 2
//	==taskgrind==    at task_a (task.c:8)
//	==taskgrind==    by micro (task.c:6)
func (r *CrashReport) Render(im *guest.Image) string {
	const tag = "==taskgrind== "
	var sb strings.Builder
	switch e := r.Err.(type) {
	case *GuestFault:
		why := "unmapped"
		if e.Perm != gmem.PermNone {
			why = "protection " + e.Perm.String()
		}
		fmt.Fprintf(&sb, "%sInvalid %s of size %d at 0x%x (%s) by thread %d\n",
			tag, e.Access, e.Width, e.Addr, why, e.TID)
	case *HostPanic:
		fmt.Fprintf(&sb, "%sRuntime failure while running thread %d: %v\n", tag, e.TID, e.Val)
	case *WatchdogError:
		fmt.Fprintf(&sb, "%sWatchdog: %v\n", tag, e)
	case *DeadlockError:
		fmt.Fprintf(&sb, "%sDeadlock: no runnable threads\n", tag)
	default:
		fmt.Fprintf(&sb, "%s%v\n", tag, r.Err)
	}
	writeStack := func(stack []uint64) {
		for i, pc := range stack {
			how := "by"
			if i == 0 {
				how = "at"
			}
			loc := fmt.Sprintf("0x%x", pc)
			if im != nil {
				loc = im.Locate(pc)
			}
			fmt.Fprintf(&sb, "%s   %s %s\n", tag, how, loc)
		}
	}
	if len(r.Stack) > 0 {
		writeStack(r.Stack)
	}
	if r.Kind == "deadlock" || r.Kind == "watchdog" {
		for _, td := range r.Threads {
			if td.State == ThreadExited {
				continue
			}
			reason := td.BlockReason
			if reason == "" {
				reason = "-"
			}
			fmt.Fprintf(&sb, "%sthread %d: %s (reason: %s) at pc 0x%x, %d blocks, %d instrs\n",
				tag, td.ID, stateName(td.State), reason, td.PC, td.Blocks, td.Instrs)
			writeStack(td.Stack)
		}
	}
	if r.ReplayToken != "" {
		fmt.Fprintf(&sb, "%sreplay: %s\n", tag, r.ReplayToken)
	}
	return sb.String()
}

// runBlockGuarded executes one block, converting any panic that unwinds out
// of the engine (guest faults from strict gmem, host-side runtime panics,
// tool bugs) into a structured error — the crash-containment boundary.
func (m *Machine) runBlockGuarded(t *Thread) (res RunResult, err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		pc := t.PC
		if ep, ok := r.(*EnginePanic); ok {
			pc = ep.PC
			r = ep.Val
		} else if fl, ok := m.Eng.(FaultLocator); ok {
			pc = fl.FaultPoint(m, t)
		}
		if f, ok := r.(*gmem.Fault); ok {
			m.GuestFaults++
			err = &GuestFault{
				PC: pc, Addr: f.Addr, Access: f.Access, Width: f.Width,
				Perm: f.Perm, TID: t.ID, Stack: t.StackTrace(pc),
			}
		} else {
			m.HostPanics++
			err = &HostPanic{
				Val: r, PC: pc, TID: t.ID,
				Stack: t.StackTrace(pc), GoStack: debug.Stack(),
			}
		}
		res = RunOK
	}()
	return m.Eng.RunBlock(m, t)
}
