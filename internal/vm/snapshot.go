package vm

// Checkpoint capture/restore for the guest machine. Capture serializes
// everything the VM owns — registers, thread scheduler state, counters, the
// PRNG stream position, and the dirty-page delta since the previous capture.
// What it deliberately does not serialize is host-side object graphs hanging
// off threads (Thread.Tool, Thread.RT): those are reconstructed by
// deterministic re-execution when a supervisor rewinds a full DBI run.
// In-place RestoreCheckpoint is therefore exact only for pure-guest machines
// (no tool/runtime state, as in the VM's own tests); the harness supervisor
// uses captures as fidelity probes and rebuilds full runs from boot.

import (
	"fmt"

	"repro/internal/gmem"
	"repro/internal/snapshot"
)

// CaptureCheckpoint snapshots the machine at the current block boundary.
// Page deltas come from the dirty-generation cut, so EnableDirtyTracking
// must be on (the first capture then carries everything resident). The
// returned checkpoint's CacheGen is zero; callers owning a translation cache
// stamp it afterwards.
func (m *Machine) CaptureCheckpoint() *snapshot.Checkpoint {
	cp := &snapshot.Checkpoint{
		Slices:        m.Slices,
		Blocks:        m.BlocksExecuted,
		Instrs:        m.InstrsExecuted,
		Switches:      m.Switches,
		Preemptions:   m.Preemptions,
		GuestFaults:   m.GuestFaults,
		HostPanics:    m.HostPanics,
		WatchdogTrips: m.WatchdogTrips,
		RNG:           m.rng,
		Exited:        m.exited,
		ExitCode:      m.exitCode,
		NextStackTop:  m.nextStackTop,
		NextTLS:       m.nextTLS,
	}
	cp.Threads = make([]snapshot.ThreadState, len(m.threads))
	for i, t := range m.threads {
		ts := &cp.Threads[i]
		ts.ID = t.ID
		ts.Regs = t.Regs
		ts.PC = t.PC
		ts.State = uint8(t.State)
		ts.BlockReason = t.BlockReason
		ts.StackLo, ts.StackHi = t.StackLo, t.StackHi
		ts.TLSBase, ts.TLSGen = t.TLSBase, t.TLSGen
		ts.Blocks, ts.Instrs = t.BlocksExecuted, t.InstrsExecuted
		for _, f := range t.CallStack {
			ts.CallStack = append(ts.CallStack, snapshot.Frame{Fn: f.Fn, CallSite: f.CallSite, SP: f.SP})
		}
	}
	cp.Pages = m.Mem.CutGeneration()
	cp.Regions = m.Mem.Regions()
	cp.Digest = cp.ComputeDigest()
	return cp
}

// StateDigest computes the cheap online-divergence digest of the current
// state (same function as Checkpoint.ComputeDigest) without cutting the
// dirty generation or copying pages.
func (m *Machine) StateDigest() uint64 {
	cp := snapshot.Checkpoint{
		Slices:   m.Slices,
		Blocks:   m.BlocksExecuted,
		Instrs:   m.InstrsExecuted,
		Switches: m.Switches,
		RNG:      m.rng,
	}
	cp.Threads = make([]snapshot.ThreadState, len(m.threads))
	for i, t := range m.threads {
		ts := &cp.Threads[i]
		ts.ID = t.ID
		ts.Regs = t.Regs
		ts.PC = t.PC
		ts.State = uint8(t.State)
		ts.Instrs = t.InstrsExecuted
		for _, f := range t.CallStack {
			ts.CallStack = append(ts.CallStack, snapshot.Frame{Fn: f.Fn, CallSite: f.CallSite, SP: f.SP})
		}
	}
	return cp.ComputeDigest()
}

// RestoreCheckpoint rewinds the machine in place to a retained checkpoint.
// Memory is restored incrementally: every page dirtied after cp (later
// checkpoint deltas plus the current uncut generation) is rewritten with its
// value at cp from the manager's history, or zeroed if it was untouched
// then. Threads created after cp are dropped; host-side Tool/RT state is NOT
// restored — callers with tool or runtime state must rewind by re-execution
// instead (see the harness supervisor).
func (m *Machine) RestoreCheckpoint(cp *snapshot.Checkpoint, mgr *snapshot.Manager) error {
	if cp == nil {
		return fmt.Errorf("vm: restore: nil checkpoint")
	}
	if len(cp.Threads) > len(m.threads) {
		return fmt.Errorf("vm: restore: checkpoint has %d threads, machine has %d",
			len(cp.Threads), len(m.threads))
	}

	// Collect every page written after cp: deltas of retained checkpoints
	// newer than cp, then whatever the current generation dirtied.
	touched := make(map[uint64]struct{})
	after := false
	found := false
	for _, c := range mgr.Checkpoints() {
		if after {
			for _, pd := range c.Pages {
				touched[pd.Idx] = struct{}{}
			}
		}
		if c == cp {
			after, found = true, true
		}
	}
	if !found {
		return fmt.Errorf("vm: restore: checkpoint seq %d not retained", cp.Seq)
	}
	for _, pd := range m.Mem.CutGeneration() {
		touched[pd.Idx] = struct{}{}
	}
	restore := make([]gmem.PageDump, 0, len(touched))
	zero := make([]byte, gmem.PageSize)
	for idx := range touched {
		if data, ok := mgr.PageAt(cp, idx); ok {
			restore = append(restore, gmem.PageDump{Idx: idx, Data: data})
		} else {
			restore = append(restore, gmem.PageDump{Idx: idx, Data: zero})
		}
	}
	m.Mem.WritePages(restore)
	m.Mem.SetRegions(cp.Regions)

	m.threads = m.threads[:len(cp.Threads)]
	for i := range cp.Threads {
		ts, t := &cp.Threads[i], m.threads[i]
		t.Regs = ts.Regs
		t.PC = ts.PC
		t.State = ThreadState(ts.State)
		t.BlockReason = ts.BlockReason
		t.StackLo, t.StackHi = ts.StackLo, ts.StackHi
		t.TLSBase, t.TLSGen = ts.TLSBase, ts.TLSGen
		t.BlocksExecuted, t.InstrsExecuted = ts.Blocks, ts.Instrs
		t.CallStack = t.CallStack[:0]
		for _, f := range ts.CallStack {
			t.CallStack = append(t.CallStack, Frame{Fn: f.Fn, CallSite: f.CallSite, SP: f.SP})
		}
	}

	m.Slices = cp.Slices
	m.BlocksExecuted = cp.Blocks
	m.InstrsExecuted = cp.Instrs
	m.Switches = cp.Switches
	m.Preemptions = cp.Preemptions
	m.GuestFaults = cp.GuestFaults
	m.HostPanics = cp.HostPanics
	m.WatchdogTrips = cp.WatchdogTrips
	m.rng = cp.RNG
	m.exited = cp.Exited
	m.exitCode = cp.ExitCode
	m.nextStackTop = cp.NextStackTop
	m.nextTLS = cp.NextTLS
	return nil
}

// RNGState exposes the scheduler PRNG position (replay diagnostics).
func (m *Machine) RNGState() uint64 { return m.rng }
