package vm_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/vm"
)

// buildSpawner builds a program where main spawns a worker thread through a
// test host call, both increment a shared counter in a loop, and main waits
// for the worker via a blocking host call.
func buildSpawner(t *testing.T) *guest.Image {
	t.Helper()
	b := gbuild.New()
	b.Global("counter", 8)
	b.Global("done", 8)

	w := b.Func("worker", "s.c")
	loop := w.NewLabel()
	w.Ldi(guest.R3, 0)
	w.Bind(loop)
	w.LoadSym(guest.R1, "counter")
	w.Ld(8, guest.R2, guest.R1, 0)
	w.Addi(guest.R2, guest.R2, 1)
	w.St(8, guest.R1, 0, guest.R2)
	w.Addi(guest.R3, guest.R3, 1)
	w.Ldi(guest.R2, 10)
	w.Blt(guest.R3, guest.R2, loop)
	w.Hcall("signal_done")
	w.Hlt(guest.R0)

	f := b.Func("main", "s.c")
	f.Hcall("spawn_worker")
	wait := f.NewLabel()
	f.Bind(wait)
	f.Hcall("wait_done") // 1 when done, 0 blocked-retry
	f.Ldi(guest.R1, 0)
	f.Beq(guest.R0, guest.R1, wait)
	f.LoadSym(guest.R1, "counter")
	f.Ld(8, guest.R0, guest.R1, 0)
	f.Hlt(guest.R0)

	im, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	return im
}

// testHost registers the spawn/signal/wait host calls.
type testHost struct {
	done   bool
	waiter *vm.Thread
}

func (h *testHost) install(reg *vm.HostRegistry, im *guest.Image) {
	reg.Register("spawn_worker", func(m *vm.Machine, t *vm.Thread) vm.HostResult {
		m.NewThread(im.SymbolByName("worker").Addr, 0)
		return vm.HostResult{}
	})
	reg.Register("signal_done", func(m *vm.Machine, t *vm.Thread) vm.HostResult {
		h.done = true
		if h.waiter != nil {
			h.waiter.Wake()
		}
		return vm.HostResult{}
	})
	reg.Register("wait_done", func(m *vm.Machine, t *vm.Thread) vm.HostResult {
		if h.done {
			return vm.HostResult{Ret: 1}
		}
		h.waiter = t
		return vm.HostResult{Ret: 0, Action: vm.HostBlock, Reason: "wait_done"}
	})
}

func TestThreadSpawnBlockWake(t *testing.T) {
	im := buildSpawner(t)
	h := &testHost{}
	reg := vm.NewHostRegistry()
	h.install(reg, im)
	m, err := vm.New(im, reg, vm.Config{Seed: 3, Slice: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.ExitCode() != 10 {
		t.Fatalf("counter = %d, want 10", m.ExitCode())
	}
	if len(m.Threads()) != 2 {
		t.Fatalf("threads = %d", len(m.Threads()))
	}
}

func TestSchedulerDeterminism(t *testing.T) {
	run := func(seed uint64) (uint64, uint64) {
		im := buildSpawner(t)
		h := &testHost{}
		reg := vm.NewHostRegistry()
		h.install(reg, im)
		m, _ := vm.New(im, reg, vm.Config{Seed: seed, Slice: 2})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.InstrsExecuted, m.Switches
	}
	i1, s1 := run(7)
	i2, s2 := run(7)
	if i1 != i2 || s1 != s2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", i1, s1, i2, s2)
	}
}

func TestDeadlockDetection(t *testing.T) {
	b := gbuild.New()
	f := b.Func("main", "d.c")
	f.Hcall("block_forever")
	f.Hlt(guest.R0)
	im, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	reg := vm.NewHostRegistry()
	reg.Register("block_forever", func(m *vm.Machine, t *vm.Thread) vm.HostResult {
		return vm.HostResult{Action: vm.HostBlock, Reason: "forever"}
	})
	m, _ := vm.New(im, reg, vm.Config{Seed: 1})
	err = m.Run()
	if !errors.Is(err, vm.ErrDeadlock) {
		t.Fatalf("err = %v, want deadlock", err)
	}
	if !strings.Contains(err.Error(), "forever") {
		t.Fatalf("deadlock reason missing: %v", err)
	}
}

func TestBlockBudget(t *testing.T) {
	b := gbuild.New()
	f := b.Func("main", "l.c")
	loop := f.NewLabel()
	f.Bind(loop)
	f.Jmp(loop) // infinite loop
	im, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	m, _ := vm.New(im, vm.NewHostRegistry(), vm.Config{Seed: 1})
	if err := m.RunOpts(vm.RunOpts{MaxBlocks: 100}); err == nil {
		t.Fatal("budget exhaustion not reported")
	}
}

func TestTLSAndStackAssignment(t *testing.T) {
	b := gbuild.New()
	b.TLSGlobal("x", 8)
	f := b.Func("main", "t.c")
	// Return the TP register (must equal the thread's TLS base).
	f.Mov(guest.R0, guest.TP)
	f.Hlt(guest.R0)
	im, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	m, _ := vm.New(im, vm.NewHostRegistry(), vm.Config{})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	main := m.Thread(0)
	if m.ExitCode() != main.TLSBase {
		t.Fatalf("TP = %#x, TLSBase = %#x", m.ExitCode(), main.TLSBase)
	}
	if main.TLSBase < guest.TLSBase || main.TLSBase >= guest.TLSLimit {
		t.Fatalf("TLS base outside region: %#x", main.TLSBase)
	}
	if main.StackHi <= main.StackLo || main.StackHi > guest.StackRegionTop {
		t.Fatalf("bad stack bounds: [%#x, %#x)", main.StackLo, main.StackHi)
	}
}

func TestStdoutPlumbing(t *testing.T) {
	b := gbuild.New()
	b.GlobalString("msg", "hello guest\n")
	f := b.Func("main", "p.c")
	f.LoadSym(guest.R0, "msg")
	f.Hcall("print_str")
	f.Ldi(guest.R0, 0)
	f.Hlt(guest.R0)
	im, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	reg := vm.NewHostRegistry()
	reg.Register("print_str", func(m *vm.Machine, t *vm.Thread) vm.HostResult {
		m.Stdout.Write([]byte(m.Mem.ReadCString(t.Regs[guest.R0])))
		return vm.HostResult{}
	})
	var out bytes.Buffer
	m, _ := vm.New(im, reg, vm.Config{Stdout: &out})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if out.String() != "hello guest\n" {
		t.Fatalf("stdout = %q", out.String())
	}
}

func TestUnresolvedImportFails(t *testing.T) {
	b := gbuild.New()
	f := b.Func("main", "u.c")
	f.Hcall("not_registered")
	f.Hlt(guest.R0)
	im, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.New(im, vm.NewHostRegistry(), vm.Config{}); err == nil {
		t.Fatal("unresolved host import accepted")
	}
}

func TestShadowCallStack(t *testing.T) {
	b := gbuild.New()
	var depth uint64
	f := b.Func("main", "c.c")
	f.Call("a")
	f.Hlt(guest.R0)
	a := b.Func("a", "c.c")
	a.Enter(0)
	a.Call("bfn")
	a.Leave()
	bf := b.Func("bfn", "c.c")
	bf.Enter(0)
	bf.Hcall("probe")
	bf.Leave()
	im, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	reg := vm.NewHostRegistry()
	var traceLen int
	reg.Register("probe", func(m *vm.Machine, th *vm.Thread) vm.HostResult {
		depth = uint64(len(th.CallStack))
		traceLen = len(th.StackTrace(th.PC))
		return vm.HostResult{}
	})
	m, _ := vm.New(im, reg, vm.Config{})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if depth != 2 {
		t.Fatalf("call depth at probe = %d, want 2", depth)
	}
	if traceLen != int(depth)+1 {
		t.Fatalf("trace len %d, depth %d", traceLen, depth)
	}
	if len(m.Thread(0).CallStack) != 0 {
		t.Fatal("shadow stack not unwound at exit")
	}
}

func TestHooksFire(t *testing.T) {
	im := buildSpawner(t)
	h := &testHost{}
	reg := vm.NewHostRegistry()
	h.install(reg, im)
	m, _ := vm.New(im, reg, vm.Config{Seed: 2, Slice: 2})
	var starts, exits, switches int
	m.Hooks.ThreadStart = func(*vm.Thread) { starts++ }
	m.Hooks.ThreadExit = func(*vm.Thread) { exits++ }
	m.Hooks.Switch = func(*vm.Thread) { switches++ }
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// Main existed before the hook was set; the worker fires it.
	if starts != 1 || exits != 2 || switches == 0 {
		t.Fatalf("starts=%d exits=%d switches=%d", starts, exits, switches)
	}
}
