package vm

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/vex"
)

// AccessHook observes one memory access during direct execution: the
// compiled-in check of a compile-time-instrumented tool.
type AccessHook func(t *Thread, addr uint64, width uint8, pc uint64)

// DirectEngine interprets guest instructions without any translation or
// instrumentation. It is the "no tools" reference executor of the
// evaluation: the fastest way this substrate can run a program.
//
// Compile-time-instrumented tools (Archer, TaskSanitizer, ROMP) attach
// LoadHook/StoreHook plus a per-instruction Filter: their checks run inline
// with native-speed execution, unlike heavyweight DBI which pays for IR
// translation and interpretation on every instruction — this is where the
// paper's 10x-vs-100x overhead gap comes from.
type DirectEngine struct {
	LoadHook  AccessHook
	StoreHook AccessHook
	// Filter marks instrumented instructions (indexed by text offset /
	// InstrBytes). Nil with hooks set means "instrument everything".
	Filter []bool
}

// hookable reports whether the instruction at pc is instrumented.
func (e *DirectEngine) hookable(pc uint64) bool {
	if e.Filter == nil {
		return true
	}
	idx := (pc - guest.TextBase) / guest.InstrBytes
	return idx < uint64(len(e.Filter)) && e.Filter[idx]
}

// RunBlock interprets instructions from t.PC until a block-ending
// instruction executes.
func (e *DirectEngine) RunBlock(m *Machine, t *Thread) (RunResult, error) {
	pc := t.PC
	for steps := 0; ; steps++ {
		if pc == ThreadExitAddr {
			t.PC = pc
			return m.ExitThread(t), nil
		}
		in, err := m.FetchDecoded(pc)
		if err != nil {
			return RunOK, err
		}
		m.InstrsExecuted++
		t.InstrsExecuted++
		next := pc + guest.InstrBytes
		r := &t.Regs
		imm := uint64(int64(in.Imm))
		switch in.Op {
		case guest.OpNop:
		case guest.OpLdi:
			r[in.Rd] = imm
		case guest.OpLdih:
			r[in.Rd] = (uint64(uint32(in.Imm)) << 32) | (r[in.Rd] & 0xffffffff)
		case guest.OpMov:
			r[in.Rd] = r[in.Rs1]
		case guest.OpAdd:
			r[in.Rd] = r[in.Rs1] + r[in.Rs2]
		case guest.OpSub:
			r[in.Rd] = r[in.Rs1] - r[in.Rs2]
		case guest.OpMul:
			r[in.Rd] = r[in.Rs1] * r[in.Rs2]
		case guest.OpDiv:
			r[in.Rd] = vex.EvalBinop(vex.OpDiv, r[in.Rs1], r[in.Rs2])
		case guest.OpRem:
			r[in.Rd] = vex.EvalBinop(vex.OpRem, r[in.Rs1], r[in.Rs2])
		case guest.OpAnd:
			r[in.Rd] = r[in.Rs1] & r[in.Rs2]
		case guest.OpOr:
			r[in.Rd] = r[in.Rs1] | r[in.Rs2]
		case guest.OpXor:
			r[in.Rd] = r[in.Rs1] ^ r[in.Rs2]
		case guest.OpShl:
			r[in.Rd] = r[in.Rs1] << (r[in.Rs2] & 63)
		case guest.OpShr:
			r[in.Rd] = r[in.Rs1] >> (r[in.Rs2] & 63)
		case guest.OpSar:
			r[in.Rd] = uint64(int64(r[in.Rs1]) >> (r[in.Rs2] & 63))
		case guest.OpSeq:
			r[in.Rd] = b2u(r[in.Rs1] == r[in.Rs2])
		case guest.OpSne:
			r[in.Rd] = b2u(r[in.Rs1] != r[in.Rs2])
		case guest.OpSlt:
			r[in.Rd] = b2u(int64(r[in.Rs1]) < int64(r[in.Rs2]))
		case guest.OpSge:
			r[in.Rd] = b2u(int64(r[in.Rs1]) >= int64(r[in.Rs2]))
		case guest.OpSltu:
			r[in.Rd] = b2u(r[in.Rs1] < r[in.Rs2])
		case guest.OpSgeu:
			r[in.Rd] = b2u(r[in.Rs1] >= r[in.Rs2])
		case guest.OpAddi:
			r[in.Rd] = r[in.Rs1] + imm
		case guest.OpMuli:
			r[in.Rd] = r[in.Rs1] * imm
		case guest.OpAndi:
			r[in.Rd] = r[in.Rs1] & imm
		case guest.OpOri:
			r[in.Rd] = r[in.Rs1] | imm
		case guest.OpShli:
			r[in.Rd] = r[in.Rs1] << (imm & 63)
		case guest.OpShri:
			r[in.Rd] = r[in.Rs1] >> (imm & 63)
		case guest.OpFadd:
			r[in.Rd] = vex.EvalBinop(vex.OpFAdd, r[in.Rs1], r[in.Rs2])
		case guest.OpFsub:
			r[in.Rd] = vex.EvalBinop(vex.OpFSub, r[in.Rs1], r[in.Rs2])
		case guest.OpFmul:
			r[in.Rd] = vex.EvalBinop(vex.OpFMul, r[in.Rs1], r[in.Rs2])
		case guest.OpFdiv:
			r[in.Rd] = vex.EvalBinop(vex.OpFDiv, r[in.Rs1], r[in.Rs2])
		case guest.OpFlt:
			r[in.Rd] = vex.EvalBinop(vex.OpFCmpLT, r[in.Rs1], r[in.Rs2])
		case guest.OpFle:
			r[in.Rd] = vex.EvalBinop(vex.OpFCmpLE, r[in.Rs1], r[in.Rs2])
		case guest.OpFeq:
			r[in.Rd] = vex.EvalBinop(vex.OpFCmpEQ, r[in.Rs1], r[in.Rs2])
		case guest.OpItof:
			r[in.Rd] = vex.EvalUnop(vex.OpItoF, r[in.Rs1])
		case guest.OpFtoi:
			r[in.Rd] = vex.EvalUnop(vex.OpFtoI, r[in.Rs1])
		case guest.OpLd8, guest.OpLd16, guest.OpLd32, guest.OpLd64:
			addr := r[in.Rs1] + imm
			if e.LoadHook != nil && e.hookable(pc) {
				e.LoadHook(t, addr, in.MemWidth(), pc)
			}
			r[in.Rd] = m.Mem.Load(addr, in.MemWidth())
		case guest.OpSt8, guest.OpSt16, guest.OpSt32, guest.OpSt64:
			addr := r[in.Rs1] + imm
			if e.StoreHook != nil && e.hookable(pc) {
				e.StoreHook(t, addr, in.MemWidth(), pc)
			}
			m.Mem.Store(addr, in.MemWidth(), r[in.Rs2])
		case guest.OpJmp:
			t.PC = uint64(uint32(in.Imm))
			return RunOK, nil
		case guest.OpBeq, guest.OpBne, guest.OpBlt, guest.OpBge, guest.OpBltu, guest.OpBgeu:
			if BranchTaken(in.Op, r[in.Rs1], r[in.Rs2]) {
				t.PC = uint64(uint32(in.Imm))
			} else {
				t.PC = next
			}
			return RunOK, nil
		case guest.OpJal:
			target := uint64(uint32(in.Imm))
			r[guest.LR] = next
			t.PushFrame(target, pc)
			t.PC = target
			return RunOK, nil
		case guest.OpJalr:
			target := r[in.Rs1]
			r[guest.LR] = next
			t.PushFrame(target, pc)
			t.PC = target
			return RunOK, nil
		case guest.OpRet:
			t.PopFrame()
			t.PC = r[guest.LR]
			if t.PC == ThreadExitAddr {
				return m.ExitThread(t), nil
			}
			return RunOK, nil
		case guest.OpHcall:
			t.PC = next
			return m.DoHostCall(t, in.Imm), nil
		case guest.OpCreq:
			t.PC = next
			m.DoClientRequest(t, in.Imm)
			return RunOK, nil
		case guest.OpHlt:
			t.Regs[guest.R0] = r[in.Rs1]
			t.PC = next
			return m.ExitThread(t), nil
		default:
			return RunOK, fmt.Errorf("vm: unimplemented opcode %s", in.Op)
		}
		pc = next
		t.PC = pc
	}
}

// BranchTaken evaluates a conditional-branch predicate; shared with the DBI
// translator so both engines agree.
func BranchTaken(op guest.Opcode, a, b uint64) bool {
	switch op {
	case guest.OpBeq:
		return a == b
	case guest.OpBne:
		return a != b
	case guest.OpBlt:
		return int64(a) < int64(b)
	case guest.OpBge:
		return int64(a) >= int64(b)
	case guest.OpBltu:
		return a < b
	case guest.OpBgeu:
		return a >= b
	}
	panic(fmt.Sprintf("vm: not a branch: %s", op))
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
