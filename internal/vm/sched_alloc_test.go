package vm

import "testing"

// TestPickDoesNotAllocate is the allocs/op guard for the scheduler's thread
// selection: pick() runs once per timeslice (and its PRNG draw once per solo
// chunk), so it must reuse the machine-owned scratch slice instead of
// building a fresh runnable list. The Machine is assembled by hand — pick()
// only touches threads, the PRNG and the scratch buffer.
func TestPickDoesNotAllocate(t *testing.T) {
	m := &Machine{rng: 0x9e3779b97f4a7c15}
	for i := 0; i < 8; i++ {
		st := ThreadRunnable
		if i%3 == 0 {
			st = ThreadBlocked
		}
		m.threads = append(m.threads, &Thread{ID: i, State: st, m: m})
	}
	// Prime the scratch buffer once; every later pick must reuse it.
	if m.pick() == nil {
		t.Fatal("pick returned nil with runnable threads")
	}
	if n := testing.AllocsPerRun(200, func() {
		if m.pick() == nil {
			t.Fatal("pick returned nil with runnable threads")
		}
	}); n != 0 {
		t.Errorf("pick: %.1f allocs per call, want 0", n)
	}
}

// TestSoleRunnableDoesNotAllocate guards the solo fast path's per-chunk
// runnable scan.
func TestSoleRunnableDoesNotAllocate(t *testing.T) {
	m := &Machine{}
	m.threads = append(m.threads, &Thread{ID: 0, State: ThreadRunnable, m: m})
	for i := 1; i < 4; i++ {
		m.threads = append(m.threads, &Thread{ID: i, State: ThreadExited, m: m})
	}
	sole := m.threads[0]
	if n := testing.AllocsPerRun(200, func() {
		if !m.soleRunnable(sole) {
			t.Fatal("soleRunnable false for the only runnable thread")
		}
	}); n != 0 {
		t.Errorf("soleRunnable: %.1f allocs per call, want 0", n)
	}
}
