package vm_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/gbuild"
	"repro/internal/gmem"
	"repro/internal/guest"
	"repro/internal/vm"
)

// buildWildStore links main -> victim, where victim stores through a wild
// pointer. The call gives the fault a nontrivial stack to symbolize.
func buildWildStore(t *testing.T) *guest.Image {
	t.Helper()
	b := gbuild.New()
	f := b.Func("main", "w.c")
	f.Line(3)
	f.Call("victim")
	f.Hlt(guest.R0)
	v := b.Func("victim", "w.c")
	v.Enter(0)
	v.Line(9)
	v.LdConst64(guest.R1, 0xdead0000)
	v.Ldi(guest.R2, 7)
	v.St(8, guest.R1, 0, guest.R2)
	v.Leave()
	im, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestWildStoreRaisesGuestFault(t *testing.T) {
	im := buildWildStore(t)
	m, err := vm.New(im, vm.NewHostRegistry(), vm.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	err = m.Run()
	var gf *vm.GuestFault
	if !errors.As(err, &gf) {
		t.Fatalf("err = %v (%T), want *GuestFault", err, err)
	}
	if gf.Addr != 0xdead0000 || gf.Access != gmem.AccessWrite || gf.Width != 8 || gf.TID != 0 {
		t.Fatalf("fault = %+v", gf)
	}
	if len(gf.Stack) < 2 {
		t.Fatalf("stack = %#x, want victim + main", gf.Stack)
	}
	if m.GuestFaults != 1 {
		t.Fatalf("GuestFaults = %d", m.GuestFaults)
	}

	rep := m.CrashReport(err)
	if rep == nil || rep.Kind != "invalid-access" {
		t.Fatalf("report = %+v", rep)
	}
	text := rep.Render(im)
	for _, want := range []string{"Invalid write of size 8 at 0xdead0000", "victim (w.c:9)", "by main (w.c:3)"} {
		if !strings.Contains(text, want) {
			t.Fatalf("report missing %q:\n%s", want, text)
		}
	}
}

func TestLenientMemCompat(t *testing.T) {
	im := buildWildStore(t)
	m, err := vm.New(im, vm.NewHostRegistry(), vm.Config{Seed: 1, LenientMem: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatalf("lenient run failed: %v", err)
	}
	if m.Mem.Load(0xdead0000, 8) != 7 {
		t.Fatal("lenient wild store lost")
	}
}

func TestHostPanicContained(t *testing.T) {
	b := gbuild.New()
	f := b.Func("main", "h.c")
	f.Line(2)
	f.Hcall("boom")
	f.Hlt(guest.R0)
	im, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	reg := vm.NewHostRegistry()
	reg.Register("boom", func(m *vm.Machine, t *vm.Thread) vm.HostResult {
		panic("kaboom")
	})
	m, _ := vm.New(im, reg, vm.Config{Seed: 1})
	err = m.Run()
	var hp *vm.HostPanic
	if !errors.As(err, &hp) {
		t.Fatalf("err = %v (%T), want *HostPanic", err, err)
	}
	if hp.Val != "kaboom" || hp.TID != 0 || len(hp.GoStack) == 0 {
		t.Fatalf("panic = %+v", hp)
	}
	if m.HostPanics != 1 {
		t.Fatalf("HostPanics = %d", m.HostPanics)
	}
	if rep := m.CrashReport(err); rep == nil || rep.Kind != "host-panic" {
		t.Fatalf("report = %+v", rep)
	}
}

func buildInfiniteLoop(t *testing.T) *guest.Image {
	t.Helper()
	b := gbuild.New()
	f := b.Func("main", "l.c")
	loop := f.NewLabel()
	f.Bind(loop)
	f.Addi(guest.R1, guest.R1, 1)
	f.Jmp(loop)
	im, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestWatchdogKinds(t *testing.T) {
	cases := []struct {
		name string
		opts vm.RunOpts
		kind string
	}{
		{"blocks", vm.RunOpts{MaxBlocks: 100}, "blocks"},
		{"instrs", vm.RunOpts{MaxInstrs: 500}, "instrs"},
		{"wall", vm.RunOpts{Timeout: 10 * time.Millisecond}, "wall"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			im := buildInfiniteLoop(t)
			m, _ := vm.New(im, vm.NewHostRegistry(), vm.Config{Seed: 1})
			err := m.RunOpts(tc.opts)
			var wd *vm.WatchdogError
			if !errors.As(err, &wd) {
				t.Fatalf("err = %v (%T), want *WatchdogError", err, err)
			}
			if wd.Kind != tc.kind {
				t.Fatalf("kind = %q, want %q", wd.Kind, tc.kind)
			}
			if len(wd.Threads) != 1 || wd.Threads[0].State != vm.ThreadRunnable {
				t.Fatalf("threads = %+v", wd.Threads)
			}
			if m.WatchdogTrips != 1 {
				t.Fatalf("WatchdogTrips = %d", m.WatchdogTrips)
			}
			rep := m.CrashReport(err)
			if rep == nil || rep.Kind != "watchdog" {
				t.Fatalf("report = %+v", rep)
			}
			if text := rep.Render(im); !strings.Contains(text, "thread 0: runnable") {
				t.Fatalf("render missing thread dump:\n%s", text)
			}
		})
	}
}

func TestBlockBudgetMessageCompat(t *testing.T) {
	im := buildInfiniteLoop(t)
	m, _ := vm.New(im, vm.NewHostRegistry(), vm.Config{Seed: 1})
	err := m.RunOpts(vm.RunOpts{MaxBlocks: 100})
	if err == nil || !strings.Contains(err.Error(), "block budget (100) exhausted") {
		t.Fatalf("err = %v", err)
	}
}

func TestDeadlockErrorCarriesThreadDumps(t *testing.T) {
	b := gbuild.New()
	f := b.Func("main", "d.c")
	f.Line(5)
	f.Hcall("block_forever")
	f.Hlt(guest.R0)
	im, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	reg := vm.NewHostRegistry()
	reg.Register("block_forever", func(m *vm.Machine, t *vm.Thread) vm.HostResult {
		return vm.HostResult{Action: vm.HostBlock, Reason: "forever"}
	})
	m, _ := vm.New(im, reg, vm.Config{Seed: 1})
	err = m.Run()
	if !errors.Is(err, vm.ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	var dl *vm.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %T, want *DeadlockError", err)
	}
	if len(dl.Threads) != 1 || dl.Threads[0].BlockReason != "forever" {
		t.Fatalf("threads = %+v", dl.Threads)
	}
	rep := m.CrashReport(err)
	if rep == nil || rep.Kind != "deadlock" {
		t.Fatalf("report = %+v", rep)
	}
	text := rep.Render(im)
	if !strings.Contains(text, "reason: forever") || !strings.Contains(text, "main (d.c:5)") {
		t.Fatalf("render missing block reason or symbol:\n%s", text)
	}
}

func TestStackOverflowFaults(t *testing.T) {
	// Unbounded recursion must hit the unmapped guard gap below the stack
	// and fault, not corrupt a neighbouring thread's stack.
	b := gbuild.New()
	f := b.Func("main", "r.c")
	f.Call("recurse")
	f.Hlt(guest.R0)
	r := b.Func("recurse", "r.c")
	r.Enter(64)
	r.Call("recurse")
	r.Leave()
	im, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	m, _ := vm.New(im, vm.NewHostRegistry(), vm.Config{Seed: 1})
	err = m.RunOpts(vm.RunOpts{MaxBlocks: 10_000_000})
	var gf *vm.GuestFault
	if !errors.As(err, &gf) {
		t.Fatalf("err = %v (%T), want *GuestFault", err, err)
	}
	main := m.Thread(0)
	if gf.Addr >= main.StackLo {
		t.Fatalf("fault addr %#x not below stack lo %#x", gf.Addr, main.StackLo)
	}
}

func TestCrashReportNilForPlainErrors(t *testing.T) {
	im := buildInfiniteLoop(t)
	m, _ := vm.New(im, vm.NewHostRegistry(), vm.Config{Seed: 1})
	if rep := m.CrashReport(nil); rep != nil {
		t.Fatalf("nil err report = %+v", rep)
	}
	if rep := m.CrashReport(errors.New("plain")); rep != nil {
		t.Fatalf("plain err report = %+v", rep)
	}
}
