package vm_test

import (
	"errors"
	"testing"

	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/snapshot"
	"repro/internal/vm"
)

// buildAccumulator builds a pure-guest program (no host calls, no host-side
// state) so in-place checkpoint restore is exact: main sums 0..n-1 into a
// global and exits with the total.
func buildAccumulator(t *testing.T, n int64) *guest.Image {
	t.Helper()
	b := gbuild.New()
	b.Global("acc", 8)
	f := b.Func("main", "s.c")
	loop := f.NewLabel()
	f.Ldi(guest.R3, 0)
	f.Bind(loop)
	f.LoadSym(guest.R1, "acc")
	f.Ld(8, guest.R2, guest.R1, 0)
	f.Add(guest.R2, guest.R2, guest.R3)
	f.St(8, guest.R1, 0, guest.R2)
	f.Addi(guest.R3, guest.R3, 1)
	f.Ldi(guest.R4, int32(n))
	f.Blt(guest.R3, guest.R4, loop)
	f.LoadSym(guest.R1, "acc")
	f.Ld(8, guest.R0, guest.R1, 0)
	f.Hlt(guest.R0)
	im, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	return im
}

// runWithCheckpoints runs a fresh accumulator machine, capturing a
// checkpoint into a manager every `every` slices.
func runWithCheckpoints(t *testing.T, every int) (*vm.Machine, *snapshot.Manager) {
	t.Helper()
	m, err := vm.New(buildAccumulator(t, 200), nil, vm.Config{Seed: 7, Slice: 4})
	if err != nil {
		t.Fatal(err)
	}
	m.Mem.EnableDirtyTracking()
	mgr := snapshot.NewManager(64)
	err = m.RunOpts(vm.RunOpts{CkptEvery: every, OnCkpt: func(m *vm.Machine) error {
		cp := m.CaptureCheckpoint()
		cp.Seq = mgr.Taken + 1
		mgr.Add(cp)
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	return m, mgr
}

func TestCheckpointRestoreRewindsAndReconverges(t *testing.T) {
	m, mgr := runWithCheckpoints(t, 3)
	if mgr.Taken < 3 {
		t.Fatalf("only %d checkpoints taken", mgr.Taken)
	}
	wantExit := m.ExitCode()
	wantHash := m.Mem.Hash()
	wantBlocks, wantInstrs := m.BlocksExecuted, m.InstrsExecuted
	wantRNG := m.RNGState()

	// Rewind to a mid-run checkpoint and re-execute to completion.
	cps := mgr.Checkpoints()
	cp := cps[len(cps)/2]
	if err := m.RestoreCheckpoint(cp, mgr); err != nil {
		t.Fatal(err)
	}
	if m.BlocksExecuted != cp.Blocks || m.Exited() {
		t.Fatalf("restore left blocks=%d exited=%v, want %d/false",
			m.BlocksExecuted, m.Exited(), cp.Blocks)
	}
	if got := m.StateDigest(); got != cp.Digest {
		t.Fatalf("post-restore digest %#x, checkpoint digest %#x", got, cp.Digest)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.ExitCode() != wantExit || m.Mem.Hash() != wantHash {
		t.Fatalf("rewound run diverged: exit %d hash %#x, want %d %#x",
			m.ExitCode(), m.Mem.Hash(), wantExit, wantHash)
	}
	if m.BlocksExecuted != wantBlocks || m.InstrsExecuted != wantInstrs || m.RNGState() != wantRNG {
		t.Fatalf("rewound counters blocks/instrs/rng = %d/%d/%#x, want %d/%d/%#x",
			m.BlocksExecuted, m.InstrsExecuted, m.RNGState(), wantBlocks, wantInstrs, wantRNG)
	}
}

func TestCheckpointStreamsDeterministic(t *testing.T) {
	_, mgrA := runWithCheckpoints(t, 5)
	_, mgrB := runWithCheckpoints(t, 5)
	a, b := mgrA.Checkpoints(), mgrB.Checkpoints()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("checkpoint counts %d vs %d", len(a), len(b))
	}
	for i := range a {
		if err := a[i].Diff(b[i]); err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
	}
}

func TestRestoreRejectsUnretainedCheckpoint(t *testing.T) {
	m, mgr := runWithCheckpoints(t, 3)
	stray := &snapshot.Checkpoint{Seq: 999}
	if err := m.RestoreCheckpoint(stray, mgr); err == nil {
		t.Fatal("restore accepted an unretained checkpoint")
	}
}

func TestJournalVerifiesFaithfulReplay(t *testing.T) {
	im := buildSpawner(t)
	run := func(j *snapshot.Journal, perturb func() bool) (*vm.Machine, error) {
		h := &testHost{}
		reg := vm.NewHostRegistry()
		h.install(reg, im)
		m, err := vm.New(im, reg, vm.Config{Seed: 11, Slice: 2})
		if err != nil {
			t.Fatal(err)
		}
		m.Journal = j
		m.Perturb = perturb
		return m, m.Run()
	}

	rec := snapshot.NewJournal()
	m1, err := run(rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("nothing recorded")
	}

	// Same config replays without divergence.
	v := rec.Verifier(false)
	m2, err := run(v, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Err() != nil {
		t.Fatalf("faithful replay diverged: %v", v.Err())
	}
	if m1.ExitCode() != m2.ExitCode() || m1.Mem.Hash() != m2.Mem.Hash() {
		t.Fatal("replayed run ended in a different state")
	}

	// A perturbed replay diverges, and the error surfaces at the slice
	// boundary as *snapshot.Divergence.
	v2 := rec.Verifier(false)
	_, err = run(v2, func() bool { return true })
	var div *snapshot.Divergence
	if !errors.As(err, &div) {
		t.Fatalf("perturbed replay returned %v, want *snapshot.Divergence", err)
	}
	if div.What != "perturb" && div.What != "pick" {
		t.Fatalf("divergence stream = %q", div.What)
	}

	// Soft mode records the divergence but lets the run finish.
	v3 := rec.Verifier(true)
	if _, err := run(v3, func() bool { return true }); err != nil {
		t.Fatalf("soft replay failed: %v", err)
	}
	if v3.Err() == nil {
		t.Fatal("soft divergence not recorded")
	}
}
