package vm_test

import (
	"runtime"
	"testing"

	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/vm"
)

// buildCountdown builds a program whose body is a counted one-block loop: n
// backedge dispatches, then Hlt. Two instances differing only in n isolate
// the scheduler's per-block cost.
func buildCountdown(t *testing.T, n int32) *guest.Image {
	t.Helper()
	b := gbuild.New()
	f := b.Func("main", "count.c")
	f.Ldi(guest.R10, n)
	f.Ldi(guest.R11, 0)
	head := f.NewLabel()
	f.Bind(head)
	f.Addi(guest.R10, guest.R10, -1)
	f.Bne(guest.R10, guest.R11, head)
	f.Hlt(guest.R10)
	im, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	return im
}

// mallocsForRun runs a countdown of n iterations to completion and returns
// the heap allocations made during the run (setup excluded).
func mallocsForRun(t *testing.T, n int32) uint64 {
	t.Helper()
	m, err := vm.New(buildCountdown(t, n), vm.NewHostRegistry(), vm.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestSliceLoopDoesNotAllocate guards the batched slice loop end to end:
// scheduling and dispatching an extra ~8000 blocks through RunOpts — budget
// checks, pick, solo chunking, the obs gates on their disabled path — must
// not allocate per block. The two runs differ only in iteration count, so
// fixed costs (watchless setup, exit) cancel out.
func TestSliceLoopDoesNotAllocate(t *testing.T) {
	const small, big = 1000, 9000
	ms := mallocsForRun(t, small)
	mb := mallocsForRun(t, big)
	var extra uint64
	if mb > ms {
		extra = mb - ms
	}
	// Tolerate a little background noise (runtime internals), far below
	// one allocation per block.
	if per := float64(extra) / float64(big-small); per > 0.01 {
		t.Errorf("slice loop: %.4f allocs per extra block (%d over %d blocks), want ~0",
			per, extra, big-small)
	}
}
