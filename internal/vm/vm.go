// Package vm implements the guest machine: register state, threads, a
// deterministic cooperative scheduler, the host-call interface, and a fast
// direct interpreter used for uninstrumented ("no tools") runs.
//
// The execution model mirrors Valgrind's: exactly one guest thread runs at a
// time, and control can switch only at basic-block boundaries or when a
// thread blocks in a host call. Scheduling decisions are drawn from a seeded
// PRNG, so every run is replayable from (program, seed) — which is what makes
// the race-detection experiments reproducible.
package vm

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/gmem"
	"repro/internal/guest"
	"repro/internal/obs"
	"repro/internal/snapshot"
)

// ThreadExitAddr is the magic return address installed in LR when a thread
// starts; returning to it terminates the thread.
const ThreadExitAddr uint64 = 0x0000_0f00

// ThreadState enumerates scheduler states.
type ThreadState uint8

// Thread states.
const (
	ThreadRunnable ThreadState = iota
	ThreadBlocked
	ThreadExited
)

// Frame is one entry of a thread's shadow call stack, maintained by the
// execution engines on call/return instructions. Tools use it to produce
// stack traces (e.g. allocation sites in race reports).
type Frame struct {
	// Fn is the callee entry address.
	Fn uint64
	// CallSite is the address of the call instruction.
	CallSite uint64
	// SP is the stack pointer at function entry.
	SP uint64
}

// Thread is one guest thread.
type Thread struct {
	ID    int
	Regs  [guest.NumRegs]uint64
	PC    uint64
	State ThreadState

	// StackLo/StackHi delimit the thread's stack region.
	StackLo, StackHi uint64
	// TLSBase is the thread's TLS block base (its TCB address).
	TLSBase uint64
	// TLSGen is the DTV generation counter; bumped when the thread's TLS
	// layout changes (models the paper's DTV gen number).
	TLSGen uint64

	// CallStack is the shadow call stack.
	CallStack []Frame

	// BlockReason describes why the thread is blocked (diagnostics).
	BlockReason string

	// Tool is per-thread tool state (opaque to the VM).
	Tool any
	// RT is per-thread runtime state (opaque to the VM).
	RT any

	// BlocksExecuted / InstrsExecuted are this thread's share of the
	// machine totals (the per-thread execution metrics).
	BlocksExecuted uint64
	InstrsExecuted uint64

	m *Machine
}

// Machine returns the owning machine.
func (t *Thread) Machine() *Machine { return t.m }

// Wake marks a blocked thread runnable.
func (t *Thread) Wake() {
	if t.State == ThreadBlocked {
		t.State = ThreadRunnable
		t.BlockReason = ""
	}
}

// Block marks the thread blocked with a diagnostic reason.
func (t *Thread) Block(reason string) {
	t.State = ThreadBlocked
	t.BlockReason = reason
}

// PushFrame records a call on the shadow stack.
func (t *Thread) PushFrame(fn, callSite uint64) {
	t.CallStack = append(t.CallStack, Frame{Fn: fn, CallSite: callSite, SP: t.Regs[guest.SP]})
}

// PopFrame records a return.
func (t *Thread) PopFrame() {
	if n := len(t.CallStack); n > 0 {
		t.CallStack = t.CallStack[:n-1]
	}
}

// StackTrace snapshots the current call chain, innermost first, as guest
// code addresses (call sites), starting with the given pc.
func (t *Thread) StackTrace(pc uint64) []uint64 {
	out := []uint64{pc}
	for i := len(t.CallStack) - 1; i >= 0; i-- {
		out = append(out, t.CallStack[i].CallSite)
	}
	return out
}

// CurrentFuncSym returns the symbol of the innermost shadow-stack function,
// or the function containing pc when the stack is empty.
func (t *Thread) CurrentFuncSym(pc uint64) *guest.Symbol {
	return t.m.Image.SymbolFor(pc)
}

// RunResult reports what happened while running a block (or attempting to).
type RunResult uint8

// Run results.
const (
	// RunOK: block completed; thread still runnable.
	RunOK RunResult = iota
	// RunBlocked: thread blocked in a host call.
	RunBlocked
	// RunThreadExited: the thread terminated.
	RunThreadExited
	// RunProgramExited: the whole program terminated.
	RunProgramExited
	// RunYield: thread voluntarily yielded the processor.
	RunYield
)

// HostAction tells the machine what to do after a host call returns.
type HostAction uint8

// Host call actions.
const (
	HostContinue HostAction = iota
	HostBlock
	HostYield
	HostExitThread
	HostExitProgram
)

// HostResult is returned by host library functions.
type HostResult struct {
	Ret    uint64
	Action HostAction
	// Reason documents a HostBlock action.
	Reason string
}

// HostFn is a host library function: it reads arguments from t.Regs[R0..R5]
// and returns a result placed in R0.
type HostFn func(m *Machine, t *Thread) HostResult

// Engine executes one guest basic block for a thread. The default engine is
// the direct interpreter; the DBI framework installs a translating,
// instrumenting engine instead.
type Engine interface {
	// RunBlock executes the basic block at t.PC and advances t.PC.
	RunBlock(m *Machine, t *Thread) (RunResult, error)
}

// FaultLocator is implemented by engines that track their fault-attribution
// state out of band instead of wrapping every RunBlock in a recover. When a
// panic unwinds out of RunBlock un-annotated, the machine's containment
// boundary calls FaultPoint to learn the guest PC of the faulting
// instruction; the engine also settles any instruction-count bookkeeping the
// unwind skipped (so counters show exactly the instructions that retired
// before the fault). Keeping the recover at the machine level — which
// already has one — lets the hot block dispatch run defer-free.
type FaultLocator interface {
	FaultPoint(m *Machine, t *Thread) uint64
}

// Hooks are optional callbacks the machine raises; the DBI core and tools
// attach here.
type Hooks struct {
	// ClientRequest handles an OpCreq; return value goes to R0.
	ClientRequest func(t *Thread, code int32, args [6]uint64) uint64
	// ThreadStart fires after a thread is created, before it runs.
	ThreadStart func(t *Thread)
	// ThreadExit fires when a thread terminates.
	ThreadExit func(t *Thread)
	// Switch fires when the scheduler switches to a different thread.
	Switch func(t *Thread)
}

// Machine is a guest machine instance: one loaded image, one address space,
// and a set of guest threads driven by the scheduler.
type Machine struct {
	Image *guest.Image
	Mem   *gmem.Memory
	Eng   Engine
	Hooks Hooks

	// Stdout receives guest program output.
	Stdout io.Writer

	threads []*Thread
	// runnableBuf is pick()'s reusable scratch slice (the scheduler is
	// single-threaded by construction), keeping steady-state scheduling
	// allocation-free.
	runnableBuf []*Thread
	hostFns     []HostFn // indexed by host-import id
	hostNames   []string
	registry    map[string]HostFn
	// decoded is the predecoded text segment ("native" execution does not
	// re-decode instruction words on every visit).
	decoded []guest.Instr

	nextStackTop uint64
	nextTLS      uint64
	tlsBlockSize uint64

	rng      uint64
	slice    int
	exited   bool
	exitCode uint64

	// Stats.
	BlocksExecuted uint64
	InstrsExecuted uint64
	Switches       uint64
	// Slices counts scheduler timeslices started; Preemptions counts
	// slices that expired with the thread still runnable.
	Slices      uint64
	Preemptions uint64
	// GuestFaults / HostPanics / WatchdogTrips count contained failures
	// (see crash.go); captured into the obs metrics registry.
	GuestFaults   uint64
	HostPanics    uint64
	WatchdogTrips uint64

	// Perturb, when set, is consulted once per timeslice; returning true
	// shrinks that slice to a single block (deterministic scheduler
	// perturbation, used by fault injection).
	Perturb func() bool

	// Journal, when set, records (or verifies) every scheduler decision:
	// which thread each timeslice picked and whether the perturb draw
	// fired. In verify mode a divergence from the recording aborts the run
	// with a *snapshot.Divergence at the next slice boundary.
	Journal *snapshot.Journal

	// ExtraFootprint lets tools add their shadow-structure size to the
	// reported memory usage.
	ExtraFootprint func() uint64

	// Obs carries the optional observability hooks (metrics, tracing,
	// profiling). Nil means observability is off: the dispatch path pays
	// one pointer comparison per block and nothing else.
	Obs *obs.Hooks
}

// Config parameterizes machine creation.
type Config struct {
	// Seed drives the scheduler PRNG. Seed 0 is valid (mapped internally).
	Seed uint64
	// Slice is the timeslice in basic blocks (default 64).
	Slice int
	// TLSBlockSize is the per-thread TLS reservation (default 4096).
	TLSBlockSize uint64
	// Stdout receives guest output (default: discard).
	Stdout io.Writer
	// LenientMem restores the historical lenient memory model: guest
	// accesses to unmapped addresses silently allocate pages instead of
	// raising a GuestFault (the compatibility escape hatch).
	LenientMem bool
}

// New creates a machine for a frozen image, loads text and data, and creates
// the main thread at the image entry.
func New(im *guest.Image, reg *HostRegistry, cfg Config) (*Machine, error) {
	if !im.Frozen() {
		return nil, errors.New("vm: image not frozen")
	}
	if cfg.Slice <= 0 {
		cfg.Slice = 64
	}
	if cfg.TLSBlockSize == 0 {
		cfg.TLSBlockSize = 4096
	}
	if need := im.TLSSize + 128; cfg.TLSBlockSize < need {
		cfg.TLSBlockSize = (need + 4095) &^ 4095
	}
	out := cfg.Stdout
	if out == nil {
		out = io.Discard
	}
	m := &Machine{
		Image:        im,
		Mem:          gmem.New(),
		Stdout:       out,
		nextStackTop: guest.StackRegionTop,
		nextTLS:      guest.TLSBase,
		tlsBlockSize: cfg.TLSBlockSize,
		rng:          cfg.Seed*2654435761 + 0x9e3779b97f4a7c15,
		slice:        cfg.Slice,
		registry:     make(map[string]HostFn),
	}
	if reg != nil {
		for name, fn := range reg.fns {
			m.registry[name] = fn
		}
	}
	// Resolve host imports.
	m.hostFns = make([]HostFn, len(im.HostImports))
	m.hostNames = append([]string(nil), im.HostImports...)
	for i, name := range im.HostImports {
		fn, ok := m.registry[name]
		if !ok {
			return nil, fmt.Errorf("vm: unresolved host import %q", name)
		}
		m.hostFns[i] = fn
	}
	// Load segments (and predecode the text for the direct engine).
	m.decoded = make([]guest.Instr, len(im.Text))
	for i, w := range im.Text {
		m.Mem.Store(guest.TextBase+uint64(i)*guest.InstrBytes, 8, w)
		m.decoded[i] = guest.Decode(w)
	}
	m.Mem.WriteBytes(guest.DataBase, im.Data)
	// Wire the permission map from the image: text is read-only, data is
	// read-write. Heap/pool allocations, TLS blocks and stacks are mapped
	// by the allocators and NewThread; everything else is unmapped, so a
	// wild pointer raises a GuestFault instead of silently allocating.
	m.Mem.Map(guest.TextBase, uint64(len(im.Text))*guest.InstrBytes, gmem.PermR)
	m.Mem.Map(guest.DataBase, uint64(len(im.Data)), gmem.PermRW)
	m.Mem.Strict = !cfg.LenientMem
	m.Eng = &DirectEngine{}
	// Main thread.
	m.NewThread(im.Entry, 0)
	return m, nil
}

// HostRegistry collects named host library functions before machine creation.
type HostRegistry struct {
	fns map[string]HostFn
}

// NewHostRegistry creates an empty registry.
func NewHostRegistry() *HostRegistry {
	return &HostRegistry{fns: make(map[string]HostFn)}
}

// Register adds or replaces a host function.
func (r *HostRegistry) Register(name string, fn HostFn) {
	r.fns[name] = fn
}

// Lookup returns the registered function, or nil.
func (r *HostRegistry) Lookup(name string) HostFn { return r.fns[name] }

// Names returns all registered names.
func (r *HostRegistry) Names() []string {
	out := make([]string, 0, len(r.fns))
	for n := range r.fns {
		out = append(out, n)
	}
	return out
}

// RedirectHost replaces the binding of an imported host function at run time
// (Valgrind-style function replacement). It returns the previous binding so a
// tool can wrap it, and an error if the image does not import the name.
func (m *Machine) RedirectHost(name string, fn HostFn) (HostFn, error) {
	for i, n := range m.hostNames {
		if n == name {
			old := m.hostFns[i]
			m.hostFns[i] = fn
			return old, nil
		}
	}
	return nil, fmt.Errorf("vm: image does not import host function %q", name)
}

// FetchDecoded returns the predecoded instruction at a text address, or an
// error for addresses outside the text segment.
func (m *Machine) FetchDecoded(addr uint64) (guest.Instr, error) {
	idx := (addr - guest.TextBase) / guest.InstrBytes
	if addr < guest.TextBase || idx >= uint64(len(m.decoded)) || (addr-guest.TextBase)%guest.InstrBytes != 0 {
		return guest.Instr{}, fmt.Errorf("vm: bad fetch address 0x%x", addr)
	}
	return m.decoded[idx], nil
}

// HostName returns the name of host import id (diagnostics).
func (m *Machine) HostName(id int32) string {
	if id >= 0 && int(id) < len(m.hostNames) {
		return m.hostNames[id]
	}
	return fmt.Sprintf("#%d", id)
}

// NewThread creates a guest thread entering fn(arg). It allocates a stack
// and a TLS block and returns the thread.
func (m *Machine) NewThread(entry, arg uint64) *Thread {
	t := &Thread{
		ID: len(m.threads),
		m:  m,
	}
	t.StackHi = m.nextStackTop
	t.StackLo = t.StackHi - guest.StackSize
	m.nextStackTop = t.StackLo - gmem.PageSize // guard gap
	t.TLSBase = m.nextTLS
	m.nextTLS += m.tlsBlockSize
	t.TLSGen = 1
	// Map the stack and TLS block; the guard gap below the stack stays
	// unmapped, so stack overflow faults instead of corrupting a neighbour.
	m.Mem.Map(t.StackLo, guest.StackSize, gmem.PermRW)
	m.Mem.Map(t.TLSBase, m.tlsBlockSize, gmem.PermRW)

	t.PC = entry
	t.Regs[guest.R0] = arg
	t.Regs[guest.TP] = t.TLSBase
	t.Regs[guest.SP] = t.StackHi &^ 15
	t.Regs[guest.FP] = t.Regs[guest.SP]
	t.Regs[guest.LR] = ThreadExitAddr
	m.threads = append(m.threads, t)
	if m.Hooks.ThreadStart != nil {
		m.Hooks.ThreadStart(t)
	}
	return t
}

// Threads returns all threads (exited included).
func (m *Machine) Threads() []*Thread { return m.threads }

// Thread returns thread #id.
func (m *Machine) Thread(id int) *Thread { return m.threads[id] }

// ExitCode returns the program exit status once Run has finished.
func (m *Machine) ExitCode() uint64 { return m.exitCode }

// Exited reports whether the program has terminated.
func (m *Machine) Exited() bool { return m.exited }

// SchedRand draws the next value from the scheduler PRNG. Host-call sites
// that need a seed-deterministic choice (mutex handoff, condvar signal
// targets) share the stream with the thread picker, so the whole schedule —
// including lock handoff order — stays a pure function of (program, seed).
func (m *Machine) SchedRand() uint64 { return m.rand() }

// rand returns the next PRNG value (xorshift64*).
func (m *Machine) rand() uint64 {
	x := m.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	m.rng = x
	return x * 2685821657736338717
}

// ErrDeadlock is returned by Run when no thread can make progress. The
// concrete error is a *DeadlockError carrying per-thread dumps;
// errors.Is(err, ErrDeadlock) matches it.
var ErrDeadlock = errors.New("vm: deadlock: no runnable threads")

// RunOpts bounds a Run. Zero values mean unlimited: the watchdog only bites
// where a budget is set.
type RunOpts struct {
	// MaxBlocks bounds the total number of executed basic blocks.
	MaxBlocks uint64
	// MaxInstrs bounds the total number of executed guest instructions.
	MaxInstrs uint64
	// Timeout bounds host wall-clock time (checked once per timeslice, so
	// enabling it costs nothing on the block dispatch path). Unlike the
	// deterministic budgets, where it trips depends on host speed. When Ctx
	// is also set, the timeout rides the context (a derived deadline), so
	// one cancellation mechanism covers both.
	Timeout time.Duration
	// Ctx, when non-nil, cancels the run externally: a context deadline
	// trips the "wall" watchdog, any other cancellation terminates the run
	// with a *CanceledError. Checked once per timeslice alongside the
	// budgets, so a canceled guest stops within one slice.
	Ctx context.Context
	// CkptEvery, when > 0, invokes OnCkpt every CkptEvery timeslices —
	// counted across both the scheduling loop and the solo fast path, so
	// the cadence is deterministic in executed slices, not scheduler
	// rounds. Checkpoints happen at block boundaries only; a slice that
	// ends in an error is never checkpointed.
	CkptEvery int
	// OnCkpt is the checkpoint callback (capture, retention, journal
	// marks live in the caller). A non-nil error aborts the run.
	OnCkpt func(m *Machine) error
	// ProgressEvery, when > 0, invokes OnProgress every ProgressEvery
	// timeslices with the machine's running block/instruction totals — a
	// race-free export of run progress for external monitors (the daemon's
	// /jobs/{id} view). The callback runs on the execution goroutine; it
	// must not touch the machine.
	ProgressEvery int
	// OnProgress receives the progress ticks (see ProgressEvery).
	OnProgress func(blocks, instrs uint64)
}

// Run drives the scheduler until the program exits, deadlocks, or the block
// budget is exhausted.
func (m *Machine) Run() error { return m.RunOpts(RunOpts{}) }

// watchdog builds the budget-exhausted error with a full thread dump.
func (m *Machine) watchdog(kind string, limit uint64) error {
	m.WatchdogTrips++
	return &WatchdogError{Kind: kind, Limit: limit, Threads: m.DumpThreads()}
}

// checkBudgets trips the watchdog when a run budget is exhausted, or
// terminates the run when its context was canceled.
func (m *Machine) checkBudgets(opts *RunOpts, deadline time.Time) error {
	if opts.MaxBlocks > 0 && m.BlocksExecuted >= opts.MaxBlocks {
		return m.watchdog("blocks", opts.MaxBlocks)
	}
	if opts.MaxInstrs > 0 && m.InstrsExecuted >= opts.MaxInstrs {
		return m.watchdog("instrs", opts.MaxInstrs)
	}
	if !deadline.IsZero() && time.Now().After(deadline) {
		return m.watchdog("wall", uint64(opts.Timeout))
	}
	if ctx := opts.Ctx; ctx != nil {
		select {
		case <-ctx.Done():
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				// A deadline (the Timeout wrapper, or the caller's own)
				// is the wall watchdog, just context-delivered.
				return m.watchdog("wall", uint64(opts.Timeout))
			}
			return &CanceledError{Cause: context.Cause(ctx), Threads: m.DumpThreads()}
		default:
		}
	}
	return nil
}

// RunOpts runs with options.
func (m *Machine) RunOpts(opts RunOpts) error {
	var deadline time.Time
	if opts.Timeout > 0 {
		if opts.Ctx != nil {
			// Context-based cancellation is active: deliver the wall
			// budget through the same channel, so one Done check covers
			// both and an external cancel interrupts just as promptly.
			ctx, cancel := context.WithTimeout(opts.Ctx, opts.Timeout)
			defer cancel()
			opts.Ctx = ctx
		} else {
			deadline = time.Now().Add(opts.Timeout)
		}
	}
	// Checkpoint/progress cadence: counted in executed slices across both
	// loop paths, so the cadence is independent of how slices batch into
	// scheduler rounds.
	ckptLeft := opts.CkptEvery
	progLeft := opts.ProgressEvery
	sliceEnd := func() error {
		if opts.ProgressEvery > 0 {
			if progLeft--; progLeft <= 0 {
				progLeft = opts.ProgressEvery
				if opts.OnProgress != nil {
					opts.OnProgress(m.BlocksExecuted, m.InstrsExecuted)
				}
			}
		}
		if opts.CkptEvery <= 0 {
			return nil
		}
		if ckptLeft--; ckptLeft > 0 {
			return nil
		}
		ckptLeft = opts.CkptEvery
		if opts.OnCkpt != nil {
			return opts.OnCkpt(m)
		}
		return nil
	}
	var cur *Thread
	for !m.exited {
		if err := m.checkBudgets(&opts, deadline); err != nil {
			return err
		}
		t := m.pick()
		if t == nil {
			if m.allExited() {
				return nil
			}
			return &DeadlockError{Threads: m.DumpThreads(), summary: m.blockedSummary()}
		}
		if t != cur {
			m.Switches++
			cur = t
			if m.Hooks.Switch != nil {
				m.Hooks.Switch(t)
			}
			if h := m.Obs; h != nil && h.Tracer != nil {
				h.Tracer.Instant(m.BlocksExecuted, t.ID, "sched", "switch", nil)
			}
		}
		m.Slices++
		slice := m.slice
		perturbed := m.Perturb != nil && m.Perturb()
		if perturbed {
			slice = 1
		}
		if m.Journal != nil {
			if err := m.Journal.Slice(m.Slices, t.ID, perturbed); err != nil {
				return err
			}
		}
		voluntary, err := m.runSlice(t, slice)
		if err != nil {
			return err
		}
		if err := sliceEnd(); err != nil {
			return err
		}
		// Solo fast path: while t is the only runnable thread, a full
		// scheduling round could only re-pick it — so keep feeding it
		// slices here without the per-slice accounting (switch check,
		// slice/preemption counters). The PRNG and perturbation streams
		// are consumed exactly as the full round would (one draw, one
		// Perturb consult per slice), so schedules are bit-identical to
		// the unbatched loop; only the bookkeeping is amortized.
		for !voluntary && t.State == ThreadRunnable && !m.exited && m.soleRunnable(t) {
			if err := m.checkBudgets(&opts, deadline); err != nil {
				return err
			}
			m.rand() // the draw pick() would have consumed
			slice = m.slice
			perturbed = m.Perturb != nil && m.Perturb()
			if perturbed {
				slice = 1
			}
			if m.Journal != nil {
				if err := m.Journal.Slice(m.Slices, t.ID, perturbed); err != nil {
					return err
				}
			}
			voluntary, err = m.runSlice(t, slice)
			if err != nil {
				return err
			}
			if err := sliceEnd(); err != nil {
				return err
			}
		}
		// An involuntary slice end with the thread still runnable is a
		// preemption: another thread is competing for the processor.
		if !voluntary && t.State == ThreadRunnable && !m.exited {
			m.Preemptions++
		}
	}
	return nil
}

// runSlice executes up to slice blocks of t, reporting whether the slice
// ended voluntarily. The observability gates are resolved once per slice —
// the per-block cost of disabled observability is two predictable branches —
// and profiler samples are weighted by each dispatched block's retired
// instruction count, so extended superblocks weigh as much as the basic
// blocks they fuse and -extend profiles agree with unextended ones.
func (m *Machine) runSlice(t *Thread, slice int) (voluntary bool, err error) {
	var prof *obs.Profiler
	blockEvents := false
	if h := m.Obs; h != nil {
		prof = h.Prof
		blockEvents = h.Tracer != nil && h.Tracer.BlockEvents
	}
	for i := 0; i < slice && t.State == ThreadRunnable && !m.exited; i++ {
		pc0, i0 := t.PC, t.InstrsExecuted
		if blockEvents {
			m.Obs.Tracer.Instant(m.BlocksExecuted, t.ID, "vm", "block",
				map[string]any{"pc": pc0})
		}
		res, err := m.runBlockGuarded(t)
		if err != nil {
			var gf *GuestFault
			var hp *HostPanic
			if errors.As(err, &gf) || errors.As(err, &hp) {
				// Already carries thread/pc context.
				return false, err
			}
			return false, fmt.Errorf("vm: thread %d at 0x%x: %w", t.ID, t.PC, err)
		}
		m.BlocksExecuted++
		t.BlocksExecuted++
		if prof != nil {
			prof.SampleW(pc0, t.InstrsExecuted-i0)
		}
		switch res {
		case RunOK:
		case RunBlocked, RunThreadExited, RunProgramExited:
			i = slice
		case RunYield:
			voluntary = true
			i = slice
		}
	}
	return voluntary, nil
}

// pick selects the next runnable thread pseudo-randomly. The scratch slice
// is machine-owned, so steady-state scheduling does not allocate.
func (m *Machine) pick() *Thread {
	runnable := m.runnableBuf[:0]
	for _, t := range m.threads {
		if t.State == ThreadRunnable {
			runnable = append(runnable, t)
		}
	}
	m.runnableBuf = runnable
	if len(runnable) == 0 {
		return nil
	}
	return runnable[m.rand()%uint64(len(runnable))]
}

// soleRunnable reports whether t is the only runnable thread.
func (m *Machine) soleRunnable(t *Thread) bool {
	for _, o := range m.threads {
		if o.State == ThreadRunnable && o != t {
			return false
		}
	}
	return true
}

func (m *Machine) allExited() bool {
	for _, t := range m.threads {
		if t.State != ThreadExited {
			return false
		}
	}
	return true
}

func (m *Machine) blockedSummary() string {
	s := ""
	for _, t := range m.threads {
		if t.State == ThreadBlocked {
			s += fmt.Sprintf("; thread %d blocked: %s (pc=%s)", t.ID, t.BlockReason, m.Image.Locate(t.PC))
		}
	}
	return s
}

// DoHostCall dispatches a resolved host call and applies its action. The
// thread's PC must already point past the hcall instruction.
func (m *Machine) DoHostCall(t *Thread, id int32) RunResult {
	if id < 0 || int(id) >= len(m.hostFns) {
		panic(fmt.Sprintf("vm: bad host call id %d", id))
	}
	res := m.hostFns[id](m, t)
	t.Regs[guest.R0] = res.Ret
	switch res.Action {
	case HostContinue:
		return RunOK
	case HostYield:
		return RunYield
	case HostBlock:
		t.Block(res.Reason)
		return RunBlocked
	case HostExitThread:
		return m.exitThread(t)
	case HostExitProgram:
		m.exited = true
		m.exitCode = res.Ret
		return RunProgramExited
	}
	return RunOK
}

// DoClientRequest dispatches an OpCreq.
func (m *Machine) DoClientRequest(t *Thread, code int32) {
	var args [6]uint64
	copy(args[:], t.Regs[guest.R0:guest.R5+1])
	if m.Hooks.ClientRequest != nil {
		t.Regs[guest.R0] = m.Hooks.ClientRequest(t, code, args)
	} else {
		t.Regs[guest.R0] = 0
	}
}

// exitThread terminates t; terminating the main thread (id 0) ends the
// program with status R0.
func (m *Machine) exitThread(t *Thread) RunResult {
	t.State = ThreadExited
	if m.Hooks.ThreadExit != nil {
		m.Hooks.ThreadExit(t)
	}
	if t.ID == 0 {
		m.exited = true
		m.exitCode = t.Regs[guest.R0]
		return RunProgramExited
	}
	return RunThreadExited
}

// ExitThread is the exported form used by engines when a thread returns to
// ThreadExitAddr or executes OpHlt.
func (m *Machine) ExitThread(t *Thread) RunResult { return m.exitThread(t) }

// Footprint returns the resident guest memory plus any tool-reported shadow
// footprint — the "memory usage" metric of the evaluation.
func (m *Machine) Footprint() uint64 {
	f := m.Mem.Footprint()
	if m.ExtraFootprint != nil {
		f += m.ExtraFootprint()
	}
	return f
}
