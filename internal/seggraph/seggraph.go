// Package seggraph implements the segment graph of the paper (§II-A): nodes
// are non-divisible instruction sequences (segments) and a path from N_i to
// N_j exists iff a synchronization imposes N_i happens-before N_j.
//
// Segments are created in program order, so every edge points from a lower
// ID to a higher ID and the graph is a DAG by construction. Happens-before
// queries use transitive-closure bitsets computed in one reverse pass.
//
// The parallel-region rule (Eq. 1: p1 ≺ p2 implies every segment of p1
// happens before every segment of p2) is realized structurally: each region
// has a fork node that precedes all its segments and a join node that all
// its segments precede, and serial code chains join(p1) → fork(p2).
package seggraph

import "fmt"

// NodeID identifies a segment.
type NodeID int32

// Graph is a DAG over segments with forward-only edges.
type Graph struct {
	succ   [][]NodeID
	pred   [][]NodeID
	reach  []bitset
	closed bool
	edges  int
}

// New creates an empty graph.
func New() *Graph { return &Graph{} }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.succ) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return g.edges }

// AddNode creates a segment and returns its ID.
func (g *Graph) AddNode() NodeID {
	if g.closed {
		panic("seggraph: AddNode after Close")
	}
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	return NodeID(len(g.succ) - 1)
}

// AddEdge records u happens-before v. Edges must go forward in creation
// order (u < v); self-edges and duplicate edges are ignored.
func (g *Graph) AddEdge(u, v NodeID) {
	if g.closed {
		panic("seggraph: AddEdge after Close")
	}
	if u == v {
		return
	}
	if u > v {
		panic(fmt.Sprintf("seggraph: backward edge %d -> %d", u, v))
	}
	for _, w := range g.succ[u] {
		if w == v {
			return
		}
	}
	g.succ[u] = append(g.succ[u], v)
	g.pred[v] = append(g.pred[v], u)
	g.edges++
}

// Succs returns the direct successors of u.
func (g *Graph) Succs(u NodeID) []NodeID { return g.succ[u] }

// Preds returns the direct predecessors of u.
func (g *Graph) Preds(u NodeID) []NodeID { return g.pred[u] }

// Close computes the transitive closure. After Close the graph is immutable.
func (g *Graph) Close() {
	n := len(g.succ)
	g.reach = make([]bitset, n)
	words := (n + 63) / 64
	backing := make([]uint64, n*words)
	for u := n - 1; u >= 0; u-- {
		bs := bitset(backing[u*words : (u+1)*words])
		for _, v := range g.succ[u] {
			bs.set(int(v))
			bs.or(g.reach[v])
		}
		g.reach[u] = bs
	}
	g.closed = true
}

// Closed reports whether Close has run.
func (g *Graph) Closed() bool { return g.closed }

// HappensBefore reports whether there is a path u -> v. The graph must be
// closed.
func (g *Graph) HappensBefore(u, v NodeID) bool {
	if u == v {
		return false
	}
	return g.reach[u].get(int(v))
}

// Ordered reports u ≺ v or v ≺ u.
func (g *Graph) Ordered(u, v NodeID) bool {
	return g.HappensBefore(u, v) || g.HappensBefore(v, u)
}

// Concurrent reports that no path orders u and v — the precondition of a
// determinacy race.
func (g *Graph) Concurrent(u, v NodeID) bool {
	return u != v && !g.Ordered(u, v)
}

// ConcurrentPairs calls fn for every unordered pair (u < v) of concurrent
// nodes for which both filter(u) and filter(v) hold; fn returning false
// stops the walk. filter == nil means all nodes.
func (g *Graph) ConcurrentPairs(filter func(NodeID) bool, fn func(u, v NodeID) bool) {
	n := NodeID(len(g.succ))
	for u := NodeID(0); u < n; u++ {
		if filter != nil && !filter(u) {
			continue
		}
		for v := u + 1; v < n; v++ {
			if filter != nil && !filter(v) {
				continue
			}
			if g.Concurrent(u, v) {
				if !fn(u, v) {
					return
				}
			}
		}
	}
}

// Footprint approximates host memory used by the closure bitsets.
func (g *Graph) Footprint() uint64 {
	n := uint64(len(g.succ))
	words := (n + 63) / 64
	return n*words*8 + uint64(g.edges)*8
}

// bitset is a fixed-size bit vector.
type bitset []uint64

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }
func (b bitset) or(o bitset) {
	for i, w := range o {
		b[i] |= w
	}
}
