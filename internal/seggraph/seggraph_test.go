package seggraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// diamond builds the minimal fork/join shape of paper Fig. 1:
//
//	s0 -> {s1, s2} -> s3
func diamond() (*Graph, []NodeID) {
	g := New()
	s0, s1, s2, s3 := g.AddNode(), g.AddNode(), g.AddNode(), g.AddNode()
	g.AddEdge(s0, s1)
	g.AddEdge(s0, s2)
	g.AddEdge(s1, s3)
	g.AddEdge(s2, s3)
	g.Close()
	return g, []NodeID{s0, s1, s2, s3}
}

func TestDiamondHappensBefore(t *testing.T) {
	g, s := diamond()
	if !g.HappensBefore(s[0], s[3]) {
		t.Error("transitivity s0 -> s3")
	}
	if !g.HappensBefore(s[0], s[1]) || !g.HappensBefore(s[2], s[3]) {
		t.Error("direct edges")
	}
	if g.HappensBefore(s[3], s[0]) {
		t.Error("reversed")
	}
	if g.HappensBefore(s[1], s[1]) {
		t.Error("irreflexive")
	}
	if !g.Concurrent(s[1], s[2]) {
		t.Error("branches must be concurrent")
	}
	if g.Concurrent(s[0], s[3]) {
		t.Error("ordered pair reported concurrent")
	}
}

func TestConcurrentPairs(t *testing.T) {
	g, s := diamond()
	var pairs [][2]NodeID
	g.ConcurrentPairs(nil, func(u, v NodeID) bool {
		pairs = append(pairs, [2]NodeID{u, v})
		return true
	})
	if len(pairs) != 1 || pairs[0] != [2]NodeID{s[1], s[2]} {
		t.Fatalf("pairs = %v", pairs)
	}
	// Filter hiding s1 leaves nothing.
	var n int
	g.ConcurrentPairs(func(id NodeID) bool { return id != s[1] }, func(u, v NodeID) bool {
		n++
		return true
	})
	if n != 0 {
		t.Fatalf("filtered pairs = %d", n)
	}
}

func TestParallelRegionRule(t *testing.T) {
	// Two parallel regions chained serially: fork1 -> {a,b} -> join1 ->
	// serial -> fork2 -> {c,d} -> join2. Eq. 1 demands every segment of
	// region 1 happens before every segment of region 2.
	g := New()
	fork1 := g.AddNode()
	a, b := g.AddNode(), g.AddNode()
	join1 := g.AddNode()
	serial := g.AddNode()
	fork2 := g.AddNode()
	c, d := g.AddNode(), g.AddNode()
	join2 := g.AddNode()
	g.AddEdge(fork1, a)
	g.AddEdge(fork1, b)
	g.AddEdge(a, join1)
	g.AddEdge(b, join1)
	g.AddEdge(join1, serial)
	g.AddEdge(serial, fork2)
	g.AddEdge(fork2, c)
	g.AddEdge(fork2, d)
	g.AddEdge(c, join2)
	g.AddEdge(d, join2)
	g.Close()
	for _, p1 := range []NodeID{a, b} {
		for _, p2 := range []NodeID{c, d} {
			if !g.HappensBefore(p1, p2) {
				t.Errorf("Eq.1 violated: %d not before %d", p1, p2)
			}
		}
	}
	if !g.Concurrent(a, b) || !g.Concurrent(c, d) {
		t.Error("intra-region concurrency lost")
	}
}

func TestBackwardEdgePanics(t *testing.T) {
	g := New()
	u, v := g.AddNode(), g.AddNode()
	defer func() {
		if recover() == nil {
			t.Fatal("backward edge accepted")
		}
	}()
	g.AddEdge(v, u)
}

func TestDuplicateAndSelfEdges(t *testing.T) {
	g := New()
	u, v := g.AddNode(), g.AddNode()
	g.AddEdge(u, v)
	g.AddEdge(u, v)
	g.AddEdge(u, u)
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

// reference closure via repeated relaxation (Floyd-Warshall style).
func referenceReach(n int, edges [][2]NodeID) [][]bool {
	r := make([][]bool, n)
	for i := range r {
		r[i] = make([]bool, n)
	}
	for _, e := range edges {
		r[e[0]][e[1]] = true
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if r[i][k] {
				for j := 0; j < n; j++ {
					if r[k][j] {
						r[i][j] = true
					}
				}
			}
		}
	}
	return r
}

// Property: bitset closure matches the reference on random forward DAGs.
func TestQuickClosureMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := New()
		for i := 0; i < n; i++ {
			g.AddNode()
		}
		var edges [][2]NodeID
		for e := 0; e < n*2; e++ {
			u := NodeID(rng.Intn(n - 1))
			v := u + 1 + NodeID(rng.Intn(n-int(u)-1))
			g.AddEdge(u, v)
			edges = append(edges, [2]NodeID{u, v})
		}
		g.Close()
		ref := referenceReach(n, edges)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				if g.HappensBefore(NodeID(i), NodeID(j)) != ref[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Concurrent is symmetric and irreflexive, and exclusive with
// HappensBefore.
func TestQuickConcurrencyLaws(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := New()
		for i := 0; i < n; i++ {
			g.AddNode()
		}
		for e := 0; e < n; e++ {
			u := NodeID(rng.Intn(n - 1))
			v := u + 1 + NodeID(rng.Intn(n-int(u)-1))
			g.AddEdge(u, v)
		}
		g.Close()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				u, v := NodeID(i), NodeID(j)
				if g.Concurrent(u, v) != g.Concurrent(v, u) {
					return false
				}
				if u == v && g.Concurrent(u, v) {
					return false
				}
				if g.Concurrent(u, v) && g.Ordered(u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMutationAfterClosePanics(t *testing.T) {
	g := New()
	g.AddNode()
	g.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("AddNode after Close accepted")
		}
	}()
	g.AddNode()
}

func BenchmarkClose1000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := New()
		for j := 0; j < 1000; j++ {
			g.AddNode()
		}
		for j := 0; j < 999; j++ {
			g.AddEdge(NodeID(j), NodeID(j+1))
		}
		g.Close()
	}
}
