// Package mem implements guest heap allocators with free-list recycling —
// the behaviour of system allocators that the paper identifies as a source
// of false positives (§IV-B): freeing a block and allocating again may hand
// back the same address, so accesses by independent tasks alias.
//
// Two instances are used: the program allocator behind malloc/free (which
// Taskgrind can neutralize by redirecting free to a no-op), and the runtime's
// internal fast pool (the __kmp_fast_allocate analog) that Valgrind-style
// wrapping cannot see — the limitation the paper leaves as future work.
package mem

import (
	"fmt"
	"sort"
)

const align = 16

// Allocator is a first-fit bump allocator with LIFO per-size free lists, so
// a freed block is immediately recycled by the next same-size allocation —
// maximizing the recycling behaviour the experiments need to provoke.
type Allocator struct {
	base, limit uint64
	brk         uint64
	sizes       map[uint64]uint64   // addr -> rounded size (live and freed-but-tracked)
	free        map[uint64][]uint64 // rounded size -> LIFO of addresses
	// Recycle disables the free lists when false: Free still marks blocks
	// dead but addresses are never reused (the effect of Taskgrind's
	// free-as-no-op redirection).
	Recycle bool

	// FailHook, when set, is consulted on every Alloc; returning true makes
	// that allocation fail (return 0) as if the region were exhausted. Fault
	// injection uses it to exercise out-of-memory paths deterministically.
	FailHook func(n uint64) bool

	liveBytes  uint64
	peakBytes  uint64
	TotalAlloc uint64
	TotalFree  uint64
}

// New creates an allocator over [base, limit).
func New(base, limit uint64) *Allocator {
	return &Allocator{
		base: base, limit: limit, brk: base,
		sizes:   make(map[uint64]uint64),
		free:    make(map[uint64][]uint64),
		Recycle: true,
	}
}

// Round returns the rounded allocation size for a request.
func Round(n uint64) uint64 {
	if n == 0 {
		n = 1
	}
	return (n + align - 1) &^ (align - 1)
}

// Alloc returns the address of a block of at least n bytes, or 0 when the
// region is exhausted.
func (a *Allocator) Alloc(n uint64) uint64 {
	if a.FailHook != nil && a.FailHook(n) {
		return 0
	}
	r := Round(n)
	if a.Recycle {
		if fl := a.free[r]; len(fl) > 0 {
			addr := fl[len(fl)-1]
			a.free[r] = fl[:len(fl)-1]
			a.sizes[addr] = r
			a.liveBytes += r
			a.TotalAlloc++
			if a.liveBytes > a.peakBytes {
				a.peakBytes = a.liveBytes
			}
			return addr
		}
	}
	if a.brk+r > a.limit {
		return 0
	}
	addr := a.brk
	a.brk += r
	a.sizes[addr] = r
	a.liveBytes += r
	a.TotalAlloc++
	if a.liveBytes > a.peakBytes {
		a.peakBytes = a.liveBytes
	}
	return addr
}

// Free releases the block at addr. Freeing 0 is a no-op; freeing an unknown
// or already-freed address returns an error (the guest equivalent of heap
// corruption).
func (a *Allocator) Free(addr uint64) error {
	if addr == 0 {
		return nil
	}
	r, ok := a.sizes[addr]
	if !ok {
		return fmt.Errorf("mem: invalid free of 0x%x", addr)
	}
	delete(a.sizes, addr)
	a.liveBytes -= r
	a.TotalFree++
	if a.Recycle {
		a.free[r] = append(a.free[r], addr)
	}
	return nil
}

// SizeOf returns the rounded size of a live block, or 0.
func (a *Allocator) SizeOf(addr uint64) uint64 { return a.sizes[addr] }

// LiveBytes returns currently allocated bytes.
func (a *Allocator) LiveBytes() uint64 { return a.liveBytes }

// PeakBytes returns the high-water mark.
func (a *Allocator) PeakBytes() uint64 { return a.peakBytes }

// Brk returns the current break (bytes ever carved from the region).
func (a *Allocator) Brk() uint64 { return a.brk }

// Contains reports whether addr falls inside the allocator's region.
func (a *Allocator) Contains(addr uint64) bool {
	return addr >= a.base && addr < a.limit
}

// LiveBlocks returns the addresses of live blocks, sorted (testing aid).
func (a *Allocator) LiveBlocks() []uint64 {
	out := make([]uint64, 0, len(a.sizes))
	for addr := range a.sizes {
		out = append(out, addr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
