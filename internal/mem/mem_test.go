package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/guest"
)

func alloc(t *testing.T) *Allocator {
	t.Helper()
	return New(guest.HeapBase, guest.HeapLimit)
}

func TestAllocAlignmentAndGrowth(t *testing.T) {
	a := alloc(t)
	p1 := a.Alloc(1)
	p2 := a.Alloc(17)
	if p1%16 != 0 || p2%16 != 0 {
		t.Fatalf("misaligned: %#x %#x", p1, p2)
	}
	if p2 != p1+16 {
		t.Fatalf("bump layout: %#x then %#x", p1, p2)
	}
	if a.SizeOf(p2) != 32 {
		t.Fatalf("rounded size = %d", a.SizeOf(p2))
	}
}

func TestRecyclingLIFO(t *testing.T) {
	a := alloc(t)
	p := a.Alloc(32)
	q := a.Alloc(32)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(q); err != nil {
		t.Fatal(err)
	}
	// LIFO: the most recently freed block comes back first.
	if got := a.Alloc(32); got != q {
		t.Fatalf("recycled %#x, want %#x", got, q)
	}
	if got := a.Alloc(32); got != p {
		t.Fatalf("recycled %#x, want %#x", got, p)
	}
}

func TestNoRecycleMode(t *testing.T) {
	a := alloc(t)
	a.Recycle = false
	p := a.Alloc(8)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if got := a.Alloc(8); got == p {
		t.Fatal("address recycled despite Recycle=false")
	}
}

func TestFreeErrors(t *testing.T) {
	a := alloc(t)
	if err := a.Free(0); err != nil {
		t.Fatal("free(NULL) must be a no-op")
	}
	if err := a.Free(guest.HeapBase + 64); err == nil {
		t.Fatal("wild free accepted")
	}
	p := a.Alloc(8)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err == nil {
		t.Fatal("double free accepted")
	}
}

func TestExhaustion(t *testing.T) {
	a := New(guest.HeapBase, guest.HeapBase+64)
	if a.Alloc(48) == 0 {
		t.Fatal("first alloc failed")
	}
	if a.Alloc(48) != 0 {
		t.Fatal("over-allocation succeeded")
	}
}

func TestStats(t *testing.T) {
	a := alloc(t)
	p := a.Alloc(100) // rounds to 112
	if a.LiveBytes() != 112 || a.PeakBytes() != 112 {
		t.Fatalf("live=%d peak=%d", a.LiveBytes(), a.PeakBytes())
	}
	_ = a.Free(p)
	if a.LiveBytes() != 0 || a.PeakBytes() != 112 {
		t.Fatalf("after free live=%d peak=%d", a.LiveBytes(), a.PeakBytes())
	}
	if a.TotalAlloc != 1 || a.TotalFree != 1 {
		t.Fatalf("counters %d/%d", a.TotalAlloc, a.TotalFree)
	}
	if !a.Contains(p) || a.Contains(guest.HeapLimit) {
		t.Fatal("Contains wrong")
	}
}

// Property: live blocks never overlap, regardless of the alloc/free
// sequence.
func TestQuickLiveBlocksDisjoint(t *testing.T) {
	f := func(ops []uint16) bool {
		a := New(guest.HeapBase, guest.HeapLimit)
		var live []uint64
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				idx := int(op/3) % len(live)
				if a.Free(live[idx]) != nil {
					return false
				}
				live = append(live[:idx], live[idx+1:]...)
				continue
			}
			size := uint64(op%256) + 1
			p := a.Alloc(size)
			if p == 0 {
				return false
			}
			live = append(live, p)
		}
		blocks := a.LiveBlocks()
		for i := 1; i < len(blocks); i++ {
			if blocks[i-1]+a.SizeOf(blocks[i-1]) > blocks[i] {
				return false
			}
		}
		return len(blocks) == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundZero(t *testing.T) {
	if Round(0) != 16 || Round(16) != 16 || Round(17) != 32 {
		t.Fatal("Round wrong")
	}
}
