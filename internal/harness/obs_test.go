package harness_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/omp"
)

// taskObsProgram is a small tasking program: a parallel region spawning two
// deferred tasks, enough to exercise the translation, scheduler, task
// lifecycle and allocation metrics.
func taskObsProgram() *gbuild.Builder {
	b := omp.NewProgram()
	b.Global("data", 16)
	const r0, r1, r2 = guest.R0, guest.R1, guest.R2

	f := b.Func("task_a", "obs.c")
	f.Line(5)
	f.LoadSym(r1, "data")
	f.Ldi(r2, 1)
	f.St(8, r1, 0, r2)
	f.Ret()

	f = b.Func("task_b", "obs.c")
	f.Line(8)
	f.LoadSym(r1, "data")
	f.Ldi(r2, 2)
	f.St(8, r1, 8, r2)
	f.Ret()

	f = b.Func("work", "obs.c")
	f.Enter(0)
	fn := f
	omp.SingleNowait(f, func() {
		fn.Line(5)
		omp.EmitTask(fn, omp.TaskOpts{Fn: "task_a"})
		fn.Line(8)
		omp.EmitTask(fn, omp.TaskOpts{Fn: "task_b"})
	})
	f.Leave()

	f = b.Func("main", "obs.c")
	f.Enter(0)
	f.Ldi(r1, 0)
	omp.Parallel(f, "work", r1, 0)
	f.Ldi(r0, 0)
	f.Hlt(r0)
	return b
}

// observedRun executes the tasking program with the full observability stack
// attached and returns the snapshot JSON, the tracer, and the ring sink.
func observedRun(t *testing.T, seed uint64) (string, *obs.Tracer, *obs.RingSink) {
	t.Helper()
	reg := obs.NewRegistry()
	ring := obs.NewRingSink(8192)
	tr := obs.NewTracer(ring)
	prof := obs.NewProfiler(1)
	hooks := &obs.Hooks{Metrics: reg, Tracer: tr, Prof: prof}
	tg := core.New(core.DefaultOptions())
	res, inst, err := harness.BuildAndRun(taskObsProgram(), harness.Setup{
		Tool: tg, Seed: seed, Obs: hooks,
	})
	if err != nil || res.Err != nil {
		t.Fatal(err, res.Err)
	}
	inst.CaptureMetrics(reg)
	var buf bytes.Buffer
	if err := reg.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String(), tr, ring
}

func TestMetricsDeterminism(t *testing.T) {
	a, trA, _ := observedRun(t, 7)
	b, trB, _ := observedRun(t, 7)
	if a != b {
		t.Fatalf("same-seed snapshots differ:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	if trA.Events() != trB.Events() {
		t.Fatalf("same-seed event counts differ: %d vs %d", trA.Events(), trB.Events())
	}
}

func TestCapturedMetricsCoverSubsystems(t *testing.T) {
	jsonSnap, tr, ring := observedRun(t, 1)
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(jsonSnap), &snap); err != nil {
		t.Fatalf("snapshot not valid JSON: %v", err)
	}
	// Translation cache, scheduler, task lifecycle, allocations — the
	// counter families the acceptance criteria name.
	for _, key := range []string{
		"dbi_translations_total",
		"vm_blocks_executed_total",
		"sched_slices_total",
		"sched_switches_total",
		"omp_task_create_total",
		"omp_task_begin_total",
		"omp_task_end_total",
		"pool_allocs_total",
		"core_client_requests_total",
		"tool_accesses_recorded_total",
		"tool_instrumented_stores_total",
	} {
		if snap.Counters[key] == 0 {
			t.Errorf("counter %s missing or zero", key)
		}
	}
	if snap.Counter("omp_task_begin_total") != snap.Counter("omp_task_end_total") {
		t.Errorf("task begin/end unbalanced: %d vs %d",
			snap.Counter("omp_task_begin_total"), snap.Counter("omp_task_end_total"))
	}
	if tr.Diagnostics() != 0 {
		t.Errorf("clean run emitted %d diagnostics", tr.Diagnostics())
	}
	// The event stream carries every category the hooks cover.
	cats := map[string]bool{}
	for _, ev := range ring.Events() {
		cats[ev.Cat] = true
	}
	for _, c := range []string{"dbi", "sched", "omp", "core"} {
		if !cats[c] {
			t.Errorf("no %q events in trace", c)
		}
	}
}

func TestChromeTraceEndToEnd(t *testing.T) {
	var out bytes.Buffer
	tr := obs.NewTracer(obs.NewChromeSink(&out))
	prof := obs.NewProfiler(1)
	hooks := &obs.Hooks{Tracer: tr, Prof: prof}
	tg := core.New(core.DefaultOptions())
	res, inst, err := harness.BuildAndRun(taskObsProgram(), harness.Setup{
		Tool: tg, Seed: 3, Obs: hooks,
	})
	if err != nil || res.Err != nil {
		t.Fatal(err, res.Err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(out.Bytes(), &evs); err != nil {
		t.Fatalf("chrome trace not a valid JSON array: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("empty trace")
	}
	// Every B has a matching E per thread, and timestamps never go
	// backwards within a thread.
	lastTS := map[float64]float64{}
	depth := map[float64]int{}
	for _, ev := range evs {
		tid := ev["tid"].(float64)
		ts := ev["ts"].(float64)
		if ts < lastTS[tid] {
			t.Fatalf("ts went backwards on tid %v: %v < %v", tid, ts, lastTS[tid])
		}
		lastTS[tid] = ts
		switch ev["ph"] {
		case "B":
			depth[tid]++
		case "E":
			depth[tid]--
			if depth[tid] < 0 {
				t.Fatalf("unmatched E on tid %v", tid)
			}
		}
	}
	for tid, d := range depth {
		if d != 0 {
			t.Fatalf("tid %v ends with %d open spans", tid, d)
		}
	}
	// And the profiler resolved guest symbols.
	var rep bytes.Buffer
	if err := prof.Report(&rep, inst.M.Image, 10); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(rep.Bytes(), []byte("task_a")) &&
		!bytes.Contains(rep.Bytes(), []byte("work")) {
		t.Fatalf("profile did not resolve guest symbols:\n%s", rep.String())
	}
}

func TestObsDisabledIsNilSafe(t *testing.T) {
	// No hooks: every call site must stay on its nil fast path.
	tg := core.New(core.DefaultOptions())
	res, inst, err := harness.BuildAndRun(taskObsProgram(), harness.Setup{Tool: tg, Seed: 1})
	if err != nil || res.Err != nil {
		t.Fatal(err, res.Err)
	}
	// CaptureMetrics with a nil registry is a no-op, not a panic.
	inst.CaptureMetrics(nil)
}
