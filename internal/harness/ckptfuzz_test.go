package harness_test

// Checkpoint/resume fuzz over Table I (DataRaceBench) programs. The system's
// resume primitive is deterministic re-execution under a recorded journal:
// the "resumed" run must walk the recorded timeline — every scheduler pick,
// every checkpoint digest at its randomly drawn block-boundary cadence — and
// land on a bit-identical final state (full guest memory hash, machine
// counters, rendered tool report), on both execution engines.

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dbi"
	"repro/internal/drb"
	"repro/internal/harness"
	"repro/internal/snapshot"
)

// gmemHash folds every resident guest page (index and content) into one
// digest — the strongest practical "same memory" check.
func gmemHash(inst *harness.Instance) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, p := range inst.M.Mem.AllPages() {
		binary.LittleEndian.PutUint64(buf[:], p.Idx)
		h.Write(buf[:])
		h.Write(p.Data)
	}
	return h.Sum64()
}

func TestCheckpointResumeFuzzDRB(t *testing.T) {
	progs := []string{
		"027-taskdependmissing-orig",
		"072-taskdep1-orig",
		"106-taskwaitmissing-orig",
		"123-taskundeferred-orig",
	}
	rng := rand.New(rand.NewSource(99))
	for _, name := range progs {
		bm, ok := drb.ByName(name)
		if !ok {
			t.Fatalf("unknown DRB program %s", name)
		}
		for _, eng := range []string{dbi.EngineIR, dbi.EngineCompiled} {
			for trial := 0; trial < 3; trial++ {
				// Random seed, timeslice length and checkpoint cadence:
				// together they place checkpoints at effectively random
				// block boundaries of random interleavings.
				seed := uint64(1 + rng.Intn(50))
				slice := 1 + rng.Intn(6)
				every := 1 + rng.Intn(9)

				run := func(j *snapshot.Journal) (*harness.Instance, string) {
					tl := core.New(core.Options{})
					res, inst, err := harness.BuildAndRun(bm.Build(), harness.Setup{
						Tool: tl, Seed: seed, Threads: 4, Slice: slice,
						Engine: eng, Journal: j, CkptEvery: every,
					})
					if err != nil {
						t.Fatalf("%s %s seed=%d: %v", name, eng, seed, err)
					}
					if res.Err != nil {
						t.Fatalf("%s %s seed=%d: run failed: %v", name, eng, seed, res.Err)
					}
					return inst, tl.Reports.String()
				}

				rec := snapshot.NewJournal()
				instA, reportA := run(rec)
				v := rec.Verifier(false)
				instB, reportB := run(v)

				if d := v.Err(); d != nil {
					t.Fatalf("%s %s seed=%d slice=%d every=%d: resume diverged: %v",
						name, eng, seed, slice, every, d)
				}
				if got, want := v.MarksMatched(), len(rec.Marks()); got != want {
					t.Fatalf("%s %s seed=%d: resume matched %d/%d checkpoint marks",
						name, eng, seed, got, want)
				}
				if a, b := gmemHash(instA), gmemHash(instB); a != b {
					t.Fatalf("%s %s seed=%d: final guest memory differs: %#x vs %#x",
						name, eng, seed, a, b)
				}
				if a, b := instA.M.StateDigest(), instB.M.StateDigest(); a != b {
					t.Fatalf("%s %s seed=%d: final machine state differs: %#x vs %#x",
						name, eng, seed, a, b)
				}
				if instA.M.BlocksExecuted != instB.M.BlocksExecuted ||
					instA.M.InstrsExecuted != instB.M.InstrsExecuted ||
					instA.M.ExitCode() != instB.M.ExitCode() {
					t.Fatalf("%s %s seed=%d: counters differ: blocks %d/%d instrs %d/%d exit %d/%d",
						name, eng, seed,
						instA.M.BlocksExecuted, instB.M.BlocksExecuted,
						instA.M.InstrsExecuted, instB.M.InstrsExecuted,
						instA.M.ExitCode(), instB.M.ExitCode())
				}
				if reportA != reportB {
					t.Fatalf("%s %s seed=%d: tool reports differ:\n--- record\n%s\n--- resume\n%s",
						name, eng, seed, reportA, reportB)
				}
				if instA.Ckpts.Taken != instB.Ckpts.Taken {
					t.Fatalf("%s %s seed=%d: checkpoint counts differ: %d vs %d",
						name, eng, seed, instA.Ckpts.Taken, instB.Ckpts.Taken)
				}
			}
		}
	}
}

// TestCheckpointResumeCrossEngine: the two engines execute the same recorded
// timeline — a journal recorded on the compiled engine verifies cleanly on
// the IR oracle, digests included (the engines are bit-identical at Extend=0,
// which is what makes checkpoint marks valid cross-engine probes).
func TestCheckpointResumeCrossEngine(t *testing.T) {
	bm, ok := drb.ByName("027-taskdependmissing-orig")
	if !ok {
		t.Fatal("missing DRB program")
	}
	run := func(eng string, j *snapshot.Journal) string {
		tl := core.New(core.Options{})
		res, _, err := harness.BuildAndRun(bm.Build(), harness.Setup{
			Tool: tl, Seed: 5, Threads: 4, Slice: 3,
			Engine: eng, Journal: j, CkptEvery: 4,
		})
		if err != nil || res.Err != nil {
			t.Fatalf("%s: %v %v", eng, err, res.Err)
		}
		return tl.Reports.String()
	}
	rec := snapshot.NewJournal()
	reportC := run(dbi.EngineCompiled, rec)
	v := rec.Verifier(false)
	reportI := run(dbi.EngineIR, v)
	if d := v.Err(); d != nil {
		t.Fatalf("IR resume of a compiled-engine recording diverged: %v", d)
	}
	if reportC != reportI {
		t.Fatalf("cross-engine reports differ:\n--- compiled\n%s\n--- ir\n%s", reportC, reportI)
	}
}
