// Package harness wires a guest program image together with the host C
// library, the OpenMP runtime, the DBI core and an optional analysis tool —
// the equivalent of launching `valgrind --tool=X ./a.out` in the paper's
// setup.
package harness

import (
	"context"
	"fmt"
	"io"
	"runtime/debug"
	"time"

	"repro/internal/core"
	"repro/internal/dbi"
	"repro/internal/dbi/hostlib"
	"repro/internal/faultinject"
	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/obs"
	"repro/internal/omp"
	"repro/internal/ompt"
	"repro/internal/snapshot"
	"repro/internal/tstore"
	"repro/internal/vm"
)

// Setup configures an instance.
type Setup struct {
	// Image is the program to run.
	Image *guest.Image
	// Tool is the DBI tool plugin (nil runs uninstrumented — the
	// "no tools" reference of the evaluation).
	Tool dbi.Tool
	// Seed drives the deterministic scheduler.
	Seed uint64
	// Threads caps OpenMP team sizes (OMP_NUM_THREADS; default 4).
	Threads int
	// Stdout receives guest output.
	Stdout io.Writer
	// Slice is the scheduler timeslice in basic blocks (default 3 —
	// small enough that microbenchmark-sized programs interleave).
	Slice int
	// ExtraHost registers additional host functions (runtimes under test).
	ExtraHost func(reg *vm.HostRegistry, inst *Instance)
	// Obs attaches the observability layer (metrics/tracing/profiling).
	// Nil keeps every hook site on its fast no-op path.
	Obs *obs.Hooks
	// Inject wires deterministic fault injection into the heap, the fast
	// pool, the work-stealer and the scheduler. Nil injects nothing.
	Inject *faultinject.Injector
	// RunOpts bounds the run (watchdog budgets); the zero value is unlimited.
	RunOpts vm.RunOpts
	// LenientMem restores the pre-fault-model memory semantics (wild guest
	// accesses silently allocate instead of raising a GuestFault).
	LenientMem bool
	// Engine selects the DBI execution engine: dbi.EngineCompiled (micro-op
	// translations with block chaining), dbi.EngineIR (the reference IR
	// interpreter), or "" to keep the default for the tool.
	Engine string
	// Extend, when positive, enables superblock extension: translations
	// follow unconditional jumps up to Extend guest instructions. It changes
	// block granularity — and therefore scheduler interleavings — so leave
	// it zero when reproducing seeded schedules.
	Extend int
	// Delivery selects how access-stream tools receive memory accesses:
	// dbi.DeliverBatched (one flush per superblock segment, the default) or
	// dbi.DeliverPerEvent (one callback per access, the differential
	// reference).
	Delivery dbi.Delivery
	// Journal, when set, is attached to the machine and the injector: in
	// record mode every scheduler pick and injection draw is logged; in
	// verify mode the run is checked decision-by-decision against a prior
	// recording (see internal/snapshot).
	Journal *snapshot.Journal
	// CkptEvery, when positive, enables periodic checkpointing: dirty-page
	// tracking is switched on and a snapshot of the machine is captured
	// into Instance.Ckpts every CkptEvery timeslices (with journal state
	// marks when Journal is set).
	CkptEvery int
	// CkptRetain bounds the retained checkpoint history (0 = default 4);
	// older checkpoints fold into the manager's base image.
	CkptRetain int
	// ReplayToken, when non-empty, is stamped onto any CrashReport this
	// run produces, so the rendered report tells the user how to reproduce
	// it (`taskgrind -replay <token>`).
	ReplayToken string
	// TStore, when set, attaches the content-addressed translation store:
	// the core resolves translations from (and publishes to) the cache's
	// store for this run's (image hash, tool, engine, extend, delivery)
	// key, so translation happens once per image rather than once per run.
	// Tools that fix the engine themselves (compile-time instrumentation)
	// never translate and are unaffected.
	TStore *tstore.Cache
	// ToolID overrides the tool identity in the store key (default
	// Tool.Name(), or "none" uninstrumented). Set it when the same tool
	// type is configured differently across runs sharing one cache.
	ToolID string
	// Pretranslate starts the ahead-of-execution pipeline on the store
	// before the run: spare cores walk the image's statically reachable
	// blocks and fill the store while the guest executes. Requires TStore;
	// instrumented runs also require NewTool (pipeline workers each
	// instrument with their own tool instance) or the pipeline stays off.
	Pretranslate bool
	// NewTool builds a fresh tool instance (same configuration as Tool)
	// for each pretranslation worker.
	NewTool func() dbi.Tool
}

// Instance is a ready-to-run guest machine with all substrates attached.
type Instance struct {
	M      *vm.Machine
	Core   *dbi.Core
	Lib    *hostlib.Lib
	OMP    *omp.Runtime
	Inject *faultinject.Injector
	// RunOpts are applied by Run.
	RunOpts vm.RunOpts
	// Ckpts retains the run's checkpoint history (nil unless Setup.CkptEvery
	// was set); Journal is the attached decision journal (nil unless set).
	Ckpts   *snapshot.Manager
	Journal *snapshot.Journal
	// ReplayToken is stamped onto crash reports (see Setup.ReplayToken).
	ReplayToken string
	// Obs echoes Setup.Obs (nil when observability is off).
	Obs *obs.Hooks
	// Pretrans is the ahead-of-execution pipeline handle (nil unless
	// Setup.Pretranslate started one). Wait on it before saving the cache.
	Pretrans *dbi.Pretranslation
	// TStore echoes Setup.TStore when the store was attached (nil when the
	// tool fixes its own engine); CaptureMetrics snapshots its counters.
	TStore *tstore.Cache
}

// New builds an instance.
func New(s Setup) (*Instance, error) {
	inst := &Instance{}
	reg := vm.NewHostRegistry()
	inst.Lib = hostlib.New()
	inst.Lib.Install(reg)
	inst.OMP = omp.NewRuntime()
	if s.Threads > 0 {
		inst.OMP.MaxThreads = s.Threads
	}
	inst.OMP.Install(reg)
	if s.ExtraHost != nil {
		s.ExtraHost(reg, inst)
	}
	slice := s.Slice
	if slice == 0 {
		slice = 3
	}
	m, err := vm.New(s.Image, reg, vm.Config{
		Seed: s.Seed, Stdout: s.Stdout, Slice: slice, LenientMem: s.LenientMem,
	})
	if err != nil {
		return nil, err
	}
	inst.M = m
	inst.RunOpts = s.RunOpts
	inst.Core = dbi.New(m, s.Tool)
	inst.Core.ExtendBudget = s.Extend
	inst.Core.Delivery = s.Delivery
	if s.Engine != "" {
		if err := inst.Core.SelectEngine(s.Engine); err != nil {
			return nil, err
		}
	}
	if s.TStore != nil && !inst.Core.EngineFixed() {
		engine := s.Engine
		if engine == "" {
			engine = dbi.EngineCompiled
		}
		toolID := s.ToolID
		if toolID == "" {
			switch tl := s.Tool.(type) {
			case nil:
				toolID = "none"
			case dbi.Identifier:
				toolID = tl.ToolID()
			default:
				toolID = s.Tool.Name()
			}
		}
		st := s.TStore.Open(tstore.Key{
			Image:    tstore.ImageHash(s.Image),
			Tool:     toolID,
			Engine:   engine,
			Extend:   s.Extend,
			Delivery: s.Delivery.String(),
		})
		inst.Core.Shared = st
		inst.TStore = s.TStore
		// An instrumented pipeline without NewTool would publish
		// uninstrumented blocks under the instrumented key: refuse.
		if s.Pretranslate && (s.Tool == nil || s.NewTool != nil) {
			newTool := s.NewTool
			if newTool == nil {
				newTool = func() dbi.Tool { return nil }
			}
			inst.Pretrans = dbi.PretranslateAsync(st, s.Image, 0, newTool)
		}
	}
	inst.Lib.Bind(inst.Core)
	inst.OMP.Attach(m)
	if in := s.Inject; in != nil && in.Enabled() {
		inst.Inject = in
		inst.Lib.Heap.FailHook = func(uint64) bool { return in.Fire(faultinject.HeapAlloc) }
		inst.OMP.Pool.FailHook = func(uint64) bool { return in.Fire(faultinject.PoolAlloc) }
		inst.OMP.DenySteal = func() bool { return in.Fire(faultinject.StealDeny) }
		inst.OMP.LockSpurious = func() bool { return in.Fire(faultinject.LockSpurious) }
		inst.OMP.LockDelay = func() bool { return in.Fire(faultinject.LockDelay) }
		inst.OMP.TrylockFail = func() bool { return in.Fire(faultinject.TrylockFail) }
		m.Perturb = func() bool { return in.Fire(faultinject.SchedPerturb) }
		// The compiled engine's injected-defect hook. The IR oracle never
		// consults it, so -on-panic=fallback sidesteps the injected panic.
		inst.Core.PanicHook = func() bool { return in.Fire(faultinject.EnginePanic) }
	}
	inst.ReplayToken = s.ReplayToken
	if s.Journal != nil {
		inst.Journal = s.Journal
		m.Journal = s.Journal
		if in := inst.Inject; in != nil {
			// Injection decisions enter the record stream (per-kind, with
			// prefix semantics on verify — see snapshot.Journal.Fire).
			in.Observe = func(k faultinject.Kind, fired bool) {
				_ = s.Journal.Fire(int(k), fired)
			}
		}
	}
	if s.CkptEvery > 0 {
		inst.Ckpts = snapshot.NewManager(s.CkptRetain)
		m.Mem.EnableDirtyTracking()
		inst.RunOpts.CkptEvery = s.CkptEvery
		inst.RunOpts.OnCkpt = func(m *vm.Machine) error {
			cp := m.CaptureCheckpoint()
			cp.Seq = inst.Ckpts.Taken + 1
			cp.CacheGen = inst.Core.CacheGen()
			inst.Ckpts.Add(cp)
			if s.Journal != nil {
				// State marks are the online divergence probe: a replay
				// (or an engine-fallback re-execution) cross-checks its
				// digest against the recording at every checkpoint.
				return s.Journal.AddMark(snapshot.Mark{
					Slice:  m.Slices,
					Blocks: m.BlocksExecuted,
					Instrs: m.InstrsExecuted,
					Digest: cp.Digest,
				})
			}
			return nil
		}
	}
	if tg, ok := s.Tool.(*core.Taskgrind); ok && tg.Opt.NoFreePool {
		// The §IV-B future-work extension: neutralize the runtime's
		// internal allocator recycling (the effect of wrapping
		// __kmp_fast_allocate).
		inst.OMP.Pool.Recycle = false
	}
	if s.Tool != nil {
		// Inject the built-in OMPT tool: runtime events become client
		// requests delivered to the plugin (paper Fig. 2).
		inst.OMP.Events = &ompt.Bridge{Core: inst.Core}
	}
	if s.Obs != nil {
		inst.Obs = s.Obs
		inst.Core.SetObs(s.Obs)
		inst.OMP.SetObs(s.Obs)
		if in := inst.Inject; in != nil && s.Obs.Tracing() {
			// Injection firings become trace instants (thread -1: the
			// decision is drawn inside a host call, before attribution).
			tr := s.Obs.Tracer
			in.OnFire = func(k faultinject.Kind) {
				tr.Instant(m.BlocksExecuted, -1, "inject", k.String(), nil)
			}
		}
	}
	return inst, nil
}

// CaptureMetrics copies every subsystem's own counters into the registry —
// the snapshot step that complements the live counters hooks increment
// during the run. Hot-path statistics (block/instruction counts, cache
// hits) stay plain struct fields and are only materialized here, so
// enabling metrics costs the hot loops nothing extra. Call after Run.
func (inst *Instance) CaptureMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m := inst.M
	reg.Counter("vm_blocks_executed_total").Set(m.BlocksExecuted)
	reg.Counter("vm_instrs_executed_total").Set(m.InstrsExecuted)
	reg.Counter("sched_switches_total").Set(m.Switches)
	reg.Counter("sched_slices_total").Set(m.Slices)
	reg.Counter("sched_preemptions_total").Set(m.Preemptions)
	reg.Gauge("mem_footprint_bytes").Set(float64(m.Footprint()))
	for _, t := range m.Threads() {
		id := fmt.Sprintf("%d", t.ID)
		reg.Counter("vm_thread_blocks_total", "thread", id).Set(t.BlocksExecuted)
		reg.Counter("vm_thread_instrs_total", "thread", id).Set(t.InstrsExecuted)
	}

	c := inst.Core
	reg.Counter("dbi_translations_total").Set(c.Translations)
	reg.Counter("dbi_cache_hits_total").Set(c.CacheHits)
	reg.Counter("dbi_cache_misses_total").Set(c.CacheMisses)
	reg.Counter("dbi_shared_hits_total").Set(c.SharedHits)
	reg.Counter("dbi_pretranslated_blocks_total").Set(c.PretranslatedBlocks)
	reg.Counter("dbi_cache_stmts").Set(c.CacheStmts())
	reg.Gauge("dbi_cache_footprint_bytes").Set(float64(c.CacheFootprint()))
	reg.Counter("dbi_compiles_total").Set(c.Compiles)
	reg.Counter("dbi_chain_hits_total").Set(c.ChainHits)
	reg.Counter("dbi_chain_misses_total").Set(c.ChainMisses)
	reg.Counter("dbi_extend_seams_total").Set(c.ExtendSeams)
	reg.Counter("dbi_dirty_calls_total").Set(c.DirtyCalls)
	reg.Counter("dbi_accesses_delivered_total").Set(c.AccessesDelivered)

	reg.Counter("vm_guest_faults_total").Set(m.GuestFaults)
	reg.Counter("vm_host_panics_total").Set(m.HostPanics)
	reg.Counter("vm_watchdog_trips_total").Set(m.WatchdogTrips)

	if mgr := inst.Ckpts; mgr != nil {
		reg.Counter("snapshot_checkpoints_total").Set(mgr.Taken)
		reg.Counter("snapshot_checkpoints_dropped_total").Set(mgr.Dropped)
		reg.Gauge("snapshot_page_bytes").Set(float64(mgr.PageBytes))
	}
	if j := inst.Journal; j != nil {
		reg.Counter("journal_decisions_total").Set(uint64(j.Len()))
		reg.Counter("journal_marks_total").Set(uint64(len(j.Marks())))
	}

	r := inst.OMP
	reg.Counter("omp_tasks_created_total").Set(r.TasksCreated)
	reg.Counter("omp_tasks_undeferred_total").Set(r.TasksUndeferred)
	reg.Counter("omp_regions_total").Set(r.RegionsStarted)
	reg.Counter("omp_steals_attempted_total").Set(r.StealsAttempted)
	reg.Counter("omp_steals_successful_total").Set(r.StealsSuccessful)
	reg.Counter("omp_steals_denied_total").Set(r.StealsDenied)
	reg.Counter("omp_alloc_failures_total").Set(r.AllocFailures)
	reg.Counter("omp_mutex_acquires_total").Set(r.MutexAcquires)
	reg.Counter("omp_mutex_contended_total").Set(r.MutexContended)
	reg.Counter("omp_mutex_handoffs_total").Set(r.MutexHandoffs)
	reg.Counter("omp_trylocks_failed_total").Set(r.TrylocksFailed)
	reg.Counter("omp_cond_waits_total").Set(r.CondWaits)
	reg.Counter("omp_cond_signals_total").Set(r.CondSignals)
	reg.Counter("omp_cond_spurious_total").Set(r.CondSpurious)
	reg.Counter("pool_allocs_total").Set(r.Pool.TotalAlloc)
	reg.Counter("pool_frees_total").Set(r.Pool.TotalFree)

	inst.Inject.PublishMetrics(reg)
	if inst.Obs != nil {
		inst.Obs.Tracer.PublishMetrics(reg)
	}

	if inst.TStore != nil {
		cs := inst.TStore.Stats()
		reg.Counter("tstore_units").Set(uint64(cs.Units))
		reg.Counter("tstore_hits_total").Set(cs.Hits)
		reg.Counter("tstore_misses_total").Set(cs.Misses)
		reg.Counter("tstore_translations_total").Set(cs.Puts)
		reg.Counter("tstore_evictions_total").Set(cs.Evictions)
		reg.Counter("tstore_corrupt_frames_total").Set(cs.CorruptFrames)
		reg.Counter("tstore_io_faults_total").Set(cs.IOFaults)
		reg.Counter("tstore_lock_waits_total").Set(cs.LockWaits)
		reg.Counter("tstore_merged_total").Set(cs.Merged)
		reg.Gauge("tstore_bytes").Set(float64(cs.Bytes))
	}

	heap := inst.Lib.Heap
	reg.Counter("heap_allocs_total").Set(heap.TotalAlloc)
	reg.Counter("heap_frees_total").Set(heap.TotalFree)
	reg.Gauge("heap_live_bytes").Set(float64(heap.LiveBytes()))
	reg.Gauge("heap_peak_bytes").Set(float64(heap.PeakBytes()))

	if src, ok := inst.Core.Tool().(obs.MetricSource); ok {
		src.PublishMetrics(reg)
	}
}

// Result captures one run's metrics.
type Result struct {
	ExitCode uint64
	// Wall is the host wall-clock execution time (recording phase only,
	// like the paper's Table II timing).
	Wall time.Duration
	// GuestInstrs is the deterministic work metric.
	GuestInstrs uint64
	// Footprint is guest memory + tool shadow memory at exit.
	Footprint uint64
	Err       error
	// Crash is the structured report when Err is a contained failure
	// (guest fault, host panic, watchdog, deadlock); nil otherwise.
	Crash *vm.CrashReport
}

// Run executes the program (and the tool's Fini pass) and reports metrics.
// The wall time covers the recording phase only; analysis time is the
// tool's business, matching the paper's measurement methodology.
//
// Run never lets a Go panic escape: the VM contains panics at the block
// boundary, and the tool's Fini pass (which runs outside the VM) is guarded
// here. Contained failures come back as Result.Err with Result.Crash set.
func (inst *Instance) Run() Result { return inst.RunCtx(nil) }

// RunCtx runs like Run under a cancellation context: cancel interrupts the
// guest within one timeslice (Result.Err is a *vm.CanceledError), and a
// context deadline trips the wall watchdog. A nil ctx keeps the context
// check off the slice loop entirely. The RunOpts.Timeout budget composes
// either way — with a context it becomes a derived deadline on it.
func (inst *Instance) RunCtx(ctx context.Context) Result {
	opts := inst.RunOpts
	opts.Ctx = ctx
	start := time.Now()
	err := inst.M.RunOpts(opts)
	wall := time.Since(start)
	if err == nil && inst.Core.Tool() != nil {
		err = inst.finiGuarded()
	}
	res := Result{
		ExitCode:    inst.M.ExitCode(),
		Wall:        wall,
		GuestInstrs: inst.M.InstrsExecuted,
		Footprint:   inst.M.Footprint(),
		Err:         err,
		Crash:       inst.M.CrashReport(err),
	}
	if res.Crash != nil {
		res.Crash.ReplayToken = inst.ReplayToken
	}
	return res
}

// finiGuarded runs the tool's analysis pass with panic containment: Fini
// executes host-side after the guest has exited, so the VM's block-boundary
// recover cannot cover it.
func (inst *Instance) finiGuarded() (err error) {
	defer func() {
		if r := recover(); r != nil {
			inst.M.HostPanics++
			err = &vm.HostPanic{Val: r, TID: -1, GoStack: debug.Stack()}
		}
	}()
	inst.Core.Tool().Fini(inst.Core)
	return nil
}

// BuildAndRun links a builder, builds an instance and runs it — the
// one-stop helper tests use.
func BuildAndRun(b *gbuild.Builder, s Setup) (Result, *Instance, error) {
	im, err := b.Link()
	if err != nil {
		return Result{}, nil, err
	}
	s.Image = im
	inst, err := New(s)
	if err != nil {
		return Result{}, nil, err
	}
	res := inst.Run()
	return res, inst, nil
}
