package harness_test

// Lock-handoff fault injection: the spurious-wakeup, delayed-handoff and
// failed-trylock kinds must draw from the injector's per-kind streams
// exactly like the older kinds — seed-deterministic firing, byte-identical
// repeat runs, and decision-journal round trips — so every lock verdict
// reached under injection replays.

import (
	"fmt"
	"testing"

	"repro/internal/drb"
	"repro/internal/faultinject"
	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/harness"
	"repro/internal/omp"
	"repro/internal/snapshot"
)

// contendedLockProgram: four sibling tasks each loop lockIters times over
// one shared mutex-protected counter — enough traffic to guarantee
// contended acquires (handoff-delay draws) at any seed.
func contendedLockProgram() *gbuild.Builder {
	const file = "contend.c"
	const r1, r2, r3 = guest.R1, guest.R2, guest.R3
	const lockIters = 8
	b := omp.NewProgram()
	b.Global("m", 8)
	b.Global("counter", 8)
	for i := 0; i < 4; i++ {
		f := b.Func(fmt.Sprintf("worker%d", i), file)
		f.Line(10 + i)
		f.Enter(16)
		f.Ldi(r3, 0)
		f.StLocal(8, 8, r3)
		loop := f.NewLabel()
		f.Bind(loop)
		omp.WithMutex(f, "m", func() {
			f.LoadSym(r1, "counter")
			f.Ld(8, r2, r1, 0)
			f.Addi(r2, r2, 1)
			f.St(8, r1, 0, r2)
		})
		f.LdLocal(8, r3, 8)
		f.Addi(r3, r3, 1)
		f.StLocal(8, 8, r3)
		f.Ldi(r2, lockIters)
		f.Blt(r3, r2, loop)
		f.Leave()
	}
	f := b.Func("micro", file)
	f.Enter(0)
	fn := f
	omp.SingleNowait(f, func() {
		for i := 0; i < 4; i++ {
			fn.Line(30 + i)
			omp.EmitTask(fn, omp.TaskOpts{Fn: fmt.Sprintf("worker%d", i)})
		}
	})
	f.Leave()
	f = b.Func("main", file)
	f.Enter(0)
	f.Line(5)
	omp.MutexInit(f, "m")
	f.Ldi(r1, 0)
	omp.Parallel(f, "micro", r1, 0)
	f.Ldi(guest.R0, 0)
	f.Hlt(guest.R0)
	return b
}

// lockScenario builds the named drb lock row.
func lockScenario(t *testing.T, name string) func() *gbuild.Builder {
	t.Helper()
	b, ok := drb.ByName(name)
	if !ok {
		t.Fatalf("unknown lock scenario %q", name)
	}
	return b.Build
}

// TestLockFaultDeterminism: each lock fault kind is actually consulted on a
// scenario that exercises its site, and two runs with the same (program,
// seed, spec) are byte-identical — instructions retired, exit code, and the
// injector's own fired/seen summary.
func TestLockFaultDeterminism(t *testing.T) {
	cases := []struct {
		name  string
		build func() *gbuild.Builder
		spec  string
		kind  faultinject.Kind
	}{
		{"spurious-condvar", lockScenario(t, "lock-104-condvar"), "spurious=2", faultinject.LockSpurious},
		{"handoff-contended", contendedLockProgram, "handoff=2", faultinject.LockDelay},
		{"trylock", lockScenario(t, "lock-105-trylock"), "trylock=1", faultinject.TrylockFail},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			run := func() (uint64, uint64, string) {
				in, err := faultinject.ParseSpec(tc.spec, 13)
				if err != nil {
					t.Fatal(err)
				}
				res, _, err := harness.BuildAndRun(tc.build(), harness.Setup{
					Seed: 1, Threads: 4, Inject: in,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Err != nil {
					t.Fatalf("injected run failed: %v", res.Err)
				}
				if in.Seen(tc.kind) == 0 {
					t.Fatalf("%s never consulted on %s", tc.kind, tc.name)
				}
				return res.GuestInstrs, res.ExitCode, in.Summary()
			}
			i1, e1, s1 := run()
			i2, e2, s2 := run()
			if i1 != i2 || e1 != e2 || s1 != s2 {
				t.Fatalf("injected lock run diverged: (%d,%d,%q) vs (%d,%d,%q)",
					i1, e1, s1, i2, e2, s2)
			}
		})
	}
}

// TestLockFaultJournalRoundTrip: lock-fault decisions enter the decision
// journal, and a verify-mode re-execution with the same spec replays the
// recorded stream without divergence.
func TestLockFaultJournalRoundTrip(t *testing.T) {
	const spec = "spurious=2,handoff=2,trylock=1"
	mkInjector := func() *faultinject.Injector {
		in, err := faultinject.ParseSpec(spec, 13)
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	for _, sc := range []struct {
		prog  string
		build func() *gbuild.Builder
		kind  faultinject.Kind
	}{
		{"lock-104-condvar", lockScenario(t, "lock-104-condvar"), faultinject.LockSpurious},
		{"contended", contendedLockProgram, faultinject.LockDelay},
		{"lock-105-trylock", lockScenario(t, "lock-105-trylock"), faultinject.TrylockFail},
	} {
		sc := sc
		t.Run(sc.prog, func(t *testing.T) {
			j := snapshot.NewJournal()
			res, _, err := harness.BuildAndRun(sc.build(), harness.Setup{
				Seed: 1, Threads: 4, Inject: mkInjector(), Journal: j,
			})
			if err != nil || res.Err != nil {
				t.Fatalf("record run failed: %v / %v", err, res.Err)
			}
			if j.FireCount(int(sc.kind)) == 0 {
				t.Fatalf("journal recorded no %s decisions", sc.kind)
			}
			v := j.Verifier(false)
			res2, _, err := harness.BuildAndRun(sc.build(), harness.Setup{
				Seed: 1, Threads: 4, Inject: mkInjector(), Journal: v,
			})
			if err != nil || res2.Err != nil {
				t.Fatalf("verify run failed: %v / %v", err, res2.Err)
			}
			if d := v.Err(); d != nil {
				t.Fatalf("verify diverged from recording: %v", d)
			}
			if res.GuestInstrs != res2.GuestInstrs {
				t.Fatalf("replay retired %d instrs, recording %d", res2.GuestInstrs, res.GuestInstrs)
			}
		})
	}
}
