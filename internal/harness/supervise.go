package harness

// The run supervisor: crash recovery, replay verification and engine-
// fallback degradation on top of the checkpoint/journal substrate.
//
// Because tool and runtime state are host-side object graphs, a "rewind" is
// implemented as deterministic re-execution: a fresh instance is built from
// the same configuration and driven under the recorded journal, which
// verifies — decision by decision, and state digest by state digest at every
// checkpoint — that the reconstruction walks the recorded timeline. This is
// the same trick that makes Valgrind-style serialized schedulers replayable:
// the run is a pure function of its configuration, so re-executing IS
// restoring, and the checkpoints' role is to prove it.

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/dbi"
	"repro/internal/snapshot"
	"repro/internal/vm"
)

// SetupFactory builds a fresh Setup for each (re-)execution attempt. It must
// return an equivalent configuration every call (same image, seed, tool
// construction, injection spec): the supervisor's recovery guarantees assume
// attempt N replays attempt 0's timeline. Journal/checkpoint/replay-token
// fields are overwritten by the supervisor.
type SetupFactory func() Setup

// OnPanic selects the supervisor's reaction to a contained HostPanic.
type OnPanic int

const (
	// OnPanicReport keeps the PR 2 behaviour: contain, render, report.
	OnPanicReport OnPanic = iota
	// OnPanicFallback rewinds and re-executes under the IR oracle (the
	// trusted reference engine), degrading gracefully instead of dying.
	OnPanicFallback
)

// Failure taxonomy values (SupResult.Taxonomy, explore quarantine, daemon
// job status).
const (
	TaxFault      = "fault"      // GuestFault: wild guest access
	TaxPanic      = "panic"      // HostPanic: host-side defect (engine, tool)
	TaxTimeout    = "timeout"    // watchdog budget exhausted
	TaxDeadlock   = "deadlock"   // no runnable threads
	TaxDivergence = "divergence" // replay departed from the recording
	TaxCanceled   = "canceled"   // run context canceled (administrative stop)
	TaxError      = "error"      // other (plain) error
)

// Classify maps a run error to the failure taxonomy ("" for nil).
func Classify(err error) string {
	if err == nil {
		return ""
	}
	var div *snapshot.Divergence
	var gf *vm.GuestFault
	var hp *vm.HostPanic
	var wd *vm.WatchdogError
	var dl *vm.DeadlockError
	var ce *vm.CanceledError
	switch {
	case errors.As(err, &div):
		return TaxDivergence
	case errors.As(err, &gf):
		return TaxFault
	case errors.As(err, &hp):
		return TaxPanic
	case errors.As(err, &wd):
		return TaxTimeout
	case errors.As(err, &dl):
		return TaxDeadlock
	case errors.As(err, &ce):
		return TaxCanceled
	}
	return TaxError
}

// ExitCodeFor maps a failure taxonomy to the CLI's documented exit code —
// the one table shared by `taskgrind` (process exit), `taskgrind submit
// -wait` and the daemon's job status rendering. 0/1/2 (clean, reports
// found, usage error) are CLI-level outcomes with no taxonomy and are not
// produced here.
func ExitCodeFor(taxonomy string) int {
	switch taxonomy {
	case TaxFault:
		return 3
	case TaxPanic:
		return 4
	case TaxTimeout:
		return 5
	case TaxDeadlock:
		return 6
	case TaxDivergence:
		return 7
	case TaxCanceled:
		return 8
	default: // TaxError and anything unrecognized
		return 2
	}
}

// SuperviseOpts configures a supervised run.
type SuperviseOpts struct {
	// OnPanic selects report vs IR-oracle fallback for host panics.
	OnPanic OnPanic
	// CkptEvery is the checkpoint cadence in timeslices (default 16).
	CkptEvery int
	// Retain bounds retained checkpoint history (0 = manager default).
	Retain int
	// VerifyCrash requires a crash to reproduce once, bit-identically,
	// under journal-verified replay before it is reported as real.
	VerifyCrash bool
	// Token, when non-empty, is stamped onto crash reports.
	Token string
}

// SupResult is a supervised run's outcome.
type SupResult struct {
	Result
	// Attempts counts executions (first run + replays + fallback).
	Attempts int
	// FellBack reports that the run completed under the IR oracle after
	// the configured engine failed.
	FellBack bool
	// Taxonomy classifies the original failure ("" when the first attempt
	// succeeded); see the Tax* constants.
	Taxonomy string
	// Reproduced reports that VerifyCrash replayed the crash and the
	// rendered report came back bit-identical.
	Reproduced bool
	// Window is the [last-verified-slice, failing-slice] interval the
	// failure was narrowed to (zero when the run succeeded).
	Window [2]uint64
	// Checkpoints is the number of snapshots captured on the first attempt.
	Checkpoints uint64
	// Inst is the instance that produced Result (the fallback instance
	// when FellBack): its tool carries the surviving run's reports.
	Inst *Instance
}

// buildSupervised constructs one attempt's instance with the supervisor's
// journal/checkpoint wiring. engine overrides the factory's engine choice
// when non-empty.
func buildSupervised(factory SetupFactory, opts SuperviseOpts, j *snapshot.Journal, ckptEvery int, engine string) (*Instance, error) {
	s := factory()
	s.Journal = j
	s.CkptEvery = ckptEvery
	s.CkptRetain = opts.Retain
	if opts.Token != "" {
		s.ReplayToken = opts.Token
	}
	if engine != "" {
		s.Engine = engine
	}
	return New(s)
}

// Supervise runs the configured program under the recovery supervisor:
// the first attempt records a full decision journal with periodic state
// marks; on a crash, the journal verifies the reproduction (VerifyCrash) and
// — for host panics under OnPanicFallback — drives a rewound re-execution
// under the IR oracle that must walk the recorded timeline up to the panic
// point before continuing past it.
func Supervise(factory SetupFactory, opts SuperviseOpts) (SupResult, error) {
	return SuperviseCtx(nil, factory, opts)
}

// SuperviseCtx supervises like Supervise under a cancellation context: a
// cancel interrupts whichever attempt is in flight (first run, verification
// replay, or fallback) within one timeslice, and the canceled attempt is
// classified TaxCanceled rather than treated as a reproducible failure —
// a canceled run proves nothing, so neither VerifyCrash nor the fallback
// re-execution is attempted after one.
func SuperviseCtx(ctx context.Context, factory SetupFactory, opts SuperviseOpts) (SupResult, error) {
	if opts.CkptEvery <= 0 {
		opts.CkptEvery = 16
	}
	var sup SupResult

	journal := snapshot.NewJournal()
	inst, err := buildSupervised(factory, opts, journal, opts.CkptEvery, "")
	if err != nil {
		return sup, fmt.Errorf("harness: supervise: %w", err)
	}
	sup.Attempts = 1
	sup.Result = inst.RunCtx(ctx)
	sup.Inst = inst
	if inst.Ckpts != nil {
		sup.Checkpoints = inst.Ckpts.Taken
	}
	if sup.Err == nil {
		return sup, nil
	}
	sup.Taxonomy = Classify(sup.Err)
	if sup.Taxonomy == TaxCanceled {
		// An administrative stop: nothing to verify or degrade from.
		return sup, nil
	}

	// Narrow the failure window: everything up to the last recorded state
	// mark is verified ground; the failure fired between there and the
	// machine's final slice.
	failSlice := inst.M.Slices
	var lastMark uint64
	if marks := journal.Marks(); len(marks) > 0 {
		lastMark = marks[len(marks)-1].Slice
	}
	sup.Window = [2]uint64{lastMark, failSlice}

	// Replay-verify: a crash must reproduce once, bit-identically, before
	// it is reported as real (quarantine semantics for explore).
	if opts.VerifyCrash && sup.Crash != nil {
		v := journal.Verifier(false)
		replay, err := buildSupervised(factory, opts, v, opts.CkptEvery, "")
		if err != nil {
			return sup, fmt.Errorf("harness: supervise replay: %w", err)
		}
		sup.Attempts++
		rres := replay.RunCtx(ctx)
		sup.Reproduced = rres.Crash != nil && v.Err() == nil &&
			rres.Crash.Render(replay.M.Image) == sup.Crash.Render(inst.M.Image)
	}

	// Graceful degradation: a host panic under OnPanicFallback rewinds and
	// re-executes under the IR oracle. The soft verifier cross-checks the
	// fallback against the recorded timeline (picks, injection draws,
	// state marks); a divergence *before* the panic point means the
	// configured engine was corrupting state earlier than it crashed, and
	// is surfaced as TaxDivergence with a narrowed window.
	var hp *vm.HostPanic
	if opts.OnPanic == OnPanicFallback && errors.As(sup.Err, &hp) {
		v := journal.Verifier(true)
		fb, err := buildSupervised(factory, opts, v, opts.CkptEvery, dbi.EngineIR)
		if err != nil {
			return sup, fmt.Errorf("harness: supervise fallback: %w", err)
		}
		sup.Attempts++
		fres := fb.RunCtx(ctx)
		sup.Inst = fb
		if fres.Err == nil {
			sup.FellBack = true
			sup.Result = fres
			if d := v.Err(); d != nil && d.Slice < failSlice {
				sup.Taxonomy = TaxDivergence
				sup.Window = markWindow(journal, v, d.Slice)
			}
		} else {
			// The oracle failed too: the failure is real (a guest bug or
			// environment fault, not an engine defect). Report the
			// fallback's outcome.
			sup.Result = fres
			sup.Taxonomy = Classify(fres.Err)
		}
	}
	return sup, nil
}

// markWindow narrows a divergence at failSlice to the interval between the
// last mark the verifier matched and the divergence point.
func markWindow(rec *snapshot.Journal, v *snapshot.Journal, failSlice uint64) [2]uint64 {
	var lo uint64
	if n := v.MarksMatched(); n > 0 {
		lo = rec.Marks()[n-1].Slice
	}
	return [2]uint64{lo, failSlice}
}

// BisectDivergence re-runs the configured engine against the IR oracle at
// single-slice checkpoint cadence, returning the minimal
// [last-agreeing-slice, first-diverging-slice] window (ok=false when the two
// engines agree everywhere, i.e. the failure is not a divergence). It is the
// slow, precise follow-up to the CkptEvery-granular window Supervise
// reports.
func BisectDivergence(factory SetupFactory, opts SuperviseOpts) (window [2]uint64, ok bool, err error) {
	ref := snapshot.NewJournal()
	inst, err := buildSupervised(factory, opts, ref, 1, "")
	if err != nil {
		return window, false, err
	}
	refRes := inst.Run()

	v := ref.Verifier(true)
	oracle, err := buildSupervised(factory, opts, v, 1, dbi.EngineIR)
	if err != nil {
		return window, false, err
	}
	ores := oracle.Run()
	_ = ores
	if d := v.Err(); d != nil {
		return markWindow(ref, v, d.Slice), true, nil
	}
	if refRes.Err != nil && ores.Err == nil {
		// No state divergence, but the configured engine died where the
		// oracle survives (e.g. an injected engine panic): the minimal
		// window is the failing slice itself.
		fail := inst.M.Slices
		var lo uint64
		if fail > 0 {
			lo = fail - 1
		}
		return [2]uint64{lo, fail}, true, nil
	}
	return window, false, nil
}
