package harness_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/harness"
	"repro/internal/omp"
	"repro/internal/tools/toolreg"
)

// randTaskProgram generates a random but well-formed task program: a random
// number of tasks with random global accesses, random dependences, random
// taskwaits — the fuzz target for the whole stack.
func randTaskProgram(seed int64) *gbuild.Builder {
	rng := rand.New(rand.NewSource(seed))
	b := omp.NewProgram()
	nglobals := 1 + rng.Intn(4)
	for g := 0; g < nglobals; g++ {
		b.Global(fmt.Sprintf("g%d", g), 8)
	}
	ntasks := 1 + rng.Intn(6)
	for i := 0; i < ntasks; i++ {
		f := b.Func(fmt.Sprintf("t%d", i), "fuzz.c")
		f.Line(10 + i)
		naccesses := 1 + rng.Intn(4)
		for a := 0; a < naccesses; a++ {
			sym := fmt.Sprintf("g%d", rng.Intn(nglobals))
			f.LoadSym(guest.R1, sym)
			if rng.Intn(2) == 0 {
				f.Ld(8, guest.R2, guest.R1, 0)
			} else {
				f.Ldi(guest.R2, int32(rng.Intn(100)))
				f.St(8, guest.R1, 0, guest.R2)
			}
		}
		f.Ret()
	}

	f := b.Func("micro", "fuzz.c")
	f.Enter(0)
	fn := f
	kinds := []uint64{1, 2, 3}
	omp.SingleNowait(f, func() {
		for i := 0; i < ntasks; i++ {
			var deps []omp.Dep
			for d := 0; d < rng.Intn(3); d++ {
				deps = append(deps, omp.DepSym(
					kinds[rng.Intn(len(kinds))],
					fmt.Sprintf("g%d", rng.Intn(nglobals))))
			}
			omp.EmitTask(fn, omp.TaskOpts{Fn: fmt.Sprintf("t%d", i), Deps: deps})
			if rng.Intn(3) == 0 {
				omp.Taskwait(fn)
			}
		}
		omp.Taskwait(fn)
	})
	f.Leave()

	f = b.Func("main", "fuzz.c")
	f.Enter(0)
	f.Ldi(guest.R1, 0)
	omp.Parallel(f, "micro", guest.R1, 4)
	f.Ldi(guest.R0, 0)
	f.Hlt(guest.R0)
	return b
}

// TestFuzzAllToolsNoPanic runs random task programs under every registered
// tool at both thread counts: nothing may crash, deadlock or corrupt the
// program's result.
func TestFuzzAllToolsNoPanic(t *testing.T) {
	for trial := int64(0); trial < 20; trial++ {
		for _, toolName := range toolreg.Names() {
			for _, threads := range []int{1, 4} {
				tool, count, err := toolreg.Make(toolName)
				if err != nil {
					t.Fatal(err)
				}
				res, _, err := harness.BuildAndRun(randTaskProgram(trial), harness.Setup{
					Tool: tool, Seed: uint64(trial%5) + 1, Threads: threads,
				})
				if err != nil {
					t.Fatalf("trial %d %s@%d: %v", trial, toolName, threads, err)
				}
				if res.Err != nil {
					t.Fatalf("trial %d %s@%d: %v", trial, toolName, threads, res.Err)
				}
				_ = count()
			}
		}
	}
}

// TestFuzzToolsDoNotPerturbResults: for result-bearing random programs the
// exit state matches the uninstrumented run under every tool.
func TestFuzzToolsDoNotPerturbResults(t *testing.T) {
	for trial := int64(100); trial < 112; trial++ {
		want, _, err := harness.BuildAndRun(randTaskProgram(trial), harness.Setup{Seed: 2, Threads: 1})
		if err != nil || want.Err != nil {
			t.Fatal(err, want.Err)
		}
		for _, toolName := range []string{"taskgrind", "archer", "tasksan", "romp", "memcheck"} {
			tool, _, err := toolreg.Make(toolName)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := harness.BuildAndRun(randTaskProgram(trial), harness.Setup{
				Tool: tool, Seed: 2, Threads: 1,
			})
			if err != nil || got.Err != nil {
				t.Fatal(err, got.Err)
			}
			if got.ExitCode != want.ExitCode {
				t.Fatalf("trial %d: %s changed the result: %d vs %d",
					trial, toolName, got.ExitCode, want.ExitCode)
			}
		}
	}
}
