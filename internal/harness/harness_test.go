package harness_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gbuild"
	"repro/internal/guest"
	"repro/internal/harness"
	"repro/internal/omp"
	"repro/internal/vm"
)

func helloProgram() *gbuild.Builder {
	b := omp.NewProgram()
	b.GlobalString("msg", "hi\n")
	f := b.Func("main", "h.c")
	f.LoadSym(guest.R0, "msg")
	f.Hcall("print_str")
	f.Ldi(guest.R0, 5)
	f.Hlt(guest.R0)
	return b
}

func TestBuildAndRunBasics(t *testing.T) {
	var out bytes.Buffer
	res, inst, err := harness.BuildAndRun(helloProgram(), harness.Setup{Stdout: &out})
	if err != nil || res.Err != nil {
		t.Fatal(err, res.Err)
	}
	if res.ExitCode != 5 {
		t.Fatalf("exit = %d", res.ExitCode)
	}
	if out.String() != "hi\n" {
		t.Fatalf("stdout = %q", out.String())
	}
	if res.GuestInstrs == 0 || res.Footprint == 0 {
		t.Fatal("metrics empty")
	}
	if inst.Lib == nil || inst.OMP == nil || inst.Core == nil {
		t.Fatal("instance incomplete")
	}
}

func TestLinkErrorPropagates(t *testing.T) {
	b := gbuild.New()
	f := b.Func("main", "bad.c")
	f.Call("missing")
	f.Hlt(guest.R0)
	if _, _, err := harness.BuildAndRun(b, harness.Setup{}); err == nil {
		t.Fatal("link error swallowed")
	} else if !strings.Contains(err.Error(), "undefined symbol") {
		t.Fatalf("err = %v", err)
	}
}

func TestExtraHostRegistration(t *testing.T) {
	b := omp.NewProgram()
	f := b.Func("main", "x.c")
	f.Hcall("custom_fn")
	f.Hlt(guest.R0)
	res, _, err := harness.BuildAndRun(b, harness.Setup{
		ExtraHost: func(reg *vm.HostRegistry, inst *harness.Instance) {
			reg.Register("custom_fn", func(m *vm.Machine, t *vm.Thread) vm.HostResult {
				return vm.HostResult{Ret: 99}
			})
		},
	})
	if err != nil || res.Err != nil {
		t.Fatal(err, res.Err)
	}
	if res.ExitCode != 99 {
		t.Fatalf("exit = %d", res.ExitCode)
	}
}

func TestNoFreePoolHonoured(t *testing.T) {
	opt := core.DefaultOptions()
	opt.NoFreePool = true
	tg := core.New(opt)
	_, inst, err := harness.BuildAndRun(helloProgram(), harness.Setup{Tool: tg})
	if err != nil {
		t.Fatal(err)
	}
	if inst.OMP.Pool.Recycle {
		t.Fatal("NoFreePool did not disable pool recycling")
	}
	// And the default keeps recycling on.
	tg2 := core.New(core.DefaultOptions())
	_, inst2, err := harness.BuildAndRun(helloProgram(), harness.Setup{Tool: tg2})
	if err != nil {
		t.Fatal(err)
	}
	if !inst2.OMP.Pool.Recycle {
		t.Fatal("default disabled pool recycling")
	}
}

func TestThreadsCapApplied(t *testing.T) {
	_, inst, err := harness.BuildAndRun(helloProgram(), harness.Setup{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if inst.OMP.MaxThreads != 2 {
		t.Fatalf("MaxThreads = %d", inst.OMP.MaxThreads)
	}
}
